/**
 * @file
 * Ablation (Section III-B): iterative versus diffusive construction of
 * the same anytime computation — reduced-precision matrix multiply.
 *
 * The iterative construction re-executes the full product at each
 * precision level (truncated operands), so cumulative work grows with
 * the number of levels; the diffusive construction accumulates one bit
 * plane at a time, so total work is one full product regardless of how
 * many intermediate versions are exposed. Both reach the identical
 * exact product. The table reports cumulative plane-equivalents of work
 * to reach each precision level under both constructions.
 */

#include <iostream>
#include <vector>

#include "apps/matmul.hpp"
#include "bench_common.hpp"
#include "harness/report.hpp"
#include "support/rng.hpp"

using namespace anytime;

namespace {

IntMatrix
randomMatrix(std::size_t cols, std::size_t rows, std::uint64_t seed)
{
    IntMatrix m(cols, rows);
    Xoshiro256 rng(seed);
    for (std::size_t i = 0; i < m.size(); ++i)
        m[i] = static_cast<std::int32_t>(rng.next());
    return m;
}

/** Mean absolute error between two matrices. */
double
meanAbsError(const LongMatrix &a, const LongMatrix &b)
{
    double err = 0;
    for (std::size_t i = 0; i < a.size(); ++i) {
        // Difference in uint64: intermediate bit-plane accumulators
        // wrap int64 by design, so the signed subtraction could too.
        const auto delta = static_cast<std::int64_t>(
            static_cast<std::uint64_t>(a[i]) -
            static_cast<std::uint64_t>(b[i]));
        err += std::abs(static_cast<double>(delta));
    }
    return err / static_cast<double>(a.size());
}

} // namespace

int
main(int argc, char **argv)
{
    const double scale = parseScale(argc, argv);
    const std::size_t n = scaledExtent(48, scale);

    printBanner("Ablation: iterative vs diffusive precision refinement",
                "diffusive total work == 1x the precise computation; "
                "iterative total work grows with the level count "
                "(Section III-B)");

    const IntMatrix a = randomMatrix(n, n, 1);
    const IntMatrix b = randomMatrix(n, n, 2);
    const LongMatrix exact = matmulExact(a, b);

    // Precision checkpoints (bits of B kept).
    const std::vector<unsigned> levels{4, 8, 16, 24, 32};

    SeriesTable table;
    table.title = "iter_vs_diff";
    table.columns = {"bits", "mean_abs_err", "iter_cum_work",
                     "diff_cum_work"};

    // Iterative: each level recomputes the truncated product in full
    // (32 plane-equivalents of work per level, roughly).
    double iter_cum = 0;
    // Diffusive: reaching `bits` costs exactly `bits` plane sweeps.
    for (unsigned bits : levels) {
        const LongMatrix approx = matmulTruncated(a, b, bits);
        iter_cum += 32.0; // one full product per iterative level
        table.rows.push_back({std::to_string(bits),
                              formatDouble(meanAbsError(exact, approx), 0),
                              formatDouble(iter_cum, 0),
                              formatDouble(static_cast<double>(bits), 0)});
    }
    printTable(table);

    // Sanity: the diffusive automaton's final output is the exact
    // product (its cumulative cost being the 32 planes of the last row).
    auto bundle = makeMatmulAutomaton(a, b);
    bundle.automaton->start();
    bundle.automaton->waitUntilDone();
    bundle.automaton->shutdown();
    std::cout << "diffusive automaton exact: "
              << ((*bundle.output->read().value == exact) ? "yes" : "NO")
              << "; iterative does "
              << formatDouble(iter_cum / 32.0, 1)
              << "x the work of the diffusive construction for the same "
                 "5 versions\n\n";
    return 0;
}
