/**
 * @file
 * Shared helpers for the figure-reproduction benches.
 *
 * Every bench accepts an optional `--scale <f>` argument multiplying
 * the default workload extent (so paper-sized inputs can be run on a
 * bigger machine) and prints its series with the common table format.
 */

#ifndef ANYTIME_BENCH_COMMON_HPP
#define ANYTIME_BENCH_COMMON_HPP

#include <cstdlib>
#include <iostream>
#include <string>

namespace anytime {

/** Parse `--scale <f>` from argv; defaults to 1.0. */
inline double
parseScale(int argc, char **argv)
{
    for (int i = 1; i + 1 < argc; ++i) {
        if (std::string(argv[i]) == "--scale")
            return std::atof(argv[i + 1]);
    }
    return 1.0;
}

/** Parse a `--flag <value>` string option; empty when absent. */
inline std::string
parseStringOption(int argc, char **argv, const std::string &flag)
{
    for (int i = 1; i + 1 < argc; ++i) {
        if (argv[i] == flag)
            return argv[i + 1];
    }
    return {};
}

/** Parse a `--flag <n>` unsigned option; @p fallback when absent. */
inline unsigned
parseUnsignedOption(int argc, char **argv, const std::string &flag,
                    unsigned fallback)
{
    const std::string text = parseStringOption(argc, argv, flag);
    if (text.empty())
        return fallback;
    const long value = std::atol(text.c_str());
    return value <= 0 ? fallback : static_cast<unsigned>(value);
}

/** Scaled image extent, clamped to a sane minimum. */
inline std::size_t
scaledExtent(std::size_t base, double scale)
{
    const double value = static_cast<double>(base) * scale;
    return value < 16 ? 16 : static_cast<std::size_t>(value);
}

/** Print the experiment banner with the paper's reference result. */
inline void
printBanner(const std::string &experiment, const std::string &reference)
{
    std::cout << "### " << experiment << "\n";
    std::cout << "paper reference: " << reference << "\n";
}

} // namespace anytime

#endif // ANYTIME_BENCH_COMMON_HPP
