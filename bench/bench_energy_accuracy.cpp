/**
 * @file
 * "Hold-the-power-button" ablation: energy expended versus output
 * acceptability. The conv2d automaton is stopped at increasing SNR
 * thresholds; the energy model charges its diffusive stage per pixel
 * processed, so the table shows how acceptability directly governs the
 * time AND energy spent (the paper's closing thesis).
 */

#include <chrono>
#include <iostream>
#include <vector>

#include "apps/conv2d.hpp"
#include "bench_common.hpp"
#include "core/controller.hpp"
#include "core/energy.hpp"
#include "harness/report.hpp"
#include "image/generate.hpp"
#include "image/metrics.hpp"

using namespace anytime;

int
main(int argc, char **argv)
{
    const double scale = parseScale(argc, argv);
    const std::size_t extent = scaledExtent(256, scale);

    printBanner("Ablation: energy vs acceptability "
                "(hold-the-power-button)",
                "energy spent should scale with the accuracy demanded; "
                "precise costs the full sweep");

    const GrayImage scene = generateScene(extent, extent, 33);
    const Kernel kernel = Kernel::gaussianBlur(3);
    const GrayImage precise = convolve(scene, kernel);

    const std::vector<double> thresholds{10.0, 20.0, 30.0, 1e18};

    SeriesTable table;
    table.title = "energy_accuracy";
    table.columns = {"target_snr_db", "achieved_snr_db", "seconds",
                     "steps", "dynamic_nj"};

    for (double target : thresholds) {
        Conv2dConfig config;
        config.publishCount = 64;
        auto bundle = makeConv2dAutomaton(scene, kernel, config);
        auto output = bundle.output;

        const RunOutcome outcome = runUntilAcceptable(
            *bundle.automaton,
            [&, output] {
                const auto snap = output->read();
                return snap &&
                       signalToNoiseDb(precise, *snap.value) >= target;
            },
            std::chrono::microseconds(200));

        EnergyModel model(StageEnergyCost{1.0, 0.0});
        const EnergyReport report =
            model.estimate(*bundle.automaton, outcome.seconds);

        const auto snap = output->read();
        const double achieved =
            snap ? signalToNoiseDb(precise, *snap.value) : 0.0;
        const double steps = report.totalDynamicNanojoules; // 1 nJ/step
        table.rows.push_back(
            {target > 1e17 ? "precise" : formatDouble(target, 0),
             formatDouble(achieved, 1), formatDouble(outcome.seconds, 4),
             formatDouble(steps, 0), formatDouble(steps, 0)});
    }
    printTable(table);
    std::cout << "each row stops the same automaton at a stricter "
                 "acceptability bar; steps (= chunks of 16 pixels) and "
                 "energy grow with the bar\n\n";
    return 0;
}
