/**
 * @file
 * Section III-D / Figure 10: comparing automaton organizations on the
 * paper's running example — stage f produces a fixed-point matrix at
 * two precision halves ([AA] then [.BB]) and stage g computes a dot
 * product on it.
 *
 *   1. baseline                  : f_full ; g
 *   2. f iterative, sequential   : f_half ; g ; f_full ; g
 *   3. f iterative, async pipe   : g(F_1) overlaps f_full
 *   4. f diffusive, async pipe   : f_full replaced by the +[.BB] update
 *   5. f diffusive, g distributive, sync pipe: g folds the updates
 *
 * Work per phase is a calibrated spin so the components have the
 * paper's relative costs. Wall-clock overlap requires >= 2 hardware
 * threads; the analytic critical-path model is printed alongside the
 * measurements so the ordering is visible on any machine.
 */

#include <cstdint>
#include <iostream>
#include <thread>

#include "bench_common.hpp"
#include "core/buffer.hpp"
#include "core/channel.hpp"
#include "harness/report.hpp"
#include "support/stopwatch.hpp"

using namespace anytime;

namespace {

volatile std::uint64_t workSink = 0;

/** Busy-work of a given size (the matrix-computation stand-in). */
void
spin(std::uint64_t units)
{
    // Serially dependent LCG chain: cannot be strength-reduced to a
    // closed form, so the loop really burns `units` of work.
    std::uint64_t acc = workSink + 1;
    for (std::uint64_t i = 0; i < units; ++i)
        acc = acc * 6364136223846793005ULL + 1442695040888963407ULL;
    workSink = acc;
}

// Relative phase costs (paper's example): computing the low-precision
// half costs W_HALF, the full recompute costs 2*W_HALF, the dependent
// dot product costs W_G, and the distributive child splits W_G across
// the two updates.
constexpr std::uint64_t W_HALF = 12'000'000;
constexpr std::uint64_t W_FULL = 2 * W_HALF;
constexpr std::uint64_t W_G = 16'000'000;

struct OrgResult
{
    std::string name;
    double firstOutput;   // seconds to the first whole-app output
    double preciseOutput; // seconds to the precise output
    double modelFirst;    // analytic critical path (2 cores), units
    double modelPrecise;
};

OrgResult
runBaseline()
{
    Stopwatch watch;
    spin(W_FULL);
    spin(W_G);
    const double t = watch.seconds();
    return {"baseline", t, t, static_cast<double>(W_FULL + W_G),
            static_cast<double>(W_FULL + W_G)};
}

OrgResult
runIterativeSequential()
{
    Stopwatch watch;
    spin(W_HALF);
    spin(W_G);
    const double first = watch.seconds();
    spin(W_FULL);
    spin(W_G);
    return {"f iterative, sequential", first, watch.seconds(),
            static_cast<double>(W_HALF + W_G),
            static_cast<double>(W_HALF + W_G + W_FULL + W_G)};
}

OrgResult
runIterativeAsync()
{
    // f publishes F_1 then recomputes F_2 in full; g consumes each.
    VersionedBuffer<int> f_out("F");
    Stopwatch watch;
    double first = 0, precise = 0;
    std::thread g_thread([&] {
        std::stop_source never;
        auto snap = f_out.waitNewer(0, never.get_token());
        spin(W_G);
        first = watch.seconds();
        if (!snap.final) {
            snap = f_out.waitNewer(snap.version, never.get_token());
            spin(W_G);
        }
        precise = watch.seconds();
    });
    spin(W_HALF);
    f_out.publish(1, false);
    spin(W_FULL); // iterative: full recompute
    f_out.publish(2, true);
    g_thread.join();
    return {"f iterative, async pipeline", first, precise,
            static_cast<double>(W_HALF + W_G),
            static_cast<double>(
                std::max(W_HALF + W_FULL, W_HALF + W_G) + W_G)};
}

OrgResult
runDiffusiveAsync()
{
    // Diffusive f: the second computation only adds the low bits.
    VersionedBuffer<int> f_out("F");
    Stopwatch watch;
    double first = 0, precise = 0;
    std::thread g_thread([&] {
        std::stop_source never;
        auto snap = f_out.waitNewer(0, never.get_token());
        spin(W_G);
        first = watch.seconds();
        if (!snap.final) {
            snap = f_out.waitNewer(snap.version, never.get_token());
            spin(W_G);
        }
        precise = watch.seconds();
    });
    spin(W_HALF);
    f_out.publish(1, false);
    spin(W_HALF); // diffusive: just the +[.BB] update
    f_out.publish(2, true);
    g_thread.join();
    return {"f diffusive, async pipeline", first, precise,
            static_cast<double>(W_HALF + W_G),
            static_cast<double>(
                std::max(W_HALF + W_HALF, W_HALF + W_G) + W_G)};
}

OrgResult
runDiffusiveSync()
{
    // Distributive g folds each update X_i at half the dot-product cost.
    UpdateChannel<int> updates(1);
    Stopwatch watch;
    double first = 0, precise = 0;
    std::thread g_thread([&] {
        std::stop_source never;
        (void)updates.pop(never.get_token());
        spin(W_G / 2);
        first = watch.seconds();
        (void)updates.pop(never.get_token());
        spin(W_G / 2);
        precise = watch.seconds();
    });
    std::stop_source never;
    spin(W_HALF);
    updates.push(1, never.get_token());
    spin(W_HALF);
    updates.push(2, never.get_token());
    updates.close();
    g_thread.join();
    return {"f diffusive, g distributive, sync pipeline", first, precise,
            static_cast<double>(W_HALF + W_G / 2),
            static_cast<double>(
                std::max<std::uint64_t>(2 * W_HALF, W_HALF + W_G / 2) +
                W_G / 2)};
}

} // namespace

int
main(int argc, char **argv)
{
    (void)parseScale(argc, argv);
    printBanner("Figure 10 / Section III-D: automaton organizations",
                "runtime ordering: iterative-seq > iterative-async > "
                "diffusive-async > sync > baseline-precise-only; "
                "pipelined orgs add early approximate outputs");
    std::cout << "hardware threads: "
              << std::thread::hardware_concurrency()
              << " (wall-clock overlap needs >= 2; the model column is "
                 "the 2-core critical path in work units)\n";

    const OrgResult results[] = {
        runBaseline(),
        runIterativeSequential(),
        runIterativeAsync(),
        runDiffusiveAsync(),
        runDiffusiveSync(),
    };

    SeriesTable table;
    table.title = "fig10_organizations";
    table.columns = {"organization", "first_s", "precise_s",
                     "model_first", "model_precise"};
    for (const OrgResult &r : results) {
        table.rows.push_back({r.name, formatDouble(r.firstOutput, 4),
                              formatDouble(r.preciseOutput, 4),
                              formatDouble(r.modelFirst / 1e6, 1),
                              formatDouble(r.modelPrecise / 1e6, 1)});
    }
    printTable(table);
    std::cout << '\n';
    return 0;
}
