/**
 * @file
 * Figure 11: runtime-accuracy profile of the 2dconv anytime automaton.
 *
 * The paper's 2dconv (single diffusive stage, tree-permuted output
 * sampling, blur filter) reaches 15.8 dB at 21% of the baseline runtime
 * and eventually the precise output (somewhat past 1x baseline due to
 * the non-sequential sampling order's cache behavior). This bench runs
 * the same construction on a synthetic scene and prints the
 * (normalized runtime, SNR) series the figure plots.
 *
 * A second section measures the Section IV-C1 multi-threaded sampling:
 * the diffusive stage's windows are divided cyclically among k workers
 * and the bench reports time-to-90%-quality per worker count, plus a
 * bit-identity check of the final outputs (the partitioned merge is
 * deterministic, so every k must produce the single-worker image
 * exactly). `--workers <k>` sets the widest gang, `--repeats <n>`
 * takes the best of n runs per gang size (minimum t90 — the
 * least-noise estimator on shared/loaded hosts), `--json <path>`
 * writes the measurements for the CI perf gate.
 */

#include <cstdio>
#include <iostream>
#include <thread>
#include <vector>

#include "apps/conv2d.hpp"
#include "bench_common.hpp"
#include "harness/profiler.hpp"
#include "harness/report.hpp"
#include "image/generate.hpp"
#include "image/metrics.hpp"
#include "simd/simd.hpp"

using namespace anytime;

namespace {

struct ScalingPoint
{
    unsigned workers = 0;
    double t90Seconds = 0.0;
    double totalSeconds = 0.0;
    bool bitIdentical = false;
};

/**
 * Run the automaton at @p workers and report the wall-clock time of
 * the version reaching 90% of the published version count. Versions
 * are bit-identical across worker counts (deterministic partitioned
 * merge), so equal version indices mean equal quality — t90 compares
 * the same quality level at every k.
 */
ScalingPoint
measureScalingOnce(const GrayImage &scene, const Kernel &kernel,
                   unsigned workers, const GrayImage &reference)
{
    Conv2dConfig config;
    config.publishCount = 48;
    config.workers = workers;
    auto bundle = makeConv2dAutomaton(scene, kernel, config);
    TimelineRecorder<GrayImage> recorder(*bundle.output);
    recorder.startClock();
    bundle.automaton->start();
    bundle.automaton->waitUntilDone();
    bundle.automaton->shutdown();

    ScalingPoint point;
    point.workers = workers;
    const auto entries = recorder.entries();
    if (entries.empty())
        return point;
    const std::uint64_t total = entries.back().version;
    const std::uint64_t v90 = (total * 9 + 9) / 10; // ceil(0.9 * total)
    for (const auto &entry : entries) {
        if (entry.version >= v90 && point.t90Seconds == 0.0)
            point.t90Seconds = entry.seconds;
        point.totalSeconds = entry.seconds;
    }
    point.bitIdentical = (*entries.back().value == reference);
    return point;
}

/** Best of @p repeats runs: minimum t90 (scheduler noise only ever
 *  inflates the time), bit-identity required by every run. */
ScalingPoint
measureScaling(const GrayImage &scene, const Kernel &kernel,
               unsigned workers, const GrayImage &reference,
               unsigned repeats)
{
    ScalingPoint best;
    for (unsigned r = 0; r < repeats; ++r) {
        const ScalingPoint run =
            measureScalingOnce(scene, kernel, workers, reference);
        if (r == 0) {
            best = run;
        } else {
            best.bitIdentical = best.bitIdentical && run.bitIdentical;
            if (run.t90Seconds > 0.0 &&
                (best.t90Seconds == 0.0 ||
                 run.t90Seconds < best.t90Seconds)) {
                best.t90Seconds = run.t90Seconds;
                best.totalSeconds = run.totalSeconds;
            }
        }
    }
    return best;
}

} // namespace

int
main(int argc, char **argv)
{
    const double scale = parseScale(argc, argv);
    const std::size_t extent = scaledExtent(288, scale);
    const unsigned max_workers =
        parseUnsignedOption(argc, argv, "--workers", 4);
    const unsigned repeats =
        parseUnsignedOption(argc, argv, "--repeats", 3);
    const std::string json_path =
        parseStringOption(argc, argv, "--json");

    printBanner("Figure 11: 2dconv runtime-accuracy",
                "15.8 dB at 0.21x runtime; precise (inf dB) reached "
                "shortly after 1x");

    const GrayImage scene = generateScene(extent, extent, 11);
    const Kernel kernel = Kernel::gaussianBlur(3);
    const GrayImage precise = convolve(scene, kernel);

    // The timing baseline is the naive sequential-accumulation
    // convolution, NOT the SIMD-dispatched convolve(): normalizing t90
    // against a vectorized baseline would cancel the kernel speedup out
    // of t90_norm and hide regressions from the perf gate.
    const double baseline = timeBestOf(
        [&] { (void)convolveReference(scene, kernel); }, 3);
    std::cout << "input: " << extent << "x" << extent << ", simd isa: "
              << simd::isaName(simd::activeIsa())
              << ", baseline (naive scalar) runtime: "
              << formatDouble(baseline, 4) << " s\n";

    Conv2dConfig config;
    config.publishCount = 48;
    auto bundle = makeConv2dAutomaton(scene, kernel, config);
    const auto profile = profileToCompletion<GrayImage>(
        *bundle.automaton, *bundle.output,
        [&](const GrayImage &img) { return signalToNoiseDb(precise, img); },
        baseline);

    printTable(profileTable("fig11_conv2d", profile));

    // Headline comparison point: SNR at ~21% of baseline runtime.
    double snr_at_21 = 0;
    for (const auto &point : profile) {
        if (point.normalizedRuntime <= 0.21)
            snr_at_21 = point.accuracyDb;
    }
    std::cout << "measured SNR at <=0.21x runtime: "
              << formatDouble(snr_at_21, 1) << " dB (paper: 15.8 dB)\n\n";

    // Worker scaling (Section IV-C1 cyclic partitions): t90 per gang
    // size against the single-worker final image.
    const unsigned hardware =
        std::max(1u, std::thread::hardware_concurrency());
    std::cout << "### worker scaling (cyclic partitions, "
              << hardware << " hardware threads)\n";
    std::vector<ScalingPoint> scaling;
    GrayImage reference;
    for (unsigned workers = 1; workers <= max_workers; workers *= 2) {
        if (workers == 1) {
            Conv2dConfig ref_config;
            ref_config.publishCount = 48;
            auto ref_bundle = makeConv2dAutomaton(scene, kernel, ref_config);
            ref_bundle.automaton->start();
            ref_bundle.automaton->waitUntilDone();
            ref_bundle.automaton->shutdown();
            reference = *ref_bundle.output->read().value;
        }
        scaling.push_back(
            measureScaling(scene, kernel, workers, reference, repeats));
    }
    const double t90_w1 = scaling.front().t90Seconds;
    for (const auto &point : scaling) {
        const double speedup =
            point.t90Seconds > 0.0 ? t90_w1 / point.t90Seconds : 0.0;
        std::cout << "workers=" << point.workers
                  << "  t90=" << formatDouble(point.t90Seconds, 4)
                  << " s  speedup=" << formatDouble(speedup, 2)
                  << "x  final "
                  << (point.bitIdentical ? "bit-identical"
                                         : "DIVERGED (BUG)")
                  << "\n";
    }
    std::cout << "(speedup needs real cores; on a 1-hardware-thread "
                 "host the gang only adds coordination overhead)\n";

    // Scalar-vs-SIMD single-worker comparison: the same automaton with
    // dispatch forced to the scalar specification and to the best ISA
    // this host supports. The kernels are bit-exact specifications, so
    // the finals must match exactly; only the wall clock may differ.
    // CI uploads this block as the cross-leg comparison artifact.
    const simd::Isa best_isa = simd::bestSupportedIsa();
    std::cout << "\n### scalar vs simd (single worker, best isa: "
              << simd::isaName(best_isa) << ")\n";
    simd::forceIsa(simd::Isa::scalar);
    const ScalingPoint scalar_point =
        measureScaling(scene, kernel, 1, reference, repeats);
    simd::forceIsa(best_isa);
    const ScalingPoint simd_point =
        measureScaling(scene, kernel, 1, reference, repeats);
    simd::resetIsa();
    const bool cross_identical =
        scalar_point.bitIdentical && simd_point.bitIdentical;
    const double simd_speedup =
        simd_point.t90Seconds > 0.0
            ? scalar_point.t90Seconds / simd_point.t90Seconds
            : 0.0;
    std::cout << "scalar t90=" << formatDouble(scalar_point.t90Seconds, 4)
              << " s  " << simd::isaName(best_isa)
              << " t90=" << formatDouble(simd_point.t90Seconds, 4)
              << " s  speedup=" << formatDouble(simd_speedup, 2)
              << "x  finals "
              << (cross_identical ? "bit-identical" : "DIVERGED (BUG)")
              << "\n";

    if (!json_path.empty()) {
        std::FILE *out = std::fopen(json_path.c_str(), "w");
        if (!out) {
            std::cerr << "cannot write " << json_path << "\n";
            return 1;
        }
        std::fprintf(out, "{\n");
        std::fprintf(out, "  \"bench\": \"fig11_conv2d\",\n");
        std::fprintf(out, "  \"extent\": %zu,\n", extent);
        std::fprintf(out, "  \"hardware_threads\": %u,\n", hardware);
        std::fprintf(out, "  \"isa\": \"%s\",\n",
                     simd::isaName(best_isa));
        std::fprintf(out, "  \"baseline_seconds\": %.6f,\n", baseline);
        std::fprintf(out, "  \"snr_at_021\": %.3f,\n", snr_at_21);
        std::fprintf(out,
                     "  \"simd_compare\": {\"isa\": \"%s\", "
                     "\"t90_scalar\": %.6f, \"t90_simd\": %.6f, "
                     "\"speedup\": %.4f, \"bit_identical\": %s},\n",
                     simd::isaName(best_isa), scalar_point.t90Seconds,
                     simd_point.t90Seconds, simd_speedup,
                     cross_identical ? "true" : "false");
        std::fprintf(out, "  \"scaling\": [\n");
        for (std::size_t i = 0; i < scaling.size(); ++i) {
            const auto &point = scaling[i];
            std::fprintf(
                out,
                "    {\"workers\": %u, \"t90_seconds\": %.6f, "
                "\"total_seconds\": %.6f, \"t90_norm\": %.6f, "
                "\"bit_identical\": %s}%s\n",
                point.workers, point.t90Seconds, point.totalSeconds,
                baseline > 0.0 ? point.t90Seconds / baseline : 0.0,
                point.bitIdentical ? "true" : "false",
                i + 1 < scaling.size() ? "," : "");
        }
        std::fprintf(out, "  ]\n}\n");
        std::fclose(out);
        std::cout << "json written to " << json_path << "\n";
    }
    return 0;
}
