/**
 * @file
 * Figure 11: runtime-accuracy profile of the 2dconv anytime automaton.
 *
 * The paper's 2dconv (single diffusive stage, tree-permuted output
 * sampling, blur filter) reaches 15.8 dB at 21% of the baseline runtime
 * and eventually the precise output (somewhat past 1x baseline due to
 * the non-sequential sampling order's cache behavior). This bench runs
 * the same construction on a synthetic scene and prints the
 * (normalized runtime, SNR) series the figure plots.
 */

#include <iostream>

#include "apps/conv2d.hpp"
#include "bench_common.hpp"
#include "harness/profiler.hpp"
#include "harness/report.hpp"
#include "image/generate.hpp"
#include "image/metrics.hpp"

using namespace anytime;

int
main(int argc, char **argv)
{
    const double scale = parseScale(argc, argv);
    const std::size_t extent = scaledExtent(288, scale);

    printBanner("Figure 11: 2dconv runtime-accuracy",
                "15.8 dB at 0.21x runtime; precise (inf dB) reached "
                "shortly after 1x");

    const GrayImage scene = generateScene(extent, extent, 11);
    const Kernel kernel = Kernel::gaussianBlur(3);
    const GrayImage precise = convolve(scene, kernel);

    const double baseline = timeBestOf(
        [&] { (void)convolve(scene, kernel); }, 3);
    std::cout << "input: " << extent << "x" << extent
              << ", baseline precise runtime: " << formatDouble(baseline, 4)
              << " s\n";

    Conv2dConfig config;
    config.publishCount = 48;
    auto bundle = makeConv2dAutomaton(scene, kernel, config);
    const auto profile = profileToCompletion<GrayImage>(
        *bundle.automaton, *bundle.output,
        [&](const GrayImage &img) { return signalToNoiseDb(precise, img); },
        baseline);

    printTable(profileTable("fig11_conv2d", profile));

    // Headline comparison point: SNR at ~21% of baseline runtime.
    double snr_at_21 = 0;
    for (const auto &point : profile) {
        if (point.normalizedRuntime <= 0.21)
            snr_at_21 = point.accuracyDb;
    }
    std::cout << "measured SNR at <=0.21x runtime: "
              << formatDouble(snr_at_21, 1) << " dB (paper: 15.8 dB)\n\n";
    return 0;
}
