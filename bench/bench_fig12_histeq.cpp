/**
 * @file
 * Figure 12: runtime-accuracy profile of the histeq anytime automaton.
 *
 * The paper's histeq (four-stage asynchronous pipeline with two
 * non-anytime stages) produces acceptable output around 0.6x baseline
 * runtime but does not reach the precise output until about 6x — every
 * new histogram version re-triggers the CDF/LUT/apply chain. This bench
 * reproduces the pipeline and prints the same series.
 */

#include <iostream>

#include "apps/histeq.hpp"
#include "bench_common.hpp"
#include "harness/profiler.hpp"
#include "harness/report.hpp"
#include "harness/stats_report.hpp"
#include "image/generate.hpp"
#include "image/metrics.hpp"

using namespace anytime;

int
main(int argc, char **argv)
{
    const double scale = parseScale(argc, argv);
    const std::size_t extent = scaledExtent(256, scale);

    printBanner("Figure 12: histeq runtime-accuracy",
                "acceptable (~15 dB) near 0.6x runtime; precise output "
                "delayed to ~6x by the non-anytime stages");

    const GrayImage scene = generateScene(extent, extent, 12);
    const GrayImage precise = histogramEqualize(scene);

    const double baseline = timeBestOf(
        [&] { (void)histogramEqualize(scene); }, 3);
    std::cout << "input: " << extent << "x" << extent
              << ", baseline precise runtime: "
              << formatDouble(baseline, 4) << " s\n";

    HisteqConfig config;
    config.histogramVersions = 8;
    config.applyVersions = 12;
    auto bundle = makeHisteqAutomaton(scene, config);
    const auto profile = profileToCompletion<GrayImage>(
        *bundle.automaton, *bundle.output,
        [&](const GrayImage &img) { return signalToNoiseDb(precise, img); },
        baseline);

    printTable(profileTable("fig12_histeq", profile));
    printTable(stageStatsTable(*bundle.automaton));

    double first_acceptable = -1;
    for (const auto &point : profile) {
        if (point.accuracyDb >= 15.0) {
            first_acceptable = point.normalizedRuntime;
            break;
        }
    }
    std::cout << "first >=15 dB output at "
              << formatDouble(first_acceptable, 2)
              << "x runtime (paper: ~0.6x); precise at "
              << formatDouble(profile.empty()
                                  ? 0.0
                                  : profile.back().normalizedRuntime,
                              2)
              << "x (paper: ~6x)\n\n";
    return 0;
}
