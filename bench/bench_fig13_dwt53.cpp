/**
 * @file
 * Figure 13: runtime-accuracy profile of the dwt53 anytime automaton.
 *
 * Iterative loop perforation yields the paper's steep, non-smooth
 * staircase: unacceptable output for over half the baseline runtime,
 * then 16.8 dB at 0.78x, then precise after all the redundant level
 * re-executions (past 2x total work for a geometric schedule).
 */

#include <iostream>

#include "apps/dwt53.hpp"
#include "bench_common.hpp"
#include "harness/profiler.hpp"
#include "harness/report.hpp"
#include "image/generate.hpp"
#include "image/metrics.hpp"

using namespace anytime;

int
main(int argc, char **argv)
{
    const double scale = parseScale(argc, argv);
    const std::size_t extent = scaledExtent(384, scale);

    printBanner("Figure 13: dwt53 runtime-accuracy",
                "steep staircase; 16.8 dB at 0.78x; precise past ~2x "
                "(iterative redundancy)");

    const GrayImage scene = generateScene(extent, extent, 13);
    // The application is the forward transform; the inverse is applied
    // only when *scoring* a version (the paper's methodology).
    const double baseline =
        timeBestOf([&] { (void)dwt53Forward(scene); }, 3);
    std::cout << "input: " << extent << "x" << extent
              << ", baseline precise runtime: "
              << formatDouble(baseline, 4) << " s\n";

    Dwt53Config config;
    config.schedule = PerforationSchedule::geometric(4);
    auto bundle = makeDwt53Automaton(scene, config);
    const auto profile = profileToCompletion<WaveletImage>(
        *bundle.automaton, *bundle.output,
        [&](const WaveletImage &coeffs) {
            return signalToNoiseDb(scene, dwt53Inverse(coeffs));
        },
        baseline);

    printTable(profileTable("fig13_dwt53", profile));

    std::cout << "levels (strides 8,4,2,1) publish "
              << profile.size()
              << " versions; total-work multiplier vs baseline: "
              << formatDouble(static_cast<double>(
                                  config.schedule.totalWork(1000)) /
                                  1000.0,
                              3)
              << "x (paper: iterative perforation re-executes "
                 "every level)\n\n";
    return 0;
}
