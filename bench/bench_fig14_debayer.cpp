/**
 * @file
 * Figure 14: runtime-accuracy profile of the debayer anytime automaton
 * (single diffusive stage, like 2dconv: smooth curve, early high SNR).
 */

#include <iostream>

#include "apps/debayer.hpp"
#include "bench_common.hpp"
#include "harness/profiler.hpp"
#include "harness/report.hpp"
#include "image/generate.hpp"
#include "image/metrics.hpp"

using namespace anytime;

int
main(int argc, char **argv)
{
    const double scale = parseScale(argc, argv);
    const std::size_t extent = scaledExtent(320, scale);

    printBanner("Figure 14: debayer runtime-accuracy",
                "smooth diffusive curve, like 2dconv: double-digit SNR "
                "well before 1x; precise shortly after 1x");

    const RgbImage color = generateColorScene(extent, extent, 14);
    const GrayImage mosaic = bayerMosaic(color);
    const RgbImage precise = debayer(mosaic);

    const double baseline =
        timeBestOf([&] { (void)debayer(mosaic); }, 3);
    std::cout << "input: " << extent << "x" << extent
              << ", baseline precise runtime: "
              << formatDouble(baseline, 4) << " s\n";

    DebayerConfig config;
    config.publishCount = 48;
    auto bundle = makeDebayerAutomaton(mosaic, config);
    const auto profile = profileToCompletion<RgbImage>(
        *bundle.automaton, *bundle.output,
        [&](const RgbImage &img) { return signalToNoiseDb(precise, img); },
        baseline);

    printTable(profileTable("fig14_debayer", profile));

    double snr_at_half = 0;
    for (const auto &point : profile) {
        if (point.normalizedRuntime <= 0.5)
            snr_at_half = point.accuracyDb;
    }
    std::cout << "measured SNR at <=0.5x runtime: "
              << formatDouble(snr_at_half, 1)
              << " dB (paper: ~14-16 dB region)\n\n";
    return 0;
}
