/**
 * @file
 * Figure 15: runtime-accuracy profile of the kmeans anytime automaton
 * (diffusive assignment + non-anytime reduce; acceptable ~0.6x, precise
 * delayed past 1x by the non-anytime stage's re-execution).
 */

#include <iostream>

#include "apps/kmeans.hpp"
#include "bench_common.hpp"
#include "harness/profiler.hpp"
#include "harness/report.hpp"
#include "image/generate.hpp"
#include "image/metrics.hpp"

using namespace anytime;

int
main(int argc, char **argv)
{
    const double scale = parseScale(argc, argv);
    const std::size_t extent = scaledExtent(256, scale);

    printBanner("Figure 15: kmeans runtime-accuracy",
                "16.7 dB at 0.63x runtime; precise past 1x (non-anytime "
                "reduce stage)");

    const RgbImage scene = generateColorScene(extent, extent, 15);
    const unsigned k = 8;
    const KmeansResult precise = kmeansCluster(scene, k);

    const double baseline =
        timeBestOf([&] { (void)kmeansCluster(scene, k); }, 3);
    std::cout << "input: " << extent << "x" << extent << ", k = " << k
              << ", baseline precise runtime: "
              << formatDouble(baseline, 4) << " s\n";

    KmeansConfig config;
    config.clusters = k;
    config.publishCount = 24;
    auto bundle = makeKmeansAutomaton(scene, config);
    const auto profile = profileToCompletion<KmeansResult>(
        *bundle.automaton, *bundle.output,
        [&](const KmeansResult &result) {
            return signalToNoiseDb(precise.image, result.image);
        },
        baseline);

    printTable(profileTable("fig15_kmeans", profile));

    double first_acceptable = -1;
    for (const auto &point : profile) {
        if (point.accuracyDb >= 16.7) {
            first_acceptable = point.normalizedRuntime;
            break;
        }
    }
    std::cout << "first >=16.7 dB output at "
              << formatDouble(first_acceptable, 2)
              << "x runtime (paper: 0.63x)\n\n";
    return 0;
}
