/**
 * @file
 * Figure 16: sample outputs of the 2dconv automaton — the intermediate
 * version nearest the paper's quoted 15.8 dB point and the precise
 * baseline, written as PGM files for visual inspection.
 */

#include <cmath>
#include <filesystem>
#include <iostream>

#include "apps/conv2d.hpp"
#include "bench_common.hpp"
#include "harness/profiler.hpp"
#include "harness/report.hpp"
#include "image/generate.hpp"
#include "image/io.hpp"
#include "image/metrics.hpp"

using namespace anytime;

int
main(int argc, char **argv)
{
    const double scale = parseScale(argc, argv);
    const std::size_t extent = scaledExtent(256, scale);

    printBanner("Figure 16: 2dconv sample outputs",
                "(a) 21% runtime, SNR 15.8 dB vs (b) baseline precise");

    const GrayImage scene = generateScene(extent, extent, 16);
    const Kernel kernel = Kernel::gaussianBlur(3);
    const GrayImage precise = convolve(scene, kernel);

    Conv2dConfig config;
    config.publishCount = 64;
    auto bundle = makeConv2dAutomaton(scene, kernel, config);

    TimelineRecorder<GrayImage> recorder(*bundle.output);
    recorder.startClock();
    bundle.automaton->start();
    bundle.automaton->waitUntilDone();
    bundle.automaton->shutdown();

    // Pick the version whose SNR is closest to the paper's 15.8 dB.
    const double target_db = 15.8;
    double best_delta = 1e18;
    GrayImage chosen = precise;
    double chosen_db = 0, chosen_seconds = 0;
    double final_seconds = 0;
    for (const auto &entry : recorder.entries()) {
        const double snr = signalToNoiseDb(precise, *entry.value);
        if (std::isfinite(snr) &&
            std::abs(snr - target_db) < best_delta) {
            best_delta = std::abs(snr - target_db);
            chosen = *entry.value;
            chosen_db = snr;
            chosen_seconds = entry.seconds;
        }
        final_seconds = entry.seconds;
    }

    std::filesystem::create_directories("bench_outputs");
    writePgm(scene, "bench_outputs/fig16_input.pgm");
    writePgm(chosen, "bench_outputs/fig16_approx.pgm");
    writePgm(precise, "bench_outputs/fig16_precise.pgm");

    std::cout << "wrote bench_outputs/fig16_{input,approx,precise}.pgm\n";
    std::cout << "approx version: " << formatDouble(chosen_db, 1)
              << " dB at "
              << formatDouble(chosen_seconds / final_seconds, 2)
              << " of automaton runtime (paper: 15.8 dB at 21% of "
                 "baseline)\n\n";
    return 0;
}
