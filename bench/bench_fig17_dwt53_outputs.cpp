/**
 * @file
 * Figure 17: sample outputs of the dwt53 automaton — the perforated
 * reconstruction nearest the paper's 16.8 dB point and the precise
 * reconstruction.
 */

#include <cmath>
#include <filesystem>
#include <iostream>

#include "apps/dwt53.hpp"
#include "bench_common.hpp"
#include "harness/profiler.hpp"
#include "harness/report.hpp"
#include "image/generate.hpp"
#include "image/io.hpp"
#include "image/metrics.hpp"

using namespace anytime;

int
main(int argc, char **argv)
{
    const double scale = parseScale(argc, argv);
    const std::size_t extent = scaledExtent(256, scale);

    printBanner("Figure 17: dwt53 sample outputs",
                "(a) 78% runtime, SNR 16.8 dB vs (b) baseline precise");

    const GrayImage scene = generateScene(extent, extent, 17);

    Dwt53Config config;
    config.schedule = PerforationSchedule::geometric(4);
    auto bundle = makeDwt53Automaton(scene, config);

    TimelineRecorder<WaveletImage> recorder(*bundle.output);
    recorder.startClock();
    bundle.automaton->start();
    bundle.automaton->waitUntilDone();
    bundle.automaton->shutdown();

    const double target_db = 16.8;
    double best_delta = 1e18;
    GrayImage chosen = scene;
    double chosen_db = 0;
    std::uint64_t chosen_version = 0;
    for (const auto &entry : recorder.entries()) {
        const GrayImage restored = dwt53Inverse(*entry.value);
        const double snr = signalToNoiseDb(scene, restored);
        if (std::isfinite(snr) &&
            std::abs(snr - target_db) < best_delta) {
            best_delta = std::abs(snr - target_db);
            chosen = restored;
            chosen_db = snr;
            chosen_version = entry.version;
        }
    }

    std::filesystem::create_directories("bench_outputs");
    writePgm(scene, "bench_outputs/fig17_input.pgm");
    writePgm(chosen, "bench_outputs/fig17_approx.pgm");

    std::cout << "wrote bench_outputs/fig17_{input,approx}.pgm\n";
    std::cout << "approx: perforation level " << chosen_version << " at "
              << formatDouble(chosen_db, 1)
              << " dB (paper: 16.8 dB at 78% runtime); the precise "
                 "reconstruction equals the input bit-for-bit\n\n";
    return 0;
}
