/**
 * @file
 * Figure 18: sample outputs of the kmeans automaton — the intermediate
 * clustered image nearest the paper's 16.7 dB point and the precise
 * clustered image, written as PPM files.
 */

#include <cmath>
#include <filesystem>
#include <iostream>

#include "apps/kmeans.hpp"
#include "bench_common.hpp"
#include "harness/profiler.hpp"
#include "harness/report.hpp"
#include "image/generate.hpp"
#include "image/io.hpp"
#include "image/metrics.hpp"

using namespace anytime;

int
main(int argc, char **argv)
{
    const double scale = parseScale(argc, argv);
    const std::size_t extent = scaledExtent(224, scale);

    printBanner("Figure 18: kmeans sample outputs",
                "(a) 63% runtime, SNR 16.7 dB vs (b) baseline precise");

    const RgbImage scene = generateColorScene(extent, extent, 18);
    const unsigned k = 8;
    const KmeansResult precise = kmeansCluster(scene, k);

    KmeansConfig config;
    config.clusters = k;
    config.publishCount = 32;
    auto bundle = makeKmeansAutomaton(scene, config);

    TimelineRecorder<KmeansResult> recorder(*bundle.output);
    recorder.startClock();
    bundle.automaton->start();
    bundle.automaton->waitUntilDone();
    bundle.automaton->shutdown();

    const double target_db = 16.7;
    double best_delta = 1e18;
    RgbImage chosen = precise.image;
    double chosen_db = 0;
    for (const auto &entry : recorder.entries()) {
        const double snr =
            signalToNoiseDb(precise.image, entry.value->image);
        if (std::isfinite(snr) &&
            std::abs(snr - target_db) < best_delta) {
            best_delta = std::abs(snr - target_db);
            chosen = entry.value->image;
            chosen_db = snr;
        }
    }

    std::filesystem::create_directories("bench_outputs");
    writePpm(scene, "bench_outputs/fig18_input.ppm");
    writePpm(chosen, "bench_outputs/fig18_approx.ppm");
    writePpm(precise.image, "bench_outputs/fig18_precise.ppm");

    std::cout << "wrote bench_outputs/fig18_{input,approx,precise}.ppm\n";
    std::cout << "approx version: " << formatDouble(chosen_db, 1)
              << " dB (paper: 16.7 dB at 63% runtime)\n\n";
    return 0;
}
