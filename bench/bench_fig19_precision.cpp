/**
 * @file
 * Figure 19: 2dconv accuracy versus output-sample size at 8/6/4/2-bit
 * pixel precision (reduced fixed-point precision combined with tree
 * output sampling). The paper reports 37.9 dB (6-bit) and 24.2 dB
 * (4-bit) at full sample size; 8-bit reaches the precise output.
 *
 * The reduced-precision sweeps run the MSB-first digit-elision kernel
 * (QuantizedKernel): planes below the precision floor are structurally
 * elided, all-zero planes are skipped in O(1), and pixels whose output
 * byte is already pinned exit early — so fewer precision bits is a
 * *wall-clock* win, not just masked recompute. The bench times each
 * sweep and reports the elision counters next to the accuracy series.
 */

#include <cmath>
#include <iostream>
#include <vector>

#include "apps/conv2d.hpp"
#include "bench_common.hpp"
#include "harness/profiler.hpp"
#include "harness/report.hpp"
#include "image/generate.hpp"
#include "image/metrics.hpp"
#include "image/progressive.hpp"
#include "sampling/tree_permutation.hpp"
#include "simd/simd.hpp"

using namespace anytime;

int
main(int argc, char **argv)
{
    const double scale = parseScale(argc, argv);
    const std::size_t extent = scaledExtent(256, scale);

    printBanner("Figure 19: 2dconv sample size vs SNR at reduced pixel "
                "precision",
                "at full sample: inf dB (8b), 37.9 dB (6b), 24.2 dB "
                "(4b), ~10 dB (2b)");

    const GrayImage scene = generateScene(extent, extent, 19);
    const Kernel kernel = Kernel::gaussianBlur(3);
    const QuantizedKernel qkernel(kernel);
    const GrayImage precise = convolve(scene, kernel);
    std::cout << "input: " << extent << "x" << extent << ", simd isa: "
              << simd::isaName(simd::activeIsa()) << "\n";

    const std::vector<unsigned> precisions{8, 6, 4, 2};
    const TreePermutation perm =
        TreePermutation::twoDim(scene.height(), scene.width());
    const std::uint64_t pixels = perm.size();

    // Checkpoints at sample fractions 2^-10 .. 1.
    std::vector<std::uint64_t> checkpoints;
    for (int shift = 10; shift >= 1; --shift)
        checkpoints.push_back(std::max<std::uint64_t>(1, pixels >> shift));
    checkpoints.push_back(pixels);

    SeriesTable table;
    table.title = "fig19_precision";
    table.columns = {"sample_frac", "snr_8b", "snr_6b", "snr_4b",
                     "snr_2b"};
    std::vector<std::vector<double>> series(precisions.size());

    for (std::size_t p = 0; p < precisions.size(); ++p) {
        const unsigned bits = precisions[p];
        GrayImage approx(scene.width(), scene.height(), 0);
        std::size_t next_checkpoint = 0;
        for (std::uint64_t step = 0; step < pixels; ++step) {
            const auto [x, y] =
                treeSampleCoords(perm, step, scene.width());
            // 8-bit runs the exact float kernel (the paper's precise
            // output); <8-bit runs the MSB-first digit-elision kernel.
            const std::uint8_t value =
                bits >= 8 ? convolvePixel(scene, kernel, x, y)
                          : qkernel.convolvePixel(scene, x, y, bits);
            fillTreeBlock(approx, perm, step, value);
            while (next_checkpoint < checkpoints.size() &&
                   step + 1 == checkpoints[next_checkpoint]) {
                series[p].push_back(signalToNoiseDb(precise, approx));
                ++next_checkpoint;
            }
        }
    }

    for (std::size_t c = 0; c < checkpoints.size(); ++c) {
        std::vector<std::string> row;
        row.push_back(formatDouble(
            static_cast<double>(checkpoints[c]) /
                static_cast<double>(pixels),
            4));
        for (std::size_t p = 0; p < precisions.size(); ++p)
            row.push_back(formatDouble(series[p][c], 1));
        table.rows.push_back(row);
    }
    printTable(table);

    std::cout << "at full sample size: "
              << formatDouble(series[1].back(), 1) << " dB (6b, paper "
              << "37.9) and " << formatDouble(series[2].back(), 1)
              << " dB (4b, paper 24.2)\n\n";

    // Digit-elision effectiveness: kernel-only wall clock per precision
    // (raster scan over every pixel, best of 3 — no sweep plumbing in
    // the measurement) plus how many bit planes were actually
    // evaluated. Lower precision must trend faster: planes below the
    // precision floor are structurally elided.
    std::cout << "### digit elision (kernel-only full image, best of 3)\n";
    std::vector<double> kernel_seconds(precisions.size(), 0.0);
    std::vector<QuantizedKernel::ElisionStats> elision(precisions.size());
    volatile std::uint64_t sink = 0; // keep the timed loops live
    for (std::size_t p = 0; p < precisions.size(); ++p) {
        const unsigned bits = precisions[p];
        kernel_seconds[p] = timeBestOf(
            [&] {
                std::uint64_t sum = 0;
                for (std::size_t y = 0; y < scene.height(); ++y) {
                    for (std::size_t x = 0; x < scene.width(); ++x) {
                        sum += bits >= 8
                                   ? convolvePixel(scene, kernel, x, y)
                                   : qkernel.convolvePixel(scene, x, y,
                                                           bits);
                    }
                }
                sink += sum;
            },
            3);
        if (bits < 8) {
            for (std::size_t y = 0; y < scene.height(); ++y) {
                for (std::size_t x = 0; x < scene.width(); ++x)
                    (void)qkernel.convolvePixel(scene, x, y, bits,
                                                &elision[p]);
            }
        }
    }
    for (std::size_t p = 0; p < precisions.size(); ++p) {
        const unsigned bits = precisions[p];
        std::cout << bits
                  << "b  kernel=" << formatDouble(kernel_seconds[p], 4)
                  << " s";
        if (bits < 8) {
            const auto &stats = elision[p];
            const double run_frac =
                stats.planesConsidered > 0
                    ? static_cast<double>(stats.planesRun) /
                          static_cast<double>(stats.planesConsidered)
                    : 0.0;
            std::cout << "  planes run "
                      << formatDouble(100.0 * run_frac, 1) << "% ("
                      << stats.planesRun << "/" << stats.planesConsidered
                      << ")  early-exit pixels " << stats.pixelsEarlyExit;
        } else {
            std::cout << "  (exact float kernel)";
        }
        std::cout << "\n";
    }
    if (kernel_seconds[1] > 0.0 && kernel_seconds.back() > 0.0) {
        std::cout << "2b kernel speedup over 6b: "
                  << formatDouble(kernel_seconds[1] /
                                      kernel_seconds.back(),
                                  2)
                  << "x\n\n";
    }
    return 0;
}
