/**
 * @file
 * Figure 19: 2dconv accuracy versus output-sample size at 8/6/4/2-bit
 * pixel precision (reduced fixed-point precision combined with tree
 * output sampling). The paper reports 37.9 dB (6-bit) and 24.2 dB
 * (4-bit) at full sample size; 8-bit reaches the precise output.
 */

#include <cmath>
#include <iostream>
#include <vector>

#include "apps/conv2d.hpp"
#include "bench_common.hpp"
#include "harness/report.hpp"
#include "image/generate.hpp"
#include "image/metrics.hpp"
#include "image/progressive.hpp"
#include "sampling/tree_permutation.hpp"

using namespace anytime;

int
main(int argc, char **argv)
{
    const double scale = parseScale(argc, argv);
    const std::size_t extent = scaledExtent(256, scale);

    printBanner("Figure 19: 2dconv sample size vs SNR at reduced pixel "
                "precision",
                "at full sample: inf dB (8b), 37.9 dB (6b), 24.2 dB "
                "(4b), ~10 dB (2b)");

    const GrayImage scene = generateScene(extent, extent, 19);
    const Kernel kernel = Kernel::gaussianBlur(3);
    const GrayImage precise = convolve(scene, kernel);

    const std::vector<unsigned> precisions{8, 6, 4, 2};
    const TreePermutation perm =
        TreePermutation::twoDim(scene.height(), scene.width());
    const std::uint64_t pixels = perm.size();

    // Checkpoints at sample fractions 2^-10 .. 1.
    std::vector<std::uint64_t> checkpoints;
    for (int shift = 10; shift >= 1; --shift)
        checkpoints.push_back(std::max<std::uint64_t>(1, pixels >> shift));
    checkpoints.push_back(pixels);

    SeriesTable table;
    table.title = "fig19_precision";
    table.columns = {"sample_frac", "snr_8b", "snr_6b", "snr_4b",
                     "snr_2b"};
    std::vector<std::vector<double>> series(precisions.size());

    for (std::size_t p = 0; p < precisions.size(); ++p) {
        GrayImage approx(scene.width(), scene.height(), 0);
        std::size_t next_checkpoint = 0;
        for (std::uint64_t step = 0; step < pixels; ++step) {
            const auto [x, y] =
                treeSampleCoords(perm, step, scene.width());
            approx.at(x, y) = 0; // value set by fillTreeBlock below
            fillTreeBlock(approx, perm, step,
                          convolvePixelQuantized(scene, kernel, x, y,
                                                 precisions[p]));
            while (next_checkpoint < checkpoints.size() &&
                   step + 1 == checkpoints[next_checkpoint]) {
                series[p].push_back(signalToNoiseDb(precise, approx));
                ++next_checkpoint;
            }
        }
    }

    for (std::size_t c = 0; c < checkpoints.size(); ++c) {
        std::vector<std::string> row;
        row.push_back(formatDouble(
            static_cast<double>(checkpoints[c]) /
                static_cast<double>(pixels),
            4));
        for (std::size_t p = 0; p < precisions.size(); ++p)
            row.push_back(formatDouble(series[p][c], 1));
        table.rows.push_back(row);
    }
    printTable(table);

    std::cout << "at full sample size: "
              << formatDouble(series[1].back(), 1) << " dB (6b, paper "
              << "37.9) and " << formatDouble(series[2].back(), 1)
              << " dB (4b, paper 24.2)\n\n";
    return 0;
}
