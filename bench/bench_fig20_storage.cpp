/**
 * @file
 * Figure 20: 2dconv accuracy versus output-sample size when the input
 * image lives in simulated approximate SRAM with per-bit read-upset
 * probabilities 0 / 1e-7 / 1e-5 (the paper's drowsy-cache sweep; 1e-5
 * is the point estimated to yield ~90% supply-power savings [19]).
 * Upsets are data-destructive: corruption accumulates with the number
 * of elements processed, which is why the paper notes the curves line
 * up at low sample sizes.
 */

#include <iostream>
#include <vector>

#include "approx/storage.hpp"
#include "apps/conv2d.hpp"
#include "bench_common.hpp"
#include "harness/report.hpp"
#include "image/generate.hpp"
#include "image/metrics.hpp"
#include "image/progressive.hpp"
#include "sampling/tree_permutation.hpp"

using namespace anytime;

namespace {

/** Clamp a coordinate to [0, n). */
std::size_t
clampIndex(std::ptrdiff_t k, std::size_t n)
{
    if (k < 0)
        return 0;
    if (k >= static_cast<std::ptrdiff_t>(n))
        return n - 1;
    return static_cast<std::size_t>(k);
}

/** Convolve one pixel, reading the neighborhood from faulty storage. */
std::uint8_t
convolvePixelFromStorage(ApproxStorage<std::uint8_t> &storage,
                         std::size_t width, std::size_t height,
                         const Kernel &kernel, std::size_t x,
                         std::size_t y)
{
    const int r = static_cast<int>(kernel.radius());
    float acc = 0.f;
    for (int dy = -r; dy <= r; ++dy) {
        for (int dx = -r; dx <= r; ++dx) {
            const std::size_t sx =
                clampIndex(static_cast<std::ptrdiff_t>(x) + dx, width);
            const std::size_t sy =
                clampIndex(static_cast<std::ptrdiff_t>(y) + dy, height);
            acc += kernel.tap(dx, dy) *
                   static_cast<float>(storage.read(sy * width + sx));
        }
    }
    return static_cast<std::uint8_t>(
        acc <= 0.f ? 0 : (acc >= 255.f ? 255 : acc + 0.5f));
}

} // namespace

int
main(int argc, char **argv)
{
    const double scale = parseScale(argc, argv);
    const std::size_t extent = scaledExtent(320, scale);

    printBanner("Figure 20: 2dconv sample size vs SNR under SRAM read "
                "upsets",
                "probabilities 0 / 1e-7 / 1e-5 per bit; curves overlap "
                "at low sample sizes, diverge as corruption accumulates");

    const GrayImage scene = generateScene(extent, extent, 20);
    const Kernel kernel = Kernel::gaussianBlur(2);
    const GrayImage precise = convolve(scene, kernel);

    const std::vector<double> probabilities{0.0, 1e-7, 1e-5};
    const TreePermutation perm =
        TreePermutation::twoDim(scene.height(), scene.width());
    const std::uint64_t pixels = perm.size();

    std::vector<std::uint64_t> checkpoints;
    for (int shift = 8; shift >= 1; --shift)
        checkpoints.push_back(std::max<std::uint64_t>(1, pixels >> shift));
    checkpoints.push_back(pixels);

    std::vector<std::vector<double>> series(probabilities.size());
    std::vector<std::uint64_t> upsets(probabilities.size());

    for (std::size_t p = 0; p < probabilities.size(); ++p) {
        ApproxStorage<std::uint8_t> storage(scene.size(), 0x5eed + p,
                                            probabilities[p]);
        storage.flush(scene.data());
        GrayImage approx(scene.width(), scene.height(), 0);
        std::size_t next_checkpoint = 0;
        for (std::uint64_t step = 0; step < pixels; ++step) {
            const auto [x, y] =
                treeSampleCoords(perm, step, scene.width());
            fillTreeBlock(approx, perm, step,
                          convolvePixelFromStorage(storage, scene.width(),
                                                   scene.height(), kernel,
                                                   x, y));
            while (next_checkpoint < checkpoints.size() &&
                   step + 1 == checkpoints[next_checkpoint]) {
                series[p].push_back(signalToNoiseDb(precise, approx));
                ++next_checkpoint;
            }
        }
        upsets[p] = storage.upsetCount();
    }

    SeriesTable table;
    table.title = "fig20_storage";
    table.columns = {"sample_frac", "snr_p0", "snr_p1e-7", "snr_p1e-5"};
    for (std::size_t c = 0; c < checkpoints.size(); ++c) {
        std::vector<std::string> row;
        row.push_back(formatDouble(
            static_cast<double>(checkpoints[c]) /
                static_cast<double>(pixels),
            4));
        for (std::size_t p = 0; p < probabilities.size(); ++p)
            row.push_back(formatDouble(series[p][c], 1));
        table.rows.push_back(row);
    }
    printTable(table);

    std::cout << "total injected upsets: p=0 -> " << upsets[0]
              << ", p=1e-7 -> " << upsets[1] << ", p=1e-5 -> "
              << upsets[2]
              << " (flip count tracks elements processed, as the paper "
                 "notes)\n\n";
    return 0;
}
