/**
 * @file
 * Section IV-C3 experiment: cache locality of the sampling
 * permutations, and how much of it a deterministic permutation-aware
 * prefetcher recovers.
 *
 * Sweeps a 1-byte-per-element array through a small LRU cache in
 * sequential, tree, and LFSR order, with and without the prefetcher
 * (an address unit driven by the same deterministic counters, as the
 * paper proposes). Demand miss rates are the figure of merit.
 */

#include <iostream>
#include <memory>
#include <vector>

#include "bench_common.hpp"
#include "cachesim/cache.hpp"
#include "harness/report.hpp"
#include "sampling/lfsr_permutation.hpp"
#include "sampling/tree_permutation.hpp"

using namespace anytime;

namespace {

CacheStats
sweep(const Permutation &perm, bool with_prefetcher, unsigned distance)
{
    CacheModel cache({32 * 1024, 64, 8});
    PermutationPrefetcher prefetcher(cache, perm, 0, 1, distance);
    for (std::uint64_t i = 0; i < perm.size(); ++i) {
        if (with_prefetcher)
            prefetcher.onSample(i ? i - 1 : 0);
        cache.access(perm.map(i));
    }
    return cache.stats();
}

} // namespace

int
main(int argc, char **argv)
{
    const double scale = parseScale(argc, argv);
    const std::size_t side = scaledExtent(512, scale);
    const std::uint64_t elements =
        static_cast<std::uint64_t>(side) * side;

    printBanner("Section IV-C3: sampling locality and deterministic "
                "prefetching",
                "non-sequential permutations suffer high miss rates; a "
                "prefetcher driven by the same deterministic counters "
                "recovers them");
    std::cout << "array: " << elements
              << " x 1B elements; cache: 32 KiB, 64B lines, 8-way; "
                 "prefetch distance 8\n";

    std::vector<std::pair<std::string, std::unique_ptr<Permutation>>>
        orders;
    orders.emplace_back("sequential", std::make_unique<SequentialPermutation>(
                                          elements));
    orders.emplace_back("tree",
                        std::make_unique<TreePermutation>(
                            TreePermutation::twoDim(side, side)));
    orders.emplace_back("lfsr",
                        std::make_unique<LfsrPermutation>(elements, 9));

    SeriesTable table;
    table.title = "locality";
    table.columns = {"permutation", "miss_rate", "miss_rate_prefetch",
                     "prefetch_fills"};
    for (const auto &[name, perm] : orders) {
        const CacheStats base = sweep(*perm, false, 8);
        const CacheStats helped = sweep(*perm, true, 8);
        table.rows.push_back({name, formatDouble(base.missRate(), 4),
                              formatDouble(helped.missRate(), 4),
                              std::to_string(helped.prefetchFills)});
    }
    printTable(table);
    std::cout << "prefetching trades demand misses for deterministic "
                 "fills issued ahead of the stream (paper: 'overhead "
                 "and complexity of such prefetchers is minimal')\n\n";
    return 0;
}
