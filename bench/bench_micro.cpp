/**
 * @file
 * Micro-benchmarks (google-benchmark) for the substrate primitives:
 * permutation mapping throughput, versioned-buffer publish/read, update
 * channel transfer, fault injection, and progressive block fill. These
 * quantify the model's bookkeeping overheads relative to application
 * work (Section IV-C3's locality discussion motivates the permutation
 * cost numbers).
 */

#include <benchmark/benchmark.h>

#include "approx/storage.hpp"
#include "core/buffer.hpp"
#include "core/channel.hpp"
#include "image/progressive.hpp"
#include "sampling/lfsr_permutation.hpp"
#include "sampling/tree_permutation.hpp"

namespace anytime {
namespace {

void
BM_TreePermutationPow2(benchmark::State &state)
{
    TreePermutation perm = TreePermutation::twoDim(256, 256);
    std::uint64_t i = 0;
    for (auto _ : state) {
        benchmark::DoNotOptimize(perm.map(i));
        i = (i + 1) % perm.size();
    }
}
BENCHMARK(BM_TreePermutationPow2);

void
BM_TreePermutationNonPow2(benchmark::State &state)
{
    TreePermutation perm = TreePermutation::twoDim(240, 250);
    std::uint64_t i = 0;
    for (auto _ : state) {
        benchmark::DoNotOptimize(perm.map(i));
        i = (i + 1) % perm.size();
    }
}
BENCHMARK(BM_TreePermutationNonPow2);

void
BM_LfsrPermutationBuild(benchmark::State &state)
{
    const std::uint64_t n = static_cast<std::uint64_t>(state.range(0));
    for (auto _ : state) {
        LfsrPermutation perm(n, 1);
        benchmark::DoNotOptimize(perm.map(n / 2));
    }
    state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                            static_cast<std::int64_t>(n));
}
BENCHMARK(BM_LfsrPermutationBuild)->Arg(1 << 12)->Arg(1 << 16);

void
BM_LfsrPermutationMap(benchmark::State &state)
{
    LfsrPermutation perm(1 << 16, 1);
    std::uint64_t i = 0;
    for (auto _ : state) {
        benchmark::DoNotOptimize(perm.map(i));
        i = (i + 1) % perm.size();
    }
}
BENCHMARK(BM_LfsrPermutationMap);

void
BM_BufferPublish(benchmark::State &state)
{
    const std::size_t bytes = static_cast<std::size_t>(state.range(0));
    VersionedBuffer<std::vector<std::uint8_t>> buffer("bench");
    const std::vector<std::uint8_t> payload(bytes, 1);
    for (auto _ : state)
        buffer.publish(payload, false);
    state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                            static_cast<std::int64_t>(bytes));
}
BENCHMARK(BM_BufferPublish)->Arg(1 << 10)->Arg(1 << 16)->Arg(1 << 20);

void
BM_BufferRead(benchmark::State &state)
{
    VersionedBuffer<std::vector<std::uint8_t>> buffer("bench");
    buffer.publish(std::vector<std::uint8_t>(4096, 1), false);
    for (auto _ : state)
        benchmark::DoNotOptimize(buffer.read());
}
BENCHMARK(BM_BufferRead);

void
BM_ChannelTransfer(benchmark::State &state)
{
    UpdateChannel<int> channel(16);
    std::stop_source source;
    for (auto _ : state) {
        (void)channel.push(1, source.get_token());
        benchmark::DoNotOptimize(channel.pop(source.get_token()));
    }
}
BENCHMARK(BM_ChannelTransfer);

void
BM_FaultInjectorConsume(benchmark::State &state)
{
    FaultInjector injector(1e-6, 42);
    std::uint64_t flips = 0;
    for (auto _ : state)
        injector.consume(4096, [&](std::uint64_t) { ++flips; });
    benchmark::DoNotOptimize(flips);
    state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                            4096);
}
BENCHMARK(BM_FaultInjectorConsume);

void
BM_TreeBlockFillSweep(benchmark::State &state)
{
    TreePermutation perm = TreePermutation::twoDim(128, 128);
    GrayImage image(128, 128, 0);
    for (auto _ : state) {
        for (std::uint64_t step = 0; step < perm.size(); ++step)
            fillTreeBlock(image, perm, step, std::uint8_t(step & 0xff));
        benchmark::DoNotOptimize(image.data().data());
    }
    state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                            static_cast<std::int64_t>(perm.size()));
}
BENCHMARK(BM_TreeBlockFillSweep);

} // namespace
} // namespace anytime

BENCHMARK_MAIN();
