/**
 * @file
 * Network serving overhead: time-to-first-version over loopback.
 *
 * The anytime contract's service-level promise is a *useful answer
 * early*; the wire must not eat that earliness. This bench runs the
 * same deterministic counter pipeline two ways:
 *
 *  - in process: requests submitted straight into an AnytimeServer,
 *    first-version latency taken from ServiceResponse (the version
 *    sink timestamps the first publish at dispatch);
 *  - loopback: the same requests through the epoll front-end and the
 *    binary streaming protocol, first-version latency measured by the
 *    client from request write to the first VERSION frame.
 *
 * Both phases use the same closed-loop client structure with seeded
 * exponential think time (--arrival-seed). Reported: t90 of
 * time-to-first-version per phase and the net/in-process ratio — the
 * acceptance bar is the wire staying within 2x of in-process.
 */

#include <algorithm>
#include <chrono>
#include <cmath>
#include <cstdio>
#include <iostream>
#include <random>
#include <string>
#include <thread>
#include <vector>

#include "bench_common.hpp"
#include "net/catalog.hpp"
#include "net/client.hpp"
#include "net/server.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "service/server.hpp"
#include "support/sync.hpp"

using namespace anytime;
using namespace anytime::net;
using namespace std::chrono_literals;

namespace {

struct Workload
{
    /** Counter input spec "steps:step_us:publish_period". */
    std::string input;
    unsigned clients = 4;
    unsigned perClient = 6;
    unsigned stageWorkers = 1;
    std::uint64_t arrivalSeed = 0x5eed;
    /** Mean think time between a client's requests. */
    std::chrono::microseconds meanGap{2000};
};

/** Nearest-rank percentile of @p samples (copied; small vectors). */
double
percentile(std::vector<double> samples, double p)
{
    if (samples.empty())
        return std::numeric_limits<double>::quiet_NaN();
    std::sort(samples.begin(), samples.end());
    const auto rank = static_cast<std::size_t>(
        std::ceil(p / 100.0 * static_cast<double>(samples.size())));
    return samples[std::min(rank == 0 ? 0 : rank - 1,
                            samples.size() - 1)];
}

/** Closed-loop client think time, seeded per client for replay. */
std::chrono::duration<double>
thinkTime(std::mt19937_64 &rng, const Workload &load)
{
    std::exponential_distribution<double> gap(
        1.0 /
        std::chrono::duration<double>(load.meanGap).count());
    return std::chrono::duration<double>(gap(rng));
}

/** Phase 1: straight into the service, no sockets. */
std::vector<double>
runInProcess(const PipelineCatalog &catalog, const Workload &load)
{
    AnytimeServer server({.workers = 4, .maxQueueDepth = 64});
    Mutex mutex;
    std::vector<double> firsts;
    std::vector<std::thread> sessions;
    for (unsigned client = 0; client < load.clients; ++client) {
        sessions.emplace_back([&, client] {
            std::mt19937_64 rng(load.arrivalSeed + client);
            for (unsigned i = 0; i < load.perClient; ++i) {
                NetRequestParams params;
                params.input = load.input;
                params.deadline = 10s;
                params.stageWorkers = load.stageWorkers;
                ServiceRequest request;
                request.name = "counter";
                request.deadline = params.deadline;
                request.stageWorkers = params.stageWorkers;
                request.factory =
                    catalog.build("counter", params).factory;
                const ServiceResponse response =
                    server.submit(std::move(request)).get();
                if (!std::isnan(response.firstVersionSeconds)) {
                    MutexLock lock(mutex);
                    firsts.push_back(response.firstVersionSeconds);
                }
                std::this_thread::sleep_for(thinkTime(rng, load));
            }
        });
    }
    for (auto &session : sessions)
        session.join();
    server.drain();
    return firsts;
}

/** Phase 2: the same closed loop through the epoll front-end. */
std::vector<double>
runLoopback(std::shared_ptr<PipelineCatalog> catalog,
            const Workload &load)
{
    NetServerConfig config;
    config.catalog = std::move(catalog);
    config.service.workers = 4;
    config.service.maxQueueDepth = 64;
    // Coalescing off: every request must pay the full wire round
    // trip, or the overhead measurement would be flattered.
    config.coalesce = false;
    NetServer server(std::move(config));

    ClientOptions options;
    options.port = server.port();
    options.timeout = 15000ms;

    Mutex mutex;
    std::vector<double> firsts;
    std::vector<std::thread> sessions;
    for (unsigned client = 0; client < load.clients; ++client) {
        sessions.emplace_back([&, client] {
            std::mt19937_64 rng(load.arrivalSeed + client);
            for (unsigned i = 0; i < load.perClient; ++i) {
                RequestFrame request;
                request.pipeline = "counter";
                request.input = load.input;
                request.deadlineMicros = 10000000;
                request.stageWorkers = load.stageWorkers;
                const ClientResult result =
                    runRequest(options, request);
                if (result.ok &&
                    !std::isnan(result.firstVersionSeconds)) {
                    MutexLock lock(mutex);
                    firsts.push_back(result.firstVersionSeconds);
                }
                std::this_thread::sleep_for(thinkTime(rng, load));
            }
        });
    }
    for (auto &session : sessions)
        session.join();
    return firsts;
}

} // namespace

int
main(int argc, char **argv)
{
    const double scale = parseScale(argc, argv);
    Workload load;
    load.clients = parseUnsignedOption(argc, argv, "--clients", 4);
    load.perClient =
        parseUnsignedOption(argc, argv, "--per-client", 6);
    load.stageWorkers =
        parseUnsignedOption(argc, argv, "--stage-workers", 1);
    // --arrival-seed <n>: reseed the closed-loop think-time schedule
    // (both phases replay the same schedule for a fair comparison).
    load.arrivalSeed = parseUnsignedOption(argc, argv, "--arrival-seed",
                                           0x5eed);
    const std::string json_path =
        parseStringOption(argc, argv, "--json");
    // --trace <path>: capture a Chrome trace-event JSON of the whole
    // run (open in Perfetto / chrome://tracing). --metrics <path>:
    // dump the live registry as Prometheus text at exit. Same flags
    // as bench_service_load, so the two benches diff cleanly.
    const std::string trace_path =
        parseStringOption(argc, argv, "--trace");
    const std::string metrics_path =
        parseStringOption(argc, argv, "--metrics");
    if (!trace_path.empty())
        obs::setTracingEnabled(true);

    // The counter runs steps * step_us of work and publishes its
    // first version after one publish period — sized so compute, not
    // the wire, dominates time-to-first-version at every scale.
    const auto steps =
        static_cast<unsigned long>(scaledExtent(256, scale));
    load.input = std::to_string(steps) + ":100:" +
                 std::to_string(std::max<unsigned long>(steps / 8, 1));

    printBanner("anytime streaming over loopback",
                "no paper figure: serving-layer extension; the wire "
                "must keep the first useful answer early");
    std::cout << "counter " << load.input << ", " << load.clients
              << " clients x " << load.perClient << " requests, seed "
              << load.arrivalSeed << ", " << load.stageWorkers
              << " worker(s) per stage\n\n";

    auto catalog = std::make_shared<PipelineCatalog>();
    registerCounterPipeline(*catalog);

    const std::vector<double> inproc = runInProcess(*catalog, load);
    const std::vector<double> netted = runLoopback(catalog, load);

    const double inproc_t90_ms = percentile(inproc, 90) * 1e3;
    const double net_t90_ms = percentile(netted, 90) * 1e3;
    const double ratio =
        inproc_t90_ms > 0.0 ? net_t90_ms / inproc_t90_ms
                            : std::numeric_limits<double>::quiet_NaN();

    std::printf("%-12s %10s %10s\n", "phase", "samples",
                "t90_first_ms");
    std::printf("%-12s %10zu %10.3f\n", "in-process", inproc.size(),
                inproc_t90_ms);
    std::printf("%-12s %10zu %10.3f\n", "loopback", netted.size(),
                net_t90_ms);
    std::printf("\nnet/in-process t90 ratio: %.2fx (acceptance bar: "
                "within 2x)\n",
                ratio);

    if (!json_path.empty()) {
        std::FILE *out = std::fopen(json_path.c_str(), "w");
        if (!out) {
            std::cerr << "cannot write " << json_path << "\n";
            return 1;
        }
        std::fprintf(out, "{\n");
        std::fprintf(out, "  \"bench\": \"net_load\",\n");
        std::fprintf(out, "  \"input\": \"%s\",\n",
                     load.input.c_str());
        std::fprintf(out, "  \"clients\": %u,\n", load.clients);
        std::fprintf(out, "  \"per_client\": %u,\n", load.perClient);
        std::fprintf(out, "  \"arrival_seed\": %llu,\n",
                     static_cast<unsigned long long>(load.arrivalSeed));
        std::fprintf(out, "  \"inproc_samples\": %zu,\n",
                     inproc.size());
        std::fprintf(out, "  \"net_samples\": %zu,\n", netted.size());
        std::fprintf(out, "  \"inproc_t90_first_ms\": %.6f,\n",
                     inproc_t90_ms);
        std::fprintf(out, "  \"net_t90_first_ms\": %.6f,\n",
                     net_t90_ms);
        std::fprintf(out, "  \"ratio\": %.6f\n", ratio);
        std::fprintf(out, "}\n");
        std::fclose(out);
        std::cout << "json written to " << json_path << "\n";
    }

    if (!metrics_path.empty()) {
        if (obs::defaultRegistry().writePrometheus(metrics_path))
            std::cout << "metrics snapshot written to " << metrics_path
                      << " (Prometheus text format)\n";
        else
            std::cerr << "cannot write metrics to " << metrics_path
                      << "\n";
    }
    if (!trace_path.empty()) {
        obs::setTracingEnabled(false);
        if (obs::writeChromeTrace(trace_path))
            std::cout << "trace written to " << trace_path << " ("
                      << obs::retainedRecords() << " events, "
                      << obs::droppedRecords()
                      << " dropped); open in Perfetto or "
                         "chrome://tracing\n";
        else
            std::cerr << "cannot write trace to " << trace_path << "\n";
    }

    // Lost samples mean requests that never streamed a version —
    // report rather than silently shrinking the percentile base.
    const std::size_t expected = std::size_t{load.clients} * load.perClient;
    if (inproc.size() < expected || netted.size() < expected)
        std::cout << "note: " << (expected - inproc.size())
                  << " in-process / " << (expected - netted.size())
                  << " loopback request(s) produced no version\n";
    return 0;
}
