/**
 * @file
 * Section IV-C2 ablation: pipeline scheduling. For the paper's Figure 2
 * pipeline (f -> g, h -> i with anytime stages), thread allocation
 * trades off time-to-first-output against inter-output gap: giving
 * threads to the longest *upstream* stage (f) accelerates the first
 * approximate output O_1111, while giving them to the *final* stage (i)
 * tightens the gap between consecutive outputs.
 *
 * We run the diamond with different worker allocations for f and i and
 * report first-output latency and the mean gap between sink versions.
 */

#include <iostream>
#include <vector>

#include "bench_common.hpp"
#include "core/automaton.hpp"
#include "core/source_stage.hpp"
#include "core/transform_stage.hpp"
#include "harness/profiler.hpp"
#include "harness/report.hpp"

using namespace anytime;

namespace {

volatile std::uint64_t workSink = 0;

void
spin(std::uint64_t units)
{
    // Serially dependent LCG chain: cannot be strength-reduced to a
    // closed form, so the loop really burns `units` of work.
    std::uint64_t acc = workSink + 1;
    for (std::uint64_t i = 0; i < units; ++i)
        acc = acc * 6364136223846793005ULL + 1442695040888963407ULL;
    workSink = acc;
}

struct SchedResult
{
    unsigned fWorkers;
    unsigned iWorkers;
    double firstOutput;
    double meanGap;
    double total;
};

/** Run the Figure 2 diamond with the given worker allocation. */
SchedResult
runDiamond(unsigned f_workers, unsigned i_workers)
{
    Automaton automaton;
    auto f_out = automaton.makeBuffer<long>("f");
    auto g_out = automaton.makeBuffer<long>("g");
    auto h_out = automaton.makeBuffer<long>("h");
    auto i_out = automaton.makeBuffer<long>("i");

    // f: the longest stage (diffusive, parallelizable).
    const std::uint64_t f_steps = 256;
    automaton.addStage(
        std::make_shared<DiffusiveSourceStage<long>>(
            "f", f_out, 0L, f_steps,
            [](std::uint64_t, long &state, StageContext &) {
                spin(60'000);
                state += 1;
            },
            /*publish_period=*/32, /*batch=*/8),
        f_workers);

    // g and h: medium anytime children (2 internal levels each).
    const auto make_child = [](long scale) {
        return [scale](const long &v, Emitter<long> &emitter,
                       StageContext &) {
            spin(1'500'000);
            emitter.emit(v * scale / 2, false);
            spin(1'500'000);
            emitter.emit(v * scale, true);
        };
    };
    automaton.addStage(std::make_shared<TransformStage<long, long>>(
        "g", f_out, g_out, make_child(2)));
    automaton.addStage(std::make_shared<TransformStage<long, long>>(
        "h", f_out, h_out, make_child(3)));

    // i: the final stage joining g and h.
    automaton.addStage(
        std::make_shared<TransformStage<long, long, long>>(
            "i", g_out, h_out, i_out,
            [](const long &g, const long &h, Emitter<long> &emitter,
               StageContext &) {
                spin(3'000'000);
                emitter.emit(g + h, true);
            }),
        i_workers);

    TimelineRecorder<long> recorder(*i_out);
    recorder.startClock();
    automaton.start();
    automaton.waitUntilDone();
    automaton.shutdown();

    const auto entries = recorder.entries();
    SchedResult result{f_workers, i_workers, 0, 0, 0};
    if (!entries.empty()) {
        result.firstOutput = entries.front().seconds;
        result.total = entries.back().seconds;
        if (entries.size() > 1) {
            result.meanGap = (entries.back().seconds -
                              entries.front().seconds) /
                             static_cast<double>(entries.size() - 1);
        }
    }
    return result;
}

} // namespace

int
main(int argc, char **argv)
{
    (void)parseScale(argc, argv);
    printBanner("Section IV-C2: pipeline scheduling ablation",
                "more threads on the longest stage f -> earlier first "
                "output; more on the final stage i -> smaller gap "
                "between consecutive outputs");
    std::cout << "hardware threads: "
              << std::thread::hardware_concurrency()
              << " (allocations only separate cleanly with >= 4)\n";
    std::cout << "note: stage i is single-consumer in this model, so "
                 "extra i workers are capped at 1; the i-heavy row "
                 "instead leaves cores free for g/h\n";

    const std::vector<std::pair<unsigned, unsigned>> allocations{
        {1, 1}, {2, 1}, {4, 1}};

    SeriesTable table;
    table.title = "sched_ablation";
    table.columns = {"f_workers", "i_workers", "first_output_s",
                     "mean_gap_s", "total_s"};
    for (const auto &[f_workers, i_workers] : allocations) {
        const SchedResult r = runDiamond(f_workers, i_workers);
        table.rows.push_back({std::to_string(r.fWorkers),
                              std::to_string(r.iWorkers),
                              formatDouble(r.firstOutput, 4),
                              formatDouble(r.meanGap, 4),
                              formatDouble(r.total, 4)});
    }
    printTable(table);
    std::cout << '\n';
    return 0;
}
