/**
 * @file
 * Serving-runtime load generator over the conv2d and kmeans automata.
 *
 * Drives an AnytimeServer in the two canonical load-testing modes:
 *
 *  - closed loop: a fixed set of clients, each submitting its next
 *    request only after the previous response arrives (latency-bound,
 *    models interactive sessions);
 *  - open loop: requests arrive on a fixed-rate exponential schedule
 *    regardless of completions (throughput-bound, models front-end
 *    fan-out; drives the server into admission control at high rates).
 *
 * Each request carries a deadline drawn from a tight/medium/loose mix.
 * Reported per scenario: deadline-hit rate, p50/p95/p99 latency, shed
 * counts, and mean quality at deadline — the QoS surface the anytime
 * model exposes (every response is valid; slack buys accuracy).
 */

#include <chrono>
#include <cstdint>
#include <iostream>
#include <random>
#include <thread>
#include <vector>

#include "apps/conv2d.hpp"
#include "apps/kmeans.hpp"
#include "bench_common.hpp"
#include "fault/fault.hpp"
#include "harness/report.hpp"
#include "image/generate.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "service/server.hpp"

using namespace anytime;
using namespace std::chrono_literals;

namespace {

const std::chrono::nanoseconds kDeadlineMix[] = {5ms, 20ms, 80ms};

ServiceRequest
conv2dRequest(const GrayImage &scene, std::chrono::nanoseconds deadline,
              unsigned stage_workers)
{
    ServiceRequest request;
    request.name = "conv2d";
    request.deadline = deadline;
    request.stageWorkers = stage_workers;
    request.factory = [&scene, stage_workers] {
        Conv2dConfig config;
        config.publishCount = 32;
        config.workers = stage_workers;
        auto bundle = makeConv2dAutomaton(scene, Kernel::gaussianBlur(3),
                                          config);
        PreparedPipeline pipeline;
        auto out = bundle.output;
        const double publish_count =
            static_cast<double>(config.publishCount);
        pipeline.progress = [out, publish_count] {
            return std::min(
                1.0, static_cast<double>(out->read().version) /
                         publish_count);
        };
        pipeline.versionCount = [out] { return out->version(); };
        // Metadata-only sink wiring: with attachSink present the
        // server timestamps the first published version, so the
        // t90_first_ms column in the report tables is live.
        pipeline.attachSink = [out, publish_count](VersionSink sink) {
            out->addObserver([sink = std::move(sink), publish_count](
                                 const Snapshot<GrayImage> &snap) {
                VersionUpdate update;
                update.version = snap.version;
                update.final = snap.final;
                update.degraded = snap.degraded;
                update.quality = std::min(
                    1.0,
                    static_cast<double>(snap.version) / publish_count);
                sink(update);
            });
        };
        pipeline.automaton = std::move(bundle.automaton);
        return pipeline;
    };
    return request;
}

ServiceRequest
kmeansRequest(const RgbImage &scene, std::chrono::nanoseconds deadline,
              unsigned stage_workers)
{
    ServiceRequest request;
    request.name = "kmeans";
    request.deadline = deadline;
    request.stageWorkers = stage_workers;
    request.factory = [&scene, stage_workers] {
        KmeansConfig config;
        config.clusters = 6;
        config.publishCount = 32;
        config.workers = stage_workers;
        auto bundle = makeKmeansAutomaton(scene, config);
        PreparedPipeline pipeline;
        auto out = bundle.output;
        const double publish_count =
            static_cast<double>(config.publishCount);
        pipeline.progress = [out, publish_count] {
            return std::min(
                1.0, static_cast<double>(out->read().version) /
                         publish_count);
        };
        pipeline.versionCount = [out] { return out->version(); };
        pipeline.attachSink = [out, publish_count](VersionSink sink) {
            out->addObserver([sink = std::move(sink), publish_count](
                                 const Snapshot<KmeansResult> &snap) {
                VersionUpdate update;
                update.version = snap.version;
                update.final = snap.final;
                update.degraded = snap.degraded;
                update.quality = std::min(
                    1.0,
                    static_cast<double>(snap.version) / publish_count);
                sink(update);
            });
        };
        pipeline.automaton = std::move(bundle.automaton);
        return pipeline;
    };
    return request;
}

using RequestMaker =
    std::function<ServiceRequest(std::chrono::nanoseconds)>;

/** Closed loop: @p clients sessions of @p per_client requests each. */
void
runClosedLoop(const std::string &workload, const RequestMaker &make,
              unsigned clients, unsigned per_client)
{
    AnytimeServer server({.workers = 4, .maxQueueDepth = 32});
    std::vector<std::thread> sessions;
    for (unsigned client = 0; client < clients; ++client) {
        sessions.emplace_back([&, client] {
            for (unsigned i = 0; i < per_client; ++i) {
                const auto deadline =
                    kDeadlineMix[(client + i) % std::size(kDeadlineMix)];
                server.submit(make(deadline)).wait();
            }
        });
    }
    for (auto &session : sessions)
        session.join();
    server.drain();
    printTable(server.metricsSnapshot().table(
        workload + " closed loop (" + std::to_string(clients) +
        " clients x " + std::to_string(per_client) + " requests)"));
}

/** Open loop: @p total arrivals, exponential @p mean_gap spacing. */
void
runOpenLoop(const std::string &workload, const RequestMaker &make,
            unsigned total, std::chrono::nanoseconds mean_gap,
            std::uint64_t arrival_seed)
{
    AnytimeServer server({.workers = 4, .maxQueueDepth = 16});
    std::mt19937_64 rng(arrival_seed);
    std::exponential_distribution<double> gap(
        1.0 / std::chrono::duration<double>(mean_gap).count());

    std::vector<std::future<ServiceResponse>> futures;
    futures.reserve(total);
    for (unsigned i = 0; i < total; ++i) {
        futures.push_back(server.submit(
            make(kDeadlineMix[i % std::size(kDeadlineMix)])));
        std::this_thread::sleep_for(
            std::chrono::duration<double>(gap(rng)));
    }
    for (auto &future : futures)
        future.wait();
    server.drain();
    printTable(server.metricsSnapshot().table(
        workload + " open loop (" + std::to_string(total) +
        " arrivals, mean gap " +
        formatDouble(
            std::chrono::duration<double, std::milli>(mean_gap).count(),
            1) +
        " ms)"));
}

} // namespace

int
main(int argc, char **argv)
{
    const double scale = parseScale(argc, argv);
    const std::size_t extent = scaledExtent(160, scale);
    // --trace <path>: capture a Chrome trace-event JSON of the whole
    // run (open in Perfetto / chrome://tracing). --metrics <path>:
    // dump the live registry as Prometheus text at exit.
    const std::string trace_path =
        parseStringOption(argc, argv, "--trace");
    const std::string metrics_path =
        parseStringOption(argc, argv, "--metrics");
    // --stage-workers <k>: partition each request's diffusive stage
    // among k workers (Section IV-C1); the request declares the gang
    // so admission prediction accounts for the wider footprint.
    const unsigned stage_workers =
        parseUnsignedOption(argc, argv, "--stage-workers", 1);
    // --arrival-seed <n>: reseed the open-loop arrival schedule for a
    // different but equally reproducible interleaving (the default
    // replays the historical fixed schedule).
    const std::string arrival_seed_arg =
        parseStringOption(argc, argv, "--arrival-seed");
    const std::uint64_t arrival_seed =
        arrival_seed_arg.empty() ? 0x5eed5eedULL
                                 : std::stoull(arrival_seed_arg);
    // --fault-plan <file|spec>: arm the deterministic fault injector
    // for the whole run (chaos mode; see DESIGN.md section 12 for the
    // grammar, e.g. "stage.body:conv2d.sweep=throw@3"). --chaos-seed
    // <n>: override the plan's corruption seed for a different but
    // equally reproducible schedule.
    const std::string fault_plan_arg =
        parseStringOption(argc, argv, "--fault-plan");
    const std::string chaos_seed_arg =
        parseStringOption(argc, argv, "--chaos-seed");
    if (!fault_plan_arg.empty()) {
        fault::FaultPlan plan =
            fault::FaultPlan::fromSpecOrFile(fault_plan_arg);
        if (!chaos_seed_arg.empty())
            plan.seed = std::stoull(chaos_seed_arg);
        if (!ANYTIME_FAULTS_ENABLED)
            std::cerr << "warning: built with ANYTIME_FAULTS=OFF — "
                         "fault sites are compiled out, the plan will "
                         "inject nothing\n";
        std::cout << "chaos: " << plan.describe() << "\n";
        fault::FaultInjector::arm(std::move(plan));
    }
    if (!trace_path.empty())
        obs::setTracingEnabled(true);
    printBanner("anytime serving runtime under load",
                "no paper figure: serving-layer extension; every "
                "response is a valid snapshot, slack buys accuracy");

    const GrayImage gray_scene = generateScene(extent, extent, 11);
    const RgbImage color_scene = generateColorScene(extent, extent, 13);
    std::cout << "scene: " << extent << "x" << extent
              << ", deadline mix 5/20/80 ms, pool of 4 workers, "
              << stage_workers << " worker(s) per stage, arrival seed "
              << arrival_seed << "\n\n";

    const RequestMaker conv = [&](std::chrono::nanoseconds deadline) {
        return conv2dRequest(gray_scene, deadline, stage_workers);
    };
    const RequestMaker kmeans = [&](std::chrono::nanoseconds deadline) {
        return kmeansRequest(color_scene, deadline, stage_workers);
    };

    runClosedLoop("conv2d", conv, /*clients=*/4, /*per_client=*/8);
    runClosedLoop("kmeans", kmeans, /*clients=*/4, /*per_client=*/8);
    runOpenLoop("conv2d", conv, /*total=*/48, /*mean_gap=*/4ms,
                arrival_seed);
    runOpenLoop("kmeans", kmeans, /*total=*/48, /*mean_gap=*/4ms,
                arrival_seed);

    std::cout << "\nopen-loop arrivals outpace the pool on purpose: "
                 "admission control converts most of the overload into "
                 "prompt sheds, and every request — served, shed, or "
                 "expired — gets an answer\n";

    if (!fault_plan_arg.empty()) {
        std::cout << "chaos: "
                  << fault::FaultInjector::instance().injectedTotal()
                  << " fault(s) injected\n";
        fault::FaultInjector::disarm();
    }

    if (!metrics_path.empty()) {
        std::cout << '\n';
        printTable(metricsTable(obs::defaultRegistry(),
                                "live metrics registry"));
        if (obs::defaultRegistry().writePrometheus(metrics_path))
            std::cout << "\nmetrics snapshot written to " << metrics_path
                      << " (Prometheus text format)\n";
        else
            std::cerr << "cannot write metrics to " << metrics_path
                      << "\n";
    }
    if (!trace_path.empty()) {
        if (obs::writeChromeTrace(trace_path))
            std::cout << "trace written to " << trace_path << " ("
                      << obs::retainedRecords() << " events, "
                      << obs::droppedRecords()
                      << " dropped); open in Perfetto or "
                         "chrome://tracing\n";
        else
            std::cerr << "cannot write trace to " << trace_path << "\n";
    }
    return 0;
}
