/**
 * @file
 * Serving-runtime load generator over the conv2d and kmeans automata.
 *
 * Drives an AnytimeServer in the two canonical load-testing modes:
 *
 *  - closed loop: a fixed set of clients, each submitting its next
 *    request only after the previous response arrives (latency-bound,
 *    models interactive sessions);
 *  - open loop: requests arrive on a fixed-rate exponential schedule
 *    regardless of completions (throughput-bound, models front-end
 *    fan-out; drives the server into admission control at high rates).
 *
 * Each request carries a deadline drawn from a tight/medium/loose mix.
 * Reported per scenario: deadline-hit rate, p50/p95/p99 latency, shed
 * counts, and mean quality at deadline — the QoS surface the anytime
 * model exposes (every response is valid; slack buys accuracy).
 */

#include <algorithm>
#include <chrono>
#include <cmath>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <iostream>
#include <random>
#include <thread>
#include <vector>

#include "core/source_stage.hpp"

#include "apps/conv2d.hpp"
#include "apps/kmeans.hpp"
#include "bench_common.hpp"
#include "fault/fault.hpp"
#include "harness/report.hpp"
#include "image/generate.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "service/server.hpp"

using namespace anytime;
using namespace std::chrono_literals;

namespace {

const std::chrono::nanoseconds kDeadlineMix[] = {5ms, 20ms, 80ms};

ServiceRequest
conv2dRequest(const GrayImage &scene, std::chrono::nanoseconds deadline,
              unsigned stage_workers, unsigned precision_bits = 8)
{
    ServiceRequest request;
    request.name = "conv2d";
    request.deadline = deadline;
    request.stageWorkers = stage_workers;
    request.factory = [&scene, stage_workers, precision_bits] {
        Conv2dConfig config;
        config.publishCount = 32;
        config.workers = stage_workers;
        config.precisionBits = precision_bits;
        auto bundle = makeConv2dAutomaton(scene, Kernel::gaussianBlur(3),
                                          config);
        PreparedPipeline pipeline;
        auto out = bundle.output;
        const double publish_count =
            static_cast<double>(config.publishCount);
        pipeline.progress = [out, publish_count] {
            return std::min(
                1.0, static_cast<double>(out->read().version) /
                         publish_count);
        };
        pipeline.versionCount = [out] { return out->version(); };
        // Metadata-only sink wiring: with attachSink present the
        // server timestamps the first published version, so the
        // t90_first_ms column in the report tables is live.
        pipeline.attachSink = [out, publish_count](VersionSink sink) {
            out->addObserver([sink = std::move(sink), publish_count](
                                 const Snapshot<GrayImage> &snap) {
                VersionUpdate update;
                update.version = snap.version;
                update.final = snap.final;
                update.degraded = snap.degraded;
                update.quality = std::min(
                    1.0,
                    static_cast<double>(snap.version) / publish_count);
                sink(update);
            });
        };
        pipeline.automaton = std::move(bundle.automaton);
        return pipeline;
    };
    return request;
}

ServiceRequest
kmeansRequest(const RgbImage &scene, std::chrono::nanoseconds deadline,
              unsigned stage_workers)
{
    ServiceRequest request;
    request.name = "kmeans";
    request.deadline = deadline;
    request.stageWorkers = stage_workers;
    request.factory = [&scene, stage_workers] {
        KmeansConfig config;
        config.clusters = 6;
        config.publishCount = 32;
        config.workers = stage_workers;
        auto bundle = makeKmeansAutomaton(scene, config);
        PreparedPipeline pipeline;
        auto out = bundle.output;
        const double publish_count =
            static_cast<double>(config.publishCount);
        pipeline.progress = [out, publish_count] {
            return std::min(
                1.0, static_cast<double>(out->read().version) /
                         publish_count);
        };
        pipeline.versionCount = [out] { return out->version(); };
        pipeline.attachSink = [out, publish_count](VersionSink sink) {
            out->addObserver([sink = std::move(sink), publish_count](
                                 const Snapshot<KmeansResult> &snap) {
                VersionUpdate update;
                update.version = snap.version;
                update.final = snap.final;
                update.degraded = snap.degraded;
                update.quality = std::min(
                    1.0,
                    static_cast<double>(snap.version) / publish_count);
                sink(update);
            });
        };
        pipeline.automaton = std::move(bundle.automaton);
        return pipeline;
    };
    return request;
}

using RequestMaker =
    std::function<ServiceRequest(std::chrono::nanoseconds)>;

/** Closed loop: @p clients sessions of @p per_client requests each. */
void
runClosedLoop(const std::string &workload, const RequestMaker &make,
              unsigned clients, unsigned per_client)
{
    AnytimeServer server({.workers = 4, .maxQueueDepth = 32});
    std::vector<std::thread> sessions;
    for (unsigned client = 0; client < clients; ++client) {
        sessions.emplace_back([&, client] {
            for (unsigned i = 0; i < per_client; ++i) {
                const auto deadline =
                    kDeadlineMix[(client + i) % std::size(kDeadlineMix)];
                server.submit(make(deadline)).wait();
            }
        });
    }
    for (auto &session : sessions)
        session.join();
    server.drain();
    printTable(server.metricsSnapshot().table(
        workload + " closed loop (" + std::to_string(clients) +
        " clients x " + std::to_string(per_client) + " requests)"));
}

/** Open loop: @p total arrivals, exponential @p mean_gap spacing. */
void
runOpenLoop(const std::string &workload, const RequestMaker &make,
            unsigned total, std::chrono::nanoseconds mean_gap,
            std::uint64_t arrival_seed)
{
    AnytimeServer server({.workers = 4, .maxQueueDepth = 16});
    std::mt19937_64 rng(arrival_seed);
    std::exponential_distribution<double> gap(
        1.0 / std::chrono::duration<double>(mean_gap).count());

    std::vector<std::future<ServiceResponse>> futures;
    futures.reserve(total);
    for (unsigned i = 0; i < total; ++i) {
        futures.push_back(server.submit(
            make(kDeadlineMix[i % std::size(kDeadlineMix)])));
        std::this_thread::sleep_for(
            std::chrono::duration<double>(gap(rng)));
    }
    for (auto &future : futures)
        future.wait();
    server.drain();
    printTable(server.metricsSnapshot().table(
        workload + " open loop (" + std::to_string(total) +
        " arrivals, mean gap " +
        formatDouble(
            std::chrono::duration<double, std::milli>(mean_gap).count(),
            1) +
        " ms)"));
}

// ---- Overload curves: brownout vs shed-only ------------------------

/**
 * The overload workload: a build-cheap, execution-dominated spin
 * pipeline so the *executor pool*, not the (serial) pipeline builder,
 * is the saturated resource — the regime where trading quality for
 * capacity pays. One loose uniform deadline: under overload the EDF
 * hard-stop converts excess load into partial-quality answers instead
 * of queue expiries. The progress probe is concave (sqrt of step
 * fraction), modelling the paper's refinement curves (Figs. 16-18):
 * the first versions buy most of the answer, so an early stop costs
 * far less quality than the capacity it frees.
 */
ServiceRequest
overloadRequest(unsigned stage_workers, double min_quality)
{
    ServiceRequest request;
    request.name = "spin-overload";
    request.deadline = 80ms;
    request.stageWorkers = stage_workers;
    request.minQuality = min_quality;
    request.factory = [stage_workers] {
        constexpr std::uint64_t steps = 32;
        auto automaton = std::make_unique<Automaton>();
        auto out = automaton->makeBuffer<long>("spin");
        automaton->addStage(
            std::make_shared<DiffusiveSourceStage<long>>(
                "spin", out, 0L, steps,
                [](std::uint64_t, long &state, StageContext &) {
                    state += 1;
                    std::this_thread::sleep_for(750us);
                },
                /*publish_period=*/1, /*batch=*/1),
            stage_workers);
        PreparedPipeline pipeline;
        pipeline.progress = [out] {
            const auto snap = out->read();
            return snap ? std::sqrt(static_cast<double>(*snap.value) /
                                    static_cast<double>(steps))
                        : 0.0;
        };
        pipeline.versionCount = [out] { return out->version(); };
        pipeline.automaton = std::move(automaton);
        return pipeline;
    };
    return request;
}

/** One (load multiplier, admission mode) measurement. */
struct OverloadStats
{
    double multiplier = 0.0;
    std::size_t total = 0;
    std::size_t served = 0;
    std::size_t shedTotal = 0;
    /** (served + degraded) / total — answers with real output. */
    double usefulFraction = 0.0;
    /** Mean progress quality over served requests. */
    double meanQuality = 0.0;
    /** Quality amortized over *all* requests (sheds count as zero):
     *  the quality-vs-load curve the brownout must keep above the
     *  shed-only baseline. */
    double usefulQuality = 0.0;
    double hitRate = 0.0;
    int maxLevel = 0;
    std::uint64_t transitions = 0;
    bool identityHolds = false;
};

/**
 * Drive one open-loop burst at @p multiplier times the base arrival
 * rate. With @p use_brownout the request maker consults the live
 * brownout policy at submit time — gang capped, precision ceiling
 * applied — so degradation reaches the pipelines, not just admission.
 */
OverloadStats
runOverloadPoint(unsigned stage_workers, bool use_brownout,
                 double multiplier, unsigned total,
                 std::chrono::nanoseconds base_gap,
                 std::uint64_t arrival_seed)
{
    ServerConfig config{.workers = 4, .maxQueueDepth = 16};
    config.brownout.enabled = use_brownout;
    // The bench bursts are short; evaluate every scheduler pass so the
    // ladder can engage within the burst.
    config.brownout.evalInterval = 1ms;
    AnytimeServer server(config);

    const auto make = [&] {
        unsigned gang = stage_workers;
        double min_quality = 0.0;
        if (use_brownout) {
            const BrownoutLevelPolicy policy = server.brownoutPolicy();
            if (policy.maxStageWorkers != 0)
                gang = std::min(gang, policy.maxStageWorkers);
            // The in-process realization of the precision ceiling: a
            // progress-quality target of ceiling/8. The server stops
            // the request there *only while a backlog exists*, so
            // surplus accuracy is traded exactly when someone waiting
            // would otherwise get nothing.
            if (policy.precisionBitsCeiling < 8)
                min_quality =
                    static_cast<double>(policy.precisionBitsCeiling) /
                    8.0;
        }
        return overloadRequest(gang, min_quality);
    };

    std::mt19937_64 rng(arrival_seed);
    std::exponential_distribution<double> gap(
        multiplier /
        std::chrono::duration<double>(base_gap).count());

    OverloadStats stats;
    stats.multiplier = multiplier;
    std::vector<std::future<ServiceResponse>> futures;
    futures.reserve(total);
    for (unsigned i = 0; i < total; ++i) {
        futures.push_back(server.submit(make()));
        stats.maxLevel =
            std::max(stats.maxLevel, server.brownoutLevel());
        std::this_thread::sleep_for(
            std::chrono::duration<double>(gap(rng)));
    }
    for (auto &future : futures)
        future.wait();
    server.drain();
    stats.maxLevel = std::max(stats.maxLevel, server.brownoutLevel());
    stats.transitions = server.brownoutControl().transitions();

    const ServiceMetrics metrics = server.metricsSnapshot();
    stats.total = metrics.total();
    stats.served = metrics.served();
    stats.shedTotal = metrics.shed();
    stats.usefulFraction =
        metrics.total() == 0
            ? 0.0
            : static_cast<double>(metrics.served() +
                                  metrics.degraded()) /
                  static_cast<double>(metrics.total());
    stats.meanQuality = metrics.meanQuality();
    stats.usefulQuality = stats.meanQuality * stats.usefulFraction;
    stats.hitRate = metrics.hitRate();
    stats.identityHolds =
        metrics.total() == metrics.served() + metrics.shed() +
                               metrics.expired() + metrics.failed() +
                               metrics.cancelled() + metrics.degraded();
    return stats;
}

/** Quality-vs-load comparison; returns EXIT_SUCCESS when the brownout
 *  curve dominates shed-only at every multiplier >= 2. */
int
runBrownoutCurves(unsigned stage_workers, std::uint64_t arrival_seed,
                  const std::string &json_path)
{
    // The base gap approximates one-server-capacity arrivals for the
    // bench scene; multipliers express overload relative to it.
    const auto base_gap = 12ms;
    const double multipliers[] = {1.0, 2.0, 3.0};
    // Enough arrivals per point that the post-engage steady state,
    // not the controller's ramp-up transient, dominates the averages.
    const unsigned total = 96;

    std::vector<OverloadStats> shed_only;
    std::vector<OverloadStats> brownout;
    for (const double multiplier : multipliers) {
        shed_only.push_back(runOverloadPoint(stage_workers, false,
                                             multiplier, total,
                                             base_gap, arrival_seed));
        brownout.push_back(runOverloadPoint(stage_workers, true,
                                            multiplier, total,
                                            base_gap, arrival_seed));
    }

    std::printf("%-6s %-10s %8s %8s %8s %10s %10s %6s\n", "load",
                "mode", "served", "shed", "useful", "quality",
                "q*useful", "maxL");
    bool dominates = true;
    bool identity = true;
    for (std::size_t i = 0; i < shed_only.size(); ++i) {
        for (const OverloadStats *stats :
             {&shed_only[i], &brownout[i]}) {
            std::printf(
                "%-6.1f %-10s %8zu %8zu %8.3f %10.3f %10.3f %6d\n",
                stats->multiplier,
                stats == &brownout[i] ? "brownout" : "shed-only",
                stats->served, stats->shedTotal,
                stats->usefulFraction, stats->meanQuality,
                stats->usefulQuality, stats->maxLevel);
            identity = identity && stats->identityHolds;
        }
        if (shed_only[i].multiplier >= 2.0 &&
            brownout[i].usefulQuality < shed_only[i].usefulQuality)
            dominates = false;
    }
    std::printf("\nbrownout %s the shed-only baseline at >=2x "
                "capacity (quality amortized over all requests)\n",
                dominates ? "dominates" : "DOES NOT dominate");
    if (!identity)
        std::printf("ACCOUNTING IDENTITY VIOLATED\n");

    if (!json_path.empty()) {
        std::FILE *out = std::fopen(json_path.c_str(), "w");
        if (!out) {
            std::cerr << "cannot write " << json_path << "\n";
            return EXIT_FAILURE;
        }
        std::fprintf(out, "{\n");
        std::fprintf(out,
                     "  \"bench\": \"service_load_brownout\",\n");
        std::fprintf(out, "  \"arrival_seed\": %llu,\n",
                     static_cast<unsigned long long>(arrival_seed));
        std::fprintf(out, "  \"points\": [\n");
        for (std::size_t i = 0; i < shed_only.size(); ++i) {
            const auto emit = [&](const char *mode,
                                  const OverloadStats &stats) {
                std::fprintf(
                    out,
                    "    {\"multiplier\": %.1f, \"mode\": \"%s\", "
                    "\"total\": %zu, \"served\": %zu, \"shed\": %zu, "
                    "\"useful_fraction\": %.6f, "
                    "\"mean_quality\": %.6f, "
                    "\"useful_quality\": %.6f, \"hit_rate\": %.6f, "
                    "\"max_level\": %d, \"transitions\": %llu}%s\n",
                    stats.multiplier, mode, stats.total, stats.served,
                    stats.shedTotal, stats.usefulFraction,
                    stats.meanQuality, stats.usefulQuality,
                    stats.hitRate, stats.maxLevel,
                    static_cast<unsigned long long>(stats.transitions),
                    mode == std::string("brownout") &&
                            i + 1 == shed_only.size()
                        ? ""
                        : ",");
            };
            emit("shed_only", shed_only[i]);
            emit("brownout", brownout[i]);
        }
        std::fprintf(out, "  ],\n");
        std::fprintf(out, "  \"dominates_at_2x\": %s,\n",
                     dominates ? "true" : "false");
        std::fprintf(out, "  \"identity_holds\": %s\n",
                     identity ? "true" : "false");
        std::fprintf(out, "}\n");
        std::fclose(out);
        std::cout << "json written to " << json_path << "\n";
    }
    return identity && dominates ? EXIT_SUCCESS : EXIT_FAILURE;
}

/** CI overload soak: sustained ~2x-capacity arrivals with brownout on;
 *  the accounting identity must hold at the end. The spin workload
 *  keeps the overload factor stable regardless of --scale or
 *  sanitizer slowdown. */
int
runSoak(unsigned stage_workers, double seconds,
        std::uint64_t arrival_seed)
{
    ServerConfig config{.workers = 4, .maxQueueDepth = 16};
    config.brownout.enabled = true;
    config.brownout.evalInterval = 1ms;
    AnytimeServer server(config);

    // Spin exec is ~24 ms over a 4-slot pool => capacity is one
    // arrival per 6 ms; a 3 ms mean gap holds ~2x capacity.
    const auto base_gap = 3ms;
    std::mt19937_64 rng(arrival_seed);
    std::exponential_distribution<double> gap(
        1.0 / std::chrono::duration<double>(base_gap).count());

    std::vector<std::future<ServiceResponse>> futures;
    const auto until =
        std::chrono::steady_clock::now() +
        std::chrono::duration_cast<std::chrono::steady_clock::duration>(
            std::chrono::duration<double>(seconds));
    unsigned submitted = 0;
    while (std::chrono::steady_clock::now() < until) {
        unsigned gang = stage_workers;
        double min_quality = 0.0;
        const BrownoutLevelPolicy policy = server.brownoutPolicy();
        if (policy.maxStageWorkers != 0)
            gang = std::min(gang, policy.maxStageWorkers);
        if (policy.precisionBitsCeiling < 8)
            min_quality =
                static_cast<double>(policy.precisionBitsCeiling) / 8.0;
        futures.push_back(
            server.submit(overloadRequest(gang, min_quality)));
        ++submitted;
        std::this_thread::sleep_for(
            std::chrono::duration<double>(gap(rng)));
    }
    for (auto &future : futures)
        future.wait();
    server.drain();

    const ServiceMetrics metrics = server.metricsSnapshot();
    const bool identity =
        metrics.total() == metrics.served() + metrics.shed() +
                               metrics.expired() + metrics.failed() +
                               metrics.cancelled() + metrics.degraded();
    std::printf("soak: %u submitted over %.1f s — served %zu, shed "
                "%zu, expired %zu, failed %zu, cancelled %zu, "
                "degraded %zu; brownout transitions %llu, final level "
                "L%d\n",
                submitted, seconds, metrics.served(), metrics.shed(),
                metrics.expired(), metrics.failed(),
                metrics.cancelled(), metrics.degraded(),
                static_cast<unsigned long long>(
                    server.brownoutControl().transitions()),
                server.brownoutLevel());
    if (!identity) {
        std::printf("ACCOUNTING IDENTITY VIOLATED: total %zu != sum "
                    "of buckets\n",
                    metrics.total());
        return EXIT_FAILURE;
    }
    std::printf("accounting identity holds: total %zu == sum of "
                "buckets\n",
                metrics.total());
    return EXIT_SUCCESS;
}

} // namespace

int
main(int argc, char **argv)
{
    const double scale = parseScale(argc, argv);
    const std::size_t extent = scaledExtent(160, scale);
    // --trace <path>: capture a Chrome trace-event JSON of the whole
    // run (open in Perfetto / chrome://tracing). --metrics <path>:
    // dump the live registry as Prometheus text at exit.
    const std::string trace_path =
        parseStringOption(argc, argv, "--trace");
    const std::string metrics_path =
        parseStringOption(argc, argv, "--metrics");
    // --stage-workers <k>: partition each request's diffusive stage
    // among k workers (Section IV-C1); the request declares the gang
    // so admission prediction accounts for the wider footprint.
    const unsigned stage_workers =
        parseUnsignedOption(argc, argv, "--stage-workers", 1);
    // --arrival-seed <n>: reseed the open-loop arrival schedule for a
    // different but equally reproducible interleaving (the default
    // replays the historical fixed schedule).
    const std::string arrival_seed_arg =
        parseStringOption(argc, argv, "--arrival-seed");
    const std::uint64_t arrival_seed =
        arrival_seed_arg.empty() ? 0x5eed5eedULL
                                 : std::stoull(arrival_seed_arg);
    // --brownout: run the overload quality-vs-load comparison instead
    // of the standard scenarios — identical arrival schedules replayed
    // against a shed-only server and a brownout-enabled one at 1x/2x/3x
    // capacity; exits nonzero unless the brownout curve dominates at
    // >=2x. --json <path>: dump the curves as bench JSON.
    bool brownout_mode = false;
    for (int i = 1; i < argc; ++i)
        if (std::string(argv[i]) == "--brownout")
            brownout_mode = true;
    const std::string json_path =
        parseStringOption(argc, argv, "--json");
    // --soak-seconds <s>: CI overload soak — sustained ~2x-capacity
    // arrivals with brownout enabled; exits nonzero if the accounting
    // identity breaks.
    const std::string soak_text =
        parseStringOption(argc, argv, "--soak-seconds");
    // --fault-plan <file|spec>: arm the deterministic fault injector
    // for the whole run (chaos mode; see DESIGN.md section 12 for the
    // grammar, e.g. "stage.body:conv2d.sweep=throw@3"). --chaos-seed
    // <n>: override the plan's corruption seed for a different but
    // equally reproducible schedule.
    const std::string fault_plan_arg =
        parseStringOption(argc, argv, "--fault-plan");
    const std::string chaos_seed_arg =
        parseStringOption(argc, argv, "--chaos-seed");
    if (!fault_plan_arg.empty()) {
        fault::FaultPlan plan =
            fault::FaultPlan::fromSpecOrFile(fault_plan_arg);
        if (!chaos_seed_arg.empty())
            plan.seed = std::stoull(chaos_seed_arg);
        if (!ANYTIME_FAULTS_ENABLED)
            std::cerr << "warning: built with ANYTIME_FAULTS=OFF — "
                         "fault sites are compiled out, the plan will "
                         "inject nothing\n";
        std::cout << "chaos: " << plan.describe() << "\n";
        fault::FaultInjector::arm(std::move(plan));
    }
    if (!trace_path.empty())
        obs::setTracingEnabled(true);
    printBanner("anytime serving runtime under load",
                "no paper figure: serving-layer extension; every "
                "response is a valid snapshot, slack buys accuracy");

    const GrayImage gray_scene = generateScene(extent, extent, 11);

    if (!soak_text.empty())
        return runSoak(stage_workers, std::atof(soak_text.c_str()),
                       arrival_seed);
    if (brownout_mode)
        return runBrownoutCurves(stage_workers, arrival_seed,
                                 json_path);

    const RgbImage color_scene = generateColorScene(extent, extent, 13);
    std::cout << "scene: " << extent << "x" << extent
              << ", deadline mix 5/20/80 ms, pool of 4 workers, "
              << stage_workers << " worker(s) per stage, arrival seed "
              << arrival_seed << "\n\n";

    const RequestMaker conv = [&](std::chrono::nanoseconds deadline) {
        return conv2dRequest(gray_scene, deadline, stage_workers);
    };
    const RequestMaker kmeans = [&](std::chrono::nanoseconds deadline) {
        return kmeansRequest(color_scene, deadline, stage_workers);
    };

    runClosedLoop("conv2d", conv, /*clients=*/4, /*per_client=*/8);
    runClosedLoop("kmeans", kmeans, /*clients=*/4, /*per_client=*/8);
    runOpenLoop("conv2d", conv, /*total=*/48, /*mean_gap=*/4ms,
                arrival_seed);
    runOpenLoop("kmeans", kmeans, /*total=*/48, /*mean_gap=*/4ms,
                arrival_seed);

    std::cout << "\nopen-loop arrivals outpace the pool on purpose: "
                 "admission control converts most of the overload into "
                 "prompt sheds, and every request — served, shed, or "
                 "expired — gets an answer\n";

    if (!fault_plan_arg.empty()) {
        std::cout << "chaos: "
                  << fault::FaultInjector::instance().injectedTotal()
                  << " fault(s) injected\n";
        fault::FaultInjector::disarm();
    }

    if (!metrics_path.empty()) {
        std::cout << '\n';
        printTable(metricsTable(obs::defaultRegistry(),
                                "live metrics registry"));
        if (obs::defaultRegistry().writePrometheus(metrics_path))
            std::cout << "\nmetrics snapshot written to " << metrics_path
                      << " (Prometheus text format)\n";
        else
            std::cerr << "cannot write metrics to " << metrics_path
                      << "\n";
    }
    if (!trace_path.empty()) {
        if (obs::writeChromeTrace(trace_path))
            std::cout << "trace written to " << trace_path << " ("
                      << obs::retainedRecords() << " events, "
                      << obs::droppedRecords()
                      << " dropped); open in Perfetto or "
                         "chrome://tracing\n";
        else
            std::cerr << "cannot write trace to " << trace_path << "\n";
    }
    return 0;
}
