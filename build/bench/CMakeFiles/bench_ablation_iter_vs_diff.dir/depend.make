# Empty dependencies file for bench_ablation_iter_vs_diff.
# This may be replaced when dependencies are built.
