file(REMOVE_RECURSE
  "CMakeFiles/bench_energy_accuracy.dir/bench_energy_accuracy.cpp.o"
  "CMakeFiles/bench_energy_accuracy.dir/bench_energy_accuracy.cpp.o.d"
  "bench_energy_accuracy"
  "bench_energy_accuracy.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_energy_accuracy.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
