# Empty compiler generated dependencies file for bench_energy_accuracy.
# This may be replaced when dependencies are built.
