file(REMOVE_RECURSE
  "CMakeFiles/bench_fig10_organizations.dir/bench_fig10_organizations.cpp.o"
  "CMakeFiles/bench_fig10_organizations.dir/bench_fig10_organizations.cpp.o.d"
  "bench_fig10_organizations"
  "bench_fig10_organizations.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig10_organizations.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
