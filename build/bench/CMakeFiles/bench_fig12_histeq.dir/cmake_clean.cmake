file(REMOVE_RECURSE
  "CMakeFiles/bench_fig12_histeq.dir/bench_fig12_histeq.cpp.o"
  "CMakeFiles/bench_fig12_histeq.dir/bench_fig12_histeq.cpp.o.d"
  "bench_fig12_histeq"
  "bench_fig12_histeq.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig12_histeq.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
