# Empty dependencies file for bench_fig12_histeq.
# This may be replaced when dependencies are built.
