file(REMOVE_RECURSE
  "CMakeFiles/bench_fig13_dwt53.dir/bench_fig13_dwt53.cpp.o"
  "CMakeFiles/bench_fig13_dwt53.dir/bench_fig13_dwt53.cpp.o.d"
  "bench_fig13_dwt53"
  "bench_fig13_dwt53.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig13_dwt53.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
