# Empty compiler generated dependencies file for bench_fig13_dwt53.
# This may be replaced when dependencies are built.
