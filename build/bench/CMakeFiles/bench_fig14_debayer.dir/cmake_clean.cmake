file(REMOVE_RECURSE
  "CMakeFiles/bench_fig14_debayer.dir/bench_fig14_debayer.cpp.o"
  "CMakeFiles/bench_fig14_debayer.dir/bench_fig14_debayer.cpp.o.d"
  "bench_fig14_debayer"
  "bench_fig14_debayer.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig14_debayer.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
