# Empty dependencies file for bench_fig14_debayer.
# This may be replaced when dependencies are built.
