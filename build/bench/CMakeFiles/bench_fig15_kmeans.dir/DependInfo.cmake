
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/bench/bench_fig15_kmeans.cpp" "bench/CMakeFiles/bench_fig15_kmeans.dir/bench_fig15_kmeans.cpp.o" "gcc" "bench/CMakeFiles/bench_fig15_kmeans.dir/bench_fig15_kmeans.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/apps/CMakeFiles/anytime_apps.dir/DependInfo.cmake"
  "/root/repo/build/src/harness/CMakeFiles/anytime_harness.dir/DependInfo.cmake"
  "/root/repo/build/src/sampling/CMakeFiles/anytime_sampling.dir/DependInfo.cmake"
  "/root/repo/build/src/image/CMakeFiles/anytime_image.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/anytime_core.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
