file(REMOVE_RECURSE
  "CMakeFiles/bench_fig15_kmeans.dir/bench_fig15_kmeans.cpp.o"
  "CMakeFiles/bench_fig15_kmeans.dir/bench_fig15_kmeans.cpp.o.d"
  "bench_fig15_kmeans"
  "bench_fig15_kmeans.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig15_kmeans.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
