file(REMOVE_RECURSE
  "CMakeFiles/bench_fig16_conv2d_outputs.dir/bench_fig16_conv2d_outputs.cpp.o"
  "CMakeFiles/bench_fig16_conv2d_outputs.dir/bench_fig16_conv2d_outputs.cpp.o.d"
  "bench_fig16_conv2d_outputs"
  "bench_fig16_conv2d_outputs.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig16_conv2d_outputs.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
