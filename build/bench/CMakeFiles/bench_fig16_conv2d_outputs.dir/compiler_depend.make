# Empty compiler generated dependencies file for bench_fig16_conv2d_outputs.
# This may be replaced when dependencies are built.
