# Empty compiler generated dependencies file for bench_fig17_dwt53_outputs.
# This may be replaced when dependencies are built.
