file(REMOVE_RECURSE
  "CMakeFiles/bench_fig18_kmeans_outputs.dir/bench_fig18_kmeans_outputs.cpp.o"
  "CMakeFiles/bench_fig18_kmeans_outputs.dir/bench_fig18_kmeans_outputs.cpp.o.d"
  "bench_fig18_kmeans_outputs"
  "bench_fig18_kmeans_outputs.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig18_kmeans_outputs.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
