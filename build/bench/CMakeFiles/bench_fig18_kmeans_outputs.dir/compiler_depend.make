# Empty compiler generated dependencies file for bench_fig18_kmeans_outputs.
# This may be replaced when dependencies are built.
