file(REMOVE_RECURSE
  "CMakeFiles/bench_fig20_storage.dir/bench_fig20_storage.cpp.o"
  "CMakeFiles/bench_fig20_storage.dir/bench_fig20_storage.cpp.o.d"
  "bench_fig20_storage"
  "bench_fig20_storage.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig20_storage.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
