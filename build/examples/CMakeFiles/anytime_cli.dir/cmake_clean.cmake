file(REMOVE_RECURSE
  "CMakeFiles/anytime_cli.dir/anytime_cli.cpp.o"
  "CMakeFiles/anytime_cli.dir/anytime_cli.cpp.o.d"
  "anytime_cli"
  "anytime_cli.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/anytime_cli.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
