# Empty dependencies file for anytime_cli.
# This may be replaced when dependencies are built.
