file(REMOVE_RECURSE
  "CMakeFiles/deadline_kmeans.dir/deadline_kmeans.cpp.o"
  "CMakeFiles/deadline_kmeans.dir/deadline_kmeans.cpp.o.d"
  "deadline_kmeans"
  "deadline_kmeans.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/deadline_kmeans.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
