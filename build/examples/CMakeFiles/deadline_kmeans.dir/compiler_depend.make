# Empty compiler generated dependencies file for deadline_kmeans.
# This may be replaced when dependencies are built.
