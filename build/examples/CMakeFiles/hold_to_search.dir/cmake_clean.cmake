file(REMOVE_RECURSE
  "CMakeFiles/hold_to_search.dir/hold_to_search.cpp.o"
  "CMakeFiles/hold_to_search.dir/hold_to_search.cpp.o.d"
  "hold_to_search"
  "hold_to_search.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hold_to_search.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
