# Empty dependencies file for hold_to_search.
# This may be replaced when dependencies are built.
