file(REMOVE_RECURSE
  "CMakeFiles/progressive_blur.dir/progressive_blur.cpp.o"
  "CMakeFiles/progressive_blur.dir/progressive_blur.cpp.o.d"
  "progressive_blur"
  "progressive_blur.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/progressive_blur.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
