# Empty compiler generated dependencies file for progressive_blur.
# This may be replaced when dependencies are built.
