file(REMOVE_RECURSE
  "CMakeFiles/sync_text_pipeline.dir/sync_text_pipeline.cpp.o"
  "CMakeFiles/sync_text_pipeline.dir/sync_text_pipeline.cpp.o.d"
  "sync_text_pipeline"
  "sync_text_pipeline.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sync_text_pipeline.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
