# CMake generated Testfile for 
# Source directory: /root/repo/src
# Build directory: /root/repo/build/src
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
subdirs("support")
subdirs("sampling")
subdirs("approx")
subdirs("image")
subdirs("cachesim")
subdirs("core")
subdirs("apps")
subdirs("harness")
