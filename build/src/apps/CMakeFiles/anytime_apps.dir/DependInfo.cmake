
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/apps/conv2d.cpp" "src/apps/CMakeFiles/anytime_apps.dir/conv2d.cpp.o" "gcc" "src/apps/CMakeFiles/anytime_apps.dir/conv2d.cpp.o.d"
  "/root/repo/src/apps/conv2d_storage.cpp" "src/apps/CMakeFiles/anytime_apps.dir/conv2d_storage.cpp.o" "gcc" "src/apps/CMakeFiles/anytime_apps.dir/conv2d_storage.cpp.o.d"
  "/root/repo/src/apps/debayer.cpp" "src/apps/CMakeFiles/anytime_apps.dir/debayer.cpp.o" "gcc" "src/apps/CMakeFiles/anytime_apps.dir/debayer.cpp.o.d"
  "/root/repo/src/apps/dwt53.cpp" "src/apps/CMakeFiles/anytime_apps.dir/dwt53.cpp.o" "gcc" "src/apps/CMakeFiles/anytime_apps.dir/dwt53.cpp.o.d"
  "/root/repo/src/apps/histeq.cpp" "src/apps/CMakeFiles/anytime_apps.dir/histeq.cpp.o" "gcc" "src/apps/CMakeFiles/anytime_apps.dir/histeq.cpp.o.d"
  "/root/repo/src/apps/kmeans.cpp" "src/apps/CMakeFiles/anytime_apps.dir/kmeans.cpp.o" "gcc" "src/apps/CMakeFiles/anytime_apps.dir/kmeans.cpp.o.d"
  "/root/repo/src/apps/matmul.cpp" "src/apps/CMakeFiles/anytime_apps.dir/matmul.cpp.o" "gcc" "src/apps/CMakeFiles/anytime_apps.dir/matmul.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/anytime_core.dir/DependInfo.cmake"
  "/root/repo/build/src/sampling/CMakeFiles/anytime_sampling.dir/DependInfo.cmake"
  "/root/repo/build/src/image/CMakeFiles/anytime_image.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
