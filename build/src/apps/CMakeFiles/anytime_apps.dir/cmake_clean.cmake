file(REMOVE_RECURSE
  "CMakeFiles/anytime_apps.dir/conv2d.cpp.o"
  "CMakeFiles/anytime_apps.dir/conv2d.cpp.o.d"
  "CMakeFiles/anytime_apps.dir/conv2d_storage.cpp.o"
  "CMakeFiles/anytime_apps.dir/conv2d_storage.cpp.o.d"
  "CMakeFiles/anytime_apps.dir/debayer.cpp.o"
  "CMakeFiles/anytime_apps.dir/debayer.cpp.o.d"
  "CMakeFiles/anytime_apps.dir/dwt53.cpp.o"
  "CMakeFiles/anytime_apps.dir/dwt53.cpp.o.d"
  "CMakeFiles/anytime_apps.dir/histeq.cpp.o"
  "CMakeFiles/anytime_apps.dir/histeq.cpp.o.d"
  "CMakeFiles/anytime_apps.dir/kmeans.cpp.o"
  "CMakeFiles/anytime_apps.dir/kmeans.cpp.o.d"
  "CMakeFiles/anytime_apps.dir/matmul.cpp.o"
  "CMakeFiles/anytime_apps.dir/matmul.cpp.o.d"
  "libanytime_apps.a"
  "libanytime_apps.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/anytime_apps.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
