file(REMOVE_RECURSE
  "libanytime_apps.a"
)
