# Empty dependencies file for anytime_apps.
# This may be replaced when dependencies are built.
