file(REMOVE_RECURSE
  "CMakeFiles/anytime_cachesim.dir/cache.cpp.o"
  "CMakeFiles/anytime_cachesim.dir/cache.cpp.o.d"
  "libanytime_cachesim.a"
  "libanytime_cachesim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/anytime_cachesim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
