file(REMOVE_RECURSE
  "libanytime_cachesim.a"
)
