# Empty compiler generated dependencies file for anytime_cachesim.
# This may be replaced when dependencies are built.
