file(REMOVE_RECURSE
  "CMakeFiles/anytime_core.dir/automaton.cpp.o"
  "CMakeFiles/anytime_core.dir/automaton.cpp.o.d"
  "CMakeFiles/anytime_core.dir/controller.cpp.o"
  "CMakeFiles/anytime_core.dir/controller.cpp.o.d"
  "libanytime_core.a"
  "libanytime_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/anytime_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
