file(REMOVE_RECURSE
  "libanytime_core.a"
)
