# Empty compiler generated dependencies file for anytime_core.
# This may be replaced when dependencies are built.
