
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/harness/profiler.cpp" "src/harness/CMakeFiles/anytime_harness.dir/profiler.cpp.o" "gcc" "src/harness/CMakeFiles/anytime_harness.dir/profiler.cpp.o.d"
  "/root/repo/src/harness/report.cpp" "src/harness/CMakeFiles/anytime_harness.dir/report.cpp.o" "gcc" "src/harness/CMakeFiles/anytime_harness.dir/report.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/anytime_core.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
