file(REMOVE_RECURSE
  "CMakeFiles/anytime_harness.dir/profiler.cpp.o"
  "CMakeFiles/anytime_harness.dir/profiler.cpp.o.d"
  "CMakeFiles/anytime_harness.dir/report.cpp.o"
  "CMakeFiles/anytime_harness.dir/report.cpp.o.d"
  "libanytime_harness.a"
  "libanytime_harness.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/anytime_harness.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
