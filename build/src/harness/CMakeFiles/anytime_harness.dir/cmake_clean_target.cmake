file(REMOVE_RECURSE
  "libanytime_harness.a"
)
