# Empty compiler generated dependencies file for anytime_harness.
# This may be replaced when dependencies are built.
