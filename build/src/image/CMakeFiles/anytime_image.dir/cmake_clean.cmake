file(REMOVE_RECURSE
  "CMakeFiles/anytime_image.dir/generate.cpp.o"
  "CMakeFiles/anytime_image.dir/generate.cpp.o.d"
  "CMakeFiles/anytime_image.dir/io.cpp.o"
  "CMakeFiles/anytime_image.dir/io.cpp.o.d"
  "CMakeFiles/anytime_image.dir/metrics.cpp.o"
  "CMakeFiles/anytime_image.dir/metrics.cpp.o.d"
  "libanytime_image.a"
  "libanytime_image.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/anytime_image.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
