file(REMOVE_RECURSE
  "libanytime_image.a"
)
