# Empty compiler generated dependencies file for anytime_image.
# This may be replaced when dependencies are built.
