file(REMOVE_RECURSE
  "CMakeFiles/anytime_sampling.dir/lfsr.cpp.o"
  "CMakeFiles/anytime_sampling.dir/lfsr.cpp.o.d"
  "CMakeFiles/anytime_sampling.dir/lfsr_permutation.cpp.o"
  "CMakeFiles/anytime_sampling.dir/lfsr_permutation.cpp.o.d"
  "CMakeFiles/anytime_sampling.dir/tree_permutation.cpp.o"
  "CMakeFiles/anytime_sampling.dir/tree_permutation.cpp.o.d"
  "libanytime_sampling.a"
  "libanytime_sampling.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/anytime_sampling.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
