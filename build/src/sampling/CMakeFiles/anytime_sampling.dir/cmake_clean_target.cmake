file(REMOVE_RECURSE
  "libanytime_sampling.a"
)
