# Empty compiler generated dependencies file for anytime_sampling.
# This may be replaced when dependencies are built.
