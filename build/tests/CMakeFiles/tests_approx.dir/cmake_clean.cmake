file(REMOVE_RECURSE
  "CMakeFiles/tests_approx.dir/approx/test_fixed_point.cpp.o"
  "CMakeFiles/tests_approx.dir/approx/test_fixed_point.cpp.o.d"
  "CMakeFiles/tests_approx.dir/approx/test_perforation.cpp.o"
  "CMakeFiles/tests_approx.dir/approx/test_perforation.cpp.o.d"
  "CMakeFiles/tests_approx.dir/approx/test_storage.cpp.o"
  "CMakeFiles/tests_approx.dir/approx/test_storage.cpp.o.d"
  "tests_approx"
  "tests_approx.pdb"
  "tests_approx[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tests_approx.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
