# Empty dependencies file for tests_approx.
# This may be replaced when dependencies are built.
