
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/apps/test_app_edges.cpp" "tests/CMakeFiles/tests_apps.dir/apps/test_app_edges.cpp.o" "gcc" "tests/CMakeFiles/tests_apps.dir/apps/test_app_edges.cpp.o.d"
  "/root/repo/tests/apps/test_conv2d.cpp" "tests/CMakeFiles/tests_apps.dir/apps/test_conv2d.cpp.o" "gcc" "tests/CMakeFiles/tests_apps.dir/apps/test_conv2d.cpp.o.d"
  "/root/repo/tests/apps/test_conv2d_storage.cpp" "tests/CMakeFiles/tests_apps.dir/apps/test_conv2d_storage.cpp.o" "gcc" "tests/CMakeFiles/tests_apps.dir/apps/test_conv2d_storage.cpp.o.d"
  "/root/repo/tests/apps/test_debayer.cpp" "tests/CMakeFiles/tests_apps.dir/apps/test_debayer.cpp.o" "gcc" "tests/CMakeFiles/tests_apps.dir/apps/test_debayer.cpp.o.d"
  "/root/repo/tests/apps/test_dwt53.cpp" "tests/CMakeFiles/tests_apps.dir/apps/test_dwt53.cpp.o" "gcc" "tests/CMakeFiles/tests_apps.dir/apps/test_dwt53.cpp.o.d"
  "/root/repo/tests/apps/test_histeq.cpp" "tests/CMakeFiles/tests_apps.dir/apps/test_histeq.cpp.o" "gcc" "tests/CMakeFiles/tests_apps.dir/apps/test_histeq.cpp.o.d"
  "/root/repo/tests/apps/test_kmeans.cpp" "tests/CMakeFiles/tests_apps.dir/apps/test_kmeans.cpp.o" "gcc" "tests/CMakeFiles/tests_apps.dir/apps/test_kmeans.cpp.o.d"
  "/root/repo/tests/apps/test_matmul.cpp" "tests/CMakeFiles/tests_apps.dir/apps/test_matmul.cpp.o" "gcc" "tests/CMakeFiles/tests_apps.dir/apps/test_matmul.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/apps/CMakeFiles/anytime_apps.dir/DependInfo.cmake"
  "/root/repo/build/src/harness/CMakeFiles/anytime_harness.dir/DependInfo.cmake"
  "/root/repo/build/src/sampling/CMakeFiles/anytime_sampling.dir/DependInfo.cmake"
  "/root/repo/build/src/image/CMakeFiles/anytime_image.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/anytime_core.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
