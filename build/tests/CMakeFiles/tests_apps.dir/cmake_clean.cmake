file(REMOVE_RECURSE
  "CMakeFiles/tests_apps.dir/apps/test_app_edges.cpp.o"
  "CMakeFiles/tests_apps.dir/apps/test_app_edges.cpp.o.d"
  "CMakeFiles/tests_apps.dir/apps/test_conv2d.cpp.o"
  "CMakeFiles/tests_apps.dir/apps/test_conv2d.cpp.o.d"
  "CMakeFiles/tests_apps.dir/apps/test_conv2d_storage.cpp.o"
  "CMakeFiles/tests_apps.dir/apps/test_conv2d_storage.cpp.o.d"
  "CMakeFiles/tests_apps.dir/apps/test_debayer.cpp.o"
  "CMakeFiles/tests_apps.dir/apps/test_debayer.cpp.o.d"
  "CMakeFiles/tests_apps.dir/apps/test_dwt53.cpp.o"
  "CMakeFiles/tests_apps.dir/apps/test_dwt53.cpp.o.d"
  "CMakeFiles/tests_apps.dir/apps/test_histeq.cpp.o"
  "CMakeFiles/tests_apps.dir/apps/test_histeq.cpp.o.d"
  "CMakeFiles/tests_apps.dir/apps/test_kmeans.cpp.o"
  "CMakeFiles/tests_apps.dir/apps/test_kmeans.cpp.o.d"
  "CMakeFiles/tests_apps.dir/apps/test_matmul.cpp.o"
  "CMakeFiles/tests_apps.dir/apps/test_matmul.cpp.o.d"
  "tests_apps"
  "tests_apps.pdb"
  "tests_apps[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tests_apps.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
