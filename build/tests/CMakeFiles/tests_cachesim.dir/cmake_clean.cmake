file(REMOVE_RECURSE
  "CMakeFiles/tests_cachesim.dir/cachesim/test_cache.cpp.o"
  "CMakeFiles/tests_cachesim.dir/cachesim/test_cache.cpp.o.d"
  "tests_cachesim"
  "tests_cachesim.pdb"
  "tests_cachesim[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tests_cachesim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
