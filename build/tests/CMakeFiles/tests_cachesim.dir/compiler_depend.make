# Empty compiler generated dependencies file for tests_cachesim.
# This may be replaced when dependencies are built.
