
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/core/test_automaton.cpp" "tests/CMakeFiles/tests_core.dir/core/test_automaton.cpp.o" "gcc" "tests/CMakeFiles/tests_core.dir/core/test_automaton.cpp.o.d"
  "/root/repo/tests/core/test_buffer.cpp" "tests/CMakeFiles/tests_core.dir/core/test_buffer.cpp.o" "gcc" "tests/CMakeFiles/tests_core.dir/core/test_buffer.cpp.o.d"
  "/root/repo/tests/core/test_channel.cpp" "tests/CMakeFiles/tests_core.dir/core/test_channel.cpp.o" "gcc" "tests/CMakeFiles/tests_core.dir/core/test_channel.cpp.o.d"
  "/root/repo/tests/core/test_controller.cpp" "tests/CMakeFiles/tests_core.dir/core/test_controller.cpp.o" "gcc" "tests/CMakeFiles/tests_core.dir/core/test_controller.cpp.o.d"
  "/root/repo/tests/core/test_failure_energy.cpp" "tests/CMakeFiles/tests_core.dir/core/test_failure_energy.cpp.o" "gcc" "tests/CMakeFiles/tests_core.dir/core/test_failure_energy.cpp.o.d"
  "/root/repo/tests/core/test_integration.cpp" "tests/CMakeFiles/tests_core.dir/core/test_integration.cpp.o" "gcc" "tests/CMakeFiles/tests_core.dir/core/test_integration.cpp.o.d"
  "/root/repo/tests/core/test_scheduling.cpp" "tests/CMakeFiles/tests_core.dir/core/test_scheduling.cpp.o" "gcc" "tests/CMakeFiles/tests_core.dir/core/test_scheduling.cpp.o.d"
  "/root/repo/tests/core/test_source_stage.cpp" "tests/CMakeFiles/tests_core.dir/core/test_source_stage.cpp.o" "gcc" "tests/CMakeFiles/tests_core.dir/core/test_source_stage.cpp.o.d"
  "/root/repo/tests/core/test_stage.cpp" "tests/CMakeFiles/tests_core.dir/core/test_stage.cpp.o" "gcc" "tests/CMakeFiles/tests_core.dir/core/test_stage.cpp.o.d"
  "/root/repo/tests/core/test_staleness.cpp" "tests/CMakeFiles/tests_core.dir/core/test_staleness.cpp.o" "gcc" "tests/CMakeFiles/tests_core.dir/core/test_staleness.cpp.o.d"
  "/root/repo/tests/core/test_sync_stage.cpp" "tests/CMakeFiles/tests_core.dir/core/test_sync_stage.cpp.o" "gcc" "tests/CMakeFiles/tests_core.dir/core/test_sync_stage.cpp.o.d"
  "/root/repo/tests/core/test_transform_stage.cpp" "tests/CMakeFiles/tests_core.dir/core/test_transform_stage.cpp.o" "gcc" "tests/CMakeFiles/tests_core.dir/core/test_transform_stage.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/apps/CMakeFiles/anytime_apps.dir/DependInfo.cmake"
  "/root/repo/build/src/harness/CMakeFiles/anytime_harness.dir/DependInfo.cmake"
  "/root/repo/build/src/sampling/CMakeFiles/anytime_sampling.dir/DependInfo.cmake"
  "/root/repo/build/src/image/CMakeFiles/anytime_image.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/anytime_core.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
