file(REMOVE_RECURSE
  "CMakeFiles/tests_core.dir/core/test_automaton.cpp.o"
  "CMakeFiles/tests_core.dir/core/test_automaton.cpp.o.d"
  "CMakeFiles/tests_core.dir/core/test_buffer.cpp.o"
  "CMakeFiles/tests_core.dir/core/test_buffer.cpp.o.d"
  "CMakeFiles/tests_core.dir/core/test_channel.cpp.o"
  "CMakeFiles/tests_core.dir/core/test_channel.cpp.o.d"
  "CMakeFiles/tests_core.dir/core/test_controller.cpp.o"
  "CMakeFiles/tests_core.dir/core/test_controller.cpp.o.d"
  "CMakeFiles/tests_core.dir/core/test_failure_energy.cpp.o"
  "CMakeFiles/tests_core.dir/core/test_failure_energy.cpp.o.d"
  "CMakeFiles/tests_core.dir/core/test_integration.cpp.o"
  "CMakeFiles/tests_core.dir/core/test_integration.cpp.o.d"
  "CMakeFiles/tests_core.dir/core/test_scheduling.cpp.o"
  "CMakeFiles/tests_core.dir/core/test_scheduling.cpp.o.d"
  "CMakeFiles/tests_core.dir/core/test_source_stage.cpp.o"
  "CMakeFiles/tests_core.dir/core/test_source_stage.cpp.o.d"
  "CMakeFiles/tests_core.dir/core/test_stage.cpp.o"
  "CMakeFiles/tests_core.dir/core/test_stage.cpp.o.d"
  "CMakeFiles/tests_core.dir/core/test_staleness.cpp.o"
  "CMakeFiles/tests_core.dir/core/test_staleness.cpp.o.d"
  "CMakeFiles/tests_core.dir/core/test_sync_stage.cpp.o"
  "CMakeFiles/tests_core.dir/core/test_sync_stage.cpp.o.d"
  "CMakeFiles/tests_core.dir/core/test_transform_stage.cpp.o"
  "CMakeFiles/tests_core.dir/core/test_transform_stage.cpp.o.d"
  "tests_core"
  "tests_core.pdb"
  "tests_core[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tests_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
