file(REMOVE_RECURSE
  "CMakeFiles/tests_harness.dir/harness/test_convergence_contract.cpp.o"
  "CMakeFiles/tests_harness.dir/harness/test_convergence_contract.cpp.o.d"
  "CMakeFiles/tests_harness.dir/harness/test_profiler.cpp.o"
  "CMakeFiles/tests_harness.dir/harness/test_profiler.cpp.o.d"
  "tests_harness"
  "tests_harness.pdb"
  "tests_harness[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tests_harness.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
