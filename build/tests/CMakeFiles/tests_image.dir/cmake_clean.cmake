file(REMOVE_RECURSE
  "CMakeFiles/tests_image.dir/image/test_image.cpp.o"
  "CMakeFiles/tests_image.dir/image/test_image.cpp.o.d"
  "CMakeFiles/tests_image.dir/image/test_io_metrics.cpp.o"
  "CMakeFiles/tests_image.dir/image/test_io_metrics.cpp.o.d"
  "CMakeFiles/tests_image.dir/image/test_progressive.cpp.o"
  "CMakeFiles/tests_image.dir/image/test_progressive.cpp.o.d"
  "CMakeFiles/tests_image.dir/image/test_sweep_plan.cpp.o"
  "CMakeFiles/tests_image.dir/image/test_sweep_plan.cpp.o.d"
  "tests_image"
  "tests_image.pdb"
  "tests_image[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tests_image.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
