# Empty compiler generated dependencies file for tests_image.
# This may be replaced when dependencies are built.
