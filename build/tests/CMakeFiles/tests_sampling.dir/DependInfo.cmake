
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/sampling/test_bits.cpp" "tests/CMakeFiles/tests_sampling.dir/sampling/test_bits.cpp.o" "gcc" "tests/CMakeFiles/tests_sampling.dir/sampling/test_bits.cpp.o.d"
  "/root/repo/tests/sampling/test_lfsr.cpp" "tests/CMakeFiles/tests_sampling.dir/sampling/test_lfsr.cpp.o" "gcc" "tests/CMakeFiles/tests_sampling.dir/sampling/test_lfsr.cpp.o.d"
  "/root/repo/tests/sampling/test_lfsr_wide.cpp" "tests/CMakeFiles/tests_sampling.dir/sampling/test_lfsr_wide.cpp.o" "gcc" "tests/CMakeFiles/tests_sampling.dir/sampling/test_lfsr_wide.cpp.o.d"
  "/root/repo/tests/sampling/test_partition.cpp" "tests/CMakeFiles/tests_sampling.dir/sampling/test_partition.cpp.o" "gcc" "tests/CMakeFiles/tests_sampling.dir/sampling/test_partition.cpp.o.d"
  "/root/repo/tests/sampling/test_permutation.cpp" "tests/CMakeFiles/tests_sampling.dir/sampling/test_permutation.cpp.o" "gcc" "tests/CMakeFiles/tests_sampling.dir/sampling/test_permutation.cpp.o.d"
  "/root/repo/tests/sampling/test_reducer.cpp" "tests/CMakeFiles/tests_sampling.dir/sampling/test_reducer.cpp.o" "gcc" "tests/CMakeFiles/tests_sampling.dir/sampling/test_reducer.cpp.o.d"
  "/root/repo/tests/sampling/test_rng.cpp" "tests/CMakeFiles/tests_sampling.dir/sampling/test_rng.cpp.o" "gcc" "tests/CMakeFiles/tests_sampling.dir/sampling/test_rng.cpp.o.d"
  "/root/repo/tests/sampling/test_support.cpp" "tests/CMakeFiles/tests_sampling.dir/sampling/test_support.cpp.o" "gcc" "tests/CMakeFiles/tests_sampling.dir/sampling/test_support.cpp.o.d"
  "/root/repo/tests/sampling/test_tree_permutation.cpp" "tests/CMakeFiles/tests_sampling.dir/sampling/test_tree_permutation.cpp.o" "gcc" "tests/CMakeFiles/tests_sampling.dir/sampling/test_tree_permutation.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/apps/CMakeFiles/anytime_apps.dir/DependInfo.cmake"
  "/root/repo/build/src/harness/CMakeFiles/anytime_harness.dir/DependInfo.cmake"
  "/root/repo/build/src/sampling/CMakeFiles/anytime_sampling.dir/DependInfo.cmake"
  "/root/repo/build/src/image/CMakeFiles/anytime_image.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/anytime_core.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
