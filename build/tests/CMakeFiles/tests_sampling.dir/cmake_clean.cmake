file(REMOVE_RECURSE
  "CMakeFiles/tests_sampling.dir/sampling/test_bits.cpp.o"
  "CMakeFiles/tests_sampling.dir/sampling/test_bits.cpp.o.d"
  "CMakeFiles/tests_sampling.dir/sampling/test_lfsr.cpp.o"
  "CMakeFiles/tests_sampling.dir/sampling/test_lfsr.cpp.o.d"
  "CMakeFiles/tests_sampling.dir/sampling/test_lfsr_wide.cpp.o"
  "CMakeFiles/tests_sampling.dir/sampling/test_lfsr_wide.cpp.o.d"
  "CMakeFiles/tests_sampling.dir/sampling/test_partition.cpp.o"
  "CMakeFiles/tests_sampling.dir/sampling/test_partition.cpp.o.d"
  "CMakeFiles/tests_sampling.dir/sampling/test_permutation.cpp.o"
  "CMakeFiles/tests_sampling.dir/sampling/test_permutation.cpp.o.d"
  "CMakeFiles/tests_sampling.dir/sampling/test_reducer.cpp.o"
  "CMakeFiles/tests_sampling.dir/sampling/test_reducer.cpp.o.d"
  "CMakeFiles/tests_sampling.dir/sampling/test_rng.cpp.o"
  "CMakeFiles/tests_sampling.dir/sampling/test_rng.cpp.o.d"
  "CMakeFiles/tests_sampling.dir/sampling/test_support.cpp.o"
  "CMakeFiles/tests_sampling.dir/sampling/test_support.cpp.o.d"
  "CMakeFiles/tests_sampling.dir/sampling/test_tree_permutation.cpp.o"
  "CMakeFiles/tests_sampling.dir/sampling/test_tree_permutation.cpp.o.d"
  "tests_sampling"
  "tests_sampling.pdb"
  "tests_sampling[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tests_sampling.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
