# Empty compiler generated dependencies file for tests_sampling.
# This may be replaced when dependencies are built.
