/**
 * @file
 * Command-line driver: run any of the library's anytime applications
 * on a PGM/PPM file (or a generated scene) under a time budget, and
 * write the best output available when time runs out.
 *
 * Usage:
 *   anytime_cli <app> [--input file.pgm|file.ppm] [--budget-ms N]
 *               [--output out] [--size N] [--seed S]
 *
 *   app: conv2d | histeq | dwt53 | debayer | kmeans
 *
 * Examples:
 *   anytime_cli conv2d --budget-ms 5
 *   anytime_cli kmeans --input photo.ppm --budget-ms 50 --output seg
 */

#include <chrono>
#include <iostream>
#include <string>

#include "apps/conv2d.hpp"
#include "apps/debayer.hpp"
#include "apps/dwt53.hpp"
#include "apps/histeq.hpp"
#include "apps/kmeans.hpp"
#include "core/controller.hpp"
#include "harness/report.hpp"
#include "image/generate.hpp"
#include "image/io.hpp"

using namespace anytime;

namespace {

struct Options
{
    std::string app;
    std::string input;
    std::string output = "anytime_out";
    double budgetMs = 1e9; // effectively "run to completion"
    std::size_t size = 256;
    std::uint64_t seed = 1;
};

Options
parse(int argc, char **argv)
{
    fatalIf(argc < 2, "usage: anytime_cli <app> [--input f] "
                      "[--budget-ms N] [--output f] [--size N] "
                      "[--seed S]");
    Options options;
    options.app = argv[1];
    for (int i = 2; i + 1 < argc; i += 2) {
        const std::string flag = argv[i];
        const std::string value = argv[i + 1];
        if (flag == "--input")
            options.input = value;
        else if (flag == "--budget-ms")
            options.budgetMs = std::atof(value.c_str());
        else if (flag == "--output")
            options.output = value;
        else if (flag == "--size")
            options.size = static_cast<std::size_t>(
                std::atoll(value.c_str()));
        else if (flag == "--seed")
            options.seed = static_cast<std::uint64_t>(
                std::atoll(value.c_str()));
        else
            fatal("unknown flag ", flag);
    }
    return options;
}

std::chrono::nanoseconds
budgetOf(const Options &options)
{
    return std::chrono::duration_cast<std::chrono::nanoseconds>(
        std::chrono::duration<double, std::milli>(options.budgetMs));
}

GrayImage
loadGray(const Options &options)
{
    if (!options.input.empty())
        return readPgm(options.input);
    return generateScene(options.size, options.size, options.seed);
}

RgbImage
loadColor(const Options &options)
{
    if (!options.input.empty())
        return readPpm(options.input);
    return generateColorScene(options.size, options.size, options.seed);
}

template <typename Bundle>
void
report(const Bundle &bundle, const RunOutcome &outcome)
{
    std::cout << (outcome.reachedPrecise ? "precise" : "approximate")
              << " output after "
              << formatDouble(outcome.seconds * 1e3, 2) << " ms ("
              << bundle.output->read().version << " versions)\n";
}

} // namespace

int
main(int argc, char **argv)
{
    try {
        const Options options = parse(argc, argv);

        if (options.app == "conv2d") {
            auto bundle = makeConv2dAutomaton(loadGray(options),
                                              Kernel::gaussianBlur(3));
            const RunOutcome outcome =
                runWithTimeBudget(*bundle.automaton, budgetOf(options));
            report(bundle, outcome);
            if (const auto snap = bundle.output->read())
                writePgm(*snap.value, options.output + ".pgm");
        } else if (options.app == "histeq") {
            auto bundle = makeHisteqAutomaton(loadGray(options));
            const RunOutcome outcome =
                runWithTimeBudget(*bundle.automaton, budgetOf(options));
            report(bundle, outcome);
            if (const auto snap = bundle.output->read())
                writePgm(*snap.value, options.output + ".pgm");
        } else if (options.app == "dwt53") {
            auto bundle = makeDwt53Automaton(loadGray(options));
            const RunOutcome outcome =
                runWithTimeBudget(*bundle.automaton, budgetOf(options));
            report(bundle, outcome);
            if (const auto snap = bundle.output->read())
                writePgm(dwt53Inverse(*snap.value),
                         options.output + ".pgm");
        } else if (options.app == "debayer") {
            // A color input is mosaiced first (single-sensor model).
            const GrayImage mosaic =
                options.input.empty()
                    ? bayerMosaic(loadColor(options))
                    : loadGray(options);
            auto bundle = makeDebayerAutomaton(mosaic);
            const RunOutcome outcome =
                runWithTimeBudget(*bundle.automaton, budgetOf(options));
            report(bundle, outcome);
            if (const auto snap = bundle.output->read())
                writePpm(*snap.value, options.output + ".ppm");
        } else if (options.app == "kmeans") {
            auto bundle = makeKmeansAutomaton(loadColor(options));
            const RunOutcome outcome =
                runWithTimeBudget(*bundle.automaton, budgetOf(options));
            report(bundle, outcome);
            if (const auto snap = bundle.output->read())
                writePpm(snap.value->image, options.output + ".ppm");
        } else {
            fatal("unknown app '", options.app,
                  "' (conv2d|histeq|dwt53|debayer|kmeans)");
        }
        std::cout << "wrote " << options.output << ".{pgm|ppm}\n";
        return 0;
    } catch (const std::exception &error) {
        std::cerr << error.what() << '\n';
        return 1;
    }
}
