/**
 * @file
 * Reference client for the anytime streaming protocol.
 *
 * Sends one request and renders the stream as it arrives: each
 * VERSION frame is a complete, monotonically better answer (printed
 * with its quality bound), and the DONE frame carries the same QoR
 * metadata an in-process caller would get. Kill the process mid-stream
 * and the server cancels the request — the versions already printed
 * were all valid answers.
 *
 * Pair with examples/anytime_net_server:
 *
 *     anytime_net_server --port 8787 &
 *     anytime_net_client --port 8787 --input 400:5000:20
 */

#include <cmath>
#include <cstdlib>
#include <iostream>
#include <string>

#include "net/client.hpp"
#include "service/request.hpp"

using namespace anytime;
using namespace anytime::net;
using namespace std::chrono_literals;

namespace {

/** Parse a `--flag <value>` string option; empty when absent. */
std::string
stringOption(int argc, char **argv, const std::string &flag)
{
    for (int i = 1; i + 1 < argc; ++i) {
        if (argv[i] == flag)
            return argv[i + 1];
    }
    return {};
}

} // namespace

int
main(int argc, char **argv)
{
    // --host/--port: where the server listens. --pipeline/--input:
    // catalog name and its input spec ("steps[:step_us[:publish]]"
    // for the built-in counter). --deadline-ms/--min-quality: the QoS
    // contract that rides in the request header.
    ClientOptions options;
    const std::string host = stringOption(argc, argv, "--host");
    if (!host.empty())
        options.host = host;
    const std::string port_text = stringOption(argc, argv, "--port");
    options.port = port_text.empty()
                       ? 8787
                       : static_cast<std::uint16_t>(
                             std::atoi(port_text.c_str()));
    options.timeout = 30000ms;

    RequestFrame request;
    const std::string pipeline =
        stringOption(argc, argv, "--pipeline");
    request.pipeline = pipeline.empty() ? "counter" : pipeline;
    request.input = stringOption(argc, argv, "--input");
    if (request.input.empty())
        request.input = "400:5000:20"; // ~2 s, a version every 100 ms
    const std::string deadline_text =
        stringOption(argc, argv, "--deadline-ms");
    request.deadlineMicros =
        deadline_text.empty()
            ? 10000000
            : static_cast<std::uint64_t>(
                  std::atof(deadline_text.c_str()) * 1e3);
    const std::string quality_text =
        stringOption(argc, argv, "--min-quality");
    if (!quality_text.empty())
        request.minQuality = std::atof(quality_text.c_str());

    std::cout << "requesting " << request.pipeline << "('"
              << request.input << "') from " << options.host << ":"
              << options.port << "\n";

    const ClientResult result = runRequest(
        options, request, [](const VersionFrame &frame) {
            std::cout << "  version " << frame.version << ": "
                      << (frame.payload.size() > 64
                              ? frame.payload.substr(0, 64) + "..."
                              : frame.payload);
            if (!std::isnan(frame.quality))
                std::cout << "  (quality " << frame.quality << ")";
            if (frame.final)
                std::cout << "  [final]";
            if (frame.degraded)
                std::cout << "  [degraded]";
            std::cout << "\n";
            return true; // keep streaming
        });

    if (!result.ok) {
        std::cerr << "stream failed: " << result.error << "\n";
        return 1;
    }
    if (result.done) {
        const DoneFrame &done = *result.done;
        std::cout << "done: "
                  << serviceStatusName(
                         static_cast<ServiceStatus>(done.status))
                  << ", " << done.versionsPublished
                  << " version(s) in " << done.totalSeconds * 1e3
                  << " ms, first after "
                  << result.firstVersionSeconds * 1e3 << " ms"
                  << (done.reachedPrecise ? " (precise)"
                                          : " (approximate)")
                  << "\n";
    }
    return 0;
}
