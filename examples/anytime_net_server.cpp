/**
 * @file
 * Standalone anytime streaming server over TCP.
 *
 * Serves the deterministic "counter" pipeline through both doors of
 * the network front-end on one listener:
 *
 *  - the binary streaming protocol (see src/net/wire.hpp) used by
 *    examples/anytime_net_client;
 *  - HTTP: GET /stream (Server-Sent Events), /metrics (Prometheus),
 *    /healthz, /pipelines — try it with curl:
 *
 *      curl -N 'http://127.0.0.1:8787/stream?pipeline=counter&input=400:5000:20&deadline_ms=5000'
 *
 * Every version the pipeline publishes streams out the moment it
 * lands; a client that disconnects mid-stream cancels its request
 * server-side. That is the anytime contract over the wire: each frame
 * received is a valid answer, and patience buys accuracy.
 *
 * SIGTERM/SIGINT drain gracefully: the listener closes, open SSE
 * streams get `event: drain`, in-flight requests finish (or salvage
 * as `degraded` after a 2 s grace), and every final/DONE flushes
 * before exit — the hot-lifecycle half of the anytime contract.
 */

#include <csignal>

#include <atomic>
#include <chrono>
#include <cstdlib>
#include <iostream>
#include <memory>
#include <string>
#include <thread>

#include "net/catalog.hpp"
#include "net/server.hpp"
#include "obs/flight.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"

using namespace anytime;
using namespace anytime::net;
using namespace std::chrono_literals;

namespace {

/** Parse a `--flag <value>` string option; empty when absent. */
std::string
stringOption(int argc, char **argv, const std::string &flag)
{
    for (int i = 1; i + 1 < argc; ++i) {
        if (argv[i] == flag)
            return argv[i + 1];
    }
    return {};
}

/** Set by the SIGTERM/SIGINT handler; the main loop drains on it.
 *  (Signal handlers may only touch lock-free atomics — the drain
 *  itself runs on the main thread, not in the handler.) */
std::atomic<int> stopSignal{0};

extern "C" void
onStopSignal(int signo)
{
    stopSignal.store(signo, std::memory_order_relaxed);
}

} // namespace

int
main(int argc, char **argv)
{
    // --port <n>: listen port (default 8787; 0 picks an ephemeral
    // port, printed at startup). --duration <s>: serve for a fixed
    // time then exit (default: until stdin closes — Ctrl-D or Enter).
    // --trace: enable the execution tracer (then /requestz carries
    // live trace stats and flight artifacts embed span dumps).
    // --flight-dir <dir>: arm the flight recorder — anomaly snapshots
    // land as bounded flight-<slot>.json artifacts in <dir>.
    const std::string port_text = stringOption(argc, argv, "--port");
    const std::string duration_text =
        stringOption(argc, argv, "--duration");
    const std::string workers_text =
        stringOption(argc, argv, "--workers");
    const std::string flight_dir =
        stringOption(argc, argv, "--flight-dir");
    for (int i = 1; i < argc; ++i)
        if (std::string(argv[i]) == "--trace")
            obs::setTracingEnabled(true);
    if (!flight_dir.empty())
        obs::configureFlightRecorder({.directory = flight_dir});

    NetServerConfig config;
    config.port = port_text.empty()
                      ? 8787
                      : static_cast<std::uint16_t>(
                            std::atoi(port_text.c_str()));
    config.service.workers =
        workers_text.empty()
            ? 4
            : static_cast<unsigned>(
                  std::max(1, std::atoi(workers_text.c_str())));
    config.catalog = std::make_shared<PipelineCatalog>();
    registerCounterPipeline(*config.catalog);
    config.metricsRegistry = &obs::defaultRegistry();

    NetServer server(std::move(config));
    std::cout << "anytime streaming server on 127.0.0.1:"
              << server.port() << "\n"
              << "  binary protocol: examples/anytime_net_client "
                 "--port "
              << server.port() << "\n"
              << "  SSE:     curl -N 'http://127.0.0.1:" << server.port()
              << "/stream?pipeline=counter&input=400:5000:20"
                 "&deadline_ms=5000'\n"
              << "  metrics: curl http://127.0.0.1:" << server.port()
              << "/metrics\n"
              << "  debug:   curl http://127.0.0.1:" << server.port()
              << "/statusz  (and /requestz)\n";

    // SIGTERM/SIGINT trigger a graceful drain instead of an abrupt
    // exit: stop accepting, let in-flight requests finish (or salvage
    // them degraded after the grace), flush every final/DONE. No
    // SA_RESTART, so a signal also interrupts the blocking stdin read.
    struct sigaction action{};
    action.sa_handler = onStopSignal;
    ::sigemptyset(&action.sa_mask);
    ::sigaction(SIGTERM, &action, nullptr);
    ::sigaction(SIGINT, &action, nullptr);

    if (!duration_text.empty()) {
        const double seconds = std::atof(duration_text.c_str());
        const auto until = std::chrono::steady_clock::now() +
                           std::chrono::duration_cast<
                               std::chrono::steady_clock::duration>(
                               std::chrono::duration<double>(seconds));
        while (stopSignal.load(std::memory_order_relaxed) == 0 &&
               std::chrono::steady_clock::now() < until)
            std::this_thread::sleep_for(50ms);
    } else {
        std::cout
            << "press Enter (or close stdin) to stop; SIGTERM/SIGINT "
               "drain gracefully\n";
        std::string line;
        std::getline(std::cin, line);
    }

    if (const int signo = stopSignal.load(std::memory_order_relaxed)) {
        std::cout << "caught "
                  << (signo == SIGTERM ? "SIGTERM" : "SIGINT")
                  << ": draining (2 s grace)...\n";
        server.drain(2s);
    }

    const ServiceMetrics metrics = server.service().metricsSnapshot();
    std::cout << "served " << metrics.served() << " of "
              << metrics.total() << " request(s); bye\n";
    obs::shutdownFlightRecorder(); // flush pending anomaly artifacts
    return 0;
}
