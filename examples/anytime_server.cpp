/**
 * @file
 * Minimal in-process anytime server: a handful of clients submit
 * conv2d requests with wildly different deadlines against one shared
 * executor pool, and every client gets an answer — tight deadlines get
 * the best snapshot available, loose ones get the precise result.
 *
 * The point of the demo: under the anytime model a deadline is not a
 * failure mode. A request that runs out of time is answered with the
 * last published approximation and honest QoR metadata, instead of an
 * error or an unbounded wait.
 */

#include <algorithm>
#include <chrono>
#include <cstdlib>
#include <iostream>
#include <string>
#include <vector>

#include "apps/conv2d.hpp"
#include "fault/fault.hpp"
#include "image/generate.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "service/metrics.hpp"
#include "service/server.hpp"

using namespace anytime;
using namespace std::chrono_literals;

namespace {

/** Parse a `--flag <value>` string option; empty when absent. */
std::string
stringOption(int argc, char **argv, const std::string &flag)
{
    for (int i = 1; i + 1 < argc; ++i) {
        if (argv[i] == flag)
            return argv[i + 1];
    }
    return {};
}

} // namespace

int
main(int argc, char **argv)
{
    // --trace <path> captures the request lifecycle as Chrome
    // trace-event JSON (open in Perfetto); --metrics <path> writes a
    // Prometheus text snapshot of the live registry at exit.
    const std::string trace_path = stringOption(argc, argv, "--trace");
    const std::string metrics_path =
        stringOption(argc, argv, "--metrics");
    // --stage-workers <k> partitions each request's diffusive stage
    // among k workers (Section IV-C1): tighter deadlines reach higher
    // quality because every published version lands k times sooner.
    const std::string workers_text =
        stringOption(argc, argv, "--stage-workers");
    const unsigned stage_workers =
        workers_text.empty()
            ? 1
            : std::max(1, std::atoi(workers_text.c_str()));
    // --fault-plan <file|spec> arms the deterministic fault injector
    // for the run (grammar in DESIGN.md section 12), demonstrating
    // graceful degradation: a faulted pipeline answers with its last
    // good snapshot flagged "degraded" instead of an error.
    // --chaos-seed <n> overrides the plan's corruption seed.
    const std::string fault_plan_arg =
        stringOption(argc, argv, "--fault-plan");
    const std::string chaos_seed_arg =
        stringOption(argc, argv, "--chaos-seed");
    if (!fault_plan_arg.empty()) {
        fault::FaultPlan plan =
            fault::FaultPlan::fromSpecOrFile(fault_plan_arg);
        if (!chaos_seed_arg.empty())
            plan.seed = std::stoull(chaos_seed_arg);
        if (!ANYTIME_FAULTS_ENABLED)
            std::cerr << "warning: built with ANYTIME_FAULTS=OFF — "
                         "fault sites are compiled out, the plan will "
                         "inject nothing\n";
        std::cout << "chaos: " << plan.describe() << "\n";
        fault::FaultInjector::arm(std::move(plan));
    }

    const GrayImage scene = generateScene(192, 192, 7);

    AnytimeServer server({.workers = 4, .maxQueueDepth = 16});

    struct Client
    {
        const char *name;
        std::chrono::nanoseconds deadline;
    };
    const std::vector<Client> clients = {
        {"frantic", 8ms},  {"hurried", 20ms}, {"normal", 80ms},
        {"patient", 1s},   {"frantic2", 8ms}, {"normal2", 80ms},
    };

    std::vector<std::future<ServiceResponse>> futures;
    for (const Client &client : clients) {
        ServiceRequest request;
        request.name = client.name;
        request.deadline = client.deadline;
        request.stageWorkers = stage_workers;
        request.factory = [&scene, stage_workers] {
            Conv2dConfig config;
            config.publishCount = 48;
            config.workers = stage_workers;
            auto bundle =
                makeConv2dAutomaton(scene, Kernel::gaussianBlur(4),
                                    config);
            PreparedPipeline pipeline;
            auto out = bundle.output;
            const double publish_count =
                static_cast<double>(config.publishCount);
            pipeline.progress = [out, publish_count] {
                return std::min(
                    1.0, static_cast<double>(out->read().version) /
                             publish_count);
            };
            pipeline.versionCount = [out] { return out->version(); };
            pipeline.automaton = std::move(bundle.automaton);
            return pipeline;
        };
        futures.push_back(server.submit(std::move(request)));
    }

    std::cout << "6 clients, one pool of 4 workers, deadlines from "
                 "8 ms to 1 s:\n\n";
    for (std::size_t i = 0; i < clients.size(); ++i) {
        const ServiceResponse response = futures[i].get();
        std::cout << "  " << clients[i].name << " (deadline "
                  << std::chrono::duration<double, std::milli>(
                         clients[i].deadline)
                         .count()
                  << " ms): " << serviceStatusName(response.status)
                  << ", " << response.versionsPublished
                  << " versions published in "
                  << response.totalSeconds * 1e3 << " ms"
                  << (response.reachedPrecise ? " (precise)"
                                              : " (approximate)")
                  << "\n";
    }

    server.drain();
    std::cout << "\nevery deadline produced an answer; none produced "
                 "an error or a hang\n";

    if (!fault_plan_arg.empty()) {
        std::cout << "chaos: "
                  << fault::FaultInjector::instance().injectedTotal()
                  << " fault(s) injected\n";
        fault::FaultInjector::disarm();
    }

    if (!metrics_path.empty()) {
        if (obs::defaultRegistry().writePrometheus(metrics_path))
            std::cout << "metrics snapshot written to " << metrics_path
                      << "\n";
        else
            std::cerr << "cannot write metrics to " << metrics_path
                      << "\n";
    }
    if (!trace_path.empty()) {
        if (obs::writeChromeTrace(trace_path))
            std::cout << "trace written to " << trace_path
                      << "; open in Perfetto or chrome://tracing\n";
        else
            std::cerr << "cannot write trace to " << trace_path << "\n";
    }
    return 0;
}
