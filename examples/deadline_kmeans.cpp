/**
 * @file
 * Real-time deadline example: run the kmeans automaton under a hard
 * wall-clock budget (the paper's real-time use case — "absolute
 * time/energy constraints need to be met"). Whatever the budget, a
 * valid whole-image clustering is available when time runs out; with a
 * generous budget the precise output is reached and the automaton
 * simply stops early.
 *
 * Run: ./deadline_kmeans [budget_ms ...]
 */

#include <chrono>
#include <iostream>
#include <vector>

#include "apps/kmeans.hpp"
#include "core/controller.hpp"
#include "harness/report.hpp"
#include "image/generate.hpp"
#include "image/metrics.hpp"

using namespace anytime;

int
main(int argc, char **argv)
{
    std::vector<double> budgets_ms;
    for (int i = 1; i < argc; ++i)
        budgets_ms.push_back(std::atof(argv[i]));
    if (budgets_ms.empty())
        budgets_ms = {1.0, 5.0, 2000.0};

    const RgbImage scene = generateColorScene(320, 320, 7);
    const KmeansResult precise = kmeansCluster(scene, 8);

    std::cout << "deadline-bounded kmeans over a 320x320 scene, k=8\n";
    for (double budget_ms : budgets_ms) {
        KmeansConfig config;
        config.publishCount = 64;
        auto bundle = makeKmeansAutomaton(scene, config);

        const RunOutcome outcome = runWithTimeBudget(
            *bundle.automaton,
            std::chrono::duration_cast<std::chrono::nanoseconds>(
                std::chrono::duration<double, std::milli>(budget_ms)));

        const auto snap = bundle.output->read();
        std::cout << "budget " << formatDouble(budget_ms, 1) << " ms -> ";
        if (!snap) {
            std::cout << "no output version yet (budget below the "
                         "first-publish latency)\n";
            continue;
        }
        std::cout << formatDouble(
                         signalToNoiseDb(precise.image, snap.value->image),
                         1)
                  << " dB"
                  << (outcome.reachedPrecise ? " (precise, stopped early)"
                                             : " (approximate)")
                  << " after " << formatDouble(outcome.seconds * 1e3, 1)
                  << " ms\n";
    }
    std::cout << "every output above is a complete clustered image: the "
                 "deadline only selects its accuracy\n";
    return 0;
}
