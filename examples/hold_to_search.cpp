/**
 * @file
 * "Hold-the-enter-key" search (the paper's introduction): a query runs
 * as an anytime automaton over a document corpus; the longer the user
 * "holds the key", the more precise the result list. We simulate hold
 * durations and show how the top-k stabilizes toward the exact answer.
 *
 * Structure: a diffusive source scores documents in pseudo-random
 * (LFSR) order — input sampling over an unordered data set — and a
 * non-anytime child extracts the current top-k list.
 *
 * Run: ./hold_to_search [hold_ms ...]
 */

#include <algorithm>
#include <chrono>
#include <iostream>
#include <string>
#include <vector>

#include "core/automaton.hpp"
#include "core/controller.hpp"
#include "core/source_stage.hpp"
#include "core/transform_stage.hpp"
#include "sampling/lfsr_permutation.hpp"
#include "support/rng.hpp"

using namespace anytime;

namespace {

struct ScoreBoard
{
    /** score per document; -1 means not scored yet. */
    std::vector<float> scores;
    std::uint64_t scored = 0;
};

using TopK = std::vector<std::pair<int, float>>; // (doc id, score)

/** Deterministic "relevance" of a document to the query. */
float
relevance(std::uint64_t doc, std::uint64_t query_hash)
{
    SplitMix64 mix(doc * 0x9e3779b97f4a7c15ULL ^ query_hash);
    // A heavy-tailed score so there are clear winners to find.
    const double u = static_cast<double>(mix.next() >> 11) * 0x1.0p-53;
    return static_cast<float>(1.0 / (1.0 - 0.999999 * u));
}

TopK
topK(const ScoreBoard &board, std::size_t k)
{
    TopK top;
    for (std::size_t i = 0; i < board.scores.size(); ++i) {
        if (board.scores[i] >= 0)
            top.emplace_back(static_cast<int>(i), board.scores[i]);
    }
    std::partial_sort(top.begin(),
                      top.begin() + std::min(k, top.size()), top.end(),
                      [](const auto &a, const auto &b) {
                          return a.second > b.second;
                      });
    if (top.size() > k)
        top.resize(k);
    return top;
}

} // namespace

int
main(int argc, char **argv)
{
    std::vector<double> holds_ms;
    for (int i = 1; i < argc; ++i)
        holds_ms.push_back(std::atof(argv[i]));
    if (holds_ms.empty())
        holds_ms = {3.0, 30.0, 5000.0};

    const std::uint64_t corpus = 1u << 18;
    const std::uint64_t query_hash = 0xfeedULL;
    const std::size_t k = 5;

    // The exact answer, for comparison.
    ScoreBoard exact{std::vector<float>(corpus, -1.f), corpus};
    for (std::uint64_t doc = 0; doc < corpus; ++doc)
        exact.scores[doc] = relevance(doc, query_hash);
    const TopK truth = topK(exact, k);

    for (double hold_ms : holds_ms) {
        Automaton automaton;
        auto board_buf = automaton.makeBuffer<ScoreBoard>("scores");
        auto top_buf = automaton.makeBuffer<TopK>("topk");

        auto perm = std::make_shared<const LfsrPermutation>(corpus, 31);
        automaton.addStage(
            std::make_shared<DiffusiveSourceStage<ScoreBoard>>(
                "score", board_buf,
                ScoreBoard{std::vector<float>(corpus, -1.f), 0}, corpus,
                [perm, query_hash](std::uint64_t step, ScoreBoard &board,
                                   StageContext &) {
                    const std::uint64_t doc = perm->map(step);
                    board.scores[doc] = relevance(doc, query_hash);
                    ++board.scored;
                },
                /*publish_period=*/corpus / 64, /*batch=*/1024));

        automaton.addStage(makeFunctionStage<TopK, ScoreBoard>(
            "topk", board_buf, top_buf,
            [k](const ScoreBoard &board) { return topK(board, k); }));

        const RunOutcome outcome = runWithTimeBudget(
            automaton,
            std::chrono::duration_cast<std::chrono::nanoseconds>(
                std::chrono::duration<double, std::milli>(hold_ms)));

        const auto snap = top_buf->read();
        std::cout << "held for " << hold_ms << " ms -> ";
        if (!snap) {
            std::cout << "(no results yet)\n";
            continue;
        }
        std::size_t overlap = 0;
        for (const auto &[doc, score] : *snap.value) {
            for (const auto &[true_doc, true_score] : truth)
                overlap += (doc == true_doc) ? 1 : 0;
        }
        std::cout << overlap << "/" << k << " of the true top-" << k
                  << (outcome.reachedPrecise ? " (exact: full corpus "
                                               "scored)"
                                             : " (approximate)")
                  << '\n';
    }
    std::cout << "holding longer never makes the answer worse, and a "
                 "long enough hold is guaranteed exact\n";
    return 0;
}
