/**
 * @file
 * Progressive blur: the paper's 2dconv automaton on a synthetic scene,
 * writing the output image at several points of the sweep so the
 * progressive-resolution refinement (Figures 5 and 16) is visible.
 *
 * Run: ./progressive_blur [out_dir]
 * Writes out_dir/blur_v<k>.pgm snapshots plus the precise output.
 */

#include <filesystem>
#include <iostream>
#include <string>

#include "apps/conv2d.hpp"
#include "core/controller.hpp"
#include "harness/profiler.hpp"
#include "image/generate.hpp"
#include "image/io.hpp"
#include "harness/report.hpp"
#include "image/metrics.hpp"

using namespace anytime;

int
main(int argc, char **argv)
{
    const std::string out_dir = argc > 1 ? argv[1] : "progressive_blur";
    std::filesystem::create_directories(out_dir);

    const GrayImage scene = generateScene(384, 384, 99);
    const Kernel kernel = Kernel::gaussianBlur(3);
    const GrayImage precise = convolve(scene, kernel);
    writePgm(scene, out_dir + "/input.pgm");

    Conv2dConfig config;
    config.publishCount = 64;
    auto bundle = makeConv2dAutomaton(scene, kernel, config);

    TimelineRecorder<GrayImage> recorder(*bundle.output);
    recorder.startClock();
    bundle.automaton->start();
    bundle.automaton->waitUntilDone();
    bundle.automaton->shutdown();

    // Keep a handful of exponentially spaced snapshots.
    const auto entries = recorder.entries();
    std::size_t kept = 0;
    for (std::size_t i = 1; i <= entries.size(); i *= 2) {
        const auto &entry = entries[i - 1];
        const std::string path =
            out_dir + "/blur_v" + std::to_string(entry.version) + ".pgm";
        writePgm(*entry.value, path);
        std::cout << path << ": "
                  << formatDouble(signalToNoiseDb(precise, *entry.value),
                                  1)
                  << " dB at " << formatDouble(entry.seconds * 1e3, 2)
                  << " ms" << (entry.final ? " (precise)" : "") << '\n';
        ++kept;
    }
    if (!entries.empty() && !entries.back().final)
        std::cout << "note: run was interrupted before precision\n";
    writePgm(precise, out_dir + "/blur_precise.pgm");
    std::cout << "kept " << kept << " snapshots + precise baseline in "
              << out_dir << "/\n";
    return 0;
}
