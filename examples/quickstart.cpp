/**
 * @file
 * Quickstart: build a tiny anytime automaton by hand, watch accuracy
 * increase over time, interrupt it early, and then let it run to the
 * precise output.
 *
 * The application is the paper's motivating shape: a diffusive source
 * stage (a sampled mean over a large data set) feeding a non-anytime
 * child (formatting the estimate). Every published version of the
 * child's output is a valid whole-application output.
 *
 * Run: ./quickstart
 */

#include <chrono>
#include <iostream>
#include <thread>
#include <vector>

#include "core/automaton.hpp"
#include "core/controller.hpp"
#include "core/source_stage.hpp"
#include "core/transform_stage.hpp"
#include "sampling/lfsr_permutation.hpp"
#include "sampling/reducer.hpp"
#include "support/rng.hpp"

using namespace anytime;

namespace {

/** Running mean over sampled elements. */
struct MeanEstimate
{
    double sum = 0;
    std::uint64_t samples = 0;
    std::uint64_t population = 0;

    double
    value() const
    {
        return samples ? sum / static_cast<double>(samples) : 0.0;
    }
};

} // namespace

int
main()
{
    // A large data set whose mean we want "well enough, soon".
    const std::uint64_t n = 1u << 22;
    std::vector<float> data(n);
    Xoshiro256 rng(2016);
    for (auto &v : data)
        v = static_cast<float>(rng.nextDouble() * 100.0);

    Automaton automaton;
    auto mean_buf = automaton.makeBuffer<MeanEstimate>("mean");
    auto text_buf = automaton.makeBuffer<std::string>("report");

    // Stage 1 (diffusive): sample the data in pseudo-random (LFSR)
    // order — the paper's input sampling for unordered data sets. Every
    // element is visited exactly once, so the final mean is exact.
    auto perm = std::make_shared<const LfsrPermutation>(n, 7);
    auto shared_data = std::make_shared<const std::vector<float>>(
        std::move(data));
    automaton.addStage(std::make_shared<DiffusiveSourceStage<MeanEstimate>>(
        "sampled-mean", mean_buf, MeanEstimate{0, 0, n}, n,
        [shared_data, perm](std::uint64_t step, MeanEstimate &state,
                            StageContext &) {
            state.sum += (*shared_data)[perm->map(step)];
            ++state.samples;
        },
        /*publish_period=*/n / 64));

    // Stage 2 (non-anytime): format whichever estimate is current.
    automaton.addStage(makeFunctionStage<std::string, MeanEstimate>(
        "format", mean_buf, text_buf, [](const MeanEstimate &estimate) {
            return "mean ~= " + std::to_string(estimate.value()) +
                   " (from " + std::to_string(estimate.samples) + "/" +
                   std::to_string(estimate.population) + " samples)";
        }));

    // Run, peeking at the anytime output as it improves.
    automaton.start();
    for (int peek = 0; peek < 3; ++peek) {
        std::this_thread::sleep_for(std::chrono::milliseconds(3));
        const auto snap = text_buf->read();
        if (snap)
            std::cout << "[t+" << (peek + 1) * 3 << "ms] " << *snap.value
                      << (snap.final ? "  <- precise" : "") << '\n';
    }

    // The anytime contract: we could stop here with a valid output...
    automaton.pause();
    std::cout << "(paused — the current output stays valid)\n";
    automaton.resume();

    // ...or let it run to the guaranteed-precise end.
    automaton.waitUntilDone();
    automaton.shutdown();
    std::cout << "final:   " << *text_buf->read().value << '\n';
    std::cout << "final version is precise: "
              << (text_buf->read().final ? "yes" : "no") << '\n';
    return 0;
}
