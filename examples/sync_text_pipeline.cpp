/**
 * @file
 * The paper's Figure 8 made concrete: a diffusive parent grows a string
 * letter-by-letter while a distributive child capitalizes it. The
 * asynchronous organization re-capitalizes the whole prefix on every
 * version; the synchronous pipeline streams the updates so each letter
 * is processed exactly once. Both reach the same precise output — the
 * example prints the work counters side by side.
 *
 * Run: ./sync_text_pipeline [text]
 */

#include <cctype>
#include <iostream>
#include <string>
#include <thread>

#include "core/buffer.hpp"
#include "core/channel.hpp"
#include "core/sync_stage.hpp"
#include "core/transform_stage.hpp"

using namespace anytime;

namespace {

char
capitalize(char c)
{
    return static_cast<char>(std::toupper(static_cast<unsigned char>(c)));
}

struct ManualRig
{
    PauseGate gate;
    StageStats stats;
    std::stop_source source;

    StageContext
    ctx()
    {
        return StageContext(source.get_token(), gate, stats, 0, 1);
    }
};

} // namespace

int
main(int argc, char **argv)
{
    const std::string text =
        argc > 1 ? argv[1]
                 : "the anytime automaton diffuses data through a "
                   "parallel pipeline of anytime approximations";

    // --- Asynchronous organization: g(F_i) recapitalizes the prefix.
    std::uint64_t async_work = 0;
    {
        auto f_out = std::make_shared<VersionedBuffer<std::string>>("f");
        auto g_out = std::make_shared<VersionedBuffer<std::string>>("g");
        TransformStage<std::string, std::string> child(
            "g", f_out, g_out,
            [&](const std::string &prefix, Emitter<std::string> &emitter,
                StageContext &) {
                std::string upper;
                for (char c : prefix) {
                    upper.push_back(capitalize(c));
                    ++async_work; // every letter of every version
                }
                emitter.emit(std::move(upper), true);
            });

        ManualRig rig;
        std::thread child_thread([&] {
            StageContext ctx = rig.ctx();
            child.run(ctx);
        });
        std::string grown;
        for (std::size_t i = 0; i < text.size(); ++i) {
            grown.push_back(text[i]);
            f_out->publish(grown, i + 1 == text.size());
            // Give the child a chance to observe versions (the paper's
            // "whichever output happens to be in the buffer").
            if (i % 8 == 0)
                std::this_thread::yield();
        }
        child_thread.join();
        std::cout << "async : " << *g_out->read().value << '\n';
    }

    // --- Synchronous organization: gS folds each update X_i once.
    std::uint64_t sync_work = 0;
    {
        auto f_out = std::make_shared<VersionedBuffer<std::string>>("f");
        auto g_out = std::make_shared<VersionedBuffer<std::string>>("g");
        auto channel = std::make_shared<UpdateChannel<char>>(4);

        SyncSourceStage<std::string, char> parent(
            "f", f_out, channel, std::string(), text.size(),
            [&](std::uint64_t step, StageContext &) {
                return text[step];
            },
            [](std::string &state, const char &c) { state.push_back(c); },
            /*publish_period=*/8);
        SyncTransformStage<char, std::string> child(
            "gS", channel, g_out, std::string(),
            [&](std::string &acc, const char &c, StageContext &) {
                acc.push_back(capitalize(c));
                ++sync_work; // each letter exactly once
            },
            /*publish_period=*/8);

        ManualRig rig;
        std::thread child_thread([&] {
            StageContext ctx = rig.ctx();
            child.run(ctx);
        });
        StageContext ctx = rig.ctx();
        parent.run(ctx);
        child_thread.join();
        std::cout << "sync  : " << *g_out->read().value << '\n';
    }

    std::cout << "letters capitalized — async: " << async_work
              << ", sync: " << sync_work << " (input length "
              << text.size()
              << "; the sync pipeline does no redundant child work)\n";
    return 0;
}
