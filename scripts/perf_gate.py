#!/usr/bin/env python3
"""CI perf-smoke gate for the anytime automaton benches.

Compares a fresh ``bench_fig11_conv2d --json`` measurement against the
committed baseline (``bench/baselines/BENCH_baseline.json``) and fails
the build when the anytime pipeline got meaningfully slower or the
multi-worker merge stopped being deterministic.

Checks, in order of importance:

1. **Determinism (always enforced).** Every scaling point must report
   ``bit_identical: true`` — the partitioned merge guarantees the final
   output equals the single-worker image exactly, on any host.
2. **t90 regression (always enforced).** The single-worker normalized
   time-to-90%-quality (``t90_norm`` = t90 / measured precise baseline)
   must not exceed the committed baseline by more than ``--margin``
   (default 1.25, i.e. a >25% regression fails).
3. **Worker scaling (enforced only on multi-core hosts).** With >= 4
   hardware threads, the 4-worker gang must reach 90% quality at least
   ``2.5 / margin`` times faster than the single worker. On hosts with
   fewer hardware threads the check is SKIPPED (reported, not failed):
   parallel speedup is physically unmeasurable there and the gang can
   only add coordination overhead.
4. **SIMD kernels (enforced when a vector ISA is active).** The bench's
   ``simd_compare`` block runs the same single-worker automaton with
   dispatch forced to scalar and to the best supported ISA. The finals
   must be bit-identical (the kernels are exact specifications), and
   the vectorized t90 must beat or match the scalar t90 within
   ``--margin``. On hosts without a vector ISA (or builds configured
   with ``-DANYTIME_SIMD=OFF``) the block reports ``"isa": "scalar"``
   and the check is SKIPPED.

Normalizing by each run's own measured precise baseline makes the
committed numbers portable across machine generations; the margin
absorbs scheduler noise.
"""

import argparse
import json
import sys

REQUIRED_SPEEDUP = 2.5  # acceptance target for the 4-worker gang

SKIP_EPILOG = """\
skip conditions (reported as SKIP, never failures):
  - host has fewer than 4 hardware threads: the 4-worker speedup check
    is physically unmeasurable, only determinism and t90 are enforced
  - the current report has no workers=4 scaling point: the speedup
    check has nothing to measure
  - the report has no simd_compare block, or its isa is "scalar" (no
    vector ISA on this host, or an ANYTIME_SIMD=OFF build): the SIMD
    speedup check has nothing to compare against
  - the current and baseline reports were measured with different
    kernel ISAs: their normalized t90 values are incomparable, so the
    t90 regression check is skipped (determinism is still enforced)

exit status: 0 = gate passed (possibly with SKIPs), 1 = regression or
determinism failure, 2 = unusable input (missing/malformed JSON).
"""


def load(path, role):
    """Read a report, dying with a one-line diagnostic on bad input."""
    try:
        with open(path) as handle:
            return json.load(handle)
    except OSError as error:
        print(f"perf_gate: cannot read {role} report {path!r}: "
              f"{error.strerror or error}", file=sys.stderr)
        sys.exit(2)
    except json.JSONDecodeError as error:
        print(f"perf_gate: {role} report {path!r} is not valid JSON "
              f"(line {error.lineno}: {error.msg})", file=sys.stderr)
        sys.exit(2)


def scaling_point(report, workers):
    for point in report.get("scaling", []):
        if point.get("workers") == workers:
            return point
    return None


def main():
    parser = argparse.ArgumentParser(
        description=__doc__, epilog=SKIP_EPILOG,
        formatter_class=argparse.RawDescriptionHelpFormatter)
    parser.add_argument("--current", required=True,
                        help="fresh bench JSON (BENCH_ci.json)")
    parser.add_argument("--baseline", required=True,
                        help="committed baseline JSON")
    parser.add_argument("--margin", type=float, default=1.25,
                        help="allowed regression factor (default 1.25)")
    args = parser.parse_args()

    current = load(args.current, "current")
    baseline = load(args.baseline, "baseline")
    failures = []
    skipped = []

    # 1. Determinism: bit-identical finals at every worker count.
    for point in current.get("scaling", []):
        if not point.get("bit_identical", False):
            failures.append(
                f"workers={point.get('workers')}: final output diverged "
                "from the single-worker image (merge no longer "
                "deterministic)")

    # 2. Single-worker t90 regression against the committed baseline.
    # Only comparable when both runs used the same kernel ISA: the
    # committed t90_norm was measured with the vectorized kernels, so a
    # scalar build (or a host without the baseline's ISA) would "regress"
    # by exactly the SIMD speedup. Determinism stays enforced.
    cur_isa = current.get("isa", "scalar")
    base_isa = baseline.get("isa", "scalar")
    cur_w1 = scaling_point(current, 1)
    base_w1 = scaling_point(baseline, 1)
    if cur_w1 is None or base_w1 is None:
        failures.append("missing workers=1 scaling point")
    elif cur_isa != base_isa:
        skipped.append(
            f"t90 regression check (current isa {cur_isa!r} vs baseline "
            f"isa {base_isa!r}: normalized times are incomparable)")
    else:
        cur_norm = cur_w1.get("t90_norm", 0.0)
        base_norm = base_w1.get("t90_norm", 0.0)
        limit = base_norm * args.margin
        line = (f"t90_norm w1: current {cur_norm:.3f} vs baseline "
                f"{base_norm:.3f} (limit {limit:.3f})")
        if base_norm > 0.0 and cur_norm > limit:
            failures.append("REGRESSION " + line)
        else:
            print("ok:", line)

    # 3. Multi-worker speedup — only meaningful with real cores.
    hardware = current.get("hardware_threads", 1)
    cur_w4 = scaling_point(current, 4)
    if cur_w4 is None:
        skipped.append("no workers=4 point measured")
    elif hardware < 4:
        skipped.append(
            f"speedup check (host has {hardware} hardware thread(s); "
            "4-worker scaling is unmeasurable)")
    else:
        t90_w1 = cur_w1.get("t90_seconds", 0.0) if cur_w1 else 0.0
        t90_w4 = cur_w4.get("t90_seconds", 0.0)
        speedup = t90_w1 / t90_w4 if t90_w4 > 0.0 else 0.0
        required = REQUIRED_SPEEDUP / args.margin
        line = (f"4-worker t90 speedup {speedup:.2f}x "
                f"(required >= {required:.2f}x)")
        if speedup < required:
            failures.append("REGRESSION " + line)
        else:
            print("ok:", line)

    # 4. SIMD kernels: bit-identity is absolute; the vectorized t90 must
    # beat or match the forced-scalar t90 within the margin.
    compare = current.get("simd_compare")
    if compare is None:
        skipped.append("simd check (report has no simd_compare block)")
    elif compare.get("isa") == "scalar":
        skipped.append(
            "simd check (no vector ISA: scalar-only host or "
            "ANYTIME_SIMD=OFF build)")
    else:
        isa = compare.get("isa", "?")
        if not compare.get("bit_identical", False):
            failures.append(
                f"simd {isa}: forced-scalar and vectorized finals "
                "diverged (kernel no longer bit-exact)")
        speedup = compare.get("speedup", 0.0)
        required = 1.0 / args.margin
        line = (f"simd {isa} t90 speedup over scalar {speedup:.2f}x "
                f"(required >= {required:.2f}x)")
        if speedup < required:
            failures.append("REGRESSION " + line)
        else:
            print("ok:", line)

    for item in skipped:
        print("SKIP:", item)
    if failures:
        for item in failures:
            print("FAIL:", item, file=sys.stderr)
        return 1
    print("perf gate passed")
    return 0


if __name__ == "__main__":
    sys.exit(main())
