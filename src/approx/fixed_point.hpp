/**
 * @file
 * Reduced fixed-point precision (paper Section III-B2, Figure 6).
 *
 * Integer/fixed-point data is a sum of powers of two, so computing with
 * a subset of bit planes is a form of input sampling with a sequential
 * (MSB-first) permutation. A dot product computed plane by plane is
 * *diffusive*: each plane's partial product adds usefully to the
 * accumulator and the full-precision result is reached after all planes,
 * with no work beyond the baseline (this is classic bit-serial /
 * distributed arithmetic).
 */

#ifndef ANYTIME_APPROX_FIXED_POINT_HPP
#define ANYTIME_APPROX_FIXED_POINT_HPP

#include <cmath>
#include <cstdint>
#include <limits>
#include <span>

#include "simd/simd.hpp"
#include "support/error.hpp"

namespace anytime {

/**
 * Signed fixed-point value with a compile-time binary point.
 *
 * @tparam FracBits Number of fractional bits (Q(31-FracBits).FracBits).
 */
template <unsigned FracBits>
class Fixed
{
    static_assert(FracBits < 31, "fractional bits must fit in int32");

  public:
    constexpr Fixed() = default;

    /** Wrap an already-scaled raw value. */
    static constexpr Fixed
    fromRaw(std::int32_t raw)
    {
        Fixed f;
        f.value = raw;
        return f;
    }

    /**
     * Convert from double, rounding to nearest and saturating: values
     * beyond the Q-format range clamp to the extremes, NaN maps to 0.
     * (An unclamped double-to-int32 cast of an out-of-range value is
     * undefined behavior, not a wrap.)
     */
    static Fixed
    fromDouble(double x)
    {
        const double scaled = x * static_cast<double>(1 << FracBits);
        const double rounded = scaled >= 0 ? scaled + 0.5 : scaled - 0.5;
        if (std::isnan(rounded))
            return fromRaw(0);
        if (rounded <= static_cast<double>(
                           std::numeric_limits<std::int32_t>::min()))
            return fromRaw(std::numeric_limits<std::int32_t>::min());
        if (rounded >= static_cast<double>(
                           std::numeric_limits<std::int32_t>::max()))
            return fromRaw(std::numeric_limits<std::int32_t>::max());
        return fromRaw(static_cast<std::int32_t>(rounded));
    }

    /** Raw scaled integer representation. */
    constexpr std::int32_t raw() const { return value; }

    /** Convert back to double. */
    constexpr double
    toDouble() const
    {
        return static_cast<double>(value) /
               static_cast<double>(1 << FracBits);
    }

    constexpr Fixed
    operator+(Fixed other) const
    {
        return fromRaw(value + other.value);
    }

    constexpr Fixed
    operator-(Fixed other) const
    {
        return fromRaw(value - other.value);
    }

    /** Full-precision product, rescaled back to this Q format. */
    constexpr Fixed
    operator*(Fixed other) const
    {
        const std::int64_t wide =
            static_cast<std::int64_t>(value) * other.value;
        return fromRaw(static_cast<std::int32_t>(wide >> FracBits));
    }

    constexpr bool operator==(const Fixed &) const = default;

    /**
     * Keep only the @p keep most significant magnitude bits (of the 32
     * in the representation), zeroing the rest. keep == 32 is identity.
     * This is the "W & 2^32 - i" masking of the paper's anytime
     * reduced-precision dot product.
     */
    constexpr Fixed
    truncated(unsigned keep) const
    {
        if (keep >= 32)
            return *this;
        const std::uint32_t mask =
            (keep == 0) ? 0u : ~((std::uint32_t(1) << (32 - keep)) - 1);
        return fromRaw(static_cast<std::int32_t>(
            static_cast<std::uint32_t>(value) & mask));
    }

  private:
    std::int32_t value = 0;
};

/** Zero out the low @p drop bits of an integer (precision reduction). */
constexpr std::int32_t
maskLowBits(std::int32_t value, unsigned drop)
{
    if (drop == 0)
        return value;
    if (drop >= 32)
        return 0;
    const std::uint32_t mask = ~((std::uint32_t(1) << drop) - 1);
    return static_cast<std::int32_t>(
        static_cast<std::uint32_t>(value) & mask);
}

/**
 * Quantize an unsigned 8-bit sample to @p bits bits of precision by
 * zeroing the (8 - bits) low bits. Used for the paper's Figure 19
 * (2dconv at 8/6/4/2-bit pixel precision).
 */
constexpr std::uint8_t
quantizePixel(std::uint8_t value, unsigned bits)
{
    if (bits >= 8)
        return value;
    if (bits == 0)
        return 0;
    const std::uint8_t mask =
        static_cast<std::uint8_t>(0xffu << (8 - bits));
    return static_cast<std::uint8_t>(value & mask);
}

/**
 * Anytime (diffusive) dot product over integer weight bit planes.
 *
 * Given input vector I and weight vector W of 32-bit integers, the
 * precise dot product is reached by accumulating one weight bit plane
 * per step, MSB first (sequential permutation over planes, as the paper
 * prescribes: "the most-significant bits should be prioritized"). After
 * k steps the accumulator equals the dot product of I with W truncated
 * to its top k bits — identical to the masked expression
 * O_{i-1} + (I . (W & mask_i)) in the paper, but with no redundant work.
 */
class BitPlaneDotProduct
{
  public:
    /**
     * @param inputs  Input vector I (not owned; must outlive this).
     * @param weights Weight vector W, same length as @p inputs.
     */
    BitPlaneDotProduct(std::span<const std::int32_t> inputs,
                       std::span<const std::int32_t> weights)
        : inputs(inputs), weights(weights)
    {
        fatalIf(inputs.size() != weights.size(),
                "BitPlaneDotProduct: length mismatch ", inputs.size(),
                " vs ", weights.size());
        // OR of all weights: a plane with no bit set anywhere sums to
        // zero, so step() can skip its O(n) scan (MSB-first digit
        // elision). The accumulator sequence is unchanged.
        for (const std::int32_t w : weights)
            orMask |= static_cast<std::uint32_t>(w);
    }

    /** Total number of diffusive steps (bit planes). */
    static constexpr unsigned planes() { return 32; }

    /** Number of planes consumed so far. */
    unsigned consumed() const { return plane; }

    /** True once all planes are folded in (accumulator is precise). */
    bool precise() const { return plane == planes(); }

    /**
     * Fold in the next most significant weight bit plane.
     * @return The updated accumulator O_i.
     */
    std::int64_t
    step()
    {
        panicIf(precise(), "BitPlaneDotProduct stepped past precision");
        const unsigned bit = 31 - plane;
        // Digit elision: an all-zero plane contributes nothing.
        if (((orMask >> bit) & 1u) == 0) {
            ++plane;
            return accumulator;
        }
        // Wraparound sum of the inputs selected by this weight plane
        // (vectorized; exact and order-free by two's complement).
        const std::int64_t partial = simd::ops().maskedSumI32(
            inputs.data(),
            reinterpret_cast<const std::uint32_t *>(weights.data()),
            weights.size(), bit);
        // Two's complement: the top plane carries weight -2^31.
        const std::int64_t scale =
            (bit == 31) ? -(std::int64_t(1) << 31)
                        : (std::int64_t(1) << bit);
        // Intermediate plane sums may transiently exceed int64 range
        // even when the telescoped final product fits; accumulate in
        // uint64 (well-defined wraparound) to keep the result exact.
        accumulator = static_cast<std::int64_t>(
            static_cast<std::uint64_t>(accumulator) +
            static_cast<std::uint64_t>(partial) *
                static_cast<std::uint64_t>(scale));
        ++plane;
        return accumulator;
    }

    /** Current anytime accumulator O_i. */
    std::int64_t value() const { return accumulator; }

  private:
    std::span<const std::int32_t> inputs;
    std::span<const std::int32_t> weights;
    std::int64_t accumulator = 0;
    unsigned plane = 0;
    std::uint32_t orMask = 0;
};

} // namespace anytime

#endif // ANYTIME_APPROX_FIXED_POINT_HPP
