/**
 * @file
 * Anytime loop perforation (paper Section III-B1, "Loop Perforation").
 *
 * Loop perforation skips loop iterations with a fixed stride. Made
 * anytime, the perforated loop is re-executed with progressively smaller
 * strides s_1 > s_2 > ... > s_n = 1; the final stride-1 pass is the
 * precise computation. This is the canonical *iterative* technique: each
 * level overwrites the previous output and redundant work grows with the
 * number of levels (the paper's dwt53 exhibits exactly this steep,
 * non-smooth runtime-accuracy curve).
 */

#ifndef ANYTIME_APPROX_PERFORATION_HPP
#define ANYTIME_APPROX_PERFORATION_HPP

#include <cstdint>
#include <vector>

#include "support/error.hpp"

namespace anytime {

/**
 * A validated sequence of perforation strides: strictly decreasing and
 * ending at 1 so the final level is precise.
 */
class PerforationSchedule
{
  public:
    /** Build from an explicit stride list (validated). */
    explicit PerforationSchedule(std::vector<std::uint32_t> strides_in)
        : strideList(std::move(strides_in))
    {
        fatalIf(strideList.empty(), "PerforationSchedule: empty");
        for (std::size_t i = 0; i < strideList.size(); ++i) {
            fatalIf(strideList[i] == 0,
                    "PerforationSchedule: zero stride");
            fatalIf(i > 0 && strideList[i] >= strideList[i - 1],
                    "PerforationSchedule: strides must strictly decrease");
        }
        fatalIf(strideList.back() != 1,
                "PerforationSchedule: final stride must be 1 (precise)");
    }

    /**
     * Geometric schedule {2^(n-1), ..., 4, 2, 1}.
     * @param levels Number of levels n (>= 1).
     */
    static PerforationSchedule
    geometric(unsigned levels)
    {
        fatalIf(levels == 0 || levels > 31,
                "PerforationSchedule: bad level count ", levels);
        std::vector<std::uint32_t> strides;
        for (unsigned i = 0; i < levels; ++i)
            strides.push_back(std::uint32_t(1) << (levels - 1 - i));
        return PerforationSchedule(std::move(strides));
    }

    /** Number of levels n. */
    std::size_t levels() const { return strideList.size(); }

    /** Stride s_i of level @p level (0-based). */
    std::uint32_t
    stride(std::size_t level) const
    {
        panicIf(level >= strideList.size(),
                "perforation level ", level, " out of range");
        return strideList[level];
    }

    /** The raw stride list. */
    const std::vector<std::uint32_t> &strides() const { return strideList; }

    /**
     * Total iterations executed across all levels for a trip count of
     * @p trip_count, counting the redundant re-execution the iterative
     * construction implies. Used by benches to report overhead.
     */
    std::uint64_t
    totalWork(std::uint64_t trip_count) const
    {
        std::uint64_t work = 0;
        for (std::uint32_t s : strideList)
            work += (trip_count + s - 1) / s;
        return work;
    }

  private:
    std::vector<std::uint32_t> strideList;
};

/**
 * Run @p body for every index in [0, trip_count) hit by @p stride
 * (i.e., indices 0, stride, 2*stride, ...).
 */
template <typename Body>
void
forEachPerforated(std::uint64_t trip_count, std::uint32_t stride,
                  Body &&body)
{
    panicIf(stride == 0, "perforation stride must be nonzero");
    for (std::uint64_t i = 0; i < trip_count; i += stride)
        body(i);
}

} // namespace anytime

#endif // ANYTIME_APPROX_PERFORATION_HPP
