/**
 * @file
 * Simulated approximate storage (paper Sections III-B1 and IV-B2).
 *
 * The paper evaluates iterative anytime stages built on approximate
 * storage — drowsy SRAM caches, low-refresh DRAM, approximate PCM —
 * where lowering the device accuracy level (e.g., SRAM supply voltage)
 * raises the bit-failure probability. Two semantics matter for the
 * anytime construction and are modeled faithfully here:
 *
 *  1. *Read upsets*: every read of a word may flip bits with a
 *     per-bit probability determined by the current level.
 *  2. *Data destructiveness*: a corrupted bit stays corrupted even after
 *     the accuracy level is raised; the device must be flushed
 *     (reinitialized with precise values) between iterative levels.
 *
 * We substitute the real hardware with a deterministic fault-injection
 * model: per-bit Bernoulli upsets drawn via geometric skipping from a
 * seeded Xoshiro generator, so experiments are reproducible bit-for-bit.
 */

#ifndef ANYTIME_APPROX_STORAGE_HPP
#define ANYTIME_APPROX_STORAGE_HPP

#include <cmath>
#include <cstdint>
#include <limits>
#include <type_traits>
#include <vector>

#include "support/error.hpp"
#include "support/rng.hpp"

namespace anytime {

/**
 * Streams per-bit Bernoulli faults with geometric skipping: instead of
 * one coin flip per bit, the gap to the next upset is drawn from a
 * geometric distribution, making tiny probabilities (1e-7 per bit)
 * cheap to simulate.
 */
class FaultInjector
{
  public:
    /**
     * @param probability Per-bit upset probability in [0, 1].
     * @param seed        RNG seed (deterministic stream).
     */
    FaultInjector(double probability, std::uint64_t seed)
        : rng(seed)
    {
        setProbability(probability);
    }

    /** Change the per-bit upset probability (restarts the gap draw). */
    void
    setProbability(double probability)
    {
        fatalIf(probability < 0.0 || probability > 1.0,
                "fault probability ", probability, " out of [0, 1]");
        prob = probability;
        gap = drawGap();
    }

    /** Current per-bit upset probability. */
    double probability() const { return prob; }

    /**
     * Consume a window of @p bits bits and invoke @p on_flip with the
     * offset (in [0, bits)) of every upset bit inside the window.
     */
    template <typename OnFlip>
    void
    consume(std::uint64_t bits, OnFlip &&on_flip)
    {
        if (prob <= 0.0)
            return;
        std::uint64_t pos = 0;
        while (gap < bits - pos) {
            pos += gap;
            on_flip(pos);
            ++pos;
            gap = drawGap();
        }
        gap -= bits - pos;
    }

  private:
    /** Geometric(prob) gap: number of clean bits before the next flip. */
    std::uint64_t
    drawGap()
    {
        if (prob <= 0.0)
            return std::numeric_limits<std::uint64_t>::max();
        if (prob >= 1.0)
            return 0;
        const double u = rng.nextDouble();
        const double g = std::floor(std::log1p(-u) / std::log1p(-prob));
        if (g >= 9.2e18)
            return std::numeric_limits<std::uint64_t>::max();
        return static_cast<std::uint64_t>(g);
    }

    Xoshiro256 rng;
    double prob = 0.0;
    std::uint64_t gap = std::numeric_limits<std::uint64_t>::max();
};

/**
 * One accuracy level of an approximate storage device: a nominal supply
 * voltage (volts, informational) and the per-bit read-upset probability
 * it implies.
 */
struct StorageLevel
{
    double voltage;
    double readUpsetProbability;
};

/**
 * Drowsy-SRAM-style level schedule: levels ordered from least to most
 * accurate, the last being precise (probability 0), as required for an
 * iterative anytime stage whose final computation f_n is exact.
 */
class StorageSchedule
{
  public:
    explicit StorageSchedule(std::vector<StorageLevel> levels_in)
        : levelList(std::move(levels_in))
    {
        fatalIf(levelList.empty(), "StorageSchedule: empty");
        for (std::size_t i = 1; i < levelList.size(); ++i) {
            fatalIf(levelList[i].readUpsetProbability >
                        levelList[i - 1].readUpsetProbability,
                    "StorageSchedule: upset probability must not increase");
        }
        fatalIf(levelList.back().readUpsetProbability != 0.0,
                "StorageSchedule: final level must be precise");
    }

    /** The paper's Figure 20 sweep: {1e-5, 1e-7, 0} per-bit upsets. */
    static StorageSchedule
    drowsySram()
    {
        return StorageSchedule({
            {0.23, 1e-5}, // deep drowsy: ~90% supply power savings [19]
            {0.27, 1e-7},
            {1.00, 0.0},  // nominal voltage, precise
        });
    }

    std::size_t levels() const { return levelList.size(); }

    const StorageLevel &
    level(std::size_t i) const
    {
        panicIf(i >= levelList.size(), "storage level out of range");
        return levelList[i];
    }

  private:
    std::vector<StorageLevel> levelList;
};

/**
 * Simulated approximate storage array of trivially-copyable words.
 *
 * Reads inject upsets per the current level's probability and write the
 * corrupted word back (data-destructive, like a real cell losing
 * charge). Raising the level does NOT heal existing corruption; only
 * flush() restores precise contents, which is exactly why the paper's
 * iterative construction flushes between intermediate computations.
 */
template <typename T>
class ApproxStorage
{
    static_assert(std::is_trivially_copyable_v<T>,
                  "ApproxStorage requires trivially copyable words");

  public:
    /**
     * @param size  Number of words.
     * @param seed  Deterministic fault-stream seed.
     * @param probability Initial per-bit read-upset probability.
     */
    ApproxStorage(std::size_t size, std::uint64_t seed,
                  double probability = 0.0)
        : words(size), injector(probability, seed)
    {
    }

    std::size_t size() const { return words.size(); }

    /** Set the per-bit read-upset probability (the "voltage knob"). */
    void
    setUpsetProbability(double probability)
    {
        injector.setProbability(probability);
    }

    /** Reinitialize all words to precise values from @p precise. */
    void
    flush(const std::vector<T> &precise)
    {
        fatalIf(precise.size() != words.size(),
                "ApproxStorage flush size mismatch");
        words = precise;
        upsets = 0;
    }

    /** Store one word (writes are precise in this model). */
    void
    write(std::size_t index, const T &value)
    {
        panicIf(index >= words.size(), "ApproxStorage write OOB");
        words[index] = value;
    }

    /**
     * Read one word, possibly corrupting it. Any injected upset is
     * written back into the array (destructive).
     */
    T
    read(std::size_t index)
    {
        panicIf(index >= words.size(), "ApproxStorage read OOB");
        constexpr std::uint64_t bits = sizeof(T) * 8;
        injector.consume(bits, [&](std::uint64_t bit) {
            auto *bytes = reinterpret_cast<unsigned char *>(&words[index]);
            bytes[bit / 8] ^= static_cast<unsigned char>(1u << (bit % 8));
            ++upsets;
        });
        return words[index];
    }

    /** Read without fault injection (for verification in tests). */
    const T &
    peek(std::size_t index) const
    {
        panicIf(index >= words.size(), "ApproxStorage peek OOB");
        return words[index];
    }

    /** Total upsets injected since the last flush. */
    std::uint64_t upsetCount() const { return upsets; }

  private:
    std::vector<T> words;
    FaultInjector injector;
    std::uint64_t upsets = 0;
};

} // namespace anytime

#endif // ANYTIME_APPROX_STORAGE_HPP
