#include "apps/conv2d.hpp"

#include <cmath>

#include "approx/fixed_point.hpp"
#include "core/parallel_stage.hpp"
#include "image/progressive.hpp"
#include "sampling/replay.hpp"
#include "sampling/tree_permutation.hpp"
#include "support/error.hpp"

namespace anytime {

Kernel::Kernel(unsigned radius, std::vector<float> taps_in)
    : r(radius), taps(std::move(taps_in))
{
    const unsigned side = 2 * radius + 1;
    fatalIf(taps.size() != static_cast<std::size_t>(side) * side,
            "Kernel: expected ", side * side, " taps, got ", taps.size());
}

Kernel
Kernel::boxBlur(unsigned radius)
{
    const unsigned side = 2 * radius + 1;
    const float weight = 1.0f / static_cast<float>(side * side);
    return Kernel(radius, std::vector<float>(
                              static_cast<std::size_t>(side) * side,
                              weight));
}

Kernel
Kernel::gaussianBlur(unsigned radius)
{
    const unsigned side = 2 * radius + 1;
    const double sigma = std::max(0.5, radius / 2.0);
    std::vector<float> taps(static_cast<std::size_t>(side) * side);
    double sum = 0.0;
    for (int dy = -static_cast<int>(radius);
         dy <= static_cast<int>(radius); ++dy) {
        for (int dx = -static_cast<int>(radius);
             dx <= static_cast<int>(radius); ++dx) {
            const double v =
                std::exp(-(dx * dx + dy * dy) / (2.0 * sigma * sigma));
            taps[static_cast<std::size_t>(dy + static_cast<int>(radius)) *
                     side +
                 static_cast<std::size_t>(dx + static_cast<int>(radius))] =
                static_cast<float>(v);
            sum += v;
        }
    }
    for (auto &tap : taps)
        tap = static_cast<float>(tap / sum);
    return Kernel(radius, std::move(taps));
}

Kernel
Kernel::sharpen3x3()
{
    return Kernel(1, {0.f, -1.f, 0.f, -1.f, 5.f, -1.f, 0.f, -1.f, 0.f});
}

namespace {

std::uint8_t
clampToByte(float v)
{
    return static_cast<std::uint8_t>(
        v <= 0.f ? 0 : (v >= 255.f ? 255 : v + 0.5f));
}

} // namespace

std::uint8_t
convolvePixel(const GrayImage &src, const Kernel &kernel, std::size_t x,
              std::size_t y)
{
    const int r = static_cast<int>(kernel.radius());
    float acc = 0.f;
    for (int dy = -r; dy <= r; ++dy) {
        for (int dx = -r; dx <= r; ++dx) {
            acc += kernel.tap(dx, dy) *
                   static_cast<float>(src.clampedAt(
                       static_cast<std::ptrdiff_t>(x) + dx,
                       static_cast<std::ptrdiff_t>(y) + dy));
        }
    }
    return clampToByte(acc);
}

std::uint8_t
convolvePixelQuantized(const GrayImage &src, const Kernel &kernel,
                       std::size_t x, std::size_t y,
                       unsigned precision_bits)
{
    const int r = static_cast<int>(kernel.radius());
    float acc = 0.f;
    for (int dy = -r; dy <= r; ++dy) {
        for (int dx = -r; dx <= r; ++dx) {
            const std::uint8_t pixel = src.clampedAt(
                static_cast<std::ptrdiff_t>(x) + dx,
                static_cast<std::ptrdiff_t>(y) + dy);
            acc += kernel.tap(dx, dy) *
                   static_cast<float>(quantizePixel(pixel,
                                                    precision_bits));
        }
    }
    return clampToByte(acc);
}

GrayImage
convolve(const GrayImage &src, const Kernel &kernel)
{
    GrayImage out(src.width(), src.height());
    for (std::size_t y = 0; y < src.height(); ++y) {
        for (std::size_t x = 0; x < src.width(); ++x)
            out.at(x, y) = convolvePixel(src, kernel, x, y);
    }
    return out;
}

Conv2dAutomaton
makeConv2dAutomaton(GrayImage src, Kernel kernel,
                    const Conv2dConfig &config)
{
    fatalIf(src.empty(), "conv2d: empty input");
    auto automaton = std::make_unique<Automaton>();
    auto output = automaton->makeBuffer<GrayImage>("conv2d.out");

    const std::uint64_t pixels = src.size();
    // Each diffusive step handles a small run of samples so the
    // per-step dispatch overhead amortizes over real convolution work.
    constexpr std::uint64_t chunk = 16;
    const std::uint64_t steps = (pixels + chunk - 1) / chunk;
    const std::uint64_t period = std::max<std::uint64_t>(
        1, steps / std::max<std::uint64_t>(1, config.publishCount));

    // Shared, immutable inputs for the stage closure (Property 1: the
    // stage reads only these and writes only its output buffer).
    auto input = std::make_shared<const GrayImage>(std::move(src));
    auto plan = std::make_shared<const TreeSweepPlan>(
        TreePermutation::twoDim(input->height(), input->width()));
    auto blur = std::make_shared<const Kernel>(std::move(kernel));
    const unsigned precision = config.precisionBits;

    // Partitioned sweep (Section IV-C1): the tree permutation demands
    // cyclic distribution. Each worker logs its (sample, value) pairs;
    // the window leader replays all logs in global sample order, so the
    // resolution-ordered block fills land exactly as in a single-worker
    // sweep — every published version is bit-identical.
    using Partial = OrdinalLog<std::uint8_t>;
    SweepLayout layout;
    layout.steps = steps;
    layout.window = period;
    layout.kind = PartitionKind::cyclic;
    layout.checkpointStride = 16;
    auto stage = std::make_shared<PartitionedDiffusiveStage<GrayImage, Partial>>(
        "conv2d", output, GrayImage(input->width(), input->height()),
        layout, [] { return Partial{}; },
        [](Partial &partial) { partial.clear(); },
        [input, plan, blur, precision, pixels](std::uint64_t step,
                                               Partial &partial,
                                               StageContext &) {
            const std::uint64_t end =
                std::min(pixels, (step + 1) * chunk);
            for (std::uint64_t s = step * chunk; s < end; ++s) {
                const std::size_t x = plan->x(s), y = plan->y(s);
                const std::uint8_t value =
                    (precision >= 8)
                        ? convolvePixel(*input, *blur, x, y)
                        : convolvePixelQuantized(*input, *blur, x, y,
                                                 precision);
                partial.push_back({s, value});
            }
        },
        [plan](GrayImage &state, std::vector<Partial> &partials,
               std::uint64_t, std::uint64_t) {
            std::vector<const Partial *> logs;
            logs.reserve(partials.size());
            for (const Partial &partial : partials)
                logs.push_back(&partial);
            replayOrdinalLogs<std::uint8_t>(
                logs, [&](std::uint64_t s, std::uint8_t value) {
                    plan->fill(state, s, value);
                });
        });

    automaton->addStage(std::move(stage), config.workers);
    return Conv2dAutomaton{std::move(automaton), std::move(output)};
}

} // namespace anytime
