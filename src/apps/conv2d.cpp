#include "apps/conv2d.hpp"

#include <algorithm>
#include <cmath>

#include "approx/fixed_point.hpp"
#include "core/parallel_stage.hpp"
#include "image/progressive.hpp"
#include "sampling/replay.hpp"
#include "sampling/tree_permutation.hpp"
#include "simd/simd.hpp"
#include "support/error.hpp"

namespace anytime {

Kernel::Kernel(unsigned radius, std::vector<float> taps_in)
    : r(radius), taps(std::move(taps_in))
{
    const unsigned side = 2 * radius + 1;
    fatalIf(taps.size() != static_cast<std::size_t>(side) * side,
            "Kernel: expected ", side * side, " taps, got ", taps.size());
    lanes = (side + 7u) & ~std::size_t{7};
    padded.assign(static_cast<std::size_t>(side) * lanes, 0.0f);
    for (unsigned row = 0; row < side; ++row) {
        for (unsigned col = 0; col < side; ++col)
            padded[row * lanes + col] =
                taps[static_cast<std::size_t>(row) * side + col];
    }
}

Kernel
Kernel::boxBlur(unsigned radius)
{
    const unsigned side = 2 * radius + 1;
    const float weight = 1.0f / static_cast<float>(side * side);
    return Kernel(radius, std::vector<float>(
                              static_cast<std::size_t>(side) * side,
                              weight));
}

Kernel
Kernel::gaussianBlur(unsigned radius)
{
    const unsigned side = 2 * radius + 1;
    const double sigma = std::max(0.5, radius / 2.0);
    std::vector<float> taps(static_cast<std::size_t>(side) * side);
    double sum = 0.0;
    for (int dy = -static_cast<int>(radius);
         dy <= static_cast<int>(radius); ++dy) {
        for (int dx = -static_cast<int>(radius);
             dx <= static_cast<int>(radius); ++dx) {
            const double v =
                std::exp(-(dx * dx + dy * dy) / (2.0 * sigma * sigma));
            taps[static_cast<std::size_t>(dy + static_cast<int>(radius)) *
                     side +
                 static_cast<std::size_t>(dx + static_cast<int>(radius))] =
                static_cast<float>(v);
            sum += v;
        }
    }
    for (auto &tap : taps)
        tap = static_cast<float>(tap / sum);
    return Kernel(radius, std::move(taps));
}

Kernel
Kernel::sharpen3x3()
{
    return Kernel(1, {0.f, -1.f, 0.f, -1.f, 5.f, -1.f, 0.f, -1.f, 0.f});
}

namespace {

std::uint8_t
clampToByte(float v)
{
    return static_cast<std::uint8_t>(
        v <= 0.f ? 0 : (v >= 255.f ? 255 : v + 0.5f));
}

/** Q16.16 rounding of the integer bit-plane accumulator to a byte. */
std::uint8_t
clampAccToByte(std::int64_t acc)
{
    if (acc <= 0)
        return 0;
    const std::int64_t v = (acc + 32768) >> 16;
    return v >= 255 ? 255 : static_cast<std::uint8_t>(v);
}

} // namespace

std::uint8_t
convolvePixel(const GrayImage &src, const Kernel &kernel, std::size_t x,
              std::size_t y)
{
    const std::size_t r = kernel.radius();
    const std::size_t side = 2 * r + 1;
    const std::size_t lanes = kernel.paddedLanes();
    const std::size_t w = src.width();
    const std::size_t h = src.height();
    const auto &ops = simd::ops();

    // Interior fast path: every row segment [x-r, x-r+lanes) is in
    // bounds, so the kernel reads the image rows directly. The padded
    // lanes read real (ignored) bytes against 0.0f taps — exactly what
    // the gather path feeds them, so both paths are bit-identical.
    if (x >= r && y >= r && y + r < h && x - r + lanes <= w) {
        const std::uint8_t *base =
            src.data().data() + (y - r) * w + (x - r);
        return clampToByte(
            ops.convDotU8(base, w, side, lanes, kernel.paddedTaps()));
    }

    // Border path: gather the clamped neighborhood into the padded
    // layout and run the same 8-lane FMA specification over it.
    thread_local std::vector<float> scratch;
    scratch.assign(side * lanes, 0.0f);
    for (std::size_t row = 0; row < side; ++row) {
        const std::ptrdiff_t sy = static_cast<std::ptrdiff_t>(y) +
                                  static_cast<std::ptrdiff_t>(row) -
                                  static_cast<std::ptrdiff_t>(r);
        for (std::size_t col = 0; col < side; ++col) {
            const std::ptrdiff_t sx = static_cast<std::ptrdiff_t>(x) +
                                      static_cast<std::ptrdiff_t>(col) -
                                      static_cast<std::ptrdiff_t>(r);
            scratch[row * lanes + col] =
                static_cast<float>(src.clampedAt(sx, sy));
        }
    }
    return clampToByte(ops.dotPadded8(kernel.paddedTaps(), scratch.data(),
                                      side * lanes));
}

QuantizedKernel::QuantizedKernel(const Kernel &kernel)
    : r(kernel.radius())
{
    const std::size_t side = 2 * static_cast<std::size_t>(r) + 1;
    count = (side * side + 7u) & ~std::size_t{7};
    qtaps.assign(count, 0);
    std::size_t idx = 0;
    for (int dy = -static_cast<int>(r); dy <= static_cast<int>(r); ++dy) {
        for (int dx = -static_cast<int>(r); dx <= static_cast<int>(r);
             ++dx, ++idx) {
            const double scaled =
                std::round(static_cast<double>(kernel.tap(dx, dy)) *
                           65536.0);
            const double clamped =
                std::min(std::max(scaled, -16777216.0), 16777216.0);
            const std::int32_t q = static_cast<std::int32_t>(clamped);
            qtaps[idx] = q;
            if (q > 0)
                sumPos += q;
            else
                sumNeg += q;
        }
    }
}

std::uint8_t
QuantizedKernel::convolvePixel(const GrayImage &src, std::size_t x,
                               std::size_t y, unsigned precisionBits,
                               ElisionStats *stats) const
{
    const unsigned bits =
        precisionBits < 1 ? 1 : (precisionBits > 8 ? 8 : precisionBits);
    const unsigned lo = 8 - bits;

    // Gather the clamped neighborhood as plane selectors; the running
    // OR is the per-pixel digit-elision mask.
    thread_local std::vector<std::uint32_t> selectors;
    selectors.assign(count, 0);
    std::uint32_t seen = 0;
    const std::size_t side = 2 * static_cast<std::size_t>(r) + 1;
    const std::size_t w = src.width();
    if (x >= r && y >= r && x + r < w && y + r < src.height()) {
        // Interior: straight row reads, no border clamping.
        const std::uint8_t *base =
            src.data().data() + (y - r) * w + (x - r);
        std::size_t idx = 0;
        for (std::size_t row = 0; row < side; ++row) {
            const std::uint8_t *line = base + row * w;
            for (std::size_t col = 0; col < side; ++col, ++idx) {
                const std::uint8_t pixel = line[col];
                selectors[idx] = pixel;
                seen |= pixel;
            }
        }
    } else {
        std::size_t idx = 0;
        for (int dy = -static_cast<int>(r); dy <= static_cast<int>(r);
             ++dy) {
            for (int dx = -static_cast<int>(r); dx <= static_cast<int>(r);
                 ++dx, ++idx) {
                const std::uint8_t pixel = src.clampedAt(
                    static_cast<std::ptrdiff_t>(x) + dx,
                    static_cast<std::ptrdiff_t>(y) + dy);
                selectors[idx] = pixel;
                seen |= pixel;
            }
        }
    }

    const auto &ops = simd::ops();
    std::int64_t acc = 0;
    for (unsigned plane = 8; plane-- > lo;) {
        if (stats != nullptr)
            ++stats->planesConsidered;
        // Elision 1: a plane set in no neighborhood pixel sums to zero.
        if (((seen >> plane) & 1u) == 0)
            continue;
        if (stats != nullptr)
            ++stats->planesRun;
        const std::int64_t plane_sum = ops.maskedSumI32(
            qtaps.data(), selectors.data(), count, plane);
        acc += plane_sum << plane;
        // Elision 2: stop once the remaining planes' contribution range
        // cannot move the rounded output byte.
        if (plane > lo) {
            const std::int64_t span = (std::int64_t{1} << plane) -
                                      (std::int64_t{1} << lo);
            if (clampAccToByte(acc + span * sumNeg) ==
                clampAccToByte(acc + span * sumPos)) {
                if (stats != nullptr)
                    ++stats->pixelsEarlyExit;
                break;
            }
        }
    }
    return clampAccToByte(acc);
}

std::uint8_t
convolvePixelQuantized(const GrayImage &src, const Kernel &kernel,
                       std::size_t x, std::size_t y,
                       unsigned precision_bits)
{
    if (precision_bits >= 8)
        return convolvePixel(src, kernel, x, y);
    const QuantizedKernel quantized(kernel);
    return quantized.convolvePixel(src, x, y, precision_bits);
}

GrayImage
convolve(const GrayImage &src, const Kernel &kernel)
{
    GrayImage out(src.width(), src.height());
    for (std::size_t y = 0; y < src.height(); ++y) {
        for (std::size_t x = 0; x < src.width(); ++x)
            out.at(x, y) = convolvePixel(src, kernel, x, y);
    }
    return out;
}

GrayImage
convolveReference(const GrayImage &src, const Kernel &kernel)
{
    const int r = static_cast<int>(kernel.radius());
    GrayImage out(src.width(), src.height());
    for (std::size_t y = 0; y < src.height(); ++y) {
        for (std::size_t x = 0; x < src.width(); ++x) {
            float acc = 0.f;
            for (int dy = -r; dy <= r; ++dy) {
                for (int dx = -r; dx <= r; ++dx) {
                    acc += kernel.tap(dx, dy) *
                           static_cast<float>(src.clampedAt(
                               static_cast<std::ptrdiff_t>(x) + dx,
                               static_cast<std::ptrdiff_t>(y) + dy));
                }
            }
            out.at(x, y) = clampToByte(acc);
        }
    }
    return out;
}

Conv2dAutomaton
makeConv2dAutomaton(GrayImage src, Kernel kernel,
                    const Conv2dConfig &config)
{
    fatalIf(src.empty(), "conv2d: empty input");
    auto automaton = std::make_unique<Automaton>();
    auto output = automaton->makeBuffer<GrayImage>("conv2d.out");

    const std::uint64_t pixels = src.size();
    // Each diffusive step handles a small run of samples so the
    // per-step dispatch overhead amortizes over real convolution work.
    constexpr std::uint64_t chunk = 16;
    const std::uint64_t steps = (pixels + chunk - 1) / chunk;
    const std::uint64_t period = std::max<std::uint64_t>(
        1, steps / std::max<std::uint64_t>(1, config.publishCount));

    // Shared, immutable inputs for the stage closure (Property 1: the
    // stage reads only these and writes only its output buffer).
    auto input = std::make_shared<const GrayImage>(std::move(src));
    auto plan = std::make_shared<const TreeSweepPlan>(
        TreePermutation::twoDim(input->height(), input->width()));
    auto blur = std::make_shared<const Kernel>(std::move(kernel));
    const unsigned precision = config.precisionBits;
    // Reduced precision runs the integer MSB-first digit-elision path;
    // build its Q16 kernel once, outside the per-step closure.
    auto quantized = precision < 8
                         ? std::make_shared<const QuantizedKernel>(*blur)
                         : std::shared_ptr<const QuantizedKernel>{};

    // Partitioned sweep (Section IV-C1): the tree permutation demands
    // cyclic distribution. Each worker logs its (sample, value) pairs;
    // the window leader replays all logs in global sample order, so the
    // resolution-ordered block fills land exactly as in a single-worker
    // sweep — every published version is bit-identical.
    using Partial = OrdinalLog<std::uint8_t>;
    SweepLayout layout;
    layout.steps = steps;
    layout.window = period;
    layout.kind = PartitionKind::cyclic;
    layout.checkpointStride = 16;
    auto stage = std::make_shared<PartitionedDiffusiveStage<GrayImage, Partial>>(
        "conv2d", output, GrayImage(input->width(), input->height()),
        layout, [] { return Partial{}; },
        [](Partial &partial) { partial.clear(); },
        [input, plan, blur, quantized, precision,
         pixels](std::uint64_t step, Partial &partial, StageContext &) {
            const std::uint64_t end =
                std::min(pixels, (step + 1) * chunk);
            for (std::uint64_t s = step * chunk; s < end; ++s) {
                const std::size_t x = plan->x(s), y = plan->y(s);
                const std::uint8_t value =
                    (precision >= 8)
                        ? convolvePixel(*input, *blur, x, y)
                        : quantized->convolvePixel(*input, x, y,
                                                   precision);
                partial.push_back({s, value});
            }
        },
        [plan](GrayImage &state, std::vector<Partial> &partials,
               std::uint64_t, std::uint64_t) {
            std::vector<const Partial *> logs;
            logs.reserve(partials.size());
            for (const Partial &partial : partials)
                logs.push_back(&partial);
            replayOrdinalLogs<std::uint8_t>(
                logs, [&](std::uint64_t s, std::uint8_t value) {
                    plan->fill(state, s, value);
                });
        });

    automaton->addStage(std::move(stage), config.workers);
    return Conv2dAutomaton{std::move(automaton), std::move(output)};
}

} // namespace anytime
