/**
 * @file
 * 2-D convolution (PERFECT "2dconv", paper Section IV-A2).
 *
 * Applies a convolutional kernel to spatially filter an image — in the
 * paper's evaluation, a blur filter. Each output pixel is a dot product
 * of the kernel with the neighborhood around the input pixel (clamped at
 * borders). The application is a single map computation, so its anytime
 * automaton is one diffusive stage using output sampling with a 2-D tree
 * permutation: output pixels are produced at progressively increasing
 * resolution, each sample filling its unrefined block so a complete
 * (low-resolution) approximation of the whole output exists from the
 * very first samples.
 */

#ifndef ANYTIME_APPS_CONV2D_HPP
#define ANYTIME_APPS_CONV2D_HPP

#include <cstdint>
#include <memory>
#include <vector>

#include "core/automaton.hpp"
#include "image/image.hpp"

namespace anytime {

/** Small dense convolution kernel with float taps. */
class Kernel
{
  public:
    /** @param radius Kernel radius r; the kernel is (2r+1) x (2r+1). */
    Kernel(unsigned radius, std::vector<float> taps);

    /** Normalized box blur of the given radius. */
    static Kernel boxBlur(unsigned radius);

    /** Gaussian blur of the given radius (sigma = radius / 2). */
    static Kernel gaussianBlur(unsigned radius);

    /** 3x3 edge-sharpening kernel. */
    static Kernel sharpen3x3();

    unsigned radius() const { return r; }

    /** Tap at kernel offset (dx, dy), each in [-r, r]. */
    float
    tap(int dx, int dy) const
    {
        const unsigned side = 2 * r + 1;
        return taps[static_cast<unsigned>(dy + static_cast<int>(r)) * side +
                    static_cast<unsigned>(dx + static_cast<int>(r))];
    }

  private:
    unsigned r;
    std::vector<float> taps;
};

/** One output pixel of the convolution (clamped borders). */
std::uint8_t convolvePixel(const GrayImage &src, const Kernel &kernel,
                           std::size_t x, std::size_t y);

/**
 * One output pixel with the input quantized to @p precision_bits bits
 * (the paper's reduced fixed-point precision variant, Figure 19).
 */
std::uint8_t convolvePixelQuantized(const GrayImage &src,
                                    const Kernel &kernel, std::size_t x,
                                    std::size_t y, unsigned precision_bits);

/** Precise baseline: full-image convolution. */
GrayImage convolve(const GrayImage &src, const Kernel &kernel);

/** Anytime conv2d automaton configuration. */
struct Conv2dConfig
{
    /** Output versions published across the sweep (publish period is
     *  pixels / publishCount). */
    std::uint64_t publishCount = 64;
    /** Worker threads for the diffusive stage. */
    unsigned workers = 1;
    /** Input pixel precision in bits (8 = exact; <8 quantizes). Note:
     *  with <8 bits the automaton's final output is the quantized
     *  convolution, which is *its* precise output per the iterative
     *  composition of techniques. */
    unsigned precisionBits = 8;
};

/** Automaton bundle: the pipeline plus its application output buffer. */
struct Conv2dAutomaton
{
    std::unique_ptr<Automaton> automaton;
    std::shared_ptr<VersionedBuffer<GrayImage>> output;
};

/**
 * Build the single-diffusive-stage conv2d automaton: tree-permuted
 * output sampling with progressive block fill.
 *
 * @param src    Input image (copied into the automaton).
 * @param kernel Convolution kernel.
 * @param config Tuning knobs.
 */
Conv2dAutomaton makeConv2dAutomaton(GrayImage src, Kernel kernel,
                                    const Conv2dConfig &config = {});

} // namespace anytime

#endif // ANYTIME_APPS_CONV2D_HPP
