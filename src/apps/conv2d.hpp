/**
 * @file
 * 2-D convolution (PERFECT "2dconv", paper Section IV-A2).
 *
 * Applies a convolutional kernel to spatially filter an image — in the
 * paper's evaluation, a blur filter. Each output pixel is a dot product
 * of the kernel with the neighborhood around the input pixel (clamped at
 * borders). The application is a single map computation, so its anytime
 * automaton is one diffusive stage using output sampling with a 2-D tree
 * permutation: output pixels are produced at progressively increasing
 * resolution, each sample filling its unrefined block so a complete
 * (low-resolution) approximation of the whole output exists from the
 * very first samples.
 */

#ifndef ANYTIME_APPS_CONV2D_HPP
#define ANYTIME_APPS_CONV2D_HPP

#include <cstdint>
#include <memory>
#include <vector>

#include "core/automaton.hpp"
#include "image/image.hpp"

namespace anytime {

/** Small dense convolution kernel with float taps. */
class Kernel
{
  public:
    /** @param radius Kernel radius r; the kernel is (2r+1) x (2r+1). */
    Kernel(unsigned radius, std::vector<float> taps);

    /** Normalized box blur of the given radius. */
    static Kernel boxBlur(unsigned radius);

    /** Gaussian blur of the given radius (sigma = radius / 2). */
    static Kernel gaussianBlur(unsigned radius);

    /** 3x3 edge-sharpening kernel. */
    static Kernel sharpen3x3();

    unsigned radius() const { return r; }

    /** Tap at kernel offset (dx, dy), each in [-r, r]. */
    float
    tap(int dx, int dy) const
    {
        const unsigned side = 2 * r + 1;
        return taps[static_cast<unsigned>(dy + static_cast<int>(r)) * side +
                    static_cast<unsigned>(dx + static_cast<int>(r))];
    }

    /**
     * Taps in the SIMD layout: (2r+1) rows of paddedLanes() floats,
     * row-major, the extra lanes exactly 0.0f. A zero tap contributes
     * exactly +0.0f per the kernel specification, so padded lanes never
     * perturb the dot product regardless of what pixel bytes they read.
     */
    const float *paddedTaps() const { return padded.data(); }

    /** Kernel row length rounded up to a multiple of 8 lanes. */
    std::size_t paddedLanes() const { return lanes; }

  private:
    unsigned r;
    std::vector<float> taps;
    std::vector<float> padded;
    std::size_t lanes = 0;
};

/**
 * Q16.16 integer form of a Kernel for the reduced-precision path
 * (paper Figure 19 / ARCHITECT-style MSB-first digit evaluation).
 *
 * The quantized convolution sum decomposes over input bit planes:
 * sum_i tap_i * qpix_i = sum_b 2^b * (sum of tap_i where pixel i has
 * bit b set). Evaluating planes MSB-first makes "reduced precision"
 * a real wall-clock win instead of a masked recompute:
 *  - planes below the precision floor are *structurally* elided
 *    (never visited);
 *  - a plane whose bit is set in no neighborhood pixel is skipped in
 *    O(1) via the OR-mask collected while gathering the neighborhood;
 *  - once the remaining planes' contribution bounds (from the kernel's
 *    positive/negative tap sums) cannot change the rounded output
 *    byte, the pixel exits early.
 * All arithmetic is exact int64, so the result is identical across
 * ISAs, worker counts, and elision decisions.
 */
class QuantizedKernel
{
  public:
    explicit QuantizedKernel(const Kernel &kernel);

    /** Digit-elision effectiveness counters (bench_fig19 reports them). */
    struct ElisionStats
    {
        /** Planes inside the precision window across all pixels. */
        std::uint64_t planesConsidered = 0;
        /** Planes actually evaluated (not elided, not cut short). */
        std::uint64_t planesRun = 0;
        /** Pixels finished by the output-pinned early exit. */
        std::uint64_t pixelsEarlyExit = 0;
    };

    /**
     * One output pixel of the convolution with the input quantized to
     * the top @p precisionBits bits (1..8), evaluated MSB-first with
     * digit elision.
     */
    std::uint8_t convolvePixel(const GrayImage &src, std::size_t x,
                               std::size_t y, unsigned precisionBits,
                               ElisionStats *stats = nullptr) const;

    unsigned radius() const { return r; }

  private:
    unsigned r;
    /** Padded tap count (multiple of 8; padding taps are 0). */
    std::size_t count = 0;
    std::vector<std::int32_t> qtaps;
    /** Tail bounds: sums of positive / negative taps. */
    std::int64_t sumPos = 0;
    std::int64_t sumNeg = 0;
};

/** One output pixel of the convolution (clamped borders). */
std::uint8_t convolvePixel(const GrayImage &src, const Kernel &kernel,
                           std::size_t x, std::size_t y);

/**
 * One output pixel with the input quantized to @p precision_bits bits
 * (the paper's reduced fixed-point precision variant, Figure 19).
 */
std::uint8_t convolvePixelQuantized(const GrayImage &src,
                                    const Kernel &kernel, std::size_t x,
                                    std::size_t y, unsigned precision_bits);

/** Precise baseline: full-image convolution. */
GrayImage convolve(const GrayImage &src, const Kernel &kernel);

/**
 * Naive sequential-accumulation convolution, kept verbatim as the
 * benchmark timing baseline (bench_fig11 normalizes t90 against this).
 * Not bit-compatible with convolve(): the anytime kernels accumulate
 * in the 8-lane FMA order specified by src/simd/, this one in plain
 * left-to-right order.
 */
GrayImage convolveReference(const GrayImage &src, const Kernel &kernel);

/** Anytime conv2d automaton configuration. */
struct Conv2dConfig
{
    /** Output versions published across the sweep (publish period is
     *  pixels / publishCount). */
    std::uint64_t publishCount = 64;
    /** Worker threads for the diffusive stage. */
    unsigned workers = 1;
    /** Input pixel precision in bits (8 = exact; <8 quantizes). Note:
     *  with <8 bits the automaton's final output is the quantized
     *  convolution, which is *its* precise output per the iterative
     *  composition of techniques. */
    unsigned precisionBits = 8;
};

/** Automaton bundle: the pipeline plus its application output buffer. */
struct Conv2dAutomaton
{
    std::unique_ptr<Automaton> automaton;
    std::shared_ptr<VersionedBuffer<GrayImage>> output;
};

/**
 * Build the single-diffusive-stage conv2d automaton: tree-permuted
 * output sampling with progressive block fill.
 *
 * @param src    Input image (copied into the automaton).
 * @param kernel Convolution kernel.
 * @param config Tuning knobs.
 */
Conv2dAutomaton makeConv2dAutomaton(GrayImage src, Kernel kernel,
                                    const Conv2dConfig &config = {});

} // namespace anytime

#endif // ANYTIME_APPS_CONV2D_HPP
