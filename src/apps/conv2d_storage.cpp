#include "apps/conv2d_storage.hpp"

#include "core/source_stage.hpp"
#include "support/error.hpp"

namespace anytime {

namespace {

std::size_t
clampIndex(std::ptrdiff_t k, std::size_t n)
{
    if (k < 0)
        return 0;
    if (k >= static_cast<std::ptrdiff_t>(n))
        return n - 1;
    return static_cast<std::size_t>(k);
}

} // namespace

GrayImage
convolveFromStorage(ApproxStorage<std::uint8_t> &storage,
                    std::size_t width, std::size_t height,
                    const Kernel &kernel)
{
    fatalIf(storage.size() != width * height,
            "convolveFromStorage: storage size mismatch");
    const int r = static_cast<int>(kernel.radius());
    GrayImage out(width, height);
    for (std::size_t y = 0; y < height; ++y) {
        for (std::size_t x = 0; x < width; ++x) {
            float acc = 0.f;
            for (int dy = -r; dy <= r; ++dy) {
                for (int dx = -r; dx <= r; ++dx) {
                    const std::size_t sx = clampIndex(
                        static_cast<std::ptrdiff_t>(x) + dx, width);
                    const std::size_t sy = clampIndex(
                        static_cast<std::ptrdiff_t>(y) + dy, height);
                    acc += kernel.tap(dx, dy) *
                           static_cast<float>(
                               storage.read(sy * width + sx));
                }
            }
            out.at(x, y) = static_cast<std::uint8_t>(
                acc <= 0.f ? 0 : (acc >= 255.f ? 255 : acc + 0.5f));
        }
    }
    return out;
}

Conv2dStorageAutomaton
makeConv2dStorageAutomaton(GrayImage src, Kernel kernel,
                           const Conv2dStorageConfig &config)
{
    fatalIf(src.empty(), "conv2d_storage: empty input");
    auto automaton = std::make_unique<Automaton>();
    auto output = automaton->makeBuffer<GrayImage>("conv2d_storage.out");

    const std::size_t width = src.width();
    const std::size_t height = src.height();
    auto precise_input =
        std::make_shared<const GrayImage>(std::move(src));
    auto blur = std::make_shared<const Kernel>(std::move(kernel));
    auto schedule =
        std::make_shared<const StorageSchedule>(config.schedule);
    // The storage device persists across levels (it models one physical
    // array); Property 1 still holds at the automaton level because the
    // flush at the top of each level erases all cross-level state.
    auto storage = std::make_shared<ApproxStorage<std::uint8_t>>(
        width * height, config.faultSeed);

    auto stage = std::make_shared<IterativeSourceStage<GrayImage>>(
        "conv2d_storage", output, schedule->levels(),
        [precise_input, blur, schedule, storage, width,
         height](std::size_t level, GrayImage &out, StageContext &ctx) {
            const StorageLevel &voltage = schedule->level(level);
            // Flush: reinitialize to precise contents so corruption
            // from the previous (lower-voltage) level does not degrade
            // this one (data-destructive semantics, paper §III-B1).
            storage->flush(precise_input->data());
            storage->setUpsetProbability(voltage.readUpsetProbability);
            out = convolveFromStorage(*storage, width, height, *blur);
            ctx.addWork(width * height);
        });

    automaton->addStage(std::move(stage));
    return Conv2dStorageAutomaton{std::move(automaton),
                                  std::move(output)};
}

} // namespace anytime
