#include "apps/conv2d_storage.hpp"

#include "core/source_stage.hpp"
#include "simd/simd.hpp"
#include "support/error.hpp"

#include <vector>

namespace anytime {

namespace {

std::size_t
clampIndex(std::ptrdiff_t k, std::size_t n)
{
    if (k < 0)
        return 0;
    if (k >= static_cast<std::ptrdiff_t>(n))
        return n - 1;
    return static_cast<std::size_t>(k);
}

std::uint8_t
clampToByte(float v)
{
    return static_cast<std::uint8_t>(
        v <= 0.f ? 0 : (v >= 255.f ? 255 : v + 0.5f));
}

} // namespace

GrayImage
convolveFromStorage(ApproxStorage<std::uint8_t> &storage,
                    std::size_t width, std::size_t height,
                    const Kernel &kernel)
{
    fatalIf(storage.size() != width * height,
            "convolveFromStorage: storage size mismatch");
    const std::size_t r = kernel.radius();
    const std::size_t side = 2 * r + 1;
    const std::size_t lanes = kernel.paddedLanes();
    const auto &ops = simd::ops();
    GrayImage out(width, height);
    // Gather each clamped neighborhood into the padded SIMD layout and
    // reduce through the ops table. The storage read sequence is the
    // same as a scalar taps loop (side^2 reads per pixel, row-major),
    // so the deterministic fault stream lands on the same words; the
    // reduction follows the same 8-lane FMA specification as
    // convolvePixel, so precise storage reproduces the plain
    // convolution bit for bit. Padded lanes keep 0.0f values against
    // 0.0f taps and never touch the storage device.
    std::vector<float> scratch(side * lanes, 0.0f);
    for (std::size_t y = 0; y < height; ++y) {
        for (std::size_t x = 0; x < width; ++x) {
            for (std::size_t row = 0; row < side; ++row) {
                const std::size_t sy = clampIndex(
                    static_cast<std::ptrdiff_t>(y + row) -
                        static_cast<std::ptrdiff_t>(r),
                    height);
                for (std::size_t col = 0; col < side; ++col) {
                    const std::size_t sx = clampIndex(
                        static_cast<std::ptrdiff_t>(x + col) -
                            static_cast<std::ptrdiff_t>(r),
                        width);
                    scratch[row * lanes + col] = static_cast<float>(
                        storage.read(sy * width + sx));
                }
            }
            out.at(x, y) = clampToByte(ops.dotPadded8(
                kernel.paddedTaps(), scratch.data(), side * lanes));
        }
    }
    return out;
}

Conv2dStorageAutomaton
makeConv2dStorageAutomaton(GrayImage src, Kernel kernel,
                           const Conv2dStorageConfig &config)
{
    fatalIf(src.empty(), "conv2d_storage: empty input");
    auto automaton = std::make_unique<Automaton>();
    auto output = automaton->makeBuffer<GrayImage>("conv2d_storage.out");

    const std::size_t width = src.width();
    const std::size_t height = src.height();
    auto precise_input =
        std::make_shared<const GrayImage>(std::move(src));
    auto blur = std::make_shared<const Kernel>(std::move(kernel));
    auto schedule =
        std::make_shared<const StorageSchedule>(config.schedule);
    // The storage device persists across levels (it models one physical
    // array); Property 1 still holds at the automaton level because the
    // flush at the top of each level erases all cross-level state.
    auto storage = std::make_shared<ApproxStorage<std::uint8_t>>(
        width * height, config.faultSeed);

    auto stage = std::make_shared<IterativeSourceStage<GrayImage>>(
        "conv2d_storage", output, schedule->levels(),
        [precise_input, blur, schedule, storage, width,
         height](std::size_t level, GrayImage &out, StageContext &ctx) {
            const StorageLevel &voltage = schedule->level(level);
            // Flush: reinitialize to precise contents so corruption
            // from the previous (lower-voltage) level does not degrade
            // this one (data-destructive semantics, paper §III-B1).
            storage->flush(precise_input->data());
            storage->setUpsetProbability(voltage.readUpsetProbability);
            out = convolveFromStorage(*storage, width, height, *blur);
            ctx.addWork(width * height);
        });

    automaton->addStage(std::move(stage));
    return Conv2dStorageAutomaton{std::move(automaton),
                                  std::move(output)};
}

} // namespace anytime
