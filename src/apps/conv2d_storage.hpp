/**
 * @file
 * Iterative anytime conv2d via approximate storage (paper §III-B1
 * "Approximate Storage" and §IV-B2).
 *
 * The input image lives in a simulated drowsy-SRAM array whose supply
 * voltage — i.e., per-bit read-upset probability — rises across
 * iterative levels. Each level flushes the storage back to precise
 * contents (corruption is data-destructive, so without the flush a
 * later, higher-voltage level would inherit the earlier level's bit
 * errors), then recomputes the whole convolution reading through the
 * faulty storage. The final level runs at nominal voltage (zero upset
 * probability) and therefore produces the precise output.
 */

#ifndef ANYTIME_APPS_CONV2D_STORAGE_HPP
#define ANYTIME_APPS_CONV2D_STORAGE_HPP

#include <memory>

#include "approx/storage.hpp"
#include "apps/conv2d.hpp"

namespace anytime {

/** Configuration for the storage-backed iterative conv2d automaton. */
struct Conv2dStorageConfig
{
    /** Voltage/upset schedule, least to most accurate (last precise). */
    StorageSchedule schedule = StorageSchedule::drowsySram();
    /** Deterministic fault-stream seed. */
    std::uint64_t faultSeed = 0x5eed;
};

/** Automaton bundle for the storage-backed conv2d. */
struct Conv2dStorageAutomaton
{
    std::unique_ptr<Automaton> automaton;
    std::shared_ptr<VersionedBuffer<GrayImage>> output;
};

/**
 * Convolve the whole image reading the input through @p storage
 * (upsets are injected and written back per the device's current
 * probability). Exposed for tests and the Figure 20 sweep.
 */
GrayImage convolveFromStorage(ApproxStorage<std::uint8_t> &storage,
                              std::size_t width, std::size_t height,
                              const Kernel &kernel);

/**
 * Build the iterative storage-backed conv2d automaton: one level per
 * schedule entry, flush-then-convolve at each, precise at the last.
 */
Conv2dStorageAutomaton
makeConv2dStorageAutomaton(GrayImage src, Kernel kernel,
                           const Conv2dStorageConfig &config = {});

} // namespace anytime

#endif // ANYTIME_APPS_CONV2D_STORAGE_HPP
