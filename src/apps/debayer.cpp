#include "apps/debayer.hpp"

#include "core/source_stage.hpp"
#include "image/progressive.hpp"
#include "sampling/tree_permutation.hpp"
#include "support/error.hpp"

namespace anytime {

namespace {

/**
 * Whole-sample mirror reflection into [0, n). Unlike clamping, mirror
 * reflection preserves Bayer parity at the borders (offset -1 reflects
 * to +1, same color site), so uniform scenes demosaic exactly.
 */
std::size_t
mirrorIndex(std::ptrdiff_t k, std::size_t n)
{
    if (k < 0)
        k = -k;
    if (k >= static_cast<std::ptrdiff_t>(n))
        k = 2 * (static_cast<std::ptrdiff_t>(n) - 1) - k;
    return static_cast<std::size_t>(k);
}

/** Average of the mosaic samples at the given offsets (mirrored). */
std::uint8_t
averageAt(const GrayImage &mosaic, std::size_t x, std::size_t y,
          const int (*offsets)[2], unsigned count)
{
    unsigned sum = 0;
    for (unsigned i = 0; i < count; ++i) {
        const std::size_t sx = mirrorIndex(
            static_cast<std::ptrdiff_t>(x) + offsets[i][0],
            mosaic.width());
        const std::size_t sy = mirrorIndex(
            static_cast<std::ptrdiff_t>(y) + offsets[i][1],
            mosaic.height());
        sum += mosaic.at(sx, sy);
    }
    return static_cast<std::uint8_t>((sum + count / 2) / count);
}

constexpr int crossOffsets[4][2] = {{-1, 0}, {1, 0}, {0, -1}, {0, 1}};
constexpr int diagOffsets[4][2] = {{-1, -1}, {1, -1}, {-1, 1}, {1, 1}};
constexpr int horizOffsets[2][2] = {{-1, 0}, {1, 0}};
constexpr int vertOffsets[2][2] = {{0, -1}, {0, 1}};

} // namespace

RgbPixel
debayerPixel(const GrayImage &mosaic, std::size_t x, std::size_t y)
{
    // RGGB pattern: even rows R G R G ..., odd rows G B G B ...
    const bool even_row = (y % 2 == 0);
    const bool even_col = (x % 2 == 0);
    const std::uint8_t here = mosaic.at(x, y);

    RgbPixel out;
    if (even_row && even_col) {
        // Red site: green from the cross, blue from the diagonals.
        out.r = here;
        out.g = averageAt(mosaic, x, y, crossOffsets, 4);
        out.b = averageAt(mosaic, x, y, diagOffsets, 4);
    } else if (even_row && !even_col) {
        // Green site on a red row: red horizontal, blue vertical.
        out.r = averageAt(mosaic, x, y, horizOffsets, 2);
        out.g = here;
        out.b = averageAt(mosaic, x, y, vertOffsets, 2);
    } else if (!even_row && even_col) {
        // Green site on a blue row: red vertical, blue horizontal.
        out.r = averageAt(mosaic, x, y, vertOffsets, 2);
        out.g = here;
        out.b = averageAt(mosaic, x, y, horizOffsets, 2);
    } else {
        // Blue site: green from the cross, red from the diagonals.
        out.r = averageAt(mosaic, x, y, diagOffsets, 4);
        out.g = averageAt(mosaic, x, y, crossOffsets, 4);
        out.b = here;
    }
    return out;
}

RgbImage
debayer(const GrayImage &mosaic)
{
    RgbImage out(mosaic.width(), mosaic.height());
    for (std::size_t y = 0; y < mosaic.height(); ++y) {
        for (std::size_t x = 0; x < mosaic.width(); ++x)
            out.at(x, y) = debayerPixel(mosaic, x, y);
    }
    return out;
}

DebayerAutomaton
makeDebayerAutomaton(GrayImage mosaic, const DebayerConfig &config)
{
    fatalIf(mosaic.empty(), "debayer: empty input");
    auto automaton = std::make_unique<Automaton>();
    auto output = automaton->makeBuffer<RgbImage>("debayer.out");

    auto input = std::make_shared<const GrayImage>(std::move(mosaic));
    auto plan = std::make_shared<const TreeSweepPlan>(
        TreePermutation::twoDim(input->height(), input->width()));
    const std::uint64_t pixels = input->size();
    // Chunked steps amortize the per-step dispatch over real work.
    constexpr std::uint64_t chunk = 16;
    const std::uint64_t steps = (pixels + chunk - 1) / chunk;
    const std::uint64_t period = std::max<std::uint64_t>(
        1, steps / std::max<std::uint64_t>(1, config.publishCount));

    auto stage = std::make_shared<DiffusiveSourceStage<RgbImage>>(
        "debayer", output, RgbImage(input->width(), input->height()),
        steps,
        [input, plan, pixels](std::uint64_t step, RgbImage &out,
                              StageContext &) {
            const std::uint64_t end =
                std::min(pixels, (step + 1) * chunk);
            for (std::uint64_t s = step * chunk; s < end; ++s) {
                plan->fill(out, s,
                           debayerPixel(*input, plan->x(s), plan->y(s)));
            }
        },
        period);

    automaton->addStage(std::move(stage), config.workers);
    return DebayerAutomaton{std::move(automaton), std::move(output)};
}

} // namespace anytime
