/**
 * @file
 * Debayering / demosaicing (PERFECT "debayer", Section IV-A2).
 *
 * Reconstructs a full RGB image from a single-sensor RGGB Bayer mosaic
 * by bilinear interpolation of the missing color samples at each pixel.
 * Structurally similar to 2dconv (the interpolations are small
 * convolutions), so the automaton is likewise a single diffusive stage
 * with tree-permuted output sampling and progressive block fill.
 */

#ifndef ANYTIME_APPS_DEBAYER_HPP
#define ANYTIME_APPS_DEBAYER_HPP

#include <cstdint>
#include <memory>

#include "core/automaton.hpp"
#include "image/image.hpp"

namespace anytime {

/** One demosaiced pixel of an RGGB mosaic (bilinear, clamped borders). */
RgbPixel debayerPixel(const GrayImage &mosaic, std::size_t x,
                      std::size_t y);

/** Precise baseline: demosaic the whole image. */
RgbImage debayer(const GrayImage &mosaic);

/** Anytime debayer automaton configuration. */
struct DebayerConfig
{
    /** Output versions published across the sweep. */
    std::uint64_t publishCount = 64;
    /** Worker threads for the diffusive stage. */
    unsigned workers = 1;
};

/** Automaton bundle for debayer. */
struct DebayerAutomaton
{
    std::unique_ptr<Automaton> automaton;
    std::shared_ptr<VersionedBuffer<RgbImage>> output;
};

/** Build the single-diffusive-stage debayer automaton. */
DebayerAutomaton makeDebayerAutomaton(GrayImage mosaic,
                                      const DebayerConfig &config = {});

} // namespace anytime

#endif // ANYTIME_APPS_DEBAYER_HPP
