#include "apps/dwt53.hpp"

#include <vector>

#include "core/source_stage.hpp"
#include "simd/simd.hpp"
#include "support/error.hpp"

namespace anytime {

namespace {

/**
 * 1-D forward 5/3 lifting of @p line into deinterleaved (low | high)
 * layout, on the src/simd/ lifting kernels (predict: d[i] = x[2i+1] -
 * floor((x[2i] + x[2i+2]) / 2); update: s[i] = x[2i] + floor((d[i-1] +
 * d[i] + 2) / 4); whole-sample mirroring at the edges). All arithmetic
 * is exact int32 — C++20 guarantees arithmetic right shift == floor
 * division — so every backend produces identical coefficients.
 */
void
lift53Forward(std::vector<std::int32_t> &line)
{
    const std::size_t n = line.size();
    if (n < 2)
        return;
    const std::size_t n_high = n / 2;
    const std::size_t n_low = n - n_high;

    thread_local std::vector<std::int32_t> high, low;
    high.resize(n_high);
    low.resize(n_low);

    const auto &ops = simd::ops();
    ops.dwtPredict53(line.data(), n, high.data());
    ops.dwtUpdate53(line.data(), high.data(), n, low.data());

    std::copy(low.begin(), low.end(), line.begin());
    std::copy(high.begin(), high.end(), line.begin() + n_low);
}

/** 1-D inverse 5/3 lifting from deinterleaved layout back to samples. */
void
lift53Inverse(std::vector<std::int32_t> &line)
{
    const std::size_t n = line.size();
    if (n < 2)
        return;
    const std::size_t n_high = n / 2;
    const std::size_t n_low = n - n_high;

    thread_local std::vector<std::int32_t> even, out;
    even.resize(n_low);
    out.resize(n);

    const auto &ops = simd::ops();
    ops.dwtRecoverEven53(line.data(), n, even.data());
    ops.dwtInterleave53(even.data(), line.data() + n_low, n, out.data());

    std::copy(out.begin(), out.end(), line.begin());
}

/** Forward transform with optional row/column perforation stride. */
WaveletImage
forwardWithStride(const GrayImage &src, std::uint32_t stride)
{
    panicIf(stride == 0, "dwt53: zero stride");
    const std::size_t w = src.width();
    const std::size_t h = src.height();
    WaveletImage coeffs(w, h);
    std::int32_t *out = coeffs.data().data();
    const std::uint8_t *in = src.data().data();

    // Row pass: lift every stride-th row; skipped rows replicate the
    // most recent lifted row (classic perforation "reuse last value").
    std::vector<std::int32_t> line(w);
    const std::int32_t *last_row = nullptr;
    for (std::size_t y = 0; y < h; ++y) {
        std::int32_t *row = out + y * w;
        if (y % stride == 0 || last_row == nullptr) {
            const std::uint8_t *src_row = in + y * w;
            for (std::size_t x = 0; x < w; ++x)
                line[x] = src_row[x];
            lift53Forward(line);
            std::copy(line.begin(), line.end(), row);
        } else {
            std::copy(last_row, last_row + w, row);
        }
        last_row = row;
    }

    // Column pass: lift every stride-th column in place, then fill the
    // skipped columns row-major (one sequential sweep, unlike a
    // per-column copy which would cost a cache-hostile O(w*h) even for
    // large strides).
    std::vector<std::int32_t> column(h);
    for (std::size_t x = 0; x < w; x += stride) {
        for (std::size_t y = 0; y < h; ++y)
            column[y] = out[y * w + x];
        lift53Forward(column);
        for (std::size_t y = 0; y < h; ++y)
            out[y * w + x] = column[y];
    }
    if (stride > 1) {
        for (std::size_t y = 0; y < h; ++y) {
            std::int32_t *row = out + y * w;
            for (std::size_t x = 0; x < w; ++x) {
                if (x % stride != 0)
                    row[x] = row[x - (x % stride)];
            }
        }
    }
    return coeffs;
}

} // namespace

WaveletImage
dwt53Forward(const GrayImage &src)
{
    return forwardWithStride(src, 1);
}

WaveletImage
dwt53ForwardPerforated(const GrayImage &src, std::uint32_t stride)
{
    return forwardWithStride(src, stride);
}

GrayImage
dwt53Inverse(const WaveletImage &coefficients)
{
    const std::size_t w = coefficients.width();
    const std::size_t h = coefficients.height();
    WaveletImage work = coefficients;

    std::vector<std::int32_t> column(h);
    for (std::size_t x = 0; x < w; ++x) {
        for (std::size_t y = 0; y < h; ++y)
            column[y] = work.at(x, y);
        lift53Inverse(column);
        for (std::size_t y = 0; y < h; ++y)
            work.at(x, y) = column[y];
    }

    std::vector<std::int32_t> line(w);
    GrayImage out(w, h);
    for (std::size_t y = 0; y < h; ++y) {
        for (std::size_t x = 0; x < w; ++x)
            line[x] = work.at(x, y);
        lift53Inverse(line);
        for (std::size_t x = 0; x < w; ++x) {
            const std::int32_t v = line[x];
            out.at(x, y) = static_cast<std::uint8_t>(
                v <= 0 ? 0 : (v >= 255 ? 255 : v));
        }
    }
    return out;
}

Dwt53Automaton
makeDwt53Automaton(GrayImage src, const Dwt53Config &config)
{
    fatalIf(src.empty(), "dwt53: empty input");
    auto automaton = std::make_unique<Automaton>();
    auto output = automaton->makeBuffer<WaveletImage>("dwt53.out");

    auto input = std::make_shared<const GrayImage>(std::move(src));
    auto schedule =
        std::make_shared<const PerforationSchedule>(config.schedule);

    auto stage = std::make_shared<IterativeSourceStage<WaveletImage>>(
        "dwt53", output, schedule->levels(),
        [input, schedule](std::size_t level, WaveletImage &out,
                          StageContext &ctx) {
            const std::uint32_t stride = schedule->stride(level);
            out = dwt53ForwardPerforated(*input, stride);
            ctx.addWork(input->size());
        });

    automaton->addStage(std::move(stage));
    return Dwt53Automaton{std::move(automaton), std::move(output)};
}

} // namespace anytime
