/**
 * @file
 * 5/3 discrete wavelet transform (PERFECT "dwt53", Section IV-A2).
 *
 * A single-level 2-D LeGall 5/3 integer lifting transform (the
 * reversible JPEG 2000 filter): predict/update lifting over rows, then
 * over columns, coefficients stored deinterleaved (low | high). The
 * inverse transform reconstructs the input exactly.
 *
 * The paper's automaton approximates the *forward* transform with
 * iterative loop perforation over the row/column processing loops, then
 * executes the inverse transform precisely; accuracy is measured on the
 * reconstructed image relative to the original. Because the construction
 * is iterative (each stride level recomputes the whole transform), the
 * runtime-accuracy curve is steep and non-smooth — the paper's
 * motivating contrast with diffusive sampling.
 */

#ifndef ANYTIME_APPS_DWT53_HPP
#define ANYTIME_APPS_DWT53_HPP

#include <cstdint>
#include <memory>

#include "approx/perforation.hpp"
#include "core/automaton.hpp"
#include "image/image.hpp"

namespace anytime {

/** Signed coefficient plane produced by the forward transform. */
using WaveletImage = Image<std::int32_t>;

/** Precise single-level 2-D forward 5/3 transform. */
WaveletImage dwt53Forward(const GrayImage &src);

/**
 * Forward transform with loop perforation of stride @p stride over the
 * row pass and the column pass: only every stride-th row (then column)
 * is lifted; skipped lines replicate the most recent processed line's
 * coefficients. stride == 1 is the precise transform.
 */
WaveletImage dwt53ForwardPerforated(const GrayImage &src,
                                    std::uint32_t stride);

/** Precise inverse transform (exact reconstruction for stride 1). */
GrayImage dwt53Inverse(const WaveletImage &coefficients);

/** Anytime dwt53 automaton configuration. */
struct Dwt53Config
{
    /** Perforation stride schedule (must end at stride 1). */
    PerforationSchedule schedule = PerforationSchedule::geometric(4);
};

/** Automaton bundle for dwt53. */
struct Dwt53Automaton
{
    std::unique_ptr<Automaton> automaton;
    /**
     * Approximate transform coefficients. The application output is the
     * transform itself; the paper scores accuracy by applying the
     * precise *inverse* to each version and comparing the
     * reconstruction against the original image (an evaluation step,
     * not part of the automaton's runtime).
     */
    std::shared_ptr<VersionedBuffer<WaveletImage>> output;
};

/**
 * Build the single-iterative-stage dwt53 automaton: each level runs the
 * perforated forward transform at its stride, publishing the
 * coefficient plane.
 */
Dwt53Automaton makeDwt53Automaton(GrayImage src,
                                  const Dwt53Config &config = {});

} // namespace anytime

#endif // ANYTIME_APPS_DWT53_HPP
