#include "apps/histeq.hpp"

#include <cmath>

#include "core/source_stage.hpp"
#include "core/transform_stage.hpp"
#include "image/progressive.hpp"
#include "sampling/lfsr_permutation.hpp"
#include "sampling/tree_permutation.hpp"
#include "support/error.hpp"

namespace anytime {

PixelHistogram
buildHistogram(const GrayImage &src)
{
    PixelHistogram histogram;
    for (std::size_t i = 0; i < src.size(); ++i)
        ++histogram.bins[src[i]];
    histogram.samples = src.size();
    return histogram;
}

PixelCdf
buildCdf(const PixelHistogram &histogram)
{
    fatalIf(histogram.samples == 0, "buildCdf: empty histogram");
    PixelCdf cdf{};
    std::uint64_t running = 0;
    for (std::size_t v = 0; v < cdf.size(); ++v) {
        running += histogram.bins[v];
        cdf[v] = static_cast<double>(running) /
                 static_cast<double>(histogram.samples);
    }
    return cdf;
}

PixelLut
buildLut(const PixelCdf &cdf)
{
    // Classic histogram-equalization remap anchored at the first
    // occupied intensity: values map to 255 * (cdf - cdf_min) /
    // (1 - cdf_min), which stretches the occupied range to full scale.
    double cdf_min = 1.0;
    for (double value : cdf) {
        if (value > 0.0) {
            cdf_min = value;
            break;
        }
    }
    PixelLut lut{};
    const double denom = 1.0 - cdf_min;
    for (std::size_t v = 0; v < lut.size(); ++v) {
        double mapped = 255.0;
        if (denom > 0.0)
            mapped = 255.0 * (cdf[v] - cdf_min) / denom;
        if (mapped < 0.0)
            mapped = 0.0;
        if (mapped > 255.0)
            mapped = 255.0;
        lut[v] = static_cast<std::uint8_t>(mapped + 0.5);
    }
    return lut;
}

GrayImage
applyLut(const GrayImage &src, const PixelLut &lut)
{
    GrayImage out(src.width(), src.height());
    for (std::size_t i = 0; i < src.size(); ++i)
        out[i] = lut[src[i]];
    return out;
}

GrayImage
histogramEqualize(const GrayImage &src)
{
    return applyLut(src, buildLut(buildCdf(buildHistogram(src))));
}

HisteqAutomaton
makeHisteqAutomaton(GrayImage src, const HisteqConfig &config)
{
    fatalIf(src.empty(), "histeq: empty input");
    auto automaton = std::make_unique<Automaton>();
    auto hist_buf =
        automaton->makeBuffer<PixelHistogram>("histeq.histogram");
    auto cdf_buf = automaton->makeBuffer<PixelCdf>("histeq.cdf");
    auto lut_buf = automaton->makeBuffer<PixelLut>("histeq.lut");
    auto out_buf = automaton->makeBuffer<GrayImage>("histeq.out");

    auto input = std::make_shared<const GrayImage>(std::move(src));
    const std::uint64_t pixels = input->size();

    // Stage 1: anytime histogram via pseudo-random input sampling.
    // Chunked steps amortize the per-step dispatch over real work.
    constexpr std::uint64_t chunk = 32;
    const std::uint64_t hist_steps = (pixels + chunk - 1) / chunk;
    auto lfsr = std::make_shared<const LfsrPermutation>(pixels,
                                                        config.lfsrSeed);
    const std::uint64_t hist_period = std::max<std::uint64_t>(
        1, hist_steps /
               std::max<std::uint64_t>(1, config.histogramVersions));
    auto hist_stage = std::make_shared<DiffusiveSourceStage<PixelHistogram>>(
        "histogram", hist_buf, PixelHistogram{}, hist_steps,
        [input, lfsr, pixels](std::uint64_t step, PixelHistogram &state,
                              StageContext &) {
            const std::uint64_t end = std::min(pixels, (step + 1) * chunk);
            for (std::uint64_t s = step * chunk; s < end; ++s) {
                const std::uint64_t index = lfsr->map(s);
                ++state.bins[(*input)[static_cast<std::size_t>(index)]];
                ++state.samples;
            }
        },
        hist_period);

    // Stage 2 (non-anytime): normalized CDF.
    auto cdf_stage = makeFunctionStage<PixelCdf, PixelHistogram>(
        "cdf", hist_buf, cdf_buf,
        [](const PixelHistogram &histogram) {
            return buildCdf(histogram);
        });

    // Stage 3 (non-anytime): remap table.
    auto lut_stage = makeFunctionStage<PixelLut, PixelCdf>(
        "lut", cdf_buf, lut_buf,
        [](const PixelCdf &cdf) { return buildLut(cdf); });

    // Stage 4: anytime apply via tree-permuted output sampling. Each
    // consumed LUT version triggers a fresh full sweep (asynchronous
    // pipeline semantics: the paper's source of histeq's 6x tail).
    auto plan = std::make_shared<const TreeSweepPlan>(
        TreePermutation::twoDim(input->height(), input->width()));
    const std::uint64_t apply_period = std::max<std::uint64_t>(
        1, pixels / std::max<std::uint64_t>(1, config.applyVersions));
    auto apply_stage = std::make_shared<TransformStage<GrayImage, PixelLut>>(
        "apply", lut_buf, out_buf,
        [input, plan, pixels, apply_period](const PixelLut &lut,
                                            Emitter<GrayImage> &emitter,
                                            StageContext &ctx) {
            GrayImage out(input->width(), input->height());
            for (std::uint64_t step = 0; step < pixels; ++step) {
                plan->fill(out, step,
                           lut[input->at(plan->x(step), plan->y(step))]);
                const bool last = (step + 1 == pixels);
                if (!last && (step + 1) % apply_period == 0) {
                    ctx.addWork(apply_period);
                    emitter.emit(out, false);
                    if (!ctx.checkpoint())
                        return;
                    // A fresher LUT supersedes this sweep; abandon it
                    // (never possible for the final LUT, so the
                    // precise output is still guaranteed).
                    if (!emitter.inputsFinal() && emitter.stale())
                        return;
                }
            }
            emitter.emit(std::move(out), true);
        });

    automaton->addStage(std::move(hist_stage), config.histogramWorkers);
    automaton->addStage(std::move(cdf_stage));
    automaton->addStage(std::move(lut_stage));
    automaton->addStage(std::move(apply_stage));
    return HisteqAutomaton{std::move(automaton), std::move(out_buf),
                           std::move(hist_buf), std::move(lut_buf)};
}

} // namespace anytime
