#include "apps/histeq.hpp"

#include <cmath>

#include "core/parallel_stage.hpp"
#include "core/transform_stage.hpp"
#include "image/progressive.hpp"
#include "sampling/lfsr_permutation.hpp"
#include "sampling/replay.hpp"
#include "sampling/tree_permutation.hpp"
#include "simd/simd.hpp"
#include "support/error.hpp"

namespace anytime {

PixelHistogram
buildHistogram(const GrayImage &src)
{
    PixelHistogram histogram;
    // Four interleaved sub-counters break the same-bin dependency
    // chain; exact by commutativity of u64 sums.
    simd::histogram256(src.data().data(), src.size(),
                       histogram.bins.data());
    histogram.samples = src.size();
    return histogram;
}

PixelCdf
buildCdf(const PixelHistogram &histogram)
{
    fatalIf(histogram.samples == 0, "buildCdf: empty histogram");
    PixelCdf cdf{};
    std::uint64_t running = 0;
    for (std::size_t v = 0; v < cdf.size(); ++v) {
        running += histogram.bins[v];
        cdf[v] = static_cast<double>(running) /
                 static_cast<double>(histogram.samples);
    }
    return cdf;
}

PixelLut
buildLut(const PixelCdf &cdf)
{
    // Classic histogram-equalization remap anchored at the first
    // occupied intensity: values map to 255 * (cdf - cdf_min) /
    // (1 - cdf_min), which stretches the occupied range to full scale.
    double cdf_min = 1.0;
    for (double value : cdf) {
        if (value > 0.0) {
            cdf_min = value;
            break;
        }
    }
    PixelLut lut{};
    const double denom = 1.0 - cdf_min;
    for (std::size_t v = 0; v < lut.size(); ++v) {
        double mapped = 255.0;
        if (denom > 0.0)
            mapped = 255.0 * (cdf[v] - cdf_min) / denom;
        if (mapped < 0.0)
            mapped = 0.0;
        if (mapped > 255.0)
            mapped = 255.0;
        lut[v] = static_cast<std::uint8_t>(mapped + 0.5);
    }
    return lut;
}

GrayImage
applyLut(const GrayImage &src, const PixelLut &lut)
{
    GrayImage out(src.width(), src.height());
    simd::ops().applyLutU8(src.data().data(), src.size(), lut.data(),
                           out.data().data());
    return out;
}

GrayImage
histogramEqualize(const GrayImage &src)
{
    return applyLut(src, buildLut(buildCdf(buildHistogram(src))));
}

HisteqAutomaton
makeHisteqAutomaton(GrayImage src, const HisteqConfig &config)
{
    fatalIf(src.empty(), "histeq: empty input");
    auto automaton = std::make_unique<Automaton>();
    auto hist_buf =
        automaton->makeBuffer<PixelHistogram>("histeq.histogram");
    auto cdf_buf = automaton->makeBuffer<PixelCdf>("histeq.cdf");
    auto lut_buf = automaton->makeBuffer<PixelLut>("histeq.lut");
    auto out_buf = automaton->makeBuffer<GrayImage>("histeq.out");

    auto input = std::make_shared<const GrayImage>(std::move(src));
    const std::uint64_t pixels = input->size();

    // Stage 1: anytime histogram via pseudo-random input sampling.
    // Chunked steps amortize the per-step dispatch over real work.
    constexpr std::uint64_t chunk = 32;
    const std::uint64_t hist_steps = (pixels + chunk - 1) / chunk;
    auto lfsr = std::make_shared<const LfsrPermutation>(pixels,
                                                        config.lfsrSeed);
    const std::uint64_t hist_period = std::max<std::uint64_t>(
        1, hist_steps /
               std::max<std::uint64_t>(1, config.histogramVersions));
    // Histograms are pure commutative counting, so the partial is just
    // another histogram and the merge adds bins in partition order
    // (bit-identical to single-worker by commutativity of u64 sums).
    // The LFSR permits block or cyclic distribution (Section IV-C1).
    SweepLayout hist_layout;
    hist_layout.steps = hist_steps;
    hist_layout.window = hist_period;
    hist_layout.kind = config.histogramPartition;
    hist_layout.checkpointStride = 16;
    auto hist_stage = std::make_shared<
        PartitionedDiffusiveStage<PixelHistogram, PixelHistogram>>(
        "histogram", hist_buf, PixelHistogram{}, hist_layout,
        [] { return PixelHistogram{}; },
        [](PixelHistogram &partial) { partial = PixelHistogram{}; },
        [input, lfsr, pixels](std::uint64_t step, PixelHistogram &partial,
                              StageContext &) {
            const std::uint64_t end = std::min(pixels, (step + 1) * chunk);
            for (std::uint64_t s = step * chunk; s < end; ++s) {
                const std::uint64_t index = lfsr->map(s);
                ++partial.bins[(*input)[static_cast<std::size_t>(index)]];
                ++partial.samples;
            }
        },
        [](PixelHistogram &state, std::vector<PixelHistogram> &partials,
           std::uint64_t, std::uint64_t) {
            for (const PixelHistogram &partial : partials) {
                for (std::size_t v = 0; v < state.bins.size(); ++v)
                    state.bins[v] += partial.bins[v];
                state.samples += partial.samples;
            }
        });

    // Stage 2 (non-anytime): normalized CDF.
    auto cdf_stage = makeFunctionStage<PixelCdf, PixelHistogram>(
        "cdf", hist_buf, cdf_buf,
        [](const PixelHistogram &histogram) {
            return buildCdf(histogram);
        });

    // Stage 3 (non-anytime): remap table.
    auto lut_stage = makeFunctionStage<PixelLut, PixelCdf>(
        "lut", cdf_buf, lut_buf,
        [](const PixelCdf &cdf) { return buildLut(cdf); });

    // Stage 4: anytime apply via tree-permuted output sampling. Each
    // consumed LUT version triggers a fresh full sweep (asynchronous
    // pipeline semantics: the paper's source of histeq's 6x tail).
    auto plan = std::make_shared<const TreeSweepPlan>(
        TreePermutation::twoDim(input->height(), input->width()));
    const std::uint64_t apply_period = std::max<std::uint64_t>(
        1, pixels / std::max<std::uint64_t>(1, config.applyVersions));
    // Partitioned body: each consumed LUT version triggers a fresh
    // sweep; windows are sliced cyclically (tree permutation) and
    // worker write logs are replayed in global sample order, so the
    // output matches the single-worker sweep bit for bit. A sweep over
    // a non-final LUT is abandoned when a fresher LUT lands (never
    // possible for the final LUT — the precise output is guaranteed).
    using ApplyPartial = OrdinalLog<std::uint8_t>;
    PartitionedBody<ApplyPartial, GrayImage, PixelLut> apply_body;
    apply_body.layout.steps = pixels;
    apply_body.layout.window = apply_period;
    apply_body.layout.kind = PartitionKind::cyclic;
    apply_body.layout.checkpointStride = 256;
    apply_body.makePartial = [] { return ApplyPartial{}; };
    apply_body.resetPartial = [](ApplyPartial &partial) {
        partial.clear();
    };
    apply_body.init = [input](const PixelLut &) {
        return GrayImage(input->width(), input->height());
    };
    apply_body.step = [input, plan](const PixelLut &lut,
                                    std::uint64_t step,
                                    ApplyPartial &partial, StageContext &) {
        partial.push_back(
            {step, lut[input->at(plan->x(step), plan->y(step))]});
    };
    apply_body.merge = [plan](GrayImage &state,
                              std::vector<ApplyPartial> &partials,
                              std::uint64_t, std::uint64_t) {
        std::vector<const ApplyPartial *> logs;
        logs.reserve(partials.size());
        for (const ApplyPartial &partial : partials)
            logs.push_back(&partial);
        replayOrdinalLogs<std::uint8_t>(
            logs, [&](std::uint64_t s, std::uint8_t value) {
                plan->fill(state, s, value);
            });
    };
    auto apply_stage = std::make_shared<TransformStage<GrayImage, PixelLut>>(
        "apply", lut_buf, out_buf, std::move(apply_body));

    automaton->addStage(std::move(hist_stage), config.histogramWorkers);
    automaton->addStage(std::move(cdf_stage));
    automaton->addStage(std::move(lut_stage));
    automaton->addStage(std::move(apply_stage), config.applyWorkers);
    return HisteqAutomaton{std::move(automaton), std::move(out_buf),
                           std::move(hist_buf), std::move(lut_buf)};
}

} // namespace anytime
