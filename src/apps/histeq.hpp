/**
 * @file
 * Histogram equalization (PERFECT "histeq", paper Section IV-A2).
 *
 * Enhances image contrast by remapping intensities through the
 * normalized cumulative distribution of pixel values. The paper's
 * automaton has four stages in an asynchronous pipeline:
 *
 *   1. histogram  — diffusive; pseudo-random (LFSR) *input sampling*
 *                   over pixels (Figure 3's anytime histogram);
 *   2. cdf        — non-anytime; normalized cumulative distribution;
 *   3. lut        — non-anytime; the 256-entry remap table;
 *   4. apply      — diffusive; tree-permuted *output sampling*
 *                   generating the equalized image.
 *
 * Stages 2-3 are the "small sequential tasks" whose non-anytime nature
 * makes histeq's runtime-accuracy curve flatter than conv2d's and delays
 * its precise output well past the baseline runtime (the paper reports
 * ~6x) because every histogram version triggers a fresh downstream
 * sweep.
 */

#ifndef ANYTIME_APPS_HISTEQ_HPP
#define ANYTIME_APPS_HISTEQ_HPP

#include <array>
#include <cstdint>
#include <memory>

#include "core/automaton.hpp"
#include "image/image.hpp"
#include "sampling/partition.hpp"

namespace anytime {

/** Intensity histogram with the number of samples folded in so far. */
struct PixelHistogram
{
    std::array<std::uint64_t, 256> bins{};
    std::uint64_t samples = 0;

    bool operator==(const PixelHistogram &) const = default;
};

/** Normalized cumulative distribution of pixel intensities. */
using PixelCdf = std::array<double, 256>;

/** Intensity remap table. */
using PixelLut = std::array<std::uint8_t, 256>;

/** Full-image histogram (precise stage 1). */
PixelHistogram buildHistogram(const GrayImage &src);

/** Normalized CDF from a histogram (stage 2; samples must be > 0). */
PixelCdf buildCdf(const PixelHistogram &histogram);

/** Equalization lookup table from a CDF (stage 3). */
PixelLut buildLut(const PixelCdf &cdf);

/** Apply a LUT to every pixel (precise stage 4). */
GrayImage applyLut(const GrayImage &src, const PixelLut &lut);

/** Precise baseline: full histogram equalization. */
GrayImage histogramEqualize(const GrayImage &src);

/** Anytime histeq automaton configuration. */
struct HisteqConfig
{
    /** Histogram versions published across the input-sampling sweep. */
    std::uint64_t histogramVersions = 8;
    /** Output-image versions published per apply sweep. */
    std::uint64_t applyVersions = 16;
    /** LFSR seed for the input-sampling permutation. */
    std::uint32_t lfsrSeed = 0x5eed;
    /** Worker threads for the histogram stage. */
    unsigned histogramWorkers = 1;
    /** Worker threads for the apply stage (tree output sampling). */
    unsigned applyWorkers = 1;
    /**
     * Partition strategy for the histogram sweep. The LFSR permutation
     * accepts either (Section IV-C1); block is the default because
     * ordinal locality carries no resolution meaning there. The apply
     * stage's tree permutation always partitions cyclically.
     */
    PartitionKind histogramPartition = PartitionKind::block;
};

/** Automaton bundle for histeq. */
struct HisteqAutomaton
{
    std::unique_ptr<Automaton> automaton;
    std::shared_ptr<VersionedBuffer<GrayImage>> output;
    std::shared_ptr<VersionedBuffer<PixelHistogram>> histogram;
    std::shared_ptr<VersionedBuffer<PixelLut>> lut;
};

/** Build the four-stage asynchronous-pipeline histeq automaton. */
HisteqAutomaton makeHisteqAutomaton(GrayImage src,
                                    const HisteqConfig &config = {});

} // namespace anytime

#endif // ANYTIME_APPS_HISTEQ_HPP
