#include "apps/kmeans.hpp"

#include "core/parallel_stage.hpp"
#include "core/transform_stage.hpp"
#include "image/progressive.hpp"
#include "sampling/replay.hpp"
#include "sampling/tree_permutation.hpp"
#include "simd/simd.hpp"
#include "support/error.hpp"

namespace anytime {

std::vector<RgbPixel>
kmeansSeeds(const RgbImage &src, unsigned k)
{
    fatalIf(k == 0, "kmeans: zero clusters");
    fatalIf(k > 255, "kmeans: labels are 8-bit, k must be <= 255");
    std::vector<RgbPixel> seeds;
    seeds.reserve(k);
    // Evenly strided deterministic sampling; the +i term staggers the
    // picks so uniform regions still yield distinct seeds.
    const std::size_t stride = src.size() / k;
    for (unsigned i = 0; i < k; ++i) {
        const std::size_t index =
            std::min(src.size() - 1, i * stride + stride / 2);
        seeds.push_back(src[index]);
    }
    return seeds;
}

unsigned
nearestCentroid(const std::vector<RgbPixel> &centroids,
                const RgbPixel &pixel)
{
    panicIf(centroids.empty(), "nearestCentroid: no centroids");
    unsigned best = 0;
    std::int64_t best_dist = -1;
    for (unsigned c = 0; c < centroids.size(); ++c) {
        const std::int64_t dr =
            static_cast<std::int64_t>(pixel.r) - centroids[c].r;
        const std::int64_t dg =
            static_cast<std::int64_t>(pixel.g) - centroids[c].g;
        const std::int64_t db =
            static_cast<std::int64_t>(pixel.b) - centroids[c].b;
        const std::int64_t dist = dr * dr + dg * dg + db * db;
        if (best_dist < 0 || dist < best_dist) {
            best_dist = dist;
            best = c;
        }
    }
    return best;
}

CentroidIndex::CentroidIndex(const std::vector<RgbPixel> &centroids)
    : k(centroids.size())
{
    panicIf(k == 0, "CentroidIndex: no centroids");
    padded = (k + 7u) & ~std::size_t{7};
    red.assign(padded, 0);
    green.assign(padded, 0);
    blue.assign(padded, 0);
    for (std::size_t c = 0; c < k; ++c) {
        red[c] = centroids[c].r;
        green[c] = centroids[c].g;
        blue[c] = centroids[c].b;
    }
}

unsigned
CentroidIndex::nearest(const RgbPixel &pixel) const
{
    thread_local std::vector<std::int32_t> dist;
    dist.resize(padded);
    simd::ops().squaredDistancesRgb(red.data(), green.data(), blue.data(),
                                    padded, pixel.r, pixel.g, pixel.b,
                                    dist.data());
    unsigned best = 0;
    std::int32_t best_dist = dist[0];
    for (std::size_t c = 1; c < k; ++c) {
        if (dist[c] < best_dist) {
            best_dist = dist[c];
            best = static_cast<unsigned>(c);
        }
    }
    return best;
}

namespace {

/** Reduce accumulated sums into centroid colors (seed on empties). */
std::vector<RgbPixel>
reduceCentroids(const std::vector<ClusterSum> &sums,
                const std::vector<RgbPixel> &seeds)
{
    std::vector<RgbPixel> centroids(sums.size());
    for (std::size_t c = 0; c < sums.size(); ++c) {
        if (sums[c].count == 0) {
            centroids[c] = seeds[c];
            continue;
        }
        const std::uint64_t n = sums[c].count;
        centroids[c] = RgbPixel{
            static_cast<std::uint8_t>((sums[c].r + n / 2) / n),
            static_cast<std::uint8_t>((sums[c].g + n / 2) / n),
            static_cast<std::uint8_t>((sums[c].b + n / 2) / n)};
    }
    return centroids;
}

/** Recolor a label map with centroid colors. */
RgbImage
recolor(const Image<std::uint8_t> &labels,
        const std::vector<RgbPixel> &centroids)
{
    RgbImage out(labels.width(), labels.height());
    for (std::size_t i = 0; i < labels.size(); ++i)
        out[i] = centroids[labels[i]];
    return out;
}

} // namespace

KmeansResult
kmeansCluster(const RgbImage &src, unsigned k)
{
    const std::vector<RgbPixel> seeds = kmeansSeeds(src, k);
    const CentroidIndex index(seeds);
    Image<std::uint8_t> labels(src.width(), src.height());
    std::vector<ClusterSum> sums(k);
    for (std::size_t i = 0; i < src.size(); ++i) {
        const unsigned c = index.nearest(src[i]);
        labels[i] = static_cast<std::uint8_t>(c);
        sums[c].r += src[i].r;
        sums[c].g += src[i].g;
        sums[c].b += src[i].b;
        ++sums[c].count;
    }
    const std::vector<RgbPixel> centroids = reduceCentroids(sums, seeds);
    return KmeansResult{recolor(labels, centroids), centroids};
}

KmeansAutomaton
makeKmeansAutomaton(RgbImage src, const KmeansConfig &config)
{
    fatalIf(src.empty(), "kmeans: empty input");
    auto automaton = std::make_unique<Automaton>();
    auto assign_buf =
        automaton->makeBuffer<KmeansAssignment>("kmeans.assign");
    auto out_buf = automaton->makeBuffer<KmeansResult>("kmeans.out");

    auto input = std::make_shared<const RgbImage>(std::move(src));
    auto seeds = std::make_shared<const std::vector<RgbPixel>>(
        kmeansSeeds(*input, config.clusters));
    auto index = std::make_shared<const CentroidIndex>(*seeds);
    auto plan = std::make_shared<const TreeSweepPlan>(
        TreePermutation::twoDim(input->height(), input->width()));

    const std::uint64_t pixels = input->size();
    // Chunked steps amortize the per-step dispatch over real work.
    constexpr std::uint64_t chunk = 16;
    const std::uint64_t steps = (pixels + chunk - 1) / chunk;
    const std::uint64_t period = std::max<std::uint64_t>(
        1, steps / std::max<std::uint64_t>(1, config.publishCount));

    // Stage 1: diffusive assignment with tree output sampling. Labels
    // are block-filled so every intermediate version covers the whole
    // image; sums accumulate only truly sampled pixels. Partitioned
    // per Section IV-C1 (tree -> cyclic): workers log their label
    // writes and accumulate private cluster sums; the window leader
    // replays labels in global sample order and adds the sums in fixed
    // partition order, keeping every version bit-identical to a
    // single-worker sweep (integer sums commute exactly).
    struct AssignPartial
    {
        OrdinalLog<std::uint8_t> labels;
        std::vector<ClusterSum> sums;
    };
    const unsigned clusters = config.clusters;
    KmeansAssignment initial{
        Image<std::uint8_t>(input->width(), input->height()),
        std::vector<ClusterSum>(config.clusters)};
    SweepLayout layout;
    layout.steps = steps;
    layout.window = period;
    layout.kind = PartitionKind::cyclic;
    layout.checkpointStride = 16;
    auto assign_stage = std::make_shared<
        PartitionedDiffusiveStage<KmeansAssignment, AssignPartial>>(
        "assign", assign_buf, std::move(initial), layout,
        [clusters] {
            return AssignPartial{{}, std::vector<ClusterSum>(clusters)};
        },
        [](AssignPartial &partial) {
            partial.labels.clear();
            partial.sums.assign(partial.sums.size(), ClusterSum{});
        },
        [input, index, plan, pixels](std::uint64_t step,
                                     AssignPartial &partial,
                                     StageContext &) {
            const std::uint64_t end = std::min(pixels, (step + 1) * chunk);
            for (std::uint64_t s = step * chunk; s < end; ++s) {
                const RgbPixel &pixel = input->at(plan->x(s), plan->y(s));
                const unsigned c = index->nearest(pixel);
                partial.labels.push_back(
                    {s, static_cast<std::uint8_t>(c)});
                partial.sums[c].r += pixel.r;
                partial.sums[c].g += pixel.g;
                partial.sums[c].b += pixel.b;
                ++partial.sums[c].count;
            }
        },
        [plan](KmeansAssignment &state,
               std::vector<AssignPartial> &partials, std::uint64_t,
               std::uint64_t) {
            std::vector<const OrdinalLog<std::uint8_t> *> logs;
            logs.reserve(partials.size());
            for (const AssignPartial &partial : partials)
                logs.push_back(&partial.labels);
            replayOrdinalLogs<std::uint8_t>(
                logs, [&](std::uint64_t s, std::uint8_t label) {
                    plan->fill(state.labels, s, label);
                });
            for (const AssignPartial &partial : partials) {
                for (std::size_t c = 0; c < partial.sums.size(); ++c) {
                    state.sums[c].r += partial.sums[c].r;
                    state.sums[c].g += partial.sums[c].g;
                    state.sums[c].b += partial.sums[c].b;
                    state.sums[c].count += partial.sums[c].count;
                }
            }
        });

    // Stage 2 (non-anytime): reduce sums to centroids and recolor.
    auto reduce_stage = makeFunctionStage<KmeansResult, KmeansAssignment>(
        "reduce", assign_buf, out_buf,
        [seeds](const KmeansAssignment &assignment) {
            const std::vector<RgbPixel> centroids =
                reduceCentroids(assignment.sums, *seeds);
            return KmeansResult{recolor(assignment.labels, centroids),
                                centroids};
        });

    automaton->addStage(std::move(assign_stage), config.workers);
    automaton->addStage(std::move(reduce_stage));
    return KmeansAutomaton{std::move(automaton), std::move(out_buf),
                           std::move(assign_buf)};
}

} // namespace anytime
