/**
 * @file
 * K-means clustering over image pixels (AxBench "kmeans", §IV-A2).
 *
 * Clusters pixels in RGB space and renders each pixel as its cluster's
 * centroid color (the standard AxBench visualization). The paper's
 * automaton has two stages in an asynchronous pipeline:
 *
 *  1. assign — diffusive; tree-permuted output sampling: pixels are
 *     assigned to their nearest (seed) centroid in progressive-
 *     resolution order while per-cluster color sums accumulate;
 *  2. reduce — non-anytime; reduces the accumulated sums into updated
 *     centroids and recolors the assignment map with them.
 *
 * The application (baseline and automaton alike) performs one
 * assignment sweep plus one centroid update — one Lloyd step with
 * visualization — so the automaton's final output is bit-identical to
 * the precise baseline.
 */

#ifndef ANYTIME_APPS_KMEANS_HPP
#define ANYTIME_APPS_KMEANS_HPP

#include <cstdint>
#include <memory>
#include <vector>

#include "core/automaton.hpp"
#include "image/image.hpp"

namespace anytime {

/** Running per-cluster color accumulation. */
struct ClusterSum
{
    std::uint64_t r = 0;
    std::uint64_t g = 0;
    std::uint64_t b = 0;
    std::uint64_t count = 0;

    bool operator==(const ClusterSum &) const = default;
};

/** Output of the diffusive assignment stage. */
struct KmeansAssignment
{
    /** Per-pixel cluster label (block-filled at low resolutions). */
    Image<std::uint8_t> labels;
    /** Per-cluster accumulated color sums over sampled pixels. */
    std::vector<ClusterSum> sums;

    bool operator==(const KmeansAssignment &) const = default;
};

/** Output of the reduce stage: the clustered image and its palette. */
struct KmeansResult
{
    RgbImage image;
    std::vector<RgbPixel> centroids;

    bool operator==(const KmeansResult &) const = default;
};

/**
 * Deterministic seed centroids: k pixels sampled at evenly strided
 * positions of the image.
 */
std::vector<RgbPixel> kmeansSeeds(const RgbImage &src, unsigned k);

/** Index of the centroid nearest to @p pixel (squared RGB distance). */
unsigned nearestCentroid(const std::vector<RgbPixel> &centroids,
                         const RgbPixel &pixel);

/**
 * Structure-of-arrays centroid table for the assignment hot loop: all
 * candidate squared distances are computed in one vectorized pass
 * (src/simd/), then the winner is picked by the same first-minimum-wins
 * scan as nearestCentroid(). Distances are exact integers, so the
 * assignment is identical across ISAs and to nearestCentroid().
 */
class CentroidIndex
{
  public:
    explicit CentroidIndex(const std::vector<RgbPixel> &centroids);

    /** Index of the nearest centroid (first minimum wins on ties). */
    unsigned nearest(const RgbPixel &pixel) const;

    std::size_t size() const { return k; }

  private:
    std::size_t k = 0;
    /** k rounded up to 8 lanes; padding channels are 0 and the argmin
     *  scan never reads their distances. */
    std::size_t padded = 0;
    std::vector<std::int32_t> red, green, blue;
};

/** Precise baseline: assign, reduce, recolor. */
KmeansResult kmeansCluster(const RgbImage &src, unsigned k);

/** Anytime kmeans automaton configuration. */
struct KmeansConfig
{
    unsigned clusters = 8;
    /** Assignment versions published across the sweep. */
    std::uint64_t publishCount = 32;
    /** Worker threads for the assignment stage. */
    unsigned workers = 1;
};

/** Automaton bundle for kmeans. */
struct KmeansAutomaton
{
    std::unique_ptr<Automaton> automaton;
    std::shared_ptr<VersionedBuffer<KmeansResult>> output;
    std::shared_ptr<VersionedBuffer<KmeansAssignment>> assignment;
};

/** Build the two-stage asynchronous-pipeline kmeans automaton. */
KmeansAutomaton makeKmeansAutomaton(RgbImage src,
                                    const KmeansConfig &config = {});

} // namespace anytime

#endif // ANYTIME_APPS_KMEANS_HPP
