#include "apps/matmul.hpp"

#include "approx/fixed_point.hpp"
#include "core/parallel_stage.hpp"
#include "simd/simd.hpp"
#include "support/error.hpp"

namespace anytime {

namespace {

/**
 * Wraparound int64 addition. Plane contributions are accumulated MSB
 * first, so intermediate sums can transiently exceed the int64 range
 * even when the telescoped final product fits (and on adversarial
 * inputs the product itself may wrap); two's-complement wraparound
 * keeps every path — exact, truncated, single- and multi-worker —
 * bit-identical instead of UB.
 */
inline std::int64_t
wrapAdd(std::int64_t lhs, std::int64_t rhs)
{
    return static_cast<std::int64_t>(static_cast<std::uint64_t>(lhs) +
                                     static_cast<std::uint64_t>(rhs));
}

void
checkShapes(const IntMatrix &a, const IntMatrix &b)
{
    // Image<T> is (width, height); treat height as rows.
    fatalIf(a.width() != b.height(), "matmul: inner dimensions differ (",
            a.width(), " vs ", b.height(), ")");
}

/**
 * Per-plane occupancy masks of B for MSB-first digit elision: a bit
 * plane set nowhere (globally, or within one row of B) adds exactly
 * zero, so it can be skipped without touching the accumulator.
 */
struct PlaneMasks
{
    std::uint32_t all = 0;
    std::vector<std::uint32_t> rows; // OR over each row kk of B
};

PlaneMasks
buildPlaneMasks(const IntMatrix &b)
{
    PlaneMasks masks;
    masks.rows.assign(b.height(), 0);
    for (std::size_t kk = 0; kk < b.height(); ++kk) {
        for (std::size_t j = 0; j < b.width(); ++j)
            masks.rows[kk] |= static_cast<std::uint32_t>(b.at(j, kk));
        masks.all |= masks.rows[kk];
    }
    return masks;
}

/**
 * Add the contribution of bit plane `bit` of B into the accumulator:
 * C += scale * (A x plane(B, bit)), where plane entries are 0/1 and the
 * top plane carries the two's-complement weight -2^31. Wraparound int64
 * sums commute, so the vectorized masked adds and the elision skips
 * leave every accumulator value bit-identical to the naive loop.
 */
void
addPlane(const IntMatrix &a, const IntMatrix &b, unsigned bit,
         LongMatrix &acc, const PlaneMasks *masks = nullptr)
{
    if (masks != nullptr && ((masks->all >> bit) & 1u) == 0)
        return; // digit elision: plane set nowhere in B
    const std::size_t m = a.height();
    const std::size_t k = a.width();
    const std::size_t n = b.width();
    const std::int64_t scale = (bit == 31)
                                   ? -(std::int64_t(1) << 31)
                                   : (std::int64_t(1) << bit);
    const auto &ops = simd::ops();
    for (std::size_t kk = 0; kk < k; ++kk) {
        if (masks != nullptr && ((masks->rows[kk] >> bit) & 1u) == 0)
            continue; // digit elision: plane empty in this row of B
        const std::int32_t *b_row = b.data().data() + kk * n;
        for (std::size_t i = 0; i < m; ++i) {
            const std::int64_t aik = a.at(kk, i);
            if (aik == 0)
                continue;
            const std::int64_t contribution = static_cast<std::int64_t>(
                static_cast<std::uint64_t>(aik) *
                static_cast<std::uint64_t>(scale));
            ops.maskedAddI64(acc.data().data() + i * n, b_row, n, bit,
                             contribution);
        }
    }
}

} // namespace

LongMatrix
matmulExact(const IntMatrix &a, const IntMatrix &b)
{
    checkShapes(a, b);
    LongMatrix c(b.width(), a.height(), 0);
    for (std::size_t i = 0; i < a.height(); ++i) {
        for (std::size_t kk = 0; kk < a.width(); ++kk) {
            const std::int64_t aik = a.at(kk, i);
            if (aik == 0)
                continue;
            for (std::size_t j = 0; j < b.width(); ++j)
                c.at(j, i) = wrapAdd(
                    c.at(j, i),
                    static_cast<std::int64_t>(
                        static_cast<std::uint64_t>(aik) *
                        static_cast<std::uint64_t>(b.at(j, kk))));
        }
    }
    return c;
}

LongMatrix
matmulTruncated(const IntMatrix &a, const IntMatrix &b,
                unsigned keep_bits)
{
    checkShapes(a, b);
    IntMatrix truncated(b.width(), b.height());
    for (std::size_t i = 0; i < b.size(); ++i)
        truncated[i] = maskLowBits(b[i], 32 - std::min(32u, keep_bits));
    return matmulExact(a, truncated);
}

MatmulAutomaton
makeMatmulAutomaton(IntMatrix a, IntMatrix b, const MatmulConfig &config)
{
    checkShapes(a, b);
    fatalIf(config.planesPerPublish == 0, "matmul: zero publish period");

    auto automaton = std::make_unique<Automaton>();
    auto output = automaton->makeBuffer<LongMatrix>("matmul.out");

    auto lhs = std::make_shared<const IntMatrix>(std::move(a));
    auto rhs = std::make_shared<const IntMatrix>(std::move(b));
    auto masks = std::make_shared<const PlaneMasks>(buildPlaneMasks(*rhs));

    // One diffusive step per bit plane, MSB first (sequential
    // permutation over planes: most significant bits are prioritized).
    // Partitioned cyclically: each worker accumulates its planes of
    // the window into a private matrix, and the leader adds the
    // partials in fixed partition order — int64 sums commute exactly,
    // so every version matches the single-worker run bit for bit.
    // Intra-window parallelism is bounded by planesPerPublish.
    SweepLayout layout;
    layout.steps = 32;
    layout.window = config.planesPerPublish;
    layout.kind = PartitionKind::cyclic;
    layout.checkpointStride = 1;
    const std::size_t rows = lhs->height();
    const std::size_t cols = rhs->width();
    auto stage =
        std::make_shared<PartitionedDiffusiveStage<LongMatrix, LongMatrix>>(
            "matmul", output, LongMatrix(cols, rows, 0), layout,
            [cols, rows] { return LongMatrix(cols, rows, 0); },
            [](LongMatrix &partial) { partial.fill(0); },
            [lhs, rhs, masks](std::uint64_t step, LongMatrix &partial,
                              StageContext &ctx) {
                addPlane(*lhs, *rhs, 31 - static_cast<unsigned>(step),
                         partial, masks.get());
                ctx.addWork(lhs->size());
            },
            [](LongMatrix &state, std::vector<LongMatrix> &partials,
               std::uint64_t, std::uint64_t) {
                for (const LongMatrix &partial : partials) {
                    for (std::size_t i = 0; i < state.size(); ++i)
                        state[i] = wrapAdd(state[i], partial[i]);
                }
            });

    automaton->addStage(std::move(stage), config.workers);
    return MatmulAutomaton{std::move(automaton), std::move(output)};
}

} // namespace anytime
