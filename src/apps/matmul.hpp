/**
 * @file
 * Anytime fixed-point matrix multiplication (extension app).
 *
 * Generalizes the paper's Figure 6 reduced-precision dot product to a
 * whole matrix product: C = A x B is computed bit plane by bit plane of
 * B, most significant first (input sampling over the bits of the
 * operand with a sequential permutation, Section III-B2). Each plane's
 * contribution adds usefully to the accumulator — a diffusive stage
 * with no redundant work relative to classic bit-serial / distributed
 * arithmetic — and after all 32 planes the product is exact, including
 * the two's-complement sign plane.
 *
 * This is the library's demonstration that the anytime constructions
 * are not image-specific: the same DiffusiveSourceStage machinery hosts
 * a linear-algebra kernel.
 */

#ifndef ANYTIME_APPS_MATMUL_HPP
#define ANYTIME_APPS_MATMUL_HPP

#include <cstdint>
#include <memory>

#include "core/automaton.hpp"
#include "image/image.hpp"

namespace anytime {

/** Dense row-major integer matrices (reusing the 2-D container). */
using IntMatrix = Image<std::int32_t>;
using LongMatrix = Image<std::int64_t>;

/** Exact product C = A x B (A is m x k, B is k x n, C is m x n). */
LongMatrix matmulExact(const IntMatrix &a, const IntMatrix &b);

/**
 * Product with B truncated to its top @p keep_bits bits (two's
 * complement; keep_bits == 32 is exact). The iterative counterpart of
 * the diffusive bit-plane refinement.
 */
LongMatrix matmulTruncated(const IntMatrix &a, const IntMatrix &b,
                           unsigned keep_bits);

/** Anytime matmul automaton configuration. */
struct MatmulConfig
{
    /** Publish the accumulator every this many bit planes. */
    unsigned planesPerPublish = 1;
    /** Worker threads for the plane stage (planes commute). */
    unsigned workers = 1;
};

/** Automaton bundle for the anytime matrix product. */
struct MatmulAutomaton
{
    std::unique_ptr<Automaton> automaton;
    std::shared_ptr<VersionedBuffer<LongMatrix>> output;
};

/**
 * Build the single-diffusive-stage anytime matmul: 32 steps, one bit
 * plane of B each, MSB first.
 */
MatmulAutomaton makeMatmulAutomaton(IntMatrix a, IntMatrix b,
                                    const MatmulConfig &config = {});

} // namespace anytime

#endif // ANYTIME_APPS_MATMUL_HPP
