#include "cachesim/cache.hpp"

#include "support/bits.hpp"

namespace anytime {

CacheModel::CacheModel(const CacheConfig &config) : geometry(config)
{
    fatalIf(!isPow2(geometry.lineBytes), "cache line size must be 2^k");
    fatalIf(geometry.ways == 0, "cache needs at least one way");
    fatalIf(geometry.sizeBytes %
                    (geometry.lineBytes * geometry.ways) !=
                0,
            "cache size must be a multiple of line size * ways");
    setCount =
        geometry.sizeBytes / (geometry.lineBytes * geometry.ways);
    fatalIf(setCount == 0, "cache too small for its geometry");
    lines.resize(setCount * geometry.ways);
}

std::uint64_t
CacheModel::lineOf(std::uint64_t address) const
{
    return address / geometry.lineBytes;
}

std::size_t
CacheModel::setOf(std::uint64_t line) const
{
    return static_cast<std::size_t>(line % setCount);
}

unsigned
CacheModel::find(std::size_t set, std::uint64_t line) const
{
    const Line *base = &lines[set * geometry.ways];
    for (unsigned way = 0; way < geometry.ways; ++way) {
        if (base[way].valid && base[way].tag == line)
            return way;
    }
    return geometry.ways;
}

unsigned
CacheModel::insert(std::size_t set, std::uint64_t line, bool prefetch)
{
    Line *base = &lines[set * geometry.ways];
    unsigned victim = 0;
    for (unsigned way = 0; way < geometry.ways; ++way) {
        if (!base[way].valid) {
            victim = way;
            break;
        }
        if (base[way].lastUse < base[victim].lastUse)
            victim = way;
    }
    base[victim] = Line{line, ++clock, true, prefetch};
    return victim;
}

bool
CacheModel::access(std::uint64_t address)
{
    ++statistics.accesses;
    const std::uint64_t line = lineOf(address);
    const std::size_t set = setOf(line);
    const unsigned way = find(set, line);
    if (way != geometry.ways) {
        Line &hit = lines[set * geometry.ways + way];
        if (hit.fromPrefetch) {
            ++statistics.prefetchHits;
            hit.fromPrefetch = false;
        }
        hit.lastUse = ++clock;
        return true;
    }
    ++statistics.misses;
    insert(set, line, false);
    return false;
}

void
CacheModel::prefetch(std::uint64_t address)
{
    const std::uint64_t line = lineOf(address);
    const std::size_t set = setOf(line);
    if (find(set, line) != geometry.ways)
        return; // already resident
    ++statistics.prefetchFills;
    insert(set, line, true);
}

bool
CacheModel::resident(std::uint64_t address) const
{
    const std::uint64_t line = lineOf(address);
    return find(setOf(line), line) != geometry.ways;
}

void
CacheModel::reset()
{
    for (Line &line : lines)
        line = Line{};
    clock = 0;
    statistics = CacheStats{};
}

PermutationPrefetcher::PermutationPrefetcher(CacheModel &cache,
                                             const Permutation &perm,
                                             std::uint64_t base_address,
                                             std::size_t element_size,
                                             unsigned distance)
    : cache(&cache), perm(&perm), base(base_address),
      elementSize(element_size), distance(distance)
{
    fatalIf(distance == 0, "prefetch distance must be >= 1");
    fatalIf(element_size == 0, "element size must be >= 1");
}

void
PermutationPrefetcher::onSample(std::uint64_t ordinal)
{
    // Run `distance` samples ahead of the demand stream, issuing each
    // future address exactly once.
    const std::uint64_t horizon =
        std::min<std::uint64_t>(ordinal + distance + 1, perm->size());
    for (std::uint64_t next = std::max(issuedUpTo, ordinal + 1);
         next < horizon; ++next) {
        cache->prefetch(base + perm->map(next) * elementSize);
    }
    if (horizon > issuedUpTo)
        issuedUpTo = horizon;
}

} // namespace anytime
