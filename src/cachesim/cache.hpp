/**
 * @file
 * Set-associative cache model (paper Section IV-C3, "Data Locality").
 *
 * The automaton's non-sequential sampling permutations trade cache and
 * row-buffer locality for early availability; the paper argues this is
 * recoverable because the permutations are *deterministic*, so "simple
 * hardware prefetchers can be implemented to alleviate the high miss
 * rates" — an address computation unit driven by the tree/LFSR
 * counters. This module provides the cache model and that
 * permutation-aware prefetcher so the claim can be measured (see
 * bench_locality).
 *
 * The model is a classic LRU set-associative cache over a flat address
 * space: enough to compare the miss behavior of sweep orders, with no
 * pretense of timing accuracy.
 */

#ifndef ANYTIME_CACHESIM_CACHE_HPP
#define ANYTIME_CACHESIM_CACHE_HPP

#include <cstdint>
#include <vector>

#include "sampling/permutation.hpp"
#include "support/error.hpp"

namespace anytime {

/** Geometry of a cache. */
struct CacheConfig
{
    /** Total capacity in bytes. */
    std::size_t sizeBytes = 32 * 1024;
    /** Line size in bytes (power of two). */
    std::size_t lineBytes = 64;
    /** Associativity (ways per set). */
    unsigned ways = 8;
};

/** Access statistics. */
struct CacheStats
{
    std::uint64_t accesses = 0;
    std::uint64_t misses = 0;
    std::uint64_t prefetchFills = 0;
    /** Demand misses on lines that a prefetch had already filled. */
    std::uint64_t prefetchHits = 0;

    double
    missRate() const
    {
        return accesses ? static_cast<double>(misses) /
                              static_cast<double>(accesses)
                        : 0.0;
    }
};

/** LRU set-associative cache over flat byte addresses. */
class CacheModel
{
  public:
    explicit CacheModel(const CacheConfig &config);

    /**
     * Demand access to @p address.
     * @return True on hit.
     */
    bool access(std::uint64_t address);

    /** Fill the line containing @p address without a demand access. */
    void prefetch(std::uint64_t address);

    /** True iff the line containing @p address is currently resident. */
    bool resident(std::uint64_t address) const;

    const CacheStats &stats() const { return statistics; }
    const CacheConfig &config() const { return geometry; }

    /** Invalidate everything and zero the statistics. */
    void reset();

  private:
    struct Line
    {
        std::uint64_t tag = 0;
        std::uint64_t lastUse = 0;
        bool valid = false;
        bool fromPrefetch = false;
    };

    std::uint64_t lineOf(std::uint64_t address) const;
    std::size_t setOf(std::uint64_t line) const;
    /** Lookup a line in its set; returns way index or ways() if absent. */
    unsigned find(std::size_t set, std::uint64_t line) const;
    /** Insert a line (evicting LRU); returns the way used. */
    unsigned insert(std::size_t set, std::uint64_t line, bool prefetch);

    CacheConfig geometry;
    std::size_t setCount;
    std::vector<Line> lines; // sets * ways, row-major by set
    std::uint64_t clock = 0;
    CacheStats statistics;
};

/**
 * Permutation-aware prefetcher: given the deterministic sample
 * permutation and the element layout, it runs @c distance samples ahead
 * of the demand stream and fills the lines those samples will touch —
 * the paper's "address computation unit coupled with the deterministic
 * tree or pseudo-random (e.g., LFSR) counters".
 */
class PermutationPrefetcher
{
  public:
    /**
     * @param cache        The cache to fill (not owned).
     * @param perm         The sampling permutation (not owned).
     * @param base_address Base address of the sampled array.
     * @param element_size Bytes per element.
     * @param distance     Samples of lookahead (>= 1).
     */
    PermutationPrefetcher(CacheModel &cache, const Permutation &perm,
                          std::uint64_t base_address,
                          std::size_t element_size, unsigned distance);

    /** Notify that the demand stream is at sample ordinal @p ordinal. */
    void onSample(std::uint64_t ordinal);

  private:
    CacheModel *cache;
    const Permutation *perm;
    std::uint64_t base;
    std::size_t elementSize;
    unsigned distance;
    std::uint64_t issuedUpTo = 0;
};

} // namespace anytime

#endif // ANYTIME_CACHESIM_CACHE_HPP
