#include "core/automaton.hpp"

#include <algorithm>
#include <map>
#include <set>

#include "core/worker_pool.hpp"
#include "obs/flight.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "support/error.hpp"

namespace anytime {

Automaton::~Automaton()
{
    shutdown();
}

void
Automaton::addStage(std::shared_ptr<Stage> stage, unsigned workers)
{
    fatalIf(startedFlag, "cannot add stages after start()");
    fatalIf(stage == nullptr, "addStage: null stage");
    fatalIf(workers == 0, "addStage: zero workers for stage ",
            stage->name());
    placements.push_back({std::move(stage), workers});
}

void
Automaton::validate() const
{
    // Property 2: at most one writer per buffer.
    std::map<const BufferBase *, const Stage *> writer_of;
    for (const auto &placement : placements) {
        const BufferBase *out = placement.stage->writes();
        if (out == nullptr)
            continue;
        const auto [it, inserted] =
            writer_of.emplace(out, placement.stage.get());
        fatalIf(!inserted, "buffer '", out->name(),
                "' has two writer stages: '", it->second->name(),
                "' and '", placement.stage->name(),
                "' (violates Property 2)");
    }

    // Read buffers must have a writer or an externally published value.
    for (const auto &placement : placements) {
        for (const BufferBase *in : placement.stage->reads()) {
            fatalIf(writer_of.find(in) == writer_of.end() &&
                        in->version() == 0,
                    "stage '", placement.stage->name(), "' reads buffer '",
                    in->name(),
                    "' which has no writer stage and no external input");
        }
    }

    // Acyclicity of the stage graph (edges: writer -> reader).
    std::map<const Stage *, std::vector<const Stage *>> successors;
    for (const auto &placement : placements) {
        for (const BufferBase *in : placement.stage->reads()) {
            const auto it = writer_of.find(in);
            if (it != writer_of.end())
                successors[it->second].push_back(placement.stage.get());
        }
    }
    // Iterative DFS with colors: 0 = white, 1 = gray, 2 = black.
    std::map<const Stage *, int> color;
    for (const auto &placement : placements) {
        const Stage *root = placement.stage.get();
        if (color[root] != 0)
            continue;
        std::vector<std::pair<const Stage *, std::size_t>> stack;
        stack.emplace_back(root, 0);
        color[root] = 1;
        while (!stack.empty()) {
            auto &[node, next] = stack.back();
            const auto &outs = successors[node];
            if (next < outs.size()) {
                const Stage *succ = outs[next++];
                fatalIf(color[succ] == 1,
                        "stage graph has a cycle through '",
                        succ->name(), "' (must be a DAG)");
                if (color[succ] == 0) {
                    color[succ] = 1;
                    stack.emplace_back(succ, 0);
                }
            } else {
                color[node] = 2;
                stack.pop_back();
            }
        }
    }
}

unsigned
Automaton::totalWorkers() const
{
    unsigned total = 0;
    for (const auto &placement : placements)
        total += placement.workers;
    return total;
}

void
Automaton::setDoneCallback(std::function<void()> callback)
{
    fatalIf(startedFlag, "setDoneCallback after start()");
    doneCallback = std::move(callback);
}

void
Automaton::setFaultPolicy(FaultPolicy fault_policy)
{
    fatalIf(startedFlag, "setFaultPolicy after start()");
    policy = fault_policy;
}

void
Automaton::setTraceId(std::uint64_t trace_id)
{
    fatalIf(startedFlag, "setTraceId after start()");
    traceIdValue = trace_id;
}

void
Automaton::beginRun()
{
    fatalIf(startedFlag, "automaton already started");
    fatalIf(placements.empty(), "automaton has no stages");
    validate();
    obs::traceInstant(
        "automaton.start", "automaton",
        {"stages", static_cast<double>(placements.size())},
        {"workers", static_cast<double>(totalWorkers())});
    startedFlag = true;
    stageStops.clear();
    stageStops.resize(placements.size());
    {
        MutexLock lock(doneMutex);
        activeWorkers = totalWorkers();
        runtimes.assign(placements.size(), StageRuntime{});
        for (std::size_t i = 0; i < placements.size(); ++i)
            runtimes[i].active = placements[i].workers;
    }
}

void
Automaton::stopAllStages()
{
    stopSource.request_stop();
    for (auto &source : stageStops)
        source.request_stop();
}

void
Automaton::handleStageFailure(std::size_t stage_index, Stage *stage,
                              const std::exception &error)
{
    {
        MutexLock lock(doneMutex);
        failureMessages.push_back(std::string("stage '") + stage->name() +
                                  "': " + error.what());
    }
    if (policy == FaultPolicy::stopAll) {
        // Historical behavior: a failing stage stops the whole
        // automaton; buffers keep their last valid versions.
        stopAllStages();
        gate.resume();
        return;
    }
    // Quarantine: stop only the failing stage. Its surviving workers
    // observe the per-stage stop at their next checkpoint/wait (the
    // pause gate wakes on the same token), drain, and the last one out
    // closes the stage's buffer in degraded mode.
    bool first = false;
    {
        MutexLock lock(doneMutex);
        if (!runtimes[stage_index].quarantined) {
            runtimes[stage_index].quarantined = true;
            first = true;
        }
    }
    stageStops[stage_index].request_stop();
    if (first) {
        static obs::Counter &quarantined = obs::defaultRegistry().counter(
            "anytime_stage_quarantined",
            "Stages quarantined after an uncontained stage-body fault");
        quarantined.add(1);
        obs::traceInstant("automaton.quarantine", "automaton");
        obs::flightRecorderTrigger("quarantine", 0, traceIdValue);
    }
}

void
Automaton::finalizeQuarantinedStage(Stage *stage)
{
    // Degradation contract: the stage's last published version (if
    // any) becomes its terminal output. The bound is conservative —
    // a quarantined stage promises validity, not a quality fraction.
    // The writes() pointer is const in the Stage interface because
    // readers must not publish; the containment path is the one
    // privileged writer-of-last-resort, hence the const_cast.
    auto *out = const_cast<BufferBase *>(stage->writes());
    if (out == nullptr)
        return;
    const bool empty = out->version() == 0;
    if (!out->final())
        out->markDegradedFinal(0.0);
    if (!empty)
        return;
    // Cascade: a terminal buffer with no version at all can never be
    // computed from — quarantine its readers too (transitively, via
    // their own drain path). Their stop tokens wake any blocking wait,
    // including the transform input signal, so nobody hangs on a value
    // that will never arrive.
    for (std::size_t i = 0; i < placements.size(); ++i) {
        const auto &reads = placements[i].stage->reads();
        if (std::find(reads.begin(), reads.end(), out) == reads.end())
            continue;
        bool fresh = false;
        {
            MutexLock lock(doneMutex);
            if (!runtimes[i].quarantined) {
                runtimes[i].quarantined = true;
                fresh = true;
            }
        }
        if (fresh)
            stageStops[i].request_stop();
    }
}

void
Automaton::workerMain(std::size_t stage_index, Stage *stage,
                      unsigned worker, unsigned count)
{
    // Stage contexts take the per-stage stop token so quarantine can
    // stop one stage without touching the others; stop() requests
    // every per-stage source, preserving the global-stop behavior.
    StageContext ctx(stageStops[stage_index].get_token(), gate,
                     stage->stats(), worker, count, stage->name());
    // Install the request's trace context for the whole worker body:
    // the stage span below, every publish/sweep instant the stage
    // emits, and the quarantine/failure events all stamp with it.
    obs::TraceContextScope trace_scope({traceIdValue, 0});
    {
        // One span per stage worker, from first instruction to exit;
        // the per-publish instants from this stage's output buffer
        // mark the iteration boundaries inside it.
        obs::TraceSpan span(stage->name(), "stage",
                            {"worker", static_cast<double>(worker)},
                            {"workers", static_cast<double>(count)});
        try {
            stage->run(ctx);
        } catch (const std::exception &error) {
            // A failing stage must not take the process down: record
            // the error and apply the fault policy (stop everything,
            // or quarantine just this stage).
            handleStageFailure(stage_index, stage, error);
        }
    }
    // Per-stage drain: the last worker out of a quarantined stage
    // closes its output buffer in degraded mode. This must happen
    // before the global decrement below — after it the automaton may
    // already be destroyed by a waiter.
    bool last_of_stage = false;
    bool was_quarantined = false;
    {
        MutexLock lock(doneMutex);
        last_of_stage = (--runtimes[stage_index].active == 0);
        was_quarantined = runtimes[stage_index].quarantined;
    }
    if (last_of_stage && was_quarantined)
        finalizeQuarantinedStage(stage);
    // The decrement/notify is the last touch of this automaton: once
    // activeWorkers hits zero a thread in waitUntilDone() may return
    // and destroy us, so notify under the lock and run the (copied)
    // done callback without dereferencing `this` again.
    std::function<void()> on_done;
    {
        MutexLock lock(doneMutex);
        if (--activeWorkers == 0)
            on_done = doneCallback;
        doneCv.notifyAll();
    }
    if (on_done)
        on_done();
}

void
Automaton::start()
{
    beginRun();
    for (std::size_t index = 0; index < placements.size(); ++index) {
        auto &placement = placements[index];
        for (unsigned worker = 0; worker < placement.workers; ++worker) {
            Stage *stage = placement.stage.get();
            const unsigned count = placement.workers;
            threads.emplace_back([this, index, stage, worker, count] {
                workerMain(index, stage, worker, count);
            });
        }
    }
}

void
Automaton::start(WorkerPool &pool)
{
    fatalIf(totalWorkers() > pool.size(), "automaton needs ",
            totalWorkers(), " workers but the pool only has ",
            pool.size());
    beginRun();
    borrowedWorkers = true;
    for (std::size_t index = 0; index < placements.size(); ++index) {
        auto &placement = placements[index];
        for (unsigned worker = 0; worker < placement.workers; ++worker) {
            Stage *stage = placement.stage.get();
            const unsigned count = placement.workers;
            pool.submit([this, index, stage, worker, count] {
                workerMain(index, stage, worker, count);
            });
        }
    }
}

void
Automaton::stop()
{
    obs::traceInstant("automaton.stop", "automaton");
    stopAllStages();
    // A paused automaton must still be stoppable: wake the gate.
    gate.resume();
}

void
Automaton::pause()
{
    gate.pause();
}

void
Automaton::resume()
{
    gate.resume();
}

bool
Automaton::waitUntilDone(std::optional<std::chrono::nanoseconds> timeout)
{
    MutexLock lock(doneMutex);
    const auto done = [&]() ANYTIME_REQUIRES(doneMutex) {
        return activeWorkers == 0;
    };
    if (timeout)
        return doneCv.waitFor(lock, *timeout, done);
    doneCv.wait(lock, done);
    return true;
}

void
Automaton::shutdown()
{
    if (!startedFlag)
        return;
    stop();
    // Borrowed pool workers cannot be joined; wait for each to pass its
    // final decrement instead (equivalent to joining for our purposes —
    // workerMain touches nothing of this automaton afterwards).
    if (borrowedWorkers)
        waitUntilDone();
    for (auto &thread : threads) {
        if (thread.joinable())
            thread.join();
    }
    threads.clear();
}

bool
Automaton::failed() const
{
    MutexLock lock(doneMutex);
    return !failureMessages.empty();
}

std::vector<std::string>
Automaton::failures() const
{
    MutexLock lock(doneMutex);
    return failureMessages;
}

bool
Automaton::complete() const
{
    // Complete means precise: every stage-written buffer holds its
    // final version and none was closed degraded.
    for (const auto &placement : placements) {
        const BufferBase *out = placement.stage->writes();
        if (out != nullptr && (!out->final() || out->degraded()))
            return false;
    }
    return true;
}

bool
Automaton::degraded() const
{
    for (const auto &placement : placements) {
        const BufferBase *out = placement.stage->writes();
        if (out != nullptr && out->degraded())
            return true;
    }
    MutexLock lock(doneMutex);
    for (const auto &runtime : runtimes) {
        if (runtime.quarantined)
            return true;
    }
    return false;
}

std::vector<std::string>
Automaton::quarantinedStages() const
{
    std::vector<std::string> names;
    MutexLock lock(doneMutex);
    for (std::size_t i = 0; i < runtimes.size(); ++i) {
        if (runtimes[i].quarantined)
            names.push_back(placements[i].stage->name());
    }
    return names;
}

} // namespace anytime
