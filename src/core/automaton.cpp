#include "core/automaton.hpp"

#include <algorithm>
#include <map>
#include <set>

#include "core/worker_pool.hpp"
#include "obs/trace.hpp"
#include "support/error.hpp"

namespace anytime {

Automaton::~Automaton()
{
    shutdown();
}

void
Automaton::addStage(std::shared_ptr<Stage> stage, unsigned workers)
{
    fatalIf(startedFlag, "cannot add stages after start()");
    fatalIf(stage == nullptr, "addStage: null stage");
    fatalIf(workers == 0, "addStage: zero workers for stage ",
            stage->name());
    placements.push_back({std::move(stage), workers});
}

void
Automaton::validate() const
{
    // Property 2: at most one writer per buffer.
    std::map<const BufferBase *, const Stage *> writer_of;
    for (const auto &placement : placements) {
        const BufferBase *out = placement.stage->writes();
        if (out == nullptr)
            continue;
        const auto [it, inserted] =
            writer_of.emplace(out, placement.stage.get());
        fatalIf(!inserted, "buffer '", out->name(),
                "' has two writer stages: '", it->second->name(),
                "' and '", placement.stage->name(),
                "' (violates Property 2)");
    }

    // Read buffers must have a writer or an externally published value.
    for (const auto &placement : placements) {
        for (const BufferBase *in : placement.stage->reads()) {
            fatalIf(writer_of.find(in) == writer_of.end() &&
                        in->version() == 0,
                    "stage '", placement.stage->name(), "' reads buffer '",
                    in->name(),
                    "' which has no writer stage and no external input");
        }
    }

    // Acyclicity of the stage graph (edges: writer -> reader).
    std::map<const Stage *, std::vector<const Stage *>> successors;
    for (const auto &placement : placements) {
        for (const BufferBase *in : placement.stage->reads()) {
            const auto it = writer_of.find(in);
            if (it != writer_of.end())
                successors[it->second].push_back(placement.stage.get());
        }
    }
    // Iterative DFS with colors: 0 = white, 1 = gray, 2 = black.
    std::map<const Stage *, int> color;
    for (const auto &placement : placements) {
        const Stage *root = placement.stage.get();
        if (color[root] != 0)
            continue;
        std::vector<std::pair<const Stage *, std::size_t>> stack;
        stack.emplace_back(root, 0);
        color[root] = 1;
        while (!stack.empty()) {
            auto &[node, next] = stack.back();
            const auto &outs = successors[node];
            if (next < outs.size()) {
                const Stage *succ = outs[next++];
                fatalIf(color[succ] == 1,
                        "stage graph has a cycle through '",
                        succ->name(), "' (must be a DAG)");
                if (color[succ] == 0) {
                    color[succ] = 1;
                    stack.emplace_back(succ, 0);
                }
            } else {
                color[node] = 2;
                stack.pop_back();
            }
        }
    }
}

unsigned
Automaton::totalWorkers() const
{
    unsigned total = 0;
    for (const auto &placement : placements)
        total += placement.workers;
    return total;
}

void
Automaton::setDoneCallback(std::function<void()> callback)
{
    fatalIf(startedFlag, "setDoneCallback after start()");
    doneCallback = std::move(callback);
}

void
Automaton::beginRun()
{
    fatalIf(startedFlag, "automaton already started");
    fatalIf(placements.empty(), "automaton has no stages");
    validate();
    obs::traceInstant(
        "automaton.start", "automaton",
        {"stages", static_cast<double>(placements.size())},
        {"workers", static_cast<double>(totalWorkers())});
    startedFlag = true;
    {
        MutexLock lock(doneMutex);
        activeWorkers = totalWorkers();
    }
}

void
Automaton::workerMain(Stage *stage, unsigned worker, unsigned count)
{
    StageContext ctx(stopSource.get_token(), gate, stage->stats(), worker,
                     count);
    // One span per stage worker, from first instruction to exit; the
    // per-publish instants from this stage's output buffer mark the
    // iteration boundaries inside it.
    obs::TraceSpan span(stage->name(), "stage",
                        {"worker", static_cast<double>(worker)},
                        {"workers", static_cast<double>(count)});
    try {
        stage->run(ctx);
    } catch (const std::exception &error) {
        // A failing stage must not take the process down: record the
        // error, stop the pipeline, and let the buffers keep their
        // last valid versions.
        {
            MutexLock lock(doneMutex);
            failureMessages.push_back(std::string("stage '") +
                                      stage->name() + "': " + error.what());
        }
        stopSource.request_stop();
        gate.resume();
    }
    // The decrement/notify is the last touch of this automaton: once
    // activeWorkers hits zero a thread in waitUntilDone() may return
    // and destroy us, so notify under the lock and run the (copied)
    // done callback without dereferencing `this` again.
    std::function<void()> on_done;
    {
        MutexLock lock(doneMutex);
        if (--activeWorkers == 0)
            on_done = doneCallback;
        doneCv.notifyAll();
    }
    if (on_done)
        on_done();
}

void
Automaton::start()
{
    beginRun();
    for (auto &placement : placements) {
        for (unsigned worker = 0; worker < placement.workers; ++worker) {
            Stage *stage = placement.stage.get();
            const unsigned count = placement.workers;
            threads.emplace_back([this, stage, worker, count] {
                workerMain(stage, worker, count);
            });
        }
    }
}

void
Automaton::start(WorkerPool &pool)
{
    fatalIf(totalWorkers() > pool.size(), "automaton needs ",
            totalWorkers(), " workers but the pool only has ",
            pool.size());
    beginRun();
    borrowedWorkers = true;
    for (auto &placement : placements) {
        for (unsigned worker = 0; worker < placement.workers; ++worker) {
            Stage *stage = placement.stage.get();
            const unsigned count = placement.workers;
            pool.submit([this, stage, worker, count] {
                workerMain(stage, worker, count);
            });
        }
    }
}

void
Automaton::stop()
{
    obs::traceInstant("automaton.stop", "automaton");
    stopSource.request_stop();
    // A paused automaton must still be stoppable: wake the gate.
    gate.resume();
}

void
Automaton::pause()
{
    gate.pause();
}

void
Automaton::resume()
{
    gate.resume();
}

bool
Automaton::waitUntilDone(std::optional<std::chrono::nanoseconds> timeout)
{
    MutexLock lock(doneMutex);
    const auto done = [&]() ANYTIME_REQUIRES(doneMutex) {
        return activeWorkers == 0;
    };
    if (timeout)
        return doneCv.waitFor(lock, *timeout, done);
    doneCv.wait(lock, done);
    return true;
}

void
Automaton::shutdown()
{
    if (!startedFlag)
        return;
    stop();
    // Borrowed pool workers cannot be joined; wait for each to pass its
    // final decrement instead (equivalent to joining for our purposes —
    // workerMain touches nothing of this automaton afterwards).
    if (borrowedWorkers)
        waitUntilDone();
    for (auto &thread : threads) {
        if (thread.joinable())
            thread.join();
    }
    threads.clear();
}

bool
Automaton::failed() const
{
    MutexLock lock(doneMutex);
    return !failureMessages.empty();
}

std::vector<std::string>
Automaton::failures() const
{
    MutexLock lock(doneMutex);
    return failureMessages;
}

bool
Automaton::complete() const
{
    for (const auto &placement : placements) {
        const BufferBase *out = placement.stage->writes();
        if (out != nullptr && !out->final())
            return false;
    }
    return true;
}

} // namespace anytime
