/**
 * @file
 * The Anytime Automaton (paper Section III).
 *
 * An Automaton owns a set of versioned buffers and a DAG of computation
 * stages, executes the stages as a parallel pipeline on dedicated worker
 * threads, and exposes the anytime controls: the automaton can be
 * stopped (or paused) at any moment while every output buffer retains a
 * valid approximate version, and if left alone it is guaranteed to reach
 * the precise output of every stage.
 *
 * Graph invariants checked at start():
 *  - every buffer has at most one writer stage (Property 2);
 *  - the stage graph induced by buffer read/write edges is acyclic;
 *  - every buffer read by a stage either has a writer or already holds
 *    a user-published (external input) version.
 */

#ifndef ANYTIME_CORE_AUTOMATON_HPP
#define ANYTIME_CORE_AUTOMATON_HPP

#include <chrono>
#include <cstdint>
#include <functional>
#include <memory>
#include <optional>
#include <stop_token>
#include <string>
#include <thread>
#include <vector>

#include "core/buffer.hpp"
#include "core/stage.hpp"
#include "support/sync.hpp"
#include "support/thread_annotations.hpp"

namespace anytime {

class WorkerPool;

/** Worker-thread allocation for one stage (pipeline scheduling knob). */
struct StagePlacement
{
    std::shared_ptr<Stage> stage;
    unsigned workers = 1;
};

/**
 * What the automaton does when a stage worker throws.
 *
 * stopAll (default, the historical behavior): the whole pipeline stops
 * cooperatively; every buffer keeps its last valid version, failed()
 * reports the error.
 *
 * quarantine (fault containment): only the throwing stage is stopped.
 * When its last worker has drained, its output buffer is closed in
 * *degraded* mode — the last published version becomes the stage's
 * terminal output, flagged with the degraded bit and a QoR bound — and
 * downstream stages run to completion on it, so the automaton still
 * terminates with a valid (degraded) output. Faults are involuntary
 * interruptions; the anytime model absorbs them.
 */
enum class FaultPolicy
{
    stopAll,
    quarantine,
};

/**
 * A parallel pipeline of anytime computation stages.
 */
class Automaton
{
  public:
    Automaton() = default;
    ~Automaton();

    Automaton(const Automaton &) = delete;
    Automaton &operator=(const Automaton &) = delete;

    /**
     * Create (and register) a versioned buffer owned by this automaton.
     *
     * @tparam T   Buffer value type.
     * @param name Buffer name for diagnostics.
     */
    template <typename T>
    std::shared_ptr<VersionedBuffer<T>>
    makeBuffer(std::string name)
    {
        auto buffer = std::make_shared<VersionedBuffer<T>>(std::move(name));
        buffers.push_back(buffer);
        return buffer;
    }

    /**
     * Add a stage to the pipeline.
     *
     * @param stage   The stage (automaton shares ownership).
     * @param workers Worker threads to dedicate to this stage (>= 1).
     */
    void addStage(std::shared_ptr<Stage> stage, unsigned workers = 1);

    /** Validate the graph and launch all stage worker threads. */
    void start();

    /**
     * Validate the graph and run every stage worker as a task on
     * @p pool instead of spawning dedicated threads. The pool must have
     * enough idle workers for the whole gang (see totalWorkers());
     * otherwise queued stage workers never start and upstream stages
     * can stall forever. The pool must outlive this automaton's
     * shutdown().
     */
    void start(WorkerPool &pool);

    /** Sum of the per-stage worker counts (the gang size start needs). */
    unsigned totalWorkers() const;

    /**
     * Register a callback fired exactly once, by the last worker to
     * finish, after all workers have decremented out (i.e., when
     * waitUntilDone() would return). Must be set before start(); the
     * callback must not touch this automaton (the owner may already be
     * inside waitUntilDone() and about to destroy it) — it is meant to
     * post a completion event to an external scheduler.
     */
    void setDoneCallback(std::function<void()> callback);

    /** Select the stage-failure policy. Must be set before start(). */
    void setFaultPolicy(FaultPolicy policy);

    /** The active stage-failure policy. */
    FaultPolicy faultPolicy() const { return policy; }

    /**
     * Stamp every span/instant this automaton's workers emit with a
     * request trace id (obs/trace.hpp), so the stage-level execution
     * stitches into the submitting request's cross-layer trace. Zero
     * (the default) leaves worker events unstamped. Must be set before
     * start().
     */
    void setTraceId(std::uint64_t trace_id);

    /** The trace id stamped on worker events (0 = none). */
    std::uint64_t traceId() const { return traceIdValue; }

    /**
     * Request cooperative stop; returns immediately. Safe to call on a
     * paused automaton: the pause gate is released so frozen workers
     * wake, observe the stop, and exit — waitUntilDone()/shutdown()
     * then join cleanly (no resume() required, no deadlock).
     */
    void stop();

    /** Freeze all stages at their next checkpoint. */
    void pause();

    /** Release paused stages. */
    void resume();

    /**
     * Block until every stage worker has finished (all precise outputs
     * published), or @p timeout elapses.
     *
     * @return True iff all workers finished within the timeout.
     */
    bool waitUntilDone(
        std::optional<std::chrono::nanoseconds> timeout = std::nullopt);

    /** Stop and join all worker threads (idempotent). */
    void shutdown();

    /** True after start() until shutdown()/destruction. */
    bool started() const { return startedFlag; }

    /** True once every stage-written buffer holds its final version. */
    bool complete() const;

    /** Stages in insertion order. */
    const std::vector<StagePlacement> &stages() const { return placements; }

    /** Buffers in creation order. */
    const std::vector<std::shared_ptr<BufferBase>> &
    allBuffers() const
    {
        return buffers;
    }

    /**
     * True if any stage worker terminated with an exception. Under
     * FaultPolicy::stopAll a failing stage stops the whole automaton
     * (its buffers keep their last valid version — the anytime
     * guarantee degrades gracefully); under FaultPolicy::quarantine
     * only the failing stage stops and the rest of the pipeline
     * finishes in degraded mode.
     */
    bool failed() const;

    /** Messages of the exceptions captured from failed stage workers. */
    std::vector<std::string> failures() const;

    /**
     * True once any stage output was degraded: a quarantined stage's
     * buffer was terminally closed on its last approximate version, or
     * a sweep gang lost a worker to the stall watchdog. A degraded
     * automaton still terminates with valid output in every buffer —
     * just not the precise one.
     */
    bool degraded() const;

    /** Names of the stages quarantined so far (insertion order). */
    std::vector<std::string> quarantinedStages() const;

  private:
    /** Throw FatalError if the graph violates the model invariants. */
    void validate() const;

    /** Common start(): validate, flip startedFlag, arm activeWorkers. */
    void beginRun();

    /** Body shared by owned threads and borrowed pool workers. */
    void workerMain(std::size_t stage_index, Stage *stage,
                    unsigned worker, unsigned count);

    /** Request stop on every stage (the stopAll path). */
    void stopAllStages();

    /** Record a stage-worker exception and apply the fault policy. */
    void handleStageFailure(std::size_t stage_index, Stage *stage,
                            const std::exception &error);

    /** Last worker of a quarantined stage: close its buffer degraded. */
    void finalizeQuarantinedStage(Stage *stage);

    /** Per-stage run state (parallel to placements, fixed at start). */
    struct StageRuntime
    {
        /** Workers of this stage still running. */
        unsigned active = 0;
        /** True once the fault policy quarantined this stage. */
        bool quarantined = false;
    };

    std::vector<std::shared_ptr<BufferBase>> buffers;
    std::vector<StagePlacement> placements;
    std::vector<std::jthread> threads;
    std::stop_source stopSource;
    PauseGate gate;
    bool startedFlag = false;
    bool borrowedWorkers = false;
    FaultPolicy policy = FaultPolicy::stopAll;
    std::uint64_t traceIdValue = 0;
    std::function<void()> doneCallback;

    mutable Mutex doneMutex;
    CondVar doneCv;
    unsigned activeWorkers ANYTIME_GUARDED_BY(doneMutex) = 0;
    std::vector<std::string>
        failureMessages ANYTIME_GUARDED_BY(doneMutex);
    /** One entry per placement; the vector shape is fixed by start(),
     *  only the entry fields are guarded. */
    std::vector<StageRuntime> runtimes ANYTIME_GUARDED_BY(doneMutex);
    /**
     * Per-stage stop sources (parallel to placements). The vector
     * shape is fixed by start() and std::stop_source is internally
     * synchronized, so these are accessed without doneMutex: stage
     * contexts take the per-stage token, stop() requests them all,
     * quarantine requests exactly one.
     */
    std::vector<std::stop_source> stageStops;
};

} // namespace anytime

#endif // ANYTIME_CORE_AUTOMATON_HPP
