/**
 * @file
 * The Anytime Automaton (paper Section III).
 *
 * An Automaton owns a set of versioned buffers and a DAG of computation
 * stages, executes the stages as a parallel pipeline on dedicated worker
 * threads, and exposes the anytime controls: the automaton can be
 * stopped (or paused) at any moment while every output buffer retains a
 * valid approximate version, and if left alone it is guaranteed to reach
 * the precise output of every stage.
 *
 * Graph invariants checked at start():
 *  - every buffer has at most one writer stage (Property 2);
 *  - the stage graph induced by buffer read/write edges is acyclic;
 *  - every buffer read by a stage either has a writer or already holds
 *    a user-published (external input) version.
 */

#ifndef ANYTIME_CORE_AUTOMATON_HPP
#define ANYTIME_CORE_AUTOMATON_HPP

#include <chrono>
#include <functional>
#include <memory>
#include <optional>
#include <stop_token>
#include <string>
#include <thread>
#include <vector>

#include "core/buffer.hpp"
#include "core/stage.hpp"
#include "support/sync.hpp"
#include "support/thread_annotations.hpp"

namespace anytime {

class WorkerPool;

/** Worker-thread allocation for one stage (pipeline scheduling knob). */
struct StagePlacement
{
    std::shared_ptr<Stage> stage;
    unsigned workers = 1;
};

/**
 * A parallel pipeline of anytime computation stages.
 */
class Automaton
{
  public:
    Automaton() = default;
    ~Automaton();

    Automaton(const Automaton &) = delete;
    Automaton &operator=(const Automaton &) = delete;

    /**
     * Create (and register) a versioned buffer owned by this automaton.
     *
     * @tparam T   Buffer value type.
     * @param name Buffer name for diagnostics.
     */
    template <typename T>
    std::shared_ptr<VersionedBuffer<T>>
    makeBuffer(std::string name)
    {
        auto buffer = std::make_shared<VersionedBuffer<T>>(std::move(name));
        buffers.push_back(buffer);
        return buffer;
    }

    /**
     * Add a stage to the pipeline.
     *
     * @param stage   The stage (automaton shares ownership).
     * @param workers Worker threads to dedicate to this stage (>= 1).
     */
    void addStage(std::shared_ptr<Stage> stage, unsigned workers = 1);

    /** Validate the graph and launch all stage worker threads. */
    void start();

    /**
     * Validate the graph and run every stage worker as a task on
     * @p pool instead of spawning dedicated threads. The pool must have
     * enough idle workers for the whole gang (see totalWorkers());
     * otherwise queued stage workers never start and upstream stages
     * can stall forever. The pool must outlive this automaton's
     * shutdown().
     */
    void start(WorkerPool &pool);

    /** Sum of the per-stage worker counts (the gang size start needs). */
    unsigned totalWorkers() const;

    /**
     * Register a callback fired exactly once, by the last worker to
     * finish, after all workers have decremented out (i.e., when
     * waitUntilDone() would return). Must be set before start(); the
     * callback must not touch this automaton (the owner may already be
     * inside waitUntilDone() and about to destroy it) — it is meant to
     * post a completion event to an external scheduler.
     */
    void setDoneCallback(std::function<void()> callback);

    /**
     * Request cooperative stop; returns immediately. Safe to call on a
     * paused automaton: the pause gate is released so frozen workers
     * wake, observe the stop, and exit — waitUntilDone()/shutdown()
     * then join cleanly (no resume() required, no deadlock).
     */
    void stop();

    /** Freeze all stages at their next checkpoint. */
    void pause();

    /** Release paused stages. */
    void resume();

    /**
     * Block until every stage worker has finished (all precise outputs
     * published), or @p timeout elapses.
     *
     * @return True iff all workers finished within the timeout.
     */
    bool waitUntilDone(
        std::optional<std::chrono::nanoseconds> timeout = std::nullopt);

    /** Stop and join all worker threads (idempotent). */
    void shutdown();

    /** True after start() until shutdown()/destruction. */
    bool started() const { return startedFlag; }

    /** True once every stage-written buffer holds its final version. */
    bool complete() const;

    /** Stages in insertion order. */
    const std::vector<StagePlacement> &stages() const { return placements; }

    /** Buffers in creation order. */
    const std::vector<std::shared_ptr<BufferBase>> &
    allBuffers() const
    {
        return buffers;
    }

    /**
     * True if any stage worker terminated with an exception. A failing
     * stage stops the whole automaton (its buffers keep their last
     * valid version — the anytime guarantee degrades gracefully).
     */
    bool failed() const;

    /** Messages of the exceptions captured from failed stage workers. */
    std::vector<std::string> failures() const;

  private:
    /** Throw FatalError if the graph violates the model invariants. */
    void validate() const;

    /** Common start(): validate, flip startedFlag, arm activeWorkers. */
    void beginRun();

    /** Body shared by owned threads and borrowed pool workers. */
    void workerMain(Stage *stage, unsigned worker, unsigned count);

    std::vector<std::shared_ptr<BufferBase>> buffers;
    std::vector<StagePlacement> placements;
    std::vector<std::jthread> threads;
    std::stop_source stopSource;
    PauseGate gate;
    bool startedFlag = false;
    bool borrowedWorkers = false;
    std::function<void()> doneCallback;

    mutable Mutex doneMutex;
    CondVar doneCv;
    unsigned activeWorkers ANYTIME_GUARDED_BY(doneMutex) = 0;
    std::vector<std::string>
        failureMessages ANYTIME_GUARDED_BY(doneMutex);
};

} // namespace anytime

#endif // ANYTIME_CORE_AUTOMATON_HPP
