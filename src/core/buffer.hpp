/**
 * @file
 * Versioned output buffers (paper Properties 2 and 3).
 *
 * Every anytime computation stage owns exactly one output buffer
 * (Property 2: no other stage may modify it) and writes each
 * intermediate output into it atomically (Property 3: consumers never
 * observe a torn version). A consumer reads "whichever output happens to
 * be in the buffer" — the essence of the asynchronous pipeline — via an
 * immutable snapshot that stays valid even while the producer publishes
 * newer versions.
 *
 * Implementation: the current version is a shared_ptr<const T> swapped
 * under a mutex; readers grab the pointer (O(1), never blocks the
 * producer for long) and keep the old version alive for as long as they
 * need it. A monotonically increasing version number and a `final` flag
 * let consumers detect progress and termination; a condition variable
 * supports blocking waits with cooperative stop.
 *
 * The locking discipline is annotated for Clang's thread-safety
 * analysis (see support/thread_annotations.hpp): all versioned state is
 * ANYTIME_GUARDED_BY(mutex) and publishes go through the single locked
 * publish path — the compile-time counterpart of Property 3.
 */

#ifndef ANYTIME_CORE_BUFFER_HPP
#define ANYTIME_CORE_BUFFER_HPP

#include <cstdint>
#include <functional>
#include <memory>
#include <stop_token>
#include <string>
#include <utility>
#include <vector>

#include "fault/corrupt.hpp"
#include "fault/fault.hpp"
#include "obs/trace.hpp"
#include "support/error.hpp"
#include "support/sync.hpp"
#include "support/thread_annotations.hpp"

namespace anytime {

/** Type-erased buffer interface for graph bookkeeping and stats. */
class BufferBase
{
  public:
    explicit BufferBase(std::string name) : bufferName(std::move(name)) {}
    virtual ~BufferBase() = default;

    BufferBase(const BufferBase &) = delete;
    BufferBase &operator=(const BufferBase &) = delete;

    /** Buffer name for diagnostics. */
    const std::string &name() const { return bufferName; }

    /** Number of versions published so far (0 = nothing yet). */
    virtual std::uint64_t version() const = 0;

    /** True once the precise (final) version has been published. */
    virtual bool final() const = 0;

    /** True once the buffer was degraded (terminal output is the last
     *  published approximate version, not the precise O_n). */
    virtual bool degraded() const = 0;

    /**
     * Containment hook: close this buffer in degraded mode. The last
     * published version (possibly none) becomes the terminal output;
     * waiters and observers are notified exactly as for a final
     * publish. @p qor_bound is the degradation contract carried to
     * readers: a lower bound on the fraction of full-quality work the
     * terminal snapshot represents (0 = validity only). Idempotent;
     * a no-op if the precise final version was already published.
     */
    virtual void markDegradedFinal(double qor_bound) = 0;

  private:
    std::string bufferName;
};

/**
 * One immutable published version of a buffer's contents.
 *
 * @tparam T Value type.
 */
template <typename T>
struct Snapshot
{
    /** The published value; null if nothing has been published yet. */
    std::shared_ptr<const T> value;
    /** Version number (1-based); 0 when value is null. */
    std::uint64_t version = 0;
    /** True iff this is the terminal version (precise or degraded). */
    bool final = false;
    /** True iff the producer was quarantined/expelled: `value` is the
     *  last good approximate version, not the precise output. */
    bool degraded = false;
    /** Lower bound on the fraction of full-quality work this version
     *  represents (1 = precise/undegraded path, 0 = validity only). */
    double qorBound = 1.0;

    /** True if any version is present. */
    explicit operator bool() const { return value != nullptr; }
};

/**
 * Single-writer, multi-reader versioned buffer.
 *
 * @tparam T Value type of the stage output.
 */
template <typename T>
class VersionedBuffer : public BufferBase
{
  public:
    using Observer =
        std::function<void(const Snapshot<T> &snapshot)>;

    explicit VersionedBuffer(std::string name)
        : BufferBase(std::move(name))
    {
    }

    /**
     * Publish a new version (Property 3: atomic with respect to
     * readers). Copies @p value into a fresh immutable snapshot.
     *
     * Every value that flows into a publish call must be computed
     * deterministically — the determinism pass in tools/anytime_verify
     * walks the call graph from publish[Shared] sites and flags PRNGs,
     * wall-clock reads, thread ids, and hash-order iteration anywhere
     * in the region that can feed a published version.
     *
     * @param value    The new output version O_i.
     * @param is_final True iff this is the precise output O_n.
     */
    void
    publish(const T &value, bool is_final)
    {
        publishShared(std::make_shared<const T>(value), is_final);
    }

    /** Publish by move (avoids one copy for large outputs). */
    void
    publish(T &&value, bool is_final)
    {
        publishShared(std::make_shared<const T>(std::move(value)),
                      is_final);
    }

    /** Publish an already-shared immutable value. */
    void
    publishShared(std::shared_ptr<const T> value, bool is_final)
    {
        panicIf(value == nullptr, "publishing null into buffer ", name());
        // Injection site `publish:<buffer>` (corrupt only): scramble
        // the copy being published, never the producer's internal
        // state, and only for approximate versions — the precise O_n
        // is exact by contract, and later clean versions stay
        // bit-identical to the fault-free run.
        if constexpr (std::is_copy_constructible_v<T>) {
            if (!is_final) {
                if (const std::uint64_t seed =
                        fault::publishCorruptSeed(name())) {
                    auto scrambled = std::make_shared<T>(*value);
                    fault::corruptValue(*scrambled, seed);
                    value = std::move(scrambled);
                }
            }
        }
        Snapshot<T> snapshot;
        std::shared_ptr<const std::vector<Observer>> watchers;
        {
            MutexLock lock(mutex);
            panicIf(finalSeen,
                    "buffer ", name(), ": publish after final version");
            current = std::move(value);
            ++versionCount;
            finalSeen = is_final;
            snapshot = snapshotLocked();
            watchers = observers;
        }
        changed.notifyAll();
        if (obs::tracingEnabled()) {
            // Single-writer buffer: only the producer thread touches
            // the cached interned name, so no synchronization needed.
            if (traceName == nullptr)
                traceName = obs::internName(name());
            obs::traceInstant(
                traceName, "publish",
                {"version", static_cast<double>(snapshot.version)},
                {"final", snapshot.final ? 1.0 : 0.0});
        }
        // Observers run outside the lock; they receive an immutable
        // snapshot so racing with the next publish is harmless. The
        // list itself is an immutable copy-on-write vector, so a
        // concurrent addObserver() never invalidates this walk.
        if (watchers != nullptr) {
            for (const auto &observer : *watchers)
                observer(snapshot);
        }
    }

    /** Latest snapshot (null value if nothing published yet). */
    Snapshot<T>
    read() const
    {
        MutexLock lock(mutex);
        return snapshotLocked();
    }

    /**
     * Block until a version newer than @p after_version is available,
     * the final version has been published, or @p stop is requested.
     *
     * @return The latest snapshot at wake-up (may be unchanged if the
     *         wait was cancelled by @p stop).
     */
    Snapshot<T>
    waitNewer(std::uint64_t after_version, std::stop_token stop) const
    {
        MutexLock lock(mutex);
        changed.wait(lock, stop, [&]() ANYTIME_REQUIRES(mutex) {
            return versionCount > after_version || finalSeen;
        });
        return snapshotLocked();
    }

    /**
     * Containment hook (sticky): mark this buffer degraded. Every
     * snapshot from now on carries the degraded bit and the minimum
     * of the bounds supplied; the buffer stays open, so the producer
     * keeps publishing (e.g. a sweep gang running on after a worker
     * expulsion). Safe from any thread.
     */
    void
    markDegraded(double qor_bound)
    {
        MutexLock lock(mutex);
        degradedFlag = true;
        if (qor_bound < qorBoundValue)
            qorBoundValue = qor_bound;
    }

    void
    markDegradedFinal(double qor_bound) override
    {
        {
            MutexLock lock(mutex);
            if (finalSeen)
                return; // the precise output won the race; keep it
            degradedFlag = true;
            if (qor_bound < qorBoundValue)
                qorBoundValue = qor_bound;
            finalSeen = true;
        }
        // Wake readers exactly as a final publish would; they observe
        // the last published version (possibly none) as terminal.
        changed.notifyAll();
        Snapshot<T> snapshot;
        std::shared_ptr<const std::vector<Observer>> watchers;
        {
            MutexLock lock(mutex);
            snapshot = snapshotLocked();
            watchers = observers;
        }
        if (watchers != nullptr && snapshot.value != nullptr) {
            for (const auto &observer : *watchers)
                observer(snapshot);
        }
    }

    /**
     * Register an observer invoked after every publish (used by the
     * profiling harness to timestamp versions). Thread-safe at any
     * time (copy-on-write list): an observer registered while the
     * producer is publishing starts receiving callbacks from the next
     * publish after registration.
     */
    void
    addObserver(Observer observer)
    {
        MutexLock lock(mutex);
        auto grown = observers != nullptr
                         ? std::make_shared<std::vector<Observer>>(
                               *observers)
                         : std::make_shared<std::vector<Observer>>();
        grown->push_back(std::move(observer));
        observers = std::move(grown);
    }

    std::uint64_t
    version() const override
    {
        MutexLock lock(mutex);
        return versionCount;
    }

    bool
    final() const override
    {
        MutexLock lock(mutex);
        return finalSeen;
    }

    bool
    degraded() const override
    {
        MutexLock lock(mutex);
        return degradedFlag;
    }

    /** Current QoR lower bound (1 until degraded). */
    double
    qorBound() const
    {
        MutexLock lock(mutex);
        return qorBoundValue;
    }

  private:
    Snapshot<T>
    snapshotLocked() const ANYTIME_REQUIRES(mutex)
    {
        return Snapshot<T>{current, versionCount, finalSeen,
                           degradedFlag, qorBoundValue};
    }

    mutable Mutex mutex;
    mutable CondVar changed;
    std::shared_ptr<const T> current ANYTIME_GUARDED_BY(mutex);
    std::uint64_t versionCount ANYTIME_GUARDED_BY(mutex) = 0;
    bool finalSeen ANYTIME_GUARDED_BY(mutex) = false;
    bool degradedFlag ANYTIME_GUARDED_BY(mutex) = false;
    double qorBoundValue ANYTIME_GUARDED_BY(mutex) = 1.0;
    /** Immutable snapshot list, swapped whole on registration. */
    std::shared_ptr<const std::vector<Observer>>
        observers ANYTIME_GUARDED_BY(mutex);
    /** Interned buffer name for publish trace events (producer-only). */
    const char *traceName = nullptr;
};

} // namespace anytime

#endif // ANYTIME_CORE_BUFFER_HPP
