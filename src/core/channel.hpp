/**
 * @file
 * Synchronous pipeline machinery (paper Section III-C2).
 *
 * When a diffusive parent's updates X_1..X_n feed a child g that is
 * *distributive* over the parent's update operator, streaming the
 * updates avoids the redundant work of recomputing g on every full
 * output version. Unlike the asynchronous pipeline, every update must be
 * delivered exactly once — "f and gS must synchronize such that f does
 * not overwrite X_i with X_{i+1} before gS(X_i) begins executing" — so
 * the parent and child communicate through a bounded blocking queue.
 *
 * UpdateChannel is a small single-producer single-consumer bounded
 * queue with close semantics and cooperative-stop-aware blocking.
 */

#ifndef ANYTIME_CORE_CHANNEL_HPP
#define ANYTIME_CORE_CHANNEL_HPP

#include <condition_variable>
#include <cstdint>
#include <deque>
#include <mutex>
#include <optional>
#include <stop_token>

#include "support/error.hpp"

namespace anytime {

/**
 * Bounded blocking SPSC queue carrying diffusive updates X_i.
 *
 * @tparam X Update value type.
 */
template <typename X>
class UpdateChannel
{
  public:
    /**
     * @param capacity Maximum in-flight updates; 1 reproduces the
     *                 paper's strict "don't overwrite X_i before
     *                 gS(X_i) starts" synchronization, larger values
     *                 trade buffer space for pipeline slack.
     */
    explicit UpdateChannel(std::size_t capacity = 1)
        : capacity(capacity)
    {
        fatalIf(capacity == 0, "UpdateChannel: zero capacity");
    }

    /**
     * Block until there is room, then enqueue @p update.
     * @return False iff @p stop was requested (update not enqueued).
     */
    bool
    push(X update, std::stop_token stop)
    {
        std::unique_lock lock(mutex);
        panicIf(closedFlag, "push into closed UpdateChannel");
        notFull.wait(lock, stop,
                     [&] { return queue.size() < capacity; });
        if (stop.stop_requested())
            return false;
        queue.push_back(std::move(update));
        ++pushed;
        lock.unlock();
        notEmpty.notify_all();
        return true;
    }

    /**
     * Block until an update is available, the channel is closed and
     * drained, or @p stop is requested.
     * @return The update, or nullopt on close/stop.
     */
    std::optional<X>
    pop(std::stop_token stop)
    {
        std::unique_lock lock(mutex);
        notEmpty.wait(lock, stop,
                      [&] { return !queue.empty() || closedFlag; });
        if (queue.empty())
            return std::nullopt; // closed-and-drained or stopped
        X update = std::move(queue.front());
        queue.pop_front();
        ++popped;
        lock.unlock();
        notFull.notify_all();
        return update;
    }

    /** Producer is done: wakes the consumer once the queue drains. */
    void
    close()
    {
        {
            std::lock_guard lock(mutex);
            closedFlag = true;
        }
        notEmpty.notify_all();
    }

    /** True once close() has been called. */
    bool
    closed() const
    {
        std::lock_guard lock(mutex);
        return closedFlag;
    }

    /** Total updates pushed (for tests and stats). */
    std::uint64_t
    pushCount() const
    {
        std::lock_guard lock(mutex);
        return pushed;
    }

    /** Total updates popped. */
    std::uint64_t
    popCount() const
    {
        std::lock_guard lock(mutex);
        return popped;
    }

  private:
    mutable std::mutex mutex;
    std::condition_variable_any notFull;
    std::condition_variable_any notEmpty;
    std::deque<X> queue;
    std::size_t capacity;
    bool closedFlag = false;
    std::uint64_t pushed = 0;
    std::uint64_t popped = 0;
};

} // namespace anytime

#endif // ANYTIME_CORE_CHANNEL_HPP
