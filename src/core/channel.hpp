/**
 * @file
 * Synchronous pipeline machinery (paper Section III-C2).
 *
 * When a diffusive parent's updates X_1..X_n feed a child g that is
 * *distributive* over the parent's update operator, streaming the
 * updates avoids the redundant work of recomputing g on every full
 * output version. Unlike the asynchronous pipeline, every update must be
 * delivered exactly once — "f and gS must synchronize such that f does
 * not overwrite X_i with X_{i+1} before gS(X_i) begins executing" — so
 * the parent and child communicate through a bounded blocking queue.
 *
 * UpdateChannel is a small single-producer single-consumer bounded
 * queue with close semantics and cooperative-stop-aware blocking.
 */

#ifndef ANYTIME_CORE_CHANNEL_HPP
#define ANYTIME_CORE_CHANNEL_HPP

#include <cstdint>
#include <deque>
#include <optional>
#include <stop_token>

#include "support/error.hpp"
#include "support/sync.hpp"
#include "support/thread_annotations.hpp"

namespace anytime {

/**
 * Bounded blocking SPSC queue carrying diffusive updates X_i.
 *
 * @tparam X Update value type.
 */
template <typename X>
class UpdateChannel
{
  public:
    /**
     * @param capacity Maximum in-flight updates; 1 reproduces the
     *                 paper's strict "don't overwrite X_i before
     *                 gS(X_i) starts" synchronization, larger values
     *                 trade buffer space for pipeline slack.
     */
    explicit UpdateChannel(std::size_t capacity = 1)
        : capacity(capacity)
    {
        fatalIf(capacity == 0, "UpdateChannel: zero capacity");
    }

    /**
     * Block until there is room, then enqueue @p update.
     * @return False iff @p stop was requested (update not enqueued).
     */
    bool
    push(X update, std::stop_token stop)
    {
        MutexLock lock(mutex);
        panicIf(closedFlag, "push into closed UpdateChannel");
        notFull.wait(lock, stop, [&]() ANYTIME_REQUIRES(mutex) {
            return queue.size() < capacity;
        });
        if (stop.stop_requested())
            return false;
        queue.push_back(std::move(update));
        ++pushed;
        lock.unlock();
        notEmpty.notifyAll();
        return true;
    }

    /**
     * Block until an update is available, the channel is closed and
     * drained, or @p stop is requested.
     * @return The update, or nullopt on close/stop.
     */
    std::optional<X>
    pop(std::stop_token stop)
    {
        MutexLock lock(mutex);
        notEmpty.wait(lock, stop, [&]() ANYTIME_REQUIRES(mutex) {
            return !queue.empty() || closedFlag;
        });
        if (queue.empty())
            return std::nullopt; // closed-and-drained or stopped
        X update = std::move(queue.front());
        queue.pop_front();
        ++popped;
        lock.unlock();
        notFull.notifyAll();
        return update;
    }

    /** Producer is done: wakes the consumer once the queue drains. */
    void
    close()
    {
        {
            MutexLock lock(mutex);
            closedFlag = true;
        }
        notEmpty.notifyAll();
    }

    /** True once close() has been called. */
    bool
    closed() const
    {
        MutexLock lock(mutex);
        return closedFlag;
    }

    /** Total updates pushed (for tests and stats). */
    std::uint64_t
    pushCount() const
    {
        MutexLock lock(mutex);
        return pushed;
    }

    /** Total updates popped. */
    std::uint64_t
    popCount() const
    {
        MutexLock lock(mutex);
        return popped;
    }

  private:
    mutable Mutex mutex;
    CondVar notFull;
    CondVar notEmpty;
    std::deque<X> queue ANYTIME_GUARDED_BY(mutex);
    std::size_t capacity;
    bool closedFlag ANYTIME_GUARDED_BY(mutex) = false;
    std::uint64_t pushed ANYTIME_GUARDED_BY(mutex) = 0;
    std::uint64_t popped ANYTIME_GUARDED_BY(mutex) = 0;
};

} // namespace anytime

#endif // ANYTIME_CORE_CHANNEL_HPP
