/**
 * @file
 * Contract-anytime planning (paper Section II-B background).
 *
 * Anytime algorithms come in two flavors: *interruptible* (this
 * library's automata — stoppable at any instant) and *contract*
 * (given a deadline up front, schedule computations to make the best
 * use of it). A contract plan is easily derived from an interruptible
 * automaton: measure (or model) the cumulative latency of each version
 * and pick the deepest accuracy level whose cumulative latency fits the
 * deadline. ContractPlanner implements that selection over a measured
 * latency/quality table, which the harness produces from profiling
 * runs.
 */

#ifndef ANYTIME_CORE_CONTRACT_HPP
#define ANYTIME_CORE_CONTRACT_HPP

#include <optional>
#include <vector>

#include "support/error.hpp"

namespace anytime {

/** One attainable operating point of an automaton. */
struct ContractPoint
{
    /** Cumulative seconds from start until this version is available. */
    double seconds = 0.0;
    /** Quality of this version (any monotone metric, e.g., SNR dB). */
    double quality = 0.0;
    /** True iff this is the precise output. */
    bool precise = false;
};

/**
 * Selects operating points under deadlines from a profiled
 * runtime-quality table.
 */
class ContractPlanner
{
  public:
    /**
     * @param points Operating points sorted by ascending seconds (as a
     *               profiling run naturally produces). Validated.
     */
    explicit ContractPlanner(std::vector<ContractPoint> points_in)
        : points(std::move(points_in))
    {
        fatalIf(points.empty(), "ContractPlanner: no operating points");
        for (std::size_t i = 1; i < points.size(); ++i) {
            fatalIf(points[i].seconds < points[i - 1].seconds,
                    "ContractPlanner: points must be time-sorted");
        }
    }

    /**
     * Best operating point reachable within @p deadline_seconds, or
     * nullopt if even the first version does not fit (the caller must
     * then either extend the deadline or accept no output).
     */
    std::optional<ContractPoint>
    best(double deadline_seconds) const
    {
        std::optional<ContractPoint> chosen;
        for (const ContractPoint &point : points) {
            if (point.seconds > deadline_seconds)
                break;
            if (!chosen || point.quality >= chosen->quality)
                chosen = point;
        }
        return chosen;
    }

    /**
     * Minimum deadline that guarantees at least @p quality, or nullopt
     * if no profiled point reaches it.
     */
    std::optional<double>
    deadlineFor(double quality) const
    {
        for (const ContractPoint &point : points) {
            if (point.quality >= quality)
                return point.seconds;
        }
        return std::nullopt;
    }

    /** Seconds to the precise output, if the profile reached it. */
    std::optional<double>
    preciseDeadline() const
    {
        for (const ContractPoint &point : points) {
            if (point.precise)
                return point.seconds;
        }
        return std::nullopt;
    }

    /** The underlying table. */
    const std::vector<ContractPoint> &table() const { return points; }

  private:
    std::vector<ContractPoint> points;
};

} // namespace anytime

#endif // ANYTIME_CORE_CONTRACT_HPP
