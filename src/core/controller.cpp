#include "core/controller.hpp"

#include "support/stopwatch.hpp"

namespace anytime {

RunOutcome
runWithTimeBudget(Automaton &automaton, std::chrono::nanoseconds budget)
{
    Stopwatch watch;
    automaton.start();
    const bool done = automaton.waitUntilDone(budget);
    if (!done)
        automaton.stop();
    automaton.shutdown();
    return RunOutcome{automaton.complete(), watch.seconds()};
}

RunOutcome
runUntilAcceptable(Automaton &automaton,
                   const std::function<bool()> &acceptable,
                   std::chrono::nanoseconds poll)
{
    Stopwatch watch;
    automaton.start();
    try {
        for (;;) {
            // Evaluate the predicate before sleeping so a condition
            // that is already satisfied (even before the first output)
            // stops the run after at most one poll interval has been
            // spent computing, not after it.
            if (acceptable()) {
                automaton.stop();
                break;
            }
            // waitUntilDone wakes on completion, so an automaton that
            // finishes between polls does not wait out the interval.
            if (automaton.waitUntilDone(poll))
                break;
        }
    } catch (...) {
        // A throwing predicate must not leak a running automaton: stop
        // and join, then let the caller see the exception. The buffers
        // keep their last valid versions (anytime guarantee).
        automaton.shutdown();
        throw;
    }
    automaton.shutdown();
    return RunOutcome{automaton.complete(), watch.seconds()};
}

RunOutcome
runToCompletion(Automaton &automaton)
{
    Stopwatch watch;
    automaton.start();
    automaton.waitUntilDone();
    automaton.shutdown();
    return RunOutcome{automaton.complete(), watch.seconds()};
}

} // namespace anytime
