#include "core/controller.hpp"

#include "support/stopwatch.hpp"

namespace anytime {

RunOutcome
runWithTimeBudget(Automaton &automaton, std::chrono::nanoseconds budget)
{
    Stopwatch watch;
    automaton.start();
    const bool done = automaton.waitUntilDone(budget);
    if (!done)
        automaton.stop();
    automaton.shutdown();
    return RunOutcome{automaton.complete(), watch.seconds()};
}

RunOutcome
runUntilAcceptable(Automaton &automaton,
                   const std::function<bool()> &acceptable,
                   std::chrono::nanoseconds poll)
{
    Stopwatch watch;
    automaton.start();
    for (;;) {
        if (automaton.waitUntilDone(poll))
            break;
        if (acceptable()) {
            automaton.stop();
            break;
        }
    }
    automaton.shutdown();
    return RunOutcome{automaton.complete(), watch.seconds()};
}

RunOutcome
runToCompletion(Automaton &automaton)
{
    Stopwatch watch;
    automaton.start();
    automaton.waitUntilDone();
    automaton.shutdown();
    return RunOutcome{automaton.complete(), watch.seconds()};
}

} // namespace anytime
