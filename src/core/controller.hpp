/**
 * @file
 * Run controllers: the "decision of stopping" policies.
 *
 * Paper Section III-A: "The decision of stopping can either be automated
 * via dynamic accuracy metrics, user-specified or enforced by
 * time/energy constraints." These helpers implement the three families
 * on top of Automaton's stop()/pause() controls:
 *
 *  - runWithTimeBudget: hard wall-clock (real-time) constraint;
 *  - runUntilAcceptable: dynamic accuracy metric evaluated on the whole
 *    application output (the early-availability property makes this
 *    meaningful, unlike per-segment metrics);
 *  - runToCompletion: let the automaton reach the precise output.
 */

#ifndef ANYTIME_CORE_CONTROLLER_HPP
#define ANYTIME_CORE_CONTROLLER_HPP

#include <chrono>
#include <functional>

#include "core/automaton.hpp"
#include "core/buffer.hpp"

namespace anytime {

/** Outcome of a controlled run. */
struct RunOutcome
{
    /** True iff every stage published its precise output. */
    bool reachedPrecise = false;
    /** Wall-clock seconds from start() to stop/completion. */
    double seconds = 0.0;
};

/**
 * Start @p automaton and let it run until done or until @p budget
 * elapses, then stop and join it. The output buffers retain the most
 * accurate versions published within the budget.
 */
RunOutcome runWithTimeBudget(Automaton &automaton,
                             std::chrono::nanoseconds budget);

/**
 * Start @p automaton and poll @p acceptable every @p poll interval,
 * stopping as soon as it returns true (or the automaton completes).
 * The predicate should inspect the sink buffer's latest snapshot —
 * i.e., a dynamic accuracy metric on the whole application output.
 */
RunOutcome runUntilAcceptable(Automaton &automaton,
                              const std::function<bool()> &acceptable,
                              std::chrono::nanoseconds poll);

/** Start @p automaton and wait for the precise output of every stage. */
RunOutcome runToCompletion(Automaton &automaton);

} // namespace anytime

#endif // ANYTIME_CORE_CONTROLLER_HPP
