/**
 * @file
 * Work-proportional energy accounting ("hold-the-power-button
 * computing").
 *
 * The paper's thesis is that the acceptability of the output should
 * directly govern the time AND energy expended. Real energy needs
 * hardware counters; as a substitute this model charges each stage a
 * configurable cost per work unit (StageContext::addWork) plus a static
 * per-second cost per worker thread, which is enough to reproduce the
 * qualitative energy-accuracy tradeoffs (e.g., stopping a diffusive
 * sweep at 25% of samples spends ~25% of its dynamic energy).
 */

#ifndef ANYTIME_CORE_ENERGY_HPP
#define ANYTIME_CORE_ENERGY_HPP

#include <map>
#include <string>

#include "core/automaton.hpp"

namespace anytime {

/** Energy cost coefficients for one stage. */
struct StageEnergyCost
{
    /** Dynamic energy per recorded work unit (nanojoules). */
    double nanojoulesPerStep = 1.0;
    /** Static (leakage/idle) power per worker thread (milliwatts). */
    double milliwattsStatic = 0.0;
};

/** Per-stage and total energy estimate for one automaton run. */
struct EnergyReport
{
    std::map<std::string, double> dynamicNanojoules;
    double totalDynamicNanojoules = 0.0;
    double totalStaticNanojoules = 0.0;

    double
    totalNanojoules() const
    {
        return totalDynamicNanojoules + totalStaticNanojoules;
    }
};

/**
 * Simple energy model: per-stage dynamic cost plus static cost
 * proportional to run time and worker count.
 */
class EnergyModel
{
  public:
    /** Default coefficients applied to stages without an override. */
    explicit EnergyModel(StageEnergyCost default_cost = {})
        : defaultCost(default_cost)
    {
    }

    /** Override the cost of the stage named @p stage. */
    void
    setStageCost(const std::string &stage, StageEnergyCost cost)
    {
        overrides[stage] = cost;
    }

    /**
     * Estimate the energy spent by @p automaton so far.
     *
     * @param automaton     The (started or finished) automaton.
     * @param elapsed_seconds Wall-clock runtime charged for static power.
     */
    EnergyReport
    estimate(const Automaton &automaton, double elapsed_seconds) const
    {
        EnergyReport report;
        for (const auto &placement : automaton.stages()) {
            const std::string &name = placement.stage->name();
            const auto it = overrides.find(name);
            const StageEnergyCost &cost =
                (it != overrides.end()) ? it->second : defaultCost;

            const double steps = static_cast<double>(
                placement.stage->stats().steps.load());
            const double dynamic = steps * cost.nanojoulesPerStep;
            report.dynamicNanojoules[name] = dynamic;
            report.totalDynamicNanojoules += dynamic;
            // mW * s = mJ = 1e6 nJ.
            report.totalStaticNanojoules += cost.milliwattsStatic *
                                            placement.workers *
                                            elapsed_seconds * 1e6;
        }
        return report;
    }

  private:
    StageEnergyCost defaultCost;
    std::map<std::string, StageEnergyCost> overrides;
};

} // namespace anytime

#endif // ANYTIME_CORE_ENERGY_HPP
