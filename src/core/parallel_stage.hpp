/**
 * @file
 * Intra-stage data parallelism: partitioned anytime sweeps.
 *
 * Paper Section IV-C1: a diffusive sweep's permutation sequence can be
 * divided among worker threads — cyclically for the tree permutation
 * (so low-resolution whole-output versions still complete as early as
 * possible), cyclically or in blocks for the LFSR — while keeping the
 * anytime property. This file supplies the pieces the stages build on:
 *
 *  - SweepBarrier: a reusable per-version completion barrier. The last
 *    worker to arrive is elected leader and merges the partials while
 *    the rest block; a version is published only after every partition
 *    has drained its slice of the window (Property 3 is preserved: the
 *    buffer's single writer is the momentary leader, and publishes stay
 *    atomic).
 *  - runPartitionedSweep(): the window loop shared by the partitioned
 *    source and transform stages. Each publish period ("window") is
 *    sliced with a CyclicPartition/BlockPartition, each worker folds
 *    its slice into a private partial, and the leader merges partials
 *    in fixed partition order — so the published version sequence is
 *    bit-identical to a single-worker run, for every version.
 *  - PartitionedDiffusiveStage: the multi-worker counterpart of
 *    DiffusiveSourceStage (which serializes its state updates under a
 *    mutex and therefore cannot scale).
 *
 * All blocking waits take the automaton's stop token, so stop/pause
 * never deadlocks a gang: a worker that exits early leaves the barrier,
 * and departing workers promote any fully-arrived remainder so nobody
 * waits for a leader that will never come.
 */

#ifndef ANYTIME_CORE_PARALLEL_STAGE_HPP
#define ANYTIME_CORE_PARALLEL_STAGE_HPP

#include <algorithm>
#include <chrono>
#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <optional>
#include <stop_token>
#include <string>
#include <utility>
#include <vector>

#include "core/buffer.hpp"
#include "core/stage.hpp"
#include "fault/fault.hpp"
#include "obs/flight.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "sampling/partition.hpp"
#include "sampling/permutation.hpp"
#include "support/error.hpp"
#include "support/sync.hpp"
#include "support/thread_annotations.hpp"

namespace anytime {

/**
 * Reusable completion barrier for one gang of stage workers, with an
 * optional stall watchdog.
 *
 * Protocol per window: every worker calls arrive(id, stop); the last
 * arriver returns Outcome::leader *without* blocking, merges the
 * partials, and calls release() to wake the rest (who return
 * Outcome::released). A worker exiting the gang for good calls
 * leave(id); arrive() returning Outcome::stopped has already retracted
 * the arrival, so the caller only needs leave(id) before returning.
 *
 * Watchdog (fault containment): when arrive() is given a nonzero
 * stall timeout and the barrier is still incomplete after it expires,
 * the timed-out waiter *expels* every worker that has not arrived —
 * removing it from the gang exactly as leave() would — and, now being
 * the last arriver, becomes leader so the window completes without
 * the stalled workers. An expelled worker's next arrive()/leave()
 * returns Outcome::expelled / does nothing: it must exit its sweep
 * without touching the gang again. The watchdog never fires while a
 * leader is mid-merge (the barrier must stay closed), and a worker
 * id can only be expelled while it is absent, so the expelled
 * worker's partial is simply excluded from this and later merges.
 */
class SweepBarrier
{
  public:
    enum class Outcome
    {
        /** Last to arrive: merge, then call release(). */
        leader,
        /** Woken by the leader's release(). */
        released,
        /** Woken by a stop request; arrival already retracted. */
        stopped,
        /** This worker was expelled by the watchdog; exit the sweep
         *  without calling leave(). */
        expelled,
    };

    explicit SweepBarrier(unsigned count)
        : participants(count), activeFlags(count, 1), arrivedFlags(count, 0)
    {
        fatalIf(count == 0, "SweepBarrier: zero participants");
    }

    /**
     * Rendezvous; blocks until leader release, stop, or — with a
     * nonzero @p stall_timeout — watchdog expulsion of the laggards.
     */
    Outcome
    arrive(unsigned worker, const std::stop_token &stop,
           std::chrono::nanoseconds stall_timeout =
               std::chrono::nanoseconds::zero())
    {
        MutexLock lock(mutex);
        panicIf(worker >= arrivedFlags.size(),
                "SweepBarrier: worker id out of range");
        if (!activeFlags[worker])
            return Outcome::expelled;
        arrivedFlags[worker] = 1;
        if (++arrivedCount == participants) {
            leaderActive = true;
            return Outcome::leader;
        }
        const std::uint64_t my_generation = generation;
        const auto opened = [&]() ANYTIME_REQUIRES(mutex) {
            return generation != my_generation;
        };
        bool released;
        if (stall_timeout <= std::chrono::nanoseconds::zero()) {
            released = wake.wait(lock, stop, opened);
        } else {
            for (;;) {
                const auto deadline =
                    std::chrono::steady_clock::now() + stall_timeout;
                released = wake.waitUntil(lock, stop, deadline, opened);
                if (released || stop.stop_requested())
                    break;
                if (!activeFlags[worker])
                    break; // expelled while waiting (spurious path)
                // Timed out. Never expel under an active leader: the
                // barrier must stay closed during its merge.
                if (leaderActive)
                    continue;
                expelAbsentLocked();
                if (arrivedCount == participants) {
                    leaderActive = true;
                    return Outcome::leader;
                }
            }
        }
        if (!activeFlags[worker]) {
            // Raced with an expulsion of this very worker: it was not
            // absent (we arrived), so this only happens when a stop
            // retracted us first; treat as expelled to be safe.
            return Outcome::expelled;
        }
        if (!released) {
            // Stop while waiting: retract so a later leader election
            // among the survivors still counts correctly.
            arrivedFlags[worker] = 0;
            --arrivedCount;
            return Outcome::stopped;
        }
        return Outcome::released;
    }

    /** Leader: open the barrier for the next window. */
    void
    release() noexcept
    {
        {
            MutexLock lock(mutex);
            leaderActive = false;
            arrivedCount = 0;
            std::fill(arrivedFlags.begin(), arrivedFlags.end(), 0);
            ++generation;
        }
        wake.notifyAll();
    }

    /**
     * Permanently exit the gang (stop path). If every remaining worker
     * is already blocked in arrive(), no future arrival can elect a
     * leader — promote them by opening the barrier; they observe the
     * stop themselves at their next checkpoint. A no-op for workers
     * the watchdog already expelled.
     */
    void
    leave(unsigned worker)
    {
        MutexLock lock(mutex);
        panicIf(worker >= arrivedFlags.size(),
                "SweepBarrier: worker id out of range");
        if (!activeFlags[worker])
            return; // already expelled; the watchdog did the bookkeeping
        activeFlags[worker] = 0;
        panicIf(participants == 0, "SweepBarrier: leave with no "
                                   "participants");
        --participants;
        if (arrivedFlags[worker]) {
            arrivedFlags[worker] = 0;
            --arrivedCount;
        }
        // While an elected leader is merging outside the lock, the
        // barrier must stay closed: promoting here would release the
        // blocked workers into a race with the leader's merge and its
        // verdict write. The leader's own release() opens the barrier.
        if (!leaderActive && participants > 0 &&
            arrivedCount == participants) {
            arrivedCount = 0;
            std::fill(arrivedFlags.begin(), arrivedFlags.end(), 0);
            ++generation;
            lock.unlock();
            wake.notifyAll();
        }
    }

    /** Workers expelled by the watchdog so far. */
    unsigned
    expelledCount() const
    {
        MutexLock lock(mutex);
        return expelledTotal;
    }

    /** Snapshot of which worker ids are still in the gang. */
    std::vector<char>
    activeWorkers() const
    {
        MutexLock lock(mutex);
        return activeFlags;
    }

  private:
    /** Expel every active worker that has not arrived (lock held). */
    void
    expelAbsentLocked() ANYTIME_REQUIRES(mutex)
    {
        bool expelled = false;
        for (std::size_t w = 0; w < activeFlags.size(); ++w) {
            if (activeFlags[w] && !arrivedFlags[w]) {
                activeFlags[w] = 0;
                --participants;
                ++expelledTotal;
                expelled = true;
            }
        }
        // Losing a gang member permanently degrades every later
        // version — exactly the anomaly the flight recorder exists
        // for. The expelling waiter runs under the automaton's trace
        // scope, so the artifact carries the request's trace id.
        if (expelled)
            obs::flightRecorderTrigger("watchdog_expel", 0,
                                       obs::currentTraceContext().traceId);
    }

    mutable Mutex mutex;
    CondVar wake;
    unsigned participants ANYTIME_GUARDED_BY(mutex);
    unsigned arrivedCount ANYTIME_GUARDED_BY(mutex) = 0;
    /** True from leader election in arrive() until its release(). */
    bool leaderActive ANYTIME_GUARDED_BY(mutex) = false;
    std::uint64_t generation ANYTIME_GUARDED_BY(mutex) = 0;
    /** Gang membership by worker id (0 = left or expelled). */
    std::vector<char> activeFlags ANYTIME_GUARDED_BY(mutex);
    /** Arrival state for the current window, by worker id. */
    std::vector<char> arrivedFlags ANYTIME_GUARDED_BY(mutex);
    unsigned expelledTotal ANYTIME_GUARDED_BY(mutex) = 0;
};

/** Shape of a partitioned sweep. */
struct SweepLayout
{
    /** Total diffusive steps n. */
    std::uint64_t steps = 0;
    /** Steps per published version (the publish period). */
    std::uint64_t window = 1;
    /** How each window is sliced among workers (Section IV-C1). */
    PartitionKind kind = PartitionKind::cyclic;
    /** Steps between cooperative checkpoints inside a slice. */
    std::uint64_t checkpointStride = 64;
    /**
     * Watchdog: how long a worker may keep the window barrier
     * incomplete before the waiters expel it and finish without it
     * (fault containment). Zero disables the watchdog (default —
     * identical behavior to the pre-watchdog barrier). Set this well
     * above the worst-case slice time: expulsion is permanent and
     * degrades every later version of the stage's output.
     */
    std::chrono::nanoseconds stallTimeout{0};
};

/** Cached observability handles for one partitioned stage. */
struct SweepObs
{
    /** Interned span names (nullptr disables the span). */
    const char *sliceSpan = nullptr;
    const char *mergeSpan = nullptr;
    /** Registry metrics (nullptr disables the metric). */
    obs::Counter *windows = nullptr;
    obs::Counter *steps = nullptr;
    obs::Gauge *workers = nullptr;
};

/**
 * Shared state of one stage's worker gang: the barrier, one private
 * partial per worker (merged in fixed index order for determinism),
 * and the leader's verdict channel for the just-merged window.
 */
template <typename P>
struct SweepGang
{
    SweepGang(unsigned workers, const std::function<P()> &make,
              SweepObs obs_handles = {})
        : barrier(workers), obs(obs_handles)
    {
        partials.reserve(workers);
        for (unsigned w = 0; w < workers; ++w)
            partials.push_back(make());
    }

    SweepBarrier barrier;
    std::vector<P> partials;
    SweepObs obs;
    /**
     * Leader verdict for the just-merged window: true when the sweep
     * should be abandoned (stale inputs, or stop). Written by the
     * leader before release(), read by the others after wake-up; the
     * barrier mutex orders both.
     */
    bool abandoned = false;
};

/** How a partitioned sweep ended. */
enum class SweepStatus
{
    /** All windows merged and published; final version out. */
    completed,
    /** Stop requested; this worker has already left the barrier. */
    stopped,
    /** Leader abandoned the sweep (stale inputs); gang still joined. */
    abandoned,
    /** This worker was expelled by the stall watchdog; the rest of
     *  the gang carries the sweep on without it (degraded). */
    expelled,
};

/**
 * The shared window loop: run @p layout.steps diffusive steps on this
 * worker's slice of every window, with a completion barrier and a
 * leader-side merge per window.
 *
 * @param reset   reset(partial): recycle this worker's partial at the
 *                start of each window (capacity is reused).
 * @param step    step(global_step, partial, ctx): fold one diffusive
 *                step into the private partial.
 * @param window  Leader only — window(partials, begin, end): merge all
 *                partials (fixed order 0..k-1) into the stage state
 *                and publish; return false to abandon the sweep.
 *
 * Returns SweepStatus::stopped only after leaving the barrier; on
 * SweepStatus::abandoned the caller is still a barrier participant.
 */
template <typename P, typename ResetFn, typename StepFn, typename WindowFn>
SweepStatus
runPartitionedSweep(StageContext &ctx, SweepGang<P> &gang,
                    const SweepLayout &layout, ResetFn &&reset,
                    StepFn &&step, WindowFn &&window)
{
    const unsigned worker = ctx.workerId();
    P &partial = gang.partials[worker];
    for (std::uint64_t begin = 0; begin < layout.steps;
         begin += layout.window) {
        const std::uint64_t end =
            std::min(begin + layout.window, layout.steps);
        const double window_index =
            static_cast<double>(begin / layout.window);
        if (!ctx.checkpoint()) {
            gang.barrier.leave(worker);
            return SweepStatus::stopped;
        }

        reset(partial);
        // This worker's slice of the window (Section IV-C1). Workers
        // beyond the window length get an empty slice but still take
        // part in the barrier below.
        const SequentialPermutation ordinals(end - begin);
        std::uint64_t done = 0;
        bool alive = true;
        {
            std::optional<obs::TraceSpan> span;
            if (obs::tracingEnabled() && gang.obs.sliceSpan)
                span.emplace(gang.obs.sliceSpan, "partition",
                             obs::TraceArg{"worker",
                                           static_cast<double>(worker)},
                             obs::TraceArg{"window", window_index});
            const auto run_slice = [&](const auto &part) {
                const std::uint64_t samples = part.size();
                for (std::uint64_t k = 0; k < samples; ++k) {
                    step(begin + part.map(k), partial, ctx);
                    if (++done % layout.checkpointStride == 0 &&
                        !ctx.checkpoint())
                        return false;
                }
                return true;
            };
            alive = (layout.kind == PartitionKind::cyclic)
                        ? run_slice(CyclicPartition(
                              ordinals, ctx.workerCount(), worker))
                        : run_slice(BlockPartition(
                              ordinals, ctx.workerCount(), worker));
        }
        if (done > 0) {
            ctx.addWork(done);
            if (gang.obs.steps)
                gang.obs.steps->add(done);
        }
        if (!alive) {
            gang.barrier.leave(worker);
            return SweepStatus::stopped;
        }

        switch (gang.barrier.arrive(worker, ctx.stopToken(),
                                    layout.stallTimeout)) {
        case SweepBarrier::Outcome::stopped:
            gang.barrier.leave(worker);
            return SweepStatus::stopped;
        case SweepBarrier::Outcome::expelled:
            // The watchdog removed this worker while it was stalled;
            // the bookkeeping is done, so just exit the sweep.
            return SweepStatus::expelled;
        case SweepBarrier::Outcome::leader: {
            // An incomplete gang must never publish: skip the merge
            // when stopping (the buffer keeps its previous version,
            // which stays valid — the anytime guarantee).
            bool keep = false;
            if (!ctx.stopRequested()) {
                // Injection site `sweep.merge:<stage>`: a fault in
                // the leader's merge exercises Property 3 under the
                // worst conditions (barrier closed, gang blocked).
                ANYTIME_FAULT_POINT("sweep.merge", ctx.stageName(),
                                    begin / layout.window);
                std::optional<obs::TraceSpan> span;
                if (obs::tracingEnabled() && gang.obs.mergeSpan)
                    span.emplace(
                        gang.obs.mergeSpan, "partition",
                        obs::TraceArg{"window", window_index},
                        obs::TraceArg{"steps",
                                      static_cast<double>(end - begin)});
                if (gang.barrier.expelledCount() == 0) {
                    keep = window(gang.partials, begin, end);
                } else {
                    // Expelled workers may still be scribbling on
                    // their partials: merge a compacted vector of the
                    // surviving partials (moved out and back, ascending
                    // worker order preserved) so the merge callback
                    // never reads a partial it might race with.
                    const auto active = gang.barrier.activeWorkers();
                    std::vector<P> survivors;
                    std::vector<std::size_t> indices;
                    survivors.reserve(gang.partials.size());
                    indices.reserve(gang.partials.size());
                    for (std::size_t w = 0; w < gang.partials.size();
                         ++w) {
                        if (active[w]) {
                            survivors.push_back(
                                std::move(gang.partials[w]));
                            indices.push_back(w);
                        }
                    }
                    keep = window(survivors, begin, end);
                    for (std::size_t i = 0; i < indices.size(); ++i)
                        gang.partials[indices[i]] =
                            std::move(survivors[i]);
                }
            }
            gang.abandoned = !keep;
            gang.barrier.release();
            if (ctx.stopRequested()) {
                gang.barrier.leave(worker);
                return SweepStatus::stopped;
            }
            if (!keep)
                return SweepStatus::abandoned;
            if (gang.obs.windows)
                gang.obs.windows->add(1);
            break;
        }
        case SweepBarrier::Outcome::released:
            if (gang.abandoned)
                return SweepStatus::abandoned;
            break;
        }
    }
    return SweepStatus::completed;
}

namespace detail {

/** Intern the stage's span names and look up the shared metrics. */
inline SweepObs
makeSweepObs(const std::string &stage_name)
{
    SweepObs handles;
    handles.sliceSpan = obs::internName(stage_name + ".slice");
    handles.mergeSpan = obs::internName(stage_name + ".merge");
    auto &registry = obs::defaultRegistry();
    handles.windows = &registry.counter(
        "anytime_partition_windows_total",
        "Partitioned sweep windows merged and published");
    handles.steps = &registry.counter(
        "anytime_partition_steps_total",
        "Diffusive steps executed by partition workers");
    handles.workers = &registry.gauge(
        "anytime_partition_workers",
        "Worker threads currently inside partitioned sweeps");
    return handles;
}

/** Scope guard bumping the partition-worker gauge. */
class WorkerGaugeGuard
{
  public:
    explicit WorkerGaugeGuard(obs::Gauge *gauge) : gauge(gauge)
    {
        if (gauge)
            gauge->add(1.0);
    }
    ~WorkerGaugeGuard()
    {
        if (gauge)
            gauge->add(-1.0);
    }
    WorkerGaugeGuard(const WorkerGaugeGuard &) = delete;
    WorkerGaugeGuard &operator=(const WorkerGaugeGuard &) = delete;

  private:
    obs::Gauge *gauge;
};

} // namespace detail

/**
 * Multi-worker diffusive source stage (the partitioned counterpart of
 * DiffusiveSourceStage). Each worker folds its partition slice of every
 * publish window into a private partial of type @c P; the last worker
 * to finish a window merges all partials — in fixed partition order —
 * into the running output state and publishes. With commutative
 * reductions (or ordinal-replayed write logs, see sampling/replay.hpp)
 * every published version is bit-identical to the single-worker run.
 *
 * @tparam O Output value type.
 * @tparam P Per-worker partial type.
 */
template <typename O, typename P>
class PartitionedDiffusiveStage : public Stage
{
  public:
    /** Construct one (empty) per-worker partial; called k times. */
    using MakeFn = std::function<P()>;
    /** Recycle a partial at the start of a window. */
    using ResetFn = std::function<void(P &)>;
    /** Fold diffusive step @c step into this worker's partial. */
    using StepFn = std::function<void(std::uint64_t step, P &partial,
                                      StageContext &ctx)>;
    /** Leader: merge partials (order 0..k-1) into the output state. */
    using MergeFn = std::function<void(O &state, std::vector<P> &partials,
                                       std::uint64_t begin,
                                       std::uint64_t end)>;

    PartitionedDiffusiveStage(std::string name,
                              std::shared_ptr<VersionedBuffer<O>> out,
                              O initial, SweepLayout layout, MakeFn make,
                              ResetFn reset, StepFn step, MergeFn merge)
        : Stage(std::move(name)), out(std::move(out)),
          state(std::move(initial)), layout(layout),
          makePartial(std::move(make)), resetPartial(std::move(reset)),
          stepFn(std::move(step)), mergeFn(std::move(merge)),
          obsHandles(detail::makeSweepObs(this->name()))
    {
        fatalIf(layout.steps == 0, "PartitionedDiffusiveStage: zero steps");
        fatalIf(layout.window == 0,
                "PartitionedDiffusiveStage: zero publish window");
        fatalIf(layout.checkpointStride == 0,
                "PartitionedDiffusiveStage: zero checkpoint stride");
    }

    void
    run(StageContext &ctx) override
    {
        std::call_once(gangOnce, [&] {
            gang = std::make_unique<SweepGang<P>>(ctx.workerCount(),
                                                  makePartial, obsHandles);
        });
        detail::WorkerGaugeGuard guard(obsHandles.workers);
        const unsigned gangSize = ctx.workerCount();
        const SweepStatus status = runPartitionedSweep(
            ctx, *gang, layout, resetPartial,
            [this](std::uint64_t step, P &partial, StageContext &c) {
                stepFn(step, partial, c);
            },
            [this, gangSize](std::vector<P> &partials,
                             std::uint64_t begin, std::uint64_t end) {
                // Degradation contract: once the watchdog expelled a
                // worker, its partition is missing from this and every
                // later window — mark the buffer (sticky) with the
                // surviving fraction as the QoR bound before the
                // publish so each degraded snapshot carries it.
                const unsigned expelled = gang->barrier.expelledCount();
                if (expelled > 0)
                    out->markDegraded(
                        1.0 - static_cast<double>(expelled) /
                                  static_cast<double>(gangSize));
                mergeFn(state, partials, begin, end);
                out->publish(state, end == layout.steps);
                return true;
            });
        // A source sweep is only ever abandoned by a stopping leader;
        // exit the barrier like the other stop paths.
        if (status == SweepStatus::abandoned)
            gang->barrier.leave(ctx.workerId());
    }

    std::vector<const BufferBase *>
    reads() const override
    {
        return {};
    }

    const BufferBase *writes() const override { return out.get(); }

  private:
    std::shared_ptr<VersionedBuffer<O>> out;
    O state;
    SweepLayout layout;
    MakeFn makePartial;
    ResetFn resetPartial;
    StepFn stepFn;
    MergeFn mergeFn;
    SweepObs obsHandles;
    std::once_flag gangOnce;
    std::unique_ptr<SweepGang<P>> gang;
};

} // namespace anytime

#endif // ANYTIME_CORE_PARALLEL_STAGE_HPP
