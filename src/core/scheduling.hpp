/**
 * @file
 * Pipeline thread-scheduling policies (paper Section IV-C2).
 *
 * Given per-stage latency estimates and a hardware-thread budget,
 * choose how many workers each stage gets. The paper identifies that
 * the conventional "balance stage latencies" rule is not always right
 * for automata: to minimize time-to-first-output, threads should go to
 * the longest *upstream* stage; to minimize the gap between consecutive
 * outputs, they should go to the *final* stage. All three policies are
 * provided; correctness never depends on the choice (scheduling is
 * "merely an optimization problem").
 */

#ifndef ANYTIME_CORE_SCHEDULING_HPP
#define ANYTIME_CORE_SCHEDULING_HPP

#include <cstddef>
#include <string>
#include <vector>

#include "support/error.hpp"

namespace anytime {

/** Scheduling input for one stage. */
struct StageLoad
{
    std::string name;
    /** Estimated latency (seconds or any consistent unit). */
    double latency = 0.0;
    /** Whether the stage's internal work can use extra workers. */
    bool parallelizable = true;
    /** Topological depth: 0 for sources, increasing downstream. */
    unsigned depth = 0;
};

/** Scheduling policies from the paper's discussion. */
enum class SchedulePolicy
{
    /** Balance stage latencies (the conventional pipeline rule). */
    balanced,
    /** Favor the longest upstream stage: earliest first output. */
    firstOutput,
    /** Favor the final stage: smallest inter-output gap. */
    outputGap,
};

/**
 * Allocate @p thread_budget workers across @p stages.
 *
 * Every stage gets at least one worker; the remainder is distributed
 * per the policy. Non-parallelizable stages are capped at one worker.
 *
 * @return Worker count per stage, parallel to @p stages.
 */
inline std::vector<unsigned>
allocateWorkers(const std::vector<StageLoad> &stages,
                unsigned thread_budget, SchedulePolicy policy)
{
    fatalIf(stages.empty(), "allocateWorkers: no stages");
    fatalIf(thread_budget < stages.size(),
            "allocateWorkers: need at least one thread per stage (",
            stages.size(), " stages, ", thread_budget, " threads)");

    std::vector<unsigned> workers(stages.size(), 1);
    unsigned spare = thread_budget - static_cast<unsigned>(stages.size());

    // Effective per-stage weight under the policy.
    const auto weight = [&](std::size_t i) {
        const StageLoad &stage = stages[i];
        if (!stage.parallelizable || workers[i] == 0)
            return 0.0;
        const double current_latency =
            stage.latency / static_cast<double>(workers[i]);
        switch (policy) {
          case SchedulePolicy::balanced:
            return current_latency;
          case SchedulePolicy::firstOutput: {
            // Upstream-first: weight decays with depth.
            const double depth_bias =
                1.0 / (1.0 + static_cast<double>(stage.depth));
            return current_latency * depth_bias * 4.0;
          }
          case SchedulePolicy::outputGap: {
            // Downstream-first: weight grows with depth.
            const double depth_bias =
                1.0 + static_cast<double>(stage.depth);
            return current_latency * depth_bias;
          }
        }
        return current_latency;
    };

    // Greedy water-filling: repeatedly give a worker to the heaviest
    // stage under the policy's weighting.
    while (spare > 0) {
        std::size_t best = stages.size();
        double best_weight = 0.0;
        for (std::size_t i = 0; i < stages.size(); ++i) {
            const double w = weight(i);
            if (w > best_weight) {
                best_weight = w;
                best = i;
            }
        }
        if (best == stages.size())
            break; // nothing parallelizable left
        ++workers[best];
        --spare;
    }
    return workers;
}

} // namespace anytime

#endif // ANYTIME_CORE_SCHEDULING_HPP
