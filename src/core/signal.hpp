/**
 * @file
 * Change notification for stages that wait on multiple input buffers.
 *
 * A transform stage reading several parents needs to sleep until *any*
 * parent publishes. Each VersionedBuffer has its own condition variable,
 * so the stage registers a publish observer on every input that pokes
 * one shared ChangeSignal, then waits on that.
 */

#ifndef ANYTIME_CORE_SIGNAL_HPP
#define ANYTIME_CORE_SIGNAL_HPP

#include <cstdint>
#include <stop_token>

#include "support/sync.hpp"
#include "support/thread_annotations.hpp"

namespace anytime {

/** Counting event: notify() bumps, wait() blocks until the count moves. */
class ChangeSignal
{
  public:
    /** Record one change event and wake waiters. */
    void
    notify()
    {
        {
            MutexLock lock(mutex);
            ++count;
        }
        changed.notifyAll();
    }

    /** Current change count (use as the `seen` baseline). */
    std::uint64_t
    current() const
    {
        MutexLock lock(mutex);
        return count;
    }

    /**
     * Block until the change count exceeds @p seen or stop is requested.
     * @return The change count at wake-up.
     */
    std::uint64_t
    wait(std::uint64_t seen, std::stop_token stop) const
    {
        MutexLock lock(mutex);
        changed.wait(lock, stop, [&]() ANYTIME_REQUIRES(mutex) {
            return count > seen;
        });
        return count;
    }

  private:
    mutable Mutex mutex;
    mutable CondVar changed;
    std::uint64_t count ANYTIME_GUARDED_BY(mutex) = 0;
};

} // namespace anytime

#endif // ANYTIME_CORE_SIGNAL_HPP
