/**
 * @file
 * Source (parentless) anytime stage templates.
 *
 * IterativeSourceStage implements the paper's general construction
 * (Section III-B1): the computation is re-executed at n accuracy levels,
 * each level overwriting the previous output; the last level is precise.
 *
 * DiffusiveSourceStage implements the refinement of Section III-B2: each
 * step f_i(I, O_{i-1}) builds on the running output, so no work is
 * redundant. Steps are indexed by a sample ordinal; with more than one
 * worker, ordinals are claimed in batches from a shared counter
 * (equivalent to the paper's cyclic distribution at batch granularity),
 * which requires step applications to be commutative or to touch
 * disjoint output elements — exactly the input/output-sampling stages
 * the paper builds.
 */

#ifndef ANYTIME_CORE_SOURCE_STAGE_HPP
#define ANYTIME_CORE_SOURCE_STAGE_HPP

#include <algorithm>
#include <atomic>
#include <cstdint>
#include <functional>
#include <memory>
#include <utility>

#include "core/buffer.hpp"
#include "core/stage.hpp"
#include "support/error.hpp"
#include "support/sync.hpp"
#include "support/thread_annotations.hpp"

namespace anytime {

/**
 * Iterative anytime source: n levels, each recomputing the whole output
 * at increasing accuracy (level n-1 must be precise).
 *
 * @tparam O Output value type.
 */
template <typename O>
class IterativeSourceStage : public Stage
{
  public:
    /** Computes one accuracy level into a fresh output value. */
    using LevelFn =
        std::function<void(std::size_t level, O &out, StageContext &ctx)>;

    /**
     * @param name      Stage name.
     * @param out       Output buffer (this stage is its sole writer).
     * @param levels    Number of accuracy levels n (>= 1).
     * @param fn        Level body; must honor ctx.checkpoint().
     * @param prototype Initial value each level starts from (sizes the
     *                  output; levels always overwrite, per the
     *                  iterative construction).
     */
    IterativeSourceStage(std::string name,
                         std::shared_ptr<VersionedBuffer<O>> out,
                         std::size_t levels, LevelFn fn, O prototype = O{})
        : Stage(std::move(name)), out(std::move(out)), levels(levels),
          fn(std::move(fn)), prototype(std::move(prototype))
    {
        fatalIf(levels == 0, "IterativeSourceStage: zero levels");
    }

    void
    run(StageContext &ctx) override
    {
        fatalIf(ctx.workerCount() != 1,
                "IterativeSourceStage supports a single worker");
        for (std::size_t level = 0; level < levels; ++level) {
            if (!ctx.checkpoint())
                return;
            O work = prototype;
            fn(level, work, ctx);
            // A level interrupted mid-computation is not a valid
            // version; the buffer keeps the previous one (anytime
            // validity).
            if (ctx.stopRequested())
                return;
            out->publish(std::move(work), level + 1 == levels);
        }
    }

    std::vector<const BufferBase *>
    reads() const override
    {
        return {};
    }

    const BufferBase *writes() const override { return out.get(); }

  private:
    std::shared_ptr<VersionedBuffer<O>> out;
    std::size_t levels;
    LevelFn fn;
    O prototype;
};

/**
 * Diffusive anytime source: @c steps incremental updates applied to a
 * running output state, published every @c publishPeriod completed
 * steps and once more (final) after the last step.
 *
 * @tparam O Output value type.
 */
template <typename O>
class DiffusiveSourceStage : public Stage
{
  public:
    /** Applies update x_{p(step)} to the running output state. */
    using StepFn = std::function<void(std::uint64_t step, O &state,
                                      StageContext &ctx)>;

    /**
     * @param name           Stage name.
     * @param out            Output buffer (sole writer: this stage).
     * @param initial        O_0, the initial output value.
     * @param steps          Total number of diffusive steps n.
     * @param fn             Step body.
     * @param publish_period Steps between published versions (>= 1).
     * @param batch          Steps claimed per worker batch (>= 1);
     *                       only meaningful with multiple workers.
     */
    DiffusiveSourceStage(std::string name,
                         std::shared_ptr<VersionedBuffer<O>> out,
                         O initial, std::uint64_t steps, StepFn fn,
                         std::uint64_t publish_period,
                         std::uint64_t batch = 256)
        : Stage(std::move(name)), out(std::move(out)),
          state(std::move(initial)), steps(steps), fn(std::move(fn)),
          publishPeriod(publish_period),
          batchSize(std::min(batch, publish_period))
    {
        fatalIf(steps == 0, "DiffusiveSourceStage: zero steps");
        fatalIf(publish_period == 0,
                "DiffusiveSourceStage: zero publish period");
        fatalIf(batch == 0, "DiffusiveSourceStage: zero batch size");
        // Batches coarser than the publish period would silently lower
        // the version granularity the caller asked for.
    }

    void
    run(StageContext &ctx) override
    {
        for (;;) {
            if (!ctx.checkpoint())
                return;
            const std::uint64_t begin =
                claim.fetch_add(batchSize, std::memory_order_relaxed);
            if (begin >= steps)
                return; // all work claimed; publisher was the finisher
            const std::uint64_t end = std::min(begin + batchSize, steps);

            MutexLock lock(mutex);
            for (std::uint64_t step = begin; step < end; ++step)
                fn(step, state, ctx);
            ctx.addWork(end - begin);
            completed += end - begin;
            maybePublish();
        }
    }

    std::vector<const BufferBase *>
    reads() const override
    {
        return {};
    }

    const BufferBase *writes() const override { return out.get(); }

  private:
    /** Publish under the state mutex when a period boundary is crossed
     *  or the computation is complete. */
    void
    maybePublish() ANYTIME_REQUIRES(mutex)
    {
        const bool is_final = (completed == steps);
        if (!is_final && completed < nextMark)
            return;
        while (nextMark <= completed)
            nextMark += publishPeriod;
        out->publish(state, is_final);
    }

    std::shared_ptr<VersionedBuffer<O>> out;
    Mutex mutex;
    O state ANYTIME_GUARDED_BY(mutex);
    std::uint64_t steps;
    StepFn fn;
    std::uint64_t publishPeriod;
    std::uint64_t batchSize;
    std::atomic<std::uint64_t> claim{0};
    std::uint64_t completed ANYTIME_GUARDED_BY(mutex) = 0;
    std::uint64_t nextMark ANYTIME_GUARDED_BY(mutex) = 1;
};

} // namespace anytime

#endif // ANYTIME_CORE_SOURCE_STAGE_HPP
