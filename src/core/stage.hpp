/**
 * @file
 * Computation stages and their execution context.
 *
 * An anytime automaton breaks an application into computation stages
 * connected in a directed acyclic graph (paper Figure 1). Each stage's
 * run() owns the full lifetime of one worker thread: it reads input
 * snapshots, performs its (possibly anytime) computation, and publishes
 * output versions. Stage bodies must be pure in the sense of Property 1:
 * no semantic state outside their input and output buffers.
 *
 * Interruptibility and pause are cooperative: stage bodies call
 * StageContext::checkpoint() between units of work; it returns false
 * once the automaton is being stopped and blocks while paused.
 */

#ifndef ANYTIME_CORE_STAGE_HPP
#define ANYTIME_CORE_STAGE_HPP

#include <atomic>
#include <cstdint>
#include <memory>
#include <stop_token>
#include <string>
#include <vector>

#include "core/buffer.hpp"
#include "fault/fault.hpp"
#include "support/sync.hpp"
#include "support/thread_annotations.hpp"

namespace anytime {

/**
 * Shared pause/resume gate. The paper's model allows the automaton to be
 * "stopped (or paused)" at any moment while the current output stays
 * valid; pause freezes all stages at their next checkpoint without
 * losing any published version.
 */
class PauseGate
{
  public:
    /** Freeze all stages at their next checkpoint. */
    void
    pause()
    {
        MutexLock lock(mutex);
        paused = true;
    }

    /** Release paused stages. */
    void
    resume()
    {
        {
            MutexLock lock(mutex);
            paused = false;
        }
        resumed.notifyAll();
    }

    /** True while the gate is closed. */
    bool
    isPaused() const
    {
        MutexLock lock(mutex);
        return paused;
    }

    /**
     * Block while paused; wake on resume() or stop.
     * @return False iff @p stop was requested.
     */
    bool
    wait(std::stop_token stop) const
    {
        MutexLock lock(mutex);
        resumed.wait(lock, stop, [&]() ANYTIME_REQUIRES(mutex) {
            return !paused;
        });
        return !stop.stop_requested();
    }

  private:
    mutable Mutex mutex;
    mutable CondVar resumed;
    bool paused ANYTIME_GUARDED_BY(mutex) = false;
};

/** Per-stage execution statistics (work-done proxy for energy). */
struct StageStats
{
    /** Fine-grained work units completed (stage-defined meaning). */
    std::atomic<std::uint64_t> steps{0};
    /** Checkpoints taken (cooperative-cancellation granularity). */
    std::atomic<std::uint64_t> checkpoints{0};
};

/**
 * Execution context handed to Stage::run() on each worker thread.
 */
class StageContext
{
  public:
    StageContext(std::stop_token stop, const PauseGate &gate,
                 StageStats &stats, unsigned worker_id,
                 unsigned worker_count, std::string stage_name = "")
        : stop(std::move(stop)), gate(&gate), stats(&stats),
          workerIdValue(worker_id), workerCountValue(worker_count),
          stageNameValue(std::move(stage_name))
    {
    }

    /** Cooperative stop token for blocking waits. */
    const std::stop_token &stopToken() const { return stop; }

    /** True once the automaton is being stopped. */
    bool stopRequested() const { return stop.stop_requested(); }

    /**
     * Checkpoint between units of work: honors pause, counts progress.
     * @return False iff the stage should exit (stop requested).
     */
    bool
    checkpoint()
    {
        const std::uint64_t ordinal =
            stats->checkpoints.fetch_add(1, std::memory_order_relaxed) +
            1;
        // Injection site `stage.body:<stage>`: a checkpoint is the
        // natural fault boundary — it is exactly where the paper lets
        // execution be interrupted, so an injected fault here models
        // an involuntary interruption mid-body.
        ANYTIME_FAULT_POINT("stage.body", stageNameValue, ordinal);
        if (stop.stop_requested())
            return false;
        if (gate->isPaused())
            return gate->wait(stop);
        return true;
    }

    /** Record @p count completed work units (energy proxy). */
    void
    addWork(std::uint64_t count = 1)
    {
        stats->steps.fetch_add(count, std::memory_order_relaxed);
    }

    /** This worker's index within the stage, in [0, workerCount()). */
    unsigned workerId() const { return workerIdValue; }

    /** Number of worker threads running this stage. */
    unsigned workerCount() const { return workerCountValue; }

    /** Name of the stage this context executes ("" for ad-hoc rigs). */
    const std::string &stageName() const { return stageNameValue; }

  private:
    std::stop_token stop;
    const PauseGate *gate;
    StageStats *stats;
    unsigned workerIdValue;
    unsigned workerCountValue;
    std::string stageNameValue;
};

/**
 * Abstract computation stage.
 *
 * run() is invoked once per worker thread and owns the stage's whole
 * execution; multi-worker stages coordinate internally (see the
 * sampling partitions). A stage must publish its final output version
 * before returning (unless stopped early).
 */
class Stage
{
  public:
    explicit Stage(std::string name) : stageName(std::move(name)) {}
    virtual ~Stage() = default;

    Stage(const Stage &) = delete;
    Stage &operator=(const Stage &) = delete;

    /** Stage name for diagnostics and scheduling reports. */
    const std::string &name() const { return stageName; }

    /** Execute this stage on one worker thread. */
    virtual void run(StageContext &ctx) = 0;

    /** Buffers this stage reads (graph edges; may be empty). */
    virtual std::vector<const BufferBase *> reads() const = 0;

    /** The single buffer this stage writes (Property 2). */
    virtual const BufferBase *writes() const = 0;

    /** Execution statistics (shared across this stage's workers). */
    StageStats &stats() { return stageStats; }
    const StageStats &stats() const { return stageStats; }

  private:
    std::string stageName;
    StageStats stageStats;
};

} // namespace anytime

#endif // ANYTIME_CORE_STAGE_HPP
