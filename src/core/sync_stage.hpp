/**
 * @file
 * Synchronous-pipeline stage templates (paper Section III-C2).
 *
 * SyncSourceStage is a diffusive source that additionally exposes its
 * updates X_i through an UpdateChannel. SyncTransformStage is the
 * distributive child gS that folds each update into its accumulator:
 * gS(X, G_{i-1}) = G_{i-1} <> g(X_i). Every update contributes usefully
 * to the final precise output — none of the child work of the
 * asynchronous pipeline is repeated.
 */

#ifndef ANYTIME_CORE_SYNC_STAGE_HPP
#define ANYTIME_CORE_SYNC_STAGE_HPP

#include <cstdint>
#include <functional>
#include <memory>
#include <utility>

#include "core/buffer.hpp"
#include "core/channel.hpp"
#include "core/stage.hpp"
#include "support/error.hpp"

namespace anytime {

/**
 * Diffusive source that streams its updates into an UpdateChannel
 * while also publishing full output versions F_i for observers.
 *
 * @tparam O Output (state) value type.
 * @tparam X Update value type.
 */
template <typename O, typename X>
class SyncSourceStage : public Stage
{
  public:
    /** Produce update X_{p(step)}. */
    using MakeUpdateFn =
        std::function<X(std::uint64_t step, StageContext &ctx)>;
    /** Apply an update to the running state: F_i = F_{i-1} <> X_i. */
    using ApplyFn = std::function<void(O &state, const X &update)>;

    SyncSourceStage(std::string name,
                    std::shared_ptr<VersionedBuffer<O>> out,
                    std::shared_ptr<UpdateChannel<X>> channel, O initial,
                    std::uint64_t steps, MakeUpdateFn make, ApplyFn apply,
                    std::uint64_t publish_period)
        : Stage(std::move(name)), out(std::move(out)),
          channel(std::move(channel)), state(std::move(initial)),
          steps(steps), make(std::move(make)), apply(std::move(apply)),
          publishPeriod(publish_period)
    {
        fatalIf(steps == 0, "SyncSourceStage: zero steps");
        fatalIf(publish_period == 0, "SyncSourceStage: zero period");
    }

    void
    run(StageContext &ctx) override
    {
        fatalIf(ctx.workerCount() != 1,
                "SyncSourceStage: the update channel is single-producer");
        for (std::uint64_t step = 0; step < steps; ++step) {
            if (!ctx.checkpoint())
                return;
            X update = make(step, ctx);
            apply(state, update);
            ctx.addWork();
            // Synchronization point: block until the child has room,
            // so no update is ever overwritten before delivery.
            if (!channel->push(std::move(update), ctx.stopToken()))
                return;
            const bool is_final = (step + 1 == steps);
            if (is_final || (step + 1) % publishPeriod == 0)
                out->publish(state, is_final);
        }
        channel->close();
    }

    std::vector<const BufferBase *>
    reads() const override
    {
        return {};
    }

    const BufferBase *writes() const override { return out.get(); }

  private:
    std::shared_ptr<VersionedBuffer<O>> out;
    std::shared_ptr<UpdateChannel<X>> channel;
    O state;
    std::uint64_t steps;
    MakeUpdateFn make;
    ApplyFn apply;
    std::uint64_t publishPeriod;
};

/**
 * Distributive child stage of a synchronous pipeline: folds streamed
 * updates into its accumulator and publishes anytime versions of G.
 *
 * @tparam X Update value type.
 * @tparam G Accumulator (output) value type.
 */
template <typename X, typename G>
class SyncTransformStage : public Stage
{
  public:
    /** Fold one update: G_i = G_{i-1} <> g(X_i). */
    using FoldFn = std::function<void(G &accumulator, const X &update,
                                      StageContext &ctx)>;

    SyncTransformStage(std::string name,
                       std::shared_ptr<UpdateChannel<X>> channel,
                       std::shared_ptr<VersionedBuffer<G>> out, G initial,
                       FoldFn fold, std::uint64_t publish_period)
        : Stage(std::move(name)), channel(std::move(channel)),
          out(std::move(out)), accumulator(std::move(initial)),
          fold(std::move(fold)), publishPeriod(publish_period)
    {
        fatalIf(publish_period == 0, "SyncTransformStage: zero period");
    }

    void
    run(StageContext &ctx) override
    {
        fatalIf(ctx.workerCount() != 1,
                "SyncTransformStage: the update channel is "
                "single-consumer");
        std::uint64_t folded = 0;
        for (;;) {
            if (!ctx.checkpoint())
                return;
            std::optional<X> update = channel->pop(ctx.stopToken());
            if (!update) {
                if (ctx.stopRequested())
                    return;
                // Channel closed and drained: all updates folded, the
                // accumulator is the precise output.
                out->publish(accumulator, true);
                return;
            }
            fold(accumulator, *update, ctx);
            ctx.addWork();
            ++folded;
            if (folded % publishPeriod == 0)
                out->publish(accumulator, false);
        }
    }

    std::vector<const BufferBase *>
    reads() const override
    {
        return {};
    }

    const BufferBase *writes() const override { return out.get(); }

  private:
    std::shared_ptr<UpdateChannel<X>> channel;
    std::shared_ptr<VersionedBuffer<G>> out;
    G accumulator;
    FoldFn fold;
    std::uint64_t publishPeriod;
};

} // namespace anytime

#endif // ANYTIME_CORE_SYNC_STAGE_HPP
