/**
 * @file
 * Transform (child) stages of the asynchronous pipeline.
 *
 * Paper Section III-C1: a child stage g simply processes whichever
 * parent output version is currently in the buffer. No synchronization
 * with the parent is needed for correctness; the only requirement is
 * that g eventually runs on the parent's final version F_n, which the
 * run loop guarantees by re-processing until all inputs are final.
 * Child stages may themselves be anytime: the body can emit several
 * output versions per input version, with the buffer-final flag set only
 * when the inputs were final AND the body emitted its own final level.
 */

#ifndef ANYTIME_CORE_TRANSFORM_STAGE_HPP
#define ANYTIME_CORE_TRANSFORM_STAGE_HPP

#include <algorithm>
#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <optional>
#include <tuple>
#include <utility>

#include "core/buffer.hpp"
#include "core/parallel_stage.hpp"
#include "core/signal.hpp"
#include "core/stage.hpp"
#include "support/error.hpp"

namespace anytime {

/**
 * Partitioned (multi-worker) transform body: the stage's anytime sweep
 * expressed as a partitionable diffusive computation instead of an
 * opaque emit loop, so the run loop can slice each publish window among
 * k workers per Section IV-C1 and merge deterministically.
 *
 * Per consumed input-version set: the leader creates a fresh output
 * state with init(); every window of layout.steps is sliced among the
 * workers, each folding step() results into its private partial; the
 * leader merges partials in fixed order with merge() and publishes the
 * state. A sweep over non-final inputs is abandoned as soon as fresher
 * inputs supersede it (the re-run on final inputs always completes, so
 * the precise output is still guaranteed).
 *
 * @tparam P  Per-worker partial type.
 * @tparam O  Output value type.
 * @tparam Is Input value types.
 */
template <typename P, typename O, typename... Is>
struct PartitionedBody
{
    /** Sweep shape; steps and window are per input-version set. */
    SweepLayout layout;
    /** Construct one (empty) per-worker partial. */
    std::function<P()> makePartial;
    /** Recycle a partial at the start of a window. */
    std::function<void(P &)> resetPartial;
    /** Fresh output state for one consumed input-version set. */
    std::function<O(const Is &...)> init;
    /** Fold diffusive step @c step into this worker's partial. */
    std::function<void(const Is &..., std::uint64_t step, P &partial,
                       StageContext &ctx)>
        step;
    /** Leader: merge partials (order 0..k-1) into the output state. */
    std::function<void(O &state, std::vector<P> &partials,
                       std::uint64_t begin, std::uint64_t end)>
        merge;
};

/**
 * Publication handle passed to transform bodies. Combines the stage's
 * own anytime finality with the finality of the inputs the version was
 * computed from (only g_m(F_n) may be buffer-final).
 *
 * @tparam O Output value type.
 */
template <typename O>
class Emitter
{
  public:
    Emitter(VersionedBuffer<O> &buffer, bool inputs_final,
            std::function<bool()> stale_check = {})
        : buffer(&buffer), finalInputs(inputs_final),
          staleCheck(std::move(stale_check))
    {
    }

    /**
     * Publish one output version.
     *
     * @param value       The output version.
     * @param stage_final True iff this is the body's own final
     *                    (most accurate) version for this input.
     */
    void
    emit(O value, bool stage_final)
    {
        buffer->publish(std::move(value), finalInputs && stage_final);
        ++emitted;
    }

    /** True iff the inputs this body invocation saw were all final. */
    bool inputsFinal() const { return finalInputs; }

    /**
     * True iff newer input versions have been published since this
     * body invocation started. A long anytime body may abandon its
     * sweep when stale (and not final): the run loop will re-invoke it
     * on the fresher inputs, and the precise output is still guaranteed
     * because the final inputs are never stale.
     */
    bool
    stale() const
    {
        return staleCheck && staleCheck();
    }

    /** Versions emitted by this body invocation so far. */
    std::uint64_t count() const { return emitted; }

  private:
    VersionedBuffer<O> *buffer;
    bool finalInputs;
    std::function<bool()> staleCheck;
    std::uint64_t emitted = 0;
};

/**
 * Asynchronous-pipeline transform stage with one or more typed inputs.
 *
 * The body is invoked with the *latest* snapshot of every input each
 * time any input changes; intermediate input versions may be skipped if
 * the body is still busy (by design — data diffuses, it does not queue).
 *
 * @tparam O  Output value type.
 * @tparam Is Input value types.
 */
template <typename O, typename... Is>
class TransformStage : public Stage
{
    static_assert(sizeof...(Is) >= 1, "transform needs at least 1 input");

  public:
    /** Body: consume input values, emit output versions. */
    using ProcessFn = std::function<void(const Is &..., Emitter<O> &,
                                         StageContext &)>;

    TransformStage(std::string name,
                   std::shared_ptr<VersionedBuffer<Is>>... inputs,
                   std::shared_ptr<VersionedBuffer<O>> output,
                   ProcessFn fn)
        : Stage(std::move(name)), ins(std::move(inputs)...),
          out(std::move(output)), fn(std::move(fn))
    {
        observeInputs();
    }

    /**
     * Partitioned-body constructor: the sweep runs on however many
     * workers the stage is placed with, each window divided per
     * Section IV-C1 and merged deterministically (every published
     * version is bit-identical to a single-worker run).
     */
    template <typename P>
    TransformStage(std::string name,
                   std::shared_ptr<VersionedBuffer<Is>>... inputs,
                   std::shared_ptr<VersionedBuffer<O>> output,
                   PartitionedBody<P, O, Is...> body)
        : Stage(std::move(name)), ins(std::move(inputs)...),
          out(std::move(output))
    {
        fatalIf(body.layout.steps == 0, "TransformStage: zero sweep steps");
        fatalIf(body.layout.window == 0,
                "TransformStage: zero publish window");
        fatalIf(body.layout.checkpointStride == 0,
                "TransformStage: zero checkpoint stride");
        observeInputs();
        auto core = std::make_shared<PartitionedCore<P>>(
            std::move(body), detail::makeSweepObs(this->name()));
        partitionedRun = [this, core](StageContext &ctx) {
            core->run(*this, ctx);
        };
    }

    void
    run(StageContext &ctx) override
    {
        // The multi-worker dispatch: a partitioned body coordinates any
        // worker count through its gang barrier.
        if (partitionedRun) {
            partitionedRun(ctx);
            return;
        }
        fatalIf(ctx.workerCount() != 1,
                "TransformStage with an emit-based body is single-worker; "
                "construct it with a PartitionedBody to run on multiple "
                "workers");
        std::uint64_t seen_signal = 0;
        std::uint64_t processed_sum = 0;
        for (;;) {
            if (!ctx.checkpoint())
                return;

            auto snaps = std::apply(
                [](auto &...in) { return std::make_tuple(in->read()...); },
                ins);
            const bool all_present = std::apply(
                [](const auto &...s) { return ((s.value != nullptr) && ...); },
                snaps);
            const std::uint64_t version_sum = std::apply(
                [](const auto &...s) { return (s.version + ...); }, snaps);
            const bool all_final = std::apply(
                [](const auto &...s) { return (s.final && ...); }, snaps);

            if (!all_present || version_sum == processed_sum) {
                if (all_present && all_final)
                    return; // final inputs already processed
                if (!all_present && all_final) {
                    // Containment cascade: a quarantined upstream
                    // stage closed its buffer with no version ever
                    // published. No input will ever arrive, so this
                    // stage can't compute anything either — close our
                    // own output in degraded mode (keeping whatever
                    // we already published) instead of waiting
                    // forever.
                    out->markDegradedFinal(0.0);
                    return;
                }
                seen_signal = signal.wait(seen_signal, ctx.stopToken());
                continue;
            }

            // Degradation is sticky upstream, so it is sticky here:
            // anything computed from a degraded input is itself
            // degraded, bounded by the weakest input.
            propagateInputDegradation(snaps);

            Emitter<O> emitter(*out, all_final, [this, version_sum] {
                const std::uint64_t now = std::apply(
                    [](auto &...in) { return (in->version() + ...); },
                    ins);
                return now > version_sum;
            });
            std::apply(
                [&](const auto &...s) { fn(*s.value..., emitter, ctx); },
                snaps);
            if (ctx.stopRequested())
                return;
            processed_sum = version_sum;
            if (all_final)
                return; // g(F_n) done: precise output published
        }
    }

    std::vector<const BufferBase *>
    reads() const override
    {
        std::vector<const BufferBase *> result;
        std::apply([&](const auto &...in) { (result.push_back(in.get()), ...); },
                   ins);
        return result;
    }

    const BufferBase *writes() const override { return out.get(); }

  private:
    /** Wake this stage whenever any input publishes. */
    void
    observeInputs()
    {
        std::apply(
            [this](auto &...in) {
                (in->addObserver([this](const auto &) { signal.notify(); }),
                 ...);
            },
            ins);
    }

    /** Sum of the current input buffer versions. */
    std::uint64_t
    inputVersionSum() const
    {
        return std::apply(
            [](const auto &...in) { return (in->version() + ...); }, ins);
    }

    /** Mark the output degraded if any input snapshot is. */
    void
    propagateInputDegradation(const std::tuple<Snapshot<Is>...> &snaps)
    {
        bool any_degraded = false;
        double bound = 1.0;
        std::apply(
            [&](const auto &...s) {
                (..., (s.degraded
                           ? (any_degraded = true,
                              bound = std::min(bound, s.qorBound))
                           : bound));
            },
            snaps);
        if (any_degraded)
            out->markDegraded(bound);
    }

    /**
     * Gang-coordinated run loop for a PartitionedBody. All workers move
     * in lockstep through decision rounds: a barrier elects a leader
     * that snapshots the inputs and decides whether to sweep, wait for
     * fresher input, or finish; the sweep itself reuses the shared
     * partitioned window loop. All cross-worker state below is written
     * only by the momentary leader between its election and release(),
     * and read by the others after wake-up — the barrier mutex orders
     * every handoff.
     */
    template <typename P>
    class PartitionedCore
    {
      public:
        PartitionedCore(PartitionedBody<P, O, Is...> body_in,
                        SweepObs obs_handles)
            : body(std::move(body_in)), obsHandles(obs_handles)
        {
        }

        void
        run(TransformStage &stage, StageContext &ctx)
        {
            std::call_once(gangOnce, [&] {
                gang = std::make_unique<SweepGang<P>>(
                    ctx.workerCount(), body.makePartial, obsHandles);
            });
            detail::WorkerGaugeGuard guard(obsHandles.workers);
            const unsigned worker = ctx.workerId();
            std::uint64_t seen_signal = 0;
            for (;;) {
                if (!ctx.checkpoint()) {
                    gang->barrier.leave(worker);
                    return;
                }
                // Decision rounds never use the stall watchdog: worker
                // 0 legitimately sleeps on the input signal here, and
                // expelling it for that would be a false positive. The
                // watchdog applies inside the bounded sweep windows.
                switch (gang->barrier.arrive(worker, ctx.stopToken())) {
                case SweepBarrier::Outcome::stopped:
                    gang->barrier.leave(worker);
                    return;
                case SweepBarrier::Outcome::expelled:
                    return; // watchdog removed us during a sweep
                case SweepBarrier::Outcome::leader:
                    decide(stage);
                    gang->barrier.release();
                    break;
                case SweepBarrier::Outcome::released:
                    break;
                }

                if (decision == Decision::finish)
                    return; // g(F_n) done: precise output published
                if (decision == Decision::waitInput) {
                    // One worker sleeps on the change signal; the rest
                    // park at the next barrier until it arrives there.
                    // The leader picks the waiter among the *active*
                    // workers so an expelled worker 0 can't leave the
                    // round spinning with nobody asleep.
                    if (worker == waiterId)
                        seen_signal = stage.signal.wait(seen_signal,
                                                        ctx.stopToken());
                    continue;
                }

                const SweepStatus status = runPartitionedSweep(
                    ctx, *gang, body.layout, body.resetPartial,
                    [&](std::uint64_t s, P &partial, StageContext &c) {
                        std::apply(
                            [&](const auto &...snap) {
                                body.step(*snap.value..., s, partial, c);
                            },
                            snaps);
                    },
                    [&](std::vector<P> &partials, std::uint64_t begin,
                        std::uint64_t end) {
                        body.merge(*state, partials, begin, end);
                        const bool last = (end == body.layout.steps);
                        stage.out->publish(*state, last && sweepFinal);
                        if (last) {
                            processedSum = sweepVersionSum;
                            return true;
                        }
                        // Fresher (non-final) inputs supersede this
                        // sweep: abandon it after the publish; the
                        // next round re-reads the inputs.
                        return sweepFinal ||
                               stage.inputVersionSum() == sweepVersionSum;
                    });
                if (status == SweepStatus::stopped)
                    return; // the sweep already left the barrier
                if (status == SweepStatus::expelled)
                    return; // expelled workers never rejoin the gang
                // completed or abandoned: decide again on fresh input.
            }
        }

      private:
        enum class Decision
        {
            process,
            waitInput,
            finish,
        };

        /** Leader only: snapshot inputs and pick the round's action. */
        void
        decide(TransformStage &stage)
        {
            snaps = std::apply(
                [](auto &...in) { return std::make_tuple(in->read()...); },
                stage.ins);
            const bool all_present = std::apply(
                [](const auto &...s) {
                    return ((s.value != nullptr) && ...);
                },
                snaps);
            const std::uint64_t version_sum = std::apply(
                [](const auto &...s) { return (s.version + ...); }, snaps);
            const bool all_final = std::apply(
                [](const auto &...s) { return (s.final && ...); }, snaps);
            if (!all_present || version_sum == processedSum) {
                if (!all_present && all_final) {
                    // Containment cascade (see the emit-loop variant):
                    // a quarantined upstream closed its buffer empty;
                    // close ours in degraded mode and finish.
                    stage.out->markDegradedFinal(0.0);
                    decision = Decision::finish;
                    return;
                }
                decision = (all_present && all_final) ? Decision::finish
                                                      : Decision::waitInput;
                if (decision == Decision::waitInput) {
                    const auto active = gang->barrier.activeWorkers();
                    waiterId = 0;
                    for (std::size_t w = 0; w < active.size(); ++w) {
                        if (active[w]) {
                            waiterId = static_cast<unsigned>(w);
                            break;
                        }
                    }
                }
                return;
            }
            decision = Decision::process;
            sweepVersionSum = version_sum;
            sweepFinal = all_final;
            stage.propagateInputDegradation(snaps);
            // A gang worker expelled by the watchdog degrades every
            // later window of this stage's own sweeps too.
            const unsigned expelled = gang->barrier.expelledCount();
            if (expelled > 0)
                stage.out->markDegraded(
                    1.0 - static_cast<double>(expelled) /
                              static_cast<double>(gang->partials.size()));
            state.emplace(std::apply(
                [&](const auto &...s) { return body.init(*s.value...); },
                snaps));
        }

        PartitionedBody<P, O, Is...> body;
        SweepObs obsHandles;
        std::once_flag gangOnce;
        std::unique_ptr<SweepGang<P>> gang;
        // Leader-owned round state (barrier-ordered handoffs).
        Decision decision = Decision::waitInput;
        unsigned waiterId = 0;
        std::tuple<Snapshot<Is>...> snaps;
        std::uint64_t sweepVersionSum = 0;
        bool sweepFinal = false;
        std::uint64_t processedSum = 0;
        std::optional<O> state;
    };

    std::tuple<std::shared_ptr<VersionedBuffer<Is>>...> ins;
    std::shared_ptr<VersionedBuffer<O>> out;
    ProcessFn fn;
    std::function<void(StageContext &)> partitionedRun;
    ChangeSignal signal;
};

/**
 * Convenience non-anytime transform: a pure function applied once per
 * consumed input version (n = 1 in the paper's terms; the pipeline
 * supports non-anytime stages transparently).
 */
template <typename O, typename... Is>
std::shared_ptr<TransformStage<O, Is...>>
makeFunctionStage(std::string name,
                  std::shared_ptr<VersionedBuffer<Is>>... inputs,
                  std::shared_ptr<VersionedBuffer<O>> output,
                  std::function<O(const Is &...)> fn)
{
    return std::make_shared<TransformStage<O, Is...>>(
        std::move(name), std::move(inputs)..., std::move(output),
        [fn = std::move(fn)](const Is &...in, Emitter<O> &emitter,
                             StageContext &) {
            emitter.emit(fn(in...), true);
        });
}

} // namespace anytime

#endif // ANYTIME_CORE_TRANSFORM_STAGE_HPP
