/**
 * @file
 * Transform (child) stages of the asynchronous pipeline.
 *
 * Paper Section III-C1: a child stage g simply processes whichever
 * parent output version is currently in the buffer. No synchronization
 * with the parent is needed for correctness; the only requirement is
 * that g eventually runs on the parent's final version F_n, which the
 * run loop guarantees by re-processing until all inputs are final.
 * Child stages may themselves be anytime: the body can emit several
 * output versions per input version, with the buffer-final flag set only
 * when the inputs were final AND the body emitted its own final level.
 */

#ifndef ANYTIME_CORE_TRANSFORM_STAGE_HPP
#define ANYTIME_CORE_TRANSFORM_STAGE_HPP

#include <cstdint>
#include <functional>
#include <memory>
#include <tuple>
#include <utility>

#include "core/buffer.hpp"
#include "core/signal.hpp"
#include "core/stage.hpp"
#include "support/error.hpp"

namespace anytime {

/**
 * Publication handle passed to transform bodies. Combines the stage's
 * own anytime finality with the finality of the inputs the version was
 * computed from (only g_m(F_n) may be buffer-final).
 *
 * @tparam O Output value type.
 */
template <typename O>
class Emitter
{
  public:
    Emitter(VersionedBuffer<O> &buffer, bool inputs_final,
            std::function<bool()> stale_check = {})
        : buffer(&buffer), finalInputs(inputs_final),
          staleCheck(std::move(stale_check))
    {
    }

    /**
     * Publish one output version.
     *
     * @param value       The output version.
     * @param stage_final True iff this is the body's own final
     *                    (most accurate) version for this input.
     */
    void
    emit(O value, bool stage_final)
    {
        buffer->publish(std::move(value), finalInputs && stage_final);
        ++emitted;
    }

    /** True iff the inputs this body invocation saw were all final. */
    bool inputsFinal() const { return finalInputs; }

    /**
     * True iff newer input versions have been published since this
     * body invocation started. A long anytime body may abandon its
     * sweep when stale (and not final): the run loop will re-invoke it
     * on the fresher inputs, and the precise output is still guaranteed
     * because the final inputs are never stale.
     */
    bool
    stale() const
    {
        return staleCheck && staleCheck();
    }

    /** Versions emitted by this body invocation so far. */
    std::uint64_t count() const { return emitted; }

  private:
    VersionedBuffer<O> *buffer;
    bool finalInputs;
    std::function<bool()> staleCheck;
    std::uint64_t emitted = 0;
};

/**
 * Asynchronous-pipeline transform stage with one or more typed inputs.
 *
 * The body is invoked with the *latest* snapshot of every input each
 * time any input changes; intermediate input versions may be skipped if
 * the body is still busy (by design — data diffuses, it does not queue).
 *
 * @tparam O  Output value type.
 * @tparam Is Input value types.
 */
template <typename O, typename... Is>
class TransformStage : public Stage
{
    static_assert(sizeof...(Is) >= 1, "transform needs at least 1 input");

  public:
    /** Body: consume input values, emit output versions. */
    using ProcessFn = std::function<void(const Is &..., Emitter<O> &,
                                         StageContext &)>;

    TransformStage(std::string name,
                   std::shared_ptr<VersionedBuffer<Is>>... inputs,
                   std::shared_ptr<VersionedBuffer<O>> output,
                   ProcessFn fn)
        : Stage(std::move(name)), ins(std::move(inputs)...),
          out(std::move(output)), fn(std::move(fn))
    {
        // Wake this stage whenever any input publishes.
        std::apply(
            [this](auto &...in) {
                (in->addObserver([this](const auto &) { signal.notify(); }),
                 ...);
            },
            ins);
    }

    void
    run(StageContext &ctx) override
    {
        fatalIf(ctx.workerCount() != 1,
                "TransformStage supports a single worker; parallelize "
                "inside the body instead");
        std::uint64_t seen_signal = 0;
        std::uint64_t processed_sum = 0;
        for (;;) {
            if (!ctx.checkpoint())
                return;

            auto snaps = std::apply(
                [](auto &...in) { return std::make_tuple(in->read()...); },
                ins);
            const bool all_present = std::apply(
                [](const auto &...s) { return ((s.value != nullptr) && ...); },
                snaps);
            const std::uint64_t version_sum = std::apply(
                [](const auto &...s) { return (s.version + ...); }, snaps);
            const bool all_final = std::apply(
                [](const auto &...s) { return (s.final && ...); }, snaps);

            if (!all_present || version_sum == processed_sum) {
                if (all_present && all_final)
                    return; // final inputs already processed
                seen_signal = signal.wait(seen_signal, ctx.stopToken());
                continue;
            }

            Emitter<O> emitter(*out, all_final, [this, version_sum] {
                const std::uint64_t now = std::apply(
                    [](auto &...in) { return (in->version() + ...); },
                    ins);
                return now > version_sum;
            });
            std::apply(
                [&](const auto &...s) { fn(*s.value..., emitter, ctx); },
                snaps);
            if (ctx.stopRequested())
                return;
            processed_sum = version_sum;
            if (all_final)
                return; // g(F_n) done: precise output published
        }
    }

    std::vector<const BufferBase *>
    reads() const override
    {
        std::vector<const BufferBase *> result;
        std::apply([&](const auto &...in) { (result.push_back(in.get()), ...); },
                   ins);
        return result;
    }

    const BufferBase *writes() const override { return out.get(); }

  private:
    std::tuple<std::shared_ptr<VersionedBuffer<Is>>...> ins;
    std::shared_ptr<VersionedBuffer<O>> out;
    ProcessFn fn;
    ChangeSignal signal;
};

/**
 * Convenience non-anytime transform: a pure function applied once per
 * consumed input version (n = 1 in the paper's terms; the pipeline
 * supports non-anytime stages transparently).
 */
template <typename O, typename... Is>
std::shared_ptr<TransformStage<O, Is...>>
makeFunctionStage(std::string name,
                  std::shared_ptr<VersionedBuffer<Is>>... inputs,
                  std::shared_ptr<VersionedBuffer<O>> output,
                  std::function<O(const Is &...)> fn)
{
    return std::make_shared<TransformStage<O, Is...>>(
        std::move(name), std::move(inputs)..., std::move(output),
        [fn = std::move(fn)](const Is &...in, Emitter<O> &emitter,
                             StageContext &) {
            emitter.emit(fn(in...), true);
        });
}

} // namespace anytime

#endif // ANYTIME_CORE_TRANSFORM_STAGE_HPP
