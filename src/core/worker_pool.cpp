#include "core/worker_pool.hpp"

#include <atomic>

#include "fault/fault.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "support/error.hpp"

namespace anytime {

namespace {

/** Process-wide dispatch ordinal for the `pool.dispatch` fault site. */
std::atomic<std::uint64_t> dispatchOrdinal{0};

/** Process-wide pool occupancy metrics (aggregated over all pools). */
struct PoolMetrics
{
    obs::Gauge &busy = obs::defaultRegistry().gauge(
        "anytime_pool_busy_workers",
        "Worker-pool threads currently executing a task.");
    obs::Counter &completed = obs::defaultRegistry().counter(
        "anytime_pool_tasks_completed_total",
        "Tasks run to completion by the worker pools.");
};

PoolMetrics &
poolMetrics()
{
    static PoolMetrics instance;
    return instance;
}

} // namespace

WorkerPool::WorkerPool(unsigned thread_count)
{
    fatalIf(thread_count == 0, "WorkerPool: zero threads");
    threads.reserve(thread_count);
    for (unsigned i = 0; i < thread_count; ++i)
        threads.emplace_back(
            [this](std::stop_token stop) { workerLoop(std::move(stop)); });
}

WorkerPool::~WorkerPool()
{
    shutdown();
}

void
WorkerPool::submit(Task task)
{
    fatalIf(task == nullptr, "WorkerPool::submit: null task");
    {
        MutexLock lock(mutex);
        fatalIf(stopped, "WorkerPool::submit after shutdown");
        queue.push_back(std::move(task));
    }
    workAvailable.notifyOne();
}

unsigned
WorkerPool::idle() const
{
    MutexLock lock(mutex);
    return static_cast<unsigned>(threads.size()) - busyCount;
}

std::size_t
WorkerPool::queued() const
{
    MutexLock lock(mutex);
    return queue.size();
}

std::uint64_t
WorkerPool::tasksCompleted() const
{
    MutexLock lock(mutex);
    return completedCount;
}

void
WorkerPool::shutdown()
{
    {
        MutexLock lock(mutex);
        if (stopped)
            return;
        stopped = true;
    }
    for (auto &thread : threads)
        thread.request_stop();
    workAvailable.notifyAll();
    for (auto &thread : threads) {
        if (thread.joinable())
            thread.join();
    }
}

void
WorkerPool::workerLoop(std::stop_token stop)
{
    for (;;) {
        Task task;
        unsigned busy_now = 0;
        {
            MutexLock lock(mutex);
            workAvailable.wait(lock, stop, [&]() ANYTIME_REQUIRES(mutex) {
                return !queue.empty();
            });
            if (queue.empty())
                return; // stop requested and nothing left to drain
            task = std::move(queue.front());
            queue.pop_front();
            busy_now = ++busyCount;
        }
        poolMetrics().busy.add(1.0);
        if (obs::tracingEnabled())
            obs::traceCounter("pool.busy",
                              static_cast<double>(busy_now));
        // Injection site `pool.dispatch`: a throw here is absorbed (the
        // task MUST still run — dropping it would strand the automaton's
        // activeWorkers accounting and hang waitUntilDone); stall/delay
        // kinds sleep before dispatch, modeling a slow scheduler.
#if ANYTIME_FAULTS_ENABLED
        try {
            ANYTIME_FAULT_POINT(
                "pool.dispatch", std::string(),
                dispatchOrdinal.fetch_add(1,
                                          std::memory_order_relaxed) +
                    1);
        } catch (const std::exception &) {
        }
#endif
        {
            obs::TraceSpan span("pool.task", "pool");
            task();
        }
        {
            MutexLock lock(mutex);
            busy_now = --busyCount;
            ++completedCount;
        }
        poolMetrics().busy.add(-1.0);
        poolMetrics().completed.add();
        if (obs::tracingEnabled())
            obs::traceCounter("pool.busy",
                              static_cast<double>(busy_now));
    }
}

} // namespace anytime
