#include "core/worker_pool.hpp"

#include "support/error.hpp"

namespace anytime {

WorkerPool::WorkerPool(unsigned thread_count)
{
    fatalIf(thread_count == 0, "WorkerPool: zero threads");
    threads.reserve(thread_count);
    for (unsigned i = 0; i < thread_count; ++i)
        threads.emplace_back(
            [this](std::stop_token stop) { workerLoop(std::move(stop)); });
}

WorkerPool::~WorkerPool()
{
    shutdown();
}

void
WorkerPool::submit(Task task)
{
    fatalIf(task == nullptr, "WorkerPool::submit: null task");
    {
        std::lock_guard lock(mutex);
        fatalIf(stopped, "WorkerPool::submit after shutdown");
        queue.push_back(std::move(task));
    }
    workAvailable.notify_one();
}

unsigned
WorkerPool::idle() const
{
    std::lock_guard lock(mutex);
    return static_cast<unsigned>(threads.size()) - busyCount;
}

std::size_t
WorkerPool::queued() const
{
    std::lock_guard lock(mutex);
    return queue.size();
}

std::uint64_t
WorkerPool::tasksCompleted() const
{
    std::lock_guard lock(mutex);
    return completedCount;
}

void
WorkerPool::shutdown()
{
    {
        std::lock_guard lock(mutex);
        if (stopped)
            return;
        stopped = true;
    }
    for (auto &thread : threads)
        thread.request_stop();
    workAvailable.notify_all();
    for (auto &thread : threads) {
        if (thread.joinable())
            thread.join();
    }
}

void
WorkerPool::workerLoop(std::stop_token stop)
{
    for (;;) {
        Task task;
        {
            std::unique_lock lock(mutex);
            workAvailable.wait(lock, stop, [&] { return !queue.empty(); });
            if (queue.empty())
                return; // stop requested and nothing left to drain
            task = std::move(queue.front());
            queue.pop_front();
            ++busyCount;
        }
        task();
        {
            std::lock_guard lock(mutex);
            --busyCount;
            ++completedCount;
        }
    }
}

} // namespace anytime
