/**
 * @file
 * Reusable worker-thread pool for automaton execution.
 *
 * Automaton::start() historically spawned fresh jthreads for every run;
 * a serving system multiplexing many short automaton runs cannot afford
 * per-request thread creation. WorkerPool owns a fixed set of long-lived
 * threads and executes submitted tasks to completion; an automaton
 * started with Automaton::start(WorkerPool &) runs every stage worker as
 * one pool task instead of spawning threads.
 *
 * Tasks may be long-running and may block on each other (pipeline
 * stages wait for upstream publishes), so a group of mutually dependent
 * tasks must only be submitted when the pool has enough idle workers to
 * run the whole group concurrently — otherwise the queued members never
 * start and the running members never finish. The serving runtime
 * enforces this by dispatching an automaton only when its full worker
 * gang fits (see service/server.cpp); direct users of submit() must
 * uphold the same rule.
 */

#ifndef ANYTIME_CORE_WORKER_POOL_HPP
#define ANYTIME_CORE_WORKER_POOL_HPP

#include <cstdint>
#include <deque>
#include <functional>
#include <thread>
#include <vector>

#include "support/sync.hpp"
#include "support/thread_annotations.hpp"

namespace anytime {

/** Fixed-size pool of recyclable worker threads. */
class WorkerPool
{
  public:
    using Task = std::function<void()>;

    /** @param threads Number of worker threads (>= 1). */
    explicit WorkerPool(unsigned threads);

    /** Drains queued tasks, waits for running ones, joins all threads. */
    ~WorkerPool();

    WorkerPool(const WorkerPool &) = delete;
    WorkerPool &operator=(const WorkerPool &) = delete;

    /**
     * Enqueue @p task for execution on the next free worker. Tasks run
     * to completion; the pool never interrupts them.
     */
    void submit(Task task);

    /** Number of worker threads. */
    unsigned size() const { return static_cast<unsigned>(threads.size()); }

    /** Workers currently not executing a task. */
    unsigned idle() const;

    /** Tasks submitted but not yet started. */
    std::size_t queued() const;

    /** Tasks that have run to completion (recycling evidence). */
    std::uint64_t tasksCompleted() const;

    /**
     * Stop accepting tasks, run everything already queued, and join all
     * workers (idempotent; also called by the destructor). Queued tasks
     * are executed, not dropped, so that partially started task groups
     * can still make progress and finish.
     */
    void shutdown();

  private:
    void workerLoop(std::stop_token stop);

    mutable Mutex mutex;
    CondVar workAvailable;
    std::deque<Task> queue ANYTIME_GUARDED_BY(mutex);
    /** Threads are created in the ctor and joined only in shutdown(). */
    std::vector<std::jthread> threads;
    unsigned busyCount ANYTIME_GUARDED_BY(mutex) = 0;
    std::uint64_t completedCount ANYTIME_GUARDED_BY(mutex) = 0;
    bool stopped ANYTIME_GUARDED_BY(mutex) = false;
};

} // namespace anytime

#endif // ANYTIME_CORE_WORKER_POOL_HPP
