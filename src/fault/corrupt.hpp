/**
 * @file
 * Deterministic value corruption for publish-site fault injection.
 *
 * When a `corrupt` rule fires at a `publish:<buffer>` site, the buffer
 * scrambles the copy it is about to publish — modelling a bit-flip in
 * flight between producer and consumer. Corruption is applied only to
 * approximate (non-final) versions: the paper's contract is that the
 * precise output O_n is exact, while any approximate O_i is, by
 * construction, a value consumers must already tolerate being "off".
 *
 * The scramble is deterministic in the injection seed so chaos runs
 * reproduce bit-for-bit, and it keeps values structurally valid (no
 * NaN/Inf for floating point, container sizes unchanged) so degraded
 * outputs remain *valid* approximate outputs — degraded, not garbage.
 *
 * Supported types: arithmetic scalars and vector/array-like containers
 * of arithmetic elements (one element scrambled, chosen by the seed).
 * Anything else is left untouched (corruptValue returns false), which
 * keeps the hook meaningful for the numeric pipelines without forcing
 * every value type to define a corruption semantics.
 */

#ifndef ANYTIME_FAULT_CORRUPT_HPP
#define ANYTIME_FAULT_CORRUPT_HPP

#include <cstdint>
#include <cstring>
#include <type_traits>

#include "fault/fault.hpp"

namespace anytime::fault {

namespace detail {

template <typename T>
concept ArithmeticScalar = std::is_arithmetic_v<T>;

template <typename C>
concept ArithmeticContainer = requires(C &c) {
    { c.size() } -> std::convertible_to<std::size_t>;
    requires ArithmeticScalar<std::remove_reference_t<decltype(c[0])>>;
};

template <ArithmeticScalar T>
void
scramble(T &value, std::uint64_t seed)
{
    if constexpr (std::is_floating_point_v<T>) {
        // Flip low mantissa bits only: exponent and sign survive, so
        // the result stays finite and in the value's neighbourhood.
        using Bits = std::conditional_t<sizeof(T) == 4, std::uint32_t,
                                        std::uint64_t>;
        Bits bits{};
        std::memcpy(&bits, &value, sizeof(T));
        constexpr int mantissa = sizeof(T) == 4 ? 23 : 52;
        const Bits mask =
            static_cast<Bits>(mix64(seed)) &
            ((static_cast<Bits>(1) << (mantissa - 1)) - 1);
        bits ^= mask | 1U; // always change at least one bit
        std::memcpy(&value, &bits, sizeof(T));
    } else if constexpr (std::is_same_v<T, bool>) {
        value = !value;
    } else {
        using U = std::make_unsigned_t<T>;
        auto u = static_cast<U>(value);
        u ^= static_cast<U>(mix64(seed)) | U{1};
        value = static_cast<T>(u);
    }
}

} // namespace detail

/**
 * Scramble @p value deterministically. @p seed must be nonzero (as
 * returned by a firing corrupt rule).
 *
 * @return True iff the type is corruptible and the value was changed.
 */
template <typename T>
bool
corruptValue(T &value, std::uint64_t seed)
{
    if constexpr (detail::ArithmeticScalar<T>) {
        detail::scramble(value, seed);
        return true;
    } else if constexpr (detail::ArithmeticContainer<T>) {
        const std::size_t n = value.size();
        if (n == 0)
            return false;
        auto &element = value[static_cast<std::size_t>(mix64(seed) % n)];
        detail::scramble(element, mix64(seed ^ 0xc0ffeeULL));
        return true;
    } else {
        (void)seed;
        return false;
    }
}

} // namespace anytime::fault

#endif // ANYTIME_FAULT_CORRUPT_HPP
