#include "fault/fault.hpp"

#include <cctype>
#include <fstream>
#include <sstream>
#include <thread>

#include "obs/metrics.hpp"
#include "obs/trace.hpp"

namespace anytime::fault {

std::atomic<bool> FaultInjector::armedFlag{false};

namespace {

std::string
trim(const std::string &text)
{
    std::size_t begin = 0;
    std::size_t end = text.size();
    while (begin < end &&
           std::isspace(static_cast<unsigned char>(text[begin])))
        ++begin;
    while (end > begin &&
           std::isspace(static_cast<unsigned char>(text[end - 1])))
        --end;
    return text.substr(begin, end - begin);
}

std::uint64_t
parseNumber(const std::string &text, const char *what,
            const std::string &token)
{
    if (text.empty())
        fatal("fault plan: empty ", what, " in '", token, "'");
    std::uint64_t value = 0;
    for (char c : text) {
        if (!std::isdigit(static_cast<unsigned char>(c)))
            fatal("fault plan: bad ", what, " '", text, "' in '", token,
                  "'");
        value = value * 10 + static_cast<std::uint64_t>(c - '0');
    }
    return value;
}

FaultKind
parseKind(const std::string &text, const std::string &token)
{
    for (FaultKind kind :
         {FaultKind::thrown, FaultKind::stalled, FaultKind::corrupted,
          FaultKind::overrun}) {
        if (text == faultKindName(kind))
            return kind;
    }
    fatal("fault plan: unknown kind '", text, "' in '", token,
          "' (expected throw|stall|corrupt|overrun)");
}

/** Parse `kind[@first][xcount][:delay_ms]` into @p rule. */
void
parseAction(const std::string &action, const std::string &token,
            FaultRule &rule)
{
    std::size_t kindEnd = action.find_first_of("@x:");
    rule.kind = parseKind(action.substr(0, kindEnd), token);
    // Per-kind default delays: stall must outlast a typical watchdog
    // window; overrun models a blown (but finite) time budget.
    rule.delay = std::chrono::milliseconds(
        rule.kind == FaultKind::stalled ? 100
        : rule.kind == FaultKind::overrun ? 50
                                          : 0);
    std::size_t pos = kindEnd;
    while (pos != std::string::npos && pos < action.size()) {
        const char tag = action[pos];
        std::size_t next = action.find_first_of("@x:", pos + 1);
        const std::string field =
            action.substr(pos + 1, next == std::string::npos
                                       ? std::string::npos
                                       : next - pos - 1);
        if (tag == '@') {
            rule.firstHit = parseNumber(field, "hit ordinal", token);
            fatalIf(rule.firstHit == 0,
                    "fault plan: hit ordinals are 1-based in '", token,
                    "'");
        } else if (tag == 'x') {
            rule.count = parseNumber(field, "repeat count", token);
            fatalIf(rule.count == 0,
                    "fault plan: repeat count must be positive in '",
                    token, "'");
        } else { // ':'
            const std::uint64_t ms =
                parseNumber(field, "delay", token);
            fatalIf(ms > 10000,
                    "fault plan: delay ", ms, "ms exceeds the 10s cap in '",
                    token, "'");
            rule.delay = std::chrono::milliseconds(ms);
        }
        pos = next;
    }
}

} // namespace

FaultPlan
FaultPlan::parse(const std::string &spec)
{
    FaultPlan plan;
    std::string token;
    std::istringstream stream(spec);
    while (std::getline(stream, token, ',')) {
        // File form: newline separated with # comments.
        std::istringstream lines(token);
        std::string line;
        while (std::getline(lines, line)) {
            line = trim(line);
            if (line.empty() || line[0] == '#')
                continue;
            const std::size_t eq = line.find('=');
            fatalIf(eq == std::string::npos,
                    "fault plan: expected site=kind in '", line, "'");
            const std::string site = trim(line.substr(0, eq));
            const std::string action = trim(line.substr(eq + 1));
            fatalIf(site.empty(), "fault plan: empty site in '", line,
                    "'");
            if (site == "seed") {
                plan.seed = parseNumber(action, "seed", line);
                continue;
            }
            FaultRule rule;
            rule.site = site;
            parseAction(action, line, rule);
            plan.rules.push_back(std::move(rule));
        }
    }
    return plan;
}

FaultPlan
FaultPlan::fromSpecOrFile(const std::string &arg)
{
    std::ifstream file(arg);
    if (file) {
        std::ostringstream contents;
        contents << file.rdbuf();
        return parse(contents.str());
    }
    return parse(arg);
}

std::string
FaultPlan::describe() const
{
    std::ostringstream out;
    out << "seed=" << seed;
    for (const FaultRule &rule : rules) {
        out << "," << rule.site << "=" << faultKindName(rule.kind);
        if (rule.firstHit != 1)
            out << "@" << rule.firstHit;
        if (rule.count != 1)
            out << "x" << rule.count;
        if (rule.delay.count() > 0)
            out << ":" << rule.delay.count();
    }
    return out.str();
}

FaultInjector &
FaultInjector::instance()
{
    static FaultInjector injector;
    return injector;
}

void
FaultInjector::arm(FaultPlan plan)
{
    auto fresh = std::make_shared<State>();
    fresh->seed = plan.seed;
    fresh->description = plan.describe();
    fresh->rules.reserve(plan.rules.size());
    for (FaultRule &rule : plan.rules) {
        auto state = std::make_unique<RuleState>();
        state->rule = std::move(rule);
        fresh->rules.push_back(std::move(state));
    }
    FaultInjector &self = instance();
    {
        MutexLock lock(self.mutex);
        self.state = std::move(fresh);
    }
    armedFlag.store(true, std::memory_order_release);
}

void
FaultInjector::disarm()
{
    armedFlag.store(false, std::memory_order_release);
    FaultInjector &self = instance();
    MutexLock lock(self.mutex);
    self.state = nullptr;
}

std::shared_ptr<FaultInjector::State>
FaultInjector::currentState() const
{
    MutexLock lock(mutex);
    return state;
}

void
FaultInjector::recordInjection(FaultKind kind, const std::string &site)
{
    static obs::Counter &injected = obs::defaultRegistry().counter(
        "anytime_faults_injected_total",
        "Faults fired by the deterministic fault injector");
    injected.add(1);
    if (obs::tracingEnabled()) {
        obs::traceInstant(obs::internName("fault:" + site), "fault",
                          {"kind", static_cast<double>(
                                       static_cast<int>(kind))});
    }
}

void
FaultInjector::hit(const char *base, const std::string &detail,
                   std::uint64_t ordinal)
{
    auto active = currentState();
    if (active == nullptr)
        return;
    const std::string full =
        detail.empty() ? std::string(base)
                       : std::string(base) + ":" + detail;
    for (auto &ruleState : active->rules) {
        const FaultRule &rule = ruleState->rule;
        if (rule.kind == FaultKind::corrupted)
            continue; // corrupt rules fire through corruptSeed()
        if (rule.site != base && rule.site != full)
            continue;
        const std::uint64_t match =
            ruleState->matches.fetch_add(1, std::memory_order_relaxed) +
            1;
        if (match < rule.firstHit || match >= rule.firstHit + rule.count)
            continue;
        active->injected.fetch_add(1, std::memory_order_relaxed);
        recordInjection(rule.kind, full);
        switch (rule.kind) {
          case FaultKind::thrown:
            throw StageError(FaultKind::thrown,
                             detail.empty() ? base : detail, ordinal,
                             "injected fault at " + full);
          case FaultKind::stalled:
          case FaultKind::overrun:
            std::this_thread::sleep_for(rule.delay);
            break;
          case FaultKind::none:
          case FaultKind::corrupted:
            break;
        }
    }
}

std::uint64_t
FaultInjector::corruptSeed(const char *base, const std::string &detail)
{
    auto active = currentState();
    if (active == nullptr)
        return 0;
    const std::string full =
        detail.empty() ? std::string(base)
                       : std::string(base) + ":" + detail;
    for (std::size_t i = 0; i < active->rules.size(); ++i) {
        auto &ruleState = *active->rules[i];
        const FaultRule &rule = ruleState.rule;
        if (rule.kind != FaultKind::corrupted)
            continue;
        if (rule.site != base && rule.site != full)
            continue;
        const std::uint64_t match =
            ruleState.matches.fetch_add(1, std::memory_order_relaxed) +
            1;
        if (match < rule.firstHit || match >= rule.firstHit + rule.count)
            continue;
        active->injected.fetch_add(1, std::memory_order_relaxed);
        recordInjection(FaultKind::corrupted, full);
        // Deterministic nonzero per-hit seed.
        return mix64(active->seed ^ (static_cast<std::uint64_t>(i) << 32)
                     ^ match) |
               1ULL;
    }
    return 0;
}

std::uint64_t
FaultInjector::injectedTotal() const
{
    auto active = currentState();
    return active == nullptr
               ? 0
               : active->injected.load(std::memory_order_relaxed);
}

std::string
FaultInjector::armedPlan() const
{
    auto active = currentState();
    return active == nullptr ? std::string() : active->description;
}

} // namespace anytime::fault
