/**
 * @file
 * Deterministic fault injection (chaos testing for the anytime model).
 *
 * The paper's guarantee is that execution "can be interrupted at any
 * moment with a valid approximate output in hand" (§III). A fault is an
 * involuntary interruption, so the runtime should absorb it the same
 * way it absorbs a stop: degrade to the last published version. This
 * subsystem injects such faults deterministically so the containment
 * paths (stage quarantine, watchdog expulsion, service retry/circuit
 * breaker) can be exercised in CI with reproducible schedules.
 *
 * Model:
 *  - A FaultPlan is a seed plus a list of FaultRules parsed from a
 *    compact spec: `site=kind[@first][xcount][:delay_ms]`, comma (or
 *    newline) separated, plus `seed=N`. Example:
 *        "stage.body:smooth=throw@3,pool.dispatch=stall:50,seed=7"
 *    fires an exception on the 3rd checkpoint of stage `smooth` and a
 *    50 ms stall on the first pool dispatch.
 *  - Injection sites are named `base:detail` (detail optional). A rule
 *    whose site equals just the base matches every detail. Sites wired
 *    into the runtime: `stage.body:<stage>` (StageContext::checkpoint),
 *    `sweep.merge:<stage>` (partitioned-sweep leader merge),
 *    `pool.dispatch` (WorkerPool task dispatch), `publish:<buffer>`
 *    (VersionedBuffer publish, corrupt only, approximate versions
 *    only), `service.build` (AnytimeServer pipeline build),
 *    `net.write:<peer>` (one hit per socket write on the network
 *    reactor — a thrown fault severs that connection mid-stream, which
 *    must cancel the orphaned request like a client disconnect),
 *    `service.brownout:<level>` (one hit per brownout level
 *    transition — a thrown fault aborts that transition fail-static:
 *    the level holds and a later evaluation retries),
 *    `net.drain:<peer>` (one hit per connection announced to during a
 *    graceful drain — a thrown fault severs that connection's drain
 *    notice; its request cancels through the disconnect path and the
 *    accounting identity still holds).
 *  - Kinds map onto the FaultKind taxonomy in support/error.hpp:
 *    `throw` raises StageError, `stall`/`overrun` sleep for delay_ms
 *    (stall defaults to 100 ms — long enough to trip a watchdog —
 *    overrun to 50 ms, modelling a blown time budget), `corrupt`
 *    scrambles the published value (corrupt.hpp).
 *
 * Cost model: compiled out entirely (macro no-ops, constexpr-zero
 * helpers) unless ANYTIME_FAULTS_ENABLED; when compiled in but not
 * armed, every site is one relaxed atomic load. Rule matching and hit
 * counting only run while a plan is armed.
 *
 * Determinism: per-rule hit ordinals are atomic counters, so sites
 * that are sequential per matching rule (e.g. publishes of one buffer
 * — single-writer by Property 2) fire on exactly the configured hit.
 * Corruption seeds derive from (plan seed, rule index, hit ordinal)
 * via splitmix64, so a corrupted value is reproducible bit-for-bit.
 *
 * The "Sites wired into the runtime" list above is a checked registry:
 * tools/anytime_verify/registry_check.py cross-references every
 * ANYTIME_FAULT_POINT / corruptSeed call site in src/ against this
 * comment and against the chaos tests, and CI fails on drift in either
 * direction. When wiring a new site, add it to the list above and
 * exercise it under tests/.
 */

#ifndef ANYTIME_FAULT_FAULT_HPP
#define ANYTIME_FAULT_FAULT_HPP

#include <atomic>
#include <chrono>
#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "support/error.hpp"
#include "support/sync.hpp"
#include "support/thread_annotations.hpp"

#ifndef ANYTIME_FAULTS_ENABLED
#define ANYTIME_FAULTS_ENABLED 0
#endif

namespace anytime::fault {

/** One injection rule: where, what, and on which hits. */
struct FaultRule
{
    /** Site to match: full `base:detail` or bare base (any detail). */
    std::string site;
    /** What happens when the rule fires. */
    FaultKind kind = FaultKind::none;
    /** 1-based match ordinal on which the rule starts firing. */
    std::uint64_t firstHit = 1;
    /** Number of consecutive matches that fire. */
    std::uint64_t count = 1;
    /** Sleep duration for stall/overrun kinds. */
    std::chrono::milliseconds delay{0};
};

/** A seeded, reproducible schedule of fault injections. */
struct FaultPlan
{
    std::uint64_t seed = 1;
    std::vector<FaultRule> rules;

    bool empty() const { return rules.empty(); }

    /**
     * Parse an inline spec (see file comment for the grammar).
     * Throws FatalError with a one-line message on malformed input.
     */
    static FaultPlan parse(const std::string &spec);

    /**
     * Load from @p arg: if it names a readable file, parse its
     * contents (newline separated, `#` comments); otherwise parse it
     * as an inline spec.
     */
    static FaultPlan fromSpecOrFile(const std::string &arg);

    /** Canonical one-line rendering (round-trips through parse()). */
    std::string describe() const;
};

/** splitmix64 — the corruption-seed mixer (public for tests). */
constexpr std::uint64_t
mix64(std::uint64_t x) noexcept
{
    x += 0x9e3779b97f4a7c15ULL;
    x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
    x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
    return x ^ (x >> 31);
}

/**
 * Process-wide fault injector. Arm it with a plan before starting the
 * automaton/server under test and disarm afterwards; arming while
 * sites are being hit is safe (rules swap atomically) but blurs which
 * hits the plan counts, so tests should quiesce first.
 */
class FaultInjector
{
  public:
    /** Fast path: one relaxed atomic load, checked at every site. */
    static bool
    armed() noexcept
    {
        return armedFlag.load(std::memory_order_relaxed);
    }

    /** Install @p plan and start matching hits against it. */
    static void arm(FaultPlan plan);

    /** Stop injecting (hit counters of the armed plan are dropped). */
    static void disarm();

    /** The process-wide injector instance. */
    static FaultInjector &instance();

    /**
     * Slow path for action sites — only call while armed(). Counts
     * the hit against every matching rule; a firing `throw` rule
     * raises StageError(kind, detail, ordinal), a firing stall or
     * overrun rule sleeps for the rule's delay.
     *
     * @param base    Site base name (e.g. "stage.body").
     * @param detail  Site detail (stage/buffer name; may be empty).
     * @param ordinal Caller-side progress ordinal (window/version
     *                number) — recorded in the StageError, not used
     *                for matching.
     */
    void hit(const char *base, const std::string &detail,
             std::uint64_t ordinal);

    /**
     * Corrupt-site query — only call while armed(). Returns a nonzero
     * deterministic seed when a `corrupt` rule fires for this hit,
     * zero otherwise. The caller scrambles its value with the seed
     * (see corrupt.hpp).
     */
    std::uint64_t corruptSeed(const char *base, const std::string &detail);

    /** Total faults injected since the last arm(). */
    std::uint64_t injectedTotal() const;

    /** Description of the armed plan ("" when disarmed). */
    std::string armedPlan() const;

  private:
    struct RuleState
    {
        FaultRule rule;
        std::atomic<std::uint64_t> matches{0};
    };

    struct State
    {
        std::uint64_t seed = 1;
        std::string description;
        std::vector<std::unique_ptr<RuleState>> rules;
        std::atomic<std::uint64_t> injected{0};
    };

    std::shared_ptr<State> currentState() const;
    void recordInjection(FaultKind kind, const std::string &site);

    static std::atomic<bool> armedFlag;

    mutable Mutex mutex;
    std::shared_ptr<State> state ANYTIME_GUARDED_BY(mutex);
};

#if ANYTIME_FAULTS_ENABLED

/** Corrupt-seed query for publish sites (0 = leave the value alone). */
inline std::uint64_t
publishCorruptSeed(const std::string &buffer)
{
    if (!FaultInjector::armed())
        return 0;
    return FaultInjector::instance().corruptSeed("publish", buffer);
}

/**
 * Action site with unevaluated arguments when compiled out. `base` must
 * be a string literal; `detail` a std::string; `ordinal` integral.
 */
#define ANYTIME_FAULT_POINT(base, detail, ordinal)                        \
    do {                                                                  \
        if (::anytime::fault::FaultInjector::armed())                     \
            ::anytime::fault::FaultInjector::instance().hit(              \
                base, detail, ordinal);                                   \
    } while (0)

#else // !ANYTIME_FAULTS_ENABLED — zero-cost no-ops

inline constexpr std::uint64_t
publishCorruptSeed(const std::string &)
{
    return 0;
}

#define ANYTIME_FAULT_POINT(base, detail, ordinal)                        \
    do {                                                                  \
    } while (0)

#endif // ANYTIME_FAULTS_ENABLED

} // namespace anytime::fault

#endif // ANYTIME_FAULT_FAULT_HPP
