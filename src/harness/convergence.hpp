/**
 * @file
 * Online convergence estimation for automatic stopping.
 *
 * Paper Section III-A: "The decision of stopping can either be
 * automated via dynamic accuracy metrics, user-specified or enforced by
 * time/energy constraints." At runtime the precise output is unknown,
 * so an absolute error metric cannot be evaluated — but the *distance
 * between successive versions* can. For a diffusive stage, version
 * deltas shrink as the remaining unsampled fraction shrinks, so a small
 * successive-version delta (sustained over a few versions) is a strong
 * signal that further refinement buys little. This is the
 * whole-application-output analogue of the dynamic quality-control
 * loops (e.g., Rumba) the paper contrasts with — enabled precisely by
 * the automaton's early availability of whole outputs.
 */

#ifndef ANYTIME_HARNESS_CONVERGENCE_HPP
#define ANYTIME_HARNESS_CONVERGENCE_HPP

#include <cmath>
#include <cstdint>
#include <limits>
#include <utility>

#include "support/error.hpp"

namespace anytime {

/**
 * Tracks the distance between successive output versions and decides
 * when the sequence has converged "well enough".
 */
class ConvergenceEstimator
{
  public:
    /**
     * @param threshold Converged once the relative delta (delta
     *                  divided by the output magnitude) stays below
     *                  this for @p patience consecutive versions.
     * @param patience  Consecutive below-threshold deltas required
     *                  (guards against plateaus in staircase profiles).
     */
    explicit ConvergenceEstimator(double threshold = 0.01,
                                  unsigned patience = 2)
        : threshold(threshold), patience(patience)
    {
        fatalIf(threshold <= 0.0, "convergence threshold must be > 0");
        fatalIf(patience == 0, "convergence patience must be >= 1");
    }

    /**
     * Feed the next version's distance-to-previous and magnitude.
     *
     * @param delta     Distance between version i and version i-1
     *                  (e.g., RMSE between images).
     * @param magnitude Scale of the output (e.g., RMS of the image);
     *                  used to normalize the delta.
     */
    void
    observe(double delta, double magnitude)
    {
        ++versions;
        const double relative =
            (magnitude > 0.0) ? delta / magnitude : delta;
        lastRelative = relative;
        if (relative < threshold)
            ++belowCount;
        else
            belowCount = 0;
    }

    /** Versions observed so far (deltas, so first version not counted). */
    std::uint64_t observed() const { return versions; }

    /** Latest relative delta. */
    double lastRelativeDelta() const { return lastRelative; }

    /** True once the sequence has been quiet for `patience` versions. */
    bool converged() const { return belowCount >= patience; }

  private:
    double threshold;
    unsigned patience;
    unsigned belowCount = 0;
    std::uint64_t versions = 0;
    double lastRelative = std::numeric_limits<double>::infinity();
};

/**
 * Convenience: successive-version RMS distance and RMS magnitude for
 * containers with size() and operator[] (images, vectors).
 */
template <typename Container>
std::pair<double, double>
versionDeltaRms(const Container &previous, const Container &current)
{
    fatalIf(previous.size() != current.size(),
            "versionDeltaRms: size mismatch");
    double delta_sq = 0.0;
    double magnitude_sq = 0.0;
    for (std::size_t i = 0; i < current.size(); ++i) {
        const double c = static_cast<double>(current[i]);
        const double d = c - static_cast<double>(previous[i]);
        delta_sq += d * d;
        magnitude_sq += c * c;
    }
    const double n = static_cast<double>(current.size());
    return {std::sqrt(delta_sq / n), std::sqrt(magnitude_sq / n)};
}

} // namespace anytime

#endif // ANYTIME_HARNESS_CONVERGENCE_HPP
