#include "harness/profiler.hpp"

namespace anytime {

double
timeBestOf(const std::function<void()> &fn, unsigned repeats)
{
    double best = 0.0;
    for (unsigned i = 0; i < std::max(1u, repeats); ++i) {
        Stopwatch watch;
        fn();
        const double t = watch.seconds();
        if (i == 0 || t < best)
            best = t;
    }
    return best;
}

} // namespace anytime
