/**
 * @file
 * Runtime-accuracy profiling harness.
 *
 * Reproduces the paper's Figures 11-15 methodology: run an automaton,
 * timestamp every published version of the application output, and
 * score each version against the precise baseline output with an
 * accuracy metric (SNR dB). Runtime is reported normalized to the
 * measured baseline (precise, non-automaton) execution time, exactly
 * like the paper's x-axes.
 */

#ifndef ANYTIME_HARNESS_PROFILER_HPP
#define ANYTIME_HARNESS_PROFILER_HPP

#include <functional>
#include <memory>
#include <vector>

#include "core/automaton.hpp"
#include "core/buffer.hpp"
#include "support/stopwatch.hpp"
#include "support/sync.hpp"
#include "support/thread_annotations.hpp"

namespace anytime {

/**
 * Records every version published into a buffer, with a wall-clock
 * timestamp relative to startClock().
 *
 * @tparam T Buffer value type.
 */
template <typename T>
class TimelineRecorder
{
  public:
    struct Entry
    {
        double seconds = 0.0;
        std::uint64_t version = 0;
        bool final = false;
        std::shared_ptr<const T> value;
    };

    /** Subscribe to @p buffer (registration is thread-safe; versions
     *  published before this call are not recorded). */
    explicit TimelineRecorder(VersionedBuffer<T> &buffer)
    {
        buffer.addObserver([this](const Snapshot<T> &snapshot) {
            const double t = watch.seconds();
            MutexLock lock(mutex);
            entryList.push_back(Entry{t, snapshot.version, snapshot.final,
                                      snapshot.value});
        });
    }

    /** Zero the timeline clock (call immediately before start()). */
    void startClock() { watch.reset(); }

    /** Snapshot of the recorded timeline. */
    std::vector<Entry>
    entries() const
    {
        MutexLock lock(mutex);
        return entryList;
    }

  private:
    Stopwatch watch;
    mutable Mutex mutex;
    std::vector<Entry> entryList ANYTIME_GUARDED_BY(mutex);
};

/** One point of a runtime-accuracy profile (a figure data point). */
struct ProfilePoint
{
    /** Wall-clock seconds from automaton start to this version. */
    double seconds = 0.0;
    /** seconds / baseline precise runtime (the paper's x-axis). */
    double normalizedRuntime = 0.0;
    /** Buffer version number. */
    std::uint64_t version = 0;
    /** Accuracy in dB (the paper's y-axis); +inf when bit-exact. */
    double accuracyDb = 0.0;
    /** True iff this is the precise output. */
    bool final = false;
};

/**
 * Run @p automaton to completion while recording @p output, then score
 * every recorded version with @p metric against the baseline.
 *
 * @tparam T               Output value type.
 * @param automaton        The automaton (not yet started).
 * @param output           Its application output buffer.
 * @param metric           Accuracy metric in dB: metric(version value).
 * @param baselineSeconds  Measured precise baseline runtime.
 */
template <typename T>
std::vector<ProfilePoint>
profileToCompletion(Automaton &automaton, VersionedBuffer<T> &output,
                    const std::function<double(const T &)> &metric,
                    double baseline_seconds)
{
    TimelineRecorder<T> recorder(output);
    recorder.startClock();
    automaton.start();
    automaton.waitUntilDone();
    automaton.shutdown();

    std::vector<ProfilePoint> profile;
    for (const auto &entry : recorder.entries()) {
        ProfilePoint point;
        point.seconds = entry.seconds;
        point.normalizedRuntime =
            (baseline_seconds > 0.0) ? entry.seconds / baseline_seconds
                                     : 0.0;
        point.version = entry.version;
        point.accuracyDb = metric(*entry.value);
        point.final = entry.final;
        profile.push_back(point);
    }
    return profile;
}

/**
 * Time a callable: best of @p repeats runs (seconds). The callable's
 * result is discarded; it must be side-effect-free.
 */
double timeBestOf(const std::function<void()> &fn, unsigned repeats = 3);

} // namespace anytime

#endif // ANYTIME_HARNESS_PROFILER_HPP
