#include "harness/report.hpp"

#include <cmath>
#include <cstdio>
#include <fstream>
#include <iostream>

#include "obs/metrics.hpp"
#include "support/error.hpp"

namespace anytime {

std::string
formatDouble(double value, int precision)
{
    if (std::isinf(value))
        return value > 0 ? "inf" : "-inf";
    if (std::isnan(value))
        return "nan";
    char buffer[64];
    std::snprintf(buffer, sizeof(buffer), "%.*f", precision, value);
    return buffer;
}

void
printTable(const SeriesTable &table)
{
    std::vector<std::size_t> widths(table.columns.size());
    for (std::size_t c = 0; c < table.columns.size(); ++c)
        widths[c] = table.columns[c].size();
    for (const auto &row : table.rows) {
        for (std::size_t c = 0; c < row.size() && c < widths.size(); ++c)
            widths[c] = std::max(widths[c], row[c].size());
    }

    std::cout << "== " << table.title << " ==\n";
    const auto print_row = [&](const std::vector<std::string> &row) {
        for (std::size_t c = 0; c < row.size(); ++c) {
            std::cout << (c == 0 ? "" : "  ");
            std::cout.width(static_cast<std::streamsize>(widths[c]));
            std::cout << row[c];
        }
        std::cout << '\n';
    };
    std::cout.setf(std::ios::right);
    print_row(table.columns);
    for (const auto &row : table.rows)
        print_row(row);
    std::cout.flush();
}

void
writeCsv(const SeriesTable &table, const std::string &path)
{
    std::ofstream out(path);
    fatalIf(!out, "cannot open ", path, " for writing");
    for (std::size_t c = 0; c < table.columns.size(); ++c)
        out << (c ? "," : "") << table.columns[c];
    out << '\n';
    for (const auto &row : table.rows) {
        for (std::size_t c = 0; c < row.size(); ++c)
            out << (c ? "," : "") << row[c];
        out << '\n';
    }
}

SeriesTable
metricsTable(const obs::MetricsRegistry &registry,
             const std::string &title)
{
    SeriesTable table;
    table.title = title;
    table.columns = {"metric", "type",    "value", "mean_ms",
                     "p50_ms", "p95_ms", "p99_ms"};
    for (const obs::MetricSnapshot &metric : registry.snapshot()) {
        std::vector<std::string> row;
        row.push_back(metric.name);
        switch (metric.kind) {
          case obs::MetricKind::counter:
            row.insert(row.end(),
                       {"counter", formatDouble(metric.value, 0), "-",
                        "-", "-", "-"});
            break;
          case obs::MetricKind::gauge:
            row.insert(row.end(),
                       {"gauge", formatDouble(metric.value, 3), "-", "-",
                        "-", "-"});
            break;
          case obs::MetricKind::histogram: {
            const double n = static_cast<double>(metric.count);
            const double mean = metric.count == 0 ? 0.0 : metric.sum / n;
            row.insert(row.end(),
                       {"histogram", std::to_string(metric.count),
                        formatDouble(mean * 1e3, 3),
                        formatDouble(metric.p50 * 1e3, 3),
                        formatDouble(metric.p95 * 1e3, 3),
                        formatDouble(metric.p99 * 1e3, 3)});
            break;
          }
        }
        table.rows.push_back(std::move(row));
    }
    return table;
}

SeriesTable
profileTable(const std::string &title,
             const std::vector<ProfilePoint> &profile)
{
    SeriesTable table;
    table.title = title;
    table.columns = {"runtime_norm", "seconds", "version", "snr_db",
                     "final"};
    for (const auto &point : profile) {
        table.rows.push_back({formatDouble(point.normalizedRuntime),
                              formatDouble(point.seconds, 4),
                              std::to_string(point.version),
                              formatDouble(point.accuracyDb, 1),
                              point.final ? "yes" : "no"});
    }
    return table;
}

} // namespace anytime
