/**
 * @file
 * Plain-text series reporting for the figure-reproduction benches.
 *
 * Each bench prints the same rows/series the paper's figures plot:
 * a header naming the experiment, column labels, and aligned data rows.
 * A CSV sink is also provided so profiles can be re-plotted externally.
 */

#ifndef ANYTIME_HARNESS_REPORT_HPP
#define ANYTIME_HARNESS_REPORT_HPP

#include <string>
#include <vector>

#include "harness/profiler.hpp"

namespace anytime {

namespace obs {
class MetricsRegistry;
} // namespace obs

/** A printable table: column headers plus stringified rows. */
struct SeriesTable
{
    std::string title;
    std::vector<std::string> columns;
    std::vector<std::vector<std::string>> rows;
};

/** Format a double with fixed precision ("inf" for infinities). */
std::string formatDouble(double value, int precision = 3);

/** Print @p table to stdout with aligned columns. */
void printTable(const SeriesTable &table);

/** Write @p table as CSV to @p path. */
void writeCsv(const SeriesTable &table, const std::string &path);

/**
 * Build the standard runtime-accuracy table (the paper's Figure 11-15
 * format) from a profile.
 */
SeriesTable profileTable(const std::string &title,
                         const std::vector<ProfilePoint> &profile);

/**
 * Bridge the live metrics registry into the repo's standard report
 * format: one row per metric (counters/gauges print their value,
 * histograms their count, mean, and p50/p95/p99 in milliseconds).
 */
SeriesTable metricsTable(const obs::MetricsRegistry &registry,
                         const std::string &title);

} // namespace anytime

#endif // ANYTIME_HARNESS_REPORT_HPP
