/**
 * @file
 * Per-stage execution statistics reporting.
 *
 * Summarizes an automaton's stages after (or during) a run: worker
 * counts, work units completed (the energy proxy), checkpoints taken,
 * and output buffer state. Benches and the CLI print this to make the
 * pipeline's behavior inspectable ("where did the time/energy go?").
 */

#ifndef ANYTIME_HARNESS_STATS_REPORT_HPP
#define ANYTIME_HARNESS_STATS_REPORT_HPP

#include "core/automaton.hpp"
#include "harness/report.hpp"

namespace anytime {

/** Build a printable per-stage statistics table for @p automaton. */
inline SeriesTable
stageStatsTable(const Automaton &automaton)
{
    SeriesTable table;
    table.title = "stage stats";
    table.columns = {"stage", "workers", "steps", "checkpoints",
                     "out_versions", "out_final"};
    for (const auto &placement : automaton.stages()) {
        const Stage &stage = *placement.stage;
        const BufferBase *out = stage.writes();
        table.rows.push_back(
            {stage.name(), std::to_string(placement.workers),
             std::to_string(stage.stats().steps.load()),
             std::to_string(stage.stats().checkpoints.load()),
             out ? std::to_string(out->version()) : "-",
             out ? (out->final() ? "yes" : "no") : "-"});
    }
    return table;
}

} // namespace anytime

#endif // ANYTIME_HARNESS_STATS_REPORT_HPP
