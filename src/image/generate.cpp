#include "image/generate.hpp"

#include <algorithm>
#include <cmath>
#include <vector>

#include "support/rng.hpp"

namespace anytime {

namespace {

/** Clamp a float to [0, 255] and round to uint8. */
std::uint8_t
toByte(double v)
{
    return static_cast<std::uint8_t>(
        v <= 0.0 ? 0 : (v >= 255.0 ? 255 : v + 0.5));
}

/** Single-octave value noise lattice sampler. */
class NoiseLattice
{
  public:
    NoiseLattice(std::size_t cells_x, std::size_t cells_y,
                 std::uint64_t seed)
        : cx(cells_x + 2), cy(cells_y + 2), values(cx * cy)
    {
        Xoshiro256 rng(seed);
        for (auto &v : values)
            v = rng.nextDouble();
    }

    /** Bilinear sample at lattice coordinates (u, v). */
    double
    sample(double u, double v) const
    {
        const std::size_t x0 = std::min<std::size_t>(
            static_cast<std::size_t>(u), cx - 2);
        const std::size_t y0 = std::min<std::size_t>(
            static_cast<std::size_t>(v), cy - 2);
        const double fx = u - static_cast<double>(x0);
        const double fy = v - static_cast<double>(y0);
        const double a = values[y0 * cx + x0];
        const double b = values[y0 * cx + x0 + 1];
        const double c = values[(y0 + 1) * cx + x0];
        const double d = values[(y0 + 1) * cx + x0 + 1];
        return a * (1 - fx) * (1 - fy) + b * fx * (1 - fy) +
               c * (1 - fx) * fy + d * fx * fy;
    }

  private:
    std::size_t cx, cy;
    std::vector<double> values;
};

} // namespace

FloatImage
generateValueNoise(std::size_t width, std::size_t height,
                   std::uint64_t seed, unsigned octaves,
                   std::size_t base_period)
{
    FloatImage out(width, height, 0.f);
    double amplitude = 1.0;
    double total_amplitude = 0.0;
    std::size_t period = std::max<std::size_t>(base_period, 2);

    for (unsigned octave = 0; octave < octaves; ++octave) {
        NoiseLattice lattice(width / period + 1, height / period + 1,
                             seed + octave * 0x9e3779b9ULL);
        for (std::size_t y = 0; y < height; ++y) {
            for (std::size_t x = 0; x < width; ++x) {
                const double u = static_cast<double>(x) / period;
                const double v = static_cast<double>(y) / period;
                out.at(x, y) += static_cast<float>(
                    amplitude * lattice.sample(u, v));
            }
        }
        total_amplitude += amplitude;
        amplitude *= 0.5;
        period = std::max<std::size_t>(period / 2, 2);
    }

    for (std::size_t i = 0; i < out.size(); ++i)
        out[i] = static_cast<float>(out[i] / total_amplitude);
    return out;
}

GrayImage
generateScene(std::size_t width, std::size_t height, std::uint64_t seed)
{
    Xoshiro256 rng(seed);
    const FloatImage noise =
        generateValueNoise(width, height, seed ^ 0xabcdefULL, 4,
                           std::max<std::size_t>(width / 8, 4));

    GrayImage image(width, height);
    // Diagonal gradient base plus texture noise.
    for (std::size_t y = 0; y < height; ++y) {
        for (std::size_t x = 0; x < width; ++x) {
            const double grad =
                170.0 * (static_cast<double>(x) / width) +
                110.0 * (static_cast<double>(y) / height);
            image.at(x, y) = toByte(grad + 80.0 * noise.at(x, y) - 30.0);
        }
    }

    // Hard-edged shapes: filled circles and rectangles of varied
    // intensity give the convolution and wavelet kernels real edges.
    const unsigned shape_count = 12;
    for (unsigned s = 0; s < shape_count; ++s) {
        const std::size_t cx0 = rng.nextBelow(width);
        const std::size_t cy0 = rng.nextBelow(height);
        const std::size_t extent =
            2 + rng.nextBelow(std::max<std::size_t>(width / 6, 3));
        const std::uint8_t shade =
            static_cast<std::uint8_t>(20 + rng.nextBelow(216));
        const bool circle = (rng.next() & 1) != 0;
        for (std::size_t y = (cy0 > extent ? cy0 - extent : 0);
             y < std::min(height, cy0 + extent); ++y) {
            for (std::size_t x = (cx0 > extent ? cx0 - extent : 0);
                 x < std::min(width, cx0 + extent); ++x) {
                if (circle) {
                    const double dx = static_cast<double>(x) -
                                      static_cast<double>(cx0);
                    const double dy = static_cast<double>(y) -
                                      static_cast<double>(cy0);
                    if (dx * dx + dy * dy >
                        static_cast<double>(extent) * extent)
                        continue;
                }
                image.at(x, y) = shade;
            }
        }
    }

    // A sinusoidal patch exercises mid-frequency content for the DWT.
    for (std::size_t y = 0; y < height / 3; ++y) {
        for (std::size_t x = 0; x < width / 3; ++x) {
            const double wave =
                127.5 + 80.0 * std::sin(0.35 * static_cast<double>(x)) *
                            std::cos(0.27 * static_cast<double>(y));
            const std::size_t px = width - width / 3 + x;
            image.at(px, y) = toByte(
                0.5 * image.at(px, y) + 0.5 * wave);
        }
    }
    return image;
}

RgbImage
generateColorScene(std::size_t width, std::size_t height,
                   std::uint64_t seed)
{
    // Three decorrelated grayscale scenes become the channels; then a
    // handful of saturated color blobs give k-means real clusters.
    const GrayImage r = generateScene(width, height, seed);
    const GrayImage g = generateScene(width, height, seed + 101);
    const GrayImage b = generateScene(width, height, seed + 202);

    RgbImage image(width, height);
    for (std::size_t i = 0; i < image.size(); ++i)
        image[i] = RgbPixel{r[i], g[i], b[i]};

    Xoshiro256 rng(seed ^ 0x5eedULL);
    const unsigned blob_count = 8;
    for (unsigned s = 0; s < blob_count; ++s) {
        const std::size_t cx0 = rng.nextBelow(width);
        const std::size_t cy0 = rng.nextBelow(height);
        const std::size_t extent =
            3 + rng.nextBelow(std::max<std::size_t>(width / 5, 4));
        const RgbPixel color{
            static_cast<std::uint8_t>(rng.nextBelow(256)),
            static_cast<std::uint8_t>(rng.nextBelow(256)),
            static_cast<std::uint8_t>(rng.nextBelow(256))};
        for (std::size_t y = (cy0 > extent ? cy0 - extent : 0);
             y < std::min(height, cy0 + extent); ++y) {
            for (std::size_t x = (cx0 > extent ? cx0 - extent : 0);
                 x < std::min(width, cx0 + extent); ++x) {
                const double dx =
                    static_cast<double>(x) - static_cast<double>(cx0);
                const double dy =
                    static_cast<double>(y) - static_cast<double>(cy0);
                if (dx * dx + dy * dy <=
                    static_cast<double>(extent) * extent)
                    image.at(x, y) = color;
            }
        }
    }
    return image;
}

GrayImage
bayerMosaic(const RgbImage &source)
{
    GrayImage mosaic(source.width(), source.height());
    for (std::size_t y = 0; y < source.height(); ++y) {
        for (std::size_t x = 0; x < source.width(); ++x) {
            const RgbPixel &p = source.at(x, y);
            if (y % 2 == 0)
                mosaic.at(x, y) = (x % 2 == 0) ? p.r : p.g;
            else
                mosaic.at(x, y) = (x % 2 == 0) ? p.g : p.b;
        }
    }
    return mosaic;
}

} // namespace anytime
