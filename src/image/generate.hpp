/**
 * @file
 * Deterministic synthetic scene generation.
 *
 * The paper used "large image input sets" from PERFECT/AxBench which are
 * not redistributable; per the reproduction's substitution rule we
 * synthesize scenes that exercise the same code paths: smooth gradients
 * (histogram mass), multi-octave value noise (texture for blur/DWT),
 * hard-edged shapes (edges for convolution and wavelets), and colored
 * regions (clusters for k-means, channel content for debayer). All
 * generation is seeded and bit-reproducible.
 */

#ifndef ANYTIME_IMAGE_GENERATE_HPP
#define ANYTIME_IMAGE_GENERATE_HPP

#include <cstdint>

#include "image/image.hpp"

namespace anytime {

/** Generate a deterministic grayscale test scene. */
GrayImage generateScene(std::size_t width, std::size_t height,
                        std::uint64_t seed);

/** Generate a deterministic RGB test scene (clustered color regions). */
RgbImage generateColorScene(std::size_t width, std::size_t height,
                            std::uint64_t seed);

/**
 * Multi-octave value noise in [0, 1], bilinearly interpolated from a
 * seeded random lattice. @p octaves halve the period each octave.
 */
FloatImage generateValueNoise(std::size_t width, std::size_t height,
                              std::uint64_t seed, unsigned octaves = 3,
                              std::size_t base_period = 32);

/**
 * Mosaic an RGB image through an RGGB Bayer color-filter array: even
 * rows alternate R,G; odd rows alternate G,B. This is the single-sensor
 * input that the debayer kernel reconstructs.
 */
GrayImage bayerMosaic(const RgbImage &source);

} // namespace anytime

#endif // ANYTIME_IMAGE_GENERATE_HPP
