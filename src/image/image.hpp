/**
 * @file
 * Minimal 2-D image container used by every application kernel.
 *
 * Row-major storage, value semantics. The automaton's output buffers
 * hold whole images (the paper's stages produce whole-output versions),
 * so Image<T> must be cheap to copy-assign into a preallocated buffer
 * and trivially comparable for the bit-exactness tests.
 */

#ifndef ANYTIME_IMAGE_IMAGE_HPP
#define ANYTIME_IMAGE_IMAGE_HPP

#include <algorithm>
#include <cstddef>
#include <cstdint>
#include <vector>

#include "support/error.hpp"

namespace anytime {

/** 8-bit RGB pixel. */
struct RgbPixel
{
    std::uint8_t r = 0;
    std::uint8_t g = 0;
    std::uint8_t b = 0;

    bool operator==(const RgbPixel &) const = default;
};

/**
 * Row-major 2-D image of pixels of type T.
 *
 * @tparam T Pixel type (std::uint8_t, float, RgbPixel, ...).
 */
template <typename T>
class Image
{
  public:
    Image() = default;

    /** Create a width x height image filled with @p fill. */
    Image(std::size_t width, std::size_t height, T fill = T{})
        : w(width), h(height), pixels(width * height, fill)
    {
        fatalIf(width == 0 || height == 0, "Image: zero dimension");
    }

    std::size_t width() const { return w; }
    std::size_t height() const { return h; }
    std::size_t size() const { return pixels.size(); }
    bool empty() const { return pixels.empty(); }

    /** Pixel accessor (column x, row y). */
    T &
    at(std::size_t x, std::size_t y)
    {
        panicIf(x >= w || y >= h, "Image access (", x, ",", y,
                ") out of ", w, "x", h);
        return pixels[y * w + x];
    }

    const T &
    at(std::size_t x, std::size_t y) const
    {
        panicIf(x >= w || y >= h, "Image access (", x, ",", y,
                ") out of ", w, "x", h);
        return pixels[y * w + x];
    }

    /** Flat accessor (row-major index). */
    T &operator[](std::size_t i) { return pixels[i]; }
    const T &operator[](std::size_t i) const { return pixels[i]; }

    /** Clamped accessor: coordinates are clamped to the border. */
    const T &
    clampedAt(std::ptrdiff_t x, std::ptrdiff_t y) const
    {
        const std::size_t cx = static_cast<std::size_t>(
            x < 0 ? 0 : (x >= static_cast<std::ptrdiff_t>(w) ? w - 1 : x));
        const std::size_t cy = static_cast<std::size_t>(
            y < 0 ? 0 : (y >= static_cast<std::ptrdiff_t>(h) ? h - 1 : y));
        return pixels[cy * w + cx];
    }

    /** Underlying row-major pixel storage. */
    std::vector<T> &data() { return pixels; }
    const std::vector<T> &data() const { return pixels; }

    /** Fill every pixel with @p value. */
    void
    fill(T value)
    {
        std::fill(pixels.begin(), pixels.end(), value);
    }

    bool operator==(const Image &) const = default;

  private:
    std::size_t w = 0;
    std::size_t h = 0;
    std::vector<T> pixels;
};

using GrayImage = Image<std::uint8_t>;
using FloatImage = Image<float>;
using RgbImage = Image<RgbPixel>;

/** Convert a float image to 8-bit with clamping and rounding. */
inline GrayImage
toGray(const FloatImage &src)
{
    GrayImage out(src.width(), src.height());
    for (std::size_t i = 0; i < src.size(); ++i) {
        const float v = src[i];
        out[i] = static_cast<std::uint8_t>(
            v <= 0.f ? 0 : (v >= 255.f ? 255 : v + 0.5f));
    }
    return out;
}

/** Convert an 8-bit image to float. */
inline FloatImage
toFloat(const GrayImage &src)
{
    FloatImage out(src.width(), src.height());
    for (std::size_t i = 0; i < src.size(); ++i)
        out[i] = static_cast<float>(src[i]);
    return out;
}

} // namespace anytime

#endif // ANYTIME_IMAGE_IMAGE_HPP
