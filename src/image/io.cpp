#include "image/io.hpp"

#include <fstream>

#include "support/error.hpp"

namespace anytime {

namespace {

/** Skip whitespace and '#' comment lines in a PNM header. */
void
skipPnmSeparators(std::istream &in)
{
    for (;;) {
        const int c = in.peek();
        if (c == '#') {
            std::string line;
            std::getline(in, line);
        } else if (c == ' ' || c == '\t' || c == '\r' || c == '\n') {
            in.get();
        } else {
            return;
        }
    }
}

/** Read one unsigned decimal token from a PNM header. */
std::size_t
readPnmValue(std::istream &in, const std::string &path)
{
    skipPnmSeparators(in);
    std::size_t value = 0;
    in >> value;
    fatalIf(!in, "malformed PNM header in ", path);
    return value;
}

void
readPnmHeader(std::istream &in, const std::string &path,
              const char *magic, std::size_t &width, std::size_t &height)
{
    char m0 = 0, m1 = 0;
    in.get(m0);
    in.get(m1);
    fatalIf(!in || m0 != magic[0] || m1 != magic[1],
            path, ": not a ", magic, " file");
    width = readPnmValue(in, path);
    height = readPnmValue(in, path);
    const std::size_t maxval = readPnmValue(in, path);
    fatalIf(maxval != 255, path, ": only maxval 255 supported, got ",
            maxval);
    in.get(); // the single whitespace byte before the raster
    fatalIf(width == 0 || height == 0, path, ": zero dimension");
}

} // namespace

void
writePgm(const GrayImage &image, const std::string &path)
{
    std::ofstream out(path, std::ios::binary);
    fatalIf(!out, "cannot open ", path, " for writing");
    out << "P5\n" << image.width() << ' ' << image.height() << "\n255\n";
    out.write(reinterpret_cast<const char *>(image.data().data()),
              static_cast<std::streamsize>(image.size()));
    fatalIf(!out, "write failed for ", path);
}

GrayImage
readPgm(const std::string &path)
{
    std::ifstream in(path, std::ios::binary);
    fatalIf(!in, "cannot open ", path);
    std::size_t width = 0, height = 0;
    readPnmHeader(in, path, "P5", width, height);
    GrayImage image(width, height);
    in.read(reinterpret_cast<char *>(image.data().data()),
            static_cast<std::streamsize>(image.size()));
    fatalIf(in.gcount() != static_cast<std::streamsize>(image.size()),
            path, ": truncated raster");
    return image;
}

void
writePpm(const RgbImage &image, const std::string &path)
{
    std::ofstream out(path, std::ios::binary);
    fatalIf(!out, "cannot open ", path, " for writing");
    out << "P6\n" << image.width() << ' ' << image.height() << "\n255\n";
    static_assert(sizeof(RgbPixel) == 3, "RgbPixel must pack to 3 bytes");
    out.write(reinterpret_cast<const char *>(image.data().data()),
              static_cast<std::streamsize>(image.size() * 3));
    fatalIf(!out, "write failed for ", path);
}

RgbImage
readPpm(const std::string &path)
{
    std::ifstream in(path, std::ios::binary);
    fatalIf(!in, "cannot open ", path);
    std::size_t width = 0, height = 0;
    readPnmHeader(in, path, "P6", width, height);
    RgbImage image(width, height);
    in.read(reinterpret_cast<char *>(image.data().data()),
            static_cast<std::streamsize>(image.size() * 3));
    fatalIf(in.gcount() != static_cast<std::streamsize>(image.size() * 3),
            path, ": truncated raster");
    return image;
}

} // namespace anytime
