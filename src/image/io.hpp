/**
 * @file
 * Binary PGM (P5) / PPM (P6) image I/O.
 *
 * Used by the Figure 16/17/18 benches and the examples to write the
 * progressive automaton outputs for visual inspection, and by tests for
 * round-trip verification. Only 8-bit-per-channel maxval-255 files are
 * supported — all this repo ever produces.
 */

#ifndef ANYTIME_IMAGE_IO_HPP
#define ANYTIME_IMAGE_IO_HPP

#include <string>

#include "image/image.hpp"

namespace anytime {

/** Write an 8-bit grayscale image as binary PGM (P5). */
void writePgm(const GrayImage &image, const std::string &path);

/** Read a binary PGM (P5) file; throws FatalError on malformed input. */
GrayImage readPgm(const std::string &path);

/** Write an 8-bit RGB image as binary PPM (P6). */
void writePpm(const RgbImage &image, const std::string &path);

/** Read a binary PPM (P6) file; throws FatalError on malformed input. */
RgbImage readPpm(const std::string &path);

} // namespace anytime

#endif // ANYTIME_IMAGE_IO_HPP
