#include "image/metrics.hpp"

namespace anytime {

double
meanSquaredError(const RgbImage &reference, const RgbImage &approx)
{
    fatalIf(reference.width() != approx.width() ||
                reference.height() != approx.height(),
            "MSE: image dimensions differ");
    double sum = 0.0;
    for (std::size_t i = 0; i < reference.size(); ++i) {
        const double dr = static_cast<double>(reference[i].r) - approx[i].r;
        const double dg = static_cast<double>(reference[i].g) - approx[i].g;
        const double db = static_cast<double>(reference[i].b) - approx[i].b;
        sum += dr * dr + dg * dg + db * db;
    }
    return sum / (static_cast<double>(reference.size()) * 3.0);
}

double
signalToNoiseDb(const RgbImage &reference, const RgbImage &approx)
{
    fatalIf(reference.width() != approx.width() ||
                reference.height() != approx.height(),
            "SNR: image dimensions differ");
    double signal = 0.0;
    double noise = 0.0;
    for (std::size_t i = 0; i < reference.size(); ++i) {
        const double chans[3][2] = {
            {static_cast<double>(reference[i].r),
             static_cast<double>(approx[i].r)},
            {static_cast<double>(reference[i].g),
             static_cast<double>(approx[i].g)},
            {static_cast<double>(reference[i].b),
             static_cast<double>(approx[i].b)},
        };
        for (const auto &chan : chans) {
            const double d = chan[0] - chan[1];
            signal += chan[0] * chan[0];
            noise += d * d;
        }
    }
    if (noise == 0.0)
        return std::numeric_limits<double>::infinity();
    if (signal == 0.0)
        return -std::numeric_limits<double>::infinity();
    return 10.0 * std::log10(signal / noise);
}

} // namespace anytime
