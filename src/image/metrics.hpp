/**
 * @file
 * Image accuracy metrics.
 *
 * The paper measures accuracy as the signal-to-noise ratio (SNR) in
 * decibels of the approximate output relative to the baseline precise
 * output, with infinity dB meaning bit-exact. We implement SNR exactly
 * that way plus the usual companions (MSE, RMSE, PSNR) used by the test
 * suite and the ablation benches.
 */

#ifndef ANYTIME_IMAGE_METRICS_HPP
#define ANYTIME_IMAGE_METRICS_HPP

#include <cmath>
#include <limits>

#include "image/image.hpp"

namespace anytime {

/** Mean squared error between two same-sized images. */
template <typename T>
double
meanSquaredError(const Image<T> &reference, const Image<T> &approx)
{
    fatalIf(reference.width() != approx.width() ||
                reference.height() != approx.height(),
            "MSE: image dimensions differ");
    double sum = 0.0;
    for (std::size_t i = 0; i < reference.size(); ++i) {
        const double d = static_cast<double>(reference[i]) -
                         static_cast<double>(approx[i]);
        sum += d * d;
    }
    return sum / static_cast<double>(reference.size());
}

/** Root mean squared error. */
template <typename T>
double
rootMeanSquaredError(const Image<T> &reference, const Image<T> &approx)
{
    return std::sqrt(meanSquaredError(reference, approx));
}

/**
 * Signal-to-noise ratio in dB of @p approx relative to @p reference:
 * 10 * log10(sum(ref^2) / sum((ref - approx)^2)). Returns +infinity for
 * a bit-exact match (the paper's "infinity dB is perfect accuracy").
 */
template <typename T>
double
signalToNoiseDb(const Image<T> &reference, const Image<T> &approx)
{
    fatalIf(reference.width() != approx.width() ||
                reference.height() != approx.height(),
            "SNR: image dimensions differ");
    double signal = 0.0;
    double noise = 0.0;
    for (std::size_t i = 0; i < reference.size(); ++i) {
        const double r = static_cast<double>(reference[i]);
        const double d = r - static_cast<double>(approx[i]);
        signal += r * r;
        noise += d * d;
    }
    if (noise == 0.0)
        return std::numeric_limits<double>::infinity();
    if (signal == 0.0)
        return -std::numeric_limits<double>::infinity();
    return 10.0 * std::log10(signal / noise);
}

/**
 * Peak signal-to-noise ratio in dB for 8-bit content (peak 255).
 * Returns +infinity for a bit-exact match.
 */
template <typename T>
double
peakSignalToNoiseDb(const Image<T> &reference, const Image<T> &approx)
{
    const double mse = meanSquaredError(reference, approx);
    if (mse == 0.0)
        return std::numeric_limits<double>::infinity();
    return 10.0 * std::log10(255.0 * 255.0 / mse);
}

/** SNR overload for RGB images: channels are flattened together. */
double signalToNoiseDb(const RgbImage &reference, const RgbImage &approx);

/** MSE overload for RGB images. */
double meanSquaredError(const RgbImage &reference, const RgbImage &approx);

} // namespace anytime

#endif // ANYTIME_IMAGE_METRICS_HPP
