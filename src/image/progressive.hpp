/**
 * @file
 * Progressive block-fill reconstruction for tree-sampled images.
 *
 * Output sampling with a 2-D tree permutation (paper Figure 5) computes
 * pixels at progressively increasing resolution. To make every
 * intermediate version a complete image of the *whole* output — the
 * early-availability property the paper's sample outputs exhibit — each
 * computed pixel is splatted over the block it currently represents;
 * later, finer samples overwrite their sub-blocks until every pixel
 * holds its own computed value (at which point the image is precise).
 */

#ifndef ANYTIME_IMAGE_PROGRESSIVE_HPP
#define ANYTIME_IMAGE_PROGRESSIVE_HPP

#include <algorithm>
#include <cstdint>

#include "image/image.hpp"
#include "sampling/tree_permutation.hpp"

namespace anytime {

/**
 * Pixel coordinates of tree-permutation sample @p ordinal for a
 * permutation built over (height, width).
 */
inline std::pair<std::size_t, std::size_t>
treeSampleCoords(const TreePermutation &perm, std::uint64_t ordinal,
                 std::size_t width)
{
    const std::uint64_t flat = perm.map(ordinal);
    return {static_cast<std::size_t>(flat % width),
            static_cast<std::size_t>(flat / width)};
}

/**
 * Splat @p value over the unrefined block represented by tree sample
 * @p ordinal, clipped to the image bounds.
 *
 * @tparam T    Pixel type.
 * @param out   Destination image.
 * @param perm  Tree permutation built as TreePermutation({height, width}).
 * @param ordinal Sample ordinal in [0, perm.size()).
 * @param value The computed pixel value.
 */
template <typename T>
void
fillTreeBlock(Image<T> &out, const TreePermutation &perm,
              std::uint64_t ordinal, const T &value)
{
    const auto [x, y] = treeSampleCoords(perm, ordinal, out.width());
    const std::size_t block_h =
        static_cast<std::size_t>(perm.blockExtent(ordinal, 0));
    const std::size_t block_w =
        static_cast<std::size_t>(perm.blockExtent(ordinal, 1));
    const std::size_t x_end = std::min(out.width(), x + block_w);
    const std::size_t y_end = std::min(out.height(), y + block_h);
    for (std::size_t yy = y; yy < y_end; ++yy) {
        for (std::size_t xx = x; xx < x_end; ++xx)
            out.at(xx, yy) = value;
    }
}

/**
 * Precomputed tree-sweep plan: the sample coordinates and block
 * geometry of every ordinal, materialized once so that sweeps that
 * re-run (e.g., a diffusive apply stage re-triggered per input version)
 * pay table lookups instead of recomputing the bit-reverse mapping per
 * pixel per sweep.
 */
class TreeSweepPlan
{
  public:
    /** Build the plan for a permutation over (height, width). */
    explicit TreeSweepPlan(const TreePermutation &perm)
    {
        const std::uint64_t height = perm.dims()[0];
        const std::uint64_t width = perm.dims()[1];
        fatalIf(width >= (std::uint64_t(1) << 32) ||
                    height >= (std::uint64_t(1) << 32),
                "TreeSweepPlan: extent too large");
        const std::uint64_t n = perm.size();
        xs.resize(n);
        ys.resize(n);
        bw.resize(n);
        bh.resize(n);
        for (std::uint64_t i = 0; i < n; ++i) {
            const std::uint64_t flat = perm.map(i);
            xs[i] = static_cast<std::uint32_t>(flat % width);
            ys[i] = static_cast<std::uint32_t>(flat / width);
            bh[i] = static_cast<std::uint32_t>(perm.blockExtent(i, 0));
            bw[i] = static_cast<std::uint32_t>(perm.blockExtent(i, 1));
        }
    }

    /** Number of samples in the sweep. */
    std::size_t size() const { return xs.size(); }

    /** Sample coordinates of ordinal @p i. */
    std::uint32_t x(std::size_t i) const { return xs[i]; }
    std::uint32_t y(std::size_t i) const { return ys[i]; }

    /** Splat @p value over ordinal @p i's block, clipped. */
    template <typename T>
    void
    fill(Image<T> &out, std::size_t i, const T &value) const
    {
        const std::size_t x0 = xs[i];
        const std::size_t y0 = ys[i];
        const std::size_t x_end = std::min(out.width(), x0 + bw[i]);
        const std::size_t y_end = std::min(out.height(), y0 + bh[i]);
        T *data = out.data().data();
        for (std::size_t yy = y0; yy < y_end; ++yy) {
            T *row = data + yy * out.width();
            for (std::size_t xx = x0; xx < x_end; ++xx)
                row[xx] = value;
        }
    }

  private:
    std::vector<std::uint32_t> xs, ys, bw, bh;
};

} // namespace anytime

#endif // ANYTIME_IMAGE_PROGRESSIVE_HPP
