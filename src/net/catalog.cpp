#include "net/catalog.hpp"

#include <algorithm>
#include <memory>
#include <stdexcept>
#include <thread>

#include "core/source_stage.hpp"

namespace anytime::net {

void
PipelineCatalog::add(const std::string &name, Handler handler)
{
    MutexLock lock(mutex);
    handlers[name] = std::move(handler);
}

NetPipeline
PipelineCatalog::build(const std::string &name,
                       const NetRequestParams &params) const
{
    Handler handler;
    {
        MutexLock lock(mutex);
        const auto it = handlers.find(name);
        if (it == handlers.end())
            throw std::invalid_argument("unknown pipeline '" + name +
                                        "'");
        handler = it->second;
    }
    return handler(params);
}

bool
PipelineCatalog::has(const std::string &name) const
{
    MutexLock lock(mutex);
    return handlers.count(name) != 0;
}

std::vector<std::string>
PipelineCatalog::names() const
{
    MutexLock lock(mutex);
    std::vector<std::string> out;
    out.reserve(handlers.size());
    for (const auto &[name, handler] : handlers)
        out.push_back(name);
    return out;
}

namespace {

/** Parse "steps[:step_us[:publish_period]]", throwing on garbage. */
void
parseCounterSpec(const std::string &input, std::uint64_t &steps,
                 std::uint64_t &step_us, std::uint64_t &period)
{
    steps = 64;
    step_us = 200;
    period = 0;
    if (input.empty()) {
        period = std::max<std::uint64_t>(1, steps / 32);
        return;
    }
    std::uint64_t *fields[3] = {&steps, &step_us, &period};
    std::size_t pos = 0;
    for (int field = 0; field < 3 && pos <= input.size(); ++field) {
        std::size_t colon = input.find(':', pos);
        if (colon == std::string::npos)
            colon = input.size();
        const std::string token = input.substr(pos, colon - pos);
        if (!token.empty()) {
            std::size_t used = 0;
            unsigned long long value = 0;
            try {
                value = std::stoull(token, &used);
            } catch (const std::exception &) {
                used = 0;
            }
            if (used != token.size())
                throw std::invalid_argument(
                    "counter: bad input spec '" + input +
                    "' (want steps[:step_us[:publish_period]])");
            *fields[field] = value;
        }
        pos = colon + 1;
    }
    if (steps == 0)
        throw std::invalid_argument("counter: steps must be positive");
    if (period == 0)
        period = std::max<std::uint64_t>(1, steps / 32);
}

} // namespace

void
registerCounterPipeline(PipelineCatalog &catalog)
{
    catalog.add("counter", [](const NetRequestParams &params) {
        std::uint64_t steps = 0;
        std::uint64_t step_us = 0;
        std::uint64_t period = 0;
        parseCounterSpec(params.input, steps, step_us, period);

        NetPipeline net;
        net.factory = [steps, step_us, period] {
            auto automaton = std::make_unique<Automaton>();
            auto out = automaton->makeBuffer<long>("count");
            automaton->addStage(
                std::make_shared<DiffusiveSourceStage<long>>(
                    "counter", out, 0L, steps,
                    [step_us](std::uint64_t, long &state,
                              StageContext &) {
                        state += 1;
                        if (step_us > 0)
                            std::this_thread::sleep_for(
                                std::chrono::microseconds(step_us));
                    },
                    period, /*batch=*/1));

            PreparedPipeline pipeline;
            pipeline.progress = [out, steps] {
                const auto snap = out->read();
                return snap ? static_cast<double>(*snap.value) /
                                  static_cast<double>(steps)
                            : 0.0;
            };
            pipeline.versionCount = [out] { return out->version(); };
            pipeline.attachSink = [out, steps](VersionSink sink) {
                out->addObserver(
                    [sink = std::move(sink),
                     steps](const Snapshot<long> &snap) {
                        if (!snap.value)
                            return;
                        VersionUpdate update;
                        update.version = snap.version;
                        update.final = snap.final;
                        update.degraded = snap.degraded;
                        update.quality =
                            static_cast<double>(*snap.value) /
                            static_cast<double>(steps);
                        update.payload =
                            std::make_shared<const std::string>(
                                std::to_string(*snap.value));
                        update.stage = "counter";
                        sink(update);
                    });
            };
            pipeline.automaton = std::move(automaton);
            return pipeline;
        };
        return net;
    });
}

} // namespace anytime::net
