/**
 * @file
 * Named-pipeline catalog: the server side of the wire request.
 *
 * A RequestFrame names a pipeline and carries an opaque input spec;
 * the catalog turns that pair into a ServiceRequest factory whose
 * PreparedPipeline streams its versions (attachSink wired to the
 * output buffer). This is the only place the network layer learns
 * about concrete pipelines — everything else moves opaque payload
 * bytes — so applications extend the server by registering handlers,
 * never by touching the reactor.
 *
 * Handlers reject malformed input by throwing; the server maps the
 * exception onto an ERROR frame (or HTTP 400) without tearing down
 * the connection's peer requests.
 *
 * registerCounterPipeline() installs the deterministic slow-counter
 * pipeline ("counter") used by the loopback tests, the chaos suite,
 * and the examples: no application dependencies, controllable
 * duration, and a payload (the count rendered in decimal) whose
 * per-version bytes are reproducible bit-for-bit in process.
 */

#ifndef ANYTIME_NET_CATALOG_HPP
#define ANYTIME_NET_CATALOG_HPP

#include <chrono>
#include <functional>
#include <map>
#include <string>
#include <vector>

#include "service/request.hpp"
#include "support/sync.hpp"
#include "support/thread_annotations.hpp"

namespace anytime::net {

/** Decoded request parameters handed to a catalog handler. */
struct NetRequestParams
{
    /** Opaque input spec from the RequestFrame (handler-defined). */
    std::string input;
    /** Deadline relative to receipt. */
    std::chrono::nanoseconds deadline{std::chrono::seconds(1)};
    /** Minimum acceptable quality in [0, 1]. */
    double minQuality = 0.0;
    /** Declared gang width (admission hint). */
    unsigned stageWorkers = 1;
};

/**
 * What a handler returns: a pipeline factory whose PreparedPipeline
 * has attachSink wired, so every published version streams.
 */
struct NetPipeline
{
    std::function<PreparedPipeline()> factory;
};

/**
 * Thread-safe name -> handler registry. Handlers run on the reactor
 * thread and must be fast; the returned factory runs on the service
 * scheduler thread at dispatch time (where the real work of building
 * the automaton belongs). A handler throws (std::exception) to reject
 * its input.
 */
class PipelineCatalog
{
  public:
    using Handler =
        std::function<NetPipeline(const NetRequestParams &params)>;

    /** Register @p handler under @p name (replaces any previous). */
    void add(const std::string &name, Handler handler);

    /**
     * Build the pipeline @p name for @p params. Throws
     * std::invalid_argument for an unknown name and propagates
     * whatever the handler throws for a bad input spec.
     */
    NetPipeline build(const std::string &name,
                      const NetRequestParams &params) const;

    /** True iff @p name is registered. */
    bool has(const std::string &name) const;

    /** Registered pipeline names, sorted. */
    std::vector<std::string> names() const;

  private:
    mutable Mutex mutex;
    std::map<std::string, Handler> handlers ANYTIME_GUARDED_BY(mutex);
};

/**
 * Install the dependency-free "counter" pipeline. Input spec:
 * "steps[:step_us[:publish_period]]" (defaults 64:200:steps/32). Each
 * published version's payload is the count in decimal; quality is
 * count/steps, so min-quality early stopping is exercisable over the
 * wire.
 */
void registerCounterPipeline(PipelineCatalog &catalog);

} // namespace anytime::net

#endif // ANYTIME_NET_CATALOG_HPP
