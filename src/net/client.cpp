#include "net/client.hpp"

#include <arpa/inet.h>
#include <fcntl.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cctype>
#include <cerrno>
#include <cstdio>
#include <cstring>
#include <sstream>
#include <thread>

#include "fault/fault.hpp"
#include "net/http.hpp"
#include "obs/trace.hpp"
#include "support/stopwatch.hpp"

namespace anytime::net {

namespace {

/** RAII socket with poll()-bounded connect/send/recv. */
class BlockingSocket
{
  public:
    ~BlockingSocket()
    {
        if (fd >= 0)
            ::close(fd);
    }

    bool
    connectTo(const ClientOptions &options, std::string &error)
    {
        fd = ::socket(AF_INET, SOCK_STREAM | SOCK_NONBLOCK |
                                   SOCK_CLOEXEC,
                      0);
        if (fd < 0) {
            error = std::string("socket(): ") + std::strerror(errno);
            return false;
        }
        sockaddr_in addr{};
        addr.sin_family = AF_INET;
        addr.sin_port = htons(options.port);
        if (::inet_pton(AF_INET, options.host.c_str(),
                        &addr.sin_addr) != 1) {
            error = "bad host address '" + options.host + "'";
            return false;
        }
        if (::connect(fd, reinterpret_cast<sockaddr *>(&addr),
                      sizeof addr) != 0 &&
            errno != EINPROGRESS) {
            error = std::string("connect(): ") + std::strerror(errno);
            return false;
        }
        pollfd pfd{fd, POLLOUT, 0};
        const int ready =
            ::poll(&pfd, 1, static_cast<int>(options.timeout.count()));
        if (ready <= 0) {
            error = "connect timed out";
            return false;
        }
        int soError = 0;
        socklen_t len = sizeof soError;
        ::getsockopt(fd, SOL_SOCKET, SO_ERROR, &soError, &len);
        if (soError != 0) {
            error = std::string("connect(): ") +
                    std::strerror(soError);
            return false;
        }
        const int nodelay = 1;
        ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &nodelay,
                     sizeof nodelay);
        return true;
    }

    bool
    sendAll(const std::string &bytes, const ClientOptions &options,
            std::string &error)
    {
        std::size_t offset = 0;
        while (offset < bytes.size()) {
            const ssize_t n =
                ::send(fd, bytes.data() + offset,
                       bytes.size() - offset, MSG_NOSIGNAL);
            if (n > 0) {
                offset += static_cast<std::size_t>(n);
                continue;
            }
            if (n < 0 &&
                (errno == EAGAIN || errno == EWOULDBLOCK)) {
                pollfd pfd{fd, POLLOUT, 0};
                if (::poll(&pfd, 1,
                           static_cast<int>(
                               options.timeout.count())) <= 0) {
                    error = "send timed out";
                    return false;
                }
                continue;
            }
            if (n < 0 && errno == EINTR)
                continue;
            error = std::string("send(): ") + std::strerror(errno);
            return false;
        }
        return true;
    }

    /** One bounded read. 0 = EOF, <0 = timeout/error (error set). */
    ssize_t
    readSome(char *buf, std::size_t size, const ClientOptions &options,
             std::string &error)
    {
        for (;;) {
            const ssize_t n = ::recv(fd, buf, size, 0);
            if (n >= 0)
                return n;
            if (errno == EINTR)
                continue;
            if (errno != EAGAIN && errno != EWOULDBLOCK) {
                error =
                    std::string("recv(): ") + std::strerror(errno);
                return -1;
            }
            pollfd pfd{fd, POLLIN, 0};
            const int ready = ::poll(
                &pfd, 1, static_cast<int>(options.timeout.count()));
            if (ready <= 0) {
                error = "read timed out";
                return -1;
            }
        }
    }

    void
    sever()
    {
        if (fd >= 0) {
            ::close(fd);
            fd = -1;
        }
    }

  private:
    int fd = -1;
};

} // namespace

ClientResult
runRequest(const ClientOptions &options, const RequestFrame &request,
           const std::function<bool(const VersionFrame &frame)>
               &onVersion)
{
    ClientResult result;
    // The client originates the trace: mint the id here (unless the
    // caller brought one) so the span below, the wire frame, and
    // everything the server emits for this request share it.
    RequestFrame framed = request;
    if (framed.traceId == 0)
        framed.traceId = obs::newTraceId();
    result.traceId = framed.traceId;
    obs::TraceContextScope context({framed.traceId, 0});
    obs::TraceSpan span("client.request", "client");
    BlockingSocket socket;
    if (!socket.connectTo(options, result.error))
        return result;

    std::string bytes(kMagic, sizeof kMagic);
    bytes += encodeFrame(Frame{framed});
    Stopwatch clock;
    if (!socket.sendAll(bytes, options, result.error))
        return result;

    FrameReader reader;
    char buf[16384];
    for (;;) {
        while (auto frame = reader.next()) {
            if (auto *accepted = std::get_if<AcceptedFrame>(&*frame)) {
                result.accepted = *accepted;
            } else if (auto *version =
                           std::get_if<VersionFrame>(&*frame)) {
                if (result.versions.empty())
                    result.firstVersionSeconds = clock.seconds();
                result.versions.push_back(*version);
                if (onVersion && !onVersion(*version)) {
                    // The caller is done listening: sever the socket
                    // mid-stream (the disconnect-as-cancel rehearsal).
                    socket.sever();
                    result.severed = true;
                    result.ok = true;
                    return result;
                }
            } else if (auto *done = std::get_if<DoneFrame>(&*frame)) {
                result.done = *done;
                result.ok = true;
                return result;
            } else if (auto *serverError =
                           std::get_if<ErrorFrame>(&*frame)) {
                result.serverError = serverError->message;
                result.error = "server error: " + serverError->message;
                return result;
            } else {
                result.error = "unexpected frame from server";
                return result;
            }
        }
        if (reader.failed()) {
            result.error = "corrupt stream: " + reader.error();
            return result;
        }
        const ssize_t n =
            socket.readSome(buf, sizeof buf, options, result.error);
        if (n < 0)
            return result;
        if (n == 0) {
            result.error = "connection closed before DONE";
            return result;
        }
        reader.feed(buf, static_cast<std::size_t>(n));
    }
}

ResilientClientResult
runResilientRequest(const ClientOptions &options,
                    const RequestFrame &request,
                    const ResilienceOptions &resilience,
                    const std::function<bool(const VersionFrame &frame)>
                        &onVersion)
{
    ResilientClientResult result;
    // One trace id for the whole logical request: every reconnect
    // attempt carries it, so the server-side spans of a severed-and-
    // resumed stream stitch into a single trace.
    RequestFrame framed = request;
    if (framed.traceId == 0)
        framed.traceId = obs::newTraceId();
    result.traceId = framed.traceId;

    Stopwatch overall;
    const double deadlineSeconds =
        std::chrono::duration<double>(resilience.overallDeadline)
            .count();
    const unsigned maxAttempts = std::max(1u, resilience.maxAttempts);

    // The client-side monotone guard: versions at or below what we
    // already hold are dropped (a same-version final upgrade passes),
    // so the caller sees one strictly improving stream regardless of
    // how many times the transport failed under it.
    std::uint64_t lastSeen = framed.resumeFromVersion;
    bool lastSeenFinal = false;

    for (unsigned attempt = 1; attempt <= maxAttempts; ++attempt) {
        result.attempts = attempt;
        framed.resumeFromVersion = lastSeen;
        if (attempt > 1 && lastSeen > 0) {
            ++result.resumes;
            result.lastResumeVersion = lastSeen;
        }
        const auto guarded =
            [&](const VersionFrame &frame) -> bool {
            if (frame.version < lastSeen)
                return true; // stale replay: drop, keep listening
            if (frame.version == lastSeen &&
                !(frame.final && !lastSeenFinal))
                return true;
            lastSeen = frame.version;
            lastSeenFinal = frame.final;
            if (result.versions.empty())
                result.firstVersionSeconds = overall.seconds();
            result.versions.push_back(frame);
            return onVersion ? onVersion(frame) : true;
        };
        ClientResult one = runRequest(options, framed, guarded);
        result.accepted = one.accepted;
        if (one.ok) {
            result.ok = true;
            result.severed = one.severed;
            result.done = one.done;
            result.error.clear();
            return result;
        }
        result.error = one.error;
        if (one.serverError) {
            // The server answered and refused: retrying would just be
            // refused again (bad request, draining, shed). Final.
            result.serverError = one.serverError;
            return result;
        }
        if (attempt == maxAttempts)
            return result;
        // Deterministic jittered exponential backoff, the same shape
        // the service's build retries use (mix64-seeded: reproducible,
        // uncorrelated across attempts — no reconnect convoys).
        const auto base = resilience.backoffBase;
        auto wait = std::chrono::nanoseconds(base) *
                    (1LL << (attempt - 1));
        if (base.count() > 0)
            wait += std::chrono::nanoseconds(
                static_cast<std::int64_t>(
                    fault::mix64(resilience.jitterSeed ^ attempt) %
                    static_cast<std::uint64_t>(
                        std::chrono::nanoseconds(base).count())));
        if (deadlineSeconds > 0.0 &&
            overall.seconds() +
                    std::chrono::duration<double>(wait).count() >=
                deadlineSeconds) {
            // Deadline-aware give-up: sleeping past the caller's bound
            // helps nobody — report the last transport error now.
            result.error += " (gave up: overall deadline)";
            return result;
        }
        std::this_thread::sleep_for(wait);
    }
    return result;
}

HttpResult
httpGet(const ClientOptions &options, const std::string &target)
{
    HttpResult result;
    BlockingSocket socket;
    if (!socket.connectTo(options, result.error))
        return result;

    const std::string request = "GET " + target +
                                " HTTP/1.1\r\n"
                                "Host: " +
                                options.host +
                                "\r\n"
                                "Connection: close\r\n"
                                "\r\n";
    if (!socket.sendAll(request, options, result.error))
        return result;

    std::string raw;
    char buf[16384];
    for (;;) {
        const ssize_t n =
            socket.readSome(buf, sizeof buf, options, result.error);
        if (n < 0)
            return result;
        if (n == 0)
            break; // server closes after the response
        raw.append(buf, static_cast<std::size_t>(n));
    }

    const std::size_t headEnd = raw.find("\r\n\r\n");
    if (headEnd == std::string::npos) {
        result.error = "truncated HTTP response";
        return result;
    }
    std::istringstream head(raw.substr(0, headEnd));
    std::string line;
    if (!std::getline(head, line)) {
        result.error = "empty HTTP response";
        return result;
    }
    if (!line.empty() && line.back() == '\r')
        line.pop_back();
    if (line.compare(0, 5, "HTTP/") != 0 ||
        std::sscanf(line.c_str(), "HTTP/%*d.%*d %d",
                    &result.status) != 1) {
        result.error = "malformed status line: " + line;
        return result;
    }
    while (std::getline(head, line)) {
        if (!line.empty() && line.back() == '\r')
            line.pop_back();
        const std::size_t colon = line.find(':');
        if (colon == std::string::npos)
            continue;
        std::string name = line.substr(0, colon);
        for (char &ch : name)
            ch = static_cast<char>(
                std::tolower(static_cast<unsigned char>(ch)));
        std::size_t begin = colon + 1;
        while (begin < line.size() && line[begin] == ' ')
            ++begin;
        result.headers[name] = line.substr(begin);
    }

    std::string body = raw.substr(headEnd + 4);
    const auto transfer = result.headers.find("transfer-encoding");
    if (transfer != result.headers.end() &&
        transfer->second == "chunked") {
        auto decoded = decodeChunked(body);
        if (!decoded) {
            result.error = "malformed chunked body";
            return result;
        }
        body = std::move(*decoded);
    }
    result.body = std::move(body);
    result.ok = true;
    return result;
}

} // namespace anytime::net
