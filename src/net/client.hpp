/**
 * @file
 * Blocking loopback client for the anytime streaming protocol.
 *
 * Used by the tests, the net bench, and the example CLI — it is a
 * reference consumer, not a production SDK. runRequest() opens a
 * connection, sends the magic + REQUEST frame, and surfaces every
 * VERSION frame through an optional callback as it arrives (the
 * anytime contract on the client side: act on the current best
 * answer, upgrade when a better one lands). The callback returning
 * false severs the connection immediately — how the tests exercise
 * the server's disconnect-as-cancel path mid-stream.
 *
 * All reads are poll()-bounded by the configured timeout, so a dead
 * server fails the call instead of hanging a test.
 */

#ifndef ANYTIME_NET_CLIENT_HPP
#define ANYTIME_NET_CLIENT_HPP

#include <chrono>
#include <cstdint>
#include <functional>
#include <limits>
#include <map>
#include <optional>
#include <string>
#include <vector>

#include "net/wire.hpp"

namespace anytime::net {

/** Where and how patiently to connect. */
struct ClientOptions
{
    std::string host = "127.0.0.1";
    std::uint16_t port = 0;
    /** Bound on connect and on each read wait. */
    std::chrono::milliseconds timeout{5000};
};

/** Everything one streamed request produced. */
struct ClientResult
{
    /** True when the stream ended cleanly (DONE) or was deliberately
     *  severed by the version callback. */
    bool ok = false;
    /** Failure description when !ok (connect/timeout/protocol). */
    std::string error;
    /** True when the version callback asked to sever mid-stream. */
    bool severed = false;
    /** Server ERROR frame payload, when one arrived. */
    std::optional<std::string> serverError;
    std::optional<AcceptedFrame> accepted;
    /** Trace id this request ran under: the caller's when the frame
     *  carried one, otherwise minted client-side before the send (the
     *  client is the trace origin). The server echo lives in
     *  accepted->traceId and matches unless the request coalesced onto
     *  an earlier identical stream. */
    std::uint64_t traceId = 0;
    /** Every version received, in arrival order. */
    std::vector<VersionFrame> versions;
    std::optional<DoneFrame> done;
    /** Seconds from the request write to the first VERSION frame
     *  (client-observed; NaN when none arrived). */
    double firstVersionSeconds =
        std::numeric_limits<double>::quiet_NaN();
};

/**
 * Run one streamed request to completion (or severance). @p onVersion
 * (optional) sees each VERSION frame as it arrives; returning false
 * closes the socket immediately.
 */
ClientResult
runRequest(const ClientOptions &options, const RequestFrame &request,
           const std::function<bool(const VersionFrame &frame)>
               &onVersion = nullptr);

/** Retry/backoff/resume tuning for runResilientRequest(). */
struct ResilienceOptions
{
    /** Total connection attempts (first try included). */
    unsigned maxAttempts = 5;
    /** Base of the exponential retry backoff: attempt n waits
     *  base * 2^(n-1) plus a deterministic jitter in [0, base). */
    std::chrono::milliseconds backoffBase{10};
    /** Seed of the deterministic jitter sequence (reproducible runs). */
    std::uint64_t jitterSeed = 1;
    /** Overall give-up bound across all attempts and backoffs;
     *  zero means attempts are the only limit. */
    std::chrono::milliseconds overallDeadline{0};
};

/** runResilientRequest()'s aggregate across reconnect attempts. */
struct ResilientClientResult : ClientResult
{
    /** Connection attempts made (>= 1). */
    unsigned attempts = 0;
    /** Times a reconnect resumed from a last-seen version (> 0 means
     *  the stream was severed and continued monotone). */
    unsigned resumes = 0;
    /** The last-seen version the final attempt resumed from. */
    std::uint64_t lastResumeVersion = 0;
};

/**
 * runRequest() hardened for a lossy world: on a transport failure
 * (connect refused, read timeout, connection severed before DONE) it
 * backs off — deterministic jittered exponential, seeded — and
 * reconnects with `resumeFromVersion` set to the last version it
 * already holds. The server replays forward from its coalescing
 * cache, so `versions` stays monotone across severances and the
 * caller's @p onVersion never sees a duplicate or a regression. A
 * server ERROR frame is not retried (the server meant it), and the
 * overall deadline bounds the total time spent trying.
 */
ResilientClientResult
runResilientRequest(const ClientOptions &options,
                    const RequestFrame &request,
                    const ResilienceOptions &resilience = {},
                    const std::function<bool(const VersionFrame &frame)>
                        &onVersion = nullptr);

/** One plain HTTP exchange against the same listener. */
struct HttpResult
{
    bool ok = false;
    std::string error;
    int status = 0;
    /** Response headers, names lower-cased. */
    std::map<std::string, std::string> headers;
    /** Body, de-chunked when the response was chunked. */
    std::string body;
};

/** Blocking GET of @p target (e.g. "/metrics"). */
HttpResult httpGet(const ClientOptions &options,
                   const std::string &target);

} // namespace anytime::net

#endif // ANYTIME_NET_CLIENT_HPP
