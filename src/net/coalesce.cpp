#include "net/coalesce.hpp"

#include <algorithm>

namespace anytime::net {

std::size_t
StreamEntry::attach(const std::shared_ptr<StreamSubscriber> &subscriber,
                    std::uint64_t resume_from)
{
    MutexLock lock(mutex);
    ++attached;
    if (resume_from > 0) {
        // Reconnect-and-resume: replay every cached version newer than
        // the one the client already holds, oldest first, so the
        // resumed stream continues monotone from where it was severed.
        // If churn evicted the gap from the ring, the client still
        // gets `latest` (a valid, newer approximation) — the anytime
        // contract holds even when exact continuity is lost.
        bool replayed = false;
        for (const VersionFrame &frame : recent) {
            if (frame.version > resume_from) {
                subscriber->onVersion(frame);
                replayed = true;
            }
        }
        if (!replayed && latest && latest->version > resume_from)
            subscriber->onVersion(*latest);
    } else if (latest) {
        // Replay the current best approximation first: a late joiner
        // starts from where the stream is, not from silence.
        subscriber->onVersion(*latest);
    }
    if (done) {
        subscriber->onDone(*done);
        return 0; // complete replay; nothing live to subscribe to
    }
    subscribers.push_back(subscriber);
    return subscribers.size();
}

std::pair<std::size_t, bool>
StreamEntry::detach(const std::shared_ptr<StreamSubscriber> &subscriber)
{
    MutexLock lock(mutex);
    subscribers.erase(
        std::remove(subscribers.begin(), subscribers.end(), subscriber),
        subscribers.end());
    return {subscribers.size(), done.has_value()};
}

void
StreamEntry::publish(const VersionFrame &frame)
{
    MutexLock lock(mutex);
    if (done)
        return;
    if (latest) {
        // Monotone guard: drop stale re-publishes. Equal version with
        // the final flag is the degraded-final upgrade — let it pass.
        if (frame.version < latest->version)
            return;
        if (frame.version == latest->version &&
            !(frame.final && !latest->final))
            return;
    }
    latest = frame;
    // Resume replay ring: a same-version final upgrade replaces its
    // non-final predecessor in place (a resumed client must never see
    // the pair as two versions).
    if (!recent.empty() && recent.back().version == frame.version)
        recent.back() = frame;
    else
        recent.push_back(frame);
    while (recent.size() > kReplayCacheSize)
        recent.pop_front();
    for (const auto &subscriber : subscribers)
        subscriber->onVersion(frame);
}

void
StreamEntry::finish(const DoneFrame &frame)
{
    std::vector<std::shared_ptr<StreamSubscriber>> notify;
    {
        MutexLock lock(mutex);
        if (done)
            return;
        done = frame;
        notify.swap(subscribers);
    }
    // Outside the lock: onDone commonly triggers a connection flush
    // and nothing may publish into this entry anymore.
    for (const auto &subscriber : notify)
        subscriber->onDone(frame);
}

bool
StreamEntry::finished() const
{
    MutexLock lock(mutex);
    return done.has_value();
}

std::uint64_t
StreamEntry::requestId() const
{
    MutexLock lock(mutex);
    return id;
}

void
StreamEntry::setRequestId(std::uint64_t value)
{
    MutexLock lock(mutex);
    id = value;
}

std::uint64_t
StreamEntry::traceId() const
{
    MutexLock lock(mutex);
    return trace;
}

void
StreamEntry::setTraceId(std::uint64_t value)
{
    MutexLock lock(mutex);
    trace = value;
}

std::size_t
StreamEntry::attachCount() const
{
    MutexLock lock(mutex);
    return attached;
}

std::size_t
StreamEntry::subscriberCount() const
{
    MutexLock lock(mutex);
    return subscribers.size();
}

CoalesceMap::FindResult
CoalesceMap::findOrCreate(const StreamKey &key)
{
    MutexLock lock(mutex);
    const auto it = entries.find(key);
    if (it != entries.end())
        return {it->second, false};
    auto entry = std::make_shared<StreamEntry>();
    entries.emplace(key, entry);
    return {entry, true};
}

void
CoalesceMap::remove(const StreamKey &key,
                    const std::shared_ptr<StreamEntry> &entry)
{
    MutexLock lock(mutex);
    const auto it = entries.find(key);
    if (it != entries.end() && it->second == entry)
        entries.erase(it);
}

std::size_t
CoalesceMap::size() const
{
    MutexLock lock(mutex);
    return entries.size();
}

} // namespace anytime::net
