/**
 * @file
 * Request coalescing: one pipeline build fans out to every subscriber.
 *
 * Identical in-flight requests (same pipeline, input, deadline,
 * quality floor, and gang width — the full request identity, stricter
 * than the pipeline+input pair alone so no client silently inherits
 * another's deadline) share a single StreamEntry. The first arrival
 * builds and submits the pipeline; later arrivals attach as extra
 * subscribers and immediately replay the latest cached version, so a
 * late joiner starts from the current best approximation — the anytime
 * contract applied to fan-out.
 *
 * A StreamEntry outlives its subscribers: version updates arrive on
 * the publishing worker thread, completion on the service scheduler
 * thread, attach/detach on the reactor thread. All transitions are
 * serialized by the entry mutex; the monotone guard drops duplicate or
 * stale versions (markDegradedFinal re-notifies the last version with
 * the final flag — subscribers see that exactly once, as an upgrade).
 *
 * Detach returning zero with the stream unfinished is the
 * disconnect-as-cancel signal: no client is listening, so the server
 * cancels the underlying request instead of computing into the void.
 */

#ifndef ANYTIME_NET_COALESCE_HPP
#define ANYTIME_NET_COALESCE_HPP

#include <cstdint>
#include <deque>
#include <map>
#include <memory>
#include <optional>
#include <string>
#include <tuple>
#include <vector>

#include "net/wire.hpp"
#include "support/sync.hpp"
#include "support/thread_annotations.hpp"

namespace anytime::net {

/** A consumer of one result stream (a connection, or a test probe). */
class StreamSubscriber
{
  public:
    virtual ~StreamSubscriber() = default;

    /** One published version. May run on any producer thread; must be
     *  fast and must not call back into the coalesce layer. */
    virtual void onVersion(const VersionFrame &frame) = 0;

    /** Terminal disposition; the last callback this stream makes. */
    virtual void onDone(const DoneFrame &frame) = 0;
};

/** Full request identity: requests coalesce only when ALL of it
 *  matches. Invariant: minQuality is finite — the std::map ordering
 *  over tied() is a strict weak ordering only if no key holds a NaN,
 *  so NetServer::startStream rejects non-finite values before any
 *  StreamKey can reach the CoalesceMap. */
struct StreamKey
{
    std::string pipeline;
    std::string input;
    std::uint64_t deadlineMicros = 0;
    double minQuality = 0.0;
    std::uint32_t stageWorkers = 1;

    auto
    tied() const
    {
        return std::tie(pipeline, input, deadlineMicros, minQuality,
                        stageWorkers);
    }

    bool operator<(const StreamKey &other) const
    {
        return tied() < other.tied();
    }
};

/** One coalesced in-flight request and its subscriber fan-out. */
class StreamEntry
{
  public:
    /**
     * Add @p subscriber, replaying the cached latest version and — if
     * the stream already completed — the done frame. Returns the
     * subscriber count after attach (0 when the stream was already
     * done: the subscriber got the full replay and was not retained).
     *
     * @p resume_from is the reconnect-and-resume hook: a reconnecting
     * client passes the last version it already holds, and instead of
     * the latest-only replay it receives every cached version newer
     * than that, in publish order — the severed stream resumes
     * monotone. 0 (a fresh subscriber) keeps the latest-only replay.
     */
    std::size_t attach(const std::shared_ptr<StreamSubscriber> &subscriber,
                       std::uint64_t resume_from = 0);

    /**
     * Remove @p subscriber. Returns {remaining subscribers, finished}:
     * remaining == 0 && !finished means nobody is listening to a live
     * request — the caller should cancel it.
     */
    std::pair<std::size_t, bool>
    detach(const std::shared_ptr<StreamSubscriber> &subscriber);

    /** Fan @p frame out to subscribers (monotone-guarded, cached). */
    void publish(const VersionFrame &frame);

    /** Terminal fan-out; releases the subscriber list. Idempotent. */
    void finish(const DoneFrame &frame);

    /** True once finish() ran. */
    bool finished() const;

    /** The service request id backing this stream (0 until known). */
    std::uint64_t requestId() const;
    void setRequestId(std::uint64_t id);

    /** The trace id of the backing request (0 until known). Late
     *  joiners echo it so every coalesced client can find the one
     *  shared trace. */
    std::uint64_t traceId() const;
    void setTraceId(std::uint64_t id);

    /** Subscribers attached over the entry's lifetime (stats). */
    std::size_t attachCount() const;

    /** Currently attached subscribers. */
    std::size_t subscriberCount() const;

    /** Versions the resume replay ring holds (kReplayCacheSize cap). */
    static constexpr std::size_t kReplayCacheSize = 8;

  private:
    mutable Mutex mutex;
    std::vector<std::shared_ptr<StreamSubscriber>> subscribers
        ANYTIME_GUARDED_BY(mutex);
    std::optional<VersionFrame> latest ANYTIME_GUARDED_BY(mutex);
    /** The last kReplayCacheSize published versions, oldest first —
     *  the reconnect-and-resume replay source. */
    std::deque<VersionFrame> recent ANYTIME_GUARDED_BY(mutex);
    std::optional<DoneFrame> done ANYTIME_GUARDED_BY(mutex);
    std::uint64_t id ANYTIME_GUARDED_BY(mutex) = 0;
    std::uint64_t trace ANYTIME_GUARDED_BY(mutex) = 0;
    std::size_t attached ANYTIME_GUARDED_BY(mutex) = 0;
};

/** Key -> live StreamEntry map (find-or-create on request arrival). */
class CoalesceMap
{
  public:
    struct FindResult
    {
        std::shared_ptr<StreamEntry> entry;
        /** True when this call created the entry (caller submits). */
        bool created = false;
    };

    /** The live entry for @p key, creating one if absent. */
    FindResult findOrCreate(const StreamKey &key);

    /**
     * Remove @p key if it still maps to @p entry (guards against a
     * racing replacement). Safe to call twice (completion and
     * disconnect paths both remove).
     */
    void remove(const StreamKey &key,
                const std::shared_ptr<StreamEntry> &entry);

    /** Live (unfinished) entries currently tracked. */
    std::size_t size() const;

  private:
    mutable Mutex mutex;
    std::map<StreamKey, std::shared_ptr<StreamEntry>> entries
        ANYTIME_GUARDED_BY(mutex);
};

} // namespace anytime::net

#endif // ANYTIME_NET_COALESCE_HPP
