#include "net/connection.hpp"

#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <cmath>
#include <utility>
#include <vector>

#include "fault/fault.hpp"
#include "obs/flight.hpp"
#include "service/request.hpp"
#include "support/error.hpp"

namespace anytime::net {

namespace {

/**
 * Upper bound on buffered, not-yet-parsed client bytes (the sniff
 * preamble and the HTTP request head). Binary mode is bounded by
 * kMaxFrameBytes inside FrameReader; this bounds the HTTP side, where
 * a client could otherwise stream header bytes without ever sending
 * CRLFCRLF and grow the inbox without limit.
 */
constexpr std::size_t kMaxInboxBytes = std::size_t(64) << 10;

std::string
jsonNumber(double value)
{
    if (std::isnan(value) || std::isinf(value))
        return "null";
    char buf[64];
    std::snprintf(buf, sizeof buf, "%.9g", value);
    return buf;
}

} // namespace

std::string
versionEventJson(const VersionFrame &frame)
{
    std::string out = "{\"version\":" + std::to_string(frame.version);
    out += ",\"final\":";
    out += frame.final ? "true" : "false";
    out += ",\"degraded\":";
    out += frame.degraded ? "true" : "false";
    out += ",\"quality\":" + jsonNumber(frame.quality);
    out += ",\"payload\":\"" + jsonEscape(frame.payload) + "\"}";
    return out;
}

std::string
doneEventJson(const DoneFrame &frame)
{
    std::string out = "{\"status\":\"";
    out += serviceStatusName(static_cast<ServiceStatus>(frame.status));
    out += "\",\"reachedPrecise\":";
    out += frame.reachedPrecise ? "true" : "false";
    out += ",\"deadlineMet\":";
    out += frame.deadlineMet ? "true" : "false";
    out += ",\"versionsPublished\":" +
           std::to_string(frame.versionsPublished);
    out += ",\"quality\":" + jsonNumber(frame.quality);
    out += ",\"firstVersionSeconds\":" +
           jsonNumber(frame.firstVersionSeconds);
    out += ",\"totalSeconds\":" + jsonNumber(frame.totalSeconds) + "}";
    return out;
}

Connection::Connection(int fd, std::uint64_t id, std::string peer,
                       ConnectionHost &host, ConnectionStats stats,
                       std::size_t max_outbox_bytes)
    : socket(fd), connectionId(id), peerLabel(std::move(peer)),
      host(host), stats(stats), maxOutboxBytes(max_outbox_bytes)
{
}

Connection::~Connection()
{
    if (socket >= 0)
        ::close(socket);
}

bool
Connection::handleReadable()
{
    std::vector<RequestFrame> requests;
    std::vector<HttpRequest> httpRequests;
    bool keepOpen = true;
    {
        MutexLock lock(mutex);
        char buf[16384];
        for (;;) {
            const ssize_t n = ::recv(socket, buf, sizeof buf, 0);
            if (n > 0) {
                if (mode == Mode::binary) {
                    reader.feed(buf, static_cast<std::size_t>(n));
                } else if (!requestSeen) {
                    // One request per connection: once it is parsed,
                    // further client bytes are drained and discarded
                    // instead of accumulating for the lifetime of a
                    // long SSE stream.
                    inbox.append(buf, static_cast<std::size_t>(n));
                    if (inbox.size() > kMaxInboxBytes) {
                        keepOpen = false; // header flood
                        break;
                    }
                }
                continue;
            }
            if (n == 0) {
                keepOpen = false; // orderly EOF
                break;
            }
            if (errno == EAGAIN || errno == EWOULDBLOCK)
                break;
            if (errno == EINTR)
                continue;
            keepOpen = false; // hard socket error
            break;
        }

        if (mode == Mode::sniffing && !sniffLocked())
            keepOpen = false;

        if (mode == Mode::binary) {
            while (auto frame = reader.next()) {
                if (const auto *request =
                        std::get_if<RequestFrame>(&*frame);
                    request && !requestSeen) {
                    requestSeen = true;
                    requests.push_back(*request);
                } else {
                    // One request per connection; anything else from a
                    // client is a protocol violation.
                    enqueueLocked(
                        encodeFrame(ErrorFrame{
                            "protocol violation: unexpected frame"}),
                        false);
                    closePending = true;
                    break;
                }
            }
            if (reader.failed()) {
                enqueueLocked(
                    encodeFrame(ErrorFrame{reader.error()}), false);
                closePending = true;
            }
        } else if (mode == Mode::http || mode == Mode::sse) {
            std::size_t consumed = 0;
            while (!requestSeen) {
                auto request = parseHttpRequest(inbox, consumed);
                if (!request)
                    break;
                // Everything after the head (e.g. a body we ignore) is
                // dropped along with the head: nothing is buffered for
                // the rest of the connection's lifetime.
                std::string().swap(inbox);
                requestSeen = true;
                if (request->method.empty()) {
                    enqueueLocked(
                        httpResponse(400, "text/plain",
                                     "malformed request\n"),
                        false);
                    closePending = true;
                } else {
                    httpRequests.push_back(std::move(*request));
                }
            }
        }
    }
    // Host dispatch outside the lock: attach() replays versions back
    // into this connection's outbox (entry mutex -> connection mutex).
    for (const auto &request : requests)
        host.handleRequestFrame(shared_from_this(), request);
    for (const auto &request : httpRequests)
        host.handleHttpRequest(shared_from_this(), request);
    return keepOpen;
}

bool
Connection::sniffLocked()
{
    if (inbox.size() < 4)
        return true; // keep sniffing
    if (inbox.compare(0, 4, kMagic, 4) == 0) {
        mode = Mode::binary;
        if (inbox.size() > 4)
            reader.feed(inbox.data() + 4, inbox.size() - 4);
        inbox.clear();
        return true;
    }
    if (inbox.compare(0, 4, "GET ") == 0 ||
        inbox.compare(0, 4, "POST") == 0 ||
        inbox.compare(0, 4, "HEAD") == 0) {
        mode = Mode::http;
        return true;
    }
    return false; // unknown protocol: close
}

bool
Connection::handleWritable()
{
    MutexLock lock(mutex);
    while (!outbox.empty()) {
        OutMessage &head = outbox.front();
        const std::size_t remaining = head.bytes.size() - head.offset;
        try {
            // Chaos site: a firing `net.write` rule severs this stream
            // mid-flight (tests/chaos/test_chaos_net.cpp).
            ANYTIME_FAULT_POINT("net.write", peerLabel, ++writeOrdinal);
        } catch (const std::exception &) {
            if (stats.writeFaults)
                stats.writeFaults->add();
            obs::flightRecorderTrigger("net_write_fault", 0, traceId);
            return false;
        }
        const ssize_t n = ::send(socket, head.bytes.data() + head.offset,
                                 remaining, MSG_NOSIGNAL);
        if (n < 0) {
            if (errno == EAGAIN || errno == EWOULDBLOCK)
                return true; // socket full: wait for EPOLLOUT
            if (errno == EINTR)
                continue;
            return false; // peer gone or hard error
        }
        if (stats.bytesSent)
            stats.bytesSent->add(static_cast<std::uint64_t>(n));
        head.offset += static_cast<std::size_t>(n);
        if (head.offset < head.bytes.size())
            return true; // partial write: resume later
        outboxBytes -= head.bytes.size();
        outbox.pop_front();
    }
    return !closePending;
}

bool
Connection::wantsWrite() const
{
    MutexLock lock(mutex);
    return !outbox.empty() || closePending;
}

void
Connection::enqueueLocked(std::string bytes, bool droppable)
{
    if (closePending)
        return;
    if (droppable) {
        // Supersede in place: a newer intermediate version replaces an
        // unsent older one instead of queueing behind it.
        if (!outbox.empty() && outbox.back().droppable &&
            outbox.back().offset == 0) {
            outboxBytes -= outbox.back().bytes.size();
            outboxBytes += bytes.size();
            outbox.back().bytes = std::move(bytes);
            if (stats.versionsDropped)
                stats.versionsDropped->add();
            return;
        }
        if (outboxBytes + bytes.size() > maxOutboxBytes) {
            // Backpressure sheds intermediates only; finals and
            // terminal frames are queued regardless.
            if (stats.versionsDropped)
                stats.versionsDropped->add();
            return;
        }
    }
    outboxBytes += bytes.size();
    outbox.push_back(OutMessage{std::move(bytes), 0, droppable});
}

void
Connection::enqueueBytes(std::string bytes, bool droppable)
{
    {
        MutexLock lock(mutex);
        enqueueLocked(std::move(bytes), droppable);
    }
    host.wakeReactor();
}

void
Connection::enqueueFrame(const Frame &frame, bool droppable)
{
    enqueueBytes(encodeFrame(frame), droppable);
}

void
Connection::closeAfterFlush()
{
    {
        MutexLock lock(mutex);
        closePending = true;
    }
    host.wakeReactor();
}

void
Connection::beginServerSentEvents()
{
    MutexLock lock(mutex);
    mode = Mode::sse;
}

void
Connection::announceDrain(std::uint64_t grace_millis)
{
    {
        MutexLock lock(mutex);
        if (mode != Mode::sse)
            return;
        enqueueLocked(
            sseEvent("drain", "{\"graceMillis\":" +
                                  std::to_string(grace_millis) + "}"),
            false);
    }
    host.wakeReactor();
}

void
Connection::onVersion(const VersionFrame &frame)
{
    // Brownout L2+: intermediate refinements are shed at the door —
    // the client still gets its final (and DONE), just fewer steps on
    // the way there. Cheaper than the outbox path: nothing is encoded.
    if (!frame.final && host.shedIntermediates()) {
        if (stats.brownoutDropped)
            stats.brownoutDropped->add();
        return;
    }
    std::string bytes;
    {
        MutexLock lock(mutex);
        if (mode == Mode::sse)
            bytes = sseEvent("version", versionEventJson(frame));
        else
            bytes = encodeFrame(Frame{frame});
        enqueueLocked(std::move(bytes), !frame.final);
    }
    if (stats.versionsStreamed)
        stats.versionsStreamed->add();
    host.wakeReactor();
}

void
Connection::onDone(const DoneFrame &frame)
{
    {
        MutexLock lock(mutex);
        if (mode == Mode::sse) {
            enqueueLocked(sseEvent("done", doneEventJson(frame)), false);
            enqueueLocked(chunkedFinal(), false);
        } else {
            enqueueLocked(encodeFrame(Frame{frame}), false);
        }
        closePending = true;
    }
    host.wakeReactor();
}

} // namespace anytime::net
