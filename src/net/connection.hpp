/**
 * @file
 * One client connection: protocol sniffing, buffered writes, and
 * anytime backpressure.
 *
 * A connection starts in sniff mode: the first four bytes select the
 * binary protocol ("ANYT" magic) or HTTP. Reads and epoll bookkeeping
 * happen only on the reactor thread; version fan-out arrives on
 * publishing worker threads and completion on the service scheduler
 * thread, so the outbox is mutex-guarded and writers wake the reactor
 * (eventfd) instead of touching the socket.
 *
 * Backpressure is where the anytime contract bites: when a client
 * reads slower than the pipeline publishes, queued *intermediate*
 * versions are superseded-in-place (each droppable outbox message is
 * replaced by the newer version) and, at the outbox byte bound,
 * dropped outright. The final version and the DONE frame are never
 * droppable — a slow client loses intermediate refinements, never its
 * answer. This mirrors the in-process VersionedBuffer semantics:
 * consumers see "whichever output happens to be in the buffer", not
 * every version ever published.
 *
 * Writes pass the `net.write` fault site before each send, so the
 * chaos suite can sever a stream mid-flight and assert the
 * disconnect-as-cancel accounting.
 */

#ifndef ANYTIME_NET_CONNECTION_HPP
#define ANYTIME_NET_CONNECTION_HPP

#include <cstdint>
#include <deque>
#include <memory>
#include <string>

#include "net/coalesce.hpp"
#include "net/http.hpp"
#include "net/wire.hpp"
#include "obs/metrics.hpp"
#include "support/sync.hpp"
#include "support/thread_annotations.hpp"

namespace anytime::net {

class Connection;

/** Counters a connection reports into (owned by the server). */
struct ConnectionStats
{
    obs::Counter *versionsStreamed = nullptr;
    obs::Counter *versionsDropped = nullptr;
    obs::Counter *bytesSent = nullptr;
    obs::Counter *writeFaults = nullptr;
    /** Intermediates shed at the net door by brownout (L2+). */
    obs::Counter *brownoutDropped = nullptr;
};

/** The server-side callbacks a connection drives (reactor thread). */
class ConnectionHost
{
  public:
    virtual ~ConnectionHost() = default;

    /** A complete binary RequestFrame arrived on @p connection. */
    virtual void
    handleRequestFrame(const std::shared_ptr<Connection> &connection,
                       const RequestFrame &frame) = 0;

    /** A complete HTTP request head arrived on @p connection. */
    virtual void
    handleHttpRequest(const std::shared_ptr<Connection> &connection,
                      const HttpRequest &request) = 0;

    /** Wake the reactor so it re-evaluates write interest. Must be
     *  callable from any thread. */
    virtual void wakeReactor() = 0;

    /** True while the host wants droppable intermediate versions shed
     *  at the door (brownout L2+). Any-thread safe; finals and DONE
     *  are never affected. */
    virtual bool shedIntermediates() const { return false; }
};

/** One accepted socket and its buffered, droppable outbox. */
class Connection : public StreamSubscriber,
                   public std::enable_shared_from_this<Connection>
{
  public:
    /** Wire protocol selected by the connection preamble. */
    enum class Mode
    {
        sniffing, ///< first bytes not seen yet
        binary,   ///< "ANYT" length-prefixed frames
        http,     ///< HTTP request/response
        sse,      ///< HTTP upgraded to a chunked event stream
    };

    Connection(int fd, std::uint64_t id, std::string peer,
               ConnectionHost &host, ConnectionStats stats,
               std::size_t max_outbox_bytes);
    ~Connection() override;

    Connection(const Connection &) = delete;
    Connection &operator=(const Connection &) = delete;

    int fd() const { return socket; }
    std::uint64_t id() const { return connectionId; }
    const std::string &peer() const { return peerLabel; }

    // ---- reactor-thread API ----------------------------------------

    /** Drain readable bytes and dispatch complete requests to the
     *  host. False when the connection should close (EOF, error, or
     *  protocol corruption). */
    bool handleReadable();

    /** Flush the outbox as far as the socket allows. False when the
     *  connection should close (write error, injected fault, or
     *  close-after-flush with an empty outbox). */
    bool handleWritable();

    /** True when the outbox has bytes (or a pending close) — the
     *  reactor arms EPOLLOUT from this. Any-thread safe. */
    bool wantsWrite() const;

    /** Reactor-side scratch: whether EPOLLOUT is currently armed. */
    bool writeArmed = false;

    /** Reactor-side: the coalesced stream this connection subscribed
     *  to (for detach on close); null before a request is attached. */
    std::shared_ptr<StreamEntry> stream;
    StreamKey streamKey;

    /** Reactor-side: trace id of the request this connection streams
     *  (0 before one is attached). Read on write faults so the flight
     *  recorder can tie the severed stream back to its trace. */
    std::uint64_t traceId = 0;

    // ---- any-thread API --------------------------------------------

    /** StreamSubscriber: one published version (droppable unless
     *  final, per the backpressure policy above). */
    void onVersion(const VersionFrame &frame) override;

    /** StreamSubscriber: terminal frame; closes after the flush. */
    void onDone(const DoneFrame &frame) override;

    /** Queue @p frame on the binary outbox. */
    void enqueueFrame(const Frame &frame, bool droppable = false);

    /** Queue raw bytes (HTTP responses, SSE chunks). */
    void enqueueBytes(std::string bytes, bool droppable = false);

    /** Close the socket once everything queued so far is flushed. */
    void closeAfterFlush();

    /** Switch to SSE mode (host does this when an HTTP request opens
     *  a stream; the headers must already be queued). */
    void beginServerSentEvents();

    /** Queue the terminal `event: drain` notice on an SSE stream (the
     *  graceful-drain announcement; non-droppable). No-op for binary
     *  connections — their streams end with a DONE frame as usual. */
    void announceDrain(std::uint64_t grace_millis);

  private:
    struct OutMessage
    {
        std::string bytes;
        std::size_t offset = 0;
        /** Droppable messages may be superseded or shed; the final
         *  version and terminal frames never are. */
        bool droppable = false;
    };

    bool sniffLocked() ANYTIME_REQUIRES(mutex);
    bool consumeBinaryLocked() ANYTIME_REQUIRES(mutex);
    bool consumeHttpLocked() ANYTIME_REQUIRES(mutex);
    void enqueueLocked(std::string bytes, bool droppable)
        ANYTIME_REQUIRES(mutex);

    const int socket;
    const std::uint64_t connectionId;
    const std::string peerLabel;
    ConnectionHost &host;
    const ConnectionStats stats;
    const std::size_t maxOutboxBytes;

    mutable Mutex mutex;
    Mode mode ANYTIME_GUARDED_BY(mutex) = Mode::sniffing;
    std::string inbox ANYTIME_GUARDED_BY(mutex);
    FrameReader reader ANYTIME_GUARDED_BY(mutex);
    std::deque<OutMessage> outbox ANYTIME_GUARDED_BY(mutex);
    std::size_t outboxBytes ANYTIME_GUARDED_BY(mutex) = 0;
    bool closePending ANYTIME_GUARDED_BY(mutex) = false;
    bool requestSeen ANYTIME_GUARDED_BY(mutex) = false;
    std::uint64_t writeOrdinal ANYTIME_GUARDED_BY(mutex) = 0;
};

/** Render a VersionFrame as the JSON body of an SSE `version` event. */
std::string versionEventJson(const VersionFrame &frame);

/** Render a DoneFrame as the JSON body of an SSE `done` event. */
std::string doneEventJson(const DoneFrame &frame);

} // namespace anytime::net

#endif // ANYTIME_NET_CONNECTION_HPP
