#include "net/http.hpp"

#include <cctype>
#include <cstdio>
#include <sstream>

namespace anytime::net {

namespace {

std::string
toLower(std::string text)
{
    for (char &ch : text)
        ch = static_cast<char>(
            std::tolower(static_cast<unsigned char>(ch)));
    return text;
}

std::string
trim(const std::string &text)
{
    std::size_t begin = 0;
    std::size_t end = text.size();
    while (begin < end &&
           std::isspace(static_cast<unsigned char>(text[begin])))
        ++begin;
    while (end > begin &&
           std::isspace(static_cast<unsigned char>(text[end - 1])))
        --end;
    return text.substr(begin, end - begin);
}

int
hexDigit(char ch)
{
    if (ch >= '0' && ch <= '9')
        return ch - '0';
    if (ch >= 'a' && ch <= 'f')
        return ch - 'a' + 10;
    if (ch >= 'A' && ch <= 'F')
        return ch - 'A' + 10;
    return -1;
}

void
parseQuery(const std::string &query,
           std::map<std::string, std::string> &out)
{
    std::size_t pos = 0;
    while (pos < query.size()) {
        std::size_t amp = query.find('&', pos);
        if (amp == std::string::npos)
            amp = query.size();
        const std::string pair = query.substr(pos, amp - pos);
        const std::size_t eq = pair.find('=');
        if (eq == std::string::npos) {
            if (!pair.empty())
                out[urlDecode(pair)] = "";
        } else {
            out[urlDecode(pair.substr(0, eq))] =
                urlDecode(pair.substr(eq + 1));
        }
        pos = amp + 1;
    }
}

} // namespace

std::string
urlDecode(const std::string &text)
{
    std::string out;
    out.reserve(text.size());
    for (std::size_t i = 0; i < text.size(); ++i) {
        if (text[i] == '+') {
            out.push_back(' ');
        } else if (text[i] == '%' && i + 2 < text.size() &&
                   hexDigit(text[i + 1]) >= 0 &&
                   hexDigit(text[i + 2]) >= 0) {
            out.push_back(static_cast<char>(hexDigit(text[i + 1]) * 16 +
                                            hexDigit(text[i + 2])));
            i += 2;
        } else {
            out.push_back(text[i]);
        }
    }
    return out;
}

std::string
jsonEscape(const std::string &text)
{
    std::string out;
    out.reserve(text.size() + 8);
    for (const char ch : text) {
        switch (ch) {
          case '"':
            out += "\\\"";
            break;
          case '\\':
            out += "\\\\";
            break;
          case '\n':
            out += "\\n";
            break;
          case '\r':
            out += "\\r";
            break;
          case '\t':
            out += "\\t";
            break;
          default:
            if (static_cast<unsigned char>(ch) < 0x20) {
                char buf[8];
                std::snprintf(buf, sizeof buf, "\\u%04x",
                              static_cast<unsigned char>(ch));
                out += buf;
            } else {
                out.push_back(ch);
            }
        }
    }
    return out;
}

std::optional<HttpRequest>
parseHttpRequest(const std::string &data, std::size_t &consumed)
{
    const std::size_t headEnd = data.find("\r\n\r\n");
    if (headEnd == std::string::npos)
        return std::nullopt; // head incomplete: wait for more bytes
    consumed = headEnd + 4;

    HttpRequest request;
    std::istringstream head(data.substr(0, headEnd));
    std::string line;
    if (!std::getline(head, line))
        return request; // empty method => malformed
    if (!line.empty() && line.back() == '\r')
        line.pop_back();

    // Request line: METHOD SP target SP HTTP/x.y
    const std::size_t sp1 = line.find(' ');
    const std::size_t sp2 =
        sp1 == std::string::npos ? std::string::npos
                                 : line.find(' ', sp1 + 1);
    if (sp1 == std::string::npos || sp2 == std::string::npos ||
        line.compare(sp2 + 1, 5, "HTTP/") != 0)
        return request;
    request.method = line.substr(0, sp1);
    request.target = line.substr(sp1 + 1, sp2 - sp1 - 1);

    const std::size_t qmark = request.target.find('?');
    if (qmark == std::string::npos) {
        request.path = request.target;
    } else {
        request.path = request.target.substr(0, qmark);
        parseQuery(request.target.substr(qmark + 1), request.query);
    }

    while (std::getline(head, line)) {
        if (!line.empty() && line.back() == '\r')
            line.pop_back();
        if (line.empty())
            continue;
        const std::size_t colon = line.find(':');
        if (colon == std::string::npos) {
            request.method.clear(); // malformed header field
            return request;
        }
        request.headers[toLower(trim(line.substr(0, colon)))] =
            trim(line.substr(colon + 1));
    }
    return request;
}

std::uint64_t
parseTraceParent(const std::string &value)
{
    // Full W3C form: version-traceid-spanid-flags. Only the trace-id
    // field matters here; take its low 64 bits.
    std::string hex = value;
    const std::size_t dash = value.find('-');
    if (dash != std::string::npos) {
        const std::size_t idEnd = value.find('-', dash + 1);
        if (idEnd == std::string::npos)
            return 0;
        hex = value.substr(dash + 1, idEnd - dash - 1);
        if (hex.size() != 32)
            return 0;
        hex = hex.substr(16);
    }
    if (hex.empty() || hex.size() > 16)
        return 0;
    std::uint64_t id = 0;
    for (const char ch : hex) {
        const int digit = hexDigit(ch);
        if (digit < 0)
            return 0;
        id = (id << 4) | static_cast<std::uint64_t>(digit);
    }
    return id;
}

const char *
httpReason(int status)
{
    switch (status) {
      case 200:
        return "OK";
      case 400:
        return "Bad Request";
      case 404:
        return "Not Found";
      case 405:
        return "Method Not Allowed";
      case 429:
        return "Too Many Requests";
      case 503:
        return "Service Unavailable";
      default:
        return "Error";
    }
}

std::string
httpResponse(int status, const std::string &contentType,
             const std::string &body)
{
    std::ostringstream out;
    out << "HTTP/1.1 " << status << ' ' << httpReason(status) << "\r\n"
        << "Content-Type: " << contentType << "\r\n"
        << "Content-Length: " << body.size() << "\r\n"
        << "Connection: close\r\n"
        << "\r\n"
        << body;
    return out.str();
}

std::string
sseHeaders()
{
    return "HTTP/1.1 200 OK\r\n"
           "Content-Type: text/event-stream\r\n"
           "Cache-Control: no-store\r\n"
           "Transfer-Encoding: chunked\r\n"
           "Connection: close\r\n"
           "\r\n";
}

namespace {

std::string
chunk(const std::string &payload)
{
    char size[16];
    std::snprintf(size, sizeof size, "%zx",
                  static_cast<std::size_t>(payload.size()));
    std::string out(size);
    out += "\r\n";
    out += payload;
    out += "\r\n";
    return out;
}

} // namespace

std::string
sseEvent(const std::string &event, const std::string &data)
{
    return chunk("event: " + event + "\ndata: " + data + "\n\n");
}

std::string
chunkedFinal()
{
    return "0\r\n\r\n";
}

std::optional<std::string>
decodeChunked(const std::string &body)
{
    std::string out;
    std::size_t pos = 0;
    for (;;) {
        const std::size_t lineEnd = body.find("\r\n", pos);
        if (lineEnd == std::string::npos)
            return std::nullopt;
        std::size_t size = 0;
        bool sawDigit = false;
        for (std::size_t i = pos; i < lineEnd; ++i) {
            const int digit = hexDigit(body[i]);
            if (digit < 0) {
                if (body[i] == ';')
                    break; // chunk extension: ignore
                return std::nullopt;
            }
            size = size * 16 + static_cast<std::size_t>(digit);
            sawDigit = true;
        }
        if (!sawDigit)
            return std::nullopt;
        pos = lineEnd + 2;
        if (size == 0)
            return out; // trailers ignored
        if (pos + size + 2 > body.size())
            return std::nullopt;
        out.append(body, pos, size);
        if (body.compare(pos + size, 2, "\r\n") != 0)
            return std::nullopt;
        pos += size + 2;
    }
}

} // namespace anytime::net
