/**
 * @file
 * Minimal HTTP/1.1 helpers for the anytime listener (no sockets here).
 *
 * The binary protocol is the primary wire format; HTTP is the adapter
 * that makes the anytime contract reachable from a browser or curl.
 * A progressive response maps naturally onto chunked transfer
 * encoding: each published version becomes one Server-Sent-Events
 * `version` event flushed as its own chunk, terminated by a `done`
 * event, so `curl -N` shows the answer *improving* in real time.
 *
 * Only the slice the listener needs is implemented: request-line +
 * header parsing (no bodies — all endpoints are GET), fixed responses
 * with Content-Length, and chunked/SSE encoding helpers. The parser
 * and encoders are pure string transforms so tests/net/test_net_http
 * covers them without opening a socket.
 */

#ifndef ANYTIME_NET_HTTP_HPP
#define ANYTIME_NET_HTTP_HPP

#include <cstdint>
#include <map>
#include <optional>
#include <string>

namespace anytime::net {

/** One parsed HTTP request head (no body support). */
struct HttpRequest
{
    std::string method;
    /** Raw request target, e.g. "/stream?pipeline=counter". */
    std::string target;
    /** Target path with the query string removed. */
    std::string path;
    /** Decoded query parameters (last wins on duplicates). */
    std::map<std::string, std::string> query;
    /** Header fields, names lower-cased. */
    std::map<std::string, std::string> headers;
};

/**
 * Parse one request head from @p data. Returns the request and sets
 * @p consumed past the terminating blank line; nullopt when the head
 * is incomplete (feed more bytes) — malformed heads return a request
 * with an empty method so the caller can answer 400.
 */
std::optional<HttpRequest> parseHttpRequest(const std::string &data,
                                            std::size_t &consumed);

/** Percent-decode @p text ('+' becomes space; bad escapes kept). */
std::string urlDecode(const std::string &text);

/** Escape @p text for embedding in a JSON string literal. */
std::string jsonEscape(const std::string &text);

/** A complete fixed-length response (Connection: close). */
std::string httpResponse(int status, const std::string &contentType,
                         const std::string &body);

/** Response head opening a chunked text/event-stream (SSE). */
std::string sseHeaders();

/** One SSE event carrying @p data, framed as an HTTP chunk. */
std::string sseEvent(const std::string &event, const std::string &data);

/** The terminating zero-length chunk ending a chunked response. */
std::string chunkedFinal();

/**
 * Decode a chunked transfer-encoded @p body back into plain bytes
 * (client-side test helper). Nullopt on malformed framing.
 */
std::optional<std::string> decodeChunked(const std::string &body);

/** Standard reason phrase for @p status ("OK", "Not Found", ...). */
const char *httpReason(int status);

/**
 * Extract a 64-bit trace id from a `traceparent`-style value: either a
 * bare hex id (1-16 hex digits) or the full W3C form
 * "00-<32 hex trace>-<16 hex span>-<flags>", in which case the low 64
 * bits (the last 16 hex digits) of the trace-id field are taken.
 * Returns 0 when @p value is malformed — the listener then mints its
 * own id instead of trusting client garbage.
 */
std::uint64_t parseTraceParent(const std::string &value);

} // namespace anytime::net

#endif // ANYTIME_NET_HTTP_HPP
