#include "net/server.hpp"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/epoll.h>
#include <sys/eventfd.h>
#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <cmath>
#include <cstdio>
#include <cstring>
#include <limits>
#include <stdexcept>
#include <vector>

#include <sstream>

#include "fault/fault.hpp"
#include "net/http.hpp"
#include "obs/flight.hpp"
#include "obs/trace.hpp"
#include "support/error.hpp"

namespace anytime::net {

namespace {

/** Trace id as the 16-digit hex JSON strings use everywhere. */
std::string
traceHex(std::uint64_t trace_id)
{
    char buf[20];
    std::snprintf(buf, sizeof buf, "%016llx",
                  static_cast<unsigned long long>(trace_id));
    return buf;
}

} // namespace

NetServer::NetServer(NetServerConfig config)
    : configuration(std::move(config))
{
    fatalIf(!configuration.catalog,
            "NetServer requires a pipeline catalog");
    registry = configuration.metricsRegistry
                   ? configuration.metricsRegistry
                   : &obs::defaultRegistry();
    if (!configuration.service.metricsRegistry)
        configuration.service.metricsRegistry = registry;

    connectionsTotal =
        &registry->counter("anytime_net_connections_total",
                           "Connections accepted by the listener.");
    connectionsActive =
        &registry->gauge("anytime_net_connections_active",
                         "Connections currently open.");
    connectionsRejected = &registry->counter(
        "anytime_net_connections_rejected_total",
        "Accepts closed by the connection cap.");
    acceptThrottled = &registry->counter(
        "anytime_net_accept_throttled_total",
        "Accepts closed by per-IP throttling.");
    requestsTotal =
        &registry->counter("anytime_net_requests_total",
                           "Streaming requests received (any door).");
    httpRequestsTotal =
        &registry->counter("anytime_net_http_requests_total",
                           "HTTP requests received.");
    coalescedTotal = &registry->counter(
        "anytime_net_coalesced_total",
        "Requests attached to an already in-flight identical stream.");
    connectionStats.versionsStreamed = &registry->counter(
        "anytime_net_versions_streamed_total",
        "Version frames fanned out to connections.");
    connectionStats.versionsDropped = &registry->counter(
        "anytime_net_versions_dropped_total",
        "Intermediate versions shed by backpressure.");
    connectionStats.bytesSent =
        &registry->counter("anytime_net_bytes_sent_total",
                           "Bytes written to client sockets.");
    connectionStats.writeFaults = &registry->counter(
        "anytime_net_write_faults_total",
        "Writes severed by the net.write fault site.");
    connectionStats.brownoutDropped = &registry->counter(
        "anytime_brownout_intermediates_dropped_total",
        "Intermediate versions shed at the net door by brownout.");
    coalesceWidened = &registry->counter(
        "anytime_brownout_coalesce_widened_total",
        "Request deadlines quantized into the brownout coalescing "
        "window.");
    drainStreamsFlushed = &registry->counter(
        "anytime_drain_streams_flushed_total",
        "Open connections announced to during a graceful drain.");

    listenFd = ::socket(AF_INET, SOCK_STREAM | SOCK_NONBLOCK |
                                     SOCK_CLOEXEC,
                        0);
    fatalIf(listenFd < 0, "net: socket() failed: ",
            std::strerror(errno));
    const int enable = 1;
    ::setsockopt(listenFd, SOL_SOCKET, SO_REUSEADDR, &enable,
                 sizeof enable);

    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_port = htons(configuration.port);
    fatalIf(::inet_pton(AF_INET, configuration.bindAddress.c_str(),
                        &addr.sin_addr) != 1,
            "net: bad bind address '", configuration.bindAddress, "'");
    fatalIf(::bind(listenFd, reinterpret_cast<sockaddr *>(&addr),
                   sizeof addr) != 0,
            "net: bind(", configuration.bindAddress, ":",
            configuration.port, ") failed: ", std::strerror(errno));
    fatalIf(::listen(listenFd, 128) != 0, "net: listen() failed: ",
            std::strerror(errno));

    socklen_t len = sizeof addr;
    fatalIf(::getsockname(listenFd, reinterpret_cast<sockaddr *>(&addr),
                          &len) != 0,
            "net: getsockname() failed: ", std::strerror(errno));
    boundPort = ntohs(addr.sin_port);

    epollFd = ::epoll_create1(EPOLL_CLOEXEC);
    fatalIf(epollFd < 0, "net: epoll_create1() failed: ",
            std::strerror(errno));
    wakeFd = ::eventfd(0, EFD_NONBLOCK | EFD_CLOEXEC);
    fatalIf(wakeFd < 0, "net: eventfd() failed: ",
            std::strerror(errno));

    epoll_event ev{};
    ev.events = EPOLLIN;
    ev.data.fd = listenFd;
    fatalIf(::epoll_ctl(epollFd, EPOLL_CTL_ADD, listenFd, &ev) != 0,
            "net: epoll_ctl(listen) failed: ", std::strerror(errno));
    ev.data.fd = wakeFd;
    fatalIf(::epoll_ctl(epollFd, EPOLL_CTL_ADD, wakeFd, &ev) != 0,
            "net: epoll_ctl(wake) failed: ", std::strerror(errno));

    startTime = std::chrono::steady_clock::now();
    anytime = std::make_unique<AnytimeServer>(configuration.service);
    reactor = std::jthread(
        [this](std::stop_token stop) { reactorLoop(stop); });
}

NetServer::~NetServer()
{
    reactor.request_stop();
    wakeReactor();
    if (reactor.joinable())
        reactor.join();
    // The reactor exit path closed every connection (detaching all
    // subscribers), so the service teardown below fans its cancel
    // completions into empty entries.
    anytime.reset();
    if (listenFd >= 0)
        ::close(listenFd);
    if (wakeFd >= 0)
        ::close(wakeFd);
    if (epollFd >= 0)
        ::close(epollFd);
}

std::size_t
NetServer::connectionCount() const
{
    return openConnections.load(std::memory_order_relaxed);
}

void
NetServer::wakeReactor()
{
    const std::uint64_t one = 1;
    [[maybe_unused]] const ssize_t n =
        ::write(wakeFd, &one, sizeof one);
}

void
NetServer::reactorLoop(std::stop_token stop)
{
    epoll_event events[64];
    while (!stop.stop_requested()) {
        const int n = ::epoll_wait(epollFd, events, 64, 200);
        if (n < 0) {
            if (errno == EINTR)
                continue;
            break; // epoll fd gone: shutting down
        }
        std::vector<std::shared_ptr<Connection>> dead;
        for (int i = 0; i < n; ++i) {
            const int fd = events[i].data.fd;
            if (fd == listenFd && listenFd >= 0) {
                acceptReady();
                continue;
            }
            if (fd == wakeFd) {
                std::uint64_t drained = 0;
                while (::read(wakeFd, &drained, sizeof drained) > 0) {
                }
                continue;
            }
            const auto it = connections.find(fd);
            if (it == connections.end())
                continue;
            if ((events[i].events & (EPOLLIN | EPOLLERR | EPOLLHUP)) &&
                !it->second->handleReadable())
                dead.push_back(it->second);
        }
        for (const auto &connection : dead)
            closeConnection(connection);
        maintainWriteInterest();
        sweepOrphanedStreams(/*force=*/false);

        if (drainRequested.load(std::memory_order_acquire)) {
            if (!drainActive.load(std::memory_order_relaxed))
                beginDrainOnReactor();
            // Completion: every request answered and every outbox
            // flushed. Idle connections (no stream, nothing queued)
            // are closed here — a drain must terminate even when a
            // client holds its socket open.
            if (anytime->drainComplete()) {
                sweepOrphanedStreams(/*force=*/true);
                std::vector<std::shared_ptr<Connection>> idle;
                for (const auto &[fd, connection] : connections)
                    if (!connection->wantsWrite())
                        idle.push_back(connection);
                for (const auto &connection : idle)
                    closeConnection(connection);
                if (connections.empty()) {
                    MutexLock lock(drainMutex);
                    if (!drainDone) {
                        drainDone = true;
                        drainCv.notifyAll();
                    }
                }
            }
        }
    }
    // Shutdown: close everything still open (cancels orphans).
    while (!connections.empty())
        closeConnection(connections.begin()->second);
    sweepOrphanedStreams(/*force=*/true);
}

void
NetServer::beginDrainOnReactor()
{
    drainActive.store(true, std::memory_order_release);
    // Stop accepting: close the listener so new connections are
    // refused by the kernel, not parked in the backlog.
    if (listenFd >= 0) {
        ::epoll_ctl(epollFd, EPOLL_CTL_DEL, listenFd, nullptr);
        ::close(listenFd);
        listenFd = -1;
    }
    const auto grace = std::chrono::nanoseconds(
        drainGraceNanos.load(std::memory_order_relaxed));
    const std::uint64_t grace_millis = static_cast<std::uint64_t>(
        std::chrono::duration_cast<std::chrono::milliseconds>(grace)
            .count());
    obs::traceInstant(
        "net.drain", "net",
        {"connections", static_cast<double>(connections.size())},
        {"grace_ms", static_cast<double>(grace_millis)});
    std::vector<std::shared_ptr<Connection>> severed;
    for (const auto &[fd, connection] : connections) {
        try {
            // Chaos site: a thrown fault severs this one connection's
            // drain notice; its request is cancelled through the usual
            // disconnect path and the accounting identity still holds.
            ANYTIME_FAULT_POINT("net.drain", connection->peer(),
                                ++drainAnnounceOrdinal);
        } catch (const std::exception &) {
            severed.push_back(connection);
            continue;
        }
        connection->announceDrain(grace_millis);
        drainStreamsFlushed->add();
    }
    for (const auto &connection : severed)
        closeConnection(connection);
    anytime->beginDrain(grace);
}

void
NetServer::drain(std::chrono::nanoseconds grace)
{
    drainGraceNanos.store(grace.count(), std::memory_order_relaxed);
    drainRequested.store(true, std::memory_order_release);
    wakeReactor();
    MutexLock lock(drainMutex);
    drainCv.wait(lock, [&]() ANYTIME_REQUIRES(drainMutex) {
        return drainDone;
    });
}

bool
NetServer::shedIntermediates() const
{
    return anytime->brownoutPolicy().dropIntermediates;
}

void
NetServer::applyBrownoutDoorPolicy(StreamKey &key)
{
    const BrownoutLevelPolicy policy = anytime->brownoutPolicy();
    if (policy.maxStageWorkers > 0 &&
        key.stageWorkers > policy.maxStageWorkers) {
        key.stageWorkers = policy.maxStageWorkers;
        anytime->brownoutControl().noteGangCapped();
    }
    if (policy.coalesceWindowMicros > 0 &&
        key.deadlineMicros > policy.coalesceWindowMicros) {
        // Quantize the deadline DOWN onto the window grid: requests
        // within one window now share a StreamKey (and so a pipeline
        // execution), and nobody's deadline is ever extended.
        const std::uint64_t quantized =
            key.deadlineMicros -
            key.deadlineMicros % policy.coalesceWindowMicros;
        if (quantized != key.deadlineMicros) {
            key.deadlineMicros = quantized;
            coalesceWidened->add();
        }
    }
}

void
NetServer::sweepOrphanedStreams(bool force)
{
    if (orphanedStreams.empty())
        return;
    const auto now = std::chrono::steady_clock::now();
    std::erase_if(orphanedStreams, [&](const OrphanedStream &orphan) {
        if (orphan.entry->finished())
            return true; // completed while lingering: nothing to cancel
        if (orphan.entry->subscriberCount() > 0)
            return true; // a client reconnected and resumed
        if (!force && now < orphan.expiry)
            return false; // resume window still open
        const std::uint64_t id = orphan.entry->requestId();
        if (id != 0 && anytime->cancel(id))
            obs::traceInstant("net.disconnect_cancel", "net",
                              {"request", static_cast<double>(id)},
                              {"lingered", 1.0});
        if (configuration.coalesce)
            streams.remove(orphan.key, orphan.entry);
        return true;
    });
}

void
NetServer::acceptReady()
{
    for (;;) {
        sockaddr_in addr{};
        socklen_t len = sizeof addr;
        const int fd = ::accept4(listenFd,
                                 reinterpret_cast<sockaddr *>(&addr),
                                 &len, SOCK_NONBLOCK | SOCK_CLOEXEC);
        if (fd < 0) {
            if (errno == EAGAIN || errno == EWOULDBLOCK ||
                errno == EINTR)
                return;
            return; // transient accept error: try again on next event
        }
        connectionsTotal->add();

        if (connections.size() >= configuration.maxConnections) {
            connectionsRejected->add();
            ::close(fd);
            continue;
        }

        if (configuration.perIpAcceptRate > 0.0) {
            const auto now = std::chrono::steady_clock::now();
            // Periodically drop buckets idle long enough to have
            // refilled to (near) full burst anyway, so a scan from
            // many distinct addresses can't grow the map forever.
            constexpr auto kBucketSweepInterval = std::chrono::seconds(60);
            if (now - lastBucketSweep >= kBucketSweepInterval) {
                lastBucketSweep = now;
                std::erase_if(acceptBuckets, [&](const auto &entry) {
                    return now - entry.second.last >=
                           kBucketSweepInterval;
                });
            }
            TokenBucket &bucket = acceptBuckets[addr.sin_addr.s_addr];
            acceptBucketCount.store(acceptBuckets.size(),
                                    std::memory_order_relaxed);
            if (bucket.last.time_since_epoch().count() == 0) {
                bucket.tokens = configuration.perIpAcceptBurst;
            } else {
                const double dt =
                    std::chrono::duration<double>(now - bucket.last)
                        .count();
                bucket.tokens = std::min(
                    configuration.perIpAcceptBurst,
                    bucket.tokens +
                        dt * configuration.perIpAcceptRate);
            }
            bucket.last = now;
            if (bucket.tokens < 1.0) {
                acceptThrottled->add();
                ::close(fd);
                continue;
            }
            bucket.tokens -= 1.0;
        }

        const int nodelay = 1;
        ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &nodelay,
                     sizeof nodelay);

        const std::uint64_t id = nextConnectionId++;
        char ip[INET_ADDRSTRLEN] = "?";
        ::inet_ntop(AF_INET, &addr.sin_addr, ip, sizeof ip);
        std::string peer = std::string(ip) + ":" +
                           std::to_string(ntohs(addr.sin_port)) + "#" +
                           std::to_string(id);

        auto connection = std::make_shared<Connection>(
            fd, id, std::move(peer), *this, connectionStats,
            configuration.maxOutboxBytes);
        connections.emplace(fd, connection);
        openConnections.store(connections.size(),
                              std::memory_order_relaxed);
        connectionsActive->set(
            static_cast<double>(connections.size()));
        obs::traceAsyncBegin("connection", "net", id);

        epoll_event ev{};
        ev.events = EPOLLIN;
        ev.data.fd = fd;
        if (::epoll_ctl(epollFd, EPOLL_CTL_ADD, fd, &ev) != 0)
            closeConnection(connection);
    }
}

void
NetServer::closeConnection(const std::shared_ptr<Connection> &connection)
{
    const auto it = connections.find(connection->fd());
    if (it == connections.end() || it->second != connection)
        return; // already closed
    ::epoll_ctl(epollFd, EPOLL_CTL_DEL, connection->fd(), nullptr);
    connections.erase(it);
    openConnections.store(connections.size(),
                          std::memory_order_relaxed);
    connectionsActive->set(static_cast<double>(connections.size()));

    if (connection->stream) {
        const auto [remaining, finished] =
            connection->stream->detach(connection);
        if (remaining == 0 && !finished) {
            if (configuration.resumeLingerMicros > 0 &&
                configuration.coalesce) {
                // Reconnect-and-resume: keep the orphaned stream (and
                // its pipeline) alive for the linger window. A client
                // that reconnects with the same key before it expires
                // finds the live entry and resumes from its replay
                // ring; otherwise the sweep cancels as usual.
                orphanedStreams.push_back(OrphanedStream{
                    connection->streamKey, connection->stream,
                    std::chrono::steady_clock::now() +
                        std::chrono::microseconds(
                            configuration.resumeLingerMicros)});
            } else {
                // Nobody is listening anymore: disconnect-as-cancel.
                // The entry leaves the map so a later identical request
                // builds fresh instead of joining a cancelled stream.
                const std::uint64_t id =
                    connection->stream->requestId();
                if (id != 0 && anytime->cancel(id))
                    obs::traceInstant("net.disconnect_cancel", "net",
                                      {"request",
                                       static_cast<double>(id)});
                if (configuration.coalesce)
                    streams.remove(connection->streamKey,
                                   connection->stream);
            }
        }
        connection->stream.reset();
    }
    obs::traceAsyncEnd("connection", "net", connection->id());
    // The socket itself closes when the last shared_ptr drops
    // (~Connection) — which is now, unless a publish is mid-fan-out.
}

void
NetServer::maintainWriteInterest()
{
    std::vector<std::shared_ptr<Connection>> dead;
    for (const auto &[fd, connection] : connections) {
        if (connection->wantsWrite() &&
            !connection->handleWritable()) {
            dead.push_back(connection);
            continue;
        }
        const bool wants = connection->wantsWrite();
        if (wants != connection->writeArmed) {
            epoll_event ev{};
            ev.events =
                EPOLLIN | (wants ? static_cast<std::uint32_t>(EPOLLOUT)
                                 : 0u);
            ev.data.fd = fd;
            ::epoll_ctl(epollFd, EPOLL_CTL_MOD, fd, &ev);
            connection->writeArmed = wants;
        }
    }
    for (const auto &connection : dead)
        closeConnection(connection);
}

void
NetServer::handleRequestFrame(
    const std::shared_ptr<Connection> &connection,
    const RequestFrame &frame)
{
    requestsTotal->add();
    // v2 clients are still served (resumeFromVersion defaults to 0);
    // anything older or newer than this build speaks is refused.
    if (frame.protocol < kMinProtocolVersion ||
        frame.protocol > kProtocolVersion) {
        connection->enqueueFrame(ErrorFrame{
            "unsupported protocol version " +
            std::to_string(frame.protocol)});
        connection->closeAfterFlush();
        return;
    }
    StreamKey key;
    key.pipeline = frame.pipeline;
    key.input = frame.input;
    key.deadlineMicros = frame.deadlineMicros;
    key.minQuality = frame.minQuality;
    key.stageWorkers = frame.stageWorkers;
    startStream(connection, std::move(key), /*sse=*/false,
                frame.traceId, frame.parentSpanId,
                frame.resumeFromVersion);
}

void
NetServer::startStream(const std::shared_ptr<Connection> &connection,
                       StreamKey key, bool sse, std::uint64_t trace_id,
                       std::uint64_t parent_span_id,
                       std::uint64_t resume_from)
{
    // One trace id per request: the client's when it brought one (off
    // the REQUEST frame or the traceparent query param), minted here
    // otherwise. The acknowledgement echoes the id, the ServiceRequest
    // carries it into the service, and the scope below stamps every
    // reactor-side event emitted while this request is being opened.
    if (trace_id == 0)
        trace_id = obs::newTraceId();
    obs::TraceContextScope context({trace_id, parent_span_id});
    obs::TraceSpan span("net.request", "net");
    connection->traceId = trace_id;

    const auto reject = [&](const std::string &message) {
        if (sse)
            connection->enqueueBytes(
                httpResponse(400, "text/plain", message + "\n"));
        else
            connection->enqueueFrame(ErrorFrame{message});
        connection->closeAfterFlush();
    };
    // Every field of the key is client-controlled; validate here, at
    // the shared protocol boundary, before the key can enter the
    // CoalesceMap (a NaN minQuality would break StreamKey's strict
    // weak ordering) or reach submitTracked (whose fatalIf guards
    // in-process callers and would otherwise throw FatalError through
    // the unprotected reactor thread — std::terminate on a bad frame).
    if (!std::isfinite(key.minQuality) || key.minQuality < 0.0 ||
        key.minQuality > 1.0) {
        reject("min_quality must be a finite value in [0, 1]");
        return;
    }
    if (key.deadlineMicros > kMaxDeadlineMicros) {
        reject("deadline exceeds the maximum of " +
               std::to_string(kMaxDeadlineMicros) + " microseconds");
        return;
    }
    if (key.stageWorkers == 0) {
        reject("workers must be at least 1");
        return;
    }
    // A draining server is closed for new business, promptly and
    // explicitly (a race between accept and the listener closing).
    if (drainActive.load(std::memory_order_acquire)) {
        if (sse)
            connection->enqueueBytes(httpResponse(
                503, "text/plain", "server draining\n"));
        else
            connection->enqueueFrame(ErrorFrame{"server draining"});
        connection->closeAfterFlush();
        return;
    }
    // Brownout door: cap the gang and quantize the deadline into the
    // coalescing window BEFORE the key becomes the stream identity.
    applyBrownoutDoorPolicy(key);

    const auto accept = [&](std::uint64_t id,
                            std::uint64_t stream_trace) {
        if (sse) {
            connection->enqueueBytes(sseHeaders());
            connection->beginServerSentEvents();
            connection->enqueueBytes(sseEvent(
                "accepted",
                "{\"requestId\":" + std::to_string(id) +
                    ",\"traceId\":\"" + traceHex(stream_trace) +
                    "\"}"));
        } else {
            connection->enqueueFrame(AcceptedFrame{id, stream_trace});
        }
    };

    std::shared_ptr<StreamEntry> entry;
    bool created = true;
    if (configuration.coalesce) {
        const auto found = streams.findOrCreate(key);
        entry = found.entry;
        created = found.created;
    } else {
        entry = std::make_shared<StreamEntry>();
    }

    if (!created) {
        // Identical request already in flight: ride its stream. The
        // attach replays the latest version, so this client starts
        // from the current best approximation immediately. The echoed
        // trace id is the *original* request's — there is one pipeline
        // execution and therefore one trace, shared by every rider.
        coalescedTotal->add();
        const std::uint64_t stream_trace = entry->traceId();
        if (stream_trace != 0)
            connection->traceId = stream_trace;
        accept(entry->requestId(), connection->traceId);
        connection->stream = entry;
        connection->streamKey = key;
        if (entry->attach(connection, resume_from) == 0) {
            connection->stream.reset(); // stream already done: replayed
            connection->closeAfterFlush();
        }
        return;
    }

    NetRequestParams params;
    params.input = key.input;
    params.deadline = std::chrono::microseconds(key.deadlineMicros);
    params.minQuality = key.minQuality;
    params.stageWorkers = key.stageWorkers;

    NetPipeline pipeline;
    try {
        pipeline = configuration.catalog->build(key.pipeline, params);
    } catch (const std::exception &error) {
        if (configuration.coalesce)
            streams.remove(key, entry);
        reject(error.what());
        return;
    }

    ServiceRequest request;
    request.name = key.pipeline;
    request.factory = std::move(pipeline.factory);
    request.deadline = std::chrono::microseconds(key.deadlineMicros);
    request.minQuality = key.minQuality;
    request.stageWorkers = key.stageWorkers;
    request.traceId = trace_id;
    request.versionSink = [entry](const VersionUpdate &update) {
        VersionFrame frame;
        frame.version = update.version;
        frame.final = update.final;
        frame.degraded = update.degraded;
        frame.quality = update.quality;
        if (update.payload)
            frame.payload = *update.payload;
        entry->publish(frame);
    };
    CoalesceMap *map = configuration.coalesce ? &streams : nullptr;
    request.onComplete = [entry, key,
                          map](const ServiceResponse &response) {
        DoneFrame done;
        done.status = static_cast<std::uint8_t>(response.status);
        done.reachedPrecise = response.reachedPrecise;
        done.deadlineMet = response.deadlineMet;
        done.versionsPublished = response.versionsPublished;
        done.quality = response.quality;
        done.firstVersionSeconds = response.firstVersionSeconds;
        done.totalSeconds = response.totalSeconds;
        entry->finish(done);
        if (map)
            map->remove(key, entry);
    };

    Submission submission;
    try {
        submission = anytime->submitTracked(std::move(request));
    } catch (const std::exception &error) {
        // Belt and braces: the key was validated above, but any
        // precondition the service rejects must come back as an error
        // frame, not an exception unwinding the reactor thread.
        if (configuration.coalesce)
            streams.remove(key, entry);
        reject(error.what());
        return;
    }
    accept(submission.id, trace_id);
    entry->setRequestId(submission.id);
    entry->setTraceId(trace_id);
    connection->stream = entry;
    connection->streamKey = key;
    if (entry->attach(connection, resume_from) == 0) {
        // Terminal before attach (e.g. shed at admission): the attach
        // replayed everything; nothing live remains to follow.
        connection->stream.reset();
        connection->closeAfterFlush();
    }
}

std::string
NetServer::statuszJson() const
{
    const double uptime =
        std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                      startTime)
            .count();
    char uptimeText[32];
    std::snprintf(uptimeText, sizeof uptimeText, "%.3f", uptime);

    std::string out = "{\"build\":{";
    out += "\"protocol_version\":" + std::to_string(kProtocolVersion);
    out += ",\"trace_compiled_in\":";
    out += ANYTIME_TRACE_COMPILED_IN ? "true" : "false";
#ifndef NDEBUG
    out += ",\"debug\":true";
#else
    out += ",\"debug\":false";
#endif
    out += "}";
    out += ",\"uptime_seconds\":";
    out += uptimeText;
    out += ",\"workers\":{\"total\":" +
           std::to_string(configuration.service.workers) +
           ",\"in_use\":" + std::to_string(anytime->workersInUse()) +
           "}";
    out += ",\"queue\":{\"pending\":" +
           std::to_string(anytime->pendingCount()) +
           ",\"running\":" + std::to_string(anytime->runningCount()) +
           "}";
    out += ",\"connections\":" + std::to_string(connectionCount());
    out += ",\"streams\":" + std::to_string(streams.size());
    {
        char pressureText[32];
        std::snprintf(pressureText, sizeof pressureText, "%.3f",
                      anytime->brownoutControl().pressure());
        out += ",\"brownout\":{\"level\":" +
               std::to_string(anytime->brownoutLevel()) +
               ",\"pressure\":" + pressureText + "}";
    }
    out += ",\"draining\":";
    out += draining() ? "true" : "false";
    out += ",\"accept_buckets\":" +
           std::to_string(
               acceptBucketCount.load(std::memory_order_relaxed));
    out += ",\"tracing\":{\"enabled\":";
    out += obs::tracingEnabled() ? "true" : "false";
    out += ",\"dropped_records\":" +
           std::to_string(obs::droppedRecords()) +
           ",\"retained_records\":" +
           std::to_string(obs::retainedRecords()) + "}";
    out += ",\"flight_recorder\":{\"enabled\":";
    out += obs::flightRecorderEnabled() ? "true" : "false";
    out += ",\"artifacts_written\":" +
           std::to_string(obs::flightArtifactsWritten()) + "}";
    out += "}\n";
    return out;
}

std::string
NetServer::requestzJson() const
{
    std::string out = "{\"requests\":";
    out += obs::TimelineStore::toJson(anytime->timelines().snapshotAll());
    out += ",\"circuits\":[";
    bool first = true;
    for (const auto &circuit : anytime->circuitSnapshot()) {
        if (!first)
            out += ",";
        first = false;
        char seconds[32];
        std::snprintf(seconds, sizeof seconds, "%.3f",
                      circuit.openForSeconds);
        out += "{\"pipeline\":\"" + jsonEscape(circuit.pipeline) +
               "\",\"consecutive_failures\":" +
               std::to_string(circuit.consecutiveFailures) +
               ",\"open_for_seconds\":" + seconds + "}";
    }
    out += "]}\n";
    return out;
}

void
NetServer::handleHttpRequest(
    const std::shared_ptr<Connection> &connection,
    const HttpRequest &request)
{
    httpRequestsTotal->add();
    const auto finishWith = [&](std::string response) {
        connection->enqueueBytes(std::move(response));
        connection->closeAfterFlush();
    };

    if (request.method != "GET") {
        finishWith(httpResponse(405, "text/plain",
                                "only GET is supported\n"));
        return;
    }
    if (request.path == "/metrics") {
        finishWith(httpResponse(200, "text/plain; version=0.0.4",
                                registry->prometheusText()));
        return;
    }
    if (request.path == "/healthz") {
        finishWith(httpResponse(200, "text/plain", "ok\n"));
        return;
    }
    if (request.path == "/statusz") {
        finishWith(httpResponse(200, "application/json", statuszJson()));
        return;
    }
    if (request.path == "/requestz") {
        finishWith(
            httpResponse(200, "application/json", requestzJson()));
        return;
    }
    if (request.path == "/pipelines") {
        std::string body = "[";
        bool first = true;
        for (const auto &name : configuration.catalog->names()) {
            if (!first)
                body += ",";
            body += "\"" + jsonEscape(name) + "\"";
            first = false;
        }
        body += "]\n";
        finishWith(httpResponse(200, "application/json", body));
        return;
    }
    if (request.path == "/stream") {
        const auto param = [&](const char *name,
                               const char *fallback) -> std::string {
            const auto it = request.query.find(name);
            return it == request.query.end() ? fallback : it->second;
        };
        const std::string pipeline = param("pipeline", "");
        if (pipeline.empty()) {
            finishWith(httpResponse(
                400, "text/plain",
                "missing required query parameter 'pipeline'\n"));
            return;
        }
        StreamKey key;
        key.pipeline = pipeline;
        key.input = param("input", "");
        try {
            // Casting a negative or non-finite double to uint64_t is
            // UB; range-check in the double domain first. minQuality
            // (including NaN) is validated in startStream.
            const double deadlineMs =
                std::stod(param("deadline_ms", "1000"));
            const unsigned long workers =
                std::stoul(param("workers", "1"));
            if (!std::isfinite(deadlineMs) || deadlineMs < 0.0 ||
                deadlineMs * 1000.0 >
                    static_cast<double>(kMaxDeadlineMicros) ||
                workers > std::numeric_limits<std::uint32_t>::max())
                throw std::out_of_range("query parameter");
            key.deadlineMicros =
                static_cast<std::uint64_t>(deadlineMs * 1000.0);
            key.minQuality = std::stod(param("min_quality", "0"));
            key.stageWorkers = static_cast<std::uint32_t>(workers);
        } catch (const std::exception &) {
            finishWith(httpResponse(
                400, "text/plain",
                "malformed deadline_ms/min_quality/workers\n"));
            return;
        }
        // Optional reconnect-and-resume: the last version this client
        // already holds (malformed values are a client error).
        std::uint64_t resumeFrom = 0;
        try {
            resumeFrom = std::stoull(param("resume_from", "0"));
        } catch (const std::exception &) {
            finishWith(httpResponse(400, "text/plain",
                                    "malformed resume_from\n"));
            return;
        }
        requestsTotal->add();
        // Optional client trace context; malformed values parse to 0
        // and the server mints its own id instead.
        const std::uint64_t traceId =
            parseTraceParent(param("traceparent", ""));
        startStream(connection, std::move(key), /*sse=*/true, traceId,
                    /*parent_span_id=*/0, resumeFrom);
        return;
    }
    finishWith(httpResponse(404, "text/plain",
                            "unknown path: " + request.path + "\n"));
}

} // namespace anytime::net
