/**
 * @file
 * NetServer: the network front-end of the anytime serving runtime.
 *
 * One epoll reactor thread owns the listen socket, an eventfd wake
 * channel, and every accepted connection; the existing AnytimeServer
 * (scheduler + builder + WorkerPool) does all the computing. The
 * reactor never blocks on service work and the service never touches a
 * socket: version fan-out crosses from publishing worker threads into
 * connection outboxes through the coalesce layer, which then nudges
 * the reactor over the eventfd to re-arm write interest.
 *
 * The wire semantics preserve the anytime contract end to end:
 *  - every version the pipeline publishes streams to the client as it
 *    lands, so the client holds a monotonically improving answer and
 *    can stop reading whenever its own deadline hits;
 *  - a disconnected client cancels its request (unless other
 *    subscribers remain coalesced onto it) — computing for nobody is
 *    the network analogue of running past the deadline;
 *  - backpressure sheds intermediate versions, never the final one
 *    (connection.hpp), so a slow link degrades quality of *refinement*,
 *    not correctness;
 *  - deadline and minQuality ride in the request header into the
 *    ServiceRequest, so EDF ordering and admission control treat
 *    remote requests exactly like in-process ones.
 *
 * Admission happens twice: at accept (connection cap, per-IP token
 * bucket) and at submit (the service's queue/EWMA/circuit policies).
 * The HTTP adapter shares the listener via first-bytes sniffing and
 * serves GET /metrics (Prometheus text), /healthz, /pipelines, and
 * /stream (Server-Sent Events over chunked encoding).
 */

#ifndef ANYTIME_NET_SERVER_HPP
#define ANYTIME_NET_SERVER_HPP

#include <atomic>
#include <chrono>
#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <thread>

#include "net/catalog.hpp"
#include "net/coalesce.hpp"
#include "net/connection.hpp"
#include "obs/metrics.hpp"
#include "service/server.hpp"
#include "support/sync.hpp"
#include "support/thread_annotations.hpp"

namespace anytime::net {

/** Network front-end tuning knobs. */
struct NetServerConfig
{
    /** Address to bind (loopback by default: tests and benches). */
    std::string bindAddress = "127.0.0.1";
    /** TCP port; 0 picks an ephemeral port (see NetServer::port()). */
    std::uint16_t port = 0;

    /** Configuration of the owned AnytimeServer. */
    ServerConfig service;

    /** Pipeline registry (required; the server keeps a reference). */
    std::shared_ptr<PipelineCatalog> catalog;

    /** Accept admission: maximum simultaneously open connections.
     *  Excess accepts are closed immediately (and counted). */
    std::size_t maxConnections = 256;

    /**
     * Accept admission: per-IP token bucket, tokens (accepts) per
     * second; 0 disables throttling. Throttled accepts are closed
     * immediately (and counted).
     */
    double perIpAcceptRate = 0.0;
    /** Token bucket capacity (burst) when throttling is on. */
    double perIpAcceptBurst = 8.0;

    /** Backpressure: per-connection outbox byte bound. Intermediate
     *  versions above the bound are shed; finals never are. */
    std::size_t maxOutboxBytes = std::size_t(1) << 22;

    /** Coalesce identical in-flight requests onto one pipeline. */
    bool coalesce = true;

    /**
     * Reconnect-and-resume: how long a coalesced stream whose last
     * subscriber disconnected lingers (still computing) before the
     * disconnect-as-cancel fires, giving the client time to reconnect
     * and resume from its last-seen version. 0 (default) preserves
     * immediate disconnect-as-cancel. Requires coalesce — the
     * reconnecting request must find the live entry under its key.
     */
    std::uint64_t resumeLingerMicros = 0;

    /** Registry for net counters and GET /metrics; nullptr means
     *  obs::defaultRegistry(). Also forwarded to the service config
     *  when that left its registry unset. */
    obs::MetricsRegistry *metricsRegistry = nullptr;
};

/** Epoll-based streaming front-end over an owned AnytimeServer. */
class NetServer : public ConnectionHost
{
  public:
    explicit NetServer(NetServerConfig config);
    ~NetServer() override;

    NetServer(const NetServer &) = delete;
    NetServer &operator=(const NetServer &) = delete;

    /** The bound TCP port (resolves config port 0). */
    std::uint16_t port() const { return boundPort; }

    /** The owned serving runtime (metrics snapshots, drain). */
    AnytimeServer &service() { return *anytime; }

    /**
     * Graceful drain (the SIGTERM path): stop accepting, announce the
     * drain on open SSE streams (`event: drain`), let in-flight
     * requests finish — or salvage them `degraded` when @p grace
     * expires — flush every final/DONE, and return once all
     * connections closed cleanly. Blocking; callable from any thread
     * except the reactor's; idempotent (later callers just wait).
     */
    void drain(std::chrono::nanoseconds grace);

    /** True once drain() was requested. */
    bool draining() const
    {
        return drainRequested.load(std::memory_order_relaxed);
    }

    /** Connections currently open (reactor's view; approximate). */
    std::size_t connectionCount() const;

    // ---- ConnectionHost --------------------------------------------
    void handleRequestFrame(const std::shared_ptr<Connection> &connection,
                            const RequestFrame &frame) override;
    void handleHttpRequest(const std::shared_ptr<Connection> &connection,
                           const HttpRequest &request) override;
    void wakeReactor() override;
    bool shedIntermediates() const override;

  private:
    /** Per-IP accept throttling state. */
    struct TokenBucket
    {
        double tokens = 0.0;
        std::chrono::steady_clock::time_point last{};
    };

    void reactorLoop(std::stop_token stop);
    void acceptReady();
    /** Detach from any coalesced stream (cancelling an orphaned
     *  request), drop epoll registration, and forget the connection. */
    void closeConnection(const std::shared_ptr<Connection> &connection);
    /** Opportunistically flush and (re)arm EPOLLOUT for every open
     *  connection; closes the ones whose flush failed or finished. */
    void maintainWriteInterest();

    /**
     * Shared submit path of the binary and SSE front doors: coalesce,
     * submit to the service, acknowledge, and attach @p connection as
     * a subscriber. @p sse selects the acknowledgement encoding.
     * @p trace_id is the client-propagated trace context (0 mints a
     * fresh id here); the final id is echoed in the acknowledgement so
     * the client can stitch its own spans onto the server's trace.
     * @p key is by value: the brownout door may cap its gang width and
     * quantize its deadline before it becomes the coalescing identity.
     * @p resume_from is the client's last-seen version (0 = fresh).
     */
    void startStream(const std::shared_ptr<Connection> &connection,
                     StreamKey key, bool sse, std::uint64_t trace_id,
                     std::uint64_t parent_span_id,
                     std::uint64_t resume_from);

    /** Apply the active brownout policy to @p key at the door (gang
     *  cap, deadline quantization into the coalescing window). */
    void applyBrownoutDoorPolicy(StreamKey &key);

    /** Reactor-side: act on a pending drain request (close the
     *  listener, announce on open streams, begin the service drain). */
    void beginDrainOnReactor();

    /** Reactor-side: cancel lingering subscriber-less streams whose
     *  resume window expired (@p force cancels regardless of expiry —
     *  the reactor exit path). */
    void sweepOrphanedStreams(bool force);

    /** Render the GET /statusz body (server vitals JSON). */
    std::string statuszJson() const;

    /** Render the GET /requestz body (request timelines JSON). */
    std::string requestzJson() const;

    NetServerConfig configuration;
    obs::MetricsRegistry *registry = nullptr;

    // Net-layer counters (registered once in the constructor).
    obs::Counter *connectionsTotal = nullptr;
    obs::Gauge *connectionsActive = nullptr;
    obs::Counter *connectionsRejected = nullptr;
    obs::Counter *acceptThrottled = nullptr;
    obs::Counter *requestsTotal = nullptr;
    obs::Counter *httpRequestsTotal = nullptr;
    obs::Counter *coalescedTotal = nullptr;
    obs::Counter *coalesceWidened = nullptr;
    obs::Counter *drainStreamsFlushed = nullptr;
    ConnectionStats connectionStats;

    CoalesceMap streams;

    /** A stream whose last subscriber left but whose resume window is
     *  still open (reactor-thread-owned, like `connections`). */
    struct OrphanedStream
    {
        StreamKey key;
        std::shared_ptr<StreamEntry> entry;
        std::chrono::steady_clock::time_point expiry{};
    };
    std::vector<OrphanedStream> orphanedStreams;

    /** Graceful-drain handshake: drain() requests, the reactor acts,
     *  drainCv reports completion back. */
    std::atomic<bool> drainRequested{false};
    std::atomic<bool> drainActive{false};
    std::atomic<std::int64_t> drainGraceNanos{0};
    mutable Mutex drainMutex;
    CondVar drainCv;
    bool drainDone ANYTIME_GUARDED_BY(drainMutex) = false;
    /** Reactor-side ordinal for the net.drain fault site. */
    std::uint64_t drainAnnounceOrdinal = 0;

    int listenFd = -1;
    int epollFd = -1;
    int wakeFd = -1;
    std::uint16_t boundPort = 0;

    /** Reactor-thread-owned (no lock): fd -> connection. */
    std::map<int, std::shared_ptr<Connection>> connections;
    std::map<std::uint32_t, TokenBucket> acceptBuckets;
    /** Last idle-bucket sweep; bounds acceptBuckets growth when many
     *  distinct source addresses touch a long-running server. */
    std::chrono::steady_clock::time_point lastBucketSweep{};
    std::uint64_t nextConnectionId = 1;

    /** connectionCount() for other threads (reactor publishes). */
    std::atomic<std::size_t> openConnections{0};

    /** acceptBuckets.size() mirrored for /statusz (reactor-owned map,
     *  but the debug endpoint renders on whatever thread asks). */
    std::atomic<std::size_t> acceptBucketCount{0};

    /** Construction time (the /statusz uptime origin). */
    std::chrono::steady_clock::time_point startTime{};

    /** Torn down explicitly in ~NetServer AFTER the reactor joins and
     *  BEFORE the file descriptors close: its destructor cancels
     *  in-flight requests, whose onComplete hooks fan out through
     *  still-valid (already subscriber-free) entries and wake a
     *  still-open eventfd. */
    std::unique_ptr<AnytimeServer> anytime;

    std::jthread reactor;
};

} // namespace anytime::net

#endif // ANYTIME_NET_SERVER_HPP
