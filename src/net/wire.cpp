#include "net/wire.hpp"

#include <bit>
#include <cstring>

#include "support/error.hpp"

namespace anytime::net {

namespace {

// --- encoding primitives (little-endian, append-to-string) ---

void
putU8(std::string &out, std::uint8_t value)
{
    out.push_back(static_cast<char>(value));
}

void
putU32(std::string &out, std::uint32_t value)
{
    for (int shift = 0; shift < 32; shift += 8)
        out.push_back(static_cast<char>((value >> shift) & 0xff));
}

void
putU64(std::string &out, std::uint64_t value)
{
    for (int shift = 0; shift < 64; shift += 8)
        out.push_back(static_cast<char>((value >> shift) & 0xff));
}

void
putF64(std::string &out, double value)
{
    putU64(out, std::bit_cast<std::uint64_t>(value));
}

void
putString(std::string &out, const std::string &value)
{
    panicIf(value.size() > kMaxFrameBytes,
            "wire: string field exceeds the frame bound");
    putU32(out, static_cast<std::uint32_t>(value.size()));
    out.append(value);
}

/** Bounds-checked read cursor over one frame body. */
struct Cursor
{
    const char *data;
    std::size_t size;
    std::size_t offset = 0;
    bool ok = true;

    bool
    readU8(std::uint8_t &value)
    {
        if (!ok || offset + 1 > size)
            return ok = false;
        value = static_cast<std::uint8_t>(data[offset++]);
        return true;
    }

    bool
    readU32(std::uint32_t &value)
    {
        if (!ok || offset + 4 > size)
            return ok = false;
        value = 0;
        for (int shift = 0; shift < 32; shift += 8)
            value |= static_cast<std::uint32_t>(
                         static_cast<unsigned char>(data[offset++]))
                     << shift;
        return true;
    }

    bool
    readU64(std::uint64_t &value)
    {
        if (!ok || offset + 8 > size)
            return ok = false;
        value = 0;
        for (int shift = 0; shift < 64; shift += 8)
            value |= static_cast<std::uint64_t>(
                         static_cast<unsigned char>(data[offset++]))
                     << shift;
        return true;
    }

    bool
    readF64(double &value)
    {
        std::uint64_t bits = 0;
        if (!readU64(bits))
            return false;
        value = std::bit_cast<double>(bits);
        return true;
    }

    bool
    readString(std::string &value)
    {
        std::uint32_t length = 0;
        if (!readU32(length))
            return false;
        if (offset + length > size)
            return ok = false;
        value.assign(data + offset, length);
        offset += length;
        return true;
    }

    /** A well-formed body is consumed exactly. */
    bool exhausted() const { return ok && offset == size; }
};

bool
readBool(Cursor &cursor, bool &value)
{
    std::uint8_t byte = 0;
    if (!cursor.readU8(byte))
        return false;
    // Strict: anything but 0/1 is corruption, not a truthy value.
    if (byte > 1)
        return cursor.ok = false;
    value = byte != 0;
    return true;
}

std::optional<Frame>
decodeBody(FrameType type, const char *data, std::size_t size)
{
    Cursor cursor{data, size};
    Frame frame;
    switch (type) {
      case FrameType::request: {
        RequestFrame request;
        cursor.readU32(request.protocol);
        cursor.readString(request.pipeline);
        cursor.readString(request.input);
        cursor.readU64(request.deadlineMicros);
        cursor.readF64(request.minQuality);
        cursor.readU32(request.stageWorkers);
        cursor.readU64(request.traceId);
        cursor.readU64(request.parentSpanId);
        // v3 grew the frame; a v2 body without the field must still
        // decode exactly (exhausted() enforces both shapes strictly).
        if (cursor.ok && request.protocol >= 3)
            cursor.readU64(request.resumeFromVersion);
        frame = std::move(request);
        break;
      }
      case FrameType::accepted: {
        AcceptedFrame accepted;
        cursor.readU64(accepted.requestId);
        cursor.readU64(accepted.traceId);
        frame = accepted;
        break;
      }
      case FrameType::version: {
        VersionFrame version;
        cursor.readU64(version.version);
        readBool(cursor, version.final);
        readBool(cursor, version.degraded);
        cursor.readF64(version.quality);
        cursor.readString(version.payload);
        frame = std::move(version);
        break;
      }
      case FrameType::done: {
        DoneFrame done;
        cursor.readU8(done.status);
        readBool(cursor, done.reachedPrecise);
        readBool(cursor, done.deadlineMet);
        cursor.readU64(done.versionsPublished);
        cursor.readF64(done.quality);
        cursor.readF64(done.firstVersionSeconds);
        cursor.readF64(done.totalSeconds);
        frame = done;
        break;
      }
      case FrameType::error: {
        ErrorFrame error;
        cursor.readString(error.message);
        frame = std::move(error);
        break;
      }
      default:
        return std::nullopt;
    }
    if (!cursor.exhausted())
        return std::nullopt;
    return frame;
}

} // namespace

FrameType
frameType(const Frame &frame)
{
    return std::visit(
        [](const auto &alternative) {
            using T = std::decay_t<decltype(alternative)>;
            if constexpr (std::is_same_v<T, RequestFrame>)
                return FrameType::request;
            else if constexpr (std::is_same_v<T, AcceptedFrame>)
                return FrameType::accepted;
            else if constexpr (std::is_same_v<T, VersionFrame>)
                return FrameType::version;
            else if constexpr (std::is_same_v<T, DoneFrame>)
                return FrameType::done;
            else
                return FrameType::error;
        },
        frame);
}

std::string
encodeFrame(const Frame &frame)
{
    std::string body;
    putU8(body, static_cast<std::uint8_t>(frameType(frame)));
    std::visit(
        [&body](const auto &alternative) {
            using T = std::decay_t<decltype(alternative)>;
            if constexpr (std::is_same_v<T, RequestFrame>) {
                putU32(body, alternative.protocol);
                putString(body, alternative.pipeline);
                putString(body, alternative.input);
                putU64(body, alternative.deadlineMicros);
                putF64(body, alternative.minQuality);
                putU32(body, alternative.stageWorkers);
                putU64(body, alternative.traceId);
                putU64(body, alternative.parentSpanId);
                if (alternative.protocol >= 3)
                    putU64(body, alternative.resumeFromVersion);
            } else if constexpr (std::is_same_v<T, AcceptedFrame>) {
                putU64(body, alternative.requestId);
                putU64(body, alternative.traceId);
            } else if constexpr (std::is_same_v<T, VersionFrame>) {
                putU64(body, alternative.version);
                putU8(body, alternative.final ? 1 : 0);
                putU8(body, alternative.degraded ? 1 : 0);
                putF64(body, alternative.quality);
                putString(body, alternative.payload);
            } else if constexpr (std::is_same_v<T, DoneFrame>) {
                putU8(body, alternative.status);
                putU8(body, alternative.reachedPrecise ? 1 : 0);
                putU8(body, alternative.deadlineMet ? 1 : 0);
                putU64(body, alternative.versionsPublished);
                putF64(body, alternative.quality);
                putF64(body, alternative.firstVersionSeconds);
                putF64(body, alternative.totalSeconds);
            } else {
                putString(body, alternative.message);
            }
        },
        frame);
    panicIf(body.size() > kMaxFrameBytes,
            "wire: encoded frame exceeds the frame bound");
    std::string out;
    out.reserve(4 + body.size());
    putU32(out, static_cast<std::uint32_t>(body.size()));
    out.append(body);
    return out;
}

void
FrameReader::feed(const char *data, std::size_t size)
{
    if (corrupt)
        return;
    // Reclaim consumed prefix before growing (bounded memory under
    // sustained streams).
    if (consumed > 0 && consumed == buffer.size()) {
        buffer.clear();
        consumed = 0;
    } else if (consumed > 4096) {
        buffer.erase(0, consumed);
        consumed = 0;
    }
    buffer.append(data, size);
}

std::optional<Frame>
FrameReader::next()
{
    if (corrupt)
        return std::nullopt;
    const std::size_t available = buffer.size() - consumed;
    if (available < 4)
        return std::nullopt;
    const char *head = buffer.data() + consumed;
    std::uint32_t length = 0;
    for (int shift = 0; shift < 32; shift += 8)
        length |= static_cast<std::uint32_t>(
                      static_cast<unsigned char>(head[shift / 8]))
                  << shift;
    if (length == 0) {
        fail("zero-length frame");
        return std::nullopt;
    }
    if (length > kMaxFrameBytes) {
        fail("frame length " + std::to_string(length) +
             " exceeds the bound");
        return std::nullopt;
    }
    if (available < 4 + static_cast<std::size_t>(length))
        return std::nullopt; // truncated so far: wait for more bytes
    const auto type = static_cast<FrameType>(
        static_cast<unsigned char>(head[4]));
    auto frame = decodeBody(type, head + 5, length - 1);
    if (!frame) {
        fail("malformed frame body (type " +
             std::to_string(static_cast<unsigned>(type)) + ")");
        return std::nullopt;
    }
    consumed += 4 + length;
    return frame;
}

void
FrameReader::fail(std::string reason)
{
    corrupt = true;
    message = std::move(reason);
}

} // namespace anytime::net
