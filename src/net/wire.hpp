/**
 * @file
 * Wire codec for the anytime streaming protocol (no sockets here).
 *
 * The protocol maps the anytime contract onto a byte stream: one
 * request per connection, answered by a *stream* of VERSION frames —
 * each a monotonically better approximation — terminated by a DONE
 * frame carrying the same QoR metadata an in-process ServiceResponse
 * does. A client that stops reading (or disconnects) simply loses the
 * tail of the stream; every prefix it did receive was a valid answer.
 *
 * Framing: a connection opens with the 4-byte magic "ANYT" (which also
 * lets one listener distinguish binary clients from HTTP ones), then
 * carries length-prefixed frames:
 *
 *     u32 length | u8 type | body (length - 1 bytes)
 *
 * all integers little-endian, doubles as IEEE-754 bit patterns,
 * strings as u32 length + raw bytes. The decoder is strict: unknown
 * types, truncated fields, trailing bytes, and frames larger than
 * kMaxFrameBytes are all rejected as corrupt (tested against random
 * corpora in tests/net/test_wire.cpp).
 */

#ifndef ANYTIME_NET_WIRE_HPP
#define ANYTIME_NET_WIRE_HPP

#include <cstddef>
#include <cstdint>
#include <limits>
#include <optional>
#include <string>
#include <variant>

namespace anytime::net {

/** Protocol revision; bumped on any incompatible frame change.
 *  v2 added trace-context fields (traceId, parentSpanId) to REQUEST
 *  and echoed the server-final traceId in ACCEPTED.
 *  v3 added resumeFromVersion to REQUEST (reconnect-and-resume); the
 *  server still accepts v2 requests (the field defaults to 0). */
inline constexpr std::uint32_t kProtocolVersion = 3;

/** Oldest request protocol the server still accepts. */
inline constexpr std::uint32_t kMinProtocolVersion = 2;

/** Connection preamble distinguishing binary clients from HTTP. */
inline constexpr char kMagic[4] = {'A', 'N', 'Y', 'T'};

/** Upper bound on one frame (decoder rejects larger as corrupt). */
inline constexpr std::size_t kMaxFrameBytes = std::size_t(1) << 26;

/**
 * Upper bound on a request deadline (24 hours, in microseconds).
 * deadlineMicros is client-controlled; the server adds it to a
 * nanosecond-resolution time_point, which overflows int64 for raw u64
 * values above ~9.2e12 us. Requests beyond the cap are rejected at the
 * protocol boundary (see NetServer::startStream).
 */
inline constexpr std::uint64_t kMaxDeadlineMicros = 86'400'000'000;

/** Frame type tags (the u8 after the length prefix). */
enum class FrameType : std::uint8_t
{
    request = 1,
    accepted = 2,
    version = 3,
    done = 4,
    error = 5,
};

/** Client -> server: run @p pipeline on @p input, stream versions. */
struct RequestFrame
{
    std::uint32_t protocol = kProtocolVersion;
    /** Pipeline name, resolved through the server's catalog. */
    std::string pipeline;
    /** Opaque input spec, interpreted by the catalog handler. */
    std::string input;
    /** Response-by deadline, microseconds from server receipt. */
    std::uint64_t deadlineMicros = 1000000;
    /** Minimum acceptable quality in [0, 1] (0 = run to deadline). */
    double minQuality = 0.0;
    /** Declared intra-stage gang width (admission hint). */
    std::uint32_t stageWorkers = 1;
    /** Trace context: 0 asks the server to mint an id; nonzero ids
     *  stamp every server-side span, stitching the client's trace to
     *  the reactor/service/stage spans (see obs/trace.hpp). */
    std::uint64_t traceId = 0;
    /** Client-side span the server-side spans hang under (0 = root). */
    std::uint64_t parentSpanId = 0;
    /** Reconnect-and-resume (v3): the last version this client already
     *  holds; the server replays forward from its coalescing cache so
     *  the resumed stream stays monotone. 0 = fresh request. Only
     *  encoded/decoded when protocol >= 3. */
    std::uint64_t resumeFromVersion = 0;
};

/** Server -> client: request admitted; id echoes into traces. */
struct AcceptedFrame
{
    std::uint64_t requestId = 0;
    /** The trace id the server stamped (client's, or server-minted
     *  when the request carried 0). */
    std::uint64_t traceId = 0;
};

/** Server -> client: one published version of the output. */
struct VersionFrame
{
    std::uint64_t version = 0;
    bool final = false;
    bool degraded = false;
    /** Quality estimate in [0, 1]; NaN when the pipeline has none. */
    double quality = std::numeric_limits<double>::quiet_NaN();
    /** Serialized output version (catalog-defined encoding). */
    std::string payload;
};

/** Server -> client: terminal QoR metadata (mirrors ServiceResponse). */
struct DoneFrame
{
    /** ServiceStatus cast to its underlying value. */
    std::uint8_t status = 0;
    bool reachedPrecise = false;
    bool deadlineMet = false;
    std::uint64_t versionsPublished = 0;
    double quality = std::numeric_limits<double>::quiet_NaN();
    double firstVersionSeconds =
        std::numeric_limits<double>::quiet_NaN();
    double totalSeconds = 0.0;
};

/** Server -> client: protocol or admission failure; closes the
 *  stream. */
struct ErrorFrame
{
    std::string message;
};

using Frame = std::variant<RequestFrame, AcceptedFrame, VersionFrame,
                           DoneFrame, ErrorFrame>;

/** The tag a Frame alternative encodes as. */
FrameType frameType(const Frame &frame);

/** Encode @p frame as length-prefixed bytes (no magic). */
std::string encodeFrame(const Frame &frame);

/**
 * Incremental frame decoder: feed() arbitrary byte chunks, next()
 * yields complete frames in order. Once failed() the reader stays
 * failed (the stream is unrecoverable — framing is lost).
 */
class FrameReader
{
  public:
    /** Append raw bytes from the stream. */
    void feed(const char *data, std::size_t size);

    /**
     * Next complete frame, or nullopt when more bytes are needed or
     * the stream is corrupt (check failed() to distinguish).
     */
    std::optional<Frame> next();

    /** True once the stream was rejected as corrupt. */
    bool failed() const { return corrupt; }

    /** One-line reason for the failure ("" while healthy). */
    const std::string &error() const { return message; }

    /** Bytes buffered but not yet consumed by next(). */
    std::size_t buffered() const { return buffer.size() - consumed; }

  private:
    void fail(std::string reason);

    std::string buffer;
    std::size_t consumed = 0;
    bool corrupt = false;
    std::string message;
};

} // namespace anytime::net

#endif // ANYTIME_NET_WIRE_HPP
