#include "obs/flight.hpp"

#include <atomic>
#include <cstdio>
#include <deque>
#include <fstream>
#include <sstream>
#include <thread>
#include <utility>

#include "obs/trace.hpp"
#include "support/sync.hpp"
#include "support/thread_annotations.hpp"

namespace anytime::obs {

namespace {

/** Queued anomaly awaiting the writer thread. */
struct Trigger
{
    const char *name = nullptr;
    std::uint64_t requestId = 0;
    std::uint64_t traceId = 0;
};

constexpr std::size_t kMaxQueuedTriggers = 16;

struct Recorder
{
    /** Defined after stopWriter(): joins the writer at process exit,
     *  so arming via ANYTIME_FLIGHT_DIR or --flight-dir without a
     *  matching shutdownFlightRecorder() cannot terminate() on a
     *  joinable thread during static destruction. */
    ~Recorder();

    std::atomic<bool> enabled{false};
    std::atomic<std::uint64_t> written{0};

    Mutex mutex;
    FlightRecorderConfig config ANYTIME_GUARDED_BY(mutex);
    std::function<std::string(std::uint64_t)>
        timelineSource ANYTIME_GUARDED_BY(mutex);
    std::deque<Trigger> queue ANYTIME_GUARDED_BY(mutex);
    std::uint64_t sequence ANYTIME_GUARDED_BY(mutex) = 0;
    bool stopping ANYTIME_GUARDED_BY(mutex) = false;
    CondVar wake;
    std::thread writer;
};

Recorder &
recorder()
{
    static Recorder instance;
    return instance;
}

void
appendEscapedJson(std::string &out, const std::string &text)
{
    for (const char c : text) {
        const unsigned char ch = static_cast<unsigned char>(c);
        switch (ch) {
          case '"':
            out += "\\\"";
            break;
          case '\\':
            out += "\\\\";
            break;
          case '\n':
            out += "\\n";
            break;
          default:
            if (ch < 0x20) {
                char buf[8];
                std::snprintf(buf, sizeof buf, "\\u%04x", ch);
                out += buf;
            } else {
                out += static_cast<char>(ch);
            }
        }
    }
}

/** Render and write one artifact (writer thread; no locks held). */
void
writeArtifact(const std::string &directory, std::size_t slot,
              const Trigger &trigger, const std::string &timelineJson)
{
    std::string json = "{\"trigger\":\"";
    appendEscapedJson(json, trigger.name != nullptr ? trigger.name
                                                    : "unknown");
    json += "\",\"request_id\":";
    json += std::to_string(trigger.requestId);
    char hex[24];
    std::snprintf(hex, sizeof hex, "\"%016llx\"",
                  static_cast<unsigned long long>(trigger.traceId));
    json += ",\"trace_id\":";
    json += hex;
    json += ",\"timeline\":";
    json += timelineJson.empty() ? "null" : timelineJson;
    json += ",\"trace\":";
    std::ostringstream trace;
    writeChromeTrace(trace);
    json += trace.str();
    json += "}\n";

    const std::string path =
        directory + "/flight-" + std::to_string(slot) + ".json";
    std::ofstream out(path, std::ios::trunc);
    if (out) {
        out << json;
        out.flush();
    }
}

void
writerLoop()
{
    Recorder &r = recorder();
    for (;;) {
        Trigger trigger;
        std::string directory;
        std::size_t slot = 0;
        std::string timelineJson;
        {
            MutexLock lock(r.mutex);
            r.wake.wait(lock, [&r]() ANYTIME_REQUIRES(r.mutex) {
                return r.stopping || !r.queue.empty();
            });
            if (r.queue.empty())
                return; // stopping with an empty queue
            trigger = r.queue.front();
            r.queue.pop_front();
            directory = r.config.directory;
            slot = static_cast<std::size_t>(
                r.sequence++ %
                (r.config.maxArtifacts > 0 ? r.config.maxArtifacts : 1));
            // Invoke the timeline source under the recorder mutex:
            // a destructing server unhooks it (setFlightTimelineSource
            // nullptr) through the same mutex, so the callback can
            // never outlive the store it reads. No lock-order risk —
            // the source only takes the TimelineStore's own mutex.
            if (r.timelineSource)
                timelineJson = r.timelineSource(trigger.requestId);
        }
        writeArtifact(directory, slot, trigger, timelineJson);
        r.written.fetch_add(1, std::memory_order_relaxed);
    }
}

/** Join the writer (mutex NOT held), leaving the recorder idle. */
void
stopWriter(Recorder &r)
{
    {
        MutexLock lock(r.mutex);
        r.stopping = true;
    }
    r.wake.notifyAll();
    if (r.writer.joinable())
        r.writer.join();
    MutexLock lock(r.mutex);
    r.stopping = false;
    r.writer = std::thread();
}

Recorder::~Recorder()
{
    enabled.store(false, std::memory_order_relaxed);
    stopWriter(*this);
}

} // namespace

void
configureFlightRecorder(FlightRecorderConfig config)
{
    Recorder &r = recorder();
    r.enabled.store(false, std::memory_order_relaxed);
    stopWriter(r);
    const bool arm = !config.directory.empty();
    {
        MutexLock lock(r.mutex);
        r.config = std::move(config);
        if (!arm)
            r.queue.clear();
    }
    if (arm) {
        {
            MutexLock lock(r.mutex);
            r.writer = std::thread(writerLoop);
        }
        r.enabled.store(true, std::memory_order_relaxed);
    }
}

bool
flightRecorderEnabled()
{
    return recorder().enabled.load(std::memory_order_relaxed);
}

void
setFlightTimelineSource(
    std::function<std::string(std::uint64_t requestId)> source)
{
    Recorder &r = recorder();
    MutexLock lock(r.mutex);
    r.timelineSource = std::move(source);
}

void
flightRecorderTrigger(const char *trigger, std::uint64_t requestId,
                      std::uint64_t traceId)
{
    Recorder &r = recorder();
    if (!r.enabled.load(std::memory_order_relaxed))
        return;
    {
        MutexLock lock(r.mutex);
        if (r.queue.size() >= kMaxQueuedTriggers)
            return; // anomaly storm: drop, never grow
        r.queue.push_back({trigger, requestId, traceId});
    }
    r.wake.notifyOne();
}

std::uint64_t
flightArtifactsWritten()
{
    return recorder().written.load(std::memory_order_relaxed);
}

void
shutdownFlightRecorder()
{
    Recorder &r = recorder();
    r.enabled.store(false, std::memory_order_relaxed);
    stopWriter(r);
    MutexLock lock(r.mutex);
    r.timelineSource = nullptr;
}

} // namespace anytime::obs
