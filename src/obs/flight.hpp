/**
 * @file
 * Flight recorder: anomaly-triggered observability snapshots.
 *
 * The trace ring and the request timelines are always collecting into
 * bounded memory; the flight recorder is the part that gets them onto
 * disk at exactly the moments worth keeping — a watchdog expel, a
 * circuit opening, a stage quarantine, a deadline miss, a net-write
 * fault. Trigger sites pay one relaxed atomic load while disabled and
 * a small mutex-guarded enqueue when armed; all file I/O happens on a
 * dedicated writer thread, never on a reactor, scheduler, or worker
 * thread.
 *
 * Artifacts are strictly bounded: at most `maxArtifacts` files named
 * flight-<slot>.json in the configured directory, written round-robin
 * (slot = sequence % maxArtifacts), each a self-describing JSON object
 * carrying the trigger, the affected request's timeline snapshot (when
 * a timeline source is registered), and the full Chrome-trace dump of
 * the ring at snapshot time. The recorder is process-global, like the
 * tracer it snapshots.
 */

#ifndef ANYTIME_OBS_FLIGHT_HPP
#define ANYTIME_OBS_FLIGHT_HPP

#include <cstdint>
#include <functional>
#include <string>

namespace anytime::obs {

/** Flight-recorder tuning; an empty directory keeps it disabled. */
struct FlightRecorderConfig
{
    /** Artifact directory (must exist; "" = disabled). */
    std::string directory;
    /** Round-robin artifact slot count (disk bound). */
    std::size_t maxArtifacts = 8;
};

/** Arm (non-empty directory) or disarm the recorder. Joins and
 *  restarts the writer thread; call from setup/teardown code only. */
void configureFlightRecorder(FlightRecorderConfig config);

/** True while armed (one relaxed atomic load; the trigger fast path). */
bool flightRecorderEnabled();

/**
 * Register the callback that renders a request's timeline JSON ("" =
 * unknown request). Typically AnytimeServer wiring its TimelineStore
 * in; pass nullptr on teardown BEFORE the owning store dies.
 */
void setFlightTimelineSource(
    std::function<std::string(std::uint64_t requestId)> source);

/**
 * Record an anomaly. Cheap and safe from any thread: while disabled
 * it is one atomic load; while armed it enqueues {trigger, requestId,
 * traceId} for the writer thread (dropping when the queue is full —
 * an anomaly storm must not become a memory anomaly).
 */
void flightRecorderTrigger(const char *trigger, std::uint64_t requestId,
                           std::uint64_t traceId);

/** Artifacts fully written since process start (test/CI probe). */
std::uint64_t flightArtifactsWritten();

/** Flush the queue and stop the writer thread (idempotent). */
void shutdownFlightRecorder();

} // namespace anytime::obs

#endif // ANYTIME_OBS_FLIGHT_HPP
