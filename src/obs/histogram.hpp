/**
 * @file
 * Bounded log-bucketed histogram for latency-style distributions.
 *
 * A fixed array of geometrically spaced buckets replaces the unbounded
 * store-every-sample approach: memory is O(buckets) forever, observe()
 * is lock-free (relaxed atomic increments plus CAS min/max/sum), and
 * percentiles are answered from the bucket counts with a bounded
 * relative error set by the growth factor (defaults: 1.25 => <= ~12%
 * within a bucket). Exact min and max are tracked on the side, and
 * every percentile estimate is clamped into [min, max], so p=0 returns
 * the true minimum, p=100 the true maximum, and a single-sample
 * histogram answers every percentile exactly.
 *
 * The bucket layout (upper bounds firstBound * growth^i, last bucket
 * unbounded) is exactly what Prometheus histogram exposition wants, so
 * the metrics registry exports these buckets as-is.
 */

#ifndef ANYTIME_OBS_HISTOGRAM_HPP
#define ANYTIME_OBS_HISTOGRAM_HPP

#include <algorithm>
#include <atomic>
#include <bit>
#include <cmath>
#include <cstddef>
#include <cstdint>
#include <limits>
#include <optional>
#include <vector>

#include "support/error.hpp"

namespace anytime::obs {

/** OpenMetrics-style exemplar: one recent sample with trace context,
 *  anchoring an aggregate bucket back to a concrete request trace. */
struct HistogramExemplar
{
    double value = 0.0;
    std::uint64_t traceId = 0;
};

/** Bucket layout of a LogHistogram. */
struct HistogramOptions
{
    /** Upper bound of the first bucket (values <= this land there). */
    double firstBound = 1e-6;
    /** Geometric growth factor between consecutive bucket bounds. */
    double growth = 1.25;
    /** Total bucket count, including the unbounded overflow bucket. */
    std::size_t buckets = 96;
};

/** Lock-free, bounded-memory, log-bucketed histogram. */
class LogHistogram
{
  public:
    explicit LogHistogram(HistogramOptions options = {})
        : opts(options), counts(options.buckets)
    {
        fatalIf(opts.buckets < 2, "LogHistogram: need >= 2 buckets");
        fatalIf(opts.firstBound <= 0.0,
                "LogHistogram: firstBound must be positive");
        fatalIf(opts.growth <= 1.0,
                "LogHistogram: growth must exceed 1");
        invLogGrowth = 1.0 / std::log(opts.growth);
    }

    /** Deep copy (relaxed snapshot of the atomics). */
    LogHistogram(const LogHistogram &other)
        : opts(other.opts), invLogGrowth(other.invLogGrowth),
          counts(other.opts.buckets)
    {
        copyFrom(other);
    }

    LogHistogram &
    operator=(const LogHistogram &other)
    {
        if (this == &other)
            return *this;
        opts = other.opts;
        invLogGrowth = other.invLogGrowth;
        std::vector<std::atomic<std::uint64_t>> fresh(opts.buckets);
        counts.swap(fresh);
        copyFrom(other);
        return *this;
    }

    /** Record one sample (lock-free; negative values clamp to 0). */
    void
    observe(double value)
    {
        if (std::isnan(value))
            return;
        if (value < 0.0)
            value = 0.0;
        counts[bucketIndex(value)].fetch_add(1,
                                             std::memory_order_relaxed);
        total.fetch_add(1, std::memory_order_relaxed);
        atomicAdd(sumValue, value);
        atomicMin(minValue, value);
        atomicMax(maxValue, value);
    }

    /**
     * observe(), additionally retaining (value, traceId) as the
     * histogram's exemplar when @p traceId is nonzero. The two fields
     * are separate relaxed atomics: a concurrent pair of observers can
     * leave one's value with the other's trace id, which is acceptable
     * for a debugging anchor and keeps the hot path lock-free.
     */
    void
    observeWithExemplar(double value, std::uint64_t traceId)
    {
        observe(value);
        if (traceId == 0 || std::isnan(value))
            return;
        exemplarBits.store(std::bit_cast<std::uint64_t>(
                               value < 0.0 ? 0.0 : value),
                           std::memory_order_relaxed);
        exemplarTrace.store(traceId, std::memory_order_relaxed);
    }

    /** The retained exemplar, if any sample carried a trace id. */
    std::optional<HistogramExemplar>
    exemplar() const
    {
        const std::uint64_t trace =
            exemplarTrace.load(std::memory_order_relaxed);
        if (trace == 0)
            return std::nullopt;
        return HistogramExemplar{
            std::bit_cast<double>(
                exemplarBits.load(std::memory_order_relaxed)),
            trace};
    }

    std::uint64_t
    count() const
    {
        return total.load(std::memory_order_relaxed);
    }

    double sum() const { return sumValue.load(std::memory_order_relaxed); }

    /** Exact minimum observed; 0 when empty. */
    double
    min() const
    {
        const double value = minValue.load(std::memory_order_relaxed);
        return count() == 0 ? 0.0 : value;
    }

    /** Exact maximum observed; 0 when empty. */
    double
    max() const
    {
        const double value = maxValue.load(std::memory_order_relaxed);
        return count() == 0 ? 0.0 : value;
    }

    double
    mean() const
    {
        const std::uint64_t n = count();
        return n == 0 ? 0.0 : sum() / static_cast<double>(n);
    }

    /**
     * Nearest-rank percentile estimate, @p p in [0, 100]. Resolution
     * is one bucket (relative error bounded by the growth factor);
     * estimates are clamped into the exact [min, max] envelope.
     * Returns 0 when empty.
     */
    double
    percentile(double p) const
    {
        fatalIf(p < 0.0 || p > 100.0,
                "LogHistogram::percentile: p out of range: ", p);
        const std::uint64_t n = count();
        if (n == 0)
            return 0.0;
        if (p <= 0.0)
            return min();
        const double exact_rank =
            std::ceil(p / 100.0 * static_cast<double>(n));
        const std::uint64_t rank = exact_rank < 1.0
                                       ? 1
                                       : static_cast<std::uint64_t>(
                                             std::min(exact_rank,
                                                      static_cast<double>(n)));
        std::uint64_t cumulative = 0;
        for (std::size_t i = 0; i < counts.size(); ++i) {
            cumulative += counts[i].load(std::memory_order_relaxed);
            if (cumulative >= rank)
                return std::min(std::max(representative(i), min()), max());
        }
        return max();
    }

    /** Number of buckets (fixed at construction). */
    std::size_t bucketCount() const { return counts.size(); }

    /** Inclusive upper bound of bucket @p i; +inf for the last. */
    double
    bucketUpperBound(std::size_t i) const
    {
        if (i + 1 >= counts.size())
            return std::numeric_limits<double>::infinity();
        return opts.firstBound *
               std::pow(opts.growth, static_cast<double>(i));
    }

    /** Samples recorded into bucket @p i. */
    std::uint64_t
    bucketSamples(std::size_t i) const
    {
        return counts[i].load(std::memory_order_relaxed);
    }

    const HistogramOptions &options() const { return opts; }

  private:
    std::size_t
    bucketIndex(double value) const
    {
        if (value <= opts.firstBound)
            return 0;
        const double exponent =
            std::log(value / opts.firstBound) * invLogGrowth;
        // ceil() so a value sits in the first bucket whose inclusive
        // upper bound covers it (Prometheus `le` semantics); the tiny
        // epsilon keeps values that land exactly on a bound (up to
        // float rounding) from spilling into the next bucket.
        const double index = std::ceil(exponent - 1e-9);
        if (index >= static_cast<double>(counts.size() - 1))
            return counts.size() - 1;
        return index < 0.0 ? 0 : static_cast<std::size_t>(index);
    }

    /** Representative value reported for bucket @p i (geometric mid). */
    double
    representative(std::size_t i) const
    {
        if (i == 0)
            return opts.firstBound / std::sqrt(opts.growth);
        if (i + 1 >= counts.size())
            return max(); // unbounded overflow bucket
        const double upper = bucketUpperBound(i);
        return upper / std::sqrt(opts.growth);
    }

    static void
    atomicAdd(std::atomic<double> &target, double delta)
    {
        double expected = target.load(std::memory_order_relaxed);
        while (!target.compare_exchange_weak(expected, expected + delta,
                                             std::memory_order_relaxed)) {
        }
    }

    static void
    atomicMin(std::atomic<double> &target, double value)
    {
        double expected = target.load(std::memory_order_relaxed);
        while (value < expected &&
               !target.compare_exchange_weak(expected, value,
                                             std::memory_order_relaxed)) {
        }
    }

    static void
    atomicMax(std::atomic<double> &target, double value)
    {
        double expected = target.load(std::memory_order_relaxed);
        while (value > expected &&
               !target.compare_exchange_weak(expected, value,
                                             std::memory_order_relaxed)) {
        }
    }

    void
    copyFrom(const LogHistogram &other)
    {
        for (std::size_t i = 0; i < counts.size(); ++i)
            counts[i].store(
                other.counts[i].load(std::memory_order_relaxed),
                std::memory_order_relaxed);
        total.store(other.total.load(std::memory_order_relaxed),
                    std::memory_order_relaxed);
        sumValue.store(other.sumValue.load(std::memory_order_relaxed),
                       std::memory_order_relaxed);
        minValue.store(other.minValue.load(std::memory_order_relaxed),
                       std::memory_order_relaxed);
        maxValue.store(other.maxValue.load(std::memory_order_relaxed),
                       std::memory_order_relaxed);
        exemplarBits.store(
            other.exemplarBits.load(std::memory_order_relaxed),
            std::memory_order_relaxed);
        exemplarTrace.store(
            other.exemplarTrace.load(std::memory_order_relaxed),
            std::memory_order_relaxed);
    }

    HistogramOptions opts;
    double invLogGrowth = 1.0;
    std::vector<std::atomic<std::uint64_t>> counts;
    std::atomic<std::uint64_t> total{0};
    std::atomic<double> sumValue{0.0};
    std::atomic<double> minValue{
        std::numeric_limits<double>::infinity()};
    std::atomic<double> maxValue{
        -std::numeric_limits<double>::infinity()};
    std::atomic<std::uint64_t> exemplarBits{0};
    std::atomic<std::uint64_t> exemplarTrace{0};
};

} // namespace anytime::obs

#endif // ANYTIME_OBS_HISTOGRAM_HPP
