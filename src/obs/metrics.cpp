#include "obs/metrics.hpp"

#include <cctype>
#include <cmath>
#include <cstdio>
#include <fstream>
#include <ostream>
#include <sstream>

#include "support/error.hpp"

namespace anytime::obs {

namespace {

bool
validMetricName(const std::string &name)
{
    if (name.empty())
        return false;
    const auto head = static_cast<unsigned char>(name[0]);
    if (!std::isalpha(head) && name[0] != '_' && name[0] != ':')
        return false;
    for (const char ch : name) {
        const auto c = static_cast<unsigned char>(ch);
        if (!std::isalnum(c) && ch != '_' && ch != ':')
            return false;
    }
    return true;
}

const char *
kindName(MetricKind kind)
{
    switch (kind) {
      case MetricKind::counter:
        return "counter";
      case MetricKind::gauge:
        return "gauge";
      case MetricKind::histogram:
        return "histogram";
    }
    return "unknown";
}

} // namespace

std::string
prometheusNumber(double value)
{
    if (std::isnan(value))
        return "NaN";
    if (std::isinf(value))
        return value > 0 ? "+Inf" : "-Inf";
    if (value == std::floor(value) && std::abs(value) < 1e15) {
        char buf[32];
        std::snprintf(buf, sizeof buf, "%lld",
                      static_cast<long long>(value));
        return buf;
    }
    char buf[64];
    std::snprintf(buf, sizeof buf, "%g", value);
    return buf;
}

std::string
prometheusEscapeLabel(const std::string &value)
{
    std::string out;
    out.reserve(value.size());
    for (const char ch : value) {
        switch (ch) {
          case '\\':
            out += "\\\\";
            break;
          case '"':
            out += "\\\"";
            break;
          case '\n':
            out += "\\n";
            break;
          default:
            out += ch;
        }
    }
    return out;
}

std::string
sanitizeMetricName(const std::string &name)
{
    if (name.empty())
        return "_";
    std::string out;
    out.reserve(name.size() + 1);
    const auto head = static_cast<unsigned char>(name[0]);
    if (std::isdigit(head))
        out += '_';
    for (const char ch : name) {
        const auto c = static_cast<unsigned char>(ch);
        out += (std::isalnum(c) || ch == '_' || ch == ':') ? ch : '_';
    }
    return out;
}

// ANYTIME_REQUIRES(mutex): keeps entry creation and metric object
// construction atomic with respect to exporters.
MetricsRegistry::Entry &
MetricsRegistry::findOrCreate(const std::string &rawName,
                              const std::string &help, MetricKind kind)
{
    // Debug builds treat an illegal name as the bug it is; release
    // builds sanitize and keep serving (an exporter rejecting one
    // scrape beats a process dying on a typo'd dashboard name).
#ifndef NDEBUG
    fatalIf(!validMetricName(rawName),
            "metric name violates Prometheus naming rules: '", rawName,
            "'");
    const std::string &name = rawName;
#else
    const std::string name = validMetricName(rawName)
                                 ? rawName
                                 : sanitizeMetricName(rawName);
#endif
    const auto it = entries.find(name);
    if (it != entries.end()) {
        fatalIf(it->second.kind != kind, "metric '", name,
                "' already registered as ", kindName(it->second.kind),
                ", requested as ", kindName(kind));
        return it->second;
    }
    Entry entry;
    entry.kind = kind;
    entry.help = help;
    return entries.emplace(name, std::move(entry)).first->second;
}

Counter &
MetricsRegistry::counter(const std::string &name, const std::string &help)
{
    MutexLock lock(mutex);
    Entry &entry = findOrCreate(name, help, MetricKind::counter);
    if (!entry.counter)
        entry.counter = std::make_unique<Counter>();
    return *entry.counter;
}

Gauge &
MetricsRegistry::gauge(const std::string &name, const std::string &help)
{
    MutexLock lock(mutex);
    Entry &entry = findOrCreate(name, help, MetricKind::gauge);
    if (!entry.gauge)
        entry.gauge = std::make_unique<Gauge>();
    return *entry.gauge;
}

LogHistogram &
MetricsRegistry::histogram(const std::string &name, const std::string &help,
                           HistogramOptions options)
{
    MutexLock lock(mutex);
    Entry &entry = findOrCreate(name, help, MetricKind::histogram);
    if (!entry.histogram)
        entry.histogram = std::make_unique<LogHistogram>(options);
    return *entry.histogram;
}

void
MetricsRegistry::writePrometheus(std::ostream &out) const
{
    MutexLock lock(mutex);
    for (const auto &[name, entry] : entries) {
        if (!entry.help.empty())
            out << "# HELP " << name << ' ' << entry.help << '\n';
        out << "# TYPE " << name << ' ' << kindName(entry.kind) << '\n';
        switch (entry.kind) {
          case MetricKind::counter:
            out << name << ' ' << entry.counter->value() << '\n';
            break;
          case MetricKind::gauge:
            out << name << ' '
                << prometheusNumber(entry.gauge->value()) << '\n';
            break;
          case MetricKind::histogram: {
            const LogHistogram &h = *entry.histogram;
            const auto exemplar = h.exemplar();
            bool exemplarPending = exemplar.has_value();
            std::uint64_t cumulative = 0;
            for (std::size_t i = 0; i < h.bucketCount(); ++i) {
                cumulative += h.bucketSamples(i);
                const double bound = h.bucketUpperBound(i);
                out << name << "_bucket{le=\""
                    << prometheusEscapeLabel(prometheusNumber(bound))
                    << "\"} " << cumulative;
                // OpenMetrics exemplar on the first bucket covering
                // the exemplar value: " # {trace_id=...} value".
                if (exemplarPending && exemplar->value <= bound) {
                    char hex[20];
                    std::snprintf(
                        hex, sizeof hex, "%016llx",
                        static_cast<unsigned long long>(
                            exemplar->traceId));
                    out << " # {trace_id=\""
                        << prometheusEscapeLabel(hex) << "\"} "
                        << prometheusNumber(exemplar->value);
                    exemplarPending = false;
                }
                out << '\n';
            }
            out << name << "_sum " << prometheusNumber(h.sum()) << '\n';
            out << name << "_count " << h.count() << '\n';
            break;
          }
        }
    }
}

bool
MetricsRegistry::writePrometheus(const std::string &path) const
{
    std::ofstream out(path);
    if (!out)
        return false;
    writePrometheus(out);
    return static_cast<bool>(out);
}

std::string
MetricsRegistry::prometheusText() const
{
    std::ostringstream out;
    writePrometheus(out);
    return out.str();
}

std::vector<MetricSnapshot>
MetricsRegistry::snapshot() const
{
    MutexLock lock(mutex);
    std::vector<MetricSnapshot> result;
    result.reserve(entries.size());
    for (const auto &[name, entry] : entries) {
        MetricSnapshot row;
        row.name = name;
        row.help = entry.help;
        row.kind = entry.kind;
        switch (entry.kind) {
          case MetricKind::counter:
            row.value = static_cast<double>(entry.counter->value());
            break;
          case MetricKind::gauge:
            row.value = entry.gauge->value();
            break;
          case MetricKind::histogram: {
            const LogHistogram &h = *entry.histogram;
            row.count = h.count();
            row.value = static_cast<double>(row.count);
            row.sum = h.sum();
            row.min = h.min();
            row.max = h.max();
            row.p50 = h.percentile(50);
            row.p95 = h.percentile(95);
            row.p99 = h.percentile(99);
            break;
          }
        }
        result.push_back(std::move(row));
    }
    return result;
}

MetricsRegistry &
defaultRegistry()
{
    static MetricsRegistry instance;
    return instance;
}

} // namespace anytime::obs
