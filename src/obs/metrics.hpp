/**
 * @file
 * Named-metric registry with Prometheus text exposition.
 *
 * Three metric kinds, all lock-free once registered:
 *  - Counter: monotonically increasing count;
 *  - Gauge: instantaneous value (set or add);
 *  - LogHistogram: bounded log-bucketed distribution (histogram.hpp).
 *
 * A MetricsRegistry owns its metrics for the process lifetime;
 * registration (by Prometheus-legal name) is idempotent, so
 * subsystems can look up "their" metric without coordinating. The
 * registry renders the standard Prometheus text format (HELP/TYPE
 * comments, cumulative `le` buckets, `_sum`/`_count`) and exposes a
 * flat snapshot used by the harness SeriesTable bridge, so a metrics
 * dump prints like every other experiment table in the repo.
 *
 * defaultRegistry() is the process-wide instance the runtime layers
 * (worker pool, serving runtime) publish into; tests build private
 * registries for deterministic golden output.
 */

#ifndef ANYTIME_OBS_METRICS_HPP
#define ANYTIME_OBS_METRICS_HPP

#include <atomic>
#include <cstdint>
#include <iosfwd>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "obs/histogram.hpp"
#include "support/sync.hpp"
#include "support/thread_annotations.hpp"

namespace anytime::obs {

/** Monotonically increasing counter. */
class Counter
{
  public:
    void
    add(std::uint64_t delta = 1)
    {
        count.fetch_add(delta, std::memory_order_relaxed);
    }

    std::uint64_t
    value() const
    {
        return count.load(std::memory_order_relaxed);
    }

  private:
    std::atomic<std::uint64_t> count{0};
};

/** Instantaneous value. */
class Gauge
{
  public:
    void
    set(double value)
    {
        current.store(value, std::memory_order_relaxed);
    }

    void
    add(double delta)
    {
        double expected = current.load(std::memory_order_relaxed);
        while (!current.compare_exchange_weak(
            expected, expected + delta, std::memory_order_relaxed)) {
        }
    }

    double
    value() const
    {
        return current.load(std::memory_order_relaxed);
    }

  private:
    std::atomic<double> current{0.0};
};

/** Metric kind tag (registry bookkeeping and snapshot rows). */
enum class MetricKind
{
    counter,
    gauge,
    histogram,
};

/** Flat read-only view of one metric (for table bridges). */
struct MetricSnapshot
{
    std::string name;
    std::string help;
    MetricKind kind = MetricKind::counter;
    /** Counter/gauge value; histogram sample count for histograms. */
    double value = 0.0;
    /** Histogram-only fields (zero otherwise). */
    std::uint64_t count = 0;
    double sum = 0.0;
    double min = 0.0;
    double max = 0.0;
    double p50 = 0.0;
    double p95 = 0.0;
    double p99 = 0.0;
};

/** Thread-safe registry of named metrics. */
class MetricsRegistry
{
  public:
    MetricsRegistry() = default;
    MetricsRegistry(const MetricsRegistry &) = delete;
    MetricsRegistry &operator=(const MetricsRegistry &) = delete;

    /**
     * Find or create the counter @p name. @p name must match
     * [a-zA-Z_:][a-zA-Z0-9_:]* (Prometheus rules); registering the
     * same name as a different kind is fatal.
     */
    Counter &counter(const std::string &name, const std::string &help);

    /** Find or create the gauge @p name. */
    Gauge &gauge(const std::string &name, const std::string &help);

    /** Find or create the histogram @p name. @p options is only used
     *  on first registration. */
    LogHistogram &histogram(const std::string &name,
                            const std::string &help,
                            HistogramOptions options = {});

    /** Render the Prometheus text exposition format (sorted by name). */
    void writePrometheus(std::ostream &out) const;

    /** writePrometheus() to a file; false (no throw) on I/O error. */
    bool writePrometheus(const std::string &path) const;

    /** The Prometheus text exposition as a string (the `GET /metrics`
     *  endpoint body in src/net/). */
    std::string prometheusText() const;

    /** Flat snapshot of every metric, sorted by name. */
    std::vector<MetricSnapshot> snapshot() const;

  private:
    struct Entry
    {
        MetricKind kind = MetricKind::counter;
        std::string help;
        std::unique_ptr<Counter> counter;
        std::unique_ptr<Gauge> gauge;
        std::unique_ptr<LogHistogram> histogram;
    };

    Entry &findOrCreate(const std::string &name, const std::string &help,
                        MetricKind kind) ANYTIME_REQUIRES(mutex);

    mutable Mutex mutex;
    std::map<std::string, Entry> entries ANYTIME_GUARDED_BY(mutex);
};

/** Process-wide registry the runtime layers publish into. */
MetricsRegistry &defaultRegistry();

/** Prometheus-style number rendering ("+Inf", integral shortcuts). */
std::string prometheusNumber(double value);

/** Escape a label value for the text exposition format: backslash,
 *  double quote, and newline become \\, \", and \n. */
std::string prometheusEscapeLabel(const std::string &value);

/**
 * Coerce @p name into a Prometheus-legal metric name: every illegal
 * character becomes '_', and a digit head gets a '_' prefix; "" maps
 * to "_". Release-build registration applies this instead of dying —
 * a misnamed metric should dent a dashboard, not the serving process
 * (debug builds still treat the bad name as a fatal bug).
 */
std::string sanitizeMetricName(const std::string &name);

} // namespace anytime::obs

#endif // ANYTIME_OBS_METRICS_HPP
