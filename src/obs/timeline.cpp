#include "obs/timeline.hpp"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <utility>

namespace anytime::obs {

namespace {

void
appendJsonString(std::string &out, const std::string &text)
{
    out += '"';
    for (const char c : text) {
        const unsigned char ch = static_cast<unsigned char>(c);
        switch (ch) {
          case '"':
            out += "\\\"";
            break;
          case '\\':
            out += "\\\\";
            break;
          case '\n':
            out += "\\n";
            break;
          case '\t':
            out += "\\t";
            break;
          case '\r':
            out += "\\r";
            break;
          default:
            if (ch < 0x20) {
                char buf[8];
                std::snprintf(buf, sizeof buf, "\\u%04x", ch);
                out += buf;
            } else {
                out += static_cast<char>(ch);
            }
        }
    }
    out += '"';
}

void
appendJsonNumber(std::string &out, double value)
{
    // JSON has no NaN/Infinity literals; null keeps output loadable.
    if (!std::isfinite(value)) {
        out += "null";
        return;
    }
    char buf[64];
    std::snprintf(buf, sizeof buf, "%.9g", value);
    out += buf;
}

void
appendHexId(std::string &out, std::uint64_t id)
{
    char buf[24];
    std::snprintf(buf, sizeof buf, "\"%016llx\"",
                  static_cast<unsigned long long>(id));
    out += buf;
}

} // namespace

TimelineStore::TimelineStore(TimelineStoreOptions opts) : options(opts)
{
    if (options.pointCapacity == 0)
        options.pointCapacity = 1;
}

void
TimelineStore::begin(std::uint64_t requestId, std::uint64_t traceId,
                     const std::string &pipeline, double deadlineSeconds)
{
    MutexLock lock(mutex);
    Entry &entry = inflight[requestId];
    entry.data.requestId = requestId;
    entry.data.traceId = traceId;
    entry.data.pipeline = pipeline;
    entry.data.deadlineSeconds = deadlineSeconds;
}

void
TimelineStore::recordVersion(std::uint64_t requestId, TimelinePoint point)
{
    MutexLock lock(mutex);
    const auto it = inflight.find(requestId);
    if (it == inflight.end())
        return;
    Entry &entry = it->second;

    // Derived signals first, so ring overwrite cannot lose them.
    if (std::isfinite(point.quality)) {
        TimelineFinishStats &stats = entry.data.stats;
        if (point.quality >= 0.5 && std::isnan(stats.timeToQ50))
            stats.timeToQ50 = point.tSeconds;
        if (point.quality >= 0.9 && std::isnan(stats.timeToQ90))
            stats.timeToQ90 = point.tSeconds;
        if (point.quality >= 0.99 && std::isnan(stats.timeToQ99))
            stats.timeToQ99 = point.tSeconds;
        const double gain = point.quality - entry.lastQuality;
        if (gain > 0.0) {
            StageGain &credit = entry.gains[point.stage];
            credit.stage = point.stage;
            credit.qualityGain += gain;
            entry.lastQuality = point.quality;
        }
        entry.gains[point.stage].versions += 1;
        entry.gains[point.stage].stage = point.stage;
    }

    std::vector<TimelinePoint> &ring = entry.data.points;
    if (ring.size() < options.pointCapacity)
        ring.push_back(std::move(point));
    else
        ring[entry.pointsTotal % options.pointCapacity] =
            std::move(point);
    ++entry.pointsTotal;
}

void
TimelineStore::recordBuildAttempt(std::uint64_t requestId,
                                  std::uint32_t attempts)
{
    MutexLock lock(mutex);
    const auto it = inflight.find(requestId);
    if (it != inflight.end())
        it->second.data.buildAttempts = attempts;
}

std::optional<TimelineFinishStats>
TimelineStore::finish(std::uint64_t requestId, const std::string &status,
                      bool degraded, double elapsedSeconds,
                      double finalQuality)
{
    MutexLock lock(mutex);
    const auto it = inflight.find(requestId);
    if (it == inflight.end())
        return std::nullopt;
    Entry entry = std::move(it->second);
    inflight.erase(it);
    entry.data.status = status;
    entry.data.finished = true;
    entry.data.degraded = degraded;
    entry.data.elapsedSeconds = elapsedSeconds;
    entry.data.stats.finalQuality = finalQuality;
    const TimelineFinishStats stats = entry.data.stats;
    finished.push_back(std::move(entry));
    while (finished.size() > options.finishedCapacity)
        finished.pop_front();
    return stats;
}

void
TimelineStore::snapshotEntry(const Entry &entry,
                             std::size_t pointCapacity,
                             std::vector<TimelineSnapshot> &out)
{
    TimelineSnapshot snap = entry.data;
    // Unroll the ring into chronological (oldest-first) order.
    if (entry.pointsTotal > pointCapacity) {
        std::rotate(snap.points.begin(),
                    snap.points.begin() +
                        static_cast<std::ptrdiff_t>(entry.pointsTotal %
                                                    pointCapacity),
                    snap.points.end());
        snap.pointsDropped = entry.pointsTotal - pointCapacity;
    }
    snap.stageGains.reserve(entry.gains.size());
    for (const auto &[name, gain] : entry.gains)
        snap.stageGains.push_back(gain);
    out.push_back(std::move(snap));
}

std::optional<TimelineSnapshot>
TimelineStore::snapshot(std::uint64_t requestId) const
{
    MutexLock lock(mutex);
    std::vector<TimelineSnapshot> out;
    const auto it = inflight.find(requestId);
    if (it != inflight.end()) {
        snapshotEntry(it->second, options.pointCapacity, out);
    } else {
        for (const Entry &entry : finished)
            if (entry.data.requestId == requestId) {
                snapshotEntry(entry, options.pointCapacity, out);
                break;
            }
    }
    if (out.empty())
        return std::nullopt;
    return std::move(out.front());
}

std::vector<TimelineSnapshot>
TimelineStore::snapshotAll() const
{
    MutexLock lock(mutex);
    std::vector<TimelineSnapshot> out;
    out.reserve(inflight.size() + finished.size());
    for (const auto &[id, entry] : inflight)
        snapshotEntry(entry, options.pointCapacity, out);
    // Newest finished first: the interesting tail for a debug page.
    for (auto it = finished.rbegin(); it != finished.rend(); ++it)
        snapshotEntry(*it, options.pointCapacity, out);
    return out;
}

std::string
TimelineStore::toJson(const TimelineSnapshot &snapshot)
{
    std::string out;
    out += "{\"request_id\":";
    out += std::to_string(snapshot.requestId);
    out += ",\"trace_id\":";
    appendHexId(out, snapshot.traceId);
    out += ",\"pipeline\":";
    appendJsonString(out, snapshot.pipeline);
    out += ",\"status\":";
    appendJsonString(out, snapshot.status);
    out += ",\"finished\":";
    out += snapshot.finished ? "true" : "false";
    out += ",\"degraded\":";
    out += snapshot.degraded ? "true" : "false";
    out += ",\"build_attempts\":";
    out += std::to_string(snapshot.buildAttempts);
    out += ",\"deadline_seconds\":";
    appendJsonNumber(out, snapshot.deadlineSeconds);
    out += ",\"elapsed_seconds\":";
    appendJsonNumber(out, snapshot.elapsedSeconds);
    out += ",\"final_quality\":";
    appendJsonNumber(out, snapshot.stats.finalQuality);
    out += ",\"time_to_quality\":{\"0.5\":";
    appendJsonNumber(out, snapshot.stats.timeToQ50);
    out += ",\"0.9\":";
    appendJsonNumber(out, snapshot.stats.timeToQ90);
    out += ",\"0.99\":";
    appendJsonNumber(out, snapshot.stats.timeToQ99);
    out += "},\"points_dropped\":";
    out += std::to_string(snapshot.pointsDropped);
    out += ",\"points\":[";
    for (std::size_t i = 0; i < snapshot.points.size(); ++i) {
        const TimelinePoint &point = snapshot.points[i];
        if (i != 0)
            out += ',';
        out += "{\"t\":";
        appendJsonNumber(out, point.tSeconds);
        out += ",\"version\":";
        out += std::to_string(point.version);
        out += ",\"quality\":";
        appendJsonNumber(out, point.quality);
        out += ",\"bytes\":";
        out += std::to_string(point.bytes);
        out += ",\"stage\":";
        appendJsonString(out, point.stage);
        out += ",\"workers\":";
        out += std::to_string(point.workers);
        out += ",\"final\":";
        out += point.final ? "true" : "false";
        out += '}';
    }
    out += "],\"stage_gains\":[";
    for (std::size_t i = 0; i < snapshot.stageGains.size(); ++i) {
        const StageGain &gain = snapshot.stageGains[i];
        if (i != 0)
            out += ',';
        out += "{\"stage\":";
        appendJsonString(out, gain.stage);
        out += ",\"quality_gain\":";
        appendJsonNumber(out, gain.qualityGain);
        out += ",\"versions\":";
        out += std::to_string(gain.versions);
        out += '}';
    }
    out += "]}";
    return out;
}

std::string
TimelineStore::toJson(const std::vector<TimelineSnapshot> &snapshots)
{
    std::string out = "[";
    for (std::size_t i = 0; i < snapshots.size(); ++i) {
        if (i != 0)
            out += ',';
        out += '\n';
        out += toJson(snapshots[i]);
    }
    out += "\n]";
    return out;
}

} // namespace anytime::obs
