/**
 * @file
 * Per-request QoR timeline recorder: the quality staircase, recorded.
 *
 * The anytime contract makes every request a *sequence* of answers,
 * each better than the last — so the unit of observability is not a
 * latency scalar but the full (time, quality) staircase the request
 * climbed, annotated with which stage bought each step and at what
 * payload cost. The TimelineStore keeps one bounded ring of
 * TimelinePoints per in-flight request plus a bounded ring of the
 * last-N finished requests, everything behind one small mutex: version
 * publishes are orders of magnitude rarer than item updates, so a
 * single lock is cheaper than per-request allocation churn and keeps
 * snapshots trivially consistent.
 *
 * Derived signals computed as points land (so ring overflow cannot
 * lose them): first-crossing times for quality 0.5 / 0.9 / 0.99 and
 * cumulative per-stage quality-gain attribution — the measured
 * QoR-gain-per-stage signal a utility scheduler needs (ROADMAP item 3).
 *
 * Snapshots export as JSON for the /requestz debug endpoint and the
 * flight recorder; the service summarizes finish() stats into the
 * quality_at_deadline and time_to_quality histograms with the request's
 * trace id as exemplar.
 */

#ifndef ANYTIME_OBS_TIMELINE_HPP
#define ANYTIME_OBS_TIMELINE_HPP

#include <cstddef>
#include <cstdint>
#include <deque>
#include <limits>
#include <map>
#include <optional>
#include <string>
#include <vector>

#include "support/sync.hpp"
#include "support/thread_annotations.hpp"

namespace anytime::obs {

/** One published version as the timeline recorder saw it. */
struct TimelinePoint
{
    /** Seconds since the request was submitted. */
    double tSeconds = 0.0;
    std::uint64_t version = 0;
    /** Quality estimate in [0, 1]; NaN when the pipeline has none. */
    double quality = std::numeric_limits<double>::quiet_NaN();
    /** Serialized payload size at this version. */
    std::uint64_t bytes = 0;
    /** Stage credited with producing this version ("" = unknown). */
    std::string stage;
    /** Gang width executing when the version published. */
    std::uint32_t workers = 0;
    bool final = false;
};

/** Cumulative quality gain credited to one stage. */
struct StageGain
{
    std::string stage;
    double qualityGain = 0.0;
    std::uint64_t versions = 0;
};

/** Quality-crossing stats handed back when a request finishes. */
struct TimelineFinishStats
{
    double finalQuality = std::numeric_limits<double>::quiet_NaN();
    /** Seconds to first version with quality >= q; NaN = never. */
    double timeToQ50 = std::numeric_limits<double>::quiet_NaN();
    double timeToQ90 = std::numeric_limits<double>::quiet_NaN();
    double timeToQ99 = std::numeric_limits<double>::quiet_NaN();
};

/** Value snapshot of one request's timeline (for /requestz, flight). */
struct TimelineSnapshot
{
    std::uint64_t requestId = 0;
    std::uint64_t traceId = 0;
    std::string pipeline;
    /** servedStatus() name once finished; "running" before. */
    std::string status = "running";
    bool finished = false;
    bool degraded = false;
    std::uint32_t buildAttempts = 0;
    double deadlineSeconds = 0.0;
    /** Total seconds at finish; seconds so far while running. */
    double elapsedSeconds = 0.0;
    TimelineFinishStats stats;
    /** Retained staircase points, oldest first (ring tail). */
    std::vector<TimelinePoint> points;
    /** Points overwritten by the ring before this snapshot. */
    std::uint64_t pointsDropped = 0;
    std::vector<StageGain> stageGains;
};

/** Tuning for the per-request and finished-request rings. */
struct TimelineStoreOptions
{
    /** Staircase points retained per request. */
    std::size_t pointCapacity = 64;
    /** Finished requests retained for /requestz. */
    std::size_t finishedCapacity = 32;
};

/**
 * Bounded store of request timelines: in-flight keyed by request id,
 * finished in an eviction ring. All methods are thread-safe; unknown
 * request ids are ignored (a request can finish before its first
 * version fans out).
 */
class TimelineStore
{
  public:
    explicit TimelineStore(TimelineStoreOptions options = {});

    /** Open a timeline for @p requestId (called at submit). */
    void begin(std::uint64_t requestId, std::uint64_t traceId,
               const std::string &pipeline, double deadlineSeconds);

    /** Record one published version (called from the version sink). */
    void recordVersion(std::uint64_t requestId, TimelinePoint point);

    /** Bump the recorded build-attempt count (retry visibility). */
    void recordBuildAttempt(std::uint64_t requestId,
                            std::uint32_t attempts);

    /**
     * Close the timeline and move it to the finished ring. Returns the
     * quality-crossing stats for histogram observation (nullopt when
     * the id was never begun).
     */
    std::optional<TimelineFinishStats>
    finish(std::uint64_t requestId, const std::string &status,
           bool degraded, double elapsedSeconds, double finalQuality);

    /** Snapshot one request (in-flight or finished), if known. */
    std::optional<TimelineSnapshot>
    snapshot(std::uint64_t requestId) const;

    /** Snapshot everything: in-flight first, then newest-finished. */
    std::vector<TimelineSnapshot> snapshotAll() const;

    /** Render snapshots as a JSON array (stable field order). */
    static std::string
    toJson(const std::vector<TimelineSnapshot> &snapshots);
    /** Render one snapshot as a JSON object. */
    static std::string toJson(const TimelineSnapshot &snapshot);

  private:
    struct Entry
    {
        TimelineSnapshot data;
        /** Ring of staircase points (data.points used as the ring). */
        std::uint64_t pointsTotal = 0;
        double lastQuality = 0.0;
        std::map<std::string, StageGain> gains;
    };

    static void snapshotEntry(const Entry &entry,
                              std::size_t pointCapacity,
                              std::vector<TimelineSnapshot> &out);

    TimelineStoreOptions options;
    mutable Mutex mutex;
    std::map<std::uint64_t, Entry> inflight ANYTIME_GUARDED_BY(mutex);
    std::deque<Entry> finished ANYTIME_GUARDED_BY(mutex);
};

} // namespace anytime::obs

#endif // ANYTIME_OBS_TIMELINE_HPP
