#include "obs/trace.hpp"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cmath>
#include <cstdio>
#include <fstream>
#include <memory>
#include <ostream>
#include <unordered_set>
#include <vector>

#include "support/sync.hpp"
#include "support/thread_annotations.hpp"

namespace anytime::obs {

namespace {

constexpr std::size_t kCapacityPerThread = std::size_t(1) << 14;

#if ANYTIME_TRACE_COMPILED_IN

using Clock = std::chrono::steady_clock;

std::int64_t
clockNs()
{
    return std::chrono::duration_cast<std::chrono::nanoseconds>(
               Clock::now().time_since_epoch())
        .count();
}

/**
 * One thread's ring. The owning thread is the only writer; `written`
 * is published with release stores so a drainer that loads it with
 * acquire sees every record below it. A drain that races with an
 * actively wrapping writer may read the oldest in-window slots while
 * they are being overwritten; exports are meant to happen at quiesce
 * points (end of run / scenario), where this cannot occur.
 */
struct ThreadBuffer
{
    std::vector<TraceRecord> slots{kCapacityPerThread};
    std::atomic<std::uint64_t> written{0}; ///< records ever written
    std::uint32_t tid = 0;
};

struct Collector
{
    std::atomic<bool> enabled{false};
    std::atomic<std::int64_t> epochNs{clockNs()};
    Mutex mutex; ///< guards buffers registry and interned names
    std::vector<std::unique_ptr<ThreadBuffer>>
        buffers ANYTIME_GUARDED_BY(mutex);
    std::unordered_set<std::string> names ANYTIME_GUARDED_BY(mutex);
};

Collector &
collector()
{
    static Collector instance;
    return instance;
}

thread_local ThreadBuffer *tlsBuffer = nullptr;
thread_local TraceContext tlsContext{};

ThreadBuffer &
threadBuffer()
{
    if (tlsBuffer == nullptr) {
        Collector &c = collector();
        MutexLock lock(c.mutex);
        auto buffer = std::make_unique<ThreadBuffer>();
        buffer->tid = static_cast<std::uint32_t>(c.buffers.size());
        tlsBuffer = buffer.get();
        c.buffers.push_back(std::move(buffer));
    }
    return *tlsBuffer;
}

std::uint64_t
nowNs()
{
    const std::int64_t delta =
        clockNs() - collector().epochNs.load(std::memory_order_relaxed);
    return delta > 0 ? static_cast<std::uint64_t>(delta) : 0;
}

void
appendEscaped(std::string &out, const char *text)
{
    if (text == nullptr)
        return;
    for (const char *p = text; *p != '\0'; ++p) {
        const unsigned char ch = static_cast<unsigned char>(*p);
        switch (ch) {
          case '"':
            out += "\\\"";
            break;
          case '\\':
            out += "\\\\";
            break;
          case '\n':
            out += "\\n";
            break;
          case '\t':
            out += "\\t";
            break;
          case '\r':
            out += "\\r";
            break;
          default:
            if (ch < 0x20) {
                char buf[8];
                std::snprintf(buf, sizeof buf, "\\u%04x", ch);
                out += buf;
            } else {
                out += static_cast<char>(ch);
            }
        }
    }
}

void
appendNumber(std::string &out, double value)
{
    // JSON has no NaN/Infinity literals; null keeps the trace loadable.
    if (!std::isfinite(value)) {
        out += "null";
        return;
    }
    // Integral values (version counts, flags, ids) print exactly;
    // everything else keeps enough digits to round-trip visually.
    if (std::abs(value) < 9e15 && value == std::floor(value)) {
        out += std::to_string(static_cast<std::int64_t>(value));
        return;
    }
    char buf[64];
    std::snprintf(buf, sizeof buf, "%.9g", value);
    out += buf;
}

/** Microsecond timestamp with nanosecond resolution (Chrome "ts"). */
void
appendMicros(std::string &out, std::uint64_t ns)
{
    char buf[48];
    std::snprintf(buf, sizeof buf, "%llu.%03u",
                  static_cast<unsigned long long>(ns / 1000),
                  static_cast<unsigned>(ns % 1000));
    out += buf;
}

void
appendArgs(std::string &out, const TraceRecord &record)
{
    out += "\"args\":{";
    bool first = true;
    // The trace id is exported as a hex string: 64-bit ids do not
    // survive a round-trip through a JSON double, and Perfetto keeps
    // unknown string args visible on the span for query/filtering.
    if (record.traceId != 0) {
        char buf[32];
        std::snprintf(buf, sizeof buf, "\"trace\":\"%016llx\"",
                      static_cast<unsigned long long>(record.traceId));
        out += buf;
        first = false;
    }
    for (const TraceArg &arg : record.args) {
        if (arg.key == nullptr)
            continue;
        if (!first)
            out += ',';
        first = false;
        out += '"';
        appendEscaped(out, arg.key);
        out += "\":";
        appendNumber(out, arg.value);
    }
    out += '}';
}

void
appendEvent(std::string &out, const TraceRecord &record)
{
    out += "{\"name\":\"";
    appendEscaped(out, record.name);
    out += "\",\"cat\":\"";
    appendEscaped(out,
                  record.category != nullptr ? record.category : "misc");
    out += "\",\"ph\":\"";
    switch (record.kind) {
      case TraceRecord::Kind::complete:
        out += 'X';
        break;
      case TraceRecord::Kind::instant:
        out += 'i';
        break;
      case TraceRecord::Kind::counter:
        out += 'C';
        break;
      case TraceRecord::Kind::asyncBegin:
        out += 'b';
        break;
      case TraceRecord::Kind::asyncEnd:
        out += 'e';
        break;
    }
    out += "\",\"pid\":1,\"tid\":";
    out += std::to_string(record.tid);
    out += ",\"ts\":";
    appendMicros(out, record.startNs);
    if (record.kind == TraceRecord::Kind::complete) {
        out += ",\"dur\":";
        appendMicros(out, record.durationNs);
    }
    if (record.kind == TraceRecord::Kind::instant)
        out += ",\"s\":\"t\"";
    if (record.kind == TraceRecord::Kind::asyncBegin ||
        record.kind == TraceRecord::Kind::asyncEnd) {
        out += ",\"id\":";
        out += std::to_string(record.id);
    }
    out += ',';
    appendArgs(out, record);
    out += '}';
}

/** Snapshot every ring's retained window (registry lock held). */
std::vector<TraceRecord>
collectRecords()
{
    Collector &c = collector();
    MutexLock lock(c.mutex);
    std::vector<TraceRecord> records;
    for (const auto &buffer : c.buffers) {
        const std::uint64_t written =
            buffer->written.load(std::memory_order_acquire);
        const std::uint64_t capacity = buffer->slots.size();
        const std::uint64_t first =
            written > capacity ? written - capacity : 0;
        for (std::uint64_t i = first; i < written; ++i)
            records.push_back(buffer->slots[i % capacity]);
    }
    // Chronological order across threads; async begin sorts before its
    // end when both carry the same timestamp.
    std::stable_sort(records.begin(), records.end(),
                     [](const TraceRecord &a, const TraceRecord &b) {
                         if (a.startNs != b.startNs)
                             return a.startNs < b.startNs;
                         return static_cast<int>(a.kind) <
                                static_cast<int>(b.kind);
                     });
    return records;
}

#endif // ANYTIME_TRACE_COMPILED_IN

} // namespace

std::size_t
traceCapacityPerThread()
{
    return kCapacityPerThread;
}

std::uint64_t
newTraceId()
{
    // Clock entropy mixed with a process-wide counter through the
    // splitmix64 finalizer: unique within the process, effectively
    // unique across loopback client/server pairs, and never zero
    // (zero is the "no context" sentinel on the wire).
    static std::atomic<std::uint64_t> counter{0};
    std::uint64_t x =
        static_cast<std::uint64_t>(
            std::chrono::steady_clock::now().time_since_epoch().count()) +
        (counter.fetch_add(1, std::memory_order_relaxed) << 32);
    x += 0x9e3779b97f4a7c15ULL;
    x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
    x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
    x ^= x >> 31;
    return x != 0 ? x : 1;
}

#if ANYTIME_TRACE_COMPILED_IN

bool
tracingEnabled()
{
    return collector().enabled.load(std::memory_order_relaxed);
}

void
setTracingEnabled(bool on)
{
    collector().enabled.store(on, std::memory_order_relaxed);
}

const char *
internName(const std::string &name)
{
    Collector &c = collector();
    MutexLock lock(c.mutex);
    return c.names.insert(name).first->c_str();
}

TraceContext
currentTraceContext()
{
    return tlsContext;
}

void
setCurrentTraceContext(TraceContext context)
{
    tlsContext = context;
}

void
traceRecord(TraceRecord record)
{
    ThreadBuffer &buffer = threadBuffer();
    record.tid = buffer.tid;
    if (record.traceId == 0)
        record.traceId = tlsContext.traceId;
    const std::uint64_t index =
        buffer.written.load(std::memory_order_relaxed);
    buffer.slots[index % buffer.slots.size()] = record;
    buffer.written.store(index + 1, std::memory_order_release);
}

void
traceInstant(const char *name, const char *category, TraceArg arg0,
             TraceArg arg1)
{
    if (!tracingEnabled())
        return;
    TraceRecord record;
    record.kind = TraceRecord::Kind::instant;
    record.name = name;
    record.category = category;
    record.startNs = nowNs();
    record.args[0] = arg0;
    record.args[1] = arg1;
    traceRecord(record);
}

void
traceCounter(const char *name, double value)
{
    if (!tracingEnabled())
        return;
    TraceRecord record;
    record.kind = TraceRecord::Kind::counter;
    record.name = name;
    record.category = "counter";
    record.startNs = nowNs();
    record.args[0] = {"value", value};
    traceRecord(record);
}

void
traceAsyncBegin(const char *name, const char *category, std::uint64_t id,
                TraceArg arg0, TraceArg arg1)
{
    if (!tracingEnabled())
        return;
    TraceRecord record;
    record.kind = TraceRecord::Kind::asyncBegin;
    record.name = name;
    record.category = category;
    record.startNs = nowNs();
    record.id = id;
    record.args[0] = arg0;
    record.args[1] = arg1;
    traceRecord(record);
}

void
traceAsyncEnd(const char *name, const char *category, std::uint64_t id,
              TraceArg arg0, TraceArg arg1)
{
    if (!tracingEnabled())
        return;
    TraceRecord record;
    record.kind = TraceRecord::Kind::asyncEnd;
    record.name = name;
    record.category = category;
    record.startNs = nowNs();
    record.id = id;
    record.args[0] = arg0;
    record.args[1] = arg1;
    traceRecord(record);
}

std::uint64_t
droppedRecords()
{
    Collector &c = collector();
    MutexLock lock(c.mutex);
    std::uint64_t dropped = 0;
    for (const auto &buffer : c.buffers) {
        const std::uint64_t written =
            buffer->written.load(std::memory_order_acquire);
        const std::uint64_t capacity = buffer->slots.size();
        if (written > capacity)
            dropped += written - capacity;
    }
    return dropped;
}

std::uint64_t
retainedRecords()
{
    Collector &c = collector();
    MutexLock lock(c.mutex);
    std::uint64_t retained = 0;
    for (const auto &buffer : c.buffers) {
        const std::uint64_t written =
            buffer->written.load(std::memory_order_acquire);
        retained += std::min<std::uint64_t>(written, buffer->slots.size());
    }
    return retained;
}

void
clearTrace()
{
    Collector &c = collector();
    MutexLock lock(c.mutex);
    for (const auto &buffer : c.buffers)
        buffer->written.store(0, std::memory_order_release);
    c.epochNs.store(clockNs(), std::memory_order_relaxed);
}

TraceSpan::TraceSpan(const char *name, const char *category, TraceArg arg0,
                     TraceArg arg1)
{
    if (!tracingEnabled())
        return;
    active = true;
    record.kind = TraceRecord::Kind::complete;
    record.name = name;
    record.category = category;
    record.startNs = nowNs();
    record.args[0] = arg0;
    record.args[1] = arg1;
}

TraceSpan::TraceSpan(const std::string &name, const char *category,
                     TraceArg arg0, TraceArg arg1)
    : TraceSpan(tracingEnabled() ? internName(name) : nullptr, category,
                arg0, arg1)
{
}

TraceSpan::~TraceSpan()
{
    if (!active)
        return;
    record.durationNs = nowNs() - record.startNs;
    traceRecord(record);
}

void
TraceSpan::arg(unsigned slot, const char *key, double value)
{
    if (!active || slot >= 2)
        return;
    record.args[slot] = {key, value};
}

#endif // ANYTIME_TRACE_COMPILED_IN

void
writeChromeTrace(std::ostream &out)
{
    std::string json;
    json += "{\"displayTimeUnit\":\"ms\",\"traceEvents\":[";
#if ANYTIME_TRACE_COMPILED_IN
    const std::vector<TraceRecord> records = collectRecords();
    for (std::size_t i = 0; i < records.size(); ++i) {
        if (i != 0)
            json += ',';
        json += '\n';
        appendEvent(json, records[i]);
    }
#endif
    json += "\n]}\n";
    out << json;
}

bool
writeChromeTrace(const std::string &path)
{
    std::ofstream out(path);
    if (!out)
        return false;
    writeChromeTrace(out);
    return static_cast<bool>(out);
}

} // namespace anytime::obs
