/**
 * @file
 * Low-overhead execution tracing with Chrome trace-event JSON export.
 *
 * The collector keeps one fixed-size ring buffer of binary records per
 * emitting thread. The record path is lock-free: a thread writes into
 * its own ring and publishes a monotonic write counter with a release
 * store; no lock, no allocation, no formatting. Draining (JSON export)
 * walks all rings under the registry mutex. When a ring wraps, the
 * oldest records are overwritten and counted as dropped — memory stays
 * bounded no matter how long the process runs.
 *
 * Tracing is off by default. Runtime gating is one relaxed atomic
 * load; every emitter returns immediately when disabled, so leaving
 * the instrumentation compiled in costs a predictable branch on the
 * hot paths. Defining ANYTIME_TRACE_COMPILED_IN=0 compiles all
 * emitters down to empty inlines for zero cost.
 *
 * Event names and categories are `const char *` so records stay POD.
 * String literals can be passed directly; dynamic names (stage and
 * buffer names) must be interned first via internName(), which returns
 * a pointer that stays valid for the process lifetime.
 *
 * The exported JSON uses the Chrome trace-event format (object form,
 * {"traceEvents": [...]}) and loads in Perfetto and chrome://tracing:
 *  - TraceSpan        -> complete events ("ph":"X") with duration;
 *  - traceInstant     -> instant events ("ph":"i");
 *  - traceCounter     -> counter events ("ph":"C") plotted as a track;
 *  - traceAsyncBegin/ -> async nestable events ("ph":"b"/"e") keyed by
 *    traceAsyncEnd       id, for request lifecycles that hop threads.
 *
 * Async span names form a checked registry: every name passed to
 * traceAsyncBegin must also appear in a traceAsyncEnd somewhere in
 * src/ (and vice versa) — tools/anytime_verify/registry_check.py
 * enforces the pairing in CI, since an unmatched begin renders as a
 * forever-open span in Perfetto and usually means a lifecycle leak.
 */

#ifndef ANYTIME_OBS_TRACE_HPP
#define ANYTIME_OBS_TRACE_HPP

#include <cstddef>
#include <cstdint>
#include <iosfwd>
#include <string>

#ifndef ANYTIME_TRACE_COMPILED_IN
#define ANYTIME_TRACE_COMPILED_IN 1
#endif

namespace anytime::obs {

/** One optional named numeric argument attached to a trace event. */
struct TraceArg
{
    const char *key = nullptr; ///< nullptr = argument absent
    double value = 0.0;
};

/** Fixed-size binary trace record (one ring-buffer slot). */
struct TraceRecord
{
    enum class Kind : std::uint8_t
    {
        complete,   ///< span with duration ("ph":"X")
        instant,    ///< point event ("ph":"i")
        counter,    ///< sampled value ("ph":"C")
        asyncBegin, ///< async span open ("ph":"b", keyed by id)
        asyncEnd,   ///< async span close ("ph":"e", keyed by id)
    };

    Kind kind = Kind::instant;
    std::uint32_t tid = 0; ///< collector-assigned thread index
    const char *name = nullptr;
    const char *category = nullptr;
    std::uint64_t startNs = 0;    ///< nanoseconds since collector epoch
    std::uint64_t durationNs = 0; ///< complete events only
    std::uint64_t id = 0;         ///< async correlation id
    std::uint64_t traceId = 0;    ///< request trace context (0 = none)
    TraceArg args[2];
};

/**
 * Request-scoped trace context. The trace id is minted once per
 * request (client side when it originates there, service side
 * otherwise), travels over the wire in REQUEST/ACCEPTED frames, and is
 * stamped onto every record a thread emits while a TraceContextScope
 * is active — so spans from the client, the reactor, the scheduler,
 * the builder, and every stage worker stitch into one request trace.
 */
struct TraceContext
{
    std::uint64_t traceId = 0;
    std::uint64_t parentSpanId = 0;
};

/** Ring capacity (records) of each per-thread buffer. */
std::size_t traceCapacityPerThread();

#if ANYTIME_TRACE_COMPILED_IN

/** True while trace collection is on (one relaxed atomic load). */
bool tracingEnabled();

/** Turn collection on or off at runtime. */
void setTracingEnabled(bool on);

/**
 * Intern @p name into the collector's string table; the returned
 * pointer is valid for the process lifetime. Takes a lock — callers on
 * hot paths should cache the result, and should only call this when
 * tracingEnabled().
 */
const char *internName(const std::string &name);

/** Append a fully formed record to this thread's ring (lock-free). */
void traceRecord(TraceRecord record);

/**
 * Mint a fresh 64-bit trace id: never zero, unique within the process
 * and effectively unique across loopback processes (clock entropy
 * mixed with a process-wide counter through a splitmix64 finalizer).
 */
std::uint64_t newTraceId();

/** This thread's active trace context ({0,0} when none). */
TraceContext currentTraceContext();

/** Replace this thread's trace context (RAII callers preferred). */
void setCurrentTraceContext(TraceContext context);

/**
 * RAII trace-context scope: installs @p context for the current
 * thread and restores the previous context on destruction. Cheap
 * enough to sit on dispatch paths unconditionally — two thread-local
 * stores, no atomics, no allocation.
 */
class TraceContextScope
{
  public:
    explicit TraceContextScope(TraceContext context)
        : previous(currentTraceContext())
    {
        setCurrentTraceContext(context);
    }

    ~TraceContextScope() { setCurrentTraceContext(previous); }

    TraceContextScope(const TraceContextScope &) = delete;
    TraceContextScope &operator=(const TraceContextScope &) = delete;

  private:
    TraceContext previous;
};

/** Emit an instant event; no-op while disabled. */
void traceInstant(const char *name, const char *category,
                  TraceArg arg0 = {}, TraceArg arg1 = {});

/** Emit a counter sample; no-op while disabled. */
void traceCounter(const char *name, double value);

/** Open an async span keyed by @p id; no-op while disabled. */
void traceAsyncBegin(const char *name, const char *category,
                     std::uint64_t id, TraceArg arg0 = {},
                     TraceArg arg1 = {});

/** Close the async span keyed by @p id; no-op while disabled. */
void traceAsyncEnd(const char *name, const char *category,
                   std::uint64_t id, TraceArg arg0 = {},
                   TraceArg arg1 = {});

/** Records overwritten before export, summed over all threads. */
std::uint64_t droppedRecords();

/** Records currently held in the rings, summed over all threads. */
std::uint64_t retainedRecords();

/**
 * Reset all rings and the trace epoch (records are discarded). Meant
 * for tests and for delimiting scenarios; quiesce emitters first.
 */
void clearTrace();

/** Write everything collected so far as Chrome trace-event JSON. */
void writeChromeTrace(std::ostream &out);

/** writeChromeTrace() to a file; false (with no throw) on I/O error. */
bool writeChromeTrace(const std::string &path);

/**
 * RAII span: measures construction to destruction and emits one
 * complete event. When tracing is disabled at construction the span is
 * inert (destructor does nothing). The std::string overload interns
 * the name only when tracing is enabled.
 */
class TraceSpan
{
  public:
    TraceSpan(const char *name, const char *category, TraceArg arg0 = {},
              TraceArg arg1 = {});
    TraceSpan(const std::string &name, const char *category,
              TraceArg arg0 = {}, TraceArg arg1 = {});
    ~TraceSpan();

    TraceSpan(const TraceSpan &) = delete;
    TraceSpan &operator=(const TraceSpan &) = delete;

    /** Set or overwrite argument slot 0 or 1 before destruction. */
    void arg(unsigned slot, const char *key, double value);

  private:
    TraceRecord record;
    bool active = false;
};

#else // !ANYTIME_TRACE_COMPILED_IN — zero-cost stubs

inline bool tracingEnabled() { return false; }
inline void setTracingEnabled(bool) {}
inline const char *internName(const std::string &) { return ""; }
inline void traceRecord(TraceRecord) {}
std::uint64_t newTraceId(); // still real: ids ride the wire regardless
inline TraceContext currentTraceContext() { return {}; }
inline void setCurrentTraceContext(TraceContext) {}

class TraceContextScope
{
  public:
    explicit TraceContextScope(TraceContext) {}
    TraceContextScope(const TraceContextScope &) = delete;
    TraceContextScope &operator=(const TraceContextScope &) = delete;
};

inline void traceInstant(const char *, const char *, TraceArg = {},
                         TraceArg = {})
{
}
inline void traceCounter(const char *, double) {}
inline void traceAsyncBegin(const char *, const char *, std::uint64_t,
                            TraceArg = {}, TraceArg = {})
{
}
inline void traceAsyncEnd(const char *, const char *, std::uint64_t,
                          TraceArg = {}, TraceArg = {})
{
}
inline std::uint64_t droppedRecords() { return 0; }
inline std::uint64_t retainedRecords() { return 0; }
inline void clearTrace() {}
void writeChromeTrace(std::ostream &out); // writes an empty trace
bool writeChromeTrace(const std::string &path);

class TraceSpan
{
  public:
    TraceSpan(const char *, const char *, TraceArg = {}, TraceArg = {}) {}
    TraceSpan(const std::string &, const char *, TraceArg = {},
              TraceArg = {})
    {
    }
    TraceSpan(const TraceSpan &) = delete;
    TraceSpan &operator=(const TraceSpan &) = delete;
    void arg(unsigned, const char *, double) {}
};

#endif // ANYTIME_TRACE_COMPILED_IN

} // namespace anytime::obs

#endif // ANYTIME_OBS_TRACE_HPP
