#include "sampling/lfsr.hpp"



#include "support/error.hpp"

namespace anytime {

namespace {

/**
 * Maximal-length (primitive polynomial) tap masks for Galois LFSRs,
 * indexed by width. Taps follow Xilinx XAPP052; tap t corresponds to bit
 * t-1. Entry [w] is valid for w in [2, 32].
 */
const std::uint32_t maximalTaps[33] = {
    0, 0,
    0x00000003, // 2: 2,1
    0x00000006, // 3: 3,2
    0x0000000c, // 4: 4,3
    0x00000014, // 5: 5,3
    0x00000030, // 6: 6,5
    0x00000060, // 7: 7,6
    0x000000b8, // 8: 8,6,5,4
    0x00000110, // 9: 9,5
    0x00000240, // 10: 10,7
    0x00000500, // 11: 11,9
    0x00000829, // 12: 12,6,4,1
    0x0000100d, // 13: 13,4,3,1
    0x00002015, // 14: 14,5,3,1
    0x00006000, // 15: 15,14
    0x0000d008, // 16: 16,15,13,4
    0x00012000, // 17: 17,14
    0x00020400, // 18: 18,11
    0x00040023, // 19: 19,6,2,1
    0x00090000, // 20: 20,17
    0x00140000, // 21: 21,19
    0x00300000, // 22: 22,21
    0x00420000, // 23: 23,18
    0x00e10000, // 24: 24,23,22,17
    0x01200000, // 25: 25,22
    0x02000023, // 26: 26,6,2,1
    0x04000013, // 27: 27,5,2,1
    0x09000000, // 28: 28,25
    0x14000000, // 29: 29,27
    0x20000029, // 30: 30,6,4,1
    0x48000000, // 31: 31,28
    0x80200003, // 32: 32,22,2,1
};

} // namespace

std::uint32_t
LfsrEngine::tapsFor(unsigned width)
{
    fatalIf(width < 2 || width > 32,
            "LFSR width ", width, " outside supported range [2, 32]");
    return maximalTaps[width];
}

LfsrEngine::LfsrEngine(unsigned width, std::uint32_t seed)
    : bits(width), taps(tapsFor(width))
{
    const std::uint32_t mask =
        (width == 32) ? 0xffffffffu
                      : ((std::uint32_t(1) << width) - 1);
    current = seed & mask;
    if (current == 0)
        current = 1; // all-zeros is the lock-up state of an XOR LFSR
}

std::uint32_t
LfsrEngine::step()
{
    // Galois (one-to-many) right-shift form: the tap mask is XORed in
    // whenever a 1 falls off the low end. Every mask in the table has
    // bit (width - 1) set, so the state stays inside [1, 2^width).
    const std::uint32_t lsb = current & 1;
    current >>= 1;
    if (lsb)
        current ^= taps;
    return current;
}

} // namespace anytime
