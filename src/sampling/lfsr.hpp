/**
 * @file
 * Maximal-length linear-feedback shift register.
 *
 * The paper's pseudo-random sampling permutation is computed "using any
 * deterministic pseudo-random number generator. In our experiments, we
 * use a linear-feedback shift register (LFSR), which is very simple to
 * implement in hardware" (Section III-B2). This models exactly that: a
 * Galois-form LFSR with primitive feedback polynomials for widths
 * 2..32, cycling through all 2^w - 1 nonzero states.
 */

#ifndef ANYTIME_SAMPLING_LFSR_HPP
#define ANYTIME_SAMPLING_LFSR_HPP

#include <cstdint>

namespace anytime {

/**
 * Galois LFSR of a given width with a maximal-length tap polynomial.
 *
 * The state is always nonzero; step() advances one shift and returns the
 * new state. Starting from any nonzero seed, the register visits every
 * value in [1, 2^width) exactly once before repeating.
 */
class LfsrEngine
{
  public:
    /**
     * Construct an LFSR.
     *
     * @param width Register width in bits; must be in [2, 32].
     * @param seed  Initial state; reduced to a nonzero value mod 2^width.
     */
    LfsrEngine(unsigned width, std::uint32_t seed);

    /** Advance one step and return the new (nonzero) state. */
    std::uint32_t step();

    /** Current (nonzero) state. */
    std::uint32_t state() const { return current; }

    /** Register width in bits. */
    unsigned width() const { return bits; }

    /** Period of a maximal LFSR of this width: 2^width - 1. */
    std::uint64_t
    period() const
    {
        return (std::uint64_t(1) << bits) - 1;
    }

    /** Maximal-length tap mask for @p width (bit t-1 set for tap t). */
    static std::uint32_t tapsFor(unsigned width);

  private:
    unsigned bits;
    std::uint32_t taps;
    std::uint32_t current;
};

} // namespace anytime

#endif // ANYTIME_SAMPLING_LFSR_HPP
