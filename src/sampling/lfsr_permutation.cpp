#include "sampling/lfsr_permutation.hpp"

#include "sampling/lfsr.hpp"
#include "support/bits.hpp"
#include "support/error.hpp"

namespace anytime {

LfsrPermutation::LfsrPermutation(std::uint64_t n, std::uint32_t seed)
    : seedValue(seed)
{
    fatalIf(n == 0, "LfsrPermutation: empty domain");
    fatalIf(n > (std::uint64_t(1) << 32),
            "LfsrPermutation: domain too large for a 32-bit LFSR");

    table.reserve(n);
    table.push_back(0); // the LFSR never emits index 0

    if (n == 1)
        return;

    const unsigned width = std::max(2u, indexBits(n));
    LfsrEngine lfsr(width, seed);

    // One full period visits every state in [1, 2^width) exactly once;
    // values outside [1, n) are skipped to keep the map bijective.
    const std::uint64_t period = lfsr.period();
    for (std::uint64_t step = 0; step < period; ++step) {
        const std::uint32_t state = lfsr.state();
        if (state < n)
            table.push_back(state);
        lfsr.step();
    }
    panicIf(table.size() != n,
            "LFSR permutation visited ", table.size(),
            " indices, expected ", n, " (non-maximal taps?)");
}

} // namespace anytime
