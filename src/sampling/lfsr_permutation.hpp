/**
 * @file
 * Pseudo-random sampling permutation backed by a maximal-length LFSR.
 *
 * Paper Section III-B2: for unordered data sets, a pseudo-random
 * permutation avoids memory-order bias. A true random permutation would
 * not be bijective under fixed hardware state, so the paper (and this
 * implementation) uses a deterministic LFSR whose full period visits
 * every nonzero register value exactly once.
 *
 * For a domain of size n the register width is the smallest w with
 * 2^w >= n; states >= n are skipped ("cycle walking"), and index 0 —
 * which an LFSR can never emit — is visited first. The resulting forward
 * table is a bijection of [0, n).
 */

#ifndef ANYTIME_SAMPLING_LFSR_PERMUTATION_HPP
#define ANYTIME_SAMPLING_LFSR_PERMUTATION_HPP

#include <cstdint>
#include <memory>
#include <string>

#include "sampling/permutation.hpp"

namespace anytime {

/** Pseudo-random bijective permutation of [0, n) from an LFSR sweep. */
class LfsrPermutation : public TabulatedPermutation
{
  public:
    /**
     * Build the permutation table by sweeping one full LFSR period.
     *
     * @param n    Domain size (n >= 1).
     * @param seed Seed selecting the starting state (rotation of the
     *             LFSR cycle); any value is accepted.
     */
    explicit LfsrPermutation(std::uint64_t n, std::uint32_t seed = 1);

    std::string name() const override { return "lfsr"; }

    std::unique_ptr<Permutation>
    clone() const override
    {
        return std::make_unique<LfsrPermutation>(*this);
    }

    /** Seed this permutation was built with. */
    std::uint32_t seed() const { return seedValue; }

  private:
    std::uint32_t seedValue;
};

} // namespace anytime

#endif // ANYTIME_SAMPLING_LFSR_PERMUTATION_HPP
