/**
 * @file
 * Multi-threaded sampling partitions (paper Section IV-C1).
 *
 * A permutation sequence p(0), p(1), ... can be divided among worker
 * threads while keeping the anytime property. For the tree permutation
 * the paper prescribes *cyclic* distribution — thread t processing p(i)
 * next processes p(i + T) — so a low-resolution output is completed as
 * early as possible. For the LFSR permutation either cyclic or block
 * (round-robin chunk) distribution is acceptable.
 */

#ifndef ANYTIME_SAMPLING_PARTITION_HPP
#define ANYTIME_SAMPLING_PARTITION_HPP

#include <algorithm>
#include <cstdint>

#include "sampling/permutation.hpp"
#include "support/error.hpp"

namespace anytime {

/**
 * Partition strategy for dividing a permutation sequence among worker
 * threads (paper Section IV-C1): tree permutations require cyclic;
 * LFSR permutations accept either.
 */
enum class PartitionKind
{
    cyclic,
    block,
};

/** Human-readable partition-kind name (diagnostics, traces). */
constexpr const char *
partitionKindName(PartitionKind kind)
{
    return kind == PartitionKind::cyclic ? "cyclic" : "block";
}

/**
 * Cyclic slice of a permutation sequence for one worker thread: thread
 * @c id of @c count visits ordinals id, id + count, id + 2*count, ...
 */
class CyclicPartition
{
  public:
    /**
     * @param perm  Shared permutation (not owned; must outlive this).
     * @param count Total number of worker threads (>= 1).
     * @param id    This worker's index in [0, count).
     */
    CyclicPartition(const Permutation &perm, unsigned count, unsigned id)
        : perm(&perm), threadCount(count), threadId(id)
    {
        fatalIf(count == 0, "CyclicPartition: zero thread count");
        fatalIf(id >= count, "CyclicPartition: thread id ", id,
                " out of range ", count);
        // Workers beyond the sequence length own an empty slice (the
        // threadId >= n edge: more threads than samples in a short
        // window); they must still participate in any version barrier.
        const std::uint64_t n = perm.size();
        sampleCount =
            (threadId >= n) ? 0 : (n - threadId + threadCount - 1) / threadCount;
    }

    /** Number of samples assigned to this worker (0 when id >= n). */
    std::uint64_t size() const { return sampleCount; }

    /** Global sample ordinal of this worker's k-th sample. */
    std::uint64_t
    ordinal(std::uint64_t k) const
    {
        return threadId + k * static_cast<std::uint64_t>(threadCount);
    }

    /** Permuted element index of this worker's k-th sample. */
    std::uint64_t
    map(std::uint64_t k) const
    {
        panicIf(k >= sampleCount, "CyclicPartition: sample ", k,
                " out of range ", sampleCount);
        return perm->map(ordinal(k));
    }

  private:
    const Permutation *perm;
    unsigned threadCount;
    unsigned threadId;
    std::uint64_t sampleCount = 0;
};

/**
 * Block slice of a permutation sequence: the ordinal range is split into
 * @c count contiguous chunks and thread @c id owns chunk @c id. Suitable
 * for the LFSR permutation where ordinal locality carries no resolution
 * meaning.
 */
class BlockPartition
{
  public:
    BlockPartition(const Permutation &perm, unsigned count, unsigned id)
        : perm(&perm)
    {
        fatalIf(count == 0, "BlockPartition: zero thread count");
        fatalIf(id >= count, "BlockPartition: thread id ", id,
                " out of range ", count);
        const std::uint64_t n = perm.size();
        const std::uint64_t base = n / count;
        const std::uint64_t extra = n % count;
        // First `extra` chunks get one extra element.
        first = base * id + std::min<std::uint64_t>(id, extra);
        chunk = base + (id < extra ? 1 : 0);
    }

    /** Number of samples assigned to this worker. */
    std::uint64_t size() const { return chunk; }

    /** Global sample ordinal of this worker's k-th sample. */
    std::uint64_t ordinal(std::uint64_t k) const { return first + k; }

    /** Permuted element index of this worker's k-th sample. */
    std::uint64_t
    map(std::uint64_t k) const
    {
        panicIf(k >= chunk, "BlockPartition: sample ", k,
                " out of range ", chunk);
        return perm->map(ordinal(k));
    }

  private:
    const Permutation *perm;
    std::uint64_t first = 0;
    std::uint64_t chunk = 0;
};

} // namespace anytime

#endif // ANYTIME_SAMPLING_PARTITION_HPP
