/**
 * @file
 * Sampling permutations (paper Section III-B2, "Sampling Permutations").
 *
 * A permutation p is a bijective map of [0, n) onto itself that defines
 * the order in which a diffusive anytime stage visits its input or
 * output elements. Bijectivity is the property that makes the precise
 * output reachable: every element is visited exactly once, so once all n
 * indices have been consumed the aggregate output equals the precise
 * output.
 *
 * The paper identifies three families:
 *  - sequential, for priority-ordered data sets;
 *  - tree (N-dimensional bit-reverse), for ordered data sets without
 *    priority (images, time series) — progressive-resolution sampling;
 *  - pseudo-random (LFSR), for unordered data sets.
 * This header defines the abstract interface plus the trivially
 * closed-form permutations; tree and LFSR live in their own headers.
 */

#ifndef ANYTIME_SAMPLING_PERMUTATION_HPP
#define ANYTIME_SAMPLING_PERMUTATION_HPP

#include <cstdint>
#include <memory>
#include <numeric>
#include <string>
#include <vector>

#include "support/error.hpp"

namespace anytime {

/**
 * Abstract bijective permutation of [0, size()).
 *
 * Implementations must guarantee that map() restricted to
 * [0, size()) is a bijection onto [0, size()); the property tests in
 * tests/sampling exercise this exhaustively for representative sizes.
 */
class Permutation
{
  public:
    virtual ~Permutation() = default;

    /** Number of elements n in the permuted domain. */
    virtual std::uint64_t size() const = 0;

    /**
     * The permuted index p(i).
     *
     * @param i Sample ordinal in [0, size()).
     * @return Element index to visit at ordinal @p i.
     */
    virtual std::uint64_t map(std::uint64_t i) const = 0;

    /** Human-readable name for logs and bench output. */
    virtual std::string name() const = 0;

    /** Deep copy (permutations are shared across worker threads). */
    virtual std::unique_ptr<Permutation> clone() const = 0;
};

/** Identity permutation: p(i) = i (ascending memory order). */
class SequentialPermutation : public Permutation
{
  public:
    explicit SequentialPermutation(std::uint64_t n) : n(n) {}

    std::uint64_t size() const override { return n; }
    std::uint64_t map(std::uint64_t i) const override { return i; }
    std::string name() const override { return "sequential"; }

    std::unique_ptr<Permutation>
    clone() const override
    {
        return std::make_unique<SequentialPermutation>(n);
    }

  private:
    std::uint64_t n;
};

/** Descending permutation: p(i) = n - 1 - i. */
class ReversePermutation : public Permutation
{
  public:
    explicit ReversePermutation(std::uint64_t n) : n(n) {}

    std::uint64_t size() const override { return n; }
    std::uint64_t map(std::uint64_t i) const override { return n - 1 - i; }
    std::string name() const override { return "reverse"; }

    std::unique_ptr<Permutation>
    clone() const override
    {
        return std::make_unique<ReversePermutation>(n);
    }

  private:
    std::uint64_t n;
};

/**
 * Strided permutation: p(i) = (i * stride) mod n, bijective iff
 * gcd(stride, n) == 1. A cheap low-discrepancy alternative to the LFSR
 * for unordered data; construction rejects non-coprime strides.
 */
class StridedPermutation : public Permutation
{
  public:
    StridedPermutation(std::uint64_t n, std::uint64_t stride)
        : n(n), stride(n == 0 ? 0 : stride % n)
    {
        fatalIf(n == 0, "StridedPermutation: empty domain");
        fatalIf(std::gcd(n, this->stride) != 1,
                "StridedPermutation: stride ", stride,
                " not coprime with size ", n);
    }

    std::uint64_t size() const override { return n; }

    std::uint64_t
    map(std::uint64_t i) const override
    {
        // 128-bit intermediate avoids overflow for large domains.
        return static_cast<std::uint64_t>(
            (static_cast<unsigned __int128>(i) * stride) % n);
    }

    std::string name() const override { return "strided"; }

    std::unique_ptr<Permutation>
    clone() const override
    {
        return std::make_unique<StridedPermutation>(n, stride);
    }

  private:
    std::uint64_t n;
    std::uint64_t stride;
};

/**
 * Permutation backed by an explicit forward table. Base class for
 * permutations with no O(1) closed form over arbitrary domain sizes
 * (tree over non-power-of-two extents, LFSR).
 */
class TabulatedPermutation : public Permutation
{
  public:
    std::uint64_t size() const override { return table.size(); }

    std::uint64_t
    map(std::uint64_t i) const override
    {
        panicIf(i >= table.size(),
                "permutation ordinal ", i, " out of range ", table.size());
        return table[i];
    }

  protected:
    std::vector<std::uint64_t> table;
};

} // namespace anytime

#endif // ANYTIME_SAMPLING_PERMUTATION_HPP
