/**
 * @file
 * Input-sampling reduction helpers (paper Section III-B2, "Input
 * Sampling").
 *
 * A commutative reduction f_i(I, O_{i-1}) = O_{i-1} <> x_{p(i)}(I) can be
 * stopped after any prefix of the permuted input sequence. If the
 * operator is not idempotent (e.g., addition), the intermediate output
 * must be re-weighted by population/sample to serve as an estimate of
 * the precise output: O'_i = O_i * n / i. Idempotent operators (min,
 * max, bitwise-and/or, set union) need no weighting.
 */

#ifndef ANYTIME_SAMPLING_REDUCER_HPP
#define ANYTIME_SAMPLING_REDUCER_HPP

#include <cstdint>

#include "support/error.hpp"

namespace anytime {

/**
 * Population/sample weight n/i applied to non-idempotent reduction
 * outputs. Returns 0 for an empty sample (no information yet).
 */
inline double
sampleWeight(std::uint64_t sample_size, std::uint64_t population)
{
    if (sample_size == 0)
        return 0.0;
    return static_cast<double>(population) /
           static_cast<double>(sample_size);
}

/**
 * Incremental commutative reduction over a sampled input sequence.
 *
 * @tparam T  Accumulator type.
 * @tparam Op Binary commutative operator (T, T) -> T.
 */
template <typename T, typename Op>
class SampledReducer
{
  public:
    /**
     * @param identity   Identity element of @p op (initial O_0).
     * @param population Total number of input elements n.
     * @param op         The commutative reduction operator.
     * @param idempotent True if op(a, a) == a; disables weighting.
     */
    SampledReducer(T identity, std::uint64_t population, Op op,
                   bool idempotent = false)
        : accumulator(identity), population(population), op(op),
          idempotent(idempotent)
    {
    }

    /** Fold one more sampled element into the accumulator. */
    void
    consume(const T &value)
    {
        panicIf(consumed >= population,
                "SampledReducer consumed more than the population");
        accumulator = op(accumulator, value);
        ++consumed;
    }

    /** Number of elements consumed so far (the sample size i). */
    std::uint64_t sampleSize() const { return consumed; }

    /** True once every element has been consumed (output is precise). */
    bool precise() const { return consumed == population; }

    /** Raw accumulated value O_i (unweighted). */
    const T &raw() const { return accumulator; }

    /**
     * Weighted anytime estimate O'_i of the precise output. For
     * idempotent operators this is the raw accumulator; otherwise it is
     * raw() scaled by n/i (computed in double).
     */
    double
    estimate() const
    {
        if (idempotent)
            return static_cast<double>(accumulator);
        return static_cast<double>(accumulator) *
               sampleWeight(consumed, population);
    }

  private:
    T accumulator;
    std::uint64_t population;
    std::uint64_t consumed = 0;
    Op op;
    bool idempotent;
};

} // namespace anytime

#endif // ANYTIME_SAMPLING_REDUCER_HPP
