/**
 * @file
 * Deterministic replay of partitioned sweep writes.
 *
 * Multi-threaded sampling (paper Section IV-C1) hands each worker a
 * slice of the permutation sequence. Output-sampling stages (tree
 * block-fill) are order-sensitive *across* the slices: a coarse splat
 * from a later ordinal must not survive under a finer sample from an
 * earlier one. Each worker therefore logs its (ordinal, value) writes
 * during the sweep, and the version leader replays all logs in global
 * ascending ordinal order — reproducing exactly the writes a single
 * worker would have made, so every published version (not just the
 * final one) is bit-identical to the single-worker run.
 */

#ifndef ANYTIME_SAMPLING_REPLAY_HPP
#define ANYTIME_SAMPLING_REPLAY_HPP

#include <cstddef>
#include <cstdint>
#include <limits>
#include <vector>

namespace anytime {

/** One logged write: the global sample ordinal and its payload. */
template <typename V>
struct OrdinalWrite
{
    std::uint64_t ordinal = 0;
    V value{};
};

/**
 * Per-worker write log. Partition slices visit ordinals in increasing
 * order, so appending during the sweep keeps each log sorted — the
 * precondition for the k-way merge below.
 */
template <typename V>
using OrdinalLog = std::vector<OrdinalWrite<V>>;

/**
 * Replay @p logs in global ascending ordinal order: a k-way merge of
 * the (sorted) per-worker logs, invoking apply(ordinal, value) once
 * per logged write. Ties (possible only if partitions overlap, which
 * they never do for cyclic/block slices) resolve to the lower worker
 * index, keeping the merge fully deterministic regardless.
 */
template <typename V, typename Apply>
void
replayOrdinalLogs(const std::vector<const OrdinalLog<V> *> &logs,
                  Apply &&apply)
{
    constexpr std::uint64_t done = std::numeric_limits<std::uint64_t>::max();
    std::vector<std::size_t> heads(logs.size(), 0);
    for (;;) {
        std::uint64_t best = done;
        std::size_t winner = 0;
        for (std::size_t w = 0; w < logs.size(); ++w) {
            if (heads[w] >= logs[w]->size())
                continue;
            const std::uint64_t ordinal = (*logs[w])[heads[w]].ordinal;
            if (ordinal < best) {
                best = ordinal;
                winner = w;
            }
        }
        if (best == done)
            return;
        const auto &write = (*logs[winner])[heads[winner]++];
        apply(write.ordinal, write.value);
    }
}

} // namespace anytime

#endif // ANYTIME_SAMPLING_REPLAY_HPP
