#include "sampling/tree_permutation.hpp"

#include <algorithm>

#include "support/bits.hpp"
#include "support/error.hpp"

namespace anytime {

TreePermutation::TreePermutation(std::vector<std::uint64_t> extents_in)
    : extents(std::move(extents_in))
{
    fatalIf(extents.empty(), "TreePermutation: no dimensions");
    fatalIf(extents.size() > 16,
            "TreePermutation supports at most 16 dimensions");
    totalSize = 1;
    paddedSize = 1;
    allPow2 = true;
    for (std::uint64_t extent : extents) {
        fatalIf(extent == 0, "TreePermutation: zero extent");
        totalSize *= extent;
        const unsigned bits = (extent == 1) ? 0 : indexBits(extent);
        bitsPerDim.push_back(bits);
        paddedSize *= std::uint64_t(1) << bits;
        totalBits += bits;
        allPow2 = allPow2 && isPow2(extent);
    }

    // Fix the bit-assignment schedule once: ordinal bits are dealt
    // round-robin starting from the fastest-varying (last) dimension,
    // and each dimension fills its index from the most significant bit
    // downward (paper Figures 4 and 5).
    const unsigned dims = static_cast<unsigned>(extents.size());
    {
        unsigned received[16] = {};
        unsigned cursor = 0;
        blockCache.resize(static_cast<std::size_t>(totalBits + 1) * dims);
        for (unsigned bits_used = 0; bits_used <= totalBits;
             ++bits_used) {
            for (unsigned d = 0; d < dims; ++d) {
                const std::uint64_t padded_extent =
                    std::uint64_t(1) << bitsPerDim[d];
                blockCache[static_cast<std::size_t>(bits_used) * dims +
                           d] =
                    std::max<std::uint64_t>(
                        padded_extent >> received[d], 1);
            }
            if (bits_used == totalBits)
                break;
            unsigned d = 0;
            for (unsigned probe = 0; probe < dims; ++probe) {
                d = dims - 1 - ((cursor + probe) % dims);
                if (received[d] < bitsPerDim[d]) {
                    cursor = (cursor + probe + 1) % dims;
                    break;
                }
            }
            schedDim.push_back(static_cast<std::uint8_t>(d));
            schedBit.push_back(static_cast<std::uint8_t>(
                bitsPerDim[d] - 1 - received[d]));
            ++received[d];
        }
    }

    if (!allPow2) {
        table.reserve(totalSize);
        paddedOrdinals.reserve(totalSize);
        for (std::uint64_t i = 0; i < paddedSize; ++i) {
            const std::uint64_t flat = mapPadded(i);
            if (flat != totalSize) {
                table.push_back(flat);
                paddedOrdinals.push_back(i);
            }
        }
        panicIf(table.size() != totalSize,
                "tree permutation table has ", table.size(),
                " entries, expected ", totalSize);
    }
}

std::uint64_t
TreePermutation::mapPadded(std::uint64_t i) const
{
    const unsigned dims = static_cast<unsigned>(extents.size());

    // Scatter the set bits of the ordinal through the precomputed
    // schedule; the loop ends once the remaining ordinal bits are zero.
    std::uint64_t coords[16] = {};
    std::uint64_t remaining = i;
    for (unsigned j = 0; remaining != 0; ++j, remaining >>= 1) {
        if (remaining & 1)
            coords[schedDim[j]] |= std::uint64_t(1) << schedBit[j];
    }

    // Flatten row-major, rejecting coordinates outside true extents.
    std::uint64_t flat = 0;
    for (unsigned d = 0; d < dims; ++d) {
        if (coords[d] >= extents[d])
            return totalSize;
        flat = flat * extents[d] + coords[d];
    }
    return flat;
}

std::uint64_t
TreePermutation::map(std::uint64_t i) const
{
    panicIf(i >= totalSize, "tree permutation ordinal ", i,
            " out of range ", totalSize);
    if (allPow2)
        return mapPadded(i);
    return table[i];
}

unsigned
TreePermutation::levelAfter(std::uint64_t samples) const
{
    if (samples <= 1)
        return 0;
    // Number of low ordinal bits fully swept by `samples` samples.
    unsigned bits_used = ilog2(samples);
    bits_used = std::min(bits_used, totalBits);

    // Count how many of those bits each dimension received; report the
    // deepest (fastest-refining) dimension.
    unsigned received[16] = {};
    unsigned level = 0;
    for (unsigned j = 0; j < bits_used; ++j)
        level = std::max(level, ++received[schedDim[j]]);
    return level;
}

std::uint64_t
TreePermutation::blockExtent(std::uint64_t ordinal, unsigned dim) const
{
    panicIf(ordinal >= totalSize, "tree block ordinal ", ordinal,
            " out of range ", totalSize);
    panicIf(dim >= extents.size(), "tree block dimension out of range");
    const std::uint64_t padded =
        allPow2 ? ordinal : paddedOrdinals[ordinal];
    const unsigned bits_used = (padded == 0) ? 0 : ilog2(padded) + 1;
    return blockCache[static_cast<std::size_t>(bits_used) *
                          extents.size() +
                      dim];
}

std::vector<std::uint64_t>
TreePermutation::blockExtents(std::uint64_t ordinal) const
{
    std::vector<std::uint64_t> block(extents.size());
    for (unsigned d = 0; d < extents.size(); ++d)
        block[d] = blockExtent(ordinal, d);
    return block;
}

std::unique_ptr<Permutation>
TreePermutation::clone() const
{
    return std::make_unique<TreePermutation>(*this);
}

} // namespace anytime
