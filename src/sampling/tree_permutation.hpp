/**
 * @file
 * N-dimensional tree (bit-reverse) sampling permutation.
 *
 * Paper Section III-B2, Figures 4 and 5. The data set is visited at
 * progressively increasing resolution: for a 2-D image, after 4 samples
 * a 2x2 grid has been visited, after 16 samples a 4x4 grid, and so on.
 * The permutation de-interleaves the bits of the set index into one
 * sub-index per dimension and reverses each sub-index.
 *
 * Arbitrary (non-power-of-two) extents are supported by walking the
 * padded power-of-two domain and skipping out-of-range coordinates; in
 * that case the forward table is precomputed at construction. When every
 * extent is a power of two, map() is computed in closed form with no
 * table.
 */

#ifndef ANYTIME_SAMPLING_TREE_PERMUTATION_HPP
#define ANYTIME_SAMPLING_TREE_PERMUTATION_HPP

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "sampling/permutation.hpp"

namespace anytime {

/**
 * Bit-reverse ("tree") permutation over an N-dimensional index space.
 *
 * Ordinal i is interpreted in the padded power-of-two domain: its bits
 * are de-interleaved round-robin across dimensions (dimension 0 gets bit
 * 0, dimension 1 gets bit 1, ...), each per-dimension index is
 * bit-reversed, and the resulting coordinates are flattened in row-major
 * order over the true extents. Coordinates falling outside the true
 * extents are skipped, preserving bijectivity over [0, n).
 */
class TreePermutation : public Permutation
{
  public:
    /**
     * Build a tree permutation.
     *
     * @param extents Extent of each dimension, slowest-varying first
     *                (row-major: extents.back() is contiguous).
     */
    explicit TreePermutation(std::vector<std::uint64_t> extents);

    /** Convenience 1-D constructor. */
    static TreePermutation
    oneDim(std::uint64_t n)
    {
        return TreePermutation(std::vector<std::uint64_t>{n});
    }

    /** Convenience 2-D (rows x cols) constructor. */
    static TreePermutation
    twoDim(std::uint64_t rows, std::uint64_t cols)
    {
        return TreePermutation(std::vector<std::uint64_t>{rows, cols});
    }

    std::uint64_t size() const override { return totalSize; }
    std::uint64_t map(std::uint64_t i) const override;
    std::string name() const override { return "tree"; }
    std::unique_ptr<Permutation> clone() const override;

    /** Extents of the permuted index space. */
    const std::vector<std::uint64_t> &dims() const { return extents; }

    /**
     * Resolution level reached after @p samples samples: the base-2 log
     * of the number of distinct per-dimension positions covered along
     * the fastest-refining dimension. Used by benches to report
     * "2^k x 2^k image sampled" milestones.
     */
    unsigned levelAfter(std::uint64_t samples) const;

    /**
     * Extent, per dimension, of the unrefined block that the sample at
     * @p ordinal represents. The sample's own coordinates (from map())
     * are the block origin; until later samples refine it, the whole
     * block can be filled with the sampled value to reconstruct a
     * complete low-resolution output (progressive block fill).
     */
    std::vector<std::uint64_t> blockExtents(std::uint64_t ordinal) const;

    /**
     * Single-dimension variant of blockExtents(): the extent along
     * dimension @p dim of the block refined by sample @p ordinal.
     * O(1) (cached per bit depth); the hot path for block fill.
     */
    std::uint64_t blockExtent(std::uint64_t ordinal, unsigned dim) const;

  private:
    /** Closed-form mapping in the padded domain; returns row-major
     *  flattened coordinates or size() if out of the true extents. */
    std::uint64_t mapPadded(std::uint64_t i) const;

    std::vector<std::uint64_t> extents;
    std::vector<unsigned> bitsPerDim;
    std::uint64_t totalSize = 0;
    std::uint64_t paddedSize = 0;
    unsigned totalBits = 0;
    bool allPow2 = false;
    /** Forward table, built only when some extent is not a power of 2. */
    std::vector<std::uint64_t> table;
    /** Padded-domain ordinal per table ordinal (non-power-of-2 only). */
    std::vector<std::uint64_t> paddedOrdinals;
    /** Block extents cached per consumed-bit count: entry
     *  [bits_used * dims + d] is the dim-d extent. */
    std::vector<std::uint64_t> blockCache;
    /** Bit-assignment schedule: ordinal bit j lands in dimension
     *  schedDim[j] at bit position schedBit[j]. */
    std::vector<std::uint8_t> schedDim;
    std::vector<std::uint8_t> schedBit;
};

} // namespace anytime

#endif // ANYTIME_SAMPLING_TREE_PERMUTATION_HPP
