#include "service/brownout.hpp"

#include <algorithm>
#include <exception>

#include "fault/fault.hpp"
#include "obs/trace.hpp"
#include "support/error.hpp"

namespace anytime {

BrownoutController::BrownoutController(BrownoutConfig config,
                                       obs::MetricsRegistry &registry)
    : configuration(config)
{
    for (std::size_t i = 0; i < configuration.levels.size(); ++i) {
        const BrownoutLevelPolicy &policy = configuration.levels[i];
        fatalIf(policy.precisionBitsCeiling < 1 ||
                    policy.precisionBitsCeiling > 8,
                "brownout: precisionBitsCeiling out of [1, 8] at L", i);
        fatalIf(policy.hardShedPercent > 100,
                "brownout: hardShedPercent above 100 at L", i);
    }
    for (std::size_t i = 0; i < configuration.enterPressure.size(); ++i)
        fatalIf(configuration.exitPressure[i] >=
                    configuration.enterPressure[i],
                "brownout: exitPressure must sit below enterPressure "
                "at L",
                i + 1, " or the level flaps");
    levelGauge = &registry.gauge(
        "anytime_brownout_level",
        "Current brownout level (0 = normal, 3 = survival).");
    transitionsCounter = &registry.counter(
        "anytime_brownout_transitions_total",
        "Brownout level transitions (either direction).");
    shedCounter = &registry.counter(
        "anytime_brownout_shed_total",
        "Requests hard-shed by the brownout controller (L3).");
    gangCappedCounter = &registry.counter(
        "anytime_brownout_gang_capped_total",
        "Requests whose stage-worker gang was capped by brownout.");
    levelGauge->set(0.0);
}

double
BrownoutController::pressureScore(const Signals &signals) const
{
    // Three normalized load signals, combined by max: any one of them
    // saturating is enough to justify degradation (a build-bound server
    // can brown out with an empty queue, and vice versa).
    const double queue = std::max(0.0, signals.queueFraction);
    const double miss =
        configuration.missRateReference > 0.0
            ? signals.missRate / configuration.missRateReference
            : 0.0;
    const double budget =
        std::chrono::duration<double>(configuration.buildLatencyBudget)
            .count();
    const double build =
        budget > 0.0 ? signals.p99BuildSeconds / budget : 0.0;
    return std::max({queue, miss, build});
}

bool
BrownoutController::evaluate(Stopwatch::Clock::time_point now,
                             const Signals &signals)
{
    if (!configuration.enabled)
        return false;
    if (lastEval.time_since_epoch().count() != 0 &&
        now - lastEval < configuration.evalInterval)
        return false;
    lastEval = now;

    const double pressure = pressureScore(signals);
    lastPressure.store(pressure, std::memory_order_relaxed);
    const int level = currentLevel.load(std::memory_order_relaxed);

    int next = level;
    if (level < 3 &&
        pressure >=
            configuration.enterPressure[static_cast<std::size_t>(
                level)]) {
        belowStreak = 0;
        if (++aboveStreak >= configuration.enterHysteresis)
            next = level + 1;
    } else if (level > 0 &&
               pressure <
                   configuration.exitPressure[static_cast<std::size_t>(
                       level - 1)]) {
        aboveStreak = 0;
        if (++belowStreak >= configuration.exitHysteresis)
            next = level - 1;
    } else {
        aboveStreak = 0;
        belowStreak = 0;
    }
    if (next == level)
        return false;

    try {
        // Chaos site: a thrown fault at a level transition must be
        // absorbed fail-static — the level holds, the pressure signal
        // persists, and a later evaluation retries the move.
        ANYTIME_FAULT_POINT("service.brownout", levelName(next),
                            ++transitionOrdinal);
    } catch (const std::exception &) {
        return false;
    }
    aboveStreak = 0;
    belowStreak = 0;
    currentLevel.store(next, std::memory_order_relaxed);
    transitionsTotal.fetch_add(1, std::memory_order_relaxed);
    levelGauge->set(static_cast<double>(next));
    transitionsCounter->add();
    obs::traceInstant("brownout.transition", "service",
                      {"level", static_cast<double>(next)},
                      {"pressure", pressure});
    return true;
}

bool
BrownoutController::shouldShed(std::uint64_t requestId) const
{
    const BrownoutLevelPolicy active = policy();
    if (active.hardShedPercent == 0)
        return false;
    // Seeded, id-keyed verdict: reproducible under a fixed submission
    // order, uncorrelated across neighbouring ids (no shed convoys).
    const std::uint64_t draw =
        fault::mix64(configuration.seed ^ requestId) % 100;
    return draw < active.hardShedPercent;
}

void
BrownoutController::noteShed()
{
    shedCounter->add();
}

void
BrownoutController::noteGangCapped()
{
    gangCappedCounter->add();
}

const char *
BrownoutController::levelName(int level)
{
    switch (level) {
      case 0:
        return "L0";
      case 1:
        return "L1";
      case 2:
        return "L2";
      case 3:
        return "L3";
      default:
        return "L?";
    }
}

} // namespace anytime
