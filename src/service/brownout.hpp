/**
 * @file
 * BrownoutController: quality-aware graceful degradation under load.
 *
 * Under overload the server used to make a binary choice per request:
 * full service or an EWMA-predicted shed. The anytime model offers a
 * whole spectrum in between — every knob that trades answer quality
 * for capacity (gang width, digit-plane precision, coalescing window,
 * intermediate-version fan-out) can be turned *before* any request is
 * refused outright. This controller walks that spectrum as discrete
 * brownout levels:
 *
 *   L0 normal    — no degradation; admission behaves as before.
 *   L1 elevated  — cap stage-worker gangs, trim precision ceilings.
 *   L2 degraded  — narrower gangs, lower precision, widen the
 *                  coalescing window (near-identical requests share one
 *                  pipeline), stop fanning out intermediate versions.
 *   L3 survival  — everything above plus a deterministic fraction of
 *                  new requests hard-shed at admission.
 *
 * Level transitions are driven by three load signals — queue-depth
 * fraction, deadline-miss EWMA, and p99 pipeline-build latency — folded
 * into one pressure score, with enter/exit hysteresis (consecutive
 * evaluations above/below the thresholds) so the level never flaps on a
 * single noisy sample. All shed decisions are seeded and deterministic
 * (fault::mix64 over the request id), so an overload replay produces
 * the same accounting every run.
 *
 * Threading: evaluate() and the note*() accounting hooks are called
 * under the owning AnytimeServer's mutex; level()/policy()/pressure()
 * are lock-free atomic reads for the network layer and debug endpoints.
 */

#ifndef ANYTIME_SERVICE_BROWNOUT_HPP
#define ANYTIME_SERVICE_BROWNOUT_HPP

#include <array>
#include <atomic>
#include <chrono>
#include <cstdint>

#include "obs/metrics.hpp"
#include "support/stopwatch.hpp"

namespace anytime {

/** Degradation knobs applied while a brownout level is active. */
struct BrownoutLevelPolicy
{
    /** Cap on a request's declared stage-worker gang (0 = no cap).
     *  Applied where pipelines are configured (the net door, bench
     *  request makers) — narrower gangs mean more EDF lanes. */
    unsigned maxStageWorkers = 0;
    /** Ceiling on QuantizedKernel digit planes (1..8; 8 = full
     *  precision). Surfaced to factories via the owning server so
     *  brownout trades least-significant bits first (paper §V). */
    unsigned precisionBitsCeiling = 8;
    /** Coalescing window in microseconds (0 = exact-match only): the
     *  net door quantizes request deadlines down to this granularity
     *  so near-identical requests share one pipeline execution. */
    std::uint64_t coalesceWindowMicros = 0;
    /** Drop droppable intermediate versions at the net door (finals
     *  and DONE are never droppable). */
    bool dropIntermediates = false;
    /** Percent of new requests hard-shed at admission (deterministic
     *  per request id). The last resort, not the first. */
    unsigned hardShedPercent = 0;
};

/** Controller tuning; defaults degrade cheapest-quality-first. */
struct BrownoutConfig
{
    /** Off by default: existing deployments keep binary EWMA shedding
     *  until they opt in. */
    bool enabled = false;

    /** Pressure thresholds to *enter* L1/L2/L3 (index = level - 1). */
    std::array<double, 3> enterPressure{0.50, 0.75, 0.90};
    /** Pressure thresholds to *exit back below* L1/L2/L3. Must sit
     *  below the matching enterPressure or the level flaps. */
    std::array<double, 3> exitPressure{0.30, 0.55, 0.75};
    /** Consecutive evaluations above enterPressure before escalating. */
    unsigned enterHysteresis = 2;
    /** Consecutive evaluations below exitPressure before recovering
     *  (recovery is deliberately slower than escalation). */
    unsigned exitHysteresis = 4;
    /** Minimum spacing between evaluations (the scheduler loop runs on
     *  events; this bounds how often the level can move). */
    std::chrono::nanoseconds evalInterval = std::chrono::milliseconds(5);

    /** Seed of the deterministic hard-shed decision sequence. */
    std::uint64_t seed = 1;

    /** Deadline-miss EWMA that maps to full pressure (1.0). */
    double missRateReference = 0.5;
    /** p99 build latency that maps to full pressure. */
    std::chrono::nanoseconds buildLatencyBudget =
        std::chrono::milliseconds(50);

    /** Per-level degradation policies (index = level). L0 must stay
     *  all-defaults: it is the "no degradation" contract. */
    std::array<BrownoutLevelPolicy, 4> levels{{
        {},
        {.maxStageWorkers = 2, .precisionBitsCeiling = 6},
        {.maxStageWorkers = 1,
         .precisionBitsCeiling = 4,
         .coalesceWindowMicros = 20'000,
         .dropIntermediates = true},
        {.maxStageWorkers = 1,
         .precisionBitsCeiling = 2,
         .coalesceWindowMicros = 50'000,
         .dropIntermediates = true,
         .hardShedPercent = 50},
    }};
};

/** Discrete-level brownout state machine (see file comment). */
class BrownoutController
{
  public:
    /** Load signals sampled by the owning server each evaluation. */
    struct Signals
    {
        /** pending / maxQueueDepth, in [0, 1+]. */
        double queueFraction = 0.0;
        /** Deadline-miss EWMA in [0, 1] (expired + served-empty). */
        double missRate = 0.0;
        /** p99 of recent pipeline-build wall times, seconds. */
        double p99BuildSeconds = 0.0;
    };

    BrownoutController(BrownoutConfig config,
                       obs::MetricsRegistry &registry);

    /**
     * Fold @p signals into the pressure score and move the level at
     * most one step (rate-limited by evalInterval, gated by
     * hysteresis). Returns true when the level changed. Passes the
     * `service.brownout` fault site on every transition; an injected
     * throw aborts that transition (fail-static — the level holds and
     * a later evaluation retries), never escapes.
     */
    bool evaluate(Stopwatch::Clock::time_point now,
                  const Signals &signals);

    /** Current level in [0, 3]. Lock-free. */
    int level() const
    {
        return currentLevel.load(std::memory_order_relaxed);
    }

    /** The active level's policy (by value: the level may move). */
    BrownoutLevelPolicy policy() const
    {
        return configuration.levels[static_cast<std::size_t>(level())];
    }

    /** Last computed pressure score (debug endpoints). Lock-free. */
    double pressure() const
    {
        return lastPressure.load(std::memory_order_relaxed);
    }

    /** Level transitions so far. Lock-free. */
    std::uint64_t transitions() const
    {
        return transitionsTotal.load(std::memory_order_relaxed);
    }

    /**
     * Deterministic hard-shed verdict for @p requestId at the current
     * level: a seeded hash of the id against the level's
     * hardShedPercent. Same seed + same id => same verdict, every run.
     */
    bool shouldShed(std::uint64_t requestId) const;

    /** Count one brownout hard shed (admission). Any thread. */
    void noteShed();

    /** Count one gang capped to the level's maxStageWorkers. */
    void noteGangCapped();

    const BrownoutConfig &config() const { return configuration; }

    /** Human-readable level name ("L0".."L3"). */
    static const char *levelName(int level);

  private:
    double pressureScore(const Signals &signals) const;

    BrownoutConfig configuration;

    /** Only evaluate() mutates these (serialized by the owner). */
    Stopwatch::Clock::time_point lastEval{};
    unsigned aboveStreak = 0;
    unsigned belowStreak = 0;
    std::uint64_t transitionOrdinal = 0;

    std::atomic<int> currentLevel{0};
    std::atomic<double> lastPressure{0.0};
    std::atomic<std::uint64_t> transitionsTotal{0};

    obs::Gauge *levelGauge = nullptr;
    obs::Counter *transitionsCounter = nullptr;
    obs::Counter *shedCounter = nullptr;
    obs::Counter *gangCappedCounter = nullptr;
};

} // namespace anytime

#endif // ANYTIME_SERVICE_BROWNOUT_HPP
