#include "service/metrics.hpp"

#include <algorithm>
#include <cmath>

#include "support/error.hpp"

namespace anytime {

const char *
serviceStatusName(ServiceStatus status)
{
    switch (status) {
      case ServiceStatus::preciseCompleted:
        return "precise";
      case ServiceStatus::deadlineApprox:
        return "deadline-approx";
      case ServiceStatus::qualityStopped:
        return "quality-stop";
      case ServiceStatus::shedQueueFull:
        return "shed-queue-full";
      case ServiceStatus::shedPredictedMiss:
        return "shed-predicted-miss";
      case ServiceStatus::expired:
        return "expired";
      case ServiceStatus::failed:
        return "failed";
      case ServiceStatus::cancelled:
        return "cancelled";
      case ServiceStatus::degraded:
        return "degraded";
      case ServiceStatus::shedCircuitOpen:
        return "shed-circuit-open";
      case ServiceStatus::shedBrownout:
        return "shed-brownout";
    }
    return "unknown";
}

void
ServiceMetrics::record(const ServiceResponse &response)
{
    ++totalCount;
    if (!std::isnan(response.firstVersionSeconds))
        firstVersionLatencies.observe(response.firstVersionSeconds);
    if (response.deadlineMet)
        ++deadlineHits;
    switch (response.status) {
      case ServiceStatus::preciseCompleted:
        ++preciseCount;
        [[fallthrough]];
      case ServiceStatus::deadlineApprox:
      case ServiceStatus::qualityStopped:
        ++servedCount;
        servedLatencies.observe(response.totalSeconds);
        if (!std::isnan(response.quality)) {
            qualitySum += response.quality;
            ++qualitySamples;
        }
        break;
      case ServiceStatus::shedQueueFull:
      case ServiceStatus::shedPredictedMiss:
      case ServiceStatus::shedCircuitOpen:
      case ServiceStatus::shedBrownout:
        ++shedCount;
        break;
      case ServiceStatus::expired:
        ++expiredCount;
        break;
      case ServiceStatus::failed:
        ++failedCount;
        break;
      case ServiceStatus::cancelled:
        ++cancelledCount;
        break;
      case ServiceStatus::degraded:
        // Its own bucket: the client got a usable (degraded) answer,
        // but the precise path was lost to a fault. Latency still
        // matters to the aggregate distribution.
        ++degradedCount;
        servedLatencies.observe(response.totalSeconds);
        if (!std::isnan(response.quality)) {
            qualitySum += response.quality;
            ++qualitySamples;
        }
        break;
    }
}

double
ServiceMetrics::hitRate() const
{
    if (totalCount == 0)
        return 0.0;
    return static_cast<double>(deadlineHits) /
           static_cast<double>(totalCount);
}

double
ServiceMetrics::latencyPercentile(double p) const
{
    fatalIf(p < 0.0 || p > 100.0, "latencyPercentile: p out of range: ",
            p);
    return servedLatencies.percentile(p);
}

double
ServiceMetrics::firstVersionPercentile(double p) const
{
    fatalIf(p < 0.0 || p > 100.0,
            "firstVersionPercentile: p out of range: ", p);
    if (firstVersionLatencies.count() == 0)
        return std::numeric_limits<double>::quiet_NaN();
    return firstVersionLatencies.percentile(p);
}

double
ServiceMetrics::meanQuality() const
{
    if (qualitySamples == 0)
        return std::numeric_limits<double>::quiet_NaN();
    return qualitySum / static_cast<double>(qualitySamples);
}

SeriesTable
ServiceMetrics::table(const std::string &title) const
{
    SeriesTable result;
    result.title = title;
    result.columns = {"requests", "served",    "precise", "shed",
                      "expired",  "failed",    "cancelled", "degraded",
                      "hit_rate", "p50_ms",    "p95_ms",    "p99_ms",
                      "t90_first_ms", "mean_quality"};
    const double t90_first = firstVersionPercentile(90);
    result.rows.push_back(
        {std::to_string(totalCount), std::to_string(servedCount),
         std::to_string(preciseCount), std::to_string(shedCount),
         std::to_string(expiredCount), std::to_string(failedCount),
         std::to_string(cancelledCount), std::to_string(degradedCount),
         formatDouble(hitRate(), 3),
         formatDouble(latencyPercentile(50) * 1e3, 2),
         formatDouble(latencyPercentile(95) * 1e3, 2),
         formatDouble(latencyPercentile(99) * 1e3, 2),
         std::isnan(t90_first) ? "-" : formatDouble(t90_first * 1e3, 2),
         formatDouble(meanQuality(), 3)});
    return result;
}

} // namespace anytime
