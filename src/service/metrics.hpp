/**
 * @file
 * Aggregate service metrics: latency percentiles, deadline-hit rate,
 * shed/failure accounting, and mean quality at deadline.
 *
 * The server records every response; snapshots are exported through the
 * same SeriesTable machinery the figure benches use, so service-level
 * results print (and CSV-dump) like every other experiment in the repo.
 *
 * Served latencies are folded into a bounded log-bucketed histogram
 * (obs/histogram.hpp) rather than stored per sample, so memory stays
 * constant under sustained load; percentiles keep their nearest-rank
 * meaning to within one bucket (and p=0 / p=100 / single-sample cases
 * stay exact thanks to the histogram's exact min/max envelope).
 */

#ifndef ANYTIME_SERVICE_METRICS_HPP
#define ANYTIME_SERVICE_METRICS_HPP

#include <cstddef>

#include "harness/report.hpp"
#include "obs/histogram.hpp"
#include "service/request.hpp"

namespace anytime {

/** Accumulates per-response observations; copyable snapshot type. */
class ServiceMetrics
{
  public:
    /** Fold one response into the aggregates. */
    void record(const ServiceResponse &response);

    /** Requests responded to. Accounting identity:
     *  total == served + shed + expired + failed + cancelled
     *           + degraded. */
    std::size_t total() const { return totalCount; }

    /** Requests that were dispatched and ran. */
    std::size_t served() const { return servedCount; }

    /** Requests shed by admission control (both shed statuses). */
    std::size_t shed() const { return shedCount; }

    /** Requests whose deadline passed before dispatch. */
    std::size_t expired() const { return expiredCount; }

    /** Requests whose pipeline failed. */
    std::size_t failed() const { return failedCount; }

    /** Requests cancelled by server shutdown before completion. */
    std::size_t cancelled() const { return cancelledCount; }

    /** Requests salvaged degraded after a pipeline fault. */
    std::size_t degraded() const { return degradedCount; }

    /** Served requests that ran to the precise output. */
    std::size_t precise() const { return preciseCount; }

    /** Fraction of all requests that met their deadline with output. */
    double hitRate() const;

    /**
     * Latency percentile in seconds over *served* requests
     * (submission to response). @p p in [0, 100]. Answered from the
     * bounded histogram: one-bucket resolution, exact at p=0 (min),
     * p=100 (max), and when only one sample was recorded.
     */
    double latencyPercentile(double p) const;

    /** Mean progress-probe quality over served requests with a probe. */
    double meanQuality() const;

    /**
     * First-version latency percentile in seconds (dispatch to first
     * streamed version) over requests that streamed at least one
     * version. NaN when nothing streamed (factories without an
     * attachSink hook never report first-version times). t90 of this
     * distribution is the serving-side anchor the network bench
     * compares its over-the-wire t90-to-first-version against.
     */
    double firstVersionPercentile(double p) const;

    /** Requests that reported a first-version latency. */
    std::size_t firstVersionSamples() const
    {
        return firstVersionLatencies.count();
    }

    /** Printable summary (harness report format). */
    SeriesTable table(const std::string &title) const;

    /** The served-latency distribution (seconds). */
    const obs::LogHistogram &latencies() const { return servedLatencies; }

  private:
    std::size_t totalCount = 0;
    std::size_t servedCount = 0;
    std::size_t shedCount = 0;
    std::size_t expiredCount = 0;
    std::size_t failedCount = 0;
    std::size_t cancelledCount = 0;
    std::size_t degradedCount = 0;
    std::size_t preciseCount = 0;
    std::size_t deadlineHits = 0;
    double qualitySum = 0.0;
    std::size_t qualitySamples = 0;
    /** Bounded log-bucketed latency distribution (seconds). */
    obs::LogHistogram servedLatencies;
    /** Dispatch-to-first-streamed-version distribution (seconds). */
    obs::LogHistogram firstVersionLatencies;
};

} // namespace anytime

#endif // ANYTIME_SERVICE_METRICS_HPP
