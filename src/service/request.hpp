/**
 * @file
 * Request/response model of the anytime serving runtime.
 *
 * A request is a (pipeline factory, deadline, min quality) tuple. The
 * factory is invoked at dispatch time on the scheduler thread and
 * returns a PreparedPipeline: the automaton to run plus optional
 * progress/version probes. Output values stay typed on the client side:
 * the factory closes over the application's output buffer (e.g. the
 * bundle returned by makeConv2dAutomaton), so the service never needs
 * to know the output type — it only manages execution, deadlines, and
 * quality-of-result metadata.
 *
 * The anytime contract is what makes deadline serving possible at all:
 * because every automaton holds a valid approximate output at every
 * moment, the server can answer *any* request at its deadline with
 * whatever the pipeline has published, and slack time buys accuracy
 * instead of being the difference between an answer and a timeout.
 */

#ifndef ANYTIME_SERVICE_REQUEST_HPP
#define ANYTIME_SERVICE_REQUEST_HPP

#include <chrono>
#include <cstdint>
#include <functional>
#include <limits>
#include <memory>
#include <string>
#include <vector>

#include "core/automaton.hpp"

namespace anytime {

/**
 * One published version, as seen by a streaming subscriber.
 *
 * The payload is an optional serialized rendering of the version (the
 * factory decides the encoding — the service never interprets it);
 * sinks that only need timing/metadata (e.g. the server's first-version
 * clock) leave it untouched. Shared so a fan-out to many subscribers
 * never copies the bytes.
 */
struct VersionUpdate
{
    /** Version number (1-based, monotone per request). */
    std::uint64_t version = 0;
    /** True iff this is the terminal version (precise or degraded). */
    bool final = false;
    /** True iff the producing buffer was degraded (fault containment). */
    bool degraded = false;
    /** Quality estimate in [0, 1] at this version; NaN if unknown. */
    double quality = std::numeric_limits<double>::quiet_NaN();
    /** Serialized version payload; null when the sink is metadata-only. */
    std::shared_ptr<const std::string> payload;
    /** Stage credited with producing this version ("" = unknown); set
     *  by the factory's sink adapter, consumed by the QoR timeline
     *  recorder's per-stage quality-gain attribution. */
    std::string stage;
};

/**
 * Per-version subscription callback. Invoked on the publishing worker
 * thread, after the version is visible in the buffer, once per
 * published version in order. Must be fast (it sits on the pipeline's
 * publish path) and must not call back into the server.
 */
using VersionSink = std::function<void(const VersionUpdate &update)>;

/** An automaton instantiated for one request, plus its QoR probes. */
struct PreparedPipeline
{
    /** The pipeline to execute (not yet started). */
    std::unique_ptr<Automaton> automaton;

    /**
     * Optional progress/quality probe in [0, 1]: e.g. the fraction of
     * the output sweep published. Sampled by the scheduler to drive
     * min-quality early stopping and reported in the response. Must be
     * cheap and thread-safe against the running pipeline (reading a
     * VersionedBuffer snapshot is both).
     */
    std::function<double()> progress;

    /**
     * Optional published-version counter for the application output.
     * When absent, the server falls back to the maximum version over
     * all of the automaton's buffers.
     */
    std::function<std::uint64_t()> versionCount;

    /**
     * Optional streaming hook: wire @p sink to receive every version
     * the pipeline publishes from start() on. Called at most once, by
     * the server, after the pipeline is built and before it starts
     * (typically implemented with VersionedBuffer::addObserver on the
     * output buffer, encoding each snapshot into a VersionUpdate).
     * When present the server always attaches a sink — it wraps the
     * request's own versionSink (if any) with first-version timing, so
     * ServiceResponse::firstVersionSeconds is populated.
     */
    std::function<void(VersionSink sink)> attachSink;
};

struct ServiceResponse;

/** One unit of service work. */
struct ServiceRequest
{
    /** Label for diagnostics and metrics breakdowns. */
    std::string name;

    /** Builds the pipeline; called once, at dispatch time. */
    std::function<PreparedPipeline()> factory;

    /** Response-by deadline, relative to submission time. */
    std::chrono::nanoseconds deadline{std::chrono::seconds(1)};

    /**
     * Minimum acceptable quality in progress units [0, 1]. Zero means
     * "run until the deadline (or precise)". When positive and the
     * server has a backlog, the request is stopped as soon as its
     * progress probe reaches this value, freeing workers for queued
     * requests (graceful degradation to the client's stated floor).
     */
    double minQuality = 0.0;

    /**
     * Declared gang size: the worker count the factory's pipeline will
     * ask for (its stages' intra-stage partitions, Section IV-C1).
     * Admission uses it to predict queueing delay before the pipeline
     * is built — a wide gang occupies more of the pool per request —
     * and requests declaring more workers than the pool holds are shed
     * at submit instead of failing after a wasted build. Purely a
     * hint for prediction; dispatch always sizes from the built
     * pipeline itself.
     */
    unsigned stageWorkers = 1;

    /**
     * Trace context for the request (see obs/trace.hpp). Zero asks the
     * server to mint one at submit; a nonzero id (e.g. propagated off
     * the wire by the network front-end) stamps every span the request
     * produces — scheduler, builder, stage workers — so the whole
     * cross-layer execution stitches into one trace.
     */
    std::uint64_t traceId = 0;

    /**
     * Optional per-version subscription (the network fan-out hook):
     * receives every version the pipeline publishes, in order, on the
     * publishing worker thread. Requires the factory to provide
     * PreparedPipeline::attachSink; silently unused otherwise.
     */
    VersionSink versionSink;

    /**
     * Optional completion hook, fired exactly once, immediately after
     * the response future is fulfilled, on whatever thread fulfilled it
     * (the scheduler thread, or the submitter's thread for immediate
     * sheds). Runs under the server lock: it must be fast and must not
     * call back into the server. This is how a transport layer learns
     * the terminal disposition without blocking on the future.
     */
    std::function<void(const ServiceResponse &response)> onComplete;
};

/** Terminal disposition of a request. */
enum class ServiceStatus
{
    /** Ran to the precise output before the deadline. */
    preciseCompleted,
    /** Stopped at the deadline; response carries the best snapshot. */
    deadlineApprox,
    /** Stopped early at minQuality to free capacity for the backlog. */
    qualityStopped,
    /** Shed at admission: queue at capacity. */
    shedQueueFull,
    /** Shed at admission: predicted to miss its deadline in queue. */
    shedPredictedMiss,
    /** Deadline passed before dispatch (e.g. a zero deadline). */
    expired,
    /** A pipeline stage threw; see ServiceResponse::failures. */
    failed,
    /** Cancelled before completion: server shutdown, or an explicit
     *  AnytimeServer::cancel() (the disconnect-as-cancel path — a
     *  streaming client that went away while its request was queued or
     *  running). */
    cancelled,
    /**
     * A stage faulted but the degradation policy salvaged the request:
     * the response carries the pipeline's last good published version,
     * flagged degraded (quarantine fault policy, output present, and
     * the client's minQuality floor met). Its own accounting bucket —
     * not "served" (the precise path was lost) and not "failed" (the
     * client got a usable answer).
     */
    degraded,
    /** Shed at admission: this pipeline's circuit breaker is open
     *  after repeated failures (cooling down). */
    shedCircuitOpen,
    /** Shed at admission by the brownout controller in survival mode
     *  (L3): a deterministic, seeded fraction of new requests is
     *  refused after every cheaper degradation knob is already maxed.
     *  Appended last — the enum value crosses the wire as a u8. */
    shedBrownout,
};

/** True if the request actually executed (was dispatched and ran). */
constexpr bool
servedStatus(ServiceStatus status)
{
    return status == ServiceStatus::preciseCompleted ||
           status == ServiceStatus::deadlineApprox ||
           status == ServiceStatus::qualityStopped;
}

/** Human-readable status name. */
const char *serviceStatusName(ServiceStatus status);

/** What the client gets back: QoR metadata for the snapshot it holds. */
struct ServiceResponse
{
    ServiceStatus status = ServiceStatus::cancelled;
    /** True iff every stage published its precise output. */
    bool reachedPrecise = false;
    /** Output versions published by deadline (0 = empty-quality). */
    std::uint64_t versionsPublished = 0;
    /** Last progress-probe sample in [0, 1]; NaN if no probe. */
    double quality = std::numeric_limits<double>::quiet_NaN();
    /** Seconds from submission to dispatch (queueing delay). */
    double queueSeconds = 0.0;
    /**
     * Seconds from dispatch to the first published version, as seen by
     * the server's sink wrapper; NaN when no version streamed (nothing
     * published, or the factory provided no attachSink). This is the
     * service-side half of the network t90-to-first-version metric.
     */
    double firstVersionSeconds = std::numeric_limits<double>::quiet_NaN();
    /** Seconds the pipeline actually ran. */
    double execSeconds = 0.0;
    /** Seconds from submission to response. */
    double totalSeconds = 0.0;
    /**
     * True iff the client got a usable output by its deadline: the
     * request was served (or salvaged degraded) and at least one
     * version was published. This is the SLO the aggregate
     * deadline-hit rate is computed from.
     */
    bool deadlineMet = false;
    /**
     * True iff the snapshot the client holds is degraded: a stage was
     * quarantined or a sweep gang lost a worker, so the value is the
     * last good approximate version, not the precise output.
     */
    bool degraded = false;
    /** Stage failure messages when status == failed or degraded. */
    std::vector<std::string> failures;
};

} // namespace anytime

#endif // ANYTIME_SERVICE_REQUEST_HPP
