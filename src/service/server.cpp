#include "service/server.hpp"

#include <algorithm>
#include <cmath>
#include <cstdlib>

#include "fault/fault.hpp"
#include "obs/flight.hpp"
#include "obs/trace.hpp"
#include "support/error.hpp"

namespace anytime {

namespace {

double
secondsBetween(Stopwatch::Clock::time_point from,
               Stopwatch::Clock::time_point to)
{
    return std::chrono::duration<double>(to - from).count();
}

/** Fallback version probe: most-published buffer in the automaton. */
std::uint64_t
maxBufferVersion(const Automaton &automaton)
{
    std::uint64_t best = 0;
    for (const auto &buffer : automaton.allBuffers())
        best = std::max(best, buffer->version());
    return best;
}

} // namespace

AnytimeServer::AnytimeServer(ServerConfig config)
    : configuration(config), workers(config.workers)
{
    fatalIf(configuration.maxQueueDepth == 0,
            "AnytimeServer: zero queue depth admits nothing");
    obs::MetricsRegistry &registry =
        configuration.metricsRegistry != nullptr
            ? *configuration.metricsRegistry
            : obs::defaultRegistry();
    live.submitted = &registry.counter(
        "anytime_requests_submitted_total", "Requests submitted.");
    live.served = &registry.counter(
        "anytime_responses_served_total",
        "Requests that were dispatched and ran.");
    live.precise = &registry.counter(
        "anytime_responses_precise_total",
        "Served requests that reached the precise output.");
    live.shed = &registry.counter(
        "anytime_responses_shed_total",
        "Requests shed by admission control.");
    live.expired = &registry.counter(
        "anytime_responses_expired_total",
        "Requests whose deadline passed before dispatch.");
    live.failed = &registry.counter(
        "anytime_responses_failed_total",
        "Requests whose pipeline failed.");
    live.cancelled = &registry.counter(
        "anytime_responses_cancelled_total",
        "Requests cancelled by server shutdown.");
    live.degraded = &registry.counter(
        "anytime_requests_degraded_total",
        "Requests salvaged degraded after a pipeline fault.");
    live.buildRetries = &registry.counter(
        "anytime_build_retries_total",
        "Pipeline build attempts retried after a factory failure.");
    live.circuitOpened = &registry.counter(
        "anytime_circuit_open_total",
        "Times a pipeline's circuit breaker opened.");
    live.pendingDepth = &registry.gauge(
        "anytime_requests_pending",
        "Accepted requests waiting for dispatch.");
    live.runningDepth = &registry.gauge(
        "anytime_requests_running",
        "Requests currently executing on the pool.");
    live.latency = &registry.histogram(
        "anytime_request_latency_seconds",
        "Submission-to-response latency of served requests.");
    live.queueDelay = &registry.histogram(
        "anytime_request_queue_seconds",
        "Submission-to-dispatch delay of served requests.");
    live.execTime = &registry.histogram(
        "anytime_request_exec_seconds",
        "Pipeline execution time of served requests.");
    live.buildTime = &registry.histogram(
        "anytime_build_seconds",
        "Pipeline factory (build) wall time.");
    live.firstVersion = &registry.histogram(
        "anytime_first_version_seconds",
        "Dispatch-to-first-streamed-version latency.");
    // QoR summaries: quality lives in [0, 1], so power-of-two bounds
    // (0.125, 0.25, 0.5, 1.0, +Inf) keep the exposition readable.
    live.qualityAtDeadline = &registry.histogram(
        "anytime_quality_at_deadline",
        "Quality of the answer the client held at its deadline.",
        {.firstBound = 0.125, .growth = 2.0, .buckets = 5});
    live.timeToQ50 = &registry.histogram(
        "anytime_time_to_quality_q50_seconds",
        "Seconds from submission to the first version with quality "
        ">= 0.5.");
    live.timeToQ90 = &registry.histogram(
        "anytime_time_to_quality_q90_seconds",
        "Seconds from submission to the first version with quality "
        ">= 0.9.");
    live.timeToQ99 = &registry.histogram(
        "anytime_time_to_quality_q99_seconds",
        "Seconds from submission to the first version with quality "
        ">= 0.99.");
    live.drainBegun = &registry.counter(
        "anytime_drain_begun_total",
        "Graceful drains begun (beginDrain()).");
    live.drainSalvaged = &registry.counter(
        "anytime_drain_salvaged_total",
        "Running requests salvaged degraded at drain-grace expiry.");
    live.drainRejected = &registry.counter(
        "anytime_drain_rejected_total",
        "Submissions rejected because the server was draining.");
    brownout =
        std::make_unique<BrownoutController>(configuration.brownout,
                                             registry);
    // ANYTIME_FLIGHT_DIR=<dir> arms the flight recorder without code
    // changes — how CI collects anomaly artifacts from chaos runs.
    // Only arm, never re-arm: test rigs construct many servers and
    // configureFlightRecorder restarts the writer thread each call.
    if (const char *flight_dir = std::getenv("ANYTIME_FLIGHT_DIR");
        flight_dir != nullptr && flight_dir[0] != '\0' &&
        !obs::flightRecorderEnabled())
        obs::configureFlightRecorder({.directory = flight_dir});
    // Flight-recorder hook: anomaly artifacts embed the affected
    // request's timeline. Last server wins when several coexist (a
    // test rig); the destructor unhooks before the store dies.
    obs::setFlightTimelineSource([this](std::uint64_t requestId) {
        const auto snap = timelineStore.snapshot(requestId);
        return snap ? obs::TimelineStore::toJson(*snap)
                    : std::string();
    });
    builder = std::jthread(
        [this](std::stop_token stop) { builderLoop(std::move(stop)); });
    scheduler = std::jthread(
        [this](std::stop_token stop) { schedulerLoop(std::move(stop)); });
}

AnytimeServer::~AnytimeServer()
{
    // Unhook the flight recorder's timeline source before the store it
    // reads is torn down (no-op for whichever server did not own it).
    obs::setFlightTimelineSource(nullptr);
    {
        MutexLock lock(mutex);
        stopping = true;
    }
    scheduler.request_stop();
    wake.notifyAll();
    if (scheduler.joinable())
        scheduler.join();
    // The builder may still be inside a factory; its result is simply
    // discarded (the automaton was never started, so destruction is
    // safe). Join before members are torn down.
    builder.request_stop();
    buildCv.notifyAll();
    if (builder.joinable())
        builder.join();
    workers.shutdown();
}

void
AnytimeServer::builderLoop(std::stop_token stop)
{
    MutexLock lock(mutex);
    for (;;) {
        buildCv.wait(lock, stop, [&]() ANYTIME_REQUIRES(mutex) {
            return buildJob.has_value();
        });
        if (stop.stop_requested())
            return;
        BuildJob job = std::move(*buildJob);
        buildJob.reset();

        lock.unlock();
        BuildResult result;
        result.id = job.id;
        const auto build_begin = Clock::now();
        {
            obs::TraceContextScope context({job.traceId, 0});
            obs::TraceSpan span(
                "build", "service",
                {"request", static_cast<double>(job.id)});
            try {
                // Injection site `service.build`: a thrown fault here
                // exercises the same retry/backoff/circuit path as a
                // genuinely failing factory.
                ANYTIME_FAULT_POINT("service.build", job.name, job.id);
                result.pipeline = job.factory();
                if (!result.pipeline.automaton)
                    result.error =
                        "pipeline factory returned no automaton";
            } catch (const std::exception &exception) {
                result.error = exception.what();
            }
        }
        result.seconds = secondsBetween(build_begin, Clock::now());
        live.buildTime->observe(result.seconds);
        lock.lock();

        buildResults.push_back(std::move(result));
        wake.notifyAll();
    }
}

std::future<ServiceResponse>
AnytimeServer::submit(ServiceRequest request)
{
    return submitTracked(std::move(request)).response;
}

Submission
AnytimeServer::submitTracked(ServiceRequest request)
{
    fatalIf(!request.factory, "submit: request '", request.name,
            "' has no pipeline factory");
    fatalIf(request.minQuality < 0.0 || request.minQuality > 1.0,
            "submit: minQuality out of [0, 1]: ", request.minQuality);

    std::promise<ServiceResponse> promise;
    Submission submission;
    submission.response = promise.get_future();
    const auto now = Clock::now();
    const auto deadline = now + request.deadline;

    MutexLock lock(mutex);
    const std::uint64_t id = nextId++;
    submission.id = id;
    // Trace context: adopt the caller's id (e.g. propagated off the
    // wire) or mint one, then stamp every event this request emits.
    if (request.traceId == 0)
        request.traceId = obs::newTraceId();
    const std::uint64_t trace_id = request.traceId;
    obs::TraceContextScope context({trace_id, 0});
    live.submitted->add();
    timelineStore.begin(
        id, trace_id, request.name,
        std::chrono::duration<double>(request.deadline).count());
    obs::traceAsyncBegin(
        "request", "service", id,
        {"deadline_ms",
         std::chrono::duration<double, std::milli>(request.deadline)
             .count()},
        {"min_quality", request.minQuality});
    if (stopping) {
        respondImmediately(promise, ServiceStatus::cancelled, now, id,
                           trace_id, {}, &request.onComplete);
        return submission;
    }
    // Graceful drain: the door is closed but the answer is prompt —
    // a client that races SIGTERM gets `cancelled` immediately, never
    // a hang or a silently dropped connection.
    if (draining) {
        live.drainRejected->add();
        respondImmediately(promise, ServiceStatus::cancelled, now, id,
                           trace_id, {}, &request.onComplete);
        return submission;
    }
    // A deadline at or before "now" can never be met by dispatching:
    // answer immediately (empty quality) instead of queueing a request
    // that would only ever expire. This is the zero-deadline guarantee.
    if (request.deadline <= std::chrono::nanoseconds::zero()) {
        respondImmediately(promise, ServiceStatus::expired, now, id,
                           trace_id, {}, &request.onComplete);
        return submission;
    }
    // Circuit breaker: a pipeline name that keeps failing is shed up
    // front during its cooldown, so a poisoned factory can't burn the
    // builder and the retry budget on every submission.
    if (circuitOpenLocked(request.name, now)) {
        respondImmediately(promise, ServiceStatus::shedCircuitOpen, now,
                           id, trace_id, {}, &request.onComplete);
        return submission;
    }
    // Brownout survival mode (L3): a deterministic fraction of new
    // requests is hard-shed at the door. This is the last degradation
    // rung — every cheaper knob (gangs, precision, coalescing,
    // intermediate fan-out) is already turned by the lower levels.
    if (configuration.brownout.enabled && brownout->shouldShed(id)) {
        brownout->noteShed();
        respondImmediately(promise, ServiceStatus::shedBrownout, now,
                           id, trace_id, {}, &request.onComplete);
        return submission;
    }
    if (const auto shed =
            admissionVerdict(now, deadline, request.stageWorkers)) {
        respondImmediately(promise, *shed, now, id, trace_id, {},
                           &request.onComplete);
        return submission;
    }

    PendingEntry entry;
    entry.id = id;
    entry.request = std::move(request);
    entry.promise = std::move(promise);
    entry.submitted = now;
    entry.deadline = deadline;
    pending.emplace(deadline, std::move(entry));
    updateDepthGaugesLocked();
    pendingDirty = true;
    wake.notifyAll();
    return submission;
}

bool
AnytimeServer::cancel(std::uint64_t id)
{
    MutexLock lock(mutex);
    if (stopping)
        return false; // shutdown already cancels everything
    const auto queued = std::find_if(
        pending.begin(), pending.end(),
        [&](const auto &kv) { return kv.second.id == id; });
    if (queued != pending.end()) {
        // A pipeline the builder is producing for this entry right now
        // is discarded by integrateBuildResultsLocked() (its automaton
        // was never started), exactly like an expired entry's.
        PendingEntry &entry = queued->second;
        obs::TraceContextScope context({entry.request.traceId, 0});
        obs::traceInstant("client.cancel", "service",
                          {"request", static_cast<double>(id)},
                          {"queued", 1.0});
        respondImmediately(entry.promise, ServiceStatus::cancelled,
                           entry.submitted, entry.id,
                           entry.request.traceId, {},
                           &entry.request.onComplete);
        pending.erase(queued);
        updateDepthGaugesLocked();
        return true;
    }
    const auto it = running.find(id);
    if (it != running.end() &&
        it->second.stopReason == StopReason::none) {
        it->second.stopReason = StopReason::client;
        obs::TraceContextScope context({it->second.traceId, 0});
        obs::traceInstant("client.cancel", "service",
                          {"request", static_cast<double>(id)},
                          {"queued", 0.0});
        it->second.pipeline.automaton->stop();
        return true;
    }
    return false;
}

std::optional<ServiceStatus>
AnytimeServer::admissionVerdict(Clock::time_point now,
                                Clock::time_point deadline,
                                unsigned declared_gang) const
{
    if (pending.size() >= configuration.maxQueueDepth)
        return ServiceStatus::shedQueueFull;
    // A gang wider than the pool can never fit: shed at submit rather
    // than build a pipeline the dispatcher must fail.
    if (declared_gang > workers.size()) {
        obs::traceInstant("admission.gang-too-wide", "service",
                          {"declared", static_cast<double>(declared_gang)},
                          {"pool", static_cast<double>(workers.size())});
        return ServiceStatus::shedQueueFull;
    }
    if (!configuration.predictiveShedding)
        return std::nullopt;
    // With brownout enabled, the quality-degradation ladder is the
    // first line of defense: below L2 the predictive shed stays
    // holstered (the queue-full shed above always applies). From L2 up
    // the knobs are maxed and prediction resumes as the backstop.
    if (configuration.brownout.enabled && brownout->level() < 2)
        return std::nullopt;
    // EDF position: everything running plus every queued request with
    // an earlier-or-equal deadline runs before this one. Queued entries
    // that still lack a pipeline also occupy the single builder first.
    std::size_t ahead = running.size();
    std::size_t unbuilt_ahead = 0;
    for (const auto &[queued_deadline, entry] : pending) {
        if (queued_deadline > deadline)
            break; // multimap is deadline-ordered
        ++ahead;
        if (!entry.pipeline.automaton)
            ++unbuilt_ahead;
    }
    double predicted_wait = 0.0;
    if (ewmaValid) {
        // Predicted queueing delay from the EWMA service model:
        // requests drain in "lanes" of gang-sized worker groups. The
        // declared gang floors the learned average — a request that
        // announces a wide intra-stage partition occupies at least
        // that many workers regardless of history.
        const double gang = std::max(
            {1.0, ewmaGang, static_cast<double>(declared_gang)});
        const double lanes = std::max(
            1.0, std::floor(static_cast<double>(workers.size()) / gang));
        predicted_wait =
            ewmaExecSeconds * (static_cast<double>(ahead) / lanes);
    }
    if (ewmaBuildValid) {
        // Builds serialize on the one builder thread, so dispatch can
        // be build-bound: this request waits for every unbuilt entry
        // ahead of it, plus its own build.
        const double build_wait =
            ewmaBuildSeconds * static_cast<double>(unbuilt_ahead + 1);
        predicted_wait = std::max(predicted_wait, build_wait);
    }
    if (predicted_wait <= 0.0)
        return std::nullopt;
    const auto wait = std::chrono::duration_cast<Clock::duration>(
        std::chrono::duration<double>(predicted_wait));
    if (now + wait >= deadline) {
        obs::traceInstant(
            "admission.predicted-miss", "service",
            {"predicted_wait_ms", predicted_wait * 1e3},
            {"slack_ms", std::chrono::duration<double, std::milli>(
                             deadline - now)
                             .count()});
        return ServiceStatus::shedPredictedMiss;
    }
    return std::nullopt;
}

void
AnytimeServer::respondImmediately(
    std::promise<ServiceResponse> &promise, ServiceStatus status,
    Clock::time_point submitted, std::uint64_t id,
    std::uint64_t trace_id, std::vector<std::string> failures,
    const std::function<void(const ServiceResponse &)> *on_complete)
{
    obs::TraceContextScope context({trace_id, 0});
    ServiceResponse response;
    response.status = status;
    response.totalSeconds = secondsBetween(submitted, Clock::now());
    response.failures = std::move(failures);
    recordMissSignalLocked(response);
    metrics.record(response);
    updateLiveMetrics(response);
    if (id != 0)
        timelineStore.finish(id, serviceStatusName(status),
                             response.degraded, response.totalSeconds,
                             response.quality);
    if (id != 0)
        obs::traceAsyncEnd("request", "service", id,
                           {"served", 0.0});
    obs::traceInstant(serviceStatusName(status), "service",
                      {"request", static_cast<double>(id)});
    if (on_complete != nullptr && *on_complete) {
        promise.set_value(response);
        (*on_complete)(response);
    } else {
        promise.set_value(std::move(response));
    }
    idleCv.notifyAll();
}

bool
AnytimeServer::circuitOpenLocked(const std::string &name,
                                 Clock::time_point now) const
{
    if (configuration.circuitFailureBudget == 0)
        return false;
    const auto it = circuits.find(name);
    return it != circuits.end() && now < it->second.openUntil;
}

void
AnytimeServer::recordPipelineFailureLocked(const std::string &name,
                                           Clock::time_point now)
{
    if (configuration.circuitFailureBudget == 0)
        return;
    CircuitState &circuit = circuits[name];
    ++circuit.consecutiveFailures;
    if (circuit.consecutiveFailures < configuration.circuitFailureBudget)
        return;
    // Open (or re-open after a failed half-open probe). The failure
    // count stays at the budget so the next post-cooldown failure
    // re-opens immediately; only a success closes the circuit.
    circuit.consecutiveFailures = configuration.circuitFailureBudget;
    circuit.openUntil = now + configuration.circuitCooldown;
    live.circuitOpened->add();
    obs::traceInstant(
        "circuit.open", "service",
        {"failures", static_cast<double>(circuit.consecutiveFailures)},
        {"cooldown_ms", std::chrono::duration<double, std::milli>(
                            configuration.circuitCooldown)
                            .count()});
    obs::flightRecorderTrigger("circuit_open", 0,
                               obs::currentTraceContext().traceId);
}

void
AnytimeServer::recordPipelineSuccessLocked(const std::string &name)
{
    circuits.erase(name);
}

AnytimeServer::Clock::duration
AnytimeServer::retryBackoffLocked(const PendingEntry &entry) const
{
    // Exponential backoff with deterministic jitter: base * 2^(n-1)
    // plus a jitter in [0, base) drawn from a seeded hash of the
    // request id and attempt number — reproducible under a fixed
    // submission order, uncorrelated across requests (no retry
    // convoys).
    const auto base = configuration.retryBackoffBase;
    const auto scaled = base * (1LL << (entry.buildAttempts - 1));
    const std::uint64_t jitter_hash =
        fault::mix64(configuration.retryJitterSeed ^
                     (entry.id << 16) ^ entry.buildAttempts);
    const auto jitter =
        base.count() > 0
            ? Clock::duration(std::chrono::nanoseconds(
                  static_cast<std::int64_t>(jitter_hash) %
                  std::chrono::nanoseconds(base).count()))
            : Clock::duration::zero();
    return std::chrono::duration_cast<Clock::duration>(scaled) +
           std::chrono::abs(jitter);
}

void
AnytimeServer::stopOverdueLocked(Clock::time_point now)
{
    for (auto &[id, entry] : running) {
        if (entry.stopReason == StopReason::none &&
            entry.deadline <= now) {
            entry.stopReason = StopReason::deadline;
            obs::traceInstant("deadline.stop", "service",
                              {"request", static_cast<double>(id)});
            entry.pipeline.automaton->stop();
        }
    }
}

void
AnytimeServer::integrateBuildResultsLocked()
{
    while (!buildResults.empty()) {
        BuildResult result = std::move(buildResults.back());
        buildResults.pop_back();
        if (buildInFlight == result.id)
            buildInFlight = 0;
        const double alpha = ewmaBuildValid ? 0.2 : 1.0;
        ewmaBuildSeconds =
            (1.0 - alpha) * ewmaBuildSeconds + alpha * result.seconds;
        ewmaBuildValid = true;
        // Brownout p99 source: a bounded ring of recent build wall
        // times (the EWMA hides tail latency, p99 is the signal).
        buildRing[buildRingNext] = result.seconds;
        buildRingNext = (buildRingNext + 1) % kBuildRingSize;
        buildRingCount = std::min(buildRingCount + 1, kBuildRingSize);
        obs::traceInstant(
            "ewma.build", "service",
            {"build_ms", result.seconds * 1e3},
            {"ewma_ms", ewmaBuildSeconds * 1e3});
        const auto it = std::find_if(
            pending.begin(), pending.end(),
            [&](const auto &kv) { return kv.second.id == result.id; });
        if (it == pending.end())
            continue; // expired or cancelled while being built
        if (!result.error.empty()) {
            PendingEntry &entry = it->second;
            const auto now = Clock::now();
            if (entry.buildAttempts < configuration.buildRetryLimit &&
                now < entry.deadline) {
                // Retry with jittered exponential backoff: the entry
                // stays at the EDF head (pipeline still absent) and the
                // dispatcher re-hands it to the builder once notBefore
                // passes. Deadline enforcement keeps running meanwhile.
                ++entry.buildAttempts;
                const auto backoff = retryBackoffLocked(entry);
                entry.notBefore = now + backoff;
                live.buildRetries->add();
                timelineStore.recordBuildAttempt(entry.id,
                                                 entry.buildAttempts);
                obs::traceInstant(
                    "build.retry", "service",
                    {"request", static_cast<double>(entry.id)},
                    {"backoff_ms",
                     std::chrono::duration<double, std::milli>(backoff)
                         .count()});
                continue;
            }
            obs::TraceContextScope context({entry.request.traceId, 0});
            recordPipelineFailureLocked(entry.request.name, now);
            respondImmediately(entry.promise, ServiceStatus::failed,
                               entry.submitted, entry.id,
                               entry.request.traceId,
                               {std::move(result.error)},
                               &entry.request.onComplete);
            pending.erase(it);
            updateDepthGaugesLocked();
        } else {
            it->second.pipeline = std::move(result.pipeline);
        }
    }
}

void
AnytimeServer::harvest(RunningEntry entry)
{
    obs::TraceContextScope context({entry.traceId, 0});
    Automaton &automaton = *entry.pipeline.automaton;
    automaton.shutdown(); // workers already drained; joins bookkeeping

    const auto now = Clock::now();
    ServiceResponse response;
    response.queueSeconds =
        secondsBetween(entry.submitted, entry.dispatched);
    response.execSeconds = secondsBetween(entry.dispatched, now);
    response.totalSeconds = secondsBetween(entry.submitted, now);
    response.reachedPrecise = automaton.complete();
    response.versionsPublished = entry.pipeline.versionCount
                                     ? entry.pipeline.versionCount()
                                     : maxBufferVersion(automaton);
    if (entry.pipeline.progress)
        response.quality = entry.pipeline.progress();
    // A precise result is by definition full quality, even when the
    // progress probe is a conservative proxy that undercounts.
    if (response.reachedPrecise)
        response.quality = 1.0;

    if (entry.firstVersionNanos != nullptr) {
        const std::int64_t first_ns = entry.firstVersionNanos->load(
            std::memory_order_acquire);
        if (first_ns >= 0) {
            response.firstVersionSeconds =
                static_cast<double>(first_ns) * 1e-9;
            live.firstVersion->observe(response.firstVersionSeconds);
        }
    }

    response.degraded = automaton.degraded();
    if (automaton.failed()) {
        response.failures = automaton.failures();
        // Degradation policy: under quarantine the pipeline still
        // terminated with its last good versions in every buffer —
        // serve that snapshot flagged degraded when there is output
        // and it clears the client's stated quality floor (a floor
        // with no probe cannot be verified); otherwise fail fast.
        const bool meets_floor =
            entry.minQuality <= 0.0 ||
            (!std::isnan(response.quality) &&
             response.quality >= entry.minQuality);
        if (automaton.faultPolicy() == FaultPolicy::quarantine &&
            response.versionsPublished > 0 && meets_floor) {
            response.status = ServiceStatus::degraded;
            response.degraded = true;
        } else {
            response.status = ServiceStatus::failed;
            // Fail-fast carries no usable snapshot: the flag is about
            // the answer the client got, not the pipeline's state.
            response.degraded = false;
        }
    } else if (entry.stopReason == StopReason::client) {
        // The client went away (disconnect-as-cancel): even if the
        // pipeline happened to finish in the stop window, nobody is
        // listening — account it cancelled, not served.
        response.status = ServiceStatus::cancelled;
    } else if (response.reachedPrecise) {
        response.status = ServiceStatus::preciseCompleted;
    } else if (entry.stopReason == StopReason::quality) {
        response.status = ServiceStatus::qualityStopped;
    } else if (entry.stopReason == StopReason::drain) {
        // Drain-grace expiry: the anytime salvage. Whatever the
        // pipeline published before the stop is a valid snapshot —
        // serve it flagged degraded rather than discard paid-for work;
        // only a pipeline that never produced output is cancelled.
        if (response.versionsPublished > 0) {
            response.status = ServiceStatus::degraded;
            response.degraded = true;
            live.drainSalvaged->add();
        } else {
            response.status = ServiceStatus::cancelled;
        }
    } else if (entry.stopReason == StopReason::shutdown) {
        response.status = ServiceStatus::cancelled;
    } else {
        response.status = ServiceStatus::deadlineApprox;
    }
    response.deadlineMet = (servedStatus(response.status) ||
                            response.status ==
                                ServiceStatus::degraded) &&
                           response.versionsPublished > 0;

    // Circuit breaker accounting: any stage fault counts against the
    // pipeline's failure budget (even when the degradation policy
    // salvaged the response); a clean run closes the circuit.
    if (automaton.failed())
        recordPipelineFailureLocked(entry.name, now);
    else
        recordPipelineSuccessLocked(entry.name);

    if (servedStatus(response.status)) {
        const double alpha = ewmaValid ? 0.2 : 1.0;
        ewmaExecSeconds = (1.0 - alpha) * ewmaExecSeconds +
                          alpha * response.execSeconds;
        ewmaGang = (1.0 - alpha) * ewmaGang +
                   alpha * static_cast<double>(entry.gang);
        ewmaValid = true;
        obs::traceInstant("ewma.exec", "service",
                          {"exec_ms", response.execSeconds * 1e3},
                          {"ewma_ms", ewmaExecSeconds * 1e3});
    }

    // QoR timeline: close the staircase record and summarize it into
    // the exemplar-annotated quality/time-to-quality histograms. Only
    // answers a client actually held count (served or salvaged).
    const auto qor = timelineStore.finish(
        entry.id, serviceStatusName(response.status), response.degraded,
        response.totalSeconds, response.quality);
    if (servedStatus(response.status) ||
        response.status == ServiceStatus::degraded) {
        if (!std::isnan(response.quality))
            live.qualityAtDeadline->observeWithExemplar(
                response.quality, entry.traceId);
        if (qor.has_value()) {
            if (!std::isnan(qor->timeToQ50))
                live.timeToQ50->observeWithExemplar(qor->timeToQ50,
                                                    entry.traceId);
            if (!std::isnan(qor->timeToQ90))
                live.timeToQ90->observeWithExemplar(qor->timeToQ90,
                                                    entry.traceId);
            if (!std::isnan(qor->timeToQ99))
                live.timeToQ99->observeWithExemplar(qor->timeToQ99,
                                                    entry.traceId);
        }
    }
    // A served request whose client got nothing by its deadline is an
    // anomaly worth a flight artifact (sheds and cancels are not).
    if (servedStatus(response.status) && !response.deadlineMet)
        obs::flightRecorderTrigger("deadline_miss", entry.id,
                                   entry.traceId);

    recordMissSignalLocked(response);
    metrics.record(response);
    updateLiveMetrics(response);
    if (obs::tracingEnabled()) {
        obs::traceInstant(serviceStatusName(response.status), "service",
                          {"request", static_cast<double>(entry.id)},
                          {"quality", response.quality});
        obs::traceAsyncEnd(
            "request", "service", entry.id,
            {"versions",
             static_cast<double>(response.versionsPublished)},
            {"quality", response.quality});
    }
    if (entry.onComplete) {
        entry.promise.set_value(response);
        entry.onComplete(response);
    } else {
        entry.promise.set_value(std::move(response));
    }
    idleCv.notifyAll();
}

void
AnytimeServer::updateLiveMetrics(const ServiceResponse &response)
{
    switch (response.status) {
      case ServiceStatus::preciseCompleted:
        live.precise->add();
        [[fallthrough]];
      case ServiceStatus::deadlineApprox:
      case ServiceStatus::qualityStopped:
        live.served->add();
        live.latency->observe(response.totalSeconds);
        live.queueDelay->observe(response.queueSeconds);
        live.execTime->observe(response.execSeconds);
        break;
      case ServiceStatus::shedQueueFull:
      case ServiceStatus::shedPredictedMiss:
      case ServiceStatus::shedCircuitOpen:
      case ServiceStatus::shedBrownout:
        live.shed->add();
        break;
      case ServiceStatus::expired:
        live.expired->add();
        break;
      case ServiceStatus::failed:
        live.failed->add();
        break;
      case ServiceStatus::cancelled:
        live.cancelled->add();
        break;
      case ServiceStatus::degraded:
        live.degraded->add();
        live.latency->observe(response.totalSeconds);
        break;
    }
}

void
AnytimeServer::updateDepthGaugesLocked()
{
    live.pendingDepth->set(static_cast<double>(pending.size()));
    live.runningDepth->set(static_cast<double>(running.size()));
    if (obs::tracingEnabled()) {
        obs::traceCounter("service.pending",
                          static_cast<double>(pending.size()));
        obs::traceCounter("service.running",
                          static_cast<double>(running.size()));
    }
}

void
AnytimeServer::schedulerLoop(std::stop_token stop)
{
    MutexLock lock(mutex);
    for (;;) {
        pendingDirty = false;

        // 1. Completions: harvest every pipeline whose done callback
        // fired, releasing its worker slots first so dispatch below
        // sees the freed capacity. Then attach any pipelines the
        // builder finished to their queued entries.
        while (!finishedIds.empty()) {
            const std::uint64_t id = finishedIds.back();
            finishedIds.pop_back();
            const auto it = running.find(id);
            panicIf(it == running.end(),
                    "completion event for unknown request id ", id);
            RunningEntry entry = std::move(it->second);
            running.erase(it);
            slotsUsed -= entry.gang;
            updateDepthGaugesLocked();
            harvest(std::move(entry));
        }
        integrateBuildResultsLocked();

        const auto now = Clock::now();

        // 2. Hard deadlines: stop every overdue pipeline; the anytime
        // model guarantees its buffers hold a valid snapshot.
        stopOverdueLocked(now);

        // 2b. Brownout: fold the load signals into the controller and
        // let the level move (rate-limited and hysteresis-gated there).
        evaluateBrownoutLocked(now);

        // 2c. Drain-grace expiry: the queue was given its chance; stop
        // whatever still runs (harvest salvages published output as
        // `degraded`) and cancel whatever never dispatched.
        if (draining && !drainExpired && now >= drainDeadline) {
            drainExpired = true;
            for (auto &[deadline, entry] : pending)
                respondImmediately(entry.promise,
                                   ServiceStatus::cancelled,
                                   entry.submitted, entry.id,
                                   entry.request.traceId, {},
                                   &entry.request.onComplete);
            pending.clear();
            updateDepthGaugesLocked();
            for (auto &[id, entry] : running) {
                if (entry.stopReason == StopReason::none) {
                    entry.stopReason = StopReason::drain;
                    obs::traceInstant(
                        "drain.stop", "service",
                        {"request", static_cast<double>(id)});
                    entry.pipeline.automaton->stop();
                }
            }
        }

        // 3. Graceful degradation: a backlogged server stops requests
        // that have reached their stated quality floor, trading their
        // surplus accuracy for the queue's latency.
        const bool backlogged =
            !pending.empty() || !configuration.degradeOnlyWhenBacklogged;
        if (backlogged) {
            for (auto &[id, entry] : running) {
                if (entry.stopReason == StopReason::none &&
                    entry.minQuality > 0.0 && entry.pipeline.progress) {
                    const double progress = entry.pipeline.progress();
                    if (progress >= entry.minQuality) {
                        entry.stopReason = StopReason::quality;
                        obs::traceInstant(
                            "quality.stop", "service",
                            {"request", static_cast<double>(id)},
                            {"progress", progress});
                        entry.pipeline.automaton->stop();
                    }
                }
            }
        }

        if (stop.stop_requested())
            stopping = true;
        if (stopping) {
            for (auto &[deadline, entry] : pending)
                respondImmediately(entry.promise,
                                   ServiceStatus::cancelled,
                                   entry.submitted, entry.id,
                                   entry.request.traceId, {},
                                   &entry.request.onComplete);
            pending.clear();
            updateDepthGaugesLocked();
            for (auto &[id, entry] : running) {
                if (entry.stopReason == StopReason::none) {
                    entry.stopReason = StopReason::shutdown;
                    obs::traceInstant(
                        "shutdown.stop", "service",
                        {"request", static_cast<double>(id)});
                    entry.pipeline.automaton->stop();
                }
            }
            if (running.empty())
                return;
            // Everything running has been stopped; wait only for their
            // completion events (the stop token is already triggered,
            // so a token-aware wait would spin).
            wake.wait(lock, [&]() ANYTIME_REQUIRES(mutex) {
                return !finishedIds.empty();
            });
            continue;
        }

        // 4. Dispatch: earliest deadline first, whole gangs only.
        while (!stopping && !pending.empty()) {
            const auto it = pending.begin();
            PendingEntry &head = it->second;
            if (head.deadline <= Clock::now()) {
                respondImmediately(head.promise, ServiceStatus::expired,
                                   head.submitted, head.id,
                                   head.request.traceId, {},
                                   &head.request.onComplete);
                pending.erase(it);
                updateDepthGaugesLocked();
                continue;
            }
            if (!head.pipeline.automaton) {
                // Hand the head's factory to the builder thread and
                // wait for its result event; the scheduler stays free
                // to enforce deadlines while the pipeline is built.
                // A head cooling down between build retries holds its
                // EDF position (strict EDF) until notBefore passes.
                if (buildInFlight == 0 &&
                    head.notBefore <= Clock::now()) {
                    buildInFlight = head.id;
                    buildJob = BuildJob{head.id, head.request.name,
                                        head.request.factory,
                                        head.request.traceId};
                    buildCv.notifyAll();
                }
                break; // strict EDF: nothing dispatches past the head
            }
            const unsigned gang = head.pipeline.automaton->totalWorkers();
            if (gang > workers.size()) {
                respondImmediately(
                    head.promise, ServiceStatus::failed, head.submitted,
                    head.id, head.request.traceId,
                    {"pipeline needs " + std::to_string(gang) +
                     " workers but the pool has " +
                     std::to_string(workers.size())},
                    &head.request.onComplete);
                pending.erase(it);
                updateDepthGaugesLocked();
                continue;
            }
            if (slotsUsed + gang > workers.size())
                break; // strict EDF: wait for the head's gang to fit

            RunningEntry entry;
            entry.id = head.id;
            entry.name = head.request.name;
            entry.promise = std::move(head.promise);
            entry.submitted = head.submitted;
            entry.dispatched = Clock::now();
            entry.deadline = head.deadline;
            entry.pipeline = std::move(head.pipeline);
            entry.gang = gang;
            entry.minQuality = head.request.minQuality;
            entry.traceId = head.request.traceId;
            entry.onComplete = std::move(head.request.onComplete);
            // Streaming hook: wrap the request's sink (if any) with the
            // first-version clock and the QoR timeline recorder and
            // attach it before the pipeline starts, so every published
            // version is timed, recorded on the quality staircase, and
            // fanned out to the subscriber.
            if (entry.pipeline.attachSink) {
                auto first_ns =
                    std::make_shared<std::atomic<std::int64_t>>(-1);
                entry.firstVersionNanos = first_ns;
                const auto dispatched = entry.dispatched;
                const auto submitted = entry.submitted;
                const std::uint64_t request_id = entry.id;
                const unsigned gang_width = gang;
                VersionSink forward =
                    std::move(head.request.versionSink);
                entry.pipeline.attachSink(
                    [this, first_ns, dispatched, submitted, request_id,
                     gang_width, forward = std::move(forward)](
                        const VersionUpdate &update) {
                        const auto now_ts = Clock::now();
                        std::int64_t expected = -1;
                        first_ns->compare_exchange_strong(
                            expected,
                            std::chrono::duration_cast<
                                std::chrono::nanoseconds>(now_ts -
                                                          dispatched)
                                .count(),
                            std::memory_order_acq_rel);
                        obs::TimelinePoint point;
                        point.tSeconds =
                            secondsBetween(submitted, now_ts);
                        point.version = update.version;
                        point.quality = update.quality;
                        point.bytes = update.payload
                                          ? update.payload->size()
                                          : 0;
                        point.stage = update.stage;
                        point.workers = gang_width;
                        point.final = update.final;
                        timelineStore.recordVersion(request_id,
                                                    std::move(point));
                        if (forward)
                            forward(update);
                    });
            }
            pending.erase(it);

            Automaton *automaton = entry.pipeline.automaton.get();
            const std::uint64_t id = entry.id;
            // Stage faults are contained per the server's policy:
            // quarantine (default) lets a faulting pipeline finish
            // degraded so harvest can salvage the response.
            automaton->setFaultPolicy(configuration.pipelineFaultPolicy);
            // Thread the request's trace context into the automaton so
            // every stage/sweep span its workers emit stitches into
            // this request's trace.
            automaton->setTraceId(entry.traceId);
            automaton->setDoneCallback([this, id] {
                MutexLock callback_lock(mutex);
                finishedIds.push_back(id);
                wake.notifyAll();
            });
            slotsUsed += gang;
            {
                obs::TraceContextScope context({entry.traceId, 0});
                obs::traceInstant(
                    "edf.dispatch", "service",
                    {"request", static_cast<double>(id)},
                    {"gang", static_cast<double>(gang)});
            }
            running.emplace(id, std::move(entry));
            updateDepthGaugesLocked();
            automaton->start(workers);
        }

        // 5. Sleep until the next actionable moment: a completion,
        // finished build, or submission (event), the earliest running
        // deadline, a queued head expiring, or the next quality poll.
        auto next_wake = Clock::time_point::max();
        for (const auto &[id, entry] : running) {
            if (entry.stopReason != StopReason::none)
                continue;
            next_wake = std::min(next_wake, entry.deadline);
            if (entry.minQuality > 0.0 && entry.pipeline.progress)
                next_wake = std::min(
                    next_wake, now + configuration.qualityPollInterval);
        }
        if (!pending.empty()) {
            next_wake = std::min(next_wake, pending.begin()->first);
            // A head cooling down between build retries needs a wake
            // at notBefore, or the retry would wait for the next event.
            const PendingEntry &head = pending.begin()->second;
            if (!head.pipeline.automaton && head.notBefore > now)
                next_wake = std::min(next_wake, head.notBefore);
        }
        // A degraded server must recover without traffic: while the
        // brownout level is raised, keep evaluating on the interval
        // even if no request event arrives.
        if (configuration.brownout.enabled && brownout->level() > 0)
            next_wake = std::min(
                next_wake, now + configuration.brownout.evalInterval);
        // Drain grace expires on the clock, not on an event.
        if (draining && !drainExpired)
            next_wake = std::min(next_wake, drainDeadline);

        if (!finishedIds.empty() || !buildResults.empty() ||
            pendingDirty || stop.stop_requested())
            continue;
        const auto event = [&]() ANYTIME_REQUIRES(mutex) {
            return !finishedIds.empty() || !buildResults.empty() ||
                   pendingDirty;
        };
        if (next_wake == Clock::time_point::max())
            wake.wait(lock, stop, event);
        else
            wake.waitUntil(lock, stop, next_wake, event);
    }
}

void
AnytimeServer::drain()
{
    MutexLock lock(mutex);
    idleCv.wait(lock, [&]() ANYTIME_REQUIRES(mutex) {
        return pending.empty() && running.empty();
    });
}

void
AnytimeServer::beginDrain(std::chrono::nanoseconds grace)
{
    MutexLock lock(mutex);
    if (draining || stopping)
        return;
    draining = true;
    drainDeadline = Clock::now() + grace;
    // The scheduler may be parked on a next_wake computed before the
    // drain began (e.g. a far-off request deadline); a bare notify is
    // absorbed by its wait predicate. Flag a recompute so the sleep is
    // re-derived with drainDeadline folded in.
    pendingDirty = true;
    live.drainBegun->add();
    obs::traceInstant(
        "drain.begin", "service",
        {"grace_ms",
         std::chrono::duration<double, std::milli>(grace).count()},
        {"in_flight",
         static_cast<double>(pending.size() + running.size())});
    wake.notifyAll();
}

bool
AnytimeServer::drainComplete() const
{
    MutexLock lock(mutex);
    return draining && pending.empty() && running.empty();
}

int
AnytimeServer::brownoutLevel() const
{
    return brownout->level();
}

BrownoutLevelPolicy
AnytimeServer::brownoutPolicy() const
{
    return brownout->policy();
}

void
AnytimeServer::recordMissSignalLocked(const ServiceResponse &response)
{
    // The miss EWMA feeds brownout pressure. Only outcomes a client
    // experienced count: expired requests and served/salvaged answers
    // that held nothing at the deadline are misses; sheds and cancels
    // are controlled outcomes, not misses, and fold in as successes
    // would distort recovery — so they don't fold in at all.
    double miss;
    switch (response.status) {
      case ServiceStatus::expired:
        miss = 1.0;
        break;
      case ServiceStatus::preciseCompleted:
      case ServiceStatus::deadlineApprox:
      case ServiceStatus::qualityStopped:
      case ServiceStatus::degraded:
        miss = response.deadlineMet ? 0.0 : 1.0;
        break;
      default:
        return;
    }
    constexpr double alpha = 0.1;
    ewmaMissRate = (1.0 - alpha) * ewmaMissRate + alpha * miss;
}

double
AnytimeServer::p99BuildSecondsLocked() const
{
    if (buildRingCount == 0)
        return 0.0;
    std::array<double, kBuildRingSize> sorted;
    std::copy_n(buildRing.begin(), buildRingCount, sorted.begin());
    const std::size_t rank =
        (buildRingCount * 99 + 99) / 100 - 1; // ceil(0.99 n) - 1
    std::nth_element(sorted.begin(),
                     sorted.begin() + static_cast<std::ptrdiff_t>(rank),
                     sorted.begin() +
                         static_cast<std::ptrdiff_t>(buildRingCount));
    return sorted[rank];
}

void
AnytimeServer::evaluateBrownoutLocked(Clock::time_point now)
{
    if (!configuration.brownout.enabled)
        return;
    BrownoutController::Signals signals;
    signals.queueFraction =
        static_cast<double>(pending.size()) /
        static_cast<double>(configuration.maxQueueDepth);
    signals.missRate = ewmaMissRate;
    signals.p99BuildSeconds = p99BuildSecondsLocked();
    brownout->evaluate(now, signals);
}

ServiceMetrics
AnytimeServer::metricsSnapshot() const
{
    MutexLock lock(mutex);
    return metrics;
}

std::size_t
AnytimeServer::pendingCount() const
{
    MutexLock lock(mutex);
    return pending.size();
}

std::size_t
AnytimeServer::runningCount() const
{
    MutexLock lock(mutex);
    return running.size();
}

unsigned
AnytimeServer::workersInUse() const
{
    MutexLock lock(mutex);
    return slotsUsed;
}

std::vector<AnytimeServer::CircuitInfo>
AnytimeServer::circuitSnapshot() const
{
    MutexLock lock(mutex);
    const auto now = Clock::now();
    std::vector<CircuitInfo> result;
    result.reserve(circuits.size());
    for (const auto &[name, circuit] : circuits) {
        CircuitInfo info;
        info.pipeline = name;
        info.consecutiveFailures = circuit.consecutiveFailures;
        if (circuit.openUntil > now)
            info.openForSeconds =
                secondsBetween(now, circuit.openUntil);
        result.push_back(std::move(info));
    }
    return result;
}

} // namespace anytime
