/**
 * @file
 * AnytimeServer: an in-process anytime serving runtime.
 *
 * Accepts many concurrent requests — each a (pipeline factory, input,
 * deadline, min quality) tuple — and multiplexes them over a bounded
 * WorkerPool of recyclable executor threads instead of spawning fresh
 * threads per request. One scheduler thread owns all service state and
 * runs an event loop over five event sources: submissions, pipeline
 * completions (Automaton done callbacks), finished pipeline builds,
 * deadline expiry, and quality-probe polls. Pipeline factories run on
 * a dedicated builder thread, never on the scheduler: a factory takes
 * real time (milliseconds for the image pipelines), and building
 * inline would starve deadline enforcement for everything already
 * running — under a dispatch storm a tight-deadline request could run
 * all the way to precise before the scheduler got to stop it.
 *
 * Scheduling policy:
 *  - dispatch is earliest-deadline-first; a request only starts when
 *    its whole stage-worker gang fits in the free pool slots (partial
 *    gangs could stall forever, see worker_pool.hpp);
 *  - every running request is hard-stopped at its deadline; thanks to
 *    the anytime model the response always carries a valid snapshot
 *    (possibly empty-quality when the deadline precedes the first
 *    publish);
 *  - a request with a positive minQuality is stopped as soon as its
 *    progress probe reaches that floor while a backlog exists —
 *    graceful degradation that trades its surplus accuracy for the
 *    backlog's latency;
 *  - admission control sheds at submission when the queue is at
 *    capacity or when the EWMA service-time model predicts the request
 *    would still be queued at its deadline, so overload degrades into
 *    prompt shed responses, never into hangs or silent misses.
 */

#ifndef ANYTIME_SERVICE_SERVER_HPP
#define ANYTIME_SERVICE_SERVER_HPP

#include <array>
#include <atomic>
#include <chrono>
#include <cstdint>
#include <functional>
#include <future>
#include <map>
#include <memory>
#include <optional>
#include <string>
#include <thread>
#include <vector>

#include "core/worker_pool.hpp"
#include "obs/metrics.hpp"
#include "obs/timeline.hpp"
#include "service/brownout.hpp"
#include "service/metrics.hpp"
#include "service/request.hpp"
#include "support/stopwatch.hpp"
#include "support/sync.hpp"
#include "support/thread_annotations.hpp"

namespace anytime {

/** Serving-runtime tuning knobs. */
struct ServerConfig
{
    /** Executor pool size (stage-worker slots shared by all requests). */
    unsigned workers = 4;
    /** Admission: maximum queued (accepted, undispatched) requests. */
    std::size_t maxQueueDepth = 64;
    /** Admission: shed when the EWMA model predicts a deadline miss. */
    bool predictiveShedding = true;
    /** How often running minQuality probes are sampled. */
    std::chrono::nanoseconds qualityPollInterval =
        std::chrono::milliseconds(1);
    /** Only degrade to minQuality when requests are waiting. */
    bool degradeOnlyWhenBacklogged = true;
    /** Registry the server publishes live counters/gauges/histograms
     *  into; nullptr means obs::defaultRegistry(). */
    obs::MetricsRegistry *metricsRegistry = nullptr;

    // --- Fault tolerance (see DESIGN.md section 12) ---

    /**
     * Stage-failure policy applied to every dispatched pipeline.
     * Quarantine (the default) lets a faulting pipeline terminate with
     * its last good versions so the degradation policy below can
     * salvage the request; stopAll restores the strict fail-fast
     * behavior (any stage fault fails the request).
     */
    FaultPolicy pipelineFaultPolicy = FaultPolicy::quarantine;
    /** Retries of a *failed pipeline build* before the request fails
     *  (the factory threw or returned no automaton). */
    unsigned buildRetryLimit = 2;
    /** Base of the exponential retry backoff (doubles per attempt,
     *  plus deterministic jitter in [0, base)). */
    std::chrono::nanoseconds retryBackoffBase =
        std::chrono::milliseconds(2);
    /** Seed of the deterministic backoff jitter sequence. */
    std::uint64_t retryJitterSeed = 1;
    /**
     * Circuit breaker: consecutive failures of one pipeline name
     * before its circuit opens and submissions are shed for
     * circuitCooldown. 0 disables the breaker. After the cooldown the
     * circuit is implicitly half-open: the next submission is
     * admitted, a success closes the circuit, a failure re-opens it
     * immediately.
     */
    unsigned circuitFailureBudget = 5;
    /** How long an open circuit sheds before admitting a probe. */
    std::chrono::nanoseconds circuitCooldown =
        std::chrono::milliseconds(250);

    // --- Overload robustness (see DESIGN.md section 17) ---

    /**
     * Brownout controller: discrete quality-degradation levels that
     * absorb overload before any request is hard-shed. While enabled
     * and below L2, EWMA predictive shedding is suppressed — the
     * degradation knobs are the first line of defense, the shed the
     * last. Disabled by default (binary EWMA shedding as before).
     */
    BrownoutConfig brownout;
};

/** A submitted request's handle: its id (for cancel()) + response. */
struct Submission
{
    /** Server-assigned request id (nonzero; stable for the request's
     *  lifetime). Feed to AnytimeServer::cancel(). */
    std::uint64_t id = 0;
    std::future<ServiceResponse> response;
};

/** In-process anytime serving runtime. */
class AnytimeServer
{
  public:
    explicit AnytimeServer(ServerConfig config = {});

    /** Cancels pending requests, stops running ones, joins everything. */
    ~AnytimeServer();

    AnytimeServer(const AnytimeServer &) = delete;
    AnytimeServer &operator=(const AnytimeServer &) = delete;

    /**
     * Submit a request. Always returns a future that will be fulfilled
     * — immediately for shed/expired requests, at stop/completion for
     * dispatched ones. Never blocks on pipeline execution.
     */
    std::future<ServiceResponse> submit(ServiceRequest request);

    /** submit() that also hands back the request id for cancel(). */
    Submission submitTracked(ServiceRequest request);

    /**
     * Cancel request @p id (the disconnect-as-cancel path). A queued
     * request is answered `cancelled` immediately (a pipeline being
     * built for it is discarded when the builder finishes); a running
     * one is cooperatively stopped and harvested as `cancelled`. Either
     * way the accounting identity holds — a cancelled request lands in
     * exactly one bucket.
     *
     * @return True iff the id was found queued or running (false: never
     *         existed, already responded, or already stopping).
     */
    bool cancel(std::uint64_t id);

    /** Block until every accepted request has been responded to. */
    void drain();

    /**
     * Begin a graceful drain (the SIGTERM path): new submissions are
     * rejected promptly (`cancelled`), accepted work keeps dispatching
     * and running, and when @p grace expires every leftover pipeline is
     * stopped and harvested — precise if it finished, `degraded` if it
     * published anything (the anytime salvage), `cancelled` only when
     * it never produced output. Non-blocking and idempotent; pair with
     * drain() to wait for the queue to empty. The accounting identity
     * holds throughout: every request lands in exactly one bucket.
     */
    void beginDrain(std::chrono::nanoseconds grace);

    /** True once beginDrain() ran and everything has been answered. */
    bool drainComplete() const;

    /** Current brownout level (0 when the controller is disabled). */
    int brownoutLevel() const;

    /** The active brownout level's degradation policy (by value). */
    BrownoutLevelPolicy brownoutPolicy() const;

    /** The brownout controller (level/pressure reads, shed/cap
     *  accounting from the network door). */
    BrownoutController &brownoutControl() { return *brownout; }
    const BrownoutController &brownoutControl() const
    {
        return *brownout;
    }

    /** Copy of the aggregate metrics so far. */
    ServiceMetrics metricsSnapshot() const;

    /** Accepted requests waiting for dispatch. */
    std::size_t pendingCount() const;

    /** Requests currently executing on the pool. */
    std::size_t runningCount() const;

    /** Worker slots currently occupied by dispatched gangs. */
    unsigned workersInUse() const;

    const ServerConfig &config() const { return configuration; }

    /** The executor pool (exposed for recycling/occupancy stats). */
    const WorkerPool &pool() const { return workers; }

    /** Per-request QoR timelines (the /requestz data source). */
    const obs::TimelineStore &timelines() const { return timelineStore; }

    /** One pipeline's circuit-breaker state, as /requestz shows it. */
    struct CircuitInfo
    {
        std::string pipeline;
        unsigned consecutiveFailures = 0;
        /** Seconds until the circuit admits again; 0 = closed. */
        double openForSeconds = 0.0;
    };

    /** Snapshot of every tracked circuit breaker. */
    std::vector<CircuitInfo> circuitSnapshot() const;

  private:
    using Clock = Stopwatch::Clock;

    /** Why a running request was told to stop. */
    enum class StopReason
    {
        none,
        deadline,
        quality,
        shutdown,
        /** Explicit cancel() — e.g. the streaming client disconnected. */
        client,
        /** Graceful-drain grace expired; harvest salvages published
         *  output as `degraded` instead of discarding it. */
        drain,
    };

    struct PendingEntry
    {
        std::uint64_t id = 0;
        ServiceRequest request;
        std::promise<ServiceResponse> promise;
        Clock::time_point submitted;
        Clock::time_point deadline;
        /** Built by the builder thread once this entry reaches the
         *  queue head; may then wait head-of-line for free slots. */
        PreparedPipeline pipeline;
        /** Failed build attempts so far (retry-with-backoff). */
        unsigned buildAttempts = 0;
        /** Earliest instant the next build attempt may start (the
         *  jittered backoff); epoch = no constraint. */
        Clock::time_point notBefore{};
    };

    /** Factory handed to the builder thread. */
    struct BuildJob
    {
        std::uint64_t id = 0;
        std::string name;
        std::function<PreparedPipeline()> factory;
        /** Trace context the build span is stamped with. */
        std::uint64_t traceId = 0;
    };

    /** Builder thread's answer; delivered back under the mutex. */
    struct BuildResult
    {
        std::uint64_t id = 0;
        PreparedPipeline pipeline;
        std::string error;
        /** Wall time the factory took (feeds the admission model). */
        double seconds = 0.0;
    };

    struct RunningEntry
    {
        std::uint64_t id = 0;
        std::string name;
        std::promise<ServiceResponse> promise;
        Clock::time_point submitted;
        Clock::time_point dispatched;
        Clock::time_point deadline;
        PreparedPipeline pipeline;
        unsigned gang = 0;
        double minQuality = 0.0;
        /** Request trace context (stamped onto harvest-side spans). */
        std::uint64_t traceId = 0;
        StopReason stopReason = StopReason::none;
        /** Completion hook carried over from the request. */
        std::function<void(const ServiceResponse &)> onComplete;
        /** Nanoseconds from dispatch to the first streamed version,
         *  written by the sink wrapper on a worker thread (-1 = none
         *  yet). Null when the pipeline has no attachSink. */
        std::shared_ptr<std::atomic<std::int64_t>> firstVersionNanos;
    };

    void schedulerLoop(std::stop_token stop);

    /** Runs pipeline factories off the scheduler thread. */
    void builderLoop(std::stop_token stop);

    /** Respond without dispatching (shed/expired/cancelled/failed).
     *  @p id closes the request's trace span (0 = no span open);
     *  @p trace_id stamps the closing events with the request's trace
     *  context and finalizes its QoR timeline; @p on_complete is the
     *  request's completion hook (may be null), invoked after the
     *  promise is fulfilled. */
    void respondImmediately(
        std::promise<ServiceResponse> &promise, ServiceStatus status,
        Clock::time_point submitted, std::uint64_t id = 0,
        std::uint64_t trace_id = 0,
        std::vector<std::string> failures = {},
        const std::function<void(const ServiceResponse &)> *on_complete =
            nullptr) ANYTIME_REQUIRES(mutex);

    /** Harvest a finished pipeline and fulfill its promise (caller
     *  locked: folds the response into the EWMA admission model). */
    void harvest(RunningEntry entry) ANYTIME_REQUIRES(mutex);

    /** Stop every running pipeline whose deadline has passed (caller
     *  locked). */
    void stopOverdueLocked(Clock::time_point now) ANYTIME_REQUIRES(mutex);

    /** Attach finished builds to their pending entries (caller locked);
     *  results for entries that expired or were cancelled while being
     *  built are discarded (their automatons were never started). */
    void integrateBuildResultsLocked() ANYTIME_REQUIRES(mutex);

    /**
     * Admission-control verdict for a new request (caller locked):
     * nullopt admits; a shed status rejects. @p declared_gang is the
     * request's stageWorkers hint (gangs wider than the pool can never
     * dispatch; wide gangs narrow the predicted drain lanes).
     */
    std::optional<ServiceStatus>
    admissionVerdict(Clock::time_point now, Clock::time_point deadline,
                     unsigned declared_gang) const ANYTIME_REQUIRES(mutex);

    /** Per-pipeline-name circuit breaker state. */
    struct CircuitState
    {
        /** Failures since the last success (build or run). */
        unsigned consecutiveFailures = 0;
        /** Submissions are shed until this instant. */
        Clock::time_point openUntil{};
    };

    /** True if @p name's circuit is open at @p now (caller locked). */
    bool circuitOpenLocked(const std::string &name,
                           Clock::time_point now) const
        ANYTIME_REQUIRES(mutex);

    /** Count one failure of @p name; open the circuit at budget. */
    void recordPipelineFailureLocked(const std::string &name,
                                     Clock::time_point now)
        ANYTIME_REQUIRES(mutex);

    /** A success closes @p name's circuit and zeroes its failures. */
    void recordPipelineSuccessLocked(const std::string &name)
        ANYTIME_REQUIRES(mutex);

    /** Deterministic jittered exponential backoff for @p entry's next
     *  build attempt (attempt count already incremented). */
    Clock::duration retryBackoffLocked(const PendingEntry &entry) const
        ANYTIME_REQUIRES(mutex);

    /** Fold one terminal response into the deadline-miss EWMA that
     *  feeds the brownout pressure score (caller locked). */
    void recordMissSignalLocked(const ServiceResponse &response)
        ANYTIME_REQUIRES(mutex);

    /** p99 over the recent-build-latency ring (caller locked). */
    double p99BuildSecondsLocked() const ANYTIME_REQUIRES(mutex);

    /** Sample the load signals and let the brownout controller move
     *  (caller locked). */
    void evaluateBrownoutLocked(Clock::time_point now)
        ANYTIME_REQUIRES(mutex);

    ServerConfig configuration;

    mutable Mutex mutex;
    CondVar wake;
    CondVar idleCv;

    std::multimap<Clock::time_point, PendingEntry>
        pending ANYTIME_GUARDED_BY(mutex);
    std::map<std::uint64_t, RunningEntry>
        running ANYTIME_GUARDED_BY(mutex);
    std::vector<std::uint64_t> finishedIds ANYTIME_GUARDED_BY(mutex);
    /** One factory in flight at a time (builder thread input/output). */
    std::optional<BuildJob> buildJob ANYTIME_GUARDED_BY(mutex);
    std::vector<BuildResult> buildResults ANYTIME_GUARDED_BY(mutex);
    /** Request id being built; 0 = none. */
    std::uint64_t buildInFlight ANYTIME_GUARDED_BY(mutex) = 0;
    CondVar buildCv;
    unsigned slotsUsed ANYTIME_GUARDED_BY(mutex) = 0;
    std::uint64_t nextId ANYTIME_GUARDED_BY(mutex) = 1;
    bool stopping ANYTIME_GUARDED_BY(mutex) = false;
    /** Set by submit(), cleared by the scheduler each iteration. */
    bool pendingDirty ANYTIME_GUARDED_BY(mutex) = false;

    /** Graceful drain: reject new work, run down the accepted queue,
     *  salvage whatever is still running at drainDeadline. */
    bool draining ANYTIME_GUARDED_BY(mutex) = false;
    Clock::time_point drainDeadline ANYTIME_GUARDED_BY(mutex){};
    /** Grace-expiry stops already issued (idempotence guard). */
    bool drainExpired ANYTIME_GUARDED_BY(mutex) = false;

    /** EWMA model of observed service behavior (admission control). */
    double ewmaExecSeconds ANYTIME_GUARDED_BY(mutex) = 0.0;
    double ewmaGang ANYTIME_GUARDED_BY(mutex) = 0.0;
    bool ewmaValid ANYTIME_GUARDED_BY(mutex) = false;
    /** EWMA of factory build time: dispatch throughput is bounded by
     *  the single builder, so queueing delay is too. */
    double ewmaBuildSeconds ANYTIME_GUARDED_BY(mutex) = 0.0;
    bool ewmaBuildValid ANYTIME_GUARDED_BY(mutex) = false;

    /** Brownout load signals: deadline-miss EWMA and a bounded ring of
     *  recent build wall times (p99 source). */
    double ewmaMissRate ANYTIME_GUARDED_BY(mutex) = 0.0;
    static constexpr std::size_t kBuildRingSize = 64;
    std::array<double, kBuildRingSize>
        buildRing ANYTIME_GUARDED_BY(mutex){};
    std::size_t buildRingNext ANYTIME_GUARDED_BY(mutex) = 0;
    std::size_t buildRingCount ANYTIME_GUARDED_BY(mutex) = 0;

    /** Circuit breaker per pipeline name. */
    std::map<std::string, CircuitState>
        circuits ANYTIME_GUARDED_BY(mutex);

    ServiceMetrics metrics ANYTIME_GUARDED_BY(mutex);

    /** Live exposition metrics (owned by the configured registry). */
    struct LiveMetrics
    {
        obs::Counter *submitted = nullptr;
        obs::Counter *served = nullptr;
        obs::Counter *precise = nullptr;
        obs::Counter *shed = nullptr;
        obs::Counter *expired = nullptr;
        obs::Counter *failed = nullptr;
        obs::Counter *cancelled = nullptr;
        obs::Counter *degraded = nullptr;
        obs::Counter *buildRetries = nullptr;
        obs::Counter *circuitOpened = nullptr;
        obs::Gauge *pendingDepth = nullptr;
        obs::Gauge *runningDepth = nullptr;
        obs::LogHistogram *latency = nullptr;
        obs::LogHistogram *queueDelay = nullptr;
        obs::LogHistogram *execTime = nullptr;
        obs::LogHistogram *buildTime = nullptr;
        obs::LogHistogram *firstVersion = nullptr;
        /** QoR summaries fed from the timeline recorder at finish,
         *  annotated with trace-id exemplars. */
        obs::LogHistogram *qualityAtDeadline = nullptr;
        obs::LogHistogram *timeToQ50 = nullptr;
        obs::LogHistogram *timeToQ90 = nullptr;
        obs::LogHistogram *timeToQ99 = nullptr;
        /** Graceful-drain accounting (see beginDrain()). */
        obs::Counter *drainBegun = nullptr;
        obs::Counter *drainSalvaged = nullptr;
        obs::Counter *drainRejected = nullptr;
    };

    /** Fold a terminal response into the live registry metrics. */
    void updateLiveMetrics(const ServiceResponse &response);

    /** Refresh the queue-depth gauges (caller locked). */
    void updateDepthGaugesLocked() ANYTIME_REQUIRES(mutex);

    LiveMetrics live;

    /** Per-request QoR staircases (own internal lock; safe from the
     *  publishing worker threads and the debug endpoints alike). */
    obs::TimelineStore timelineStore;

    /** Brownout state machine (constructed before the scheduler thread
     *  starts; its reads are lock-free, its mutations scheduler-only). */
    std::unique_ptr<BrownoutController> brownout;

    WorkerPool workers;
    std::jthread builder;
    std::jthread scheduler;
};

} // namespace anytime

#endif // ANYTIME_SERVICE_SERVER_HPP
