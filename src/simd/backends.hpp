/**
 * @file
 * Internal backend tables for the SIMD dispatch layer. Each backend
 * file fills one `Ops` table; dispatch.cpp picks among them. The
 * scalar functions are also exported individually so vector backends
 * can reuse them for tails and for float kernels at ISA levels without
 * fused multiply-add.
 */

#ifndef ANYTIME_SIMD_BACKENDS_HPP
#define ANYTIME_SIMD_BACKENDS_HPP

#include "simd/simd.hpp"

namespace anytime::simd::detail {

// ---- scalar specification (always compiled) -------------------------
float scalarDotPadded8(const float *taps, const float *vals,
                       std::size_t n);
float scalarConvDotU8(const std::uint8_t *base, std::size_t rowStride,
                      std::size_t rows, std::size_t lanes,
                      const float *taps);
std::int64_t scalarMaskedSumI32(const std::int32_t *values,
                                const std::uint32_t *selectors,
                                std::size_t n, unsigned bit);
void scalarMaskedAddI64(std::int64_t *acc, const std::int32_t *selectors,
                        std::size_t n, unsigned bit, std::int64_t addend);
void scalarSquaredDistancesRgb(const std::int32_t *cr,
                               const std::int32_t *cg,
                               const std::int32_t *cb, std::size_t n,
                               std::int32_t pr, std::int32_t pg,
                               std::int32_t pb, std::int32_t *out);
void scalarDwtPredict53(const std::int32_t *x, std::size_t n,
                        std::int32_t *high);
void scalarDwtUpdate53(const std::int32_t *x, const std::int32_t *high,
                       std::size_t n, std::int32_t *low);
void scalarDwtRecoverEven53(const std::int32_t *line, std::size_t n,
                            std::int32_t *even);
void scalarDwtInterleave53(const std::int32_t *even,
                           const std::int32_t *high, std::size_t n,
                           std::int32_t *out);
void scalarApplyLutU8(const std::uint8_t *src, std::size_t n,
                      const std::uint8_t *lut, std::uint8_t *dst);

const Ops &scalarOps();

// ---- vector backends (null when the build/arch lacks them) ----------
// Defined in kernels_x86.cpp / kernels_neon.cpp; each returns nullptr
// when the target architecture does not match the backend, and the
// caller must additionally runtime-check CPU support for AVX2.
const Ops *sse2OpsOrNull();
const Ops *avx2OpsOrNull();
const Ops *neonOpsOrNull();

/** Runtime CPU capability checks (false off-architecture). */
bool cpuHasSse2();
bool cpuHasAvx2Fma();
bool cpuHasNeon();

} // namespace anytime::simd::detail

#endif // ANYTIME_SIMD_BACKENDS_HPP
