/**
 * @file
 * Runtime ISA selection. The active kernel table is a single atomic
 * pointer resolved on first use: an ANYTIME_SIMD environment override if
 * present, otherwise the best ISA the CPU reports. forceIsa()/resetIsa()
 * are test/bench hooks, not meant to race against running stages.
 *
 * With -DANYTIME_SIMD=OFF the build defines ANYTIME_SIMD_DISABLED and
 * every backend query collapses to scalar, so the vector code paths are
 * provably absent from the binary, not merely unselected.
 */

#include <atomic>
#include <cstdlib>
#include <string>

#include "simd/backends.hpp"
#include "support/error.hpp"

namespace anytime::simd {

namespace {

using detail::scalarOps;

struct Resolved
{
    Isa isa;
    const Ops *table;
};

const Ops *
tableForSupported(Isa isa)
{
    switch (isa) {
      case Isa::scalar:
        return &scalarOps();
      case Isa::sse2:
        return detail::sse2OpsOrNull();
      case Isa::avx2:
        return detail::avx2OpsOrNull();
      case Isa::neon:
        return detail::neonOpsOrNull();
    }
    return nullptr;
}

/** Parse an ANYTIME_SIMD value; returns false on unknown spelling. */
bool
parseIsaSpec(const std::string &spec, Isa &out)
{
    if (spec == "off" || spec == "scalar" || spec == "0") {
        out = Isa::scalar;
        return true;
    }
    if (spec == "sse2") {
        out = Isa::sse2;
        return true;
    }
    if (spec == "avx2") {
        out = Isa::avx2;
        return true;
    }
    if (spec == "neon") {
        out = Isa::neon;
        return true;
    }
    if (spec == "native" || spec == "auto" || spec == "on") {
        out = bestSupportedIsa();
        return true;
    }
    return false;
}

Resolved
resolveAutomatic()
{
    Isa isa = bestSupportedIsa();
    if (const char *env = std::getenv("ANYTIME_SIMD")) {
        Isa requested;
        fatalIf(!parseIsaSpec(env, requested),
                "ANYTIME_SIMD: unknown value '", env,
                "' (want off|scalar|sse2|avx2|neon|native)");
        fatalIf(!isaSupported(requested), "ANYTIME_SIMD: isa '",
                isaName(requested),
                "' is not supported by this host/build");
        isa = requested;
    }
    return {isa, tableForSupported(isa)};
}

/** Packed (isa, table) state; null table means "not yet resolved". */
std::atomic<const Ops *> g_table{nullptr};
std::atomic<Isa> g_isa{Isa::scalar};

Resolved
currentResolved()
{
    const Ops *table = g_table.load(std::memory_order_acquire);
    if (table != nullptr)
        return {g_isa.load(std::memory_order_relaxed), table};
    Resolved resolved = resolveAutomatic();
    // Publish isa before table: readers key off the table pointer.
    g_isa.store(resolved.isa, std::memory_order_relaxed);
    g_table.store(resolved.table, std::memory_order_release);
    return resolved;
}

} // namespace

const char *
isaName(Isa isa)
{
    switch (isa) {
      case Isa::scalar:
        return "scalar";
      case Isa::sse2:
        return "sse2";
      case Isa::avx2:
        return "avx2";
      case Isa::neon:
        return "neon";
    }
    return "unknown";
}

bool
isaSupported(Isa isa)
{
    switch (isa) {
      case Isa::scalar:
        return true;
      case Isa::sse2:
        return detail::sse2OpsOrNull() != nullptr && detail::cpuHasSse2();
      case Isa::avx2:
        return detail::avx2OpsOrNull() != nullptr &&
               detail::cpuHasAvx2Fma();
      case Isa::neon:
        return detail::neonOpsOrNull() != nullptr && detail::cpuHasNeon();
    }
    return false;
}

Isa
bestSupportedIsa()
{
    if (isaSupported(Isa::avx2))
        return Isa::avx2;
    if (isaSupported(Isa::neon))
        return Isa::neon;
    if (isaSupported(Isa::sse2))
        return Isa::sse2;
    return Isa::scalar;
}

Isa
activeIsa()
{
    return currentResolved().isa;
}

void
forceIsa(Isa isa)
{
    fatalIf(!isaSupported(isa), "forceIsa: isa '", isaName(isa),
            "' is not supported by this host/build");
    g_isa.store(isa, std::memory_order_relaxed);
    g_table.store(tableForSupported(isa), std::memory_order_release);
}

void
resetIsa()
{
    g_table.store(nullptr, std::memory_order_release);
}

const Ops &
ops()
{
    return *currentResolved().table;
}

const Ops &
opsFor(Isa isa)
{
    fatalIf(!isaSupported(isa), "opsFor: isa '", isaName(isa),
            "' is not supported by this host/build");
    return *tableForSupported(isa);
}

} // namespace anytime::simd
