/**
 * @file
 * aarch64 Advanced SIMD backend. NEON registers are 4 lanes wide, so
 * the 8-lane float specification is implemented with two accumulator
 * registers: acc_lo holds spec lanes 0-3, acc_hi holds lanes 4-7, and
 * the reduction acc_lo + acc_hi is exactly the spec's first pairwise
 * step (0+4, 1+5, 2+6, 3+7). vfmaq_f32 is a single-rounding fused
 * multiply-add, matching std::fma / vfmadd231ps bitwise.
 *
 * Only the float and flat integer kernels vectorize here; the DWT
 * lifting kernels stay on the scalar specification (they are exact
 * either way — the table mixes freely).
 */

#include "simd/backends.hpp"

#if defined(__aarch64__) && !defined(ANYTIME_SIMD_DISABLED)

#include <arm_neon.h>

namespace anytime::simd::detail {

namespace {

inline std::int64_t
wrapAdd64(std::int64_t lhs, std::int64_t rhs)
{
    return static_cast<std::int64_t>(static_cast<std::uint64_t>(lhs) +
                                     static_cast<std::uint64_t>(rhs));
}

/** Pairwise reduction of (lanes 0-3, lanes 4-7) per the spec. */
inline float
neonHsumSpec(float32x4_t acc_lo, float32x4_t acc_hi)
{
    const float32x4_t s = vaddq_f32(acc_lo, acc_hi);
    const float32x2_t t = vadd_f32(vget_low_f32(s), vget_high_f32(s));
    return vget_lane_f32(t, 0) + vget_lane_f32(t, 1);
}

float
neonDotPadded8(const float *taps, const float *vals, std::size_t n)
{
    float32x4_t acc_lo = vdupq_n_f32(0.0f);
    float32x4_t acc_hi = vdupq_n_f32(0.0f);
    for (std::size_t g = 0; g < n; g += 8) {
        acc_lo = vfmaq_f32(acc_lo, vld1q_f32(taps + g),
                           vld1q_f32(vals + g));
        acc_hi = vfmaq_f32(acc_hi, vld1q_f32(taps + g + 4),
                           vld1q_f32(vals + g + 4));
    }
    return neonHsumSpec(acc_lo, acc_hi);
}

float
neonConvDotU8(const std::uint8_t *base, std::size_t rowStride,
              std::size_t rows, std::size_t lanes, const float *taps)
{
    float32x4_t acc_lo = vdupq_n_f32(0.0f);
    float32x4_t acc_hi = vdupq_n_f32(0.0f);
    for (std::size_t row = 0; row < rows; ++row) {
        const std::uint8_t *src = base + row * rowStride;
        const float *tap_row = taps + row * lanes;
        for (std::size_t g = 0; g < lanes; g += 8) {
            const uint8x8_t bytes = vld1_u8(src + g);
            const uint16x8_t w = vmovl_u8(bytes);
            const float32x4_t v_lo =
                vcvtq_f32_u32(vmovl_u16(vget_low_u16(w)));
            const float32x4_t v_hi =
                vcvtq_f32_u32(vmovl_u16(vget_high_u16(w)));
            acc_lo = vfmaq_f32(acc_lo, vld1q_f32(tap_row + g), v_lo);
            acc_hi = vfmaq_f32(acc_hi, vld1q_f32(tap_row + g + 4), v_hi);
        }
    }
    return neonHsumSpec(acc_lo, acc_hi);
}

std::int64_t
neonMaskedSumI32(const std::int32_t *values, const std::uint32_t *selectors,
                 std::size_t n, unsigned bit)
{
    const uint32x4_t bitmask = vdupq_n_u32(1u << bit);
    int64x2_t acc = vdupq_n_s64(0);
    std::size_t j = 0;
    for (; j + 4 <= n; j += 4) {
        const uint32x4_t sel = vld1q_u32(selectors + j);
        const uint32x4_t hit =
            vceqq_u32(vandq_u32(sel, bitmask), bitmask);
        const int32x4_t v = vandq_s32(
            vld1q_s32(values + j), vreinterpretq_s32_u32(hit));
        acc = vaddq_s64(acc, vmovl_s32(vget_low_s32(v)));
        acc = vaddq_s64(acc, vmovl_s32(vget_high_s32(v)));
    }
    std::int64_t sum =
        wrapAdd64(vgetq_lane_s64(acc, 0), vgetq_lane_s64(acc, 1));
    if (j < n)
        sum = wrapAdd64(sum,
                        scalarMaskedSumI32(values + j, selectors + j,
                                           n - j, bit));
    return sum;
}

void
neonMaskedAddI64(std::int64_t *acc, const std::int32_t *selectors,
                 std::size_t n, unsigned bit, std::int64_t addend)
{
    const int32x2_t bitmask = vdup_n_s32(static_cast<int>(1u << bit));
    const int64x2_t vadd = vdupq_n_s64(addend);
    std::size_t j = 0;
    for (; j + 2 <= n; j += 2) {
        const int32x2_t sel = vld1_s32(selectors + j);
        const uint32x2_t hit =
            vceq_s32(vand_s32(sel, bitmask), bitmask);
        const int64x2_t mask64 =
            vreinterpretq_s64_u64(vmovl_u32(hit));
        // vmovl zero-extends 0/~0 masks; widen to full 64-bit masks.
        const int64x2_t full = vorrq_s64(
            mask64, vshlq_n_s64(mask64, 32));
        int64x2_t a = vld1q_s64(acc + j);
        a = vaddq_s64(a, vandq_s64(vadd, full));
        vst1q_s64(acc + j, a);
    }
    if (j < n)
        scalarMaskedAddI64(acc + j, selectors + j, n - j, bit, addend);
}

void
neonSquaredDistancesRgb(const std::int32_t *cr, const std::int32_t *cg,
                        const std::int32_t *cb, std::size_t n,
                        std::int32_t pr, std::int32_t pg, std::int32_t pb,
                        std::int32_t *out)
{
    const int32x4_t vpr = vdupq_n_s32(pr);
    const int32x4_t vpg = vdupq_n_s32(pg);
    const int32x4_t vpb = vdupq_n_s32(pb);
    for (std::size_t j = 0; j < n; j += 4) {
        const int32x4_t dr = vsubq_s32(vpr, vld1q_s32(cr + j));
        const int32x4_t dg = vsubq_s32(vpg, vld1q_s32(cg + j));
        const int32x4_t db = vsubq_s32(vpb, vld1q_s32(cb + j));
        int32x4_t sum = vmulq_s32(dr, dr);
        sum = vmlaq_s32(sum, dg, dg);
        sum = vmlaq_s32(sum, db, db);
        vst1q_s32(out + j, sum);
    }
}

} // namespace

const Ops *
neonOpsOrNull()
{
    static const Ops table = {
        &neonDotPadded8,
        &neonConvDotU8,
        &neonMaskedSumI32,
        &neonMaskedAddI64,
        &neonSquaredDistancesRgb,
        &scalarDwtPredict53,
        &scalarDwtUpdate53,
        &scalarDwtRecoverEven53,
        &scalarDwtInterleave53,
        &scalarApplyLutU8,
    };
    return &table;
}

bool
cpuHasNeon()
{
    return true; // Advanced SIMD is mandatory on aarch64
}

} // namespace anytime::simd::detail

#else // !__aarch64__ || ANYTIME_SIMD_DISABLED

namespace anytime::simd::detail {

const Ops *
neonOpsOrNull()
{
    return nullptr;
}

bool
cpuHasNeon()
{
    return false;
}

} // namespace anytime::simd::detail

#endif
