/**
 * @file
 * Scalar reference implementations — the bit-exact specification every
 * vector backend must reproduce. The float kernels emulate the 8-lane
 * FMA layout explicitly (std::fma is a single-rounding IEEE-754
 * operation, exactly like vfmadd231ps / vfmaq_f32), so "forced scalar"
 * is not approximately the vector result: it *is* the vector result.
 */

#include <cmath>

#include "simd/backends.hpp"

namespace anytime::simd::detail {

namespace {

/** Fixed pairwise reduction of the 8 accumulator lanes. */
inline float
hsum8(const float acc[8])
{
    const float s0 = acc[0] + acc[4];
    const float s1 = acc[1] + acc[5];
    const float s2 = acc[2] + acc[6];
    const float s3 = acc[3] + acc[7];
    const float t0 = s0 + s2;
    const float t1 = s1 + s3;
    return t0 + t1;
}

/** Wraparound int64 addition (two's complement, never UB). */
inline std::int64_t
wrapAdd64(std::int64_t lhs, std::int64_t rhs)
{
    return static_cast<std::int64_t>(static_cast<std::uint64_t>(lhs) +
                                     static_cast<std::uint64_t>(rhs));
}

/** Symmetric (whole-sample) extension index into [0, n). */
inline std::size_t
mirrorIndex(std::ptrdiff_t k, std::size_t n)
{
    if (k < 0)
        k = -k;
    if (k >= static_cast<std::ptrdiff_t>(n))
        k = 2 * (static_cast<std::ptrdiff_t>(n) - 1) - k;
    return static_cast<std::size_t>(k);
}

/** Mirror into the detail (high) band of length n_high. */
inline std::size_t
mirrorDetail(std::ptrdiff_t k, std::size_t n_high)
{
    if (k < 0)
        k = -k - 1; // d[-1] mirrors to d[0]
    if (k >= static_cast<std::ptrdiff_t>(n_high))
        k = 2 * static_cast<std::ptrdiff_t>(n_high) - 1 - k;
    return static_cast<std::size_t>(k);
}

} // namespace

float
scalarDotPadded8(const float *taps, const float *vals, std::size_t n)
{
    float acc[8] = {};
    for (std::size_t g = 0; g < n; g += 8) {
        for (std::size_t l = 0; l < 8; ++l)
            acc[l] = std::fma(taps[g + l], vals[g + l], acc[l]);
    }
    return hsum8(acc);
}

float
scalarConvDotU8(const std::uint8_t *base, std::size_t rowStride,
                std::size_t rows, std::size_t lanes, const float *taps)
{
    float acc[8] = {};
    for (std::size_t row = 0; row < rows; ++row) {
        const std::uint8_t *src = base + row * rowStride;
        const float *tap_row = taps + row * lanes;
        for (std::size_t g = 0; g < lanes; g += 8) {
            for (std::size_t l = 0; l < 8; ++l) {
                acc[l] = std::fma(tap_row[g + l],
                                  static_cast<float>(src[g + l]), acc[l]);
            }
        }
    }
    return hsum8(acc);
}

std::int64_t
scalarMaskedSumI32(const std::int32_t *values,
                   const std::uint32_t *selectors, std::size_t n,
                   unsigned bit)
{
    std::uint64_t sum = 0;
    for (std::size_t j = 0; j < n; ++j) {
        if ((selectors[j] >> bit) & 1u)
            sum += static_cast<std::uint64_t>(
                static_cast<std::int64_t>(values[j]));
    }
    return static_cast<std::int64_t>(sum);
}

void
scalarMaskedAddI64(std::int64_t *acc, const std::int32_t *selectors,
                   std::size_t n, unsigned bit, std::int64_t addend)
{
    for (std::size_t j = 0; j < n; ++j) {
        if ((static_cast<std::uint32_t>(selectors[j]) >> bit) & 1u)
            acc[j] = wrapAdd64(acc[j], addend);
    }
}

void
scalarSquaredDistancesRgb(const std::int32_t *cr, const std::int32_t *cg,
                          const std::int32_t *cb, std::size_t n,
                          std::int32_t pr, std::int32_t pg,
                          std::int32_t pb, std::int32_t *out)
{
    for (std::size_t j = 0; j < n; ++j) {
        const std::int32_t dr = pr - cr[j];
        const std::int32_t dg = pg - cg[j];
        const std::int32_t db = pb - cb[j];
        out[j] = dr * dr + dg * dg + db * db;
    }
}

void
scalarDwtPredict53(const std::int32_t *x, std::size_t n,
                   std::int32_t *high)
{
    const std::size_t n_high = n / 2;
    for (std::size_t i = 0; i < n_high; ++i) {
        const std::ptrdiff_t c = static_cast<std::ptrdiff_t>(2 * i + 1);
        high[i] = x[mirrorIndex(c, n)] -
                  ((x[mirrorIndex(c - 1, n)] + x[mirrorIndex(c + 1, n)]) >>
                   1);
    }
}

void
scalarDwtUpdate53(const std::int32_t *x, const std::int32_t *high,
                  std::size_t n, std::int32_t *low)
{
    const std::size_t n_high = n / 2;
    const std::size_t n_low = n - n_high;
    for (std::size_t i = 0; i < n_low; ++i) {
        const std::ptrdiff_t k = static_cast<std::ptrdiff_t>(i);
        low[i] = x[2 * i] + ((high[mirrorDetail(k - 1, n_high)] +
                              high[mirrorDetail(k, n_high)] + 2) >>
                             2);
    }
}

void
scalarDwtRecoverEven53(const std::int32_t *line, std::size_t n,
                       std::int32_t *even)
{
    const std::size_t n_high = n / 2;
    const std::size_t n_low = n - n_high;
    const std::int32_t *detail = line + n_low;
    for (std::size_t i = 0; i < n_low; ++i) {
        const std::ptrdiff_t k = static_cast<std::ptrdiff_t>(i);
        even[i] = line[i] - ((detail[mirrorDetail(k - 1, n_high)] +
                              detail[mirrorDetail(k, n_high)] + 2) >>
                             2);
    }
}

void
scalarDwtInterleave53(const std::int32_t *even, const std::int32_t *high,
                      std::size_t n, std::int32_t *out)
{
    const std::size_t n_high = n / 2;
    const std::size_t n_low = n - n_high;
    for (std::size_t i = 0; i < n_low; ++i)
        out[2 * i] = even[i];
    for (std::size_t i = 0; i < n_high; ++i) {
        // Even-sample mirroring happens in the full-signal domain.
        const std::int32_t e0 = even[mirrorIndex(
            static_cast<std::ptrdiff_t>(2 * i), n) / 2];
        const std::int32_t e1 = even[mirrorIndex(
            static_cast<std::ptrdiff_t>(2 * i + 2), n) / 2];
        out[2 * i + 1] = high[i] + ((e0 + e1) >> 1);
    }
}

void
scalarApplyLutU8(const std::uint8_t *src, std::size_t n,
                 const std::uint8_t *lut, std::uint8_t *dst)
{
    for (std::size_t i = 0; i < n; ++i)
        dst[i] = lut[src[i]];
}

const Ops &
scalarOps()
{
    static const Ops table = {
        &scalarDotPadded8,     &scalarConvDotU8,
        &scalarMaskedSumI32,   &scalarMaskedAddI64,
        &scalarSquaredDistancesRgb,
        &scalarDwtPredict53,   &scalarDwtUpdate53,
        &scalarDwtRecoverEven53, &scalarDwtInterleave53,
        &scalarApplyLutU8,
    };
    return table;
}

} // namespace anytime::simd::detail
