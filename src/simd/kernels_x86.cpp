/**
 * @file
 * x86-64 backends. This translation unit is compiled WITHOUT -mavx2:
 * the AVX2+FMA kernels carry per-function target attributes, so the
 * compiler may only emit VEX instructions inside them and the binary
 * stays runnable on SSE2-only hosts (dispatch never calls an AVX2
 * kernel unless cpuid says so).
 *
 * SSE2 is the x86-64 baseline, but it lacks FMA, and the float kernels
 * are *specified* as fused multiply-adds — so at the SSE2 level the
 * float kernels reuse the scalar-FMA implementation and only the
 * order-free integer kernels vectorize.
 */

#include "simd/backends.hpp"

#if defined(__x86_64__) && !defined(ANYTIME_SIMD_DISABLED)

#include <immintrin.h>

namespace anytime::simd::detail {

namespace {

// ---- shared helpers -------------------------------------------------

inline std::int64_t
wrapAdd64(std::int64_t lhs, std::int64_t rhs)
{
    return static_cast<std::int64_t>(static_cast<std::uint64_t>(lhs) +
                                     static_cast<std::uint64_t>(rhs));
}

inline std::size_t
mirrorIndex(std::ptrdiff_t k, std::size_t n)
{
    if (k < 0)
        k = -k;
    if (k >= static_cast<std::ptrdiff_t>(n))
        k = 2 * (static_cast<std::ptrdiff_t>(n) - 1) - k;
    return static_cast<std::size_t>(k);
}

inline std::size_t
mirrorDetail(std::ptrdiff_t k, std::size_t n_high)
{
    if (k < 0)
        k = -k - 1;
    if (k >= static_cast<std::ptrdiff_t>(n_high))
        k = 2 * static_cast<std::ptrdiff_t>(n_high) - 1 - k;
    return static_cast<std::size_t>(k);
}

// ---- SSE2 integer kernels -------------------------------------------

std::int64_t
sse2MaskedSumI32(const std::int32_t *values, const std::uint32_t *selectors,
                 std::size_t n, unsigned bit)
{
    const __m128i bitmask =
        _mm_set1_epi32(static_cast<int>(1u << bit));
    __m128i acc = _mm_setzero_si128();
    std::size_t j = 0;
    for (; j + 4 <= n; j += 4) {
        const __m128i sel = _mm_loadu_si128(
            reinterpret_cast<const __m128i *>(selectors + j));
        const __m128i hit =
            _mm_cmpeq_epi32(_mm_and_si128(sel, bitmask), bitmask);
        const __m128i v = _mm_and_si128(
            _mm_loadu_si128(
                reinterpret_cast<const __m128i *>(values + j)),
            hit);
        // Sign-extend the four masked lanes to 64-bit and accumulate.
        const __m128i sign = _mm_srai_epi32(v, 31);
        acc = _mm_add_epi64(acc, _mm_unpacklo_epi32(v, sign));
        acc = _mm_add_epi64(acc, _mm_unpackhi_epi32(v, sign));
    }
    alignas(16) std::int64_t lanes[2];
    _mm_store_si128(reinterpret_cast<__m128i *>(lanes), acc);
    std::int64_t sum = wrapAdd64(lanes[0], lanes[1]);
    if (j < n)
        sum = wrapAdd64(sum,
                        scalarMaskedSumI32(values + j, selectors + j,
                                           n - j, bit));
    return sum;
}

void
sse2MaskedAddI64(std::int64_t *acc, const std::int32_t *selectors,
                 std::size_t n, unsigned bit, std::int64_t addend)
{
    const __m128i bitmask =
        _mm_set1_epi32(static_cast<int>(1u << bit));
    const __m128i vadd = _mm_set1_epi64x(addend);
    std::size_t j = 0;
    for (; j + 4 <= n; j += 4) {
        const __m128i sel = _mm_loadu_si128(
            reinterpret_cast<const __m128i *>(selectors + j));
        const __m128i hit =
            _mm_cmpeq_epi32(_mm_and_si128(sel, bitmask), bitmask);
        // hit lanes are 0 or ~0, so pairing a lane with itself widens
        // the 32-bit mask to a 64-bit mask.
        const __m128i mask_lo = _mm_unpacklo_epi32(hit, hit);
        const __m128i mask_hi = _mm_unpackhi_epi32(hit, hit);
        __m128i a0 = _mm_loadu_si128(
            reinterpret_cast<const __m128i *>(acc + j));
        __m128i a1 = _mm_loadu_si128(
            reinterpret_cast<const __m128i *>(acc + j + 2));
        a0 = _mm_add_epi64(a0, _mm_and_si128(vadd, mask_lo));
        a1 = _mm_add_epi64(a1, _mm_and_si128(vadd, mask_hi));
        _mm_storeu_si128(reinterpret_cast<__m128i *>(acc + j), a0);
        _mm_storeu_si128(reinterpret_cast<__m128i *>(acc + j + 2), a1);
    }
    if (j < n)
        scalarMaskedAddI64(acc + j, selectors + j, n - j, bit, addend);
}

// ---- AVX2+FMA kernels -----------------------------------------------

#define ANYTIME_AVX2 __attribute__((target("avx2,fma")))

/** The fixed pairwise reduction specified in simd.hpp, on a __m256. */
ANYTIME_AVX2 inline float
avx2HsumSpec(__m256 acc)
{
    const __m128 lo = _mm256_castps256_ps128(acc);
    const __m128 hi = _mm256_extractf128_ps(acc, 1);
    const __m128 s = _mm_add_ps(lo, hi); // (0+4, 1+5, 2+6, 3+7)
    const __m128 t = _mm_add_ps(s, _mm_movehl_ps(s, s)); // (s0+s2, s1+s3)
    const __m128 r = _mm_add_ss(t, _mm_shuffle_ps(t, t, 0x1));
    return _mm_cvtss_f32(r);
}

ANYTIME_AVX2 float
avx2DotPadded8(const float *taps, const float *vals, std::size_t n)
{
    __m256 acc = _mm256_setzero_ps();
    for (std::size_t g = 0; g < n; g += 8) {
        acc = _mm256_fmadd_ps(_mm256_loadu_ps(taps + g),
                              _mm256_loadu_ps(vals + g), acc);
    }
    return avx2HsumSpec(acc);
}

ANYTIME_AVX2 float
avx2ConvDotU8(const std::uint8_t *base, std::size_t rowStride,
              std::size_t rows, std::size_t lanes, const float *taps)
{
    __m256 acc = _mm256_setzero_ps();
    for (std::size_t row = 0; row < rows; ++row) {
        const std::uint8_t *src = base + row * rowStride;
        const float *tap_row = taps + row * lanes;
        for (std::size_t g = 0; g < lanes; g += 8) {
            const __m128i bytes = _mm_loadl_epi64(
                reinterpret_cast<const __m128i *>(src + g));
            const __m256 vals =
                _mm256_cvtepi32_ps(_mm256_cvtepu8_epi32(bytes));
            acc = _mm256_fmadd_ps(_mm256_loadu_ps(tap_row + g), vals,
                                  acc);
        }
    }
    return avx2HsumSpec(acc);
}

ANYTIME_AVX2 std::int64_t
avx2MaskedSumI32(const std::int32_t *values, const std::uint32_t *selectors,
                 std::size_t n, unsigned bit)
{
    const __m256i bitmask =
        _mm256_set1_epi32(static_cast<int>(1u << bit));
    __m256i acc_lo = _mm256_setzero_si256();
    __m256i acc_hi = _mm256_setzero_si256();
    std::size_t j = 0;
    for (; j + 8 <= n; j += 8) {
        const __m256i sel = _mm256_loadu_si256(
            reinterpret_cast<const __m256i *>(selectors + j));
        const __m256i hit =
            _mm256_cmpeq_epi32(_mm256_and_si256(sel, bitmask), bitmask);
        const __m256i v = _mm256_and_si256(
            _mm256_loadu_si256(
                reinterpret_cast<const __m256i *>(values + j)),
            hit);
        acc_lo = _mm256_add_epi64(
            acc_lo,
            _mm256_cvtepi32_epi64(_mm256_castsi256_si128(v)));
        acc_hi = _mm256_add_epi64(
            acc_hi,
            _mm256_cvtepi32_epi64(_mm256_extracti128_si256(v, 1)));
    }
    alignas(32) std::int64_t lanes[4];
    _mm256_store_si256(reinterpret_cast<__m256i *>(lanes),
                       _mm256_add_epi64(acc_lo, acc_hi));
    std::int64_t sum = wrapAdd64(wrapAdd64(lanes[0], lanes[1]),
                                 wrapAdd64(lanes[2], lanes[3]));
    if (j < n)
        sum = wrapAdd64(sum,
                        scalarMaskedSumI32(values + j, selectors + j,
                                           n - j, bit));
    return sum;
}

ANYTIME_AVX2 void
avx2MaskedAddI64(std::int64_t *acc, const std::int32_t *selectors,
                 std::size_t n, unsigned bit, std::int64_t addend)
{
    const __m128i bitmask =
        _mm_set1_epi32(static_cast<int>(1u << bit));
    const __m256i vadd = _mm256_set1_epi64x(addend);
    std::size_t j = 0;
    for (; j + 4 <= n; j += 4) {
        const __m128i sel = _mm_loadu_si128(
            reinterpret_cast<const __m128i *>(selectors + j));
        const __m128i hit =
            _mm_cmpeq_epi32(_mm_and_si128(sel, bitmask), bitmask);
        const __m256i mask64 = _mm256_cvtepi32_epi64(hit);
        __m256i a = _mm256_loadu_si256(
            reinterpret_cast<const __m256i *>(acc + j));
        a = _mm256_add_epi64(a, _mm256_and_si256(vadd, mask64));
        _mm256_storeu_si256(reinterpret_cast<__m256i *>(acc + j), a);
    }
    if (j < n)
        scalarMaskedAddI64(acc + j, selectors + j, n - j, bit, addend);
}

ANYTIME_AVX2 void
avx2SquaredDistancesRgb(const std::int32_t *cr, const std::int32_t *cg,
                        const std::int32_t *cb, std::size_t n,
                        std::int32_t pr, std::int32_t pg, std::int32_t pb,
                        std::int32_t *out)
{
    const __m256i vpr = _mm256_set1_epi32(pr);
    const __m256i vpg = _mm256_set1_epi32(pg);
    const __m256i vpb = _mm256_set1_epi32(pb);
    for (std::size_t j = 0; j < n; j += 8) {
        const __m256i dr = _mm256_sub_epi32(
            vpr, _mm256_loadu_si256(
                     reinterpret_cast<const __m256i *>(cr + j)));
        const __m256i dg = _mm256_sub_epi32(
            vpg, _mm256_loadu_si256(
                     reinterpret_cast<const __m256i *>(cg + j)));
        const __m256i db = _mm256_sub_epi32(
            vpb, _mm256_loadu_si256(
                     reinterpret_cast<const __m256i *>(cb + j)));
        const __m256i sum = _mm256_add_epi32(
            _mm256_add_epi32(_mm256_mullo_epi32(dr, dr),
                             _mm256_mullo_epi32(dg, dg)),
            _mm256_mullo_epi32(db, db));
        _mm256_storeu_si256(reinterpret_cast<__m256i *>(out + j), sum);
    }
}

/**
 * Deinterleave helper: given the 16 ints at x[off .. off+15], return
 * the 8 even-position elements x[off], x[off+2], ..., x[off+14].
 */
ANYTIME_AVX2 inline __m256i
avx2GatherEvens(const std::int32_t *x)
{
    const __m256i even_idx = _mm256_setr_epi32(0, 2, 4, 6, 1, 3, 5, 7);
    const __m256i a = _mm256_loadu_si256(
        reinterpret_cast<const __m256i *>(x));
    const __m256i b = _mm256_loadu_si256(
        reinterpret_cast<const __m256i *>(x + 8));
    const __m256i ap = _mm256_permutevar8x32_epi32(a, even_idx);
    const __m256i bp = _mm256_permutevar8x32_epi32(b, even_idx);
    return _mm256_permute2x128_si256(ap, bp, 0x20);
}

/** Companion to avx2GatherEvens: the 8 odd-position elements. */
ANYTIME_AVX2 inline __m256i
avx2GatherOdds(const std::int32_t *x)
{
    const __m256i even_idx = _mm256_setr_epi32(0, 2, 4, 6, 1, 3, 5, 7);
    const __m256i a = _mm256_loadu_si256(
        reinterpret_cast<const __m256i *>(x));
    const __m256i b = _mm256_loadu_si256(
        reinterpret_cast<const __m256i *>(x + 8));
    const __m256i ap = _mm256_permutevar8x32_epi32(a, even_idx);
    const __m256i bp = _mm256_permutevar8x32_epi32(b, even_idx);
    return _mm256_permute2x128_si256(ap, bp, 0x31);
}

ANYTIME_AVX2 void
avx2DwtPredict53(const std::int32_t *x, std::size_t n, std::int32_t *high)
{
    const std::size_t n_high = n / 2;
    std::size_t i = 0;
    // Vector main loop reads x[2i .. 2i+17]; stop before the edge.
    while (i + 8 <= n_high && 2 * i + 18 <= n) {
        const __m256i even = avx2GatherEvens(x + 2 * i);
        const __m256i odd = avx2GatherOdds(x + 2 * i);
        const __m256i even2 = avx2GatherEvens(x + 2 * i + 2);
        const __m256i h = _mm256_sub_epi32(
            odd,
            _mm256_srai_epi32(_mm256_add_epi32(even, even2), 1));
        _mm256_storeu_si256(reinterpret_cast<__m256i *>(high + i), h);
        i += 8;
    }
    for (; i < n_high; ++i) {
        const std::ptrdiff_t c = static_cast<std::ptrdiff_t>(2 * i + 1);
        high[i] = x[mirrorIndex(c, n)] -
                  ((x[mirrorIndex(c - 1, n)] + x[mirrorIndex(c + 1, n)]) >>
                   1);
    }
}

ANYTIME_AVX2 void
avx2DwtUpdate53(const std::int32_t *x, const std::int32_t *high,
                std::size_t n, std::int32_t *low)
{
    const std::size_t n_high = n / 2;
    const std::size_t n_low = n - n_high;
    const __m256i two = _mm256_set1_epi32(2);
    std::size_t i = 0;
    if (n_high > 0) {
        // i = 0 needs the d[-1] mirror; do it scalar.
        low[0] = x[0] + ((high[0] + high[0] + 2) >> 2);
        i = 1;
        while (i + 8 <= n_high && 2 * i + 16 <= n) {
            const __m256i even = avx2GatherEvens(x + 2 * i);
            const __m256i dm1 = _mm256_loadu_si256(
                reinterpret_cast<const __m256i *>(high + i - 1));
            const __m256i d0 = _mm256_loadu_si256(
                reinterpret_cast<const __m256i *>(high + i));
            const __m256i s = _mm256_srai_epi32(
                _mm256_add_epi32(_mm256_add_epi32(dm1, d0), two), 2);
            _mm256_storeu_si256(reinterpret_cast<__m256i *>(low + i),
                                _mm256_add_epi32(even, s));
            i += 8;
        }
    }
    for (; i < n_low; ++i) {
        const std::ptrdiff_t k = static_cast<std::ptrdiff_t>(i);
        low[i] = x[2 * i] + ((high[mirrorDetail(k - 1, n_high)] +
                              high[mirrorDetail(k, n_high)] + 2) >>
                             2);
    }
}

ANYTIME_AVX2 void
avx2DwtRecoverEven53(const std::int32_t *line, std::size_t n,
                     std::int32_t *even)
{
    const std::size_t n_high = n / 2;
    const std::size_t n_low = n - n_high;
    const std::int32_t *detail = line + n_low;
    const __m256i two = _mm256_set1_epi32(2);
    std::size_t i = 0;
    if (n_high > 0) {
        even[0] = line[0] - ((detail[0] + detail[0] + 2) >> 2);
        i = 1;
        while (i + 8 <= n_high) {
            const __m256i s0 = _mm256_loadu_si256(
                reinterpret_cast<const __m256i *>(line + i));
            const __m256i dm1 = _mm256_loadu_si256(
                reinterpret_cast<const __m256i *>(detail + i - 1));
            const __m256i d0 = _mm256_loadu_si256(
                reinterpret_cast<const __m256i *>(detail + i));
            const __m256i s = _mm256_srai_epi32(
                _mm256_add_epi32(_mm256_add_epi32(dm1, d0), two), 2);
            _mm256_storeu_si256(reinterpret_cast<__m256i *>(even + i),
                                _mm256_sub_epi32(s0, s));
            i += 8;
        }
    }
    for (; i < n_low; ++i) {
        const std::ptrdiff_t k = static_cast<std::ptrdiff_t>(i);
        even[i] = line[i] - ((detail[mirrorDetail(k - 1, n_high)] +
                              detail[mirrorDetail(k, n_high)] + 2) >>
                             2);
    }
}

ANYTIME_AVX2 void
avx2DwtInterleave53(const std::int32_t *even, const std::int32_t *high,
                    std::size_t n, std::int32_t *out)
{
    const std::size_t n_high = n / 2;
    const std::size_t n_low = n - n_high;
    std::size_t i = 0;
    while (i + 8 <= n_high && i + 9 <= n_low) {
        const __m256i ev0 = _mm256_loadu_si256(
            reinterpret_cast<const __m256i *>(even + i));
        const __m256i ev1 = _mm256_loadu_si256(
            reinterpret_cast<const __m256i *>(even + i + 1));
        const __m256i h = _mm256_loadu_si256(
            reinterpret_cast<const __m256i *>(high + i));
        const __m256i odd = _mm256_add_epi32(
            h, _mm256_srai_epi32(_mm256_add_epi32(ev0, ev1), 1));
        const __m256i lo = _mm256_unpacklo_epi32(ev0, odd);
        const __m256i hi = _mm256_unpackhi_epi32(ev0, odd);
        _mm256_storeu_si256(
            reinterpret_cast<__m256i *>(out + 2 * i),
            _mm256_permute2x128_si256(lo, hi, 0x20));
        _mm256_storeu_si256(
            reinterpret_cast<__m256i *>(out + 2 * i + 8),
            _mm256_permute2x128_si256(lo, hi, 0x31));
        i += 8;
    }
    for (std::size_t k = i; k < n_low; ++k)
        out[2 * k] = even[k];
    for (std::size_t k = i; k < n_high; ++k) {
        const std::int32_t e0 =
            even[mirrorIndex(static_cast<std::ptrdiff_t>(2 * k), n) / 2];
        const std::int32_t e1 = even[
            mirrorIndex(static_cast<std::ptrdiff_t>(2 * k + 2), n) / 2];
        out[2 * k + 1] = high[k] + ((e0 + e1) >> 1);
    }
}

#undef ANYTIME_AVX2

} // namespace

const Ops *
sse2OpsOrNull()
{
    static const Ops table = {
        &scalarDotPadded8, // no FMA below AVX2: scalar is the spec
        &scalarConvDotU8,
        &sse2MaskedSumI32,
        &sse2MaskedAddI64,
        &scalarSquaredDistancesRgb,
        &scalarDwtPredict53,
        &scalarDwtUpdate53,
        &scalarDwtRecoverEven53,
        &scalarDwtInterleave53,
        &scalarApplyLutU8,
    };
    return &table;
}

const Ops *
avx2OpsOrNull()
{
    static const Ops table = {
        &avx2DotPadded8,
        &avx2ConvDotU8,
        &avx2MaskedSumI32,
        &avx2MaskedAddI64,
        &avx2SquaredDistancesRgb,
        &avx2DwtPredict53,
        &avx2DwtUpdate53,
        &avx2DwtRecoverEven53,
        &avx2DwtInterleave53,
        &scalarApplyLutU8, // byte-LUT gather does not vectorize
    };
    return &table;
}

bool
cpuHasSse2()
{
    return true; // SSE2 is the x86-64 baseline
}

bool
cpuHasAvx2Fma()
{
    return __builtin_cpu_supports("avx2") &&
           __builtin_cpu_supports("fma");
}

} // namespace anytime::simd::detail

#else // !__x86_64__ || ANYTIME_SIMD_DISABLED

namespace anytime::simd::detail {

const Ops *
sse2OpsOrNull()
{
    return nullptr;
}

const Ops *
avx2OpsOrNull()
{
    return nullptr;
}

bool
cpuHasSse2()
{
    return false;
}

bool
cpuHasAvx2Fma()
{
    return false;
}

} // namespace anytime::simd::detail

#endif
