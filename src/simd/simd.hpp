/**
 * @file
 * Runtime-dispatched SIMD kernels for the application hot paths.
 *
 * The anytime contract (every published version bit-identical to the
 * single-worker scalar run) extends to vectorization: a kernel here is
 * a *specification* of the exact arithmetic — lane layout, operation
 * order, rounding — and every backend (scalar, SSE2, AVX2, NEON) must
 * implement that specification bit-for-bit. Two rules make this
 * possible:
 *
 *  1. Integer kernels are order-free by construction (two's-complement
 *     wraparound sums commute exactly), so backends may reassociate.
 *  2. Float kernels are specified as 8-lane fused-multiply-add
 *     accumulation followed by a *fixed pairwise* horizontal reduction:
 *     lanes (0+4, 1+5, 2+6, 3+7) → (s0+s2, s1+s3) → final add. The
 *     scalar backend emulates the 8 lanes with std::fma, the AVX2
 *     backend uses vfmadd231ps — both are single-rounding IEEE-754
 *     operations, so the bits agree. (Plain SSE2 has no FMA, so the
 *     float kernels fall back to the scalar-FMA implementation at that
 *     level; the integer kernels still vectorize.)
 *
 * Dispatch is resolved once at runtime (cpuid on x86), can be forced
 * with forceIsa() (tests, benches) or the ANYTIME_SIMD environment
 * variable (off|scalar|sse2|avx2|neon|native), and is compiled out
 * entirely with -DANYTIME_SIMD=OFF (every call then runs the scalar
 * specification).
 *
 * The flip side of the contract: kernel code over data-plane types
 * (Image, ApproxStorage) outside src/simd/ must not accumulate floats
 * with raw +=/-= loops — route the reduction through this ops table so
 * there is exactly one arithmetic specification. The clang-tidy check
 * anytime-raw-float-in-kernel and the whole-program SIMD-spec pass in
 * tools/anytime_verify both enforce this; *Reference functions (scalar
 * ground truth in tests) and floating-point metric helpers are exempt.
 */

#ifndef ANYTIME_SIMD_SIMD_HPP
#define ANYTIME_SIMD_SIMD_HPP

#include <atomic>
#include <cstddef>
#include <cstdint>

namespace anytime::simd {

/** Instruction-set levels, in increasing capability order. */
enum class Isa : std::uint8_t
{
    scalar = 0, ///< portable reference specification (always available)
    sse2,       ///< x86-64 baseline: integer kernels only
    avx2,       ///< x86 AVX2+FMA: all kernels
    neon,       ///< aarch64 Advanced SIMD: all kernels
};

/** Human-readable ISA name ("scalar", "sse2", ...). */
const char *isaName(Isa isa);

/** True when @p isa can execute on this host and build. */
bool isaSupported(Isa isa);

/** Best ISA this host and build support. */
Isa bestSupportedIsa();

/**
 * Currently active ISA. Resolved on first use: ANYTIME_SIMD env
 * override if set, otherwise bestSupportedIsa().
 */
Isa activeIsa();

/**
 * Force dispatch to @p isa (must be supported — fatal otherwise).
 * Used by the bit-identity tests and the scalar-vs-SIMD benches.
 * Not meant to be raced against running stages: force, then run.
 */
void forceIsa(Isa isa);

/** Drop any forceIsa()/env decision and re-resolve automatically. */
void resetIsa();

/**
 * Kernel table for one ISA level. All pointers are always non-null.
 *
 * Lane/width contracts (callers must pad; kernels never read past the
 * documented extent):
 *  - dotPadded8: n is a multiple of 8; the 8-lane FMA + fixed pairwise
 *    reduction specification above.
 *  - convDotU8: reads `lanes` bytes (a multiple of 8) from each of
 *    `rows` rows spaced `rowStride` apart — the caller guarantees all
 *    of them are in bounds — converts u8→f32 (exact) and runs the same
 *    8-lane FMA specification against `taps` (rows × lanes, row-major,
 *    zero-padded). Padding taps are exactly 0.0f, and because pixel
 *    values are non-negative, a zero tap contributes exactly +0.0f to
 *    its lane, so padded lanes never perturb the sum.
 *  - maskedSumI32 / maskedAddI64: arbitrary n, exact wraparound
 *    integer arithmetic (order-free).
 *  - squaredDistancesRgb: n is a multiple of 8 (pad the SoA arrays).
 *  - DWT kernels: exact int32 elementwise lifting formulas (order-free).
 *  - applyLutU8: arbitrary n, exact byte LUT.
 */
struct Ops
{
    /** Padded 8-lane FMA dot product; n % 8 == 0. */
    float (*dotPadded8)(const float *taps, const float *vals,
                        std::size_t n);

    /**
     * Convolution dot product over a row-strided u8 neighborhood:
     * sum over rows r, lanes l of taps[r*lanes+l] * base[r*rowStride+l]
     * per the 8-lane FMA specification. lanes % 8 == 0.
     */
    float (*convDotU8)(const std::uint8_t *base, std::size_t rowStride,
                       std::size_t rows, std::size_t lanes,
                       const float *taps);

    /**
     * Sum of values[j] (sign-extended to 64-bit) over every j where
     * bit @p bit of selectors[j] is set; two's-complement wraparound.
     */
    std::int64_t (*maskedSumI32)(const std::int32_t *values,
                                 const std::uint32_t *selectors,
                                 std::size_t n, unsigned bit);

    /**
     * acc[j] += addend (wraparound) for every j where bit @p bit of
     * selectors[j] is set.
     */
    void (*maskedAddI64)(std::int64_t *acc, const std::int32_t *selectors,
                         std::size_t n, unsigned bit,
                         std::int64_t addend);

    /**
     * out[j] = (pr-cr[j])^2 + (pg-cg[j])^2 + (pb-cb[j])^2 for j < n;
     * channel values in [0,255] so the result fits int32 exactly.
     * n % 8 == 0.
     */
    void (*squaredDistancesRgb)(const std::int32_t *cr,
                                const std::int32_t *cg,
                                const std::int32_t *cb, std::size_t n,
                                std::int32_t pr, std::int32_t pg,
                                std::int32_t pb, std::int32_t *out);

    /**
     * 5/3 forward predict: high[i] = x[2i+1] - ((x[2i] + x[2i+2]) >> 1)
     * for i < n/2, with whole-sample mirroring at the right edge.
     */
    void (*dwtPredict53)(const std::int32_t *x, std::size_t n,
                         std::int32_t *high);

    /**
     * 5/3 forward update: low[i] = x[2i] + ((d[i-1] + d[i] + 2) >> 2)
     * for i < n - n/2, with d mirrored at both edges.
     */
    void (*dwtUpdate53)(const std::int32_t *x, const std::int32_t *high,
                        std::size_t n, std::int32_t *low);

    /**
     * 5/3 inverse un-update: even[i] = line[i] - ((d[i-1]+d[i]+2) >> 2)
     * where d[k] = line[n - n/2 + mirrored k].
     */
    void (*dwtRecoverEven53)(const std::int32_t *line, std::size_t n,
                             std::int32_t *even);

    /**
     * 5/3 inverse interleave: out[2i] = even[i], out[2i+1] =
     * high[i] + ((e[i] + e[i+1]) >> 1) with full-signal mirroring.
     */
    void (*dwtInterleave53)(const std::int32_t *even,
                            const std::int32_t *high, std::size_t n,
                            std::int32_t *out);

    /** dst[i] = lut[src[i]] for i < n. */
    void (*applyLutU8)(const std::uint8_t *src, std::size_t n,
                       const std::uint8_t *lut, std::uint8_t *dst);
};

/** Kernel table of the currently active ISA. */
const Ops &ops();

/** Kernel table for a specific supported ISA (fatal if unsupported). */
const Ops &opsFor(Isa isa);

/**
 * Dense byte histogram with four interleaved sub-counters (breaks the
 * same-bin dependency chain; exact by commutativity of uint64 sums).
 * Not ISA-dispatched — scatter increments do not vectorize — but lives
 * here because it is the histeq inner-loop specification.
 */
inline void
histogram256(const std::uint8_t *src, std::size_t n,
             std::uint64_t bins[256])
{
    std::uint64_t sub0[256] = {}, sub1[256] = {}, sub2[256] = {},
                  sub3[256] = {};
    std::size_t i = 0;
    for (; i + 4 <= n; i += 4) {
        ++sub0[src[i]];
        ++sub1[src[i + 1]];
        ++sub2[src[i + 2]];
        ++sub3[src[i + 3]];
    }
    for (; i < n; ++i)
        ++sub0[src[i]];
    for (std::size_t v = 0; v < 256; ++v)
        bins[v] += sub0[v] + sub1[v] + sub2[v] + sub3[v];
}

} // namespace anytime::simd

#endif // ANYTIME_SIMD_SIMD_HPP
