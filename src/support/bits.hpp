/**
 * @file
 * Bit-manipulation primitives used by the sampling permutations.
 *
 * The tree (bit-reverse) permutation of Section III-B2 of the paper is
 * built from bit reversal and bit de-interleaving of set indices; the
 * LFSR permutation needs power-of-two sizing helpers. Everything here is
 * constexpr so permutations can be unit-tested exhaustively and used in
 * compile-time contexts.
 */

#ifndef ANYTIME_SUPPORT_BITS_HPP
#define ANYTIME_SUPPORT_BITS_HPP

#include <cstdint>

namespace anytime {

/** True iff @p value is a power of two (zero is not). */
constexpr bool
isPow2(std::uint64_t value)
{
    return value != 0 && (value & (value - 1)) == 0;
}

/** Floor of log2(@p value); ilog2(0) is defined as 0. */
constexpr unsigned
ilog2(std::uint64_t value)
{
    unsigned result = 0;
    while (value > 1) {
        value >>= 1;
        ++result;
    }
    return result;
}

/** Smallest power of two >= @p value; nextPow2(0) == 1. */
constexpr std::uint64_t
nextPow2(std::uint64_t value)
{
    std::uint64_t result = 1;
    while (result < value)
        result <<= 1;
    return result;
}

/** Number of bits needed to represent indices [0, value); at least 1. */
constexpr unsigned
indexBits(std::uint64_t value)
{
    unsigned bits = 1;
    while ((std::uint64_t(1) << bits) < value)
        ++bits;
    return bits;
}

/**
 * Reverse the low @p bits bits of @p value (higher bits are dropped).
 * This is the 1-D tree permutation of the paper's Figure 4.
 */
constexpr std::uint64_t
reverseBits(std::uint64_t value, unsigned bits)
{
    std::uint64_t result = 0;
    for (unsigned i = 0; i < bits; ++i) {
        result = (result << 1) | (value & 1);
        value >>= 1;
    }
    return result;
}

/**
 * Extract every @p stride-th bit of @p value starting at bit @p phase,
 * packing them contiguously from bit 0. Used to de-interleave an
 * N-dimensional set index into per-dimension indices (Figure 5).
 */
constexpr std::uint64_t
extractEveryNth(std::uint64_t value, unsigned phase, unsigned stride,
                unsigned total_bits)
{
    std::uint64_t result = 0;
    unsigned out = 0;
    for (unsigned i = phase; i < total_bits; i += stride) {
        result |= ((value >> i) & 1) << out;
        ++out;
    }
    return result;
}

/**
 * Interleave the low bits of @p parts[0..count) so that bit j of part d
 * lands at bit j*count + d of the result. Inverse of extractEveryNth
 * applied per dimension.
 */
constexpr std::uint64_t
interleaveBits(const std::uint64_t *parts, unsigned count,
               unsigned bits_per_part)
{
    std::uint64_t result = 0;
    for (unsigned j = 0; j < bits_per_part; ++j) {
        for (unsigned d = 0; d < count; ++d) {
            result |= ((parts[d] >> j) & 1)
                   << (static_cast<std::uint64_t>(j) * count + d);
        }
    }
    return result;
}

} // namespace anytime

#endif // ANYTIME_SUPPORT_BITS_HPP
