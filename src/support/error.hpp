/**
 * @file
 * Error reporting helpers, in the spirit of gem5's panic()/fatal().
 *
 * panic() is for internal invariant violations (bugs in this library);
 * fatal() is for unrecoverable user errors (bad configuration, bad
 * arguments). Both throw typed exceptions rather than aborting so that
 * tests can assert on them.
 */

#ifndef ANYTIME_SUPPORT_ERROR_HPP
#define ANYTIME_SUPPORT_ERROR_HPP

#include <sstream>
#include <stdexcept>
#include <string>

namespace anytime {

/** Exception thrown on internal invariant violations (library bugs). */
class PanicError : public std::logic_error
{
  public:
    explicit PanicError(const std::string &msg) : std::logic_error(msg) {}
};

/** Exception thrown on unrecoverable user/configuration errors. */
class FatalError : public std::runtime_error
{
  public:
    explicit FatalError(const std::string &msg) : std::runtime_error(msg) {}
};

namespace detail {

inline void
formatInto(std::ostringstream &)
{
}

template <typename T, typename... Rest>
void
formatInto(std::ostringstream &os, const T &value, const Rest &...rest)
{
    os << value;
    formatInto(os, rest...);
}

} // namespace detail

/**
 * Raise a PanicError with a message built from the stream-formatted
 * arguments. Use for conditions that indicate a bug in this library.
 */
template <typename... Args>
[[noreturn]] void
panic(const Args &...args)
{
    std::ostringstream os;
    os << "panic: ";
    detail::formatInto(os, args...);
    throw PanicError(os.str());
}

/**
 * Raise a FatalError with a message built from the stream-formatted
 * arguments. Use for user-caused errors the library cannot recover from.
 */
template <typename... Args>
[[noreturn]] void
fatal(const Args &...args)
{
    std::ostringstream os;
    os << "fatal: ";
    detail::formatInto(os, args...);
    throw FatalError(os.str());
}

/** Panic unless the given invariant holds. */
template <typename... Args>
void
panicIf(bool condition, const Args &...args)
{
    if (condition)
        panic(args...);
}

/** Fatal unless the given user-facing precondition holds. */
template <typename... Args>
void
fatalIf(bool condition, const Args &...args)
{
    if (condition)
        fatal(args...);
}

} // namespace anytime

#endif // ANYTIME_SUPPORT_ERROR_HPP
