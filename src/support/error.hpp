/**
 * @file
 * Error reporting helpers, in the spirit of gem5's panic()/fatal().
 *
 * panic() is for internal invariant violations (bugs in this library);
 * fatal() is for unrecoverable user errors (bad configuration, bad
 * arguments). Both throw typed exceptions rather than aborting so that
 * tests can assert on them.
 *
 * The fault taxonomy (FaultKind, StageError) classifies the failures the
 * resilient execution paths contain: a throwing stage body, a stalled
 * worker, a corrupted approximate version, or a deadline overrun. The
 * containment code (Automaton quarantine, SweepBarrier watchdog, the
 * serving runtime's retry/circuit-breaker) keys off this taxonomy, and
 * the deterministic fault injector (src/fault/) raises StageError so
 * injected and organic faults flow through the same paths.
 *
 * noexcept contract: everything on the unwind path of a contained fault
 * must itself be non-throwing — scope-guard destructors, barrier
 * release, and the final merge bookkeeping are annotated noexcept where
 * the containment relies on it (see SweepBarrier::release and the
 * destructors in core/).
 */

#ifndef ANYTIME_SUPPORT_ERROR_HPP
#define ANYTIME_SUPPORT_ERROR_HPP

#include <cstdint>
#include <sstream>
#include <stdexcept>
#include <string>

namespace anytime {

/** Exception thrown on internal invariant violations (library bugs). */
class PanicError : public std::logic_error
{
  public:
    explicit PanicError(const std::string &msg) : std::logic_error(msg) {}
};

/** Exception thrown on unrecoverable user/configuration errors. */
class FatalError : public std::runtime_error
{
  public:
    explicit FatalError(const std::string &msg) : std::runtime_error(msg) {}
};

/**
 * Classes of fault the resilient execution paths contain. Faults are
 * involuntary interruptions: the anytime model absorbs them by
 * degrading to the last published version instead of dying.
 */
enum class FaultKind : std::uint8_t
{
    /** Not a fault (sentinel for "no rule matched"). */
    none,
    /** A stage body (or merge) threw an exception. */
    thrown,
    /** A worker stopped making progress (detected by the watchdog). */
    stalled,
    /** An approximate published version was corrupted in flight. */
    corrupted,
    /** A stage blew through its time budget (long stall variant). */
    overrun,
};

/** Human-readable fault-kind name (plan specs use the same spelling). */
constexpr const char *
faultKindName(FaultKind kind) noexcept
{
    switch (kind) {
      case FaultKind::none:
        return "none";
      case FaultKind::thrown:
        return "throw";
      case FaultKind::stalled:
        return "stall";
      case FaultKind::corrupted:
        return "corrupt";
      case FaultKind::overrun:
        return "overrun";
    }
    return "unknown";
}

/**
 * A classified stage-level failure: which stage, which window of its
 * sweep, and what kind of fault. Thrown by the fault injector and
 * caught (as std::exception) at the sweep boundary in
 * Automaton::workerMain, where the quarantine policy turns it into
 * graceful degradation instead of a pipeline-wide stop.
 */
class StageError : public std::runtime_error
{
  public:
    StageError(FaultKind kind, std::string stage, std::uint64_t window,
               const std::string &msg)
        : std::runtime_error("stage '" + stage + "' window " +
                             std::to_string(window) + " [" +
                             faultKindName(kind) + "]: " + msg),
          faultKind(kind), stageName(std::move(stage)),
          windowOrdinal(window)
    {
    }

    FaultKind kind() const noexcept { return faultKind; }
    const std::string &stage() const noexcept { return stageName; }
    std::uint64_t window() const noexcept { return windowOrdinal; }

  private:
    FaultKind faultKind;
    std::string stageName;
    std::uint64_t windowOrdinal;
};

namespace detail {

inline void
formatInto(std::ostringstream &)
{
}

template <typename T, typename... Rest>
void
formatInto(std::ostringstream &os, const T &value, const Rest &...rest)
{
    os << value;
    formatInto(os, rest...);
}

} // namespace detail

/**
 * Raise a PanicError with a message built from the stream-formatted
 * arguments. Use for conditions that indicate a bug in this library.
 */
template <typename... Args>
[[noreturn]] void
panic(const Args &...args)
{
    std::ostringstream os;
    os << "panic: ";
    detail::formatInto(os, args...);
    throw PanicError(os.str());
}

/**
 * Raise a FatalError with a message built from the stream-formatted
 * arguments. Use for user-caused errors the library cannot recover from.
 */
template <typename... Args>
[[noreturn]] void
fatal(const Args &...args)
{
    std::ostringstream os;
    os << "fatal: ";
    detail::formatInto(os, args...);
    throw FatalError(os.str());
}

/** Panic unless the given invariant holds. */
template <typename... Args>
void
panicIf(bool condition, const Args &...args)
{
    if (condition)
        panic(args...);
}

/** Fatal unless the given user-facing precondition holds. */
template <typename... Args>
void
fatalIf(bool condition, const Args &...args)
{
    if (condition)
        fatal(args...);
}

} // namespace anytime

#endif // ANYTIME_SUPPORT_ERROR_HPP
