/**
 * @file
 * Deterministic pseudo-random number generation.
 *
 * The reproduction must be deterministic end-to-end: synthetic input
 * generation, LFSR seeding, and the approximate-storage bit-upset model
 * all draw from SplitMix64/Xoshiro256** generators seeded explicitly.
 * std::mt19937 is avoided because its distributions are not portable
 * across standard library implementations.
 */

#ifndef ANYTIME_SUPPORT_RNG_HPP
#define ANYTIME_SUPPORT_RNG_HPP

#include <cmath>
#include <cstdint>

namespace anytime {

/**
 * SplitMix64: tiny, high-quality 64-bit generator. Used mainly to expand
 * user seeds into Xoshiro state.
 */
class SplitMix64
{
  public:
    explicit SplitMix64(std::uint64_t seed) : state(seed) {}

    std::uint64_t
    next()
    {
        std::uint64_t z = (state += 0x9e3779b97f4a7c15ULL);
        z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
        z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
        return z ^ (z >> 31);
    }

  private:
    std::uint64_t state;
};

/**
 * Xoshiro256** by Blackman & Vigna: fast, statistically strong generator
 * for all stochastic simulation in this repo (bit upsets, synthetic
 * noise). Deterministic given the seed.
 */
class Xoshiro256
{
  public:
    explicit Xoshiro256(std::uint64_t seed)
    {
        SplitMix64 mix(seed);
        for (auto &word : state)
            word = mix.next();
    }

    std::uint64_t
    next()
    {
        const std::uint64_t result = rotl(state[1] * 5, 7) * 9;
        const std::uint64_t t = state[1] << 17;
        state[2] ^= state[0];
        state[3] ^= state[1];
        state[1] ^= state[2];
        state[0] ^= state[3];
        state[2] ^= t;
        state[3] = rotl(state[3], 45);
        return result;
    }

    /** Uniform double in [0, 1). */
    double
    nextDouble()
    {
        return static_cast<double>(next() >> 11) * 0x1.0p-53;
    }

    /** Uniform integer in [0, bound); bound must be nonzero. */
    std::uint64_t
    nextBelow(std::uint64_t bound)
    {
        // Rejection sampling to avoid modulo bias.
        const std::uint64_t threshold = (0 - bound) % bound;
        for (;;) {
            const std::uint64_t value = next();
            if (value >= threshold)
                return value % bound;
        }
    }

    /** Bernoulli trial with success probability @p probability. */
    bool
    nextBernoulli(double probability)
    {
        if (probability <= 0.0)
            return false;
        if (probability >= 1.0)
            return true;
        return nextDouble() < probability;
    }

    /** Standard normal via Marsaglia polar method (deterministic). */
    double
    nextGaussian()
    {
        for (;;) {
            const double u = 2.0 * nextDouble() - 1.0;
            const double v = 2.0 * nextDouble() - 1.0;
            const double s = u * u + v * v;
            if (s > 0.0 && s < 1.0) {
                // Only one of the pair is used; simplicity over speed.
                return u * std::sqrt(-2.0 * std::log(s) / s);
            }
        }
    }

  private:
    static std::uint64_t
    rotl(std::uint64_t x, int k)
    {
        return (x << k) | (x >> (64 - k));
    }

    std::uint64_t state[4];
};

} // namespace anytime

#endif // ANYTIME_SUPPORT_RNG_HPP
