/**
 * @file
 * Wall-clock stopwatch used by the runtime-accuracy profiler.
 *
 * The paper reports runtime normalized to the precise baseline; all
 * timing in this repo goes through Stopwatch so that benches and the
 * harness agree on the clock (steady_clock, immune to NTP slew).
 */

#ifndef ANYTIME_SUPPORT_STOPWATCH_HPP
#define ANYTIME_SUPPORT_STOPWATCH_HPP

#include <chrono>

namespace anytime {

/** Simple steady-clock stopwatch. */
class Stopwatch
{
  public:
    using Clock = std::chrono::steady_clock;

    Stopwatch() : origin(Clock::now()) {}

    /** Reset the origin to now. */
    void reset() { origin = Clock::now(); }

    /** Seconds elapsed since construction or the last reset(). */
    double
    seconds() const
    {
        return std::chrono::duration<double>(Clock::now() - origin).count();
    }

    /** Nanoseconds elapsed since construction or the last reset(). */
    std::chrono::nanoseconds
    elapsed() const
    {
        return std::chrono::duration_cast<std::chrono::nanoseconds>(
            Clock::now() - origin);
    }

  private:
    Clock::time_point origin;
};

} // namespace anytime

#endif // ANYTIME_SUPPORT_STOPWATCH_HPP
