/**
 * @file
 * Annotated synchronization primitives for the thread-safety analysis.
 *
 * Clang's `-Wthread-safety` cannot see through libstdc++'s std::mutex /
 * std::lock_guard (they carry no capability attributes), so every
 * lock-protected structure in the tree locks through these thin
 * wrappers instead:
 *
 *  - Mutex: std::mutex tagged as a capability;
 *  - MutexLock: scoped lock (std::unique_lock underneath) that the
 *    analysis tracks, including manual unlock()/lock() cycles around
 *    slow work (the builder-thread pattern in service/server.cpp);
 *  - CondVar: std::condition_variable_any wrapper whose waits take a
 *    MutexLock, including the std::stop_token overloads used by every
 *    cooperative-stop wait in the automaton.
 *
 * The wrappers add no state and no behavior on top of the std types;
 * on non-Clang compilers the annotations vanish and everything inlines
 * to exactly the code it replaced. Waiting on a CondVar releases and
 * reacquires the mutex, but — by the usual convention of the analysis —
 * the capability is treated as held across the wait; predicates run
 * with the lock held, so guarded reads inside them are legitimate
 * (annotate predicate lambdas with ANYTIME_REQUIRES(mutex)).
 *
 * Because every acquisition in the tree goes through MutexLock, the
 * whole-program analyzer (tools/anytime_verify, lock-order pass) can
 * recover the global acquisition graph lexically: each MutexLock
 * constructed while another is active contributes an ordering edge,
 * and any cycle across translation units fails CI. Keep new lock
 * acquisitions on this wrapper — a raw std::lock_guard is invisible
 * to both analyses.
 */

#ifndef ANYTIME_SUPPORT_SYNC_HPP
#define ANYTIME_SUPPORT_SYNC_HPP

#include <chrono>
#include <condition_variable>
#include <mutex>
#include <stop_token>

#include "support/thread_annotations.hpp"

namespace anytime {

/** std::mutex tagged as a thread-safety capability. */
class ANYTIME_CAPABILITY("mutex") Mutex
{
  public:
    Mutex() = default;
    Mutex(const Mutex &) = delete;
    Mutex &operator=(const Mutex &) = delete;

    void
    lock() ANYTIME_ACQUIRE()
    {
        impl.lock();
    }

    void
    unlock() ANYTIME_RELEASE()
    {
        impl.unlock();
    }

    bool
    tryLock() ANYTIME_TRY_ACQUIRE(true)
    {
        return impl.try_lock();
    }

    /** Underlying std::mutex (for MutexLock/CondVar internals only). */
    std::mutex &native() { return impl; }

  private:
    std::mutex impl;
};

/**
 * Scoped lock over a Mutex, tracked by the analysis. Supports manual
 * unlock()/lock() for code that drops the lock around slow work; the
 * destructor releases only if still held (std::unique_lock semantics).
 */
class ANYTIME_SCOPED_CAPABILITY MutexLock
{
  public:
    explicit MutexLock(Mutex &mutex) ANYTIME_ACQUIRE(mutex)
        : guard(mutex.native())
    {
    }

    ~MutexLock() ANYTIME_RELEASE() = default;

    MutexLock(const MutexLock &) = delete;
    MutexLock &operator=(const MutexLock &) = delete;

    /** Reacquire after a manual unlock(). */
    void
    lock() ANYTIME_ACQUIRE()
    {
        guard.lock();
    }

    /** Drop the lock before scope exit (e.g. to notify or run work). */
    void
    unlock() ANYTIME_RELEASE()
    {
        guard.unlock();
    }

    /** Underlying lock object (for CondVar waits only). */
    std::unique_lock<std::mutex> &native() { return guard; }

  private:
    std::unique_lock<std::mutex> guard;
};

/**
 * Condition variable whose waits take a MutexLock. Uses
 * std::condition_variable_any for the std::stop_token overloads; all
 * predicate waits follow the standard loop-until-predicate contract.
 */
class CondVar
{
  public:
    CondVar() = default;
    CondVar(const CondVar &) = delete;
    CondVar &operator=(const CondVar &) = delete;

    void notifyOne() noexcept { impl.notify_one(); }
    void notifyAll() noexcept { impl.notify_all(); }

    /** Wait until @p predicate holds. */
    template <typename Predicate>
    void
    wait(MutexLock &lock, Predicate predicate)
    {
        impl.wait(lock.native(), std::move(predicate));
    }

    /**
     * Wait until @p predicate holds or @p stop is requested.
     * @return The predicate's value at return (false = stopped early).
     */
    template <typename Predicate>
    bool
    wait(MutexLock &lock, std::stop_token stop, Predicate predicate)
    {
        return impl.wait(lock.native(), std::move(stop),
                         std::move(predicate));
    }

    /** Timed predicate wait. @return Predicate value at return. */
    template <typename Rep, typename Period, typename Predicate>
    bool
    waitFor(MutexLock &lock,
            const std::chrono::duration<Rep, Period> &timeout,
            Predicate predicate)
    {
        return impl.wait_for(lock.native(), timeout,
                             std::move(predicate));
    }

    /** Deadline + stop-token wait. @return Predicate value at return. */
    template <typename Clock, typename Duration, typename Predicate>
    bool
    waitUntil(MutexLock &lock, std::stop_token stop,
              const std::chrono::time_point<Clock, Duration> &deadline,
              Predicate predicate)
    {
        return impl.wait_until(lock.native(), std::move(stop), deadline,
                               std::move(predicate));
    }

  private:
    std::condition_variable_any impl;
};

} // namespace anytime

#endif // ANYTIME_SUPPORT_SYNC_HPP
