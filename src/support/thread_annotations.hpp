/**
 * @file
 * Clang thread-safety analysis annotations (compile-time lock checking).
 *
 * The automaton's locking discipline — versions published only under the
 * buffer mutex, barrier generation state touched only under the barrier
 * mutex, server state owned by the scheduler's lock — is documented in
 * comments but, historically, enforced only dynamically (TSan, and only
 * on executed paths). These macros expose the discipline to Clang's
 * `-Wthread-safety` static analysis so every path is proven at compile
 * time: a field marked ANYTIME_GUARDED_BY(mutex) cannot be read or
 * written without holding `mutex`, and a function marked
 * ANYTIME_REQUIRES(mutex) cannot be called without it.
 *
 * The annotations attach to the anytime::Mutex / MutexLock / CondVar
 * wrappers in support/sync.hpp (libstdc++'s std::mutex carries no
 * annotations, so the analysis cannot see through std::lock_guard). On
 * compilers without the attributes (GCC, MSVC) every macro expands to
 * nothing — zero overhead and zero behavior change.
 *
 * Build the checked configuration with the `lint` preset:
 *   cmake --preset lint && cmake --build --preset lint
 * which compiles the whole tree under Clang with
 * `-Wthread-safety -Werror=thread-safety`.
 *
 * Macro names and semantics follow the Clang documentation
 * (https://clang.llvm.org/docs/ThreadSafetyAnalysis.html).
 */

#ifndef ANYTIME_SUPPORT_THREAD_ANNOTATIONS_HPP
#define ANYTIME_SUPPORT_THREAD_ANNOTATIONS_HPP

#if defined(__clang__) && !defined(SWIG)
#define ANYTIME_THREAD_ATTRIBUTE(x) __attribute__((x))
#else
#define ANYTIME_THREAD_ATTRIBUTE(x) // no-op outside Clang
#endif

/** Marks a class as a lockable capability (e.g. a mutex). */
#define ANYTIME_CAPABILITY(x) ANYTIME_THREAD_ATTRIBUTE(capability(x))

/** Marks an RAII class whose lifetime holds a capability. */
#define ANYTIME_SCOPED_CAPABILITY ANYTIME_THREAD_ATTRIBUTE(scoped_lockable)

/** Field may only be accessed while holding the given capability. */
#define ANYTIME_GUARDED_BY(x) ANYTIME_THREAD_ATTRIBUTE(guarded_by(x))

/** Pointed-to data may only be accessed while holding the capability. */
#define ANYTIME_PT_GUARDED_BY(x) ANYTIME_THREAD_ATTRIBUTE(pt_guarded_by(x))

/** Caller must hold the capability (exclusively) to call this. */
#define ANYTIME_REQUIRES(...)                                             \
    ANYTIME_THREAD_ATTRIBUTE(requires_capability(__VA_ARGS__))

/** Caller must hold the capability at least shared to call this. */
#define ANYTIME_REQUIRES_SHARED(...)                                      \
    ANYTIME_THREAD_ATTRIBUTE(requires_shared_capability(__VA_ARGS__))

/** Function acquires the capability and holds it on return. */
#define ANYTIME_ACQUIRE(...)                                              \
    ANYTIME_THREAD_ATTRIBUTE(acquire_capability(__VA_ARGS__))

/** Function releases the capability held by the caller. */
#define ANYTIME_RELEASE(...)                                              \
    ANYTIME_THREAD_ATTRIBUTE(release_capability(__VA_ARGS__))

/** Function tries to acquire; first argument is the success value. */
#define ANYTIME_TRY_ACQUIRE(...)                                          \
    ANYTIME_THREAD_ATTRIBUTE(try_acquire_capability(__VA_ARGS__))

/** Caller must NOT hold the capability (deadlock prevention). */
#define ANYTIME_EXCLUDES(...)                                             \
    ANYTIME_THREAD_ATTRIBUTE(locks_excluded(__VA_ARGS__))

/** Declares a lock-ordering edge: this capability before the others. */
#define ANYTIME_ACQUIRED_BEFORE(...)                                      \
    ANYTIME_THREAD_ATTRIBUTE(acquired_before(__VA_ARGS__))

/** Declares a lock-ordering edge: this capability after the others. */
#define ANYTIME_ACQUIRED_AFTER(...)                                       \
    ANYTIME_THREAD_ATTRIBUTE(acquired_after(__VA_ARGS__))

/** Function returns a reference to the given capability. */
#define ANYTIME_RETURN_CAPABILITY(x)                                      \
    ANYTIME_THREAD_ATTRIBUTE(lock_returned(x))

/** Asserts (at runtime) that the capability is held; analysis trusts. */
#define ANYTIME_ASSERT_CAPABILITY(x)                                      \
    ANYTIME_THREAD_ATTRIBUTE(assert_capability(x))

/**
 * Escape hatch: disables the analysis for one function. Every use must
 * carry a comment proving why the unchecked access is safe (e.g. reads
 * of state frozen before threads start).
 */
#define ANYTIME_NO_THREAD_SAFETY_ANALYSIS                                 \
    ANYTIME_THREAD_ATTRIBUTE(no_thread_safety_analysis)

#endif // ANYTIME_SUPPORT_THREAD_ANNOTATIONS_HPP
