/**
 * @file
 * Tests for reduced fixed-point precision: Q-format arithmetic, bit
 * masking, and the diffusive bit-plane dot product of paper Figure 6.
 */

#include <gtest/gtest.h>

#include <cstdint>
#include <limits>
#include <vector>

#include "approx/fixed_point.hpp"
#include "support/rng.hpp"

namespace anytime {
namespace {

using Q16 = Fixed<16>;

TEST(Fixed, DoubleRoundTrip)
{
    for (double v : {0.0, 1.0, -1.0, 3.25, -2.5, 100.0625}) {
        EXPECT_DOUBLE_EQ(Q16::fromDouble(v).toDouble(), v);
    }
}

TEST(Fixed, Arithmetic)
{
    const Q16 a = Q16::fromDouble(2.5);
    const Q16 b = Q16::fromDouble(1.25);
    EXPECT_DOUBLE_EQ((a + b).toDouble(), 3.75);
    EXPECT_DOUBLE_EQ((a - b).toDouble(), 1.25);
    EXPECT_DOUBLE_EQ((a * b).toDouble(), 3.125);
    EXPECT_DOUBLE_EQ((a * Q16::fromDouble(-1.0)).toDouble(), -2.5);
}

TEST(Fixed, FromDoubleSaturatesOutOfRange)
{
    // Regression: an unclamped double-to-int32 cast of an out-of-range
    // value is UB. fromDouble must saturate to the representable
    // extremes instead.
    constexpr std::int32_t kMin = std::numeric_limits<std::int32_t>::min();
    constexpr std::int32_t kMax = std::numeric_limits<std::int32_t>::max();
    EXPECT_EQ(Q16::fromDouble(1e12).raw(), kMax);
    EXPECT_EQ(Q16::fromDouble(-1e12).raw(), kMin);
    EXPECT_EQ(Q16::fromDouble(std::numeric_limits<double>::infinity()).raw(),
              kMax);
    EXPECT_EQ(
        Q16::fromDouble(-std::numeric_limits<double>::infinity()).raw(),
        kMin);
    EXPECT_EQ(Q16::fromDouble(std::numeric_limits<double>::max()).raw(),
              kMax);
    // Just past the positive edge of Q16.16 (raw would be 2^31).
    EXPECT_EQ(Q16::fromDouble(32768.0).raw(), kMax);
    EXPECT_EQ(Q16::fromDouble(-32768.5).raw(), kMin);
    // In-range values are unaffected by the clamping.
    EXPECT_EQ(Q16::fromDouble(32767.0).raw(), 32767 << 16);
    EXPECT_DOUBLE_EQ(Q16::fromDouble(-32768.0).toDouble(), -32768.0);
}

TEST(Fixed, FromDoubleNanMapsToZero)
{
    EXPECT_EQ(Q16::fromDouble(std::numeric_limits<double>::quiet_NaN())
                  .raw(),
              0);
    EXPECT_EQ(Q16::fromDouble(-std::numeric_limits<double>::quiet_NaN())
                  .raw(),
              0);
}

TEST(Fixed, TruncatedKeepsTopBits)
{
    const Q16 v = Q16::fromRaw(0x7fffffff);
    EXPECT_EQ(v.truncated(32).raw(), 0x7fffffff);
    EXPECT_EQ(v.truncated(8).raw(), 0x7f000000);
    EXPECT_EQ(v.truncated(1).raw(), 0);
    EXPECT_EQ(v.truncated(0).raw(), 0);
}

TEST(Fixed, TruncationErrorShrinksWithMoreBits)
{
    const Q16 v = Q16::fromDouble(123.456);
    double prev_err = 1e18;
    for (unsigned keep = 4; keep <= 32; keep += 4) {
        const double err =
            std::abs(v.toDouble() - v.truncated(keep).toDouble());
        EXPECT_LE(err, prev_err) << "keep=" << keep;
        prev_err = err;
    }
    EXPECT_DOUBLE_EQ(v.truncated(32).toDouble(), v.toDouble());
}

TEST(MaskLowBits, Basics)
{
    EXPECT_EQ(maskLowBits(0xff, 4), 0xf0);
    EXPECT_EQ(maskLowBits(0xff, 0), 0xff);
    EXPECT_EQ(maskLowBits(0x12345678, 32), 0);
    EXPECT_EQ(maskLowBits(-1, 8), -256);
}

TEST(QuantizePixel, Basics)
{
    EXPECT_EQ(quantizePixel(0xff, 8), 0xff);
    EXPECT_EQ(quantizePixel(0xff, 6), 0xfc);
    EXPECT_EQ(quantizePixel(0xff, 4), 0xf0);
    EXPECT_EQ(quantizePixel(0xff, 2), 0xc0);
    EXPECT_EQ(quantizePixel(0xff, 0), 0x00);
    EXPECT_EQ(quantizePixel(0x5a, 4), 0x50);
}

TEST(QuantizePixel, ErrorBoundedByDroppedBits)
{
    for (unsigned bits = 1; bits <= 8; ++bits) {
        const unsigned max_err = (1u << (8 - bits)) - 1;
        for (unsigned v = 0; v < 256; ++v) {
            const unsigned q = quantizePixel(
                static_cast<std::uint8_t>(v), bits);
            ASSERT_LE(q, v);
            ASSERT_LE(v - q, max_err);
        }
    }
}

std::int64_t
exactDot(const std::vector<std::int32_t> &a,
         const std::vector<std::int32_t> &b)
{
    // Accumulate in uint64: full-range random operands can wrap int64,
    // and the bit-plane accumulator's semantics are two's-complement
    // wraparound, so the reference must wrap identically.
    std::uint64_t sum = 0;
    for (std::size_t i = 0; i < a.size(); ++i)
        sum += static_cast<std::uint64_t>(
            static_cast<std::int64_t>(a[i]) * b[i]);
    return static_cast<std::int64_t>(sum);
}

TEST(BitPlaneDotProduct, ReachesExactDotProduct)
{
    Xoshiro256 rng(1);
    for (int trial = 0; trial < 20; ++trial) {
        std::vector<std::int32_t> inputs(17), weights(17);
        for (std::size_t i = 0; i < inputs.size(); ++i) {
            inputs[i] = static_cast<std::int32_t>(rng.next());
            weights[i] = static_cast<std::int32_t>(rng.next());
        }
        BitPlaneDotProduct dot(inputs, weights);
        while (!dot.precise())
            dot.step();
        EXPECT_EQ(dot.value(), exactDot(inputs, weights));
    }
}

TEST(BitPlaneDotProduct, PartialEqualsMaskedDotProduct)
{
    // After k planes, the accumulator equals the dot product with
    // weights truncated to their top k bits — the paper's
    // O_{i-1} + I . (W & 2^{32-i}) formulation.
    Xoshiro256 rng(2);
    std::vector<std::int32_t> inputs(9), weights(9);
    for (std::size_t i = 0; i < inputs.size(); ++i) {
        inputs[i] = static_cast<std::int32_t>(rng.nextBelow(1000)) - 500;
        weights[i] = static_cast<std::int32_t>(rng.next());
    }
    BitPlaneDotProduct dot(inputs, weights);
    for (unsigned k = 1; k <= 32; ++k) {
        dot.step();
        std::vector<std::int32_t> masked(weights.size());
        for (std::size_t i = 0; i < weights.size(); ++i) {
            // Top k bits of a two's-complement word.
            const std::uint32_t mask =
                (k >= 32) ? 0xffffffffu
                          : ~((std::uint32_t(1) << (32 - k)) - 1);
            masked[i] = static_cast<std::int32_t>(
                static_cast<std::uint32_t>(weights[i]) & mask);
        }
        ASSERT_EQ(dot.value(), exactDot(inputs, masked)) << "k=" << k;
    }
}

TEST(BitPlaneDotProduct, NegativeWeightsHandled)
{
    const std::vector<std::int32_t> inputs{3, -7, 11};
    const std::vector<std::int32_t> weights{-1, -123456, 2147483647};
    BitPlaneDotProduct dot(inputs, weights);
    while (!dot.precise())
        dot.step();
    EXPECT_EQ(dot.value(), exactDot(inputs, weights));
}

TEST(BitPlaneDotProduct, LengthMismatchRejected)
{
    const std::vector<std::int32_t> a{1, 2};
    const std::vector<std::int32_t> b{1};
    EXPECT_THROW(BitPlaneDotProduct(a, b), FatalError);
}

TEST(BitPlaneDotProduct, StepPastPrecisionPanics)
{
    const std::vector<std::int32_t> a{1};
    const std::vector<std::int32_t> b{1};
    BitPlaneDotProduct dot(a, b);
    for (unsigned i = 0; i < 32; ++i)
        dot.step();
    EXPECT_THROW(dot.step(), PanicError);
}

TEST(BitPlaneDotProduct, MsbFirstConvergesFast)
{
    // With positive weights, after 8 planes the remaining error is
    // bounded by the untouched low 24 bits: |err| < sum(I) * 2^24.
    const std::vector<std::int32_t> inputs{100, 200, 300};
    const std::vector<std::int32_t> weights{0x7fffffff, 0x12345678,
                                            0x0fedcba9};
    BitPlaneDotProduct dot(inputs, weights);
    for (unsigned i = 0; i < 8; ++i)
        dot.step();
    const std::int64_t exact = exactDot(inputs, weights);
    const std::int64_t bound =
        static_cast<std::int64_t>(600) * (std::int64_t(1) << 24);
    EXPECT_LT(std::abs(exact - dot.value()), bound);
}

} // namespace
} // namespace anytime
