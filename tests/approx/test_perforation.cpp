/**
 * @file
 * Tests for anytime loop perforation schedules.
 */

#include <gtest/gtest.h>

#include <vector>

#include "approx/perforation.hpp"

namespace anytime {
namespace {

TEST(PerforationSchedule, ValidatesStrides)
{
    EXPECT_NO_THROW(PerforationSchedule({8, 4, 2, 1}));
    EXPECT_NO_THROW(PerforationSchedule({1}));
    EXPECT_THROW(PerforationSchedule({}), FatalError);
    EXPECT_THROW(PerforationSchedule({4, 4, 1}), FatalError); // not strict
    EXPECT_THROW(PerforationSchedule({2, 4, 1}), FatalError); // increasing
    EXPECT_THROW(PerforationSchedule({4, 2}), FatalError);    // no 1
    EXPECT_THROW(PerforationSchedule({4, 0}), FatalError);    // zero
}

TEST(PerforationSchedule, Geometric)
{
    const PerforationSchedule sched = PerforationSchedule::geometric(4);
    EXPECT_EQ(sched.levels(), 4u);
    EXPECT_EQ(sched.stride(0), 8u);
    EXPECT_EQ(sched.stride(1), 4u);
    EXPECT_EQ(sched.stride(2), 2u);
    EXPECT_EQ(sched.stride(3), 1u);
    EXPECT_THROW(PerforationSchedule::geometric(0), FatalError);
    EXPECT_THROW(PerforationSchedule::geometric(32), FatalError);
}

TEST(PerforationSchedule, TotalWorkCountsRedundancy)
{
    // Strides {2, 1} over 10 iterations: 5 + 10 = 15 total.
    const PerforationSchedule sched({2, 1});
    EXPECT_EQ(sched.totalWork(10), 15u);
    // Geometric 4 over 64: 8 + 16 + 32 + 64 = 120.
    EXPECT_EQ(PerforationSchedule::geometric(4).totalWork(64), 120u);
}

TEST(PerforationSchedule, StrideOutOfRangePanics)
{
    const PerforationSchedule sched({2, 1});
    EXPECT_THROW(sched.stride(2), PanicError);
}

TEST(ForEachPerforated, VisitsStrideMultiples)
{
    std::vector<std::uint64_t> visited;
    forEachPerforated(10, 3,
                      [&](std::uint64_t i) { visited.push_back(i); });
    EXPECT_EQ(visited, (std::vector<std::uint64_t>{0, 3, 6, 9}));
}

TEST(ForEachPerforated, StrideOneIsPrecise)
{
    std::vector<std::uint64_t> visited;
    forEachPerforated(5, 1,
                      [&](std::uint64_t i) { visited.push_back(i); });
    EXPECT_EQ(visited, (std::vector<std::uint64_t>{0, 1, 2, 3, 4}));
}

TEST(ForEachPerforated, EmptyTripCount)
{
    bool called = false;
    forEachPerforated(0, 2, [&](std::uint64_t) { called = true; });
    EXPECT_FALSE(called);
}

TEST(ForEachPerforated, WorkMatchesSchedulePrediction)
{
    const PerforationSchedule sched = PerforationSchedule::geometric(3);
    std::uint64_t work = 0;
    for (std::size_t level = 0; level < sched.levels(); ++level) {
        forEachPerforated(100, sched.stride(level),
                          [&](std::uint64_t) { ++work; });
    }
    EXPECT_EQ(work, sched.totalWork(100));
}

} // namespace
} // namespace anytime
