/**
 * @file
 * Tests for the simulated approximate storage: fault-stream statistics,
 * data-destructive read semantics, and the flush contract that the
 * paper's iterative storage stages rely on.
 */

#include <gtest/gtest.h>

#include <cstdint>
#include <vector>

#include "approx/storage.hpp"

namespace anytime {
namespace {

TEST(FaultInjector, ZeroProbabilityNeverFlips)
{
    FaultInjector injector(0.0, 1);
    std::uint64_t flips = 0;
    injector.consume(1u << 20, [&](std::uint64_t) { ++flips; });
    EXPECT_EQ(flips, 0u);
}

TEST(FaultInjector, ProbabilityOneFlipsEveryBit)
{
    FaultInjector injector(1.0, 1);
    std::vector<std::uint64_t> offsets;
    injector.consume(8, [&](std::uint64_t o) { offsets.push_back(o); });
    EXPECT_EQ(offsets,
              (std::vector<std::uint64_t>{0, 1, 2, 3, 4, 5, 6, 7}));
}

TEST(FaultInjector, RateMatchesProbability)
{
    const double p = 1e-3;
    FaultInjector injector(p, 42);
    const std::uint64_t bits = 4'000'000;
    std::uint64_t flips = 0;
    injector.consume(bits, [&](std::uint64_t) { ++flips; });
    const double rate = static_cast<double>(flips) / bits;
    EXPECT_NEAR(rate, p, p * 0.1);
}

TEST(FaultInjector, OffsetsWithinWindow)
{
    FaultInjector injector(0.01, 7);
    for (int i = 0; i < 1000; ++i) {
        injector.consume(64, [&](std::uint64_t offset) {
            ASSERT_LT(offset, 64u);
        });
    }
}

TEST(FaultInjector, DeterministicPerSeed)
{
    FaultInjector a(0.001, 5), b(0.001, 5);
    std::vector<std::uint64_t> fa, fb;
    a.consume(1u << 18, [&](std::uint64_t o) { fa.push_back(o); });
    b.consume(1u << 18, [&](std::uint64_t o) { fb.push_back(o); });
    EXPECT_EQ(fa, fb);
    EXPECT_FALSE(fa.empty());
}

TEST(FaultInjector, RejectsBadProbability)
{
    EXPECT_THROW(FaultInjector(-0.1, 1), FatalError);
    EXPECT_THROW(FaultInjector(1.5, 1), FatalError);
}

TEST(StorageSchedule, ValidatesMonotonicity)
{
    EXPECT_NO_THROW(StorageSchedule({{0.2, 1e-5}, {1.0, 0.0}}));
    EXPECT_THROW(StorageSchedule({{0.2, 1e-7}, {0.3, 1e-5}, {1.0, 0.0}}),
                 FatalError);
    EXPECT_THROW(StorageSchedule({{0.2, 1e-5}}), FatalError); // no precise
    EXPECT_THROW(StorageSchedule({}), FatalError);
}

TEST(StorageSchedule, DrowsySramMatchesPaperSweep)
{
    const StorageSchedule sched = StorageSchedule::drowsySram();
    ASSERT_EQ(sched.levels(), 3u);
    EXPECT_DOUBLE_EQ(sched.level(0).readUpsetProbability, 1e-5);
    EXPECT_DOUBLE_EQ(sched.level(1).readUpsetProbability, 1e-7);
    EXPECT_DOUBLE_EQ(sched.level(2).readUpsetProbability, 0.0);
}

TEST(ApproxStorage, PreciseModeIsTransparent)
{
    ApproxStorage<std::uint32_t> storage(16, 1, 0.0);
    for (std::size_t i = 0; i < 16; ++i)
        storage.write(i, static_cast<std::uint32_t>(i * 7));
    for (std::size_t i = 0; i < 16; ++i)
        EXPECT_EQ(storage.read(i), i * 7);
    EXPECT_EQ(storage.upsetCount(), 0u);
}

TEST(ApproxStorage, ReadsAreDataDestructive)
{
    // With p = 1 every bit of a read word flips, and the corruption is
    // written back: a second read (now precise) sees the flipped word.
    ApproxStorage<std::uint8_t> storage(1, 1, 1.0);
    storage.write(0, 0x0f);
    EXPECT_EQ(storage.read(0), 0xf0);
    EXPECT_GT(storage.upsetCount(), 0u);

    // Raising the accuracy level does NOT heal the corruption.
    storage.setUpsetProbability(0.0);
    EXPECT_EQ(storage.read(0), 0xf0);
    EXPECT_EQ(storage.peek(0), 0xf0);
}

TEST(ApproxStorage, FlushRestoresPreciseContents)
{
    ApproxStorage<std::uint8_t> storage(4, 2, 1.0);
    const std::vector<std::uint8_t> precise{1, 2, 3, 4};
    storage.flush(precise);
    (void)storage.read(0); // corrupts word 0
    storage.setUpsetProbability(0.0);
    storage.flush(precise);
    EXPECT_EQ(storage.upsetCount(), 0u);
    for (std::size_t i = 0; i < 4; ++i)
        EXPECT_EQ(storage.read(i), precise[i]);
}

TEST(ApproxStorage, FlushSizeMismatchRejected)
{
    ApproxStorage<std::uint8_t> storage(4, 3);
    EXPECT_THROW(storage.flush(std::vector<std::uint8_t>{1, 2}),
                 FatalError);
}

TEST(ApproxStorage, OutOfBoundsPanics)
{
    ApproxStorage<std::uint8_t> storage(4, 4);
    EXPECT_THROW(storage.read(4), PanicError);
    EXPECT_THROW(storage.write(5, 0), PanicError);
    EXPECT_THROW(storage.peek(4), PanicError);
}

TEST(ApproxStorage, UpsetCountScalesWithReads)
{
    // The paper notes bit flips are "directly related to number of data
    // elements processed so far": reading twice as many words should
    // roughly double the upsets.
    ApproxStorage<std::uint32_t> storage(4096, 5, 1e-3);
    std::vector<std::uint32_t> zeros(4096, 0);
    storage.flush(zeros);
    for (std::size_t i = 0; i < 2048; ++i)
        (void)storage.read(i);
    const std::uint64_t half = storage.upsetCount();
    for (std::size_t i = 2048; i < 4096; ++i)
        (void)storage.read(i);
    const std::uint64_t full = storage.upsetCount();
    EXPECT_GT(half, 0u);
    EXPECT_GT(full, half);
    EXPECT_NEAR(static_cast<double>(full),
                2.0 * static_cast<double>(half),
                0.8 * static_cast<double>(half));
}

} // namespace
} // namespace anytime
