/**
 * @file
 * Edge-case tests across the application kernels: degenerate inputs,
 * minimum sizes, and configuration extremes.
 */

#include <gtest/gtest.h>

#include "apps/conv2d.hpp"
#include "apps/debayer.hpp"
#include "apps/dwt53.hpp"
#include "apps/histeq.hpp"
#include "apps/kmeans.hpp"
#include "core/controller.hpp"
#include "image/generate.hpp"

namespace anytime {
namespace {

TEST(HisteqEdges, UniformImageDoesNotDivideByZero)
{
    // A single-intensity image: cdf_min == 1, so the stretch
    // denominator is zero; the LUT must still be well-defined and the
    // automaton must still reach a precise output.
    const GrayImage flat(16, 16, 123);
    const GrayImage precise = histogramEqualize(flat);
    for (std::size_t i = 0; i < precise.size(); ++i)
        EXPECT_EQ(precise[i], 255);

    auto bundle = makeHisteqAutomaton(flat);
    runToCompletion(*bundle.automaton);
    EXPECT_EQ(*bundle.output->read().value, precise);
}

TEST(HisteqEdges, TwoPixelImage)
{
    GrayImage tiny(2, 1);
    tiny[0] = 10;
    tiny[1] = 200;
    const GrayImage precise = histogramEqualize(tiny);
    auto bundle = makeHisteqAutomaton(tiny);
    runToCompletion(*bundle.automaton);
    EXPECT_EQ(*bundle.output->read().value, precise);
}

TEST(Conv2dEdges, RadiusZeroKernelIsIdentityish)
{
    const Kernel identity(0, {1.f});
    const GrayImage scene = generateScene(8, 8, 1);
    EXPECT_EQ(convolve(scene, identity), scene);

    auto bundle = makeConv2dAutomaton(scene, identity);
    runToCompletion(*bundle.automaton);
    EXPECT_EQ(*bundle.output->read().value, scene);
}

TEST(Conv2dEdges, SinglePixelImage)
{
    const GrayImage one(1, 1, 77);
    EXPECT_EQ(convolve(one, Kernel::boxBlur(2))[0], 77);
    auto bundle = makeConv2dAutomaton(one, Kernel::boxBlur(1));
    runToCompletion(*bundle.automaton);
    EXPECT_EQ((*bundle.output->read().value)[0], 77);
}

TEST(Conv2dEdges, SharpenKernelPreservesFlats)
{
    const GrayImage flat(8, 8, 100);
    const GrayImage out = convolve(flat, Kernel::sharpen3x3());
    for (std::size_t i = 0; i < out.size(); ++i)
        EXPECT_EQ(out[i], 100); // 5 - 4 = 1x gain on flat regions
}

TEST(Dwt53Edges, TinyAndSingleRowImages)
{
    for (const auto &[w, h] :
         std::vector<std::pair<std::size_t, std::size_t>>{
             {1, 8}, {8, 1}, {1, 1}, {2, 1}}) {
        const GrayImage scene = generateScene(w, h, 2);
        EXPECT_EQ(dwt53Inverse(dwt53Forward(scene)), scene)
            << w << "x" << h;
    }
}

TEST(Dwt53Edges, StrideLargerThanImageStillValid)
{
    const GrayImage scene = generateScene(8, 8, 3);
    // Stride 64 > both extents: only line 0 is lifted, everything else
    // replicates — still a structurally valid coefficient plane.
    const WaveletImage coeffs = dwt53ForwardPerforated(scene, 64);
    EXPECT_EQ(coeffs.width(), 8u);
    const GrayImage restored = dwt53Inverse(coeffs);
    EXPECT_EQ(restored.width(), 8u);
}

TEST(KmeansEdges, SingleClusterMapsToGlobalMean)
{
    const RgbImage scene = generateColorScene(16, 16, 4);
    const KmeansResult result = kmeansCluster(scene, 1);
    // All pixels get the single centroid color.
    for (std::size_t i = 1; i < result.image.size(); ++i)
        EXPECT_EQ(result.image[i], result.image[0]);
    // And the automaton agrees.
    KmeansConfig config;
    config.clusters = 1;
    auto bundle = makeKmeansAutomaton(scene, config);
    runToCompletion(*bundle.automaton);
    EXPECT_EQ(*bundle.output->read().value, result);
}

TEST(KmeansEdges, MoreClustersThanPixels)
{
    const RgbImage tiny = generateColorScene(2, 2, 5);
    const KmeansResult result = kmeansCluster(tiny, 16);
    EXPECT_EQ(result.centroids.size(), 16u);
    auto bundle = makeKmeansAutomaton(tiny, KmeansConfig{16, 4, 1});
    runToCompletion(*bundle.automaton);
    EXPECT_EQ(*bundle.output->read().value, result);
}

TEST(DebayerEdges, TwoByTwoMosaic)
{
    RgbImage color(2, 2, RgbPixel{40, 80, 120});
    const GrayImage mosaic = bayerMosaic(color);
    const RgbImage restored = debayer(mosaic);
    for (std::size_t i = 0; i < restored.size(); ++i)
        EXPECT_EQ(restored[i], (RgbPixel{40, 80, 120}));
}

TEST(AppEdges, EmptyInputsRejected)
{
    // Image construction already rejects zero dimensions, so the app
    // factories can never see an empty image; the guards exist for
    // default-constructed (moved-from) images.
    GrayImage moved = generateScene(4, 4, 6);
    GrayImage stolen = std::move(moved);
    (void)stolen;
    EXPECT_THROW(makeConv2dAutomaton(GrayImage{}, Kernel::boxBlur(1)),
                 FatalError);
    EXPECT_THROW(makeHisteqAutomaton(GrayImage{}), FatalError);
    EXPECT_THROW(makeDwt53Automaton(GrayImage{}), FatalError);
    EXPECT_THROW(makeDebayerAutomaton(GrayImage{}), FatalError);
    EXPECT_THROW(makeKmeansAutomaton(RgbImage{}), FatalError);
}

} // namespace
} // namespace anytime
