/**
 * @file
 * Tests for the 2dconv kernel and its anytime automaton: the paper's
 * key guarantee that the automaton's final output equals the precise
 * baseline bit-for-bit, plus monotone accuracy over versions.
 */

#include <gtest/gtest.h>

#include <chrono>
#include <cmath>

#include "apps/conv2d.hpp"
#include "core/controller.hpp"
#include "harness/profiler.hpp"
#include "image/generate.hpp"
#include "image/metrics.hpp"

namespace anytime {
namespace {

using namespace std::chrono_literals;

TEST(Kernel, BoxBlurIsNormalized)
{
    const Kernel k = Kernel::boxBlur(2);
    float sum = 0;
    for (int dy = -2; dy <= 2; ++dy)
        for (int dx = -2; dx <= 2; ++dx)
            sum += k.tap(dx, dy);
    EXPECT_NEAR(sum, 1.0f, 1e-5f);
}

TEST(Kernel, GaussianBlurIsNormalizedAndPeaked)
{
    const Kernel k = Kernel::gaussianBlur(3);
    float sum = 0;
    for (int dy = -3; dy <= 3; ++dy)
        for (int dx = -3; dx <= 3; ++dx)
            sum += k.tap(dx, dy);
    EXPECT_NEAR(sum, 1.0f, 1e-5f);
    EXPECT_GT(k.tap(0, 0), k.tap(3, 3));
    EXPECT_GT(k.tap(0, 0), k.tap(1, 0));
}

TEST(Kernel, TapCountValidated)
{
    EXPECT_THROW(Kernel(1, std::vector<float>(4, 0.f)), FatalError);
}

TEST(Conv2d, ConstantImageStaysConstantUnderBlur)
{
    const GrayImage flat(16, 16, 77);
    const GrayImage out = convolve(flat, Kernel::boxBlur(1));
    for (std::size_t i = 0; i < out.size(); ++i)
        EXPECT_EQ(out[i], 77);
}

TEST(Conv2d, BlurSmoothsAnEdge)
{
    GrayImage image(8, 1, 0);
    for (std::size_t x = 4; x < 8; ++x)
        image.at(x, 0) = 200;
    const GrayImage out = convolve(image, Kernel::boxBlur(1));
    // At the edge, the blurred value is between the two plateaus.
    EXPECT_GT(out.at(4, 0), 0);
    EXPECT_LT(out.at(4, 0), 200);
    // Far from the edge, plateaus are preserved (clamped borders).
    EXPECT_EQ(out.at(0, 0), 0);
    EXPECT_EQ(out.at(7, 0), 200);
}

TEST(Conv2d, QuantizedMatchesPreciseAtFullPrecision)
{
    const GrayImage scene = generateScene(24, 18, 1);
    const Kernel k = Kernel::gaussianBlur(2);
    for (std::size_t y = 0; y < scene.height(); y += 3) {
        for (std::size_t x = 0; x < scene.width(); x += 3) {
            EXPECT_EQ(convolvePixelQuantized(scene, k, x, y, 8),
                      convolvePixel(scene, k, x, y));
        }
    }
}

TEST(Conv2d, QuantizationErrorShrinksWithMoreBits)
{
    const GrayImage scene = generateScene(32, 32, 2);
    const Kernel k = Kernel::boxBlur(2);
    const GrayImage precise = convolve(scene, k);

    double prev_snr = -1e9;
    for (unsigned bits : {2u, 4u, 6u, 8u}) {
        GrayImage quantized(scene.width(), scene.height());
        for (std::size_t y = 0; y < scene.height(); ++y)
            for (std::size_t x = 0; x < scene.width(); ++x)
                quantized.at(x, y) =
                    convolvePixelQuantized(scene, k, x, y, bits);
        const double snr = signalToNoiseDb(precise, quantized);
        EXPECT_GT(snr, prev_snr) << "bits=" << bits;
        prev_snr = snr;
    }
    EXPECT_TRUE(std::isinf(prev_snr)); // 8 bits == precise
}

TEST(Conv2dAutomaton, FinalOutputIsBitExact)
{
    const GrayImage scene = generateScene(33, 29, 3); // non-pow2 on purpose
    const Kernel k = Kernel::gaussianBlur(2);
    const GrayImage precise = convolve(scene, k);

    Conv2dConfig config;
    config.publishCount = 16;
    auto bundle = makeConv2dAutomaton(scene, k, config);
    const RunOutcome outcome = runToCompletion(*bundle.automaton);

    EXPECT_TRUE(outcome.reachedPrecise);
    const auto snap = bundle.output->read();
    ASSERT_TRUE(snap);
    EXPECT_TRUE(snap.final);
    EXPECT_EQ(*snap.value, precise);
}

TEST(Conv2dAutomaton, MultiWorkerFinalOutputIsBitExact)
{
    const GrayImage scene = generateScene(32, 32, 4);
    const Kernel k = Kernel::boxBlur(1);
    const GrayImage precise = convolve(scene, k);

    Conv2dConfig config;
    config.workers = 3;
    auto bundle = makeConv2dAutomaton(scene, k, config);
    runToCompletion(*bundle.automaton);
    EXPECT_EQ(*bundle.output->read().value, precise);
}

TEST(Conv2dAutomaton, AccuracyIsNonDecreasingAcrossVersions)
{
    const GrayImage scene = generateScene(64, 64, 5);
    const Kernel k = Kernel::boxBlur(2);
    const GrayImage precise = convolve(scene, k);

    Conv2dConfig config;
    config.publishCount = 32;
    auto bundle = makeConv2dAutomaton(scene, k, config);
    const auto profile = profileToCompletion<GrayImage>(
        *bundle.automaton, *bundle.output,
        [&](const GrayImage &img) {
            return signalToNoiseDb(precise, img);
        },
        1.0);

    ASSERT_GE(profile.size(), 8u);
    // Tree-sampled refinement of a map computation is monotone in the
    // number of refined pixels; allow a whisker of dB slack for block
    // boundary effects.
    for (std::size_t i = 1; i < profile.size(); ++i) {
        EXPECT_GE(profile[i].accuracyDb, profile[i - 1].accuracyDb - 1.0)
            << "version " << i;
    }
    EXPECT_TRUE(std::isinf(profile.back().accuracyDb));
    EXPECT_TRUE(profile.back().final);
}

TEST(Conv2dAutomaton, EarlyStopGivesValidWholeImage)
{
    const GrayImage scene = generateScene(128, 128, 6);
    const Kernel k = Kernel::boxBlur(2);

    auto bundle = makeConv2dAutomaton(scene, k);
    bundle.automaton->start();
    while (bundle.output->version() < 2)
        std::this_thread::yield();
    bundle.automaton->stop();
    bundle.automaton->shutdown();

    const auto snap = bundle.output->read();
    ASSERT_TRUE(snap);
    EXPECT_EQ(snap.value->width(), scene.width());
    // Early availability: whether or not the run outpaced the stop
    // request, the whole output is already a plausible blurred image,
    // not mostly empty.
    const GrayImage precise = convolve(scene, k);
    EXPECT_GT(signalToNoiseDb(precise, *snap.value), 5.0);
}

TEST(Conv2dAutomaton, ReducedPrecisionFinalIsQuantizedConvolution)
{
    const GrayImage scene = generateScene(16, 16, 7);
    const Kernel k = Kernel::boxBlur(1);

    Conv2dConfig config;
    config.precisionBits = 4;
    auto bundle = makeConv2dAutomaton(scene, k, config);
    runToCompletion(*bundle.automaton);

    GrayImage expected(scene.width(), scene.height());
    for (std::size_t y = 0; y < scene.height(); ++y)
        for (std::size_t x = 0; x < scene.width(); ++x)
            expected.at(x, y) = convolvePixelQuantized(scene, k, x, y, 4);
    EXPECT_EQ(*bundle.output->read().value, expected);
}

} // namespace
} // namespace anytime
